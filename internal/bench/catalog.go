// Package bench contains the reproduction of the paper's evaluation: the
// catalog of 70 benchmark scripts (4 analytics-mts, 10 oneliners, 22 poets,
// 34 unix50) reconstructed from Tables 3 and 10, deterministic synthetic
// input generators standing in for the paper's datasets, and the harness
// that regenerates every results table (Tables 1 and 3–10).
package bench

// ScriptSpec is one benchmark script with the paper's published per-script
// numbers for comparison.
type ScriptSpec struct {
	Suite string // analytics-mts, oneliners, poets, unix50
	Name  string // file name, e.g. "2.sh"
	Title string // descriptive title from the paper's tables
	// Source is the reconstructed shell text. Stages pinned by Table 10 are
	// verbatim; the remainder is reconstructed from the public sources the
	// paper cites, constrained by Table 3's per-pipeline stage counts.
	Source string
	// Input names the generator (see datagen.go) that registers this
	// script's input files.
	Input string
	// PaperStages is Table 3's total stage count n for the script.
	PaperStages int
	// PaperParallelized is Table 3's parallelized stage count k.
	PaperParallelized int
	// PaperEliminated is Table 3's eliminated combiner count.
	PaperEliminated int
}

// Catalog returns all 70 benchmark scripts.
func Catalog() []ScriptSpec {
	var all []ScriptSpec
	all = append(all, analyticsMTS()...)
	all = append(all, oneliners()...)
	all = append(all, poets()...)
	all = append(all, unix50()...)
	return all
}

func analyticsMTS() []ScriptSpec {
	return []ScriptSpec{
		{
			Suite: "analytics-mts", Name: "1.sh", Title: "vehicles per day",
			Source: `cat in/mts.csv | sed 's/T..:..:..//' | cut -d ',' -f 1,3 | sort -u | cut -d ',' -f 1 | sort | uniq -c | awk -v OFS="\t" "{print \$2,\$1}"` + "\n",
			Input:  "mts", PaperStages: 7, PaperParallelized: 7, PaperEliminated: 3,
		},
		{
			Suite: "analytics-mts", Name: "2.sh", Title: "vehicle days on road",
			Source: `cat in/mts.csv | sed 's/T..:..:..//' | cut -d ',' -f 3,1 | sort -u | cut -d ',' -f 2 | sort | uniq -c | sort -k1n | awk -v OFS="\t" "{print \$2,\$1}"` + "\n",
			Input:  "mts", PaperStages: 8, PaperParallelized: 8, PaperEliminated: 3,
		},
		{
			Suite: "analytics-mts", Name: "3.sh", Title: "vehicle hours on road",
			Source: `cat in/mts.csv | sed 's/T\(..\):..:../,\1/' | cut -d ',' -f 1,2,4 | sort -u | cut -d ',' -f 3 | sort | uniq -c | sort -k1n | awk -v OFS="\t" "{print \$2,\$1}"` + "\n",
			Input:  "mts", PaperStages: 8, PaperParallelized: 8, PaperEliminated: 3,
		},
		{
			Suite: "analytics-mts", Name: "4.sh", Title: "hours monitored per day",
			Source: `cat in/mts.csv | sed 's/T\(..\):..:../,\1/' | cut -d ',' -f 1,2 | sort -u | cut -d ',' -f 1 | sort | uniq -c | awk -v OFS="\t" "{print \$2,\$1}"` + "\n",
			Input:  "mts", PaperStages: 7, PaperParallelized: 7, PaperEliminated: 3,
		},
	}
}

func oneliners() []ScriptSpec {
	return []ScriptSpec{
		{
			Suite: "oneliners", Name: "bi-grams.sh", Title: "adjacent word pairs",
			Source: `cat in/text.txt | tr -cs A-Za-z '\n' | tr A-Z a-z | bigrams_aux | sort | uniq` + "\n",
			Input:  "text", PaperStages: 5, PaperParallelized: 3, PaperEliminated: 0,
		},
		{
			Suite: "oneliners", Name: "diff.sh", Title: "compare streams",
			Source: "mkfifo s1 s2\n" +
				`cat in/text.txt | tr [:lower:] [:upper:] | sort > s1` + "\n" +
				`cat in/text2.txt | tr [:upper:] [:lower:] | sort > s2` + "\n" +
				"diff -B s1 s2\n" +
				"rm s1 s2\n",
			Input: "twotexts", PaperStages: 7, PaperParallelized: 4, PaperEliminated: 2,
		},
		{
			Suite: "oneliners", Name: "nfa-regex.sh", Title: "backreference regex match",
			Source: `cat in/text.txt | tr A-Z a-z | grep '\(.\).*\1\(.\).*\2\(.\).*\3\(.\).*\4'` + "\n",
			Input:  "text", PaperStages: 2, PaperParallelized: 2, PaperEliminated: 1,
		},
		{
			Suite: "oneliners", Name: "set-diff.sh", Title: "set difference",
			Source: "mkfifo s1 s2\n" +
				`cat in/text.txt | cut -d ' ' -f 1 | tr [:lower:] [:upper:] | sort > s1` + "\n" +
				`cat in/text2.txt | tr [:lower:] [:upper:] | sort > s2` + "\n" +
				"comm -23 s1 s2\n" +
				"rm s1 s2\n",
			Input: "twotexts", PaperStages: 8, PaperParallelized: 5, PaperEliminated: 3,
		},
		{
			Suite: "oneliners", Name: "shortest-scripts.sh", Title: "15 shortest shell scripts",
			Source: `cat in/files.txt | xargs file | grep "shell script" | cut -d: -f1 | xargs -L 1 wc -l | grep -v '^0$' | sort -n | head -15` + "\n",
			Input:  "files", PaperStages: 7, PaperParallelized: 6, PaperEliminated: 5,
		},
		{
			Suite: "oneliners", Name: "sort-sort.sh", Title: "double sort",
			Source: `cat in/text.txt | tr A-Z a-z | sort | sort -r` + "\n",
			Input:  "text", PaperStages: 3, PaperParallelized: 3, PaperEliminated: 1,
		},
		{
			Suite: "oneliners", Name: "sort.sh", Title: "sort",
			Source: `cat in/text.txt | sort` + "\n",
			Input:  "text", PaperStages: 1, PaperParallelized: 1, PaperEliminated: 0,
		},
		{
			Suite: "oneliners", Name: "spell.sh", Title: "Bentley's spell checker",
			Source: `dict=${dict:-dict.sorted}` + "\n" +
				`cat in/text.txt | iconv -f utf-8 -t ascii//translit | col -bx | tr -cs A-Za-z '\n' | tr A-Z a-z | tr -d '[:punct:]' | sort | uniq | LC_COLLATE=C comm -23 - $dict` + "\n",
			Input: "text", PaperStages: 8, PaperParallelized: 6, PaperEliminated: 3,
		},
		{
			Suite: "oneliners", Name: "top-n.sh", Title: "100 most frequent words",
			Source: `cat in/text.txt | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn | sed 100q` + "\n",
			Input:  "text", PaperStages: 6, PaperParallelized: 4, PaperEliminated: 1,
		},
		{
			Suite: "oneliners", Name: "wf.sh", Title: "word frequencies (§2 example)",
			Source: `cat in/text.txt | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn` + "\n",
			Input:  "text", PaperStages: 5, PaperParallelized: 4, PaperEliminated: 1,
		},
	}
}

// poetsHead is the shared ls|sed|xargs-cat prefix of the Unix-for-Poets
// scripts: list the book files, attach the directory, concatenate.
const poetsHead = `ls pg | sed "s;^;pg/;" | xargs cat`

func poets() []ScriptSpec {
	return []ScriptSpec{
		{
			Suite: "poets", Name: "1_1.sh", Title: "count_words",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | sort | uniq -c` + "\n",
			Input:  "books", PaperStages: 6, PaperParallelized: 4, PaperEliminated: 1,
		},
		{
			Suite: "poets", Name: "2_1.sh", Title: "merge_upper",
			Source: poetsHead + ` | tr '[a-z]' '[A-Z]' | tr -sc '[A-Z]' '[\012*]' | sort | uniq -c` + "\n",
			Input:  "books", PaperStages: 7, PaperParallelized: 5, PaperEliminated: 2,
		},
		{
			Suite: "poets", Name: "2_2.sh", Title: "count_vowel_seq",
			Source: poetsHead + ` | tr 'a-z' '[A-Z]' | tr -sc 'AEIOU' '[\012*]' | sort | uniq -c` + "\n",
			Input:  "books", PaperStages: 7, PaperParallelized: 5, PaperEliminated: 2,
		},
		{
			Suite: "poets", Name: "3_1.sh", Title: "sort (word frequency)",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | sort | uniq -c | sort -nr` + "\n",
			Input:  "books", PaperStages: 7, PaperParallelized: 5, PaperEliminated: 1,
		},
		{
			Suite: "poets", Name: "3_2.sh", Title: "sort_words_by_folding",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | sort | uniq -c | sort -f` + "\n",
			Input:  "books", PaperStages: 7, PaperParallelized: 5, PaperEliminated: 1,
		},
		{
			Suite: "poets", Name: "3_3.sh", Title: "sort_words_by_rhyming",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | rev | sort | rev | uniq -c | sort -nr` + "\n",
			Input:  "books", PaperStages: 9, PaperParallelized: 7, PaperEliminated: 2,
		},
		{
			Suite: "poets", Name: "4_3.sh", Title: "bigrams",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' > tmp.words` + "\n" +
				"cat tmp.words | tail +2 > tmp.nextwords\n" +
				"paste tmp.words tmp.nextwords | sort | uniq -c\n",
			Input: "books", PaperStages: 8, PaperParallelized: 4, PaperEliminated: 1,
		},
		{
			Suite: "poets", Name: "4_3b.sh", Title: "count_trigrams",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' > tmp.words` + "\n" +
				"cat tmp.words | tail +2 > tmp.nextwords\n" +
				"cat tmp.words | tail +3 > tmp.nextwords2\n" +
				"paste tmp.words tmp.nextwords tmp.nextwords2 | sort | uniq -c\n",
			Input: "books", PaperStages: 9, PaperParallelized: 4, PaperEliminated: 1,
		},
		{
			Suite: "poets", Name: "6_1.sh", Title: "trigram_rec",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | grep 'the land of' | sort | sed 5q` + "\n" +
				poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | grep 'And he said' | sort | sed 5q` + "\n",
			Input: "books", PaperStages: 14, PaperParallelized: 8, PaperEliminated: 4,
		},
		{
			Suite: "poets", Name: "6_1_1.sh", Title: "uppercase_by_token",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | grep -c '^[A-Z]'` + "\n",
			Input:  "books", PaperStages: 5, PaperParallelized: 3, PaperEliminated: 1,
		},
		{
			Suite: "poets", Name: "6_1_2.sh", Title: "uppercase_by_type",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | sort -u | grep -c '^[A-Z]'` + "\n",
			Input:  "books", PaperStages: 6, PaperParallelized: 4, PaperEliminated: 1,
		},
		{
			Suite: "poets", Name: "6_2.sh", Title: "4letter_words",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | tr A-Z a-z > tmp.words` + "\n" +
				`cat tmp.words | tr -sc '[A-Z][a-z]' '[\012*]' | tr A-Z a-z | sort | uniq | sed 100q | grep -c '^....$'` + "\n",
			Input: "books", PaperStages: 11, PaperParallelized: 7, PaperEliminated: 2,
		},
		{
			Suite: "poets", Name: "6_3.sh", Title: "words_no_vowels",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | grep -vi '[aeiou]' | sort | uniq -c` + "\n",
			Input:  "books", PaperStages: 7, PaperParallelized: 5, PaperEliminated: 2,
		},
		{
			Suite: "poets", Name: "6_4.sh", Title: "1syllable_words",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | grep -i '^[^aeiou]*[aeiou][^aeiou]*$' | sort | uniq -c | sed 5q` + "\n",
			Input:  "books", PaperStages: 8, PaperParallelized: 5, PaperEliminated: 2,
		},
		{
			Suite: "poets", Name: "6_5.sh", Title: "2syllable_words",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' ' [\012*]' | grep -i '^[^aeiou]*[aeiou][^aeiou]*[aeiou][^aeiou]$' | sort | uniq -c | sed 5q` + "\n",
			Input:  "books", PaperStages: 8, PaperParallelized: 5, PaperEliminated: 2,
		},
		{
			Suite: "poets", Name: "6_7.sh", Title: "verses_2om_3om_2instances",
			Source: poetsHead + ` | grep -c 'light.*light'` + "\n" +
				poetsHead + ` | grep -c 'light.*light.*light'` + "\n" +
				poetsHead + ` | grep 'light.*light' | grep -vc 'light.*light.*light'` + "\n",
			Input: "books", PaperStages: 13, PaperParallelized: 10, PaperEliminated: 7,
		},
		{
			Suite: "poets", Name: "7_2.sh", Title: "count_consonant_seq",
			Source: poetsHead + ` | tr 'a-z' '[A-Z]' | tr -sc 'BCDFGHJKLMNPQRSTVWXYZ' '[\012*]' | sort | uniq -c` + "\n",
			Input:  "books", PaperStages: 7, PaperParallelized: 5, PaperEliminated: 2,
		},
		{
			Suite: "poets", Name: "8.2_1.sh", Title: "vowel_sequencies_gr_1K",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | tr -sc 'AEIOUaeiou' '[\012*]' | sort | uniq -c | awk "\$1 >= 1000"` + "\n",
			Input:  "books", PaperStages: 8, PaperParallelized: 5, PaperEliminated: 1,
		},
		{
			Suite: "poets", Name: "8.2_2.sh", Title: "bigrams_appear_twice",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' > tmp.words` + "\n" +
				"cat tmp.words | tail +2 > tmp.nextwords\n" +
				"paste tmp.words tmp.nextwords | sort | uniq -c > tmp.bigrams\n" +
				`cat tmp.bigrams | awk "\$1 == 2 {print \$2, \$3}"` + "\n",
			Input: "books", PaperStages: 9, PaperParallelized: 4, PaperEliminated: 1,
		},
		{
			Suite: "poets", Name: "8.3_2.sh", Title: "find_anagrams",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' > tmp.words` + "\n" +
				"cat tmp.words | sort -u > tmp.types\n" +
				"cat tmp.types | rev > tmp.rev\n" +
				`cat tmp.rev | sort | uniq -c | awk "\$1 >= 2 {print \$2}"` + "\n",
			Input: "books", PaperStages: 9, PaperParallelized: 7, PaperEliminated: 1,
		},
		{
			Suite: "poets", Name: "8.3_3.sh", Title: "compare_exodus_genesis",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | sort -u > tmp.ex.types` + "\n" +
				`cat in/genesis.txt | tr -sc '[A-Z][a-z]' '[\012*]' | sort -u > tmp.gen.types` + "\n" +
				"cat tmp.gen.types | comm -23 - tmp.ex.types | sort | head\n",
			Input: "books", PaperStages: 10, PaperParallelized: 6, PaperEliminated: 1,
		},
		{
			Suite: "poets", Name: "8_1.sh", Title: "sort_words_by_n_syllables",
			Source: poetsHead + ` | tr -sc '[A-Z][a-z]' '[\012*]' | sort -u > tmp.words` + "\n" +
				`cat tmp.words | tr -sc '[AEIOUaeiou\012]' ' ' | awk '{print NF}' > tmp.syl` + "\n" +
				"paste tmp.syl tmp.words | sort -n | sed 5q\n",
			Input: "books", PaperStages: 10, PaperParallelized: 6, PaperEliminated: 2,
		},
	}
}

func unix50() []ScriptSpec {
	u := func(name, title, src, input string, n, k, e int) ScriptSpec {
		return ScriptSpec{Suite: "unix50", Name: name, Title: title,
			Source: src + "\n", Input: input,
			PaperStages: n, PaperParallelized: k, PaperEliminated: e}
	}
	return []ScriptSpec{
		u("1.sh", "1.0: extract last name",
			`cat in/names.txt | cut -d ' ' -f 2`, "names", 1, 1, 0),
		u("2.sh", "1.1: extract names and sort",
			`cat in/names.txt | cut -d ' ' -f 2 | sort`, "names", 2, 2, 1),
		u("3.sh", "1.2: extract names and sort",
			`cat in/names.txt | head -n 2 | cut -d ' ' -f 2`, "names", 2, 1, 0),
		u("4.sh", "1.3: sort top first names",
			`cat in/names.txt | cut -d ' ' -f 1 | sort | uniq -c | sort -rn`, "names", 4, 4, 1),
		u("5.sh", "2.1: all Unix utilities",
			`cat in/history.tsv | cut -d ' ' -f 4 | tr -d ','`, "history", 2, 2, 1),
		u("6.sh", "3.1: first letter of last names",
			`cat in/names.txt | cut -d ' ' -f 2 | cut -c 1-1 | sort | uniq -c`, "names", 4, 4, 2),
		u("7.sh", "4.1: number of rounds",
			`cat in/chess.txt | grep '\.' | cut -d '.' -f 1 | wc -l`, "chess", 3, 3, 2),
		u("8.sh", "4.2: pieces captured",
			`cat in/chess.txt | tr ' ' '\n' | grep 'x' | cut -d 'x' -f 1 | wc -l`, "chess", 4, 4, 3),
		u("9.sh", "4.3: pieces captured with pawn",
			`cat in/chess.txt | tr ' ' '\n' | grep 'x' | cut -d '.' -f 2 | grep -v '[KQRBN]' | cut -c 1-1 | wc -l`, "chess", 6, 6, 5),
		u("10.sh", "4.4: histogram by piece",
			`cat in/chess.txt | tr ' ' '\n' | grep 'x' | grep '\.' | cut -d '.' -f 2 | grep '[KQRBN]' | cut -c 1-1 | sort | uniq -c | sort -rn`, "chess", 9, 9, 6),
		u("11.sh", "4.5: histogram by piece and pawn",
			`cat in/chess.txt | tr ' ' '\n' | grep 'x' | grep '\.' | cut -d '.' -f 2 | cut -c 1-1 | tr '[a-z]' 'P' | sort | uniq -c | sort -rn`, "chess", 9, 9, 6),
		u("12.sh", "4.6: piece used most",
			`cat in/chess.txt | tr ' ' '\n' | grep 'x' | cut -d '.' -f 2 | grep '[KQRBN]' | cut -c 1-1 | sort | uniq -c | head -n 3 | tail -n 1`, "chess", 9, 8, 5),
		u("13.sh", "5.1: extract hellow world",
			`cat in/source.txt | grep 'print' | cut -d '"' -f 2 | cut -c 1-12`, "source", 3, 3, 2),
		u("14.sh", "6.1: order bodies",
			`cat in/bodies.txt | awk "{print \$2, \$0}" | sort -n | cut -d ' ' -f 2`, "bodies", 3, 3, 1),
		u("15.sh", "7.1: number of versions",
			`cat in/history.tsv | cut -f 1 | grep 'AT&T' | wc -l`, "history", 3, 3, 2),
		u("16.sh", "7.2: most frequent machine",
			`cat in/history.tsv | cut -f 2 | sort | uniq -c | sort -rn | head -n 1 | tr -s ' ' '\n' | tail -n 1`, "history", 7, 6, 1),
		u("17.sh", "7.3: decades unix released",
			`cat in/history.tsv | cut -f 4 | sort | cut -c 3-3 | uniq | sed s/\$/'0s'/`, "history", 5, 5, 2),
		u("18.sh", "8.1: count unix birth-year",
			`cat in/history.tsv | tr ' ' '\n' | grep 1969 | wc -l`, "history", 3, 3, 2),
		u("19.sh", "8.2: location office",
			`cat in/offices.txt | grep 'Bell' | awk 'length <= 45' | cut -d ',' -f 1 | awk "{\$1=\$1};1"`, "offices", 4, 4, 3),
		u("20.sh", "8.3: four most involved",
			`cat in/credits.txt | grep '(' | cut -d '(' -f 2 | cut -d ')' -f 1 | fmt -w1`, "credits", 4, 4, 3),
		u("21.sh", "8.4: longest words w/o hyphens",
			`cat in/text.txt | tr -c "[a-z][A-Z]" '\n' | sort -u | awk "length >= 16"`, "text", 3, 3, 1),
		u("23.sh", "9.1: extract word PORT",
			`cat in/poem.txt | fmt -w1 | grep '[A-Z]' | tr '[a-z]' '\n' | grep 'P' | tr -d '\n' | cut -c 1-4`, "poem", 6, 6, 4),
		u("24.sh", "9.2: extract word BELL",
			`cat in/poem.txt | fmt -w1 | cut -c 1-4`, "poem", 2, 2, 1),
		u("25.sh", "9.3: animal decorate",
			`cat in/poem.txt | cut -c 1-2 | tr -d '\n'`, "poem", 2, 2, 1),
		u("26.sh", "9.4: four corners",
			`cat in/poem.txt | grep '"' | cut -d '"' -f 2 | sort -u | cut -c 1-1 | head`, "poem", 5, 4, 2),
		u("28.sh", "9.6: follow directions",
			`cat in/poem.txt | sed 1d | grep 'N' | cut -c 1-4 | tr -c '[A-Z]' '\n' | sort | uniq | head | tail -n 1 | sed 2d | head`, "poem", 10, 6, 3),
		u("29.sh", "9.7: four corners",
			`cat in/poem.txt | head | grep 'E' | cut -c 1-2 | tail +2`, "poem", 4, 2, 1),
		u("30.sh", "9.8: TELE-communications",
			`cat in/poem.txt | tr -c '[a-z][A-Z]' '\n' | grep '[A-Z]' | sort | uniq | head | sed 1d | tail +2 | head`, "poem", 8, 4, 2),
		u("31.sh", "9.9",
			`cat in/poem.txt | tr -c '[a-z][A-Z]' '\n' | grep '[A-Z]' | sort | uniq | head | sed 1d | sed 2d | tail +2 | head`, "poem", 9, 4, 2),
		u("32.sh", "10.1: count recipients",
			`cat in/mail.txt | tr -s ' ' '\n' | grep '@' | cut -d '@' -f 1 | wc -l`, "mail", 4, 3, 2),
		u("33.sh", "10.2: list recipients",
			`cat in/mail.txt | tr -s ' ' '\n' | grep '@' | sort -u`, "mail", 3, 2, 1),
		u("34.sh", "10.3: extract username",
			`cat in/mail.txt | grep '@' | cut -d '@' -f 1 | cut -d ':' -f 2 | fmt -w1 | sort | uniq | tr '[A-Z]' '[a-z]'`, "mail", 7, 7, 4),
		u("35.sh", "11.1: year received medal",
			`cat in/awards.txt | grep 'UNIX' | cut -c 1-4`, "awards", 2, 2, 1),
		u("36.sh", "11.2: most repeated first name",
			`cat in/names.txt | cut -d ' ' -f 1 | tr '[A-Z]' '[a-z]' | sort | uniq -c | sort -rn | head -n 1 | tr -s ' ' '\n' | tail -n 1`, "names", 8, 7, 2),
	}
}
