package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"kumquat/internal/pipeline"
	"kumquat/internal/synth"
	"kumquat/internal/unix"
)

// Harness runs the benchmark suite and regenerates the paper's tables.
type Harness struct {
	// Scale is the approximate primary-input line count per script.
	Scale int
	// Ks are the parallelism degrees measured (the paper uses 1,2,4,8,16).
	Ks []int
	// Opts tunes synthesis.
	Opts synth.Options

	env *unix.Env
	syn *synth.Synthesizer
}

// NewHarness builds a harness with a shared environment and synthesizer:
// combiners for repeated commands (sort, uniq -c, ...) are synthesized once
// and reused across scripts, like KumQuat's per-command cache.
func NewHarness(scale int, ks []int) *Harness {
	if scale <= 0 {
		scale = 4000
	}
	if len(ks) == 0 {
		ks = []int{1, 2, 4, 8, 16}
	}
	env := unix.DefaultEnv()
	opts := synth.Options{Seed: 1}
	return &Harness{
		Scale: scale,
		Ks:    ks,
		Opts:  opts,
		env:   env,
		syn:   synth.New(env, opts),
	}
}

// Env exposes the shared command environment.
func (h *Harness) Env() *unix.Env { return h.env }

// Synthesizer exposes the shared synthesizer (for Table 8/9/10 reporting).
func (h *Harness) Synthesizer() *synth.Synthesizer { return h.syn }

// PipelineCounts records Table 3's per-pipeline "k/n" pairs.
type PipelineCounts struct {
	Parallelized, Total, Eliminated int
}

// ScriptResult is one script's measurements: planning counts (Table 3) and
// execution times for every mode (Tables 1, 4, 5, 6, 7).
type ScriptResult struct {
	Spec ScriptSpec

	Parallelized, Total, Eliminated int
	PerPipeline                     []PipelineCounts

	TOrig  time.Duration         // pipelined execution of the original script
	U      map[int]time.Duration // unoptimized parallel, per k (U[1] is serial)
	T      map[int]time.Duration // optimized parallel, per k
	Output string                // serial output (ground truth)
	Agree  bool                  // all modes reproduced the serial output
	Errors []string              // mode failures, if any
}

// Speedup returns d0/d as a ratio (the paper's "(N.N×)" annotations).
func Speedup(base, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(base) / float64(d)
}

// scriptPlans compiles every pipeline of a script, executing pipelines in
// serial order as it goes so that later pipelines' synthesis can observe
// the temp files earlier pipelines write (8.3_3's comm needs tmp.ex.types
// to exist when its combiner is synthesized).
func (h *Harness) scriptPlans(spec ScriptSpec) ([]*pipeline.Plan, *pipeline.Script, error) {
	script, err := pipeline.ParseScript(spec.Source, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%s: %w", spec.Suite, spec.Name, err)
	}
	plans := make([]*pipeline.Plan, len(script.Pipelines))
	for i, p := range script.Pipelines {
		// Execute pipeline serially first so its outputs exist for the
		// compilation of subsequent pipelines.
		plan, err := pipeline.Compile(p, h.syn)
		if err != nil {
			return nil, nil, fmt.Errorf("%s/%s pipeline %d: %w", spec.Suite, spec.Name, i, err)
		}
		plans[i] = plan
		out, err := plan.RunSerial(h.env, "")
		if err != nil {
			return nil, nil, fmt.Errorf("%s/%s pipeline %d run: %w", spec.Suite, spec.Name, i, err)
		}
		if p.OutputFile != "" {
			h.env.FS.Register(p.OutputFile, out)
		}
	}
	return plans, script, nil
}

// runMode executes a whole script in one execution mode through the
// streaming executor and returns the concatenated output of its
// non-redirected pipelines.
func (h *Harness) runMode(ctx context.Context, script *pipeline.Script,
	plans []*pipeline.Plan, mode pipeline.Mode, k int) (string, error) {

	var final strings.Builder
	for i, plan := range plans {
		var sink strings.Builder
		if _, err := plan.Execute(ctx, h.env, nil, &sink, mode, k); err != nil {
			return "", err
		}
		if of := script.Pipelines[i].OutputFile; of != "" {
			h.env.FS.Register(of, sink.String())
		} else {
			final.WriteString(sink.String())
		}
	}
	return final.String(), nil
}

// RunScript measures one script across all execution modes. The context
// bounds every timed execution; a cancellation aborts the run mid-mode.
func (h *Harness) RunScript(ctx context.Context, spec ScriptSpec) (*ScriptResult, error) {
	if err := RegisterInputs(h.env, spec.Input, h.Scale); err != nil {
		return nil, err
	}
	plans, script, err := h.scriptPlans(spec)
	if err != nil {
		return nil, err
	}
	res := &ScriptResult{
		Spec: spec,
		U:    map[int]time.Duration{},
		T:    map[int]time.Duration{},
	}
	for _, plan := range plans {
		par, total, elim := plan.Counts()
		res.Parallelized += par
		res.Total += total
		res.Eliminated += elim
		res.PerPipeline = append(res.PerPipeline,
			PipelineCounts{Parallelized: par, Total: total, Eliminated: elim})
	}

	res.Agree = true
	check := func(mode, out string, err error) string {
		if err != nil {
			res.Agree = false
			res.Errors = append(res.Errors, fmt.Sprintf("%s: %v", mode, err))
			return ""
		}
		if res.Output != "" && out != res.Output {
			res.Agree = false
			res.Errors = append(res.Errors, mode+": output differs from serial")
		}
		return out
	}

	// Serial baseline (u1 measured below with k=1; this fixes ground truth).
	out, err := h.runMode(ctx, script, plans, pipeline.ModeSerial, 1)
	if err != nil {
		return nil, err
	}
	res.Output = out

	// T_orig: pipelined execution of the original script.
	start := time.Now()
	out, err = h.runMode(ctx, script, plans, pipeline.ModePipelined, 1)
	res.TOrig = time.Since(start)
	check("pipelined", out, err)

	for _, k := range h.Ks {
		start = time.Now()
		out, err = h.runMode(ctx, script, plans, pipeline.ModeUnoptimized, k)
		res.U[k] = time.Since(start)
		check(fmt.Sprintf("u%d", k), out, err)

		start = time.Now()
		out, err = h.runMode(ctx, script, plans, pipeline.ModeOptimized, k)
		res.T[k] = time.Since(start)
		check(fmt.Sprintf("T%d", k), out, err)
	}
	return res, nil
}

// RunAll measures every catalog script under one context.
func (h *Harness) RunAll(ctx context.Context) ([]*ScriptResult, error) {
	var out []*ScriptResult
	for _, spec := range Catalog() {
		r, err := h.RunScript(ctx, spec)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// PlanOnly compiles every catalog script without timing runs (fast path for
// Table 3).
func (h *Harness) PlanOnly() ([]*ScriptResult, error) {
	var out []*ScriptResult
	for _, spec := range Catalog() {
		if err := RegisterInputs(h.env, spec.Input, h.Scale); err != nil {
			return nil, err
		}
		plans, _, err := h.scriptPlans(spec)
		if err != nil {
			return nil, err
		}
		res := &ScriptResult{Spec: spec}
		for _, plan := range plans {
			par, total, elim := plan.Counts()
			res.Parallelized += par
			res.Total += total
			res.Eliminated += elim
			res.PerPipeline = append(res.PerPipeline,
				PipelineCounts{Parallelized: par, Total: total, Eliminated: elim})
		}
		out = append(out, res)
	}
	return out, nil
}

// UniqueCommands returns the distinct stage specs across the catalog, in
// first-appearance order, excluding the initial-cat input sources the
// parser already strips.
func UniqueCommands() []string {
	seen := map[string]bool{}
	var out []string
	for _, spec := range Catalog() {
		script, err := pipeline.ParseScript(spec.Source, nil)
		if err != nil {
			continue
		}
		for _, p := range script.Pipelines {
			for _, stage := range p.Stages {
				if !seen[stage] {
					seen[stage] = true
					out = append(out, stage)
				}
			}
		}
	}
	return out
}
