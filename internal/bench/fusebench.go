package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"kumquat/internal/pipeline"
	"kumquat/internal/synth"
	"kumquat/internal/unix"
)

// fuseScript is the fusion workload: a long run of concat-class line
// mappers — the shape the fuse-streamers rewrite collapses into one
// per-chunk pass — followed by a sort-class reduction so the program also
// exercises the merge boundary. Unfused, every streamer materializes its
// full intermediate stream per chunk; fused, the region makes one pass.
const fuseScript = `cat in/fuse.txt | tr a-z A-Z | tr -d '.' | grep 'O' | sed 's/THE/the/' | cut -c 1-48 | grep GOLD | sort | uniq -c` + "\n"

// FuseRun is one (k, fuse) configuration's measurement.
type FuseRun struct {
	K    int  `json:"k"`
	Fuse bool `json:"fuse"`
	// WallMS is the best-of-rounds wall time; Allocs and AllocBytes are
	// that round's heap allocation count and volume (runtime.MemStats
	// deltas — single-process, so deltas are attributable).
	WallMS     float64 `json:"wall_ms"`
	Allocs     uint64  `json:"allocs"`
	AllocBytes uint64  `json:"alloc_bytes"`
}

// FusePair is the fused-vs-unfused comparison at one parallelism degree.
type FusePair struct {
	K       int     `json:"k"`
	Unfused FuseRun `json:"unfused"`
	Fused   FuseRun `json:"fused"`
	// Speedup is unfused wall over fused wall; AllocRatio is unfused
	// allocations over fused allocations (>1 = fusion allocates less).
	Speedup    float64 `json:"speedup"`
	AllocRatio float64 `json:"alloc_ratio"`
}

// FuseComparison is the BENCH_fuse.json payload: the streamer-chain
// workload run with the graph-walking fused executor on and off at each
// parallelism degree, with byte-agreement against the serial oracle and
// the optimizer's fire counters for the compiled program.
type FuseComparison struct {
	Pipeline string         `json:"pipeline"`
	Scale    int            `json:"scale_lines"`
	Rounds   int            `json:"rounds"`
	CPUs     int            `json:"cpus"`
	Rewrites map[string]int `json:"rewrites"`
	Pairs    []FusePair     `json:"pairs"`
	// Agree is true when every configuration reproduced the serial
	// oracle byte-for-byte.
	Agree bool `json:"agree"`
}

// CompareFusion measures the fused executor against the stage-at-a-time
// optimized path on the streamer-chain workload at k ∈ {4, 32}. Each
// configuration runs `rounds` times and reports the fastest round — the
// comparison targets executor overhead, not scheduler noise.
func CompareFusion(ctx context.Context, scale int) (*FuseComparison, error) {
	if scale <= 0 {
		scale = 20000
	}
	const rounds = 5
	env := unix.DefaultEnv()
	env.FS.Register("in/fuse.txt", genWordfreqInput(scale))
	syn := synth.New(env, synth.Options{Seed: 1})
	script, err := pipeline.ParseScript(fuseScript, nil)
	if err != nil {
		return nil, err
	}
	plan, err := pipeline.Compile(script.Pipelines[0], syn)
	if err != nil {
		return nil, err
	}
	cmp := &FuseComparison{
		Pipeline: "fuse-chain",
		Scale:    scale,
		Rounds:   rounds,
		CPUs:     runtime.NumCPU(),
		Rewrites: make(map[string]int, len(plan.Program.Fired)),
		Agree:    true,
	}
	for rule, n := range plan.Program.Fired {
		cmp.Rewrites[string(rule)] = n
	}

	var oracle strings.Builder
	if _, err := plan.Execute(ctx, env, nil, &oracle, pipeline.ModeSerial, 1); err != nil {
		return nil, fmt.Errorf("bench: fuse oracle: %w", err)
	}
	want := oracle.String()

	measure := func(k int, fuse bool) (FuseRun, error) {
		run := FuseRun{K: k, Fuse: fuse}
		for r := 0; r < rounds; r++ {
			var out strings.Builder
			out.Grow(len(want))
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			_, err := plan.Execute(ctx, env, nil, &out,
				pipeline.ModeOptimized, k, pipeline.WithFuse(fuse))
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			if err != nil {
				return run, fmt.Errorf("bench: fuse k=%d fuse=%v: %w", k, fuse, err)
			}
			if out.String() != want {
				cmp.Agree = false
			}
			if ms := float64(wall.Microseconds()) / 1000; run.WallMS == 0 || ms < run.WallMS {
				run.WallMS = ms
				run.Allocs = after.Mallocs - before.Mallocs
				run.AllocBytes = after.TotalAlloc - before.TotalAlloc
			}
		}
		return run, nil
	}

	for _, k := range []int{4, 32} {
		unfused, err := measure(k, false)
		if err != nil {
			return nil, err
		}
		fused, err := measure(k, true)
		if err != nil {
			return nil, err
		}
		pair := FusePair{K: k, Unfused: unfused, Fused: fused}
		if fused.WallMS > 0 {
			pair.Speedup = unfused.WallMS / fused.WallMS
		}
		if fused.Allocs > 0 {
			pair.AllocRatio = float64(unfused.Allocs) / float64(fused.Allocs)
		}
		cmp.Pairs = append(cmp.Pairs, pair)
	}
	return cmp, nil
}
