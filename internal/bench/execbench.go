package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"kumquat/internal/pipeline"
	"kumquat/internal/synth"
	"kumquat/internal/unix"
)

// wordfreqScript is the paper's §2 running example, the workload for the
// buffered-vs-streaming executor comparison.
const wordfreqScript = `cat in/wf.txt | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn` + "\n"

// ExecModeResult is one executor configuration's measurement.
type ExecModeResult struct {
	Name     string  `json:"name"`
	Mode     string  `json:"mode"`
	K        int     `json:"k"`
	WallMS   float64 `json:"wall_ms"`
	BytesOut int64   `json:"bytes_out"`
}

// ExecComparison is the BENCH_exec.json payload: the wordfreq pipeline run
// through the buffered (serial, unoptimized-barrier) and streaming
// (optimized, pipelined) executors, with an output-agreement check.
type ExecComparison struct {
	Pipeline string           `json:"pipeline"`
	Scale    int              `json:"scale_lines"`
	Modes    []ExecModeResult `json:"modes"`
	Agree    bool             `json:"agree"`
}

// CompareExecutors measures buffered vs streaming execution of the
// wordfreq pipeline at the given input scale and parallelism degree. The
// context bounds every timed execution.
func CompareExecutors(ctx context.Context, scale, k int) (*ExecComparison, error) {
	if scale <= 0 {
		scale = 20000
	}
	if k <= 0 {
		k = 8
	}
	env := unix.DefaultEnv()
	env.FS.Register("in/wf.txt", genWordfreqInput(scale))
	syn := synth.New(env, synth.Options{Seed: 1})
	script, err := pipeline.ParseScript(wordfreqScript, nil)
	if err != nil {
		return nil, err
	}
	plan, err := pipeline.Compile(script.Pipelines[0], syn)
	if err != nil {
		return nil, err
	}

	cmp := &ExecComparison{Pipeline: "wordfreq", Scale: scale, Agree: true}
	configs := []struct {
		name string
		mode pipeline.Mode
		k    int
	}{
		{"serial-buffered", pipeline.ModeSerial, 1},
		{"unoptimized-parallel", pipeline.ModeUnoptimized, k},
		{"optimized-parallel", pipeline.ModeOptimized, k},
		{"pipelined-streaming", pipeline.ModePipelined, 1},
	}
	var want string
	for i, cfg := range configs {
		var out strings.Builder
		start := time.Now()
		_, err := plan.Execute(ctx, env, nil, &out, cfg.mode, cfg.k)
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", cfg.name, err)
		}
		got := out.String()
		if i == 0 {
			want = got
		} else if got != want {
			cmp.Agree = false
		}
		cmp.Modes = append(cmp.Modes, ExecModeResult{
			Name:     cfg.name,
			Mode:     cfg.mode.String(),
			K:        cfg.k,
			WallMS:   float64(wall.Microseconds()) / 1000,
			BytesOut: int64(len(got)),
		})
	}
	return cmp, nil
}

// genWordfreqInput produces deterministic Zipf-flavoured prose.
func genWordfreqInput(lines int) string {
	words := []string{"the", "of", "and", "light", "sea", "wind", "to", "a",
		"stone", "river", "dark", "ship", "night", "king", "gold", "dream"}
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	for i := 0; i < lines; i++ {
		n := 5 + rng.Intn(8)
		for j := 0; j < n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[rng.Intn(len(words))])
		}
		b.WriteString(".\n")
	}
	return b.String()
}
