package bench

import (
	"strings"
	"testing"

	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// Input-fidelity tests: the synthetic datasets must have the structural
// properties the scripts depend on (the behaviour-preservation argument in
// DESIGN.md's substitution table).

func register(t *testing.T, kind string, lines int) *unix.Env {
	t.Helper()
	env := unix.DefaultEnv()
	if err := RegisterInputs(env, kind, lines); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestMTSShape(t *testing.T) {
	env := register(t, "mts", 500)
	data, _ := env.FS.Read("in/mts.csv")
	lines := textio.Lines(data)
	if len(lines) != 500 {
		t.Fatalf("mts lines = %d", len(lines))
	}
	days := map[string]bool{}
	vehicles := map[string]bool{}
	for _, l := range lines {
		fields := strings.Split(l, ",")
		if len(fields) != 4 {
			t.Fatalf("mts row %q has %d fields", l, len(fields))
		}
		ts := fields[0]
		if len(ts) != 19 || ts[10] != 'T' || ts[13] != ':' {
			t.Fatalf("bad timestamp %q", ts)
		}
		days[ts[:10]] = true
		vehicles[fields[2]] = true
	}
	// Key skew: many rows, few vehicles/days — what drives uniq -c counts.
	if len(vehicles) > 45 || len(days) < 30 {
		t.Errorf("mts cardinalities off: %d vehicles, %d days", len(vehicles), len(days))
	}
}

func TestChessShape(t *testing.T) {
	env := register(t, "chess", 400)
	data, _ := env.FS.Read("in/chess.txt")
	// The 4.x pipelines need tokens containing both 'x' and '.'.
	captures := 0
	for _, tok := range strings.Fields(data) {
		if strings.Contains(tok, "x") && strings.Contains(tok, ".") {
			captures++
		}
	}
	if captures < 50 {
		t.Errorf("chess data has too few numbered captures: %d", captures)
	}
}

func TestBooksShape(t *testing.T) {
	env := register(t, "books", 2000)
	names := env.FS.NamesUnder("pg/")
	if len(names) < 5 {
		t.Fatalf("too few books: %d", len(names))
	}
	var all strings.Builder
	for _, n := range names {
		c, _ := env.FS.Read(n)
		all.WriteString(c)
	}
	// The trigram_rec phrases must occur.
	if !strings.Contains(all.String(), "the land of") || !strings.Contains(all.String(), "And he said") {
		t.Error("books lack the trigram_rec phrases")
	}
	// genesis.txt for compare_exodus_genesis.
	if _, err := env.FS.Read("in/genesis.txt"); err != nil {
		t.Error("genesis.txt missing")
	}
}

func TestTextHasLightAndPunctuation(t *testing.T) {
	env := register(t, "text", 800)
	data, _ := env.FS.Read("in/text.txt")
	if !strings.Contains(data, "light") {
		t.Error("text lacks 'light' (poets greps would be empty)")
	}
	if !strings.Contains(data, ",") || !strings.Contains(data, ".") {
		t.Error("text lacks punctuation (spell/tr -d punct untested)")
	}
	if strings.ToLower(data) == data {
		t.Error("text lacks uppercase (case-folding stages untested)")
	}
}

func TestMailShape(t *testing.T) {
	env := register(t, "mail", 300)
	data, _ := env.FS.Read("in/mail.txt")
	if !strings.Contains(data, "@") || !strings.Contains(data, "To: ") {
		t.Error("mail data lacks recipients")
	}
}

func TestHistoryShape(t *testing.T) {
	env := register(t, "history", 300)
	data, _ := env.FS.Read("in/history.tsv")
	hasATT, has1969 := false, false
	for _, l := range textio.Lines(data) {
		fields := strings.Split(l, "\t")
		if len(fields) != 4 {
			t.Fatalf("history row %q has %d tab fields", l, len(fields))
		}
		if strings.Contains(fields[0], "AT&T") {
			hasATT = true
		}
		if fields[3] == "1969" {
			has1969 = true
		}
	}
	if !hasATT || !has1969 {
		t.Errorf("history lacks AT&T (%v) or 1969 (%v)", hasATT, has1969)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := register(t, "poem", 200)
	b := register(t, "poem", 200)
	da, _ := a.FS.Read("in/poem.txt")
	db, _ := b.FS.Read("in/poem.txt")
	if da != db {
		t.Error("generation must be deterministic for a (kind, scale) pair")
	}
}

func TestScaleControlsSize(t *testing.T) {
	small := register(t, "text", 100)
	large := register(t, "text", 10000)
	ds, _ := small.FS.Read("in/text.txt")
	dl, _ := large.FS.Read("in/text.txt")
	if len(textio.Lines(ds)) != 100 || len(textio.Lines(dl)) != 10000 {
		t.Errorf("scale not respected: %d and %d lines",
			len(textio.Lines(ds)), len(textio.Lines(dl)))
	}
}
