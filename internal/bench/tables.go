package bench

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"kumquat/internal/dsl"
	"kumquat/internal/synth"
)

// perPipelineString renders Table 3's parenthesized per-pipeline counts,
// e.g. "5/8 (0/1, 3/3, 2/2, 0/1, 0/1)".
func perPipelineString(r *ScriptResult) string {
	parts := make([]string, len(r.PerPipeline))
	for i, c := range r.PerPipeline {
		parts[i] = fmt.Sprintf("%d/%d", c.Parallelized, c.Total)
	}
	return fmt.Sprintf("%d/%d (%s)", r.Parallelized, r.Total, strings.Join(parts, ", "))
}

func eliminatedString(r *ScriptResult) string {
	parts := make([]string, len(r.PerPipeline))
	for i, c := range r.PerPipeline {
		parts[i] = fmt.Sprintf("%d", c.Eliminated)
	}
	return fmt.Sprintf("%d (%s)", r.Eliminated, strings.Join(parts, ", "))
}

func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// WriteTable3 renders the parallelized/eliminated counts for every script
// (paper Table 3), with the paper's published numbers alongside.
func WriteTable3(w io.Writer, results []*ScriptResult) {
	fmt.Fprintf(w, "Table 3: pipeline commands parallelized with synthesized combiners\n")
	fmt.Fprintf(w, "%-14s %-22s %-28s %-12s %-10s %-10s\n",
		"Benchmark", "Script", "Parallelized", "Eliminated", "Paper k/n", "Paper elim")
	totalPar, totalAll, totalElim := 0, 0, 0
	paperPar, paperElim := 0, 0
	for _, r := range results {
		fmt.Fprintf(w, "%-14s %-22s %-28s %-12s %d/%-8d %d\n",
			r.Spec.Suite, r.Spec.Name, perPipelineString(r), eliminatedString(r),
			r.Spec.PaperParallelized, r.Spec.PaperStages, r.Spec.PaperEliminated)
		totalPar += r.Parallelized
		totalAll += r.Total
		totalElim += r.Eliminated
		paperPar += r.Spec.PaperParallelized
		paperElim += r.Spec.PaperEliminated
	}
	fmt.Fprintf(w, "Total: %d/%d parallelized (paper: %d/427), %d eliminated (paper: %d)\n",
		totalPar, totalAll, paperPar, totalElim, paperElim)
}

// WriteTable4 renders T_orig / u1 / u16 / T16 for all scripts (paper
// Table 4). kMax selects the "16" column (the largest measured k).
func WriteTable4(w io.Writer, results []*ScriptResult, kMax int) {
	fmt.Fprintf(w, "Table 4: performance of new pipelines vs original scripts (k=%d)\n", kMax)
	fmt.Fprintf(w, "%-14s %-22s %14s %12s %16s %16s\n",
		"Benchmark", "Script", "T_orig", "u1", fmt.Sprintf("u%d", kMax), fmt.Sprintf("T%d", kMax))
	for _, r := range results {
		u1 := r.U[1]
		fmt.Fprintf(w, "%-14s %-22s %8s (%.1fx) %12s %8s (%.1fx) %8s (%.1fx)\n",
			r.Spec.Suite, r.Spec.Name,
			seconds(r.TOrig), Speedup(u1, r.TOrig),
			seconds(u1),
			seconds(r.U[kMax]), Speedup(u1, r.U[kMax]),
			seconds(r.T[kMax]), Speedup(u1, r.T[kMax]))
	}
}

// WriteSweep renders the u_k (optimized=false; paper Table 5) or T_k
// (optimized=true; paper Table 6) speedup sweep.
func WriteSweep(w io.Writer, results []*ScriptResult, ks []int, optimized bool) {
	name, label := "Table 5: unoptimized parallel execution (u_k)", "u"
	pick := func(r *ScriptResult, k int) time.Duration { return r.U[k] }
	if optimized {
		name, label = "Table 6: optimized parallel execution (T_k)", "T"
		pick = func(r *ScriptResult, k int) time.Duration { return r.T[k] }
	}
	fmt.Fprintln(w, name)
	fmt.Fprintf(w, "%-14s %-22s", "Benchmark", "Script")
	for _, k := range ks {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("%s%d", label, k))
	}
	fmt.Fprintln(w)
	for _, r := range results {
		fmt.Fprintf(w, "%-14s %-22s", r.Spec.Suite, r.Spec.Name)
		u1 := r.U[1]
		for _, k := range ks {
			d := pick(r, k)
			fmt.Fprintf(w, " %8s(%.1fx)", seconds(d), Speedup(u1, d))
		}
		fmt.Fprintln(w)
	}
}

// WriteTable7 renders the long-running subset (paper Table 7: scripts with
// u1 at least minSerial).
func WriteTable7(w io.Writer, results []*ScriptResult, ks []int, minSerial time.Duration) {
	fmt.Fprintf(w, "Table 7: scripts with serial time >= %s\n", minSerial)
	var subset []*ScriptResult
	for _, r := range results {
		if r.U[1] >= minSerial {
			subset = append(subset, r)
		}
	}
	kMax := ks[len(ks)-1]
	WriteTable4(w, subset, kMax)
}

// WriteTable1 renders the two slowest (by u1) scripts per suite, the
// paper's Table 1 selection rule.
func WriteTable1(w io.Writer, results []*ScriptResult, kMax int) {
	fmt.Fprintln(w, "Table 1: two longest-running scripts per benchmark suite")
	bySuite := map[string][]*ScriptResult{}
	var suites []string
	for _, r := range results {
		if len(bySuite[r.Spec.Suite]) == 0 {
			suites = append(suites, r.Spec.Suite)
		}
		bySuite[r.Spec.Suite] = append(bySuite[r.Spec.Suite], r)
	}
	var chosen []*ScriptResult
	for _, s := range suites {
		rs := bySuite[s]
		sort.Slice(rs, func(i, j int) bool { return rs[i].U[1] > rs[j].U[1] })
		n := 2
		if len(rs) < n {
			n = len(rs)
		}
		chosen = append(chosen, rs[:n]...)
	}
	fmt.Fprintf(w, "%-14s %-22s %-22s %-10s\n", "Benchmark", "Script", "Parallelized", "Eliminated")
	for _, r := range chosen {
		fmt.Fprintf(w, "%-14s %-22s %-22s %-10s\n",
			r.Spec.Suite, r.Spec.Name, perPipelineString(r), eliminatedString(r))
	}
	WriteTable4(w, chosen, kMax)
}

// CombinerLabel maps a candidate to its Table 8 histogram bucket, grouping
// merge flags as merge(*).
func CombinerLabel(c dsl.Candidate) string {
	args := "a b"
	if c.Swap {
		args = "b a"
	}
	switch c.Op.(type) {
	case dsl.Concat:
		return "(concat " + args + ")"
	case dsl.Rerun:
		return "(rerun " + args + ")"
	case dsl.Merge:
		return "(merge(*) " + args + ")"
	default:
		return c.String()
	}
}

// Table8Row is one histogram bucket.
type Table8Row struct {
	Count int
	Label string
}

// Table8 builds the synthesized-combiner histogram over the unique
// benchmark commands (paper Table 8).
func Table8(syn *synth.Synthesizer) []Table8Row {
	counts := map[string]int{}
	for _, spec := range UniqueCommands() {
		res, err := syn.SynthesizeSpec(spec)
		if err != nil || res == nil {
			continue
		}
		for _, c := range res.Plausible {
			counts[CombinerLabel(c)]++
		}
	}
	rows := make([]Table8Row, 0, len(counts))
	for label, n := range counts {
		rows = append(rows, Table8Row{Count: n, Label: label})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Label < rows[j].Label
	})
	return rows
}

// WriteTable8 renders the combiner histogram.
func WriteTable8(w io.Writer, syn *synth.Synthesizer) {
	fmt.Fprintln(w, "Table 8: combiners synthesized across all benchmark commands")
	fmt.Fprintf(w, "%6s  %s\n", "Count", "Synthesized plausible combiner")
	for _, row := range Table8(syn) {
		fmt.Fprintf(w, "%6d  %s\n", row.Count, row.Label)
	}
}

// WriteTable9 renders the unsupported commands and the reason synthesis
// rejected each (paper Table 9).
func WriteTable9(w io.Writer, syn *synth.Synthesizer) {
	fmt.Fprintln(w, "Table 9: unsupported commands")
	fmt.Fprintf(w, "%-40s %s\n", "Command", "Reason unsupported")
	for _, spec := range UniqueCommands() {
		res, _ := syn.SynthesizeSpec(spec)
		if res == nil || res.Err == nil {
			continue
		}
		reason := res.Err.Error()
		switch {
		case errors.Is(res.Err, synth.ErrNoCombiner):
			reason = "no combiner g satisfies f(x1++x2) = g(f(x1),f(x2)) for all streams"
		case errors.Is(res.Err, synth.ErrNoOutputs):
			reason = "generated inputs never produced nonempty outputs"
		case errors.Is(res.Err, synth.ErrMultiInput):
			reason = "processes multiple input streams (footnote 5)"
		case errors.Is(res.Err, synth.ErrNonStream):
			reason = "does not process a data stream (footnote 5)"
		}
		fmt.Fprintf(w, "%-40s %s\n", res.Spec, reason)
	}
}

// WriteTable10 renders per-command synthesis results: search-space
// breakdown, wall-clock time, and the plausible combiners (paper Table 10).
func WriteTable10(w io.Writer, syn *synth.Synthesizer) {
	fmt.Fprintln(w, "Table 10: synthesis results for unique command/flag combinations")
	fmt.Fprintf(w, "%-44s %-26s %10s  %s\n", "Command", "Search space", "Time", "Plausible combiners")
	for _, spec := range UniqueCommands() {
		res, _ := syn.SynthesizeSpec(spec)
		if res == nil {
			continue
		}
		if res.Err != nil {
			fmt.Fprintf(w, "%-44s %-26s %10s  unsupported: %v\n",
				trim(spec, 44), spaceString(res.Space), fmtDuration(res.Duration), res.Err)
			continue
		}
		fmt.Fprintf(w, "%-44s %-26s %10s  %s\n",
			trim(spec, 44), spaceString(res.Space), fmtDuration(res.Duration),
			strings.Join(res.DisplayPlausible(), ", "))
	}
}

func spaceString(s dsl.SpaceSize) string {
	if s.Total() == 0 {
		return "-"
	}
	return fmt.Sprintf("%d (=%d+%d+%d)", s.Total(), s.Rec, s.Struct, s.Run)
}

func fmtDuration(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
