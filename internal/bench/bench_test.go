package bench

import (
	"context"
	"strings"
	"testing"

	"kumquat/internal/pipeline"
)

func TestCatalogSize(t *testing.T) {
	cat := Catalog()
	if len(cat) != 70 {
		t.Fatalf("catalog has %d scripts, want 70", len(cat))
	}
	bySuite := map[string]int{}
	for _, s := range cat {
		bySuite[s.Suite]++
	}
	want := map[string]int{"analytics-mts": 4, "oneliners": 10, "poets": 22, "unix50": 34}
	for suite, n := range want {
		if bySuite[suite] != n {
			t.Errorf("suite %s has %d scripts, want %d", suite, bySuite[suite], n)
		}
	}
}

// TestCatalogStageCountsMatchTable3 checks the reconstruction invariant:
// every script parses, and its stage count equals Table 3's n. The total
// must be the paper's 427.
func TestCatalogStageCountsMatchTable3(t *testing.T) {
	total := 0
	for _, spec := range Catalog() {
		script, err := pipeline.ParseScript(spec.Source, nil)
		if err != nil {
			t.Errorf("%s/%s: parse: %v", spec.Suite, spec.Name, err)
			continue
		}
		stages := 0
		for _, p := range script.Pipelines {
			stages += len(p.Stages)
		}
		if stages != spec.PaperStages {
			t.Errorf("%s/%s: %d stages, Table 3 says %d", spec.Suite, spec.Name, stages, spec.PaperStages)
		}
		total += stages
	}
	if total != 427 {
		t.Errorf("total stages = %d, paper says 427", total)
	}
}

func TestCatalogPaperTotals(t *testing.T) {
	par, elim := 0, 0
	for _, spec := range Catalog() {
		par += spec.PaperParallelized
		elim += spec.PaperEliminated
	}
	// The paper's headline numbers: 325/427 parallelized, 144 eliminated.
	if par != 325 {
		t.Errorf("catalog paper-parallelized total = %d, want 325", par)
	}
	if elim != 144 {
		t.Errorf("catalog paper-eliminated total = %d, want 144", elim)
	}
}

func TestRegisterInputsAllKinds(t *testing.T) {
	h := NewHarness(200, []int{1})
	kinds := map[string]bool{}
	for _, s := range Catalog() {
		kinds[s.Input] = true
	}
	for kind := range kinds {
		if err := RegisterInputs(h.Env(), kind, 200); err != nil {
			t.Errorf("RegisterInputs(%s): %v", kind, err)
		}
	}
	if err := RegisterInputs(h.Env(), "nope", 10); err == nil {
		t.Error("unknown input kind should error")
	}
}

// TestScriptsExecuteCorrectly runs a representative subset of the catalog
// end-to-end: parallel and optimized outputs must equal the serial output.
// The full catalog runs in TestFullCatalog (guarded by -short).
func TestScriptsExecuteCorrectly(t *testing.T) {
	subset := map[string]bool{
		"1.sh": true, "wf.sh": true, "top-n.sh": true, "spell.sh": true,
		"1_1.sh": true, "4_3.sh": true, "8.2_2.sh": true, "8.3_3.sh": true,
		"10.sh": true, "16.sh": true, "23.sh": true, "shortest-scripts.sh": true,
		"diff.sh": true, "set-diff.sh": true, "bi-grams.sh": true,
	}
	h := NewHarness(400, []int{1, 4, 16})
	for _, spec := range Catalog() {
		if !subset[spec.Name] {
			continue
		}
		r, err := h.RunScript(context.Background(), spec)
		if err != nil {
			t.Errorf("%s/%s: %v", spec.Suite, spec.Name, err)
			continue
		}
		if !r.Agree {
			t.Errorf("%s/%s: modes disagree: %v", spec.Suite, spec.Name, r.Errors)
		}
		if r.Total != spec.PaperStages {
			t.Errorf("%s/%s: total stages %d != %d", spec.Suite, spec.Name, r.Total, spec.PaperStages)
		}
	}
}

// table3Divergences are the three scripts whose planning counts differ
// from the paper's published Table 3, each explained in EXPERIMENTS.md
// (reconstruction choices, not planner bugs).
var table3Divergences = map[string]bool{
	"spell.sh": true, // our spell has one rerun-only stage; paper's 6/8 implies two
	"3_3.sh":   true, // rev|sort|rev reconstruction has one extra concat adjacency
	"8.3_3.sh": true, // extra sort inserted to reach Table 3's stage count
}

// TestTable3PerScriptExact pins every non-divergent script's planning
// counts to the paper's published values — the tight regression net over
// the planner and synthesizer.
func TestTable3PerScriptExact(t *testing.T) {
	if testing.Short() {
		t.Skip("full planning pass skipped in -short mode")
	}
	h := NewHarness(400, []int{1})
	results, err := h.PlanOnly()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if table3Divergences[r.Spec.Name] {
			continue
		}
		if r.Parallelized != r.Spec.PaperParallelized || r.Total != r.Spec.PaperStages ||
			r.Eliminated != r.Spec.PaperEliminated {
			t.Errorf("%s/%s: %d/%d elim %d; paper %d/%d elim %d",
				r.Spec.Suite, r.Spec.Name,
				r.Parallelized, r.Total, r.Eliminated,
				r.Spec.PaperParallelized, r.Spec.PaperStages, r.Spec.PaperEliminated)
		}
	}
}

// TestFullCatalog executes every script in every mode. Skipped with -short.
func TestFullCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog run skipped in -short mode")
	}
	h := NewHarness(300, []int{1, 4, 16})
	results, err := h.RunAll(context.Background())
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(results) != 70 {
		t.Fatalf("got %d results", len(results))
	}
	totalPar, totalElim := 0, 0
	for _, r := range results {
		if !r.Agree {
			t.Errorf("%s/%s: modes disagree: %v", r.Spec.Suite, r.Spec.Name, r.Errors)
		}
		totalPar += r.Parallelized
		totalElim += r.Eliminated
	}
	// The paper parallelizes 325/427 stages and eliminates 144 combiners.
	// Our planner's totals must land in the same regime (the few
	// reconstructed stages and planner-policy edges account for the slack).
	if totalPar < 290 || totalPar > 360 {
		t.Errorf("parallelized total = %d, paper 325 (allowed 290..360)", totalPar)
	}
	if totalElim < 115 || totalElim > 175 {
		t.Errorf("eliminated total = %d, paper 144 (allowed 115..175)", totalElim)
	}
	t.Logf("parallelized %d/427 (paper 325), eliminated %d (paper 144)", totalPar, totalElim)
}

func TestTableWriters(t *testing.T) {
	h := NewHarness(150, []int{1, 2})
	var results []*ScriptResult
	for _, spec := range Catalog()[:4] { // analytics-mts suite
		r, err := h.RunScript(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		results = append(results, r)
	}
	var b strings.Builder
	WriteTable3(&b, results)
	WriteTable4(&b, results, 2)
	WriteSweep(&b, results, []int{1, 2}, false)
	WriteSweep(&b, results, []int{1, 2}, true)
	WriteTable7(&b, results, []int{1, 2}, 0)
	WriteTable1(&b, results, 2)
	out := b.String()
	for _, want := range []string{"Table 3", "Table 4", "Table 5", "Table 6", "Table 7", "Table 1", "analytics-mts"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func TestUniqueCommands(t *testing.T) {
	cmds := UniqueCommands()
	// The paper reports 133 unique command/flag combinations; our
	// reconstruction should be in the same neighbourhood.
	if len(cmds) < 90 || len(cmds) > 160 {
		t.Errorf("unique commands = %d, expected near the paper's 133", len(cmds))
	}
	seen := map[string]bool{}
	for _, c := range cmds {
		if seen[c] {
			t.Errorf("duplicate unique command %q", c)
		}
		seen[c] = true
	}
}

func TestTable8Histogram(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis over all unique commands skipped in -short mode")
	}
	h := NewHarness(100, []int{1})
	rows := Table8(h.Synthesizer())
	if len(rows) == 0 {
		t.Fatal("empty Table 8")
	}
	byLabel := map[string]int{}
	for _, r := range rows {
		byLabel[r.Label] += r.Count
	}
	// The paper's buckets must all be populated: concat, rerun (both
	// orders), merge(*), and (back '\n' add). Concat and rerun dominate.
	// (Exact counts follow Table 10's convention — every plausible
	// candidate per command — which differs from Table 8's own totals;
	// see EXPERIMENTS.md.)
	for _, label := range []string{
		"(concat a b)", "(rerun a b)", "(rerun b a)",
		"(merge(*) a b)", "(merge(*) b a)", `(back '\n' add a b)`, `(back '\n' add b a)`,
	} {
		if byLabel[label] == 0 {
			t.Errorf("missing expected bucket %s: %v", label, byLabel)
		}
	}
	if byLabel["(concat a b)"] < 40 {
		t.Errorf("concat bucket suspiciously small: %d", byLabel["(concat a b)"])
	}
	if rows[0].Label != "(concat a b)" && rows[0].Label != "(rerun a b)" {
		t.Errorf("dominant bucket = %s, expected concat or rerun", rows[0].Label)
	}
	t.Logf("Table 8 top buckets: %v", rows[:min(6, len(rows))])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTable9Unsupported(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis over all unique commands skipped in -short mode")
	}
	h := NewHarness(100, []int{1})
	syn := h.Synthesizer()
	var b strings.Builder
	WriteTable9(&b, syn)
	out := b.String()
	// Table 9's rows that appear in our catalog: tail +2, tail +3, the
	// equality-gated awk. (sed 1d / 2d appear inside unix50 scripts.)
	for _, want := range []string{"tail +2", "tail +3", "$1 == 2", "sed 1d", "sed 2d"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 9 missing %q:\n%s", want, out)
		}
	}
}
