package serve

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestWarmGate pins the serving gate arithmetic: memory-tier hits at
// ≥10× pass, anything slower or served from another tier fails.
func TestWarmGate(t *testing.T) {
	cases := []struct {
		tier    string
		speedup float64
		want    bool
	}{
		{"memory", 10, true},
		{"memory", 293.7, true},
		{"memory", 9.99, false},
		{"memory", 0, false},
		{"disk", 50, false},
		{"miss", 1000, false},
		{"", 50, false},
	}
	for _, c := range cases {
		if got := warmGate(c.tier, c.speedup); got != c.want {
			t.Errorf("warmGate(%q, %v) = %v, want %v", c.tier, c.speedup, got, c.want)
		}
	}
}

// TestSpeedupAndMS pins the ratio and unit conversions the JSON report
// is built from.
func TestSpeedupAndMS(t *testing.T) {
	if got := speedup(100*time.Millisecond, 10*time.Millisecond); got != 10 {
		t.Errorf("speedup(100ms, 10ms) = %v, want 10", got)
	}
	if got := speedup(time.Second, 0); got != 0 {
		t.Errorf("speedup(b=0) = %v, want 0", got)
	}
	if got := speedup(time.Second, -time.Millisecond); got != 0 {
		t.Errorf("speedup(b<0) = %v, want 0", got)
	}
	if got := ms(1500 * time.Microsecond); got != 1.5 {
		t.Errorf("ms(1.5ms) = %v, want 1.5", got)
	}
	if got := ms(250 * time.Nanosecond); got != 0 {
		t.Errorf("ms truncates below 1µs: got %v, want 0", got)
	}
}

// TestServeComparisonJSONShape pins the field names of BENCH_serve.json:
// the CI gate and the README numbers read these keys, so a silent rename
// must fail here first.
func TestServeComparisonJSONShape(t *testing.T) {
	cmp := &ServeComparison{
		Workers: 2, CPUs: 1, MaxInFlight: 8, QueueDepth: 32,
		Specs: []ServeSpecLatency{{
			Spec: "wc -l", Space: 2700, ColdMS: 9.5, WarmMS: 0.03,
			WarmSpeedup: 293, WarmTier: "memory",
		}},
		Throughput:   []ServeThroughput{{Clients: 4, Requests: 200, WallMS: 7.6, RPS: 26315}},
		ExecuteAgree: true, Agree: true,
	}
	data, err := json.Marshal(cmp)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]any
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"workers", "cpus", "max_in_flight", "queue_depth",
		"specs", "throughput", "execute_agree", "agree",
	} {
		if _, ok := top[key]; !ok {
			t.Errorf("BENCH_serve.json top-level key %q missing (got %s)", key, data)
		}
	}
	spec := top["specs"].([]any)[0].(map[string]any)
	for _, key := range []string{"spec", "space", "cold_ms", "warm_ms", "warm_speedup", "warm_tier"} {
		if _, ok := spec[key]; !ok {
			t.Errorf("spec entry key %q missing (got %s)", key, data)
		}
	}
	th := top["throughput"].([]any)[0].(map[string]any)
	for _, key := range []string{"clients", "requests", "wall_ms", "rps"} {
		if _, ok := th[key]; !ok {
			t.Errorf("throughput entry key %q missing (got %s)", key, data)
		}
	}
}

// TestGenWordInput pins the benchmark input generator: deterministic,
// newline-terminated, with real duplicate runs for uniq -c to count.
func TestGenWordInput(t *testing.T) {
	a, b := genWordInput(200), genWordInput(200)
	if a != b {
		t.Fatal("genWordInput not deterministic")
	}
	if !strings.HasSuffix(a, "\n") {
		t.Fatal("genWordInput output not newline-terminated")
	}
	lines := strings.Split(strings.TrimSuffix(a, "\n"), "\n")
	if len(lines) != 200 {
		t.Fatalf("genWordInput(200) produced %d lines", len(lines))
	}
	distinct := map[string]bool{}
	for _, l := range lines {
		distinct[l] = true
	}
	if len(distinct) >= len(lines) {
		t.Fatal("genWordInput produced no duplicate lines")
	}
}

// TestBenchSpecsSpan pins the workload classes: one spec per search-space
// size class, all distinct.
func TestBenchSpecsSpan(t *testing.T) {
	if len(benchSpecs) != 3 {
		t.Fatalf("benchSpecs = %v, want one spec per size class", benchSpecs)
	}
	seen := map[string]bool{}
	for _, s := range benchSpecs {
		if seen[s] {
			t.Fatalf("duplicate bench spec %q", s)
		}
		seen[s] = true
	}
}
