// Package serve benchmarks the service plane: it boots an in-process
// kumquatd on a loopback listener and measures cold-vs-warm request
// latency and concurrent-client throughput — the numbers behind
// `kqbench -bench-serve` and BENCH_serve.json. It lives apart from
// internal/bench so that package (imported by the root benchmarks)
// never depends on the public kumquat API.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"kumquat"
	"kumquat/internal/server"
	"kumquat/internal/server/client"
)

// benchSpecs are the single-command serving workloads, one per
// search-space size class — the same classes internal/bench's synthesis
// comparison uses: 2700 (1 delimiter), 26404 (2) and the full
// 110,444-candidate space (3).
var benchSpecs = []string{
	"wc -l",
	"uniq -c",
	`cut -d ',' -f 1,2`,
}

// serveWarmIters is how many warm requests each spec's warm latency is
// measured over (the minimum is reported: it isolates the lookup-path
// cost from scheduler noise).
const serveWarmIters = 30

// serveThroughputRequests is the total request count of each
// throughput configuration.
const serveThroughputRequests = 200

// minWarmSpeedup is the serving gate: a warm request must be at least
// this many times faster than its cold request (the cache lookup path
// versus a full synthesis) for the run to count as healthy.
const minWarmSpeedup = 10

// warmGate is the per-spec health check behind ServeComparison.Agree:
// warm requests must be served from the engine's memory tier and be at
// least minWarmSpeedup× faster than the cold request.
func warmGate(tier string, speedup float64) bool {
	return tier == "memory" && speedup >= minWarmSpeedup
}

// ServeSpecLatency is one command's cold-vs-warm serving measurement
// through the daemon: the first request pays synthesis, every later
// request is a cache lookup plus HTTP overhead.
type ServeSpecLatency struct {
	Spec        string  `json:"spec"`
	Space       int     `json:"space"`
	ColdMS      float64 `json:"cold_ms"`
	WarmMS      float64 `json:"warm_ms"`
	WarmSpeedup float64 `json:"warm_speedup"`
	// WarmTier is the cache tier the warm requests reported ("memory"
	// when the service plane works as designed).
	WarmTier string `json:"warm_tier"`
}

// ServeThroughput is one concurrency configuration's warm-request
// throughput over loopback.
type ServeThroughput struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	WallMS   float64 `json:"wall_ms"`
	RPS      float64 `json:"rps"`
}

// ServeComparison is the BENCH_serve.json payload: per-spec cold-vs-warm
// serving latency and 1-vs-N concurrent-client throughput against a
// loopback kumquatd.
type ServeComparison struct {
	Workers int `json:"workers"`
	// CPUs bounds any concurrency speedup (single-core runners serve
	// N clients at 1-client throughput).
	CPUs        int                `json:"cpus"`
	MaxInFlight int                `json:"max_in_flight"`
	QueueDepth  int                `json:"queue_depth"`
	Specs       []ServeSpecLatency `json:"specs"`
	Throughput  []ServeThroughput  `json:"throughput"`
	// ExecuteAgree reports that a streamed execute through the daemon
	// reproduced the in-process library's output byte-for-byte.
	ExecuteAgree bool `json:"execute_agree"`
	// Agree summarizes the run's health: every warm request was a
	// memory-tier hit at least 10× faster than its cold request, and
	// the executes agreed.
	Agree bool `json:"agree"`
}

// Compare benchmarks the service plane: it starts an in-process
// kumquatd on a loopback listener, measures each benchmark spec's
// cold-vs-warm request latency, drives warm-request throughput at 1 and
// N concurrent clients, and verifies a streamed execute against the
// in-process library. workers <= 0 selects GOMAXPROCS for the engine.
// The context bounds every request of the run.
func Compare(ctx context.Context, workers int) (*ServeComparison, error) {
	srv := server.New(server.Config{
		SynthOptions: kumquat.Options{Seed: 1, Workers: workers},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bench: listen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	var serving sync.WaitGroup
	serving.Add(1)
	go func() {
		defer serving.Done()
		hs.Serve(ln) //nolint:errcheck // closed by Shutdown below
	}()
	defer serving.Wait()
	// Shutdown needs a context that outlives the caller's (a canceled ctx
	// would abort the graceful close), so it gets a fresh root.
	defer hs.Shutdown(context.Background())

	c := client.New("http://" + ln.Addr().String())
	ver, err := c.Version(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench: version: %w", err)
	}
	cmp := &ServeComparison{
		Workers:     ver.DefaultSynthWorkers,
		CPUs:        ver.NumCPU,
		MaxInFlight: ver.MaxInFlight,
		QueueDepth:  ver.QueueDepth,
		Agree:       true,
	}
	if workers > 0 {
		cmp.Workers = workers
	}

	// Cold vs warm per spec: the first request synthesizes, the rest
	// must be served from the engine's memory tier.
	for _, spec := range benchSpecs {
		start := time.Now()
		cold, err := c.Synthesize(ctx, spec)
		coldWall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: cold %q: %w", spec, err)
		}
		if cold.Cached {
			return nil, fmt.Errorf("bench: cold %q was already cached (tier %s)", spec, cold.CacheTier)
		}
		warm := time.Duration(1<<62 - 1)
		tier := ""
		for i := 0; i < serveWarmIters; i++ {
			start = time.Now()
			resp, err := c.Synthesize(ctx, spec)
			if d := time.Since(start); d < warm {
				warm = d
			}
			if err != nil {
				return nil, fmt.Errorf("bench: warm %q: %w", spec, err)
			}
			tier = resp.CacheTier
			if resp.Combiner != cold.Combiner {
				cmp.Agree = false
			}
		}
		sl := ServeSpecLatency{
			Spec:        spec,
			Space:       cold.Space.Total,
			ColdMS:      ms(coldWall),
			WarmMS:      ms(warm),
			WarmSpeedup: speedup(coldWall, warm),
			WarmTier:    tier,
		}
		if !warmGate(tier, sl.WarmSpeedup) {
			cmp.Agree = false
		}
		cmp.Specs = append(cmp.Specs, sl)
	}

	// Warm-request throughput at increasing client counts. Requests
	// rotate over the (now warm) spec set, so the measured cost is the
	// service plane itself: HTTP, admission, lookup.
	for _, clients := range []int{1, 4, 16} {
		// Round to a whole number of requests per client so every
		// configuration measures exactly what it reports.
		requests := serveThroughputRequests / clients * clients
		wall, err := serveStorm(ctx, c, clients, requests)
		if err != nil {
			return nil, fmt.Errorf("bench: %d clients: %w", clients, err)
		}
		cmp.Throughput = append(cmp.Throughput, ServeThroughput{
			Clients:  clients,
			Requests: requests,
			WallMS:   ms(wall),
			RPS:      float64(requests) / wall.Seconds(),
		})
	}

	// Streamed execute vs the in-process library.
	agree, err := serveExecuteAgree(ctx, c)
	if err != nil {
		return nil, err
	}
	cmp.ExecuteAgree = agree
	if !agree {
		cmp.Agree = false
	}
	return cmp, nil
}

// serveStorm fires requests warm synthesize calls spread over clients
// concurrent workers and returns the wall time.
func serveStorm(ctx context.Context, c *client.Client, clients, requests int) (time.Duration, error) {
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	per := requests / clients
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				spec := benchSpecs[(g+i)%len(benchSpecs)]
				if _, err := c.Synthesize(ctx, spec); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	return wall, nil
}

// serveExecuteAgree streams a word-frequency run through the daemon and
// compares it to the same pipeline executed in-process.
func serveExecuteAgree(ctx context.Context, c *client.Client) (bool, error) {
	input := genWordInput(200)
	script := "sort | uniq -c | sort -rn"

	var viaServer strings.Builder
	if _, err := c.Execute(ctx, script,
		client.ExecuteOptions{K: 4}, strings.NewReader(input), &viaServer); err != nil {
		return false, fmt.Errorf("bench: execute via server: %w", err)
	}

	sys := kumquat.New(kumquat.NewEnv())
	plan, err := sys.Parallelize(script + "\n")
	if err != nil {
		return false, fmt.Errorf("bench: local parallelize: %w", err)
	}
	rep, err := plan.Execute(ctx,
		kumquat.WithParallelism(4), kumquat.WithStdin(strings.NewReader(input)))
	if err != nil {
		return false, fmt.Errorf("bench: local execute: %w", err)
	}
	return viaServer.String() == rep.Output, nil
}

// genWordInput deterministically generates n lines drawn from a small
// vocabulary, so uniq -c has real duplicate runs to count.
func genWordInput(n int) string {
	words := []string{"pear", "apple", "quince", "medlar", "fig", "loquat"}
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(words[(i*7+i/3)%len(words)])
		b.WriteByte('\n')
	}
	return b.String()
}

// ms converts a duration to milliseconds with microsecond precision.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// speedup is the a/b wall-time ratio (0 when b is zero).
func speedup(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
