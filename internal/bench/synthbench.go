package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"kumquat/internal/pipeline"
	"kumquat/internal/synth"
	"kumquat/internal/unix"
)

// synthBenchSpecs are the single-command synthesis workloads for the
// sequential-vs-parallel comparison, one per search-space size class:
// 2700 (1 delimiter), 26404 (2) and the full 110,444-candidate space (3).
var synthBenchSpecs = []string{
	"wc -l",
	"uniq -c",
	`cut -d ',' -f 1,2`,
}

// synthBenchExamples are the pipelines of the four examples/ programs,
// the workloads for the cold-vs-warm cache comparison. Each registers
// the input files its cat source reads, like the example programs do,
// so the first stage synthesizes against real content rather than
// short-circuiting on a missing file.
var synthBenchExamples = []struct {
	name     string
	script   string
	register func(env *unix.Env) error
}{
	{"quickstart", "cat data.txt | sort | uniq -c | sort -rn\n",
		func(env *unix.Env) error {
			env.FS.Register("data.txt", "pear\napple\npear\nquince\napple\npear\n")
			return nil
		}},
	{"wordfreq", wordfreqScript,
		func(env *unix.Env) error {
			env.FS.Register("in/wf.txt", genWordfreqInput(400))
			return nil
		}},
	{"unix50", `cat in/names.txt | cut -d ' ' -f 1 | sort | uniq -c | sort -rn` + "\n",
		func(env *unix.Env) error { return RegisterInputs(env, "names", 400) }},
	{"analytics", `cat in/mts.csv | sed 's/T..:..:..//' | cut -d ',' -f 1,3 | sort -u | cut -d ',' -f 1 | sort | uniq -c | awk -v OFS="\t" "{print \$2,\$1}"` + "\n",
		func(env *unix.Env) error { return RegisterInputs(env, "mts", 400) }},
}

// SynthSpecResult is one command's sequential-vs-parallel synthesis
// measurement.
type SynthSpecResult struct {
	Spec      string  `json:"spec"`
	Space     int     `json:"space"`
	Plausible int     `json:"plausible"`
	SeqMS     float64 `json:"seq_ms"`
	ParMS     float64 `json:"par_ms"`
	Speedup   float64 `json:"speedup"`
	Agree     bool    `json:"agree"`
}

// SynthExampleResult is one example pipeline's cold-vs-warm compilation
// measurement through a shared engine.
type SynthExampleResult struct {
	Name        string  `json:"name"`
	Stages      int     `json:"stages"`
	ColdMS      float64 `json:"cold_ms"`
	WarmMS      float64 `json:"warm_ms"`
	WarmSpeedup float64 `json:"warm_speedup"`
	Hits        int64   `json:"cache_hits"`
	Misses      int64   `json:"cache_misses"`
}

// SynthComparison is the BENCH_synth.json payload: parallel-vs-sequential
// synthesis wall times per search-space class, and cold-vs-warm combiner
// cache timings for the four example pipelines.
type SynthComparison struct {
	Workers int `json:"workers"`
	// CPUs is the machine's core count: the ceiling on any parallel
	// speedup (on a single-core machine Speedup ≈ 1.0 is expected).
	CPUs     int                  `json:"cpus"`
	Specs    []SynthSpecResult    `json:"specs"`
	Examples []SynthExampleResult `json:"examples"`
	// Agree reports that every parallel synthesis reproduced the
	// sequential plausible set and combiner byte-for-byte.
	Agree bool `json:"agree"`
}

// CompareSynth benchmarks the synthesis engine: each spec is synthesized
// with a sequential (Workers=1) and a parallel (Workers=workers) engine
// on cold caches and the results compared; then the four example
// pipelines are compiled twice through one shared engine to measure the
// warm-cache path. workers <= 0 selects GOMAXPROCS. The context bounds
// every synthesis.
func CompareSynth(ctx context.Context, workers int) (*SynthComparison, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cmp := &SynthComparison{Workers: workers, CPUs: runtime.NumCPU(), Agree: true}

	for _, spec := range synthBenchSpecs {
		seq := synth.New(unix.DefaultEnv(), synth.Options{Seed: 1, Workers: 1, CacheSize: -1})
		par := synth.New(unix.DefaultEnv(), synth.Options{Seed: 1, Workers: workers, CacheSize: -1})

		start := time.Now()
		rs, err := seq.Synthesize(ctx, spec)
		seqWall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: sequential %q: %w", spec, err)
		}
		start = time.Now()
		rp, err := par.Synthesize(ctx, spec)
		parWall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: parallel %q: %w", spec, err)
		}

		agree := rs.Combiner.String() == rp.Combiner.String() &&
			len(rs.Plausible) == len(rp.Plausible)
		for i := range rs.Plausible {
			if !agree || rs.Plausible[i].String() != rp.Plausible[i].String() {
				agree = false
				break
			}
		}
		if !agree {
			cmp.Agree = false
		}
		cmp.Specs = append(cmp.Specs, SynthSpecResult{
			Spec:      spec,
			Space:     rs.Space.Total(),
			Plausible: len(rs.Plausible),
			SeqMS:     ms(seqWall),
			ParMS:     ms(parWall),
			Speedup:   Speedup(seqWall, parWall),
			Agree:     agree,
		})
	}

	// Cold vs warm: per example, a fresh engine compiles the pipeline
	// twice. The second pass resolves every stage from the combiner
	// cache, so WarmMS is the O(lookup) path.
	for _, ex := range synthBenchExamples {
		env := unix.DefaultEnv()
		if err := ex.register(env); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", ex.name, err)
		}
		eng := synth.New(env, synth.Options{Seed: 1, Workers: workers})
		script, err := pipeline.ParseScript(ex.script, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", ex.name, err)
		}
		before := eng.Stats()
		compile := func() (int, time.Duration, error) {
			stages := 0
			start := time.Now()
			for _, p := range script.Pipelines {
				plan, err := pipeline.CompileContext(ctx, p, eng)
				if err != nil {
					return 0, 0, fmt.Errorf("bench: %s: %w", ex.name, err)
				}
				stages += len(plan.Stages)
			}
			return stages, time.Since(start), nil
		}
		stages, cold, err := compile()
		if err != nil {
			return nil, err
		}
		_, warm, err := compile()
		if err != nil {
			return nil, err
		}
		delta := eng.Stats().Sub(before)
		cmp.Examples = append(cmp.Examples, SynthExampleResult{
			Name:        ex.name,
			Stages:      stages,
			ColdMS:      ms(cold),
			WarmMS:      ms(warm),
			WarmSpeedup: Speedup(cold, warm),
			Hits:        delta.Hits + delta.DiskHits,
			Misses:      delta.Misses,
		})
	}
	return cmp, nil
}

// ms converts a duration to milliseconds with microsecond precision.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
