package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"kumquat/internal/synth"
	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// combineKs is the substream-count sweep of the combine-plane benchmark:
// the fold's O(k·n) costs separate visibly from the tree's and heap's
// O(n·log k) from k = 32 up.
var combineKs = []int{2, 8, 32, 128}

// CombineCaseResult is one combiner's fold-vs-tree measurement at one k.
type CombineCaseResult struct {
	Spec     string  `json:"spec"`
	Combiner string  `json:"combiner"`
	K        int     `json:"k"`
	Lines    int     `json:"lines"`
	FoldMS   float64 `json:"fold_ms"`
	TreeMS   float64 `json:"tree_ms"`
	Speedup  float64 `json:"speedup"`
	Agree    bool    `json:"agree"`
}

// MergeCaseResult is one scan-vs-heap k-way merge measurement.
type MergeCaseResult struct {
	K       int     `json:"k"`
	Lines   int     `json:"lines"`
	ScanMS  float64 `json:"scan_ms"`
	HeapMS  float64 `json:"heap_ms"`
	Speedup float64 `json:"speedup"`
	Agree   bool    `json:"agree"`
}

// CombineComparison is the BENCH_combine.json payload: serial-fold vs
// tree-reduction combine per pairwise combiner class, and cursor-scan vs
// heap k-way merge, swept over k.
type CombineComparison struct {
	Workers int `json:"workers"`
	// CPUs is the machine's core count. The tree's bracketing advantage
	// (O(n·log k) copied bytes vs the fold's O(n·k)) and the heap's
	// comparison advantage survive on one core; the tree's concurrent
	// pair evaluation additionally needs real cores.
	CPUs       int                 `json:"cpus"`
	Scale      int                 `json:"scale_lines"`
	FoldVsTree []CombineCaseResult `json:"fold_vs_tree"`
	ScanVsHeap []MergeCaseResult   `json:"scan_vs_heap"`
	// Agree reports that every tree combine and every heap merge was
	// byte-identical to its serial baseline.
	Agree bool `json:"agree"`
}

// combineSpecs are the pairwise-combining commands of the fold-vs-tree
// comparison: the two stitch-class combiners the example suite produces.
// Simultaneous combiners (concat, merge, rerun) take the same code path
// under fold and tree and are covered by the scan-vs-heap merge sweep.
var combineSpecs = []string{"uniq", "uniq -c"}

// genSortedWords produces a sorted stream of n Zipf-flavoured words over
// an n/3-word vocabulary, the substrate whose chunked uniq/uniq -c
// outputs exercise the stitch combiners' boundary merging on substreams
// large enough for the fold's O(k·n) accumulator copying to register.
func genSortedWords(n int) string {
	rng := rand.New(rand.NewSource(23))
	distinct := n/3 + 1
	lines := make([]string, n)
	for i := range lines {
		// Squaring biases toward low indices, so runs form and spill
		// across chunk boundaries.
		f := rng.Float64()
		lines[i] = fmt.Sprintf("w%06d", int(f*f*float64(distinct)))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// timeMin runs f reps times and returns the fastest wall time — the
// standard noise filter for sub-millisecond measurements.
func timeMin(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// CompareCombine benchmarks the combine plane: for each pairwise combiner
// class, the serial left fold (Combiner.CombineK) against the balanced
// tree (Combiner.CombineKTree) on k real substreams; and the k-way merge
// of pre-sorted streams through the retired cursor scan against the heap
// merge. workers <= 0 selects GOMAXPROCS; scale <= 0 selects 20000
// lines. The context bounds the combiner syntheses.
func CompareCombine(ctx context.Context, scale, workers int) (*CombineComparison, error) {
	if scale <= 0 {
		scale = 20000
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cmp := &CombineComparison{
		Workers: workers,
		CPUs:    runtime.NumCPU(),
		Scale:   scale,
		Agree:   true,
	}
	const reps = 5
	// One LineSeq indexes the input's lines for every chunking below —
	// the data-plane idiom the combine layers share.
	input := textio.ScanLines(genSortedWords(scale))

	for _, spec := range combineSpecs {
		env := unix.DefaultEnv()
		eng := synth.New(env, synth.Options{Seed: 1})
		res, err := eng.Synthesize(ctx, spec)
		if err != nil {
			return nil, fmt.Errorf("bench: synthesize %q: %w", spec, err)
		}
		cmd, err := unix.Parse(spec, env)
		if err != nil {
			return nil, fmt.Errorf("bench: %q: %w", spec, err)
		}
		for _, k := range combineKs {
			chunks := input.Chunk(k)
			outs := make([]string, len(chunks))
			lines := 0
			for i, ch := range chunks {
				if outs[i], err = cmd.Run(ch); err != nil {
					return nil, fmt.Errorf("bench: %q chunk %d: %w", spec, i, err)
				}
				lines += strings.Count(outs[i], "\n")
			}
			var foldOut, treeOut string
			foldWall, err := timeMin(reps, func() error {
				foldOut, err = res.Combiner.CombineK(outs)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %q fold: %w", spec, err)
			}
			treeWall, err := timeMin(reps, func() error {
				treeOut, err = res.Combiner.CombineKTree(outs, workers)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %q tree: %w", spec, err)
			}
			agree := foldOut == treeOut
			if !agree {
				cmp.Agree = false
			}
			cmp.FoldVsTree = append(cmp.FoldVsTree, CombineCaseResult{
				Spec:     spec,
				Combiner: res.Combiner.Primary().String(),
				K:        k,
				Lines:    lines,
				FoldMS:   ms(foldWall),
				TreeMS:   ms(treeWall),
				Speedup:  Speedup(foldWall, treeWall),
				Agree:    agree,
			})
		}
	}

	sortCmd, err := unix.Parse("sort", unix.DefaultEnv())
	if err != nil {
		return nil, err
	}
	sc := sortCmd.(*unix.SortCmd)
	for _, k := range combineKs {
		chunks := input.Chunk(k)
		streams := make([]string, len(chunks))
		lines := 0
		for i, ch := range chunks {
			if streams[i], err = sc.Run(ch); err != nil {
				return nil, fmt.Errorf("bench: sort chunk %d: %w", i, err)
			}
			lines += strings.Count(streams[i], "\n")
		}
		var scanOut, heapOut string
		scanWall, err := timeMin(reps, func() error {
			scanOut = sc.MergeStreamsScan(streams...)
			return nil
		})
		if err != nil {
			return nil, err
		}
		heapWall, err := timeMin(reps, func() error {
			heapOut = sc.MergeStreams(streams...)
			return nil
		})
		if err != nil {
			return nil, err
		}
		agree := scanOut == heapOut
		if !agree {
			cmp.Agree = false
		}
		cmp.ScanVsHeap = append(cmp.ScanVsHeap, MergeCaseResult{
			K:       k,
			Lines:   lines,
			ScanMS:  ms(scanWall),
			HeapMS:  ms(heapWall),
			Speedup: Speedup(scanWall, heapWall),
			Agree:   agree,
		})
	}
	return cmp, nil
}
