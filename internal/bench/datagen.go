package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"kumquat/internal/unix"
)

// RegisterInputs registers the synthetic input files an input kind needs,
// scaled to roughly `lines` lines of primary input. Generation is
// deterministic for a given (kind, lines) pair.
//
// These generators substitute for the paper's datasets (3.4 GB bus
// telemetry, 927 MB of Project Gutenberg books, ~1 GB script-specific
// inputs): they reproduce the line/field structure and key skew that drive
// combiner behaviour and reduction ratios, at configurable scale.
func RegisterInputs(env *unix.Env, kind string, lines int) error {
	rng := rand.New(rand.NewSource(int64(len(kind))*1315423911 + int64(lines)))
	switch kind {
	case "mts":
		env.FS.Register("in/mts.csv", genMTS(rng, lines))
	case "text":
		env.FS.Register("in/text.txt", genText(rng, lines))
	case "twotexts":
		env.FS.Register("in/text.txt", genText(rng, lines))
		env.FS.Register("in/text2.txt", genText(rng, lines))
	case "files":
		env.FS.Register("in/files.txt", genFileList(env, rng, lines))
	case "books":
		registerBooks(env, rng, lines)
	case "names":
		env.FS.Register("in/names.txt", genNames(rng, lines))
	case "history":
		env.FS.Register("in/history.tsv", genHistory(rng, lines))
	case "chess":
		env.FS.Register("in/chess.txt", genChess(rng, lines))
	case "source":
		env.FS.Register("in/source.txt", genSource(rng, lines))
	case "bodies":
		env.FS.Register("in/bodies.txt", genBodies(rng, lines))
	case "offices":
		env.FS.Register("in/offices.txt", genOffices(rng, lines))
	case "credits":
		env.FS.Register("in/credits.txt", genCredits(rng, lines))
	case "poem":
		env.FS.Register("in/poem.txt", genPoem(rng, lines))
	case "mail":
		env.FS.Register("in/mail.txt", genMail(rng, lines))
	case "awards":
		env.FS.Register("in/awards.txt", genAwards(rng, lines))
	default:
		return fmt.Errorf("bench: unknown input kind %q", kind)
	}
	return nil
}

var vocab = []string{
	"the", "light", "of", "sea", "and", "wind", "stone", "dark", "river",
	"night", "ship", "king", "gold", "dream", "land", "said", "he", "And",
	"word", "time", "green", "song", "Light", "house", "morning", "letter",
}

// genText produces book-like prose: mixed-case words, commas and periods,
// the word "light" frequent enough for the poets/grep benchmarks.
func genText(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		n := 4 + rng.Intn(8)
		for j := 0; j < n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(vocab[rng.Intn(len(vocab))])
			if rng.Intn(9) == 0 {
				b.WriteByte(',')
			}
		}
		b.WriteByte('.')
		b.WriteByte('\n')
	}
	return b.String()
}

// genMTS produces bus-telemetry CSV rows shaped like the COVID-19 dataset:
// ISO timestamp, transit line, vehicle, reading.
func genMTS(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		day := 1 + rng.Intn(28)
		month := 1 + rng.Intn(12)
		fmt.Fprintf(&b, "2020-%02d-%02dT%02d:%02d:%02d,line%d,v%03d,r%d\n",
			month, day, rng.Intn(24), rng.Intn(60), rng.Intn(60),
			1+rng.Intn(20), 1+rng.Intn(40), rng.Intn(100))
	}
	return b.String()
}

// genFileList lists the FS corpus (for shortest-scripts.sh), repeating to
// reach the requested scale.
func genFileList(env *unix.Env, rng *rand.Rand, lines int) string {
	names := env.FS.DictionaryNames()
	var b strings.Builder
	for i := 0; i < lines; i++ {
		b.WriteString(names[rng.Intn(len(names))])
		b.WriteByte('\n')
	}
	return b.String()
}

// registerBooks registers the poets corpus: pg/bookNN.txt files plus the
// genesis/exodus-style standalone book. The phrases "the land of" and
// "And he said" appear so the trigram_rec greps have matches.
func registerBooks(env *unix.Env, rng *rand.Rand, lines int) {
	books := lines/60 + 1
	if books > 40 {
		books = 40
	}
	perBook := lines / books
	if perBook < 5 {
		perBook = 5
	}
	for i := 0; i < books; i++ {
		var b strings.Builder
		for l := 0; l < perBook; l++ {
			switch rng.Intn(12) {
			case 0:
				b.WriteString("And he said unto the land of ")
				b.WriteString(vocab[rng.Intn(len(vocab))])
				b.WriteByte('\n')
			default:
				n := 4 + rng.Intn(8)
				for j := 0; j < n; j++ {
					if j > 0 {
						b.WriteByte(' ')
					}
					b.WriteString(vocab[rng.Intn(len(vocab))])
				}
				b.WriteByte('\n')
			}
		}
		env.FS.Register(fmt.Sprintf("pg/book%02d.txt", i), b.String())
	}
	env.FS.Register("in/genesis.txt", genText(rng, perBook))
}

var firstNames = []string{"Ken", "Dennis", "Brian", "Rob", "Doug", "Bjarne", "Grace", "Ada", "Alan", "Barbara"}
var lastNames = []string{"Thompson", "Ritchie", "Kernighan", "Pike", "McIlroy", "Stroustrup", "Hopper", "Lovelace", "Turing", "Liskov"}

func genNames(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&b, "%s %s\n", firstNames[rng.Intn(len(firstNames))], lastNames[rng.Intn(len(lastNames))])
	}
	return b.String()
}

func genHistory(rng *rand.Rand, lines int) string {
	orgs := []string{"AT&T Bell Labs research unix,", "Berkeley CSRG bsd systems,", "MIT project multics lab,"}
	machines := []string{"pdp7", "pdp11", "vax", "interdata"}
	var b strings.Builder
	for i := 0; i < lines; i++ {
		year := 1969 + rng.Intn(30)
		fmt.Fprintf(&b, "%s\t%s\tv%d\t%d\n",
			orgs[rng.Intn(len(orgs))], machines[rng.Intn(len(machines))], 1+rng.Intn(10), year)
	}
	return b.String()
}

// genChess produces move-list lines like "1.e4 exd5 2.Nf3 Nxe5": white's
// move glued to the move number (as in compact PGN), black's separate.
// The glued form is what makes the unix50 4.x pipelines meaningful
// (grep 'x' | grep '\.' | cut -d '.' -f 2 isolates capturing moves).
func genChess(rng *rand.Rand, lines int) string {
	pieces := []string{"K", "Q", "R", "B", "N", ""}
	move := func() string {
		s := pieces[rng.Intn(len(pieces))]
		if rng.Intn(3) == 0 {
			s += "x"
		}
		return s + fmt.Sprintf("%c%d", 'a'+rng.Intn(8), 1+rng.Intn(8))
	}
	var b strings.Builder
	for i := 0; i < lines; i++ {
		moves := 2 + rng.Intn(6)
		for m := 1; m <= moves; m++ {
			if m > 1 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d.%s %s", m, move(), move())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func genSource(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&b, "print(\"hello world %d\")\n", rng.Intn(100))
		case 1:
			fmt.Fprintf(&b, "x = %d\n", rng.Intn(1000))
		default:
			fmt.Fprintf(&b, "// comment %s\n", vocab[rng.Intn(len(vocab))])
		}
	}
	return b.String()
}

func genBodies(rng *rand.Rand, lines int) string {
	bodies := []string{"mercury", "venus", "earth", "mars", "jupiter", "saturn", "uranus", "neptune", "pluto"}
	var b strings.Builder
	for i := 0; i < lines; i++ {
		name := bodies[rng.Intn(len(bodies))]
		fmt.Fprintf(&b, "%s %d\n", name, 10+rng.Intn(5000))
	}
	return b.String()
}

func genOffices(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "  Bell Labs, %d Mountain Ave, Murray Hill\n", 100+rng.Intn(900))
		case 1:
			b.WriteString("Bell Telephone Laboratories, New York City, a very long office address line here\n")
		default:
			fmt.Fprintf(&b, "Office %d, %s Street\n", rng.Intn(100), vocab[rng.Intn(len(vocab))])
		}
	}
	return b.String()
}

func genCredits(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		if rng.Intn(3) != 0 {
			fmt.Fprintf(&b, "%s feature (%s %s)\n", vocab[rng.Intn(len(vocab))],
				firstNames[rng.Intn(len(firstNames))], lastNames[rng.Intn(len(lastNames))])
		} else {
			fmt.Fprintf(&b, "plain credit line %d\n", i)
		}
	}
	return b.String()
}

func genPoem(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "\"%s %s\" sang the %s\n", vocab[rng.Intn(len(vocab))],
				vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))])
		case 1:
			fmt.Fprintf(&b, "PORT and BELL at Night %d\n", rng.Intn(50))
		default:
			n := 3 + rng.Intn(6)
			for j := 0; j < n; j++ {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(vocab[rng.Intn(len(vocab))])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func genMail(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "To: %s@bell-labs.com %s@research.att.com\n",
				strings.ToLower(firstNames[rng.Intn(len(firstNames))]),
				strings.ToLower(lastNames[rng.Intn(len(lastNames))]))
		case 1:
			fmt.Fprintf(&b, "From: %s@cs.example.edu\n", strings.ToLower(firstNames[rng.Intn(len(firstNames))]))
		default:
			fmt.Fprintf(&b, "body text %s %s\n", vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))])
		}
	}
	return b.String()
}

func genAwards(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		year := 1960 + rng.Intn(60)
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&b, "%d National Medal of Technology for UNIX\n", year)
		} else {
			fmt.Fprintf(&b, "%d Prize for %s\n", year, vocab[rng.Intn(len(vocab))])
		}
	}
	return b.String()
}
