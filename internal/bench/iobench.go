package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// ioStages are the streaming stages the data-plane benchmark drives over
// the corpus: concat-class line mappers (the LineEmitter fast path) plus
// the field-kernel consumers. Each runs standalone through unix.Exec so
// the measurement isolates the per-line cost of the command substrate —
// reading, line scanning, field splitting, emission — from planner and
// combine overhead.
var ioStages = []string{
	"cat",
	"tr A-Z a-z",
	"grep light",
	"cut -c 1-24",
	"cut -d ' ' -f 1",
	"sed 's/light/dark/'",
	"wc -w",
}

// IOStageRun is one stage's streaming measurement over the corpus.
type IOStageRun struct {
	Spec  string `json:"spec"`
	Lines int    `json:"lines"`
	// BytesIn/BytesOut are the stream volumes of the best round.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	// WallMS is the best-of-rounds wall time; MBPerSec derives from it.
	WallMS   float64 `json:"wall_ms"`
	MBPerSec float64 `json:"mb_per_sec"`
	// Allocs and AllocBytes are the best round's heap deltas
	// (runtime.MemStats — single process, so deltas are attributable);
	// AllocsPerLine is the gate figure: steady-state heap allocations per
	// input line.
	Allocs        uint64  `json:"allocs"`
	AllocBytes    uint64  `json:"alloc_bytes"`
	AllocsPerLine float64 `json:"allocs_per_line"`
}

// IOIngest reports the corpus ingest measurement: the mmap (or fallback)
// of the host file, the once-computed line index, and the cost of
// re-chunking the shared index k ways — the operations the zero-copy data
// plane claims are pointer arithmetic.
type IOIngest struct {
	// Mapped is true when the corpus came in through an OS memory mapping
	// rather than the read-into-buffer fallback.
	Mapped bool `json:"mapped"`
	// MapWallMS is the MapFile cost; IndexWallMS the one-time line scan;
	// ChunkWallMS the k-way re-chunk of the shared index (k=64).
	MapWallMS   float64 `json:"map_wall_ms"`
	IndexWallMS float64 `json:"index_wall_ms"`
	ChunkWallMS float64 `json:"chunk_wall_ms"`
	// ChunkAllocs is the heap allocation count of the 64-way chunking —
	// O(k) slice headers, not O(bytes), when the plane is zero-copy.
	ChunkAllocs uint64 `json:"chunk_allocs"`
}

// IOComparison is the BENCH_io.json payload: per-stage streaming
// throughput and allocations/line over one corpus, plus the ingest
// figures and the allocation gate verdict.
type IOComparison struct {
	Scale       int      `json:"scale_lines"`
	CorpusBytes int64    `json:"corpus_bytes"`
	Rounds      int      `json:"rounds"`
	CPUs        int      `json:"cpus"`
	Ingest      IOIngest `json:"ingest"`
	Stages      []IOStageRun `json:"stages"`
	// GateLimit is the allocations/line ceiling and GateStages the number
	// of streaming stages that met it; GatePass requires at least three.
	GateLimit  float64 `json:"gate_limit"`
	GateStages int     `json:"gate_stages"`
	GatePass   bool    `json:"gate_pass"`
}

// countWriter discards output while counting it, so stage measurement
// excludes sink costs.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// CompareIO measures the zero-copy data plane: it writes a genText corpus
// of `scale` lines to a host file, ingests it through MapFile + the
// shared line index, and streams each ioStages entry over the mapped view
// measuring throughput and heap allocations per input line.
func CompareIO(ctx context.Context, scale int) (*IOComparison, error) {
	if scale <= 0 {
		scale = 200000
	}
	const rounds = 3
	dir, err := os.MkdirTemp("", "kqbench-io-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "corpus.txt")
	if err := writeIOCorpus(path, scale); err != nil {
		return nil, err
	}

	cmp := &IOComparison{
		Scale:     scale,
		Rounds:    rounds,
		CPUs:      runtime.NumCPU(),
		GateLimit: 2.0,
	}

	mapStart := time.Now()
	m, err := textio.MapFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: io corpus map: %w", err)
	}
	defer m.Close()
	cmp.Ingest.MapWallMS = float64(time.Since(mapStart).Microseconds()) / 1000
	cmp.Ingest.Mapped = m.Mapped()
	cmp.CorpusBytes = int64(m.Len())

	idxStart := time.Now()
	seq := textio.ScanBytes(m.Bytes())
	cmp.Ingest.IndexWallMS = float64(time.Since(idxStart).Microseconds()) / 1000
	lines := seq.Len()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	chunkStart := time.Now()
	chunks := seq.Chunk(64)
	cmp.Ingest.ChunkWallMS = float64(time.Since(chunkStart).Microseconds()) / 1000
	runtime.ReadMemStats(&after)
	cmp.Ingest.ChunkAllocs = after.Mallocs - before.Mallocs
	var total int64
	for _, c := range chunks {
		total += int64(len(c))
	}
	if total != cmp.CorpusBytes {
		return nil, fmt.Errorf("bench: io chunking lost bytes: %d of %d", total, cmp.CorpusBytes)
	}

	env := unix.DefaultEnv()
	view := m.View()
	for _, spec := range ioStages {
		cmd, err := unix.Parse(spec, env)
		if err != nil {
			return nil, fmt.Errorf("bench: io stage %q: %w", spec, err)
		}
		run := IOStageRun{Spec: spec, Lines: lines, BytesIn: cmp.CorpusBytes}
		for r := 0; r < rounds; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sink := &countWriter{}
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			execErr := unix.Exec(ctx, cmd, strings.NewReader(view), sink)
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			if execErr != nil {
				return nil, fmt.Errorf("bench: io stage %q: %w", spec, execErr)
			}
			if ms := float64(wall.Microseconds()) / 1000; run.WallMS == 0 || ms < run.WallMS {
				run.WallMS = ms
				run.BytesOut = sink.n
				run.Allocs = after.Mallocs - before.Mallocs
				run.AllocBytes = after.TotalAlloc - before.TotalAlloc
			}
		}
		if run.WallMS > 0 {
			run.MBPerSec = float64(run.BytesIn) / (1 << 20) / (run.WallMS / 1000)
		}
		if lines > 0 {
			run.AllocsPerLine = float64(run.Allocs) / float64(lines)
		}
		if run.AllocsPerLine <= cmp.GateLimit {
			cmp.GateStages++
		}
		cmp.Stages = append(cmp.Stages, run)
	}
	cmp.GatePass = cmp.GateStages >= 3
	return cmp, nil
}

// writeIOCorpus streams a deterministic genText-shaped corpus of `lines`
// lines to path without holding it all in memory: a 1 MiB seed block of
// prose repeats until the line budget is spent.
func writeIOCorpus(path string, lines int) error {
	rng := rand.New(rand.NewSource(0x10c0))
	const blockLines = 20000
	block := genText(rng, blockLines)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := io.Writer(f)
	for remaining := lines; remaining > 0; remaining -= blockLines {
		b := block
		if remaining < blockLines {
			b = genText(rng, remaining)
		}
		if _, err := io.WriteString(w, b); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
