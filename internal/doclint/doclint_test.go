package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// lintedPackages are the directories whose exported identifiers must all
// carry doc comments (relative to this package).
var lintedPackages = []string{
	"../synth",
	"../synth/cache",
	"../dsl",
	"../server",
	"../server/client",
	"../conformance",
}

// TestDocComments fails for every exported top-level identifier — type,
// function, method, const or var — in the linted packages that has no doc
// comment. Group declarations (`const (...)`, `var (...)`) may document
// the group instead of each member.
func TestDocComments(t *testing.T) {
	for _, dir := range lintedPackages {
		for _, miss := range missingDocs(t, dir) {
			t.Errorf("%s", miss)
		}
	}
}

// missingDocs parses one package directory (tests excluded) and returns a
// description of every undocumented exported identifier.
func missingDocs(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return out
}

// lintGenDecl checks a type/const/var declaration; a spec is documented
// if it or its enclosing group carries a comment.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := d.Tok.String()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a function is free-standing or a
// method on an exported type (methods on unexported types are not part
// of the package's godoc surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch t := typ.(type) {
		case *ast.StarExpr:
			typ = t.X
		case *ast.IndexExpr: // generic receiver
			typ = t.X
		case *ast.Ident:
			return t.IsExported()
		default:
			return true
		}
	}
}
