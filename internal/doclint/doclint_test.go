package doclint

import (
	"testing"

	"kumquat/internal/analysis"
	"kumquat/internal/analysis/docs"
)

// TestDocComments fails for every exported top-level identifier — type,
// function, method, const or var — in the enforced packages that has no
// doc comment. The rules and package list live with the docs analyzer in
// internal/analysis/docs; this test is the historical doc-lint entry
// point, now a shim over the analyzer kqvet runs repo-wide.
func TestDocComments(t *testing.T) {
	pkgs, err := analysis.Load(".", docs.Packages...)
	if err != nil {
		t.Fatalf("loading enforced packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no enforced packages resolved — docs.Packages is stale")
	}
	findings, err := analysis.RunAnalyzers(analysis.ModuleRoot("."), pkgs,
		[]*analysis.Analyzer{docs.Analyzer})
	if err != nil {
		t.Fatalf("running docs analyzer: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
