// Package doclint holds the repository's godoc lint: a test that fails
// when an exported identifier in the synthesis-, service- and
// test-plane-facing packages (internal/synth, internal/synth/cache,
// internal/dsl, internal/server, internal/server/client,
// internal/conformance) lacks a doc comment. CI runs it as the doc-lint step; locally it runs with the
// ordinary test suite.
package doclint
