// Package doclint is a thin compatibility shim: the repository's godoc
// lint now lives in the kqvet static-analysis plane as the docs analyzer
// (internal/analysis/docs), which enforces doc comments on every
// exported identifier of the synthesis-, service- and test-plane-facing
// packages. The test here re-runs that analyzer under the historical
// doc-lint CI step name so existing `go test ./internal/doclint/`
// invocations keep working; kqvet runs the same check repo-wide.
package doclint
