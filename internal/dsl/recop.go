package dsl

import (
	"math/big"
	"strings"

	"kumquat/internal/textio"
)

// Add is numeric addition: L(add) = [0-9]+, add y1 y2 ⇒ intToStr(i1+i2).
// Arbitrary-precision so that long generated digit strings cannot overflow.
type Add struct{}

// Class returns RecOpClass.
func (Add) Class() Class { return RecOpClass }

// Size is |g| per Definition 3.6.
func (Add) Size() int { return 3 }

// String renders the operator in the DSL's textual form.
func (Add) String() string { return "add" }

// InDomain reports y ∈ L(add) per Definition B.1.
func (Add) InDomain(_ *Env, y string) bool { return textio.AllDigits(y) }

// Associative reports true: big-integer addition is associative.
func (Add) Associative() bool { return true }

// Eval applies add per Figure 6's big-step semantics.
func (a Add) Eval(_ *Env, y1, y2 string) (string, error) {
	if !textio.AllDigits(y1) || !textio.AllDigits(y2) {
		return "", evalErr(a, "operand not a digit string")
	}
	i1, _ := new(big.Int).SetString(y1, 10)
	i2, _ := new(big.Int).SetString(y2, 10)
	return new(big.Int).Add(i1, i2).String(), nil
}

// Concat is string concatenation: concat y1 y2 ⇒ y1 ++ y2. L = String.
type Concat struct{}

// Class returns RecOpClass.
func (Concat) Class() Class { return RecOpClass }

// Size is |g| per Definition 3.6.
func (Concat) Size() int { return 3 }

// String renders the operator in the DSL's textual form.
func (Concat) String() string { return "concat" }

// InDomain reports y ∈ L(concat) per Definition B.1.
func (Concat) InDomain(_ *Env, _ string) bool { return true }

// Associative reports true: string concatenation is associative.
func (Concat) Associative() bool { return true }

// Eval applies concat per Figure 6's big-step semantics.
func (Concat) Eval(_ *Env, y1, y2 string) (string, error) { return y1 + y2, nil }

// First selects the left operand: first y1 y2 ⇒ y1. L = String.
type First struct{}

// Class returns RecOpClass.
func (First) Class() Class { return RecOpClass }

// Size is |g| per Definition 3.6.
func (First) Size() int { return 3 }

// String renders the operator in the DSL's textual form.
func (First) String() string { return "first" }

// InDomain reports y ∈ L(first) per Definition B.1.
func (First) InDomain(_ *Env, _ string) bool { return true }

// Associative reports true: nested left selections collapse to the
// leftmost operand under either bracketing.
func (First) Associative() bool { return true }

// Eval applies first per Figure 6's big-step semantics.
func (First) Eval(_ *Env, y1, _ string) (string, error) { return y1, nil }

// Second selects the right operand: second y1 y2 ⇒ y2. L = String.
type Second struct{}

// Class returns RecOpClass.
func (Second) Class() Class { return RecOpClass }

// Size is |g| per Definition 3.6.
func (Second) Size() int { return 3 }

// String renders the operator in the DSL's textual form.
func (Second) String() string { return "second" }

// InDomain reports y ∈ L(second) per Definition B.1.
func (Second) InDomain(_ *Env, _ string) bool { return true }

// Associative reports true: nested right selections collapse to the
// rightmost operand under either bracketing.
func (Second) Associative() bool { return true }

// Eval applies second per Figure 6's big-step semantics.
func (Second) Eval(_ *Env, _, y2 string) (string, error) { return y2, nil }

// Front strips delimiter D from the front of both operands, applies B, and
// re-attaches D: L(front d b) = {d ++ y | y ∈ L(b)}.
type Front struct {
	D Delim
	B Op
}

// Class returns RecOpClass.
func (f Front) Class() Class { return RecOpClass }

// Size is |g| per Definition 3.6.
func (f Front) Size() int { return 1 + f.B.Size() }

// String renders the operator in the DSL's textual form.
func (f Front) String() string { return "front " + f.D.String() + " " + f.B.String() }

// InDomain reports y ∈ L(front) per Definition B.1.
func (f Front) InDomain(env *Env, y string) bool {
	return len(y) > 0 && y[0] == byte(f.D) && f.B.InDomain(env, y[1:])
}

// Associative reports whether the wrapped operator is associative:
// front only strips and re-attaches the delimiter around B.
func (f Front) Associative() bool { return f.B.Associative() }

// Eval applies front per Figure 6's big-step semantics.
func (f Front) Eval(env *Env, y1, y2 string) (string, error) {
	if len(y1) == 0 || y1[0] != byte(f.D) || len(y2) == 0 || y2[0] != byte(f.D) {
		return "", evalErr(f, "operand lacks front delimiter")
	}
	v, err := f.B.Eval(env, y1[1:], y2[1:])
	if err != nil {
		return "", err
	}
	return string(f.D) + v, nil
}

// Back strips delimiter D from the back of both operands, applies B, and
// re-attaches D: L(back d b) = {y ++ d | y ∈ L(b)}. (back '\n' add) is the
// paper's combiner for wc -l and grep -c.
type Back struct {
	D Delim
	B Op
}

// Class returns RecOpClass.
func (b Back) Class() Class { return RecOpClass }

// Size is |g| per Definition 3.6.
func (b Back) Size() int { return 1 + b.B.Size() }

// String renders the operator in the DSL's textual form.
func (b Back) String() string { return "back " + b.D.String() + " " + b.B.String() }

// InDomain reports y ∈ L(back) per Definition B.1.
func (b Back) InDomain(env *Env, y string) bool {
	return len(y) > 0 && y[len(y)-1] == byte(b.D) && b.B.InDomain(env, y[:len(y)-1])
}

// Associative reports whether the wrapped operator is associative:
// back only strips and re-attaches the delimiter around B.
func (b Back) Associative() bool { return b.B.Associative() }

// Eval applies back per Figure 6's big-step semantics.
func (b Back) Eval(env *Env, y1, y2 string) (string, error) {
	n1, n2 := len(y1), len(y2)
	if n1 == 0 || y1[n1-1] != byte(b.D) || n2 == 0 || y2[n2-1] != byte(b.D) {
		return "", evalErr(b, "operand lacks back delimiter")
	}
	v, err := b.B.Eval(env, y1[:n1-1], y2[:n2-1])
	if err != nil {
		return "", err
	}
	return v + string(b.D), nil
}

// Fuse applies B piecewise to the D-separated elements of its operands,
// which must contain the same number of elements, and joins the results
// with D. The domain requires at least two elements, each in L(b); empty
// elements are admitted when L(b) admits them — slightly wider than
// Definition B.1's y1 ≠ nil, yk ≠ nil, matching the reference
// implementation's behaviour visible in Table 10, where (fuse '\n' first)
// is plausible for head -n 1 even though its outputs end with the
// delimiter.
type Fuse struct {
	D Delim
	B Op
}

// Class returns RecOpClass.
func (f Fuse) Class() Class { return RecOpClass }

// Size is |g| per Definition 3.6.
func (f Fuse) Size() int { return 1 + f.B.Size() }

// String renders the operator in the DSL's textual form.
func (f Fuse) String() string { return "fuse " + f.D.String() + " " + f.B.String() }

// InDomain reports y ∈ L(fuse) per Definition B.1.
func (f Fuse) InDomain(env *Env, y string) bool {
	parts := strings.Split(y, string(f.D))
	if len(parts) < 2 {
		return false
	}
	for _, p := range parts {
		if !f.B.InDomain(env, p) {
			return false
		}
	}
	return true
}

// Associative reports whether the element operator is associative:
// fuse applies B elementwise, so bracketing commutes with the split.
func (f Fuse) Associative() bool { return f.B.Associative() }

// Eval applies fuse per Figure 6's big-step semantics.
func (f Fuse) Eval(env *Env, y1, y2 string) (string, error) {
	p1 := strings.Split(y1, string(f.D))
	p2 := strings.Split(y2, string(f.D))
	if len(p1) < 2 || len(p2) < 2 {
		return "", evalErr(f, "operand has fewer than two elements")
	}
	if len(p1) != len(p2) {
		return "", evalErr(f, "element counts differ")
	}
	out := make([]string, len(p1))
	for i := range p1 {
		v, err := f.B.Eval(env, p1[i], p2[i])
		if err != nil {
			return "", err
		}
		out[i] = v
	}
	return strings.Join(out, string(f.D)), nil
}
