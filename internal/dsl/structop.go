package dsl

import (
	"kumquat/internal/textio"
)

// isPadded reports whether a deformatted table line's padding is acceptable:
// zero or more spaces, or a single tab (Definition B.1's p ∈ [' '+ | '\t'],
// relaxed to allow unpadded first fields so the same operators cover
// unpadded tables such as xargs wc -l output).
func lineFields(d Delim, line string) (pad textio.Pad, head, tail string, ok bool) {
	return textio.FieldPad(byte(d), line)
}

// Stitch compares y1's last line with y2's first line and merges them with B
// when equal (the uniq combiner: stitch first). L(stitch b): newline-
// terminated streams whose lines lie in L(b), plus the bare "\n".
type Stitch struct {
	B Op
}

// Class returns StructOpClass.
func (s Stitch) Class() Class { return StructOpClass }

// Size is |g| per Definition 3.6.
func (s Stitch) Size() int { return 1 + s.B.Size() }

// String renders the operator in the DSL's textual form.
func (s Stitch) String() string { return "stitch " + s.B.String() }

// InDomain reports y ∈ L(stitch) per Definition B.1. The stream is
// indexed once (textio.LineSeq) instead of split into a []string — the
// composite combiner re-checks domains on every substream per combine.
func (s Stitch) InDomain(env *Env, y string) bool {
	if !textio.IsStream(y) {
		return false
	}
	ls := textio.ScanLines(y)
	for i := 0; i < ls.Len(); i++ {
		if !s.B.InDomain(env, ls.Line(i)) {
			return false
		}
	}
	return true
}

// Associative reports whether stitch may be tree-reduced: the boundary
// merge compares equal lines and replaces them with B's result, so the
// reduction order is immaterial exactly when B leaves the compared line
// unchanged — B must be a selection operator (B(l, l) == l). A
// value-rewriting B (e.g. add doubles an equal boundary line) makes the
// merged line feed differently into the next boundary comparison
// depending on bracketing.
func (s Stitch) Associative() bool { return selection(s.B) }

// Eval treats a bare "\n" as a stream with one empty line rather than
// special-casing it to concatenation as Figure 6 does: the uniform rule is
// what makes (stitch first) correct for uniq when an operand consists of
// empty lines only, matching the synthesis results in the paper's Table 10.
func (s Stitch) Eval(env *Env, y1, y2 string) (string, error) {
	rest1, l1, ok1 := textio.SplitLastLine(y1)
	l2, rest2, ok2 := textio.SplitFirstLine(y2)
	if !ok1 || !ok2 {
		return "", evalErr(s, "operand is not a stream")
	}
	if l1 != l2 {
		return y1 + y2, nil
	}
	v, err := s.B.Eval(env, l1, l2)
	if err != nil {
		return "", err
	}
	return rest1 + v + "\n" + rest2, nil
}

// Stitch2 is the table-aware stitch: it compares the tails (content after
// the first D-separated field, with padding removed) of y1's last line and
// y2's first line; on a match it merges the first fields with B1 and the
// tails with B2, re-padding to preserve column alignment. (stitch2 ' ' add
// first) is the paper's combiner for uniq -c.
type Stitch2 struct {
	D      Delim
	B1, B2 Op
}

// Class returns StructOpClass.
func (s Stitch2) Class() Class { return StructOpClass }

// Size per Definition 3.6: 2 + productions; stitch2 contributes one
// production on top of its two children's (|stitch2 d add first| = 5).
func (s Stitch2) Size() int { return s.B1.Size() + s.B2.Size() - 1 }

// String renders the operator in the DSL's textual form.
func (s Stitch2) String() string {
	return "stitch2 " + s.D.String() + " " + s.B1.String() + " " + s.B2.String()
}

// InDomain reports y ∈ L(stitch2) per Definition B.1, indexing the
// stream's lines once via textio.LineSeq.
func (s Stitch2) InDomain(env *Env, y string) bool {
	if !textio.IsStream(y) {
		return false
	}
	ls := textio.ScanLines(y)
	for i := 0; i < ls.Len(); i++ {
		_, head, tail, ok := lineFields(s.D, ls.Line(i))
		if !ok {
			return false
		}
		if !s.B1.InDomain(env, head) || !s.B2.InDomain(env, tail) {
			return false
		}
	}
	return true
}

// headMonotone reports whether a stitch2 head operator's merged result
// is never shorter than its left operand's head (add and concat grow,
// first reproduces the left head verbatim; front/back/fuse inherit from
// their child). This is the padding-safety half of stitch2's
// associativity: FieldPad re-derives Pad.Width from merged intermediate
// lines, and the re-derived width agrees across bracketings exactly when
// the merged head cannot shrink below the left head — a shrinking head
// (second) lets the fold collapse the pad to PadNone on an intermediate
// line while the tree re-pads from the original operand, producing
// different bytes.
func headMonotone(op Op) bool {
	switch o := op.(type) {
	case Add, Concat, First:
		return true
	case Front:
		return headMonotone(o.B)
	case Back:
		return headMonotone(o.B)
	case Fuse:
		return headMonotone(o.B)
	}
	return false
}

// Associative reports whether stitch2 may be tree-reduced: boundary
// matching compares tails, so B2 must leave the matched tail unchanged
// (a selection operator), while the heads — never compared — need an
// associative, head-monotone B1. Width-monotone merging keeps the
// re-extracted Pad.Width of an intermediate line equal across
// bracketings (see headMonotone), so the tree cannot change the final
// column alignment.
func (s Stitch2) Associative() bool {
	return s.B1.Associative() && headMonotone(s.B1) && selection(s.B2)
}

// Eval applies stitch2 per Figure 6's big-step semantics.
func (s Stitch2) Eval(env *Env, y1, y2 string) (string, error) {
	rest1, l1, ok1 := textio.SplitLastLine(y1)
	l2, rest2, ok2 := textio.SplitFirstLine(y2)
	if !ok1 || !ok2 {
		return "", evalErr(s, "operand is not a stream")
	}
	pad1, h1, t1, okf1 := lineFields(s.D, l1)
	_, h2, t2, okf2 := lineFields(s.D, l2)
	if !okf1 || !okf2 {
		return "", evalErr(s, "line lacks the field delimiter")
	}
	if t1 != t2 {
		return y1 + y2, nil
	}
	h, err := s.B1.Eval(env, h1, h2)
	if err != nil {
		return "", err
	}
	t, err := s.B2.Eval(env, t1, t2)
	if err != nil {
		return "", err
	}
	v := textio.AddPad(pad1, h) + string(s.D) + t
	return rest1 + v + "\n" + rest2, nil
}

// Offset uses the first field of y1's last nonempty line to adjust the
// first field of every line of y2 via B, preserving per-line padding.
// With B = add this combines running-offset outputs (line numbering);
// with B = first/second it appears among the plausible combiners for
// xargs wc -l in Table 10.
type Offset struct {
	D Delim
	B Op
}

// Class returns StructOpClass.
func (o Offset) Class() Class { return StructOpClass }

// Size is |g| per Definition 3.6.
func (o Offset) Size() int { return 1 + o.B.Size() }

// String renders the operator in the DSL's textual form.
func (o Offset) String() string { return "offset " + o.D.String() + " " + o.B.String() }

// InDomain reports y ∈ L(offset) per Definition B.1, indexing the
// stream's lines once via textio.LineSeq.
func (o Offset) InDomain(env *Env, y string) bool {
	if !textio.IsStream(y) {
		return false
	}
	any := false
	ls := textio.ScanLines(y)
	for i := 0; i < ls.Len(); i++ {
		l := ls.Line(i)
		if l == "" {
			continue
		}
		_, head, _, ok := lineFields(o.D, l)
		if !ok || !o.B.InDomain(env, head) {
			return false
		}
		any = true
	}
	return any
}

// Associative reports whether the adjustment operator is associative:
// offset rewrites every head of y2 as B(anchor, head) with the anchor
// always the left argument, so nested offsets compose heads as
// B(B(a, b), c) on one bracketing and B(a, B(b, c)) on the other.
func (o Offset) Associative() bool { return o.B.Associative() }

// Eval applies offset per Figure 6's big-step semantics. The output
// assembles in a pooled builder (offset is the highest-churn combiner
// Eval: it rewrites every line of y2), and y2's lines are walked through
// a LineSeq index rather than a []string split.
func (o Offset) Eval(env *Env, y1, y2 string) (string, error) {
	l1, ok := textio.SplitLastNonemptyLine(y1)
	if !ok {
		return "", evalErr(o, "y1 has no nonempty line")
	}
	_, h1, _, okf := lineFields(o.D, l1)
	if !okf {
		return "", evalErr(o, "anchor line lacks the field delimiter")
	}
	b := textio.GetBuilder()
	defer textio.PutBuilder(b)
	b.Grow(len(y1) + len(y2))
	b.WriteString(y1)
	ls := textio.ScanLines(y2)
	for i := 0; i < ls.Len(); i++ {
		l2 := ls.Line(i)
		if l2 == "" {
			b.WriteByte('\n')
			continue
		}
		pad, h2, t2, okf := lineFields(o.D, l2)
		if !okf {
			return "", evalErr(o, "line lacks the field delimiter")
		}
		h, err := o.B.Eval(env, h1, h2)
		if err != nil {
			return "", err
		}
		b.WriteString(textio.AddPad(pad, h))
		b.WriteByte(byte(o.D))
		b.WriteString(t2)
		b.WriteByte('\n')
	}
	return b.String(), nil
}
