package dsl

import "testing"

func TestParseCandidateBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String() form
	}{
		{"concat", "(concat a b)"},
		{"(concat a b)", "(concat a b)"},
		{"(concat b a)", "(concat b a)"},
		{`(back '\n' add a b)`, `(back '\n' add a b)`},
		{`back '\n' add`, `(back '\n' add a b)`},
		{"(stitch first a b)", "(stitch first a b)"},
		{"(stitch2 ' ' add first a b)", "(stitch2 ' ' add first a b)"},
		{"(offset ' ' second a b)", "(offset ' ' second a b)"},
		{`(fuse ',' concat b a)`, `(fuse ',' concat b a)`},
		{"(rerun a b)", "(rerun a b)"},
		{"(merge a b)", "(merge a b)"},
		{"merge('-rn') a b", "(merge a b)"}, // flags bind via Env, not the AST
		{`(front '\t' (back ',' add) a b)`, `(front '\t' back ',' add a b)`},
	}
	for _, c := range cases {
		got, err := ParseCandidate(c.in)
		if err != nil {
			t.Errorf("ParseCandidate(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("ParseCandidate(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestParseCandidateErrors(t *testing.T) {
	for _, bad := range []string{
		"", "nope", "(concat a b", "back add", "stitch2 ' ' add",
		"(concat a a)", "concat a b extra", "back 'xy' add",
	} {
		if _, err := ParseCandidate(bad); err == nil {
			t.Errorf("ParseCandidate(%q) should fail", bad)
		}
	}
}

// TestParseRoundTrip: every enumerated candidate survives
// String → ParseCandidate → String.
func TestParseRoundTrip(t *testing.T) {
	cands := Enumerate(4, []Delim{'\n', ' '})
	for _, c := range cands {
		s := c.String()
		back, err := ParseCandidate(s)
		if err != nil {
			t.Fatalf("round trip parse of %s: %v", s, err)
		}
		if back.String() != s {
			t.Fatalf("round trip of %s gave %s", s, back.String())
		}
	}
}

func TestParsedCandidateEvaluates(t *testing.T) {
	c, err := ParseCandidate("(stitch2 ' ' add first a b)")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Eval(nil, "      2 pear\n", "      3 pear\n")
	if err != nil || got != "      5 pear\n" {
		t.Errorf("parsed combiner eval = %q, %v", got, err)
	}
}
