package dsl

import "strings"

// CombineK merges k parallel output substreams with the synthesized
// combiner, generalizing the binary combiner per §3.5 "Combining Multiple
// Substreams":
//
//   - concat combines all substreams at once ("cat $*"),
//   - merge combines all substreams with one k-way merge
//     ("sort -m <flags> $*"),
//   - rerun concatenates all substreams and re-executes the command once,
//   - every other combiner is applied pairwise, folding left until one
//     substream remains.
//
// Empty substreams (a chunk with no lines, or a command that produced no
// output for its chunk) are identity elements for stream combination and
// are skipped before folding.
func CombineK(env *Env, c Candidate, outs []string) (string, error) {
	nonEmpty := outs[:0:0]
	for _, o := range outs {
		if o != "" {
			nonEmpty = append(nonEmpty, o)
		}
	}
	if c.Swap {
		for i, j := 0, len(nonEmpty)-1; i < j; i, j = i+1, j-1 {
			nonEmpty[i], nonEmpty[j] = nonEmpty[j], nonEmpty[i]
		}
	}
	switch c.Op.(type) {
	case Concat:
		return strings.Join(nonEmpty, ""), nil
	case Merge:
		if env == nil || env.Merge == nil {
			return "", evalErr(c.Op, "no merge comparator bound in Env")
		}
		return env.Merge.MergeStreams(nonEmpty...), nil
	case Rerun:
		if env == nil || env.RunF == nil {
			return "", evalErr(c.Op, "no command bound in Env")
		}
		return env.RunF(strings.Join(nonEmpty, ""))
	}
	if len(nonEmpty) == 0 {
		return "", nil
	}
	acc := nonEmpty[0]
	for _, next := range nonEmpty[1:] {
		v, err := c.Op.Eval(env, acc, next)
		if err != nil {
			return "", err
		}
		acc = v
	}
	return acc, nil
}

// CombineKPairwise is the ablation baseline: always fold pairwise, even for
// concat/merge/rerun where a simultaneous k-way combine is available.
func CombineKPairwise(env *Env, c Candidate, outs []string) (string, error) {
	nonEmpty := outs[:0:0]
	for _, o := range outs {
		if o != "" {
			nonEmpty = append(nonEmpty, o)
		}
	}
	if len(nonEmpty) == 0 {
		return "", nil
	}
	if c.Swap {
		for i, j := 0, len(nonEmpty)-1; i < j; i, j = i+1, j-1 {
			nonEmpty[i], nonEmpty[j] = nonEmpty[j], nonEmpty[i]
		}
	}
	acc := nonEmpty[0]
	for _, next := range nonEmpty[1:] {
		v, err := c.Op.Eval(env, acc, next)
		if err != nil {
			return "", err
		}
		acc = v
	}
	return acc, nil
}
