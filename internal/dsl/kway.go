package dsl

import (
	"strings"
	"sync"
)

// prepareK filters out empty substreams (identity elements for stream
// combination) and applies the candidate's argument order: a swapped
// candidate combines the substreams in reverse, generalizing (g b a) to
// k arguments. Merge is the exception — its output is determined by the
// comparator alone, with ties resolved by stream order, so reversing the
// substreams would only scramble tie stability; Swap is a no-op for it.
func prepareK(c Candidate, outs []string) []string {
	nonEmpty := outs[:0:0]
	for _, o := range outs {
		if o != "" {
			nonEmpty = append(nonEmpty, o)
		}
	}
	if _, isMerge := c.Op.(Merge); c.Swap && !isMerge {
		for i, j := 0, len(nonEmpty)-1; i < j; i, j = i+1, j-1 {
			nonEmpty[i], nonEmpty[j] = nonEmpty[j], nonEmpty[i]
		}
	}
	return nonEmpty
}

// combineSimultaneous handles the three §3.5 combiners that merge all k
// substreams at once rather than pairwise. handled is false for every
// other operator.
func combineSimultaneous(env *Env, c Candidate, nonEmpty []string) (v string, handled bool, err error) {
	switch c.Op.(type) {
	case Concat:
		return strings.Join(nonEmpty, ""), true, nil
	case Merge:
		if env == nil || env.Merge == nil {
			return "", true, evalErr(c.Op, "no merge comparator bound in Env")
		}
		return env.Merge.MergeStreams(nonEmpty...), true, nil
	case Rerun:
		if env == nil || env.RunF == nil {
			return "", true, evalErr(c.Op, "no command bound in Env")
		}
		v, err := env.RunF(strings.Join(nonEmpty, ""))
		return v, true, err
	}
	return "", false, nil
}

// treeProfitable reports whether the balanced tree reduces work for an
// associative operator. The tree replaces the fold's O(k·n) accumulator
// copying with O(n·log k), a win for boundary-local operators whose Eval
// cost is the copy (stitch, stitch2, the selection and digit operators).
// Offset is the exception: its Eval re-derives every line of the right
// operand, so upper tree levels repeat per-line rewrites the fold
// performs exactly once — it stays on the fold even though it is
// associative (and so remains eligible for the simultaneous paths).
func treeProfitable(op Op) bool {
	switch o := op.(type) {
	case Offset:
		return false
	case Front:
		return treeProfitable(o.B)
	case Back:
		return treeProfitable(o.B)
	}
	return true
}

// foldPairs left-folds the operator over the substreams — the serial
// §3.5 pairwise combine.
func foldPairs(env *Env, op Op, nonEmpty []string) (string, error) {
	if len(nonEmpty) == 0 {
		return "", nil
	}
	acc := nonEmpty[0]
	for _, next := range nonEmpty[1:] {
		v, err := op.Eval(env, acc, next)
		if err != nil {
			return "", err
		}
		acc = v
	}
	return acc, nil
}

// CombineK merges k parallel output substreams with the synthesized
// combiner, generalizing the binary combiner per §3.5 "Combining Multiple
// Substreams":
//
//   - concat combines all substreams at once ("cat $*"),
//   - merge combines all substreams with one k-way merge
//     ("sort -m <flags> $*"),
//   - rerun concatenates all substreams and re-executes the command once,
//   - every other combiner is applied pairwise, folding left until one
//     substream remains.
//
// Empty substreams (a chunk with no lines, or a command that produced no
// output for its chunk) are identity elements for stream combination and
// are skipped before folding. A swapped candidate folds the substreams in
// reverse order, except for merge, where Swap is a no-op (see prepareK).
func CombineK(env *Env, c Candidate, outs []string) (string, error) {
	nonEmpty := prepareK(c, outs)
	if v, handled, err := combineSimultaneous(env, c, nonEmpty); handled {
		return v, err
	}
	return foldPairs(env, c.Op, nonEmpty)
}

// CombineKTree is CombineK with the pairwise fold replaced by a balanced
// binary tree reduced over at most workers concurrent evaluations — the
// parallel combine plane. Associativity (Op.Associative) licenses the
// re-bracketing: the tree's result is byte-identical to the serial left
// fold for every associative operator, so CombineKTree is a wall-clock
// optimization, never a semantic choice. Non-associative operators and
// tiny substream counts take the serial fold; the simultaneous
// concat/merge/rerun combiners are already k-way and are dispatched
// exactly as CombineK dispatches them.
//
// The tree wins twice: the level pairs evaluate concurrently (bounded by
// workers), and the balanced bracketing copies O(n·log k) accumulator
// bytes where the left fold copies O(n·k) — so even workers == 1 (a
// sequential tree) beats the fold on large k.
//
// If any pair evaluation fails mid-tree, the whole combine falls back to
// the serial CombineK so error behaviour (which pair fails first, and
// with what message) is indistinguishable from the fold's.
func CombineKTree(env *Env, c Candidate, outs []string, workers int) (string, error) {
	nonEmpty := prepareK(c, outs)
	if v, handled, err := combineSimultaneous(env, c, nonEmpty); handled {
		return v, err
	}
	if !c.Op.Associative() || !treeProfitable(c.Op) || len(nonEmpty) < 3 {
		return foldPairs(env, c.Op, nonEmpty)
	}
	if workers < 1 {
		workers = 1
	}
	level := append([]string(nil), nonEmpty...)
	next := make([]string, 0, (len(level)+1)/2)
	sem := make(chan struct{}, workers)
	for len(level) > 1 {
		pairs := len(level) / 2
		next = next[:(len(level)+1)/2]
		var failed bool
		if workers == 1 {
			// Sequential tree: the bracketing advantage without
			// goroutine overhead.
			for i := 0; i < pairs && !failed; i++ {
				v, err := c.Op.Eval(env, level[2*i], level[2*i+1])
				if err != nil {
					failed = true
					break
				}
				next[i] = v
			}
		} else {
			var (
				wg sync.WaitGroup
				mu sync.Mutex
			)
			for i := 0; i < pairs; i++ {
				sem <- struct{}{}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					v, err := c.Op.Eval(env, level[2*i], level[2*i+1])
					if err != nil {
						mu.Lock()
						failed = true
						mu.Unlock()
						return
					}
					next[i] = v
				}(i)
			}
			wg.Wait()
		}
		if len(level)%2 == 1 {
			next[pairs] = level[len(level)-1]
		}
		if failed {
			// Re-run serially so the caller observes the fold's exact
			// error (the tree may have failed on a later pair first).
			return foldPairs(env, c.Op, nonEmpty)
		}
		level, next = next, level[:0]
	}
	if len(level) == 0 {
		return "", nil
	}
	return level[0], nil
}

// CombineKPairwise is the ablation baseline: always fold pairwise, even for
// concat/merge/rerun where a simultaneous k-way combine is available.
func CombineKPairwise(env *Env, c Candidate, outs []string) (string, error) {
	nonEmpty := prepareK(c, outs)
	return foldPairs(env, c.Op, nonEmpty)
}
