package dsl

// Rerun re-executes the command on the concatenation of the parallel
// outputs: rerun_f y1 y2 ⇒ f(y1 ++ y2). Always a correct combiner for
// commands that are idempotent over their own output shape (tr -s, sort,
// head); the pipeline planner may decide that a rerun-combined stage is not
// worth parallelizing (§2).
type Rerun struct{}

// Class returns RunOpClass.
func (Rerun) Class() Class { return RunOpClass }

// Size is |g| per Definition 3.6.
func (Rerun) Size() int { return 3 }

// String renders the operator in the DSL's textual form.
func (Rerun) String() string { return "rerun" }

// InDomain reports y ∈ L(rerun) per Definition B.1.
func (Rerun) InDomain(_ *Env, _ string) bool { return true }

// Associative reports false: f(f(y1 ++ y2) ++ y3) need not equal
// f(y1 ++ f(y2 ++ y3)) for an arbitrary black-box f, so rerun always
// combines as the §3.5 simultaneous concatenate-and-rerun (or, in
// ablation folds, strictly left-to-right).
func (Rerun) Associative() bool { return false }

// Eval applies rerun per Figure 6's big-step semantics.
func (r Rerun) Eval(env *Env, y1, y2 string) (string, error) {
	if env == nil || env.RunF == nil {
		return "", evalErr(r, "no command bound in Env")
	}
	return env.RunF(y1 + y2)
}

// Merge invokes the Unix merge ("sort -m <flags>") on two pre-sorted
// streams. Its legality domain is the set of streams sorted under the
// comparator, so it is only plausible for commands whose outputs are
// sorted.
type Merge struct{}

// Class returns RunOpClass.
func (Merge) Class() Class { return RunOpClass }

// Size is |g| per Definition 3.6.
func (Merge) Size() int { return 3 }

// String renders the operator in the DSL's textual form.
func (Merge) String() string { return "merge" }

// DisplayString renders the merge with its flags, e.g. "merge('-rn')",
// matching Table 10's notation.
func (m Merge) DisplayString(env *Env) string {
	if env != nil && env.Merge != nil && env.Merge.Flags() != "" {
		return "merge('" + env.Merge.Flags() + "')"
	}
	return "merge"
}

// InDomain reports y ∈ L(merge) per Definition B.1.
func (m Merge) InDomain(env *Env, y string) bool {
	if env == nil || env.Merge == nil {
		return false
	}
	return env.Merge.IsSorted(y)
}

// Associative reports true: merging pre-sorted streams is associative,
// including tie order — a tie between streams i < j resolves to i's
// line under any merge bracketing that preserves stream order.
func (Merge) Associative() bool { return true }

// Eval applies merge per Figure 6's big-step semantics.
func (m Merge) Eval(env *Env, y1, y2 string) (string, error) {
	if env == nil || env.Merge == nil {
		return "", evalErr(m, "no merge comparator bound in Env")
	}
	if !env.Merge.IsSorted(y1) || !env.Merge.IsSorted(y2) {
		return "", evalErr(m, "operand is not sorted")
	}
	return env.Merge.MergeStreams(y1, y2), nil
}
