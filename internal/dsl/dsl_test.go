package dsl

import (
	"math/rand"
	"strings"
	"testing"

	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

func env(t *testing.T, spec string) *Env {
	t.Helper()
	cmd, err := unix.Parse(spec, unix.DefaultEnv())
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	e := &Env{RunF: cmd.Run}
	if s, ok := cmd.(*unix.SortCmd); ok {
		e.Merge = s
	} else {
		def, _ := unix.Parse("sort", nil)
		e.Merge = def.(*unix.SortCmd)
	}
	return e
}

func evalOK(t *testing.T, e *Env, op Op, y1, y2 string) string {
	t.Helper()
	v, err := op.Eval(e, y1, y2)
	if err != nil {
		t.Fatalf("%s %q %q: %v", op, y1, y2, err)
	}
	return v
}

func TestAddEval(t *testing.T) {
	if got := evalOK(t, nil, Add{}, "12", "30"); got != "42" {
		t.Errorf("add = %q", got)
	}
	// intToStr drops leading zeros: 007 + 003 = 10.
	if got := evalOK(t, nil, Add{}, "007", "003"); got != "10" {
		t.Errorf("add leading zeros = %q", got)
	}
	// Arbitrary precision.
	if got := evalOK(t, nil, Add{}, "99999999999999999999", "1"); got != "100000000000000000000" {
		t.Errorf("add bignum = %q", got)
	}
	if _, err := (Add{}).Eval(nil, "1a", "2"); err == nil {
		t.Error("add on non-digits should fail")
	}
	if (Add{}).InDomain(nil, "") || (Add{}).InDomain(nil, "-1") {
		t.Error("L(add) = [0-9]+")
	}
}

func TestBasicRecOps(t *testing.T) {
	if got := evalOK(t, nil, Concat{}, "a", "b"); got != "ab" {
		t.Errorf("concat = %q", got)
	}
	if got := evalOK(t, nil, First{}, "a", "b"); got != "a" {
		t.Errorf("first = %q", got)
	}
	if got := evalOK(t, nil, Second{}, "a", "b"); got != "b" {
		t.Errorf("second = %q", got)
	}
}

func TestFrontBack(t *testing.T) {
	fb := Front{D: ',', B: Concat{}}
	if got := evalOK(t, nil, fb, ",a", ",b"); got != ",ab" {
		t.Errorf("front = %q", got)
	}
	if _, err := fb.Eval(nil, "a", ",b"); err == nil {
		t.Error("front without delimiter should fail")
	}
	ba := Back{D: '\n', B: Add{}}
	if got := evalOK(t, nil, ba, "5\n", "7\n"); got != "12\n" {
		t.Errorf("back add = %q (the wc -l combiner)", got)
	}
	if !ba.InDomain(nil, "5\n") || ba.InDomain(nil, "5") || ba.InDomain(nil, "x\n") {
		t.Error("L(back '\\n' add) misclassified")
	}
}

func TestFuse(t *testing.T) {
	fa := Fuse{D: ' ', B: Add{}}
	if got := evalOK(t, nil, fa, "1 2 3", "10 20 30"); got != "11 22 33" {
		t.Errorf("fuse add = %q", got)
	}
	if _, err := fa.Eval(nil, "1 2", "1 2 3"); err == nil {
		t.Error("fuse with differing element counts should fail")
	}
	if fa.InDomain(nil, "1") {
		t.Error("L(fuse) requires at least two elements")
	}
	if fa.InDomain(nil, " 1 2") || fa.InDomain(nil, "1 2 ") {
		t.Error("L(fuse) requires nonempty first and last elements")
	}
}

func TestStitch(t *testing.T) {
	sf := Stitch{B: First{}}
	// Boundary lines equal: merged once (the uniq combiner).
	got := evalOK(t, nil, sf, "a\nb\n", "b\nc\n")
	if got != "a\nb\nc\n" {
		t.Errorf("stitch first equal = %q", got)
	}
	// Boundary lines differ: plain concatenation.
	got = evalOK(t, nil, sf, "a\nb\n", "c\nd\n")
	if got != "a\nb\nc\nd\n" {
		t.Errorf("stitch first unequal = %q", got)
	}
	// Bare newline operand concatenates.
	if got := evalOK(t, nil, sf, "\n", "x\n"); got != "\nx\n" {
		t.Errorf("stitch newline = %q", got)
	}
	// Single-line operands.
	if got := evalOK(t, nil, sf, "b\n", "b\n"); got != "b\n" {
		t.Errorf("stitch single lines = %q", got)
	}
}

func TestStitch2(t *testing.T) {
	saf := Stitch2{D: ' ', B1: Add{}, B2: First{}}
	// The uniq -c case: equal words merge with summed, re-padded counts.
	y1 := "      3 apple\n      2 pear\n"
	y2 := "      4 pear\n      1 quince\n"
	got := evalOK(t, nil, saf, y1, y2)
	want := "      3 apple\n      6 pear\n      1 quince\n"
	if got != want {
		t.Errorf("stitch2 merge = %q, want %q", got, want)
	}
	// Different words: concatenation.
	got = evalOK(t, nil, saf, "      3 a\n", "      4 b\n")
	if got != "      3 a\n      4 b\n" {
		t.Errorf("stitch2 no-merge = %q", got)
	}
	// Padding re-alignment on overflow of the column.
	got = evalOK(t, nil, saf, " 999999 w\n", " 999999 w\n")
	if got != "1999998 w\n" {
		t.Errorf("stitch2 overflow = %q", got)
	}
}

func TestOffset(t *testing.T) {
	oa := Offset{D: ' ', B: Add{}}
	// Running line numbers: y2's numbers shifted by y1's last value.
	got := evalOK(t, nil, oa, "1 a\n2 b\n", "1 c\n2 d\n")
	if got != "1 a\n2 b\n3 c\n4 d\n" {
		t.Errorf("offset add = %q", got)
	}
	// offset first replaces every first field with the anchor.
	of := Offset{D: ' ', B: First{}}
	got = evalOK(t, nil, of, "5 x\n", "5 y\n5 z\n")
	if got != "5 x\n5 y\n5 z\n" {
		t.Errorf("offset first = %q", got)
	}
}

func TestRerunMerge(t *testing.T) {
	e := env(t, "sort -rn")
	r := evalOK(t, e, Rerun{}, "3\n1\n", "2\n")
	if r != "3\n2\n1\n" {
		t.Errorf("rerun sort -rn = %q", r)
	}
	m := evalOK(t, e, Merge{}, "3\n1\n", "2\n")
	if m != "3\n2\n1\n" {
		t.Errorf("merge -rn = %q", m)
	}
	if (Merge{}).InDomain(e, "1\n3\n") {
		t.Error("L(merge -rn) excludes ascending streams")
	}
	if _, err := (Merge{}).Eval(e, "1\n3\n", "2\n"); err == nil {
		t.Error("merge on unsorted operand should fail")
	}
}

func TestSizes(t *testing.T) {
	// Example 2 of the paper: |add| = 3, |fbfa| = 6, |saf| = 5.
	if (Add{}).Size() != 3 {
		t.Errorf("|add| = %d", (Add{}).Size())
	}
	fbfa := Front{D: '\n', B: Back{D: '\n', B: Fuse{D: '\n', B: Add{}}}}
	if fbfa.Size() != 6 {
		t.Errorf("|fbfa| = %d", fbfa.Size())
	}
	saf := Stitch2{D: ' ', B1: Add{}, B2: First{}}
	if saf.Size() != 5 {
		t.Errorf("|saf| = %d", saf.Size())
	}
}

func TestEnumerationCountsMatchPaper(t *testing.T) {
	// Table 10's search-space sizes, reproduced exactly (see DESIGN.md).
	cases := []struct {
		delims            []Delim
		rec, strct, total int
	}{
		{[]Delim{'\n'}, 968, 1728, 2700},
		{[]Delim{'\n', ' '}, 12440, 13960, 26404},
		{[]Delim{'\n', ' ', ','}, 59048, 51392, 110444},
	}
	for _, c := range cases {
		cands := Enumerate(DefaultMaxProductions, c.delims)
		s := Measure(cands)
		if s.Rec != c.rec || s.Struct != c.strct || s.Run != 4 || s.Total() != c.total {
			t.Errorf("delims=%d: got %d+%d+%d=%d, want %d+%d+4=%d",
				len(c.delims), s.Rec, s.Struct, s.Run, s.Total(), c.rec, c.strct, c.total)
		}
	}
}

func TestEnumerationDistinctStrings(t *testing.T) {
	cands := Enumerate(DefaultMaxProductions, []Delim{'\n'})
	seen := make(map[string]bool, len(cands))
	for _, c := range cands {
		s := c.String()
		if seen[s] {
			t.Fatalf("duplicate candidate %s", s)
		}
		seen[s] = true
	}
}

// randStream builds a random stream of short lowercase lines.
func randStream(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		n := 1 + rng.Intn(6)
		for j := 0; j < n; j++ {
			b.WriteByte(byte('a' + rng.Intn(4)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestLemmaB1DelimPreservation: RecOp evaluation introduces no delimiter
// absent from both operands.
func TestLemmaB1DelimPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recOps, _ := EnumerateOps(3, []Delim{','})
	for trial := 0; trial < 300; trial++ {
		op := recOps[rng.Intn(len(recOps))]
		y1 := strings.ReplaceAll(randStream(rng, 1+rng.Intn(2)), "\n", ",")
		y2 := strings.ReplaceAll(randStream(rng, 1+rng.Intn(2)), "\n", ",")
		// Pick a delimiter absent from both.
		const d = '\t'
		v, err := op.Eval(nil, y1, y2)
		if err != nil {
			continue
		}
		if strings.ContainsRune(v, d) {
			t.Fatalf("%s introduced delimiter: %q %q -> %q", op, y1, y2, v)
		}
	}
}

// TestLemmaB4Subadditivity: C(d, g(y1,y2)) <= C(d,y1) + C(d,y2) for RecOp.
func TestLemmaB4Subadditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	recOps, _ := EnumerateOps(3, []Delim{',', ' '})
	for trial := 0; trial < 500; trial++ {
		op := recOps[rng.Intn(len(recOps))]
		mk := func() string {
			n := 1 + rng.Intn(8)
			var b strings.Builder
			for i := 0; i < n; i++ {
				b.WriteByte([]byte("ab, 1")[rng.Intn(5)])
			}
			return b.String()
		}
		y1, y2 := mk(), mk()
		v, err := op.Eval(nil, y1, y2)
		if err != nil {
			continue
		}
		for _, d := range []byte{',', ' '} {
			if textio.CountByte(d, v) > textio.CountByte(d, y1)+textio.CountByte(d, y2) {
				t.Fatalf("%s increased delim count: %q %q -> %q", op, y1, y2, v)
			}
		}
	}
}

// TestLemmaB3FuseCounts: fuse preserves the element count of its operands.
func TestLemmaB3FuseCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := Fuse{D: ',', B: Concat{}}
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(4)
		mk := func() string {
			parts := make([]string, k)
			for i := range parts {
				parts[i] = strings.Repeat("x", 1+rng.Intn(3))
			}
			return strings.Join(parts, ",")
		}
		y1, y2 := mk(), mk()
		v, err := f.Eval(nil, y1, y2)
		if err != nil {
			t.Fatalf("fuse failed on %q %q: %v", y1, y2, err)
		}
		if textio.CountByte(',', v) != k-1 {
			t.Fatalf("fuse changed element count: %q", v)
		}
	}
}

// TestCombinerCorrectness checks f(x1 ++ x2) = g(f(x1), f(x2)) on random
// splits for the known correct (command, combiner) pairs from §3.4.
func TestCombinerCorrectness(t *testing.T) {
	cases := []struct {
		spec string
		c    Candidate
	}{
		{"wc -l", Candidate{Op: Back{D: '\n', B: Add{}}}},
		{"grep -c a", Candidate{Op: Back{D: '\n', B: Add{}}}},
		{"uniq", Candidate{Op: Stitch{B: First{}}}},
		{"uniq -c", Candidate{Op: Stitch2{D: ' ', B1: Add{}, B2: First{}}}},
		{"sort", Candidate{Op: Merge{}}},
		{"sort -rn", Candidate{Op: Merge{}}},
		{"sort", Candidate{Op: Rerun{}}},
		{"tr a-z A-Z", Candidate{Op: Concat{}}},
		{`tr -cs a-z '\n'`, Candidate{Op: Rerun{}}},
		{"cut -c 1-2", Candidate{Op: Concat{}}},
		{"head -n 3", Candidate{Op: Rerun{}}},
	}
	rng := rand.New(rand.NewSource(23))
	for _, tc := range cases {
		e := env(t, tc.spec)
		cmd, _ := unix.Parse(tc.spec, unix.DefaultEnv())
		for trial := 0; trial < 60; trial++ {
			x := randStream(rng, 1+rng.Intn(8))
			// Split at a random line boundary.
			lines := textio.Lines(x)
			cut := rng.Intn(len(lines) + 1)
			x1 := textio.JoinLines(lines[:cut])
			x2 := textio.JoinLines(lines[cut:])
			if x1 == "" || x2 == "" {
				continue
			}
			y1, err1 := cmd.Run(x1)
			y2, err2 := cmd.Run(x2)
			y12, err12 := cmd.Run(x1 + x2)
			if err1 != nil || err2 != nil || err12 != nil {
				t.Fatalf("%s: command error", tc.spec)
			}
			if !tc.c.Plausible(e, y1, y2, y12) {
				got, err := tc.c.Eval(e, y1, y2)
				t.Fatalf("%s with %s: f(x1++x2)=%q but g=%q (err=%v) [x1=%q x2=%q]",
					tc.spec, tc.c, y12, got, err, x1, x2)
			}
		}
	}
}

func TestCombineKStrategies(t *testing.T) {
	e := env(t, "sort")
	// Simultaneous merge of k streams.
	got, err := CombineK(e, Candidate{Op: Merge{}}, []string{"b\n", "a\nc\n", "", "b\n"})
	if err != nil || got != "a\nb\nb\nc\n" {
		t.Errorf("CombineK merge = %q, %v", got, err)
	}
	// Concat joins in order; swapped concat reverses.
	got, _ = CombineK(nil, Candidate{Op: Concat{}}, []string{"1\n", "2\n", "3\n"})
	if got != "1\n2\n3\n" {
		t.Errorf("CombineK concat = %q", got)
	}
	got, _ = CombineK(nil, Candidate{Op: Concat{}, Swap: true}, []string{"1\n", "2\n", "3\n"})
	if got != "3\n2\n1\n" {
		t.Errorf("CombineK swapped concat = %q", got)
	}
	// Rerun concatenates all and reruns once.
	e2 := env(t, "sort -n")
	got, err = CombineK(e2, Candidate{Op: Rerun{}}, []string{"3\n1\n", "2\n"})
	if err != nil || got != "1\n2\n3\n" {
		t.Errorf("CombineK rerun = %q, %v", got, err)
	}
	// Pairwise fold for structured combiners.
	got, err = CombineK(nil, Candidate{Op: Stitch2{D: ' ', B1: Add{}, B2: First{}}},
		[]string{"      2 a\n", "      3 a\n", "      1 b\n"})
	if err != nil || got != "      5 a\n      1 b\n" {
		t.Errorf("CombineK stitch2 fold = %q, %v", got, err)
	}
	// Pairwise ablation agrees with CombineK on fold-style combiners.
	gotP, _ := CombineKPairwise(nil, Candidate{Op: Stitch2{D: ' ', B1: Add{}, B2: First{}}},
		[]string{"      2 a\n", "      3 a\n", "      1 b\n"})
	if gotP != got {
		t.Errorf("CombineKPairwise differs: %q vs %q", gotP, got)
	}
}

func TestCombineKAgreesWithSerial(t *testing.T) {
	// k-way combination must reproduce the serial output for random splits.
	rng := rand.New(rand.NewSource(31))
	specs := []struct {
		spec string
		c    Candidate
	}{
		{"sort", Candidate{Op: Merge{}}},
		{"wc -l", Candidate{Op: Back{D: '\n', B: Add{}}}},
		{"uniq -c", Candidate{Op: Stitch2{D: ' ', B1: Add{}, B2: First{}}}},
		{"grep a", Candidate{Op: Concat{}}},
	}
	for _, tc := range specs {
		e := env(t, tc.spec)
		cmd, _ := unix.Parse(tc.spec, unix.DefaultEnv())
		for trial := 0; trial < 40; trial++ {
			x := randStream(rng, 2+rng.Intn(20))
			k := 2 + rng.Intn(6)
			chunks := textio.ChunkLines(x, k)
			outs := make([]string, len(chunks))
			for i, ch := range chunks {
				outs[i], _ = cmd.Run(ch)
			}
			want, _ := cmd.Run(x)
			got, err := CombineK(e, tc.c, outs)
			if err != nil || got != want {
				t.Fatalf("%s k=%d: CombineK=%q (err=%v), serial=%q", tc.spec, k, got, err, want)
			}
		}
	}
}

func TestCandidateStringFormat(t *testing.T) {
	c := Candidate{Op: Back{D: '\n', B: Add{}}}
	if c.String() != `(back '\n' add a b)` {
		t.Errorf("String = %q", c.String())
	}
	c2 := Candidate{Op: Back{D: '\n', B: Add{}}, Swap: true}
	if c2.String() != `(back '\n' add b a)` {
		t.Errorf("swapped String = %q", c2.String())
	}
}
