package dsl

import "testing"

// TestShards checks the partition invariant the parallel filter relies
// on: concatenating the shards reproduces the input exactly, for every
// shard-count shape including the degenerate ones.
func TestShards(t *testing.T) {
	cands := Enumerate(DefaultMaxProductions, []Delim{'\n', ' '})
	for _, n := range []int{-1, 0, 1, 2, 3, 7, 16, 64, len(cands), len(cands) + 5} {
		shards := Shards(cands, n)
		if n >= 1 && len(shards) > n {
			t.Errorf("Shards(_, %d) produced %d shards", n, len(shards))
		}
		i := 0
		for _, s := range shards {
			for _, c := range s {
				if c != cands[i] {
					t.Fatalf("Shards(_, %d): candidate %d out of order", n, i)
				}
				i++
			}
		}
		if i != len(cands) {
			t.Errorf("Shards(_, %d) covered %d of %d candidates", n, i, len(cands))
		}
	}
	if Shards(nil, 4) != nil {
		t.Error("Shards(nil, 4) should be nil")
	}
}
