package dsl

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

// treeCases enumerates one representative candidate per combiner class of
// the Table 6 space — RecOp (add, concat, first, second, front, back,
// fuse), StructOp (stitch, stitch2, offset) and RunOp (merge, rerun) —
// together with an in-domain substream generator. gen must produce
// substreams for which the serial fold succeeds, so tree-vs-fold
// comparison is never vacuous.
var treeCases = []struct {
	name string
	c    Candidate
	env  string // command bound into Env ("" = no env needed)
	gen  func(rng *rand.Rand) string
}{
	{"concat", Candidate{Op: Concat{}}, "", genStream},
	{"concat-swap", Candidate{Op: Concat{}, Swap: true}, "", genStream},
	{"add", Candidate{Op: Add{}}, "", genDigits},
	{"first", Candidate{Op: First{}}, "", genStream},
	{"second", Candidate{Op: Second{}}, "", genStream},
	{"front-add", Candidate{Op: Front{D: ',', B: Add{}}}, "",
		func(rng *rand.Rand) string { return "," + genDigits(rng) }},
	{"back-add", Candidate{Op: Back{D: '\n', B: Add{}}}, "",
		func(rng *rand.Rand) string { return genDigits(rng) + "\n" }},
	{"back-add-swap", Candidate{Op: Back{D: '\n', B: Add{}}, Swap: true}, "",
		func(rng *rand.Rand) string { return genDigits(rng) + "\n" }},
	{"fuse-concat", Candidate{Op: Fuse{D: '\t', B: Concat{}}}, "",
		func(rng *rand.Rand) string {
			parts := make([]string, 3) // fixed element count across streams
			for i := range parts {
				parts[i] = genWord(rng)
			}
			return strings.Join(parts, "\t")
		}},
	{"fuse-add", Candidate{Op: Fuse{D: ' ', B: Add{}}}, "",
		func(rng *rand.Rand) string {
			return genDigits(rng) + " " + genDigits(rng)
		}},
	{"stitch-first", Candidate{Op: Stitch{B: First{}}}, "", genUniqStream},
	{"stitch-second", Candidate{Op: Stitch{B: Second{}}}, "", genUniqStream},
	{"stitch2-add-first", Candidate{Op: Stitch2{D: ' ', B1: Add{}, B2: First{}}}, "", genCountStream},
	{"stitch2-add-first-swap", Candidate{Op: Stitch2{D: ' ', B1: Add{}, B2: First{}}, Swap: true}, "", genCountStream},
	{"stitch2-first-first", Candidate{Op: Stitch2{D: ' ', B1: First{}, B2: First{}}}, "", genCountStream},
	// Head-shrinking B1: not associative (headMonotone false), so the
	// tree must fall back to the fold — identity holds by delegation.
	{"stitch2-second-first", Candidate{Op: Stitch2{D: ' ', B1: Second{}, B2: First{}}}, "", genCountStream},
	{"offset-add", Candidate{Op: Offset{D: ' ', B: Add{}}}, "", genNumberedStream},
	{"offset-second", Candidate{Op: Offset{D: ' ', B: Second{}}}, "", genNumberedStream},
	{"merge", Candidate{Op: Merge{}}, "sort", genSortedStream},
	{"merge-swap", Candidate{Op: Merge{}, Swap: true}, "sort", genSortedStream},
	{"rerun", Candidate{Op: Rerun{}}, "sort", genStream},
}

func genWord(rng *rand.Rand) string {
	n := 1 + rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(5))
	}
	return string(b)
}

func genDigits(rng *rand.Rand) string {
	n := 1 + rng.Intn(5)
	b := make([]byte, n)
	b[0] = byte('1' + rng.Intn(9))
	for i := 1; i < n; i++ {
		b[i] = byte('0' + rng.Intn(10))
	}
	return string(b)
}

func genStream(rng *rand.Rand) string {
	var b strings.Builder
	for i, n := 0, 1+rng.Intn(5); i < n; i++ {
		b.WriteString(genWord(rng))
		b.WriteByte('\n')
	}
	return b.String()
}

// genUniqStream mimics uniq output: runs already collapsed inside each
// substream, with boundary duplicates across substreams likely.
func genUniqStream(rng *rand.Rand) string {
	var b strings.Builder
	prev := ""
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		w := genWord(rng)
		if w == prev {
			continue
		}
		prev = w
		b.WriteString(w)
		b.WriteByte('\n')
	}
	if b.Len() == 0 {
		return "z\n"
	}
	return b.String()
}

// genCountStream mimics uniq -c-style output — padded counts, distinct
// words inside a substream — with deliberately mixed pad widths and
// count magnitudes so the padding re-derivation edge cases (count
// outgrowing the column, PadNone intermediates) are exercised.
func genCountStream(rng *rand.Rand) string {
	var b strings.Builder
	words := []string{"apple", "pear", "quince"}
	start := rng.Intn(len(words))
	for i := start; i < len(words) && i < start+1+rng.Intn(3); i++ {
		count := 1 + rng.Intn(99999)
		fmt.Fprintf(&b, "%*d %s\n", 1+rng.Intn(8), count, words[i])
	}
	return b.String()
}

// genNumberedStream mimics nl/awk running-count output: consecutive
// numbering restarting at 1 inside each substream.
func genNumberedStream(rng *rand.Rand) string {
	var b strings.Builder
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		fmt.Fprintf(&b, "%d %s\n", i+1, genWord(rng))
	}
	return b.String()
}

func genSortedStream(rng *rand.Rand) string {
	lines := make([]string, 1+rng.Intn(5))
	for i := range lines {
		lines[i] = genWord(rng)
	}
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j] < lines[j-1]; j-- {
			lines[j], lines[j-1] = lines[j-1], lines[j]
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

// TestCombineKTreeMatchesFold: for every combiner class in the Table 6
// space, the balanced-tree reduction must be byte-identical to the serial
// left fold at 1, 4 and GOMAXPROCS workers, across random substream
// counts including empty substreams.
func TestCombineKTreeMatchesFold(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range treeCases {
		t.Run(tc.name, func(t *testing.T) {
			var e *Env
			if tc.env != "" {
				e = env(t, tc.env)
			}
			rng := rand.New(rand.NewSource(17))
			for trial := 0; trial < 60; trial++ {
				k := 1 + rng.Intn(17)
				outs := make([]string, k)
				for i := range outs {
					if rng.Intn(8) == 0 {
						continue // empty substream: identity element
					}
					outs[i] = tc.gen(rng)
				}
				want, werr := CombineK(e, tc.c, outs)
				for _, w := range workerCounts {
					got, gerr := CombineKTree(e, tc.c, outs, w)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("trial %d k=%d workers=%d: fold err=%v, tree err=%v",
							trial, k, w, werr, gerr)
					}
					if got != want {
						t.Fatalf("trial %d k=%d workers=%d: tree=%q, fold=%q\nouts=%q",
							trial, k, w, got, want, outs)
					}
				}
			}
		})
	}
}

// TestAssociativeCapability pins the capability table: which operator
// shapes may legally take the tree path.
func TestAssociativeCapability(t *testing.T) {
	cases := []struct {
		op   Op
		want bool
	}{
		{Concat{}, true},
		{Add{}, true},
		{First{}, true},
		{Second{}, true},
		{Front{D: ',', B: Add{}}, true},
		{Back{D: '\n', B: Add{}}, true},
		{Fuse{D: ' ', B: Concat{}}, true},
		{Merge{}, true},
		{Rerun{}, false},
		{Stitch{B: First{}}, true},
		{Stitch{B: Second{}}, true},
		// Boundary-rewriting stitch children break associativity: the
		// merged line/tail no longer equals the compared value.
		{Stitch{B: Add{}}, false},
		{Stitch{B: Concat{}}, false},
		{Stitch2{D: ' ', B1: Add{}, B2: First{}}, true},
		{Stitch2{D: ' ', B1: First{}, B2: First{}}, true},
		{Stitch2{D: ' ', B1: Add{}, B2: Concat{}}, false},
		// Head-shrinking B1: the merged head can collapse an
		// intermediate line's padding (see headMonotone).
		{Stitch2{D: ' ', B1: Second{}, B2: First{}}, false},
		{Stitch2{D: ' ', B1: Second{}, B2: Second{}}, false},
		{Offset{D: ' ', B: Add{}}, true},
		{Offset{D: ' ', B: First{}}, true},
	}
	for _, tc := range cases {
		if got := tc.op.Associative(); got != tc.want {
			t.Errorf("%s.Associative() = %v, want %v", tc.op, got, tc.want)
		}
	}
}

// TestStitchAddNotAssociative demonstrates why value-rewriting stitch
// children must fold serially: with B = add the bracketing changes the
// result, so the capability table has to exclude it.
func TestStitchAddNotAssociative(t *testing.T) {
	op := Stitch{B: Add{}}
	a, b, c := "5\n", "5\n", "10\n"
	ab, err := op.Eval(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	left, err := op.Eval(nil, ab, c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := op.Eval(nil, b, c)
	if err != nil {
		t.Fatal(err)
	}
	right, err := op.Eval(nil, a, bc)
	if err != nil {
		t.Fatal(err)
	}
	if left == right {
		t.Fatalf("stitch add unexpectedly associative: both = %q", left)
	}
	// And the tree therefore must agree with the fold by refusing the
	// tree path, not by luck.
	outs := []string{a, b, c}
	want, _ := CombineK(nil, Candidate{Op: op}, outs)
	got, _ := CombineKTree(nil, Candidate{Op: op}, outs, 4)
	if got != want {
		t.Fatalf("CombineKTree(stitch add) = %q, fold = %q", got, want)
	}
}

// TestStitch2SecondPaddingNotAssociative is the regression test for the
// head-shrinking stitch2 hazard: with B1 = second and mixed pad widths,
// the fold's intermediate line collapses its padding (the merged head
// outgrows the column) while a tree bracketing re-pads from the original
// operand — so the capability table must keep this shape off the tree
// path, and CombineKTree must match the fold bit for bit by delegating.
func TestStitch2SecondPaddingNotAssociative(t *testing.T) {
	op := Stitch2{D: ' ', B1: Second{}, B2: First{}}
	outs := []string{"  5 x\n", "42 x\n", "1234 x\n", "9 x\n"}
	// The hazard is real: the two bracketings genuinely differ.
	ab, err := op.Eval(nil, outs[0], outs[1])
	if err != nil {
		t.Fatal(err)
	}
	abc, err := op.Eval(nil, ab, outs[2])
	if err != nil {
		t.Fatal(err)
	}
	left, err := op.Eval(nil, abc, outs[3])
	if err != nil {
		t.Fatal(err)
	}
	cd, err := op.Eval(nil, outs[2], outs[3])
	if err != nil {
		t.Fatal(err)
	}
	right, err := op.Eval(nil, ab, cd)
	if err != nil {
		t.Fatal(err)
	}
	if left == right {
		t.Logf("bracketings agree on this input; hazard not exercised")
	}
	if op.Associative() {
		t.Fatal("Stitch2{B1: Second}.Associative() = true; head-shrinking B1 must stay off the tree path")
	}
	want, werr := CombineK(nil, Candidate{Op: op}, outs)
	for _, w := range []int{1, 4} {
		got, gerr := CombineKTree(nil, Candidate{Op: op}, outs, w)
		if (werr == nil) != (gerr == nil) || got != want {
			t.Fatalf("workers=%d: tree=%q (err %v), fold=%q (err %v)", w, got, gerr, want, werr)
		}
	}
}

// TestSwapConcatIsReversedJoin is the regression test for the §3.5 swap
// generalization: a swapped concat combines the nonempty substreams in
// reverse order — exactly reversed strings.Join — while the unswapped
// form joins in order.
func TestSwapConcatIsReversedJoin(t *testing.T) {
	outs := []string{"a\n", "", "b\n", "c\n", ""}
	nonEmpty := []string{"a\n", "b\n", "c\n"}
	rev := []string{"c\n", "b\n", "a\n"}
	plain, err := CombineK(nil, Candidate{Op: Concat{}}, outs)
	if err != nil || plain != strings.Join(nonEmpty, "") {
		t.Errorf("concat = %q, %v; want %q", plain, err, strings.Join(nonEmpty, ""))
	}
	swapped, err := CombineK(nil, Candidate{Op: Concat{}, Swap: true}, outs)
	if err != nil || swapped != strings.Join(rev, "") {
		t.Errorf("swapped concat = %q, %v; want %q", swapped, err, strings.Join(rev, ""))
	}
	// Rerun sees the same reversed concatenation as its input.
	e := &Env{RunF: func(s string) (string, error) { return s, nil }}
	gotRerun, err := CombineK(e, Candidate{Op: Rerun{}, Swap: true}, outs)
	if err != nil || gotRerun != strings.Join(rev, "") {
		t.Errorf("swapped rerun input = %q, %v; want %q", gotRerun, err, strings.Join(rev, ""))
	}
}

// TestSwapMergeIsNoOp is the regression test for the order-insensitive
// merge: the k-way merge output is determined by the comparator with ties
// stable by stream index, so a swapped merge candidate must combine
// byte-identically to the unswapped one (and the tree to both).
func TestSwapMergeIsNoOp(t *testing.T) {
	e := env(t, "sort")
	outs := []string{"a\nc\n", "a\nb\n", "", "b\n"}
	plain, err := CombineK(e, Candidate{Op: Merge{}}, outs)
	if err != nil {
		t.Fatal(err)
	}
	swapped, err := CombineK(e, Candidate{Op: Merge{}, Swap: true}, outs)
	if err != nil {
		t.Fatal(err)
	}
	if plain != swapped {
		t.Errorf("swapped merge = %q, unswapped = %q", swapped, plain)
	}
	tree, err := CombineKTree(e, Candidate{Op: Merge{}, Swap: true}, outs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tree != plain {
		t.Errorf("tree swapped merge = %q, fold = %q", tree, plain)
	}
	// The binary path agrees: a swapped merge candidate evaluates
	// identically to the unswapped one, so every entry point — synthesis
	// plausibility, `kumquat combine`, the k-way combine — shares one
	// tie semantics.
	bPlain, err := Candidate{Op: Merge{}}.Eval(e, "a\nc\n", "b\n")
	if err != nil {
		t.Fatal(err)
	}
	bSwap, err := Candidate{Op: Merge{}, Swap: true}.Eval(e, "a\nc\n", "b\n")
	if err != nil {
		t.Fatal(err)
	}
	if bPlain != bSwap {
		t.Errorf("binary swapped merge = %q, unswapped = %q", bSwap, bPlain)
	}
}

// benchSubstreams builds k uniq -c-shaped substreams totalling roughly
// lines lines, the workload where pairwise combining dominates.
func benchSubstreams(k, lines int) []string {
	rng := rand.New(rand.NewSource(3))
	outs := make([]string, k)
	per := lines / k
	if per < 1 {
		per = 1
	}
	for i := range outs {
		var b strings.Builder
		for j := 0; j < per; j++ {
			fmt.Fprintf(&b, "%7d w%04d\n", 1+rng.Intn(99), j)
		}
		outs[i] = b.String()
	}
	return outs
}

// benchNumbered builds k numbered substreams for the offset combiner,
// whose fold cost is quadratic in k (each fold step re-copies the
// accumulator).
func benchNumbered(k, lines int) []string {
	outs := make([]string, k)
	per := lines / k
	if per < 1 {
		per = 1
	}
	for i := range outs {
		var b strings.Builder
		for j := 0; j < per; j++ {
			fmt.Fprintf(&b, "%d line-%d\n", j+1, j)
		}
		outs[i] = b.String()
	}
	return outs
}

// BenchmarkCombineKFold and BenchmarkCombineKTree compare the serial left
// fold against the balanced-tree reduction for the two pairwise combiner
// shapes the example suite exercises most: stitch2 (uniq -c) and offset
// (running counts). Allocation counts are reported so the data-plane
// regressions show up alongside wall time.
func BenchmarkCombineKFold(b *testing.B) {
	benchCombine(b, func(e *Env, c Candidate, outs []string) (string, error) {
		return CombineK(e, c, outs)
	})
}

// BenchmarkCombineKTree is the tree counterpart of BenchmarkCombineKFold,
// run at GOMAXPROCS workers.
func BenchmarkCombineKTree(b *testing.B) {
	w := runtime.GOMAXPROCS(0)
	benchCombine(b, func(e *Env, c Candidate, outs []string) (string, error) {
		return CombineKTree(e, c, outs, w)
	})
}

func benchCombine(b *testing.B, combine func(*Env, Candidate, []string) (string, error)) {
	cases := []struct {
		name string
		c    Candidate
		outs func(k, lines int) []string
	}{
		{"stitch2", Candidate{Op: Stitch2{D: ' ', B1: Add{}, B2: First{}}}, benchSubstreams},
		{"offset", Candidate{Op: Offset{D: ' ', B: Add{}}}, benchNumbered},
	}
	for _, tc := range cases {
		for _, k := range []int{8, 32} {
			outs := tc.outs(k, 8192)
			b.Run(fmt.Sprintf("%s/k=%d", tc.name, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := combine(nil, tc.c, outs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
