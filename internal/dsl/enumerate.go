package dsl

// DefaultMaxProductions bounds candidate combiner ASTs at five operator
// productions (|g| ≤ 7 in Definition 3.6 terms: the paper's §2 "seven or
// fewer nodes"). With this bound, both argument orders, and per-command
// delimiter sets of size 1, 2 or 3, the enumeration reproduces the paper's
// Table 10 search-space sizes exactly:
//
//	1 delim  →   968 RecOp +  1728 StructOp + 4 RunOp =   2700
//	2 delims → 12440 RecOp + 13960 StructOp + 4 RunOp =  26404
//	3 delims → 59048 RecOp + 51392 StructOp + 4 RunOp = 110444
const DefaultMaxProductions = 5

// EnumerateOps generates the RecOp and StructOp operator trees with at most
// maxProductions productions over the given delimiter set. RecOps precede
// StructOps in the result, each sorted by increasing production count.
func EnumerateOps(maxProductions int, delims []Delim) (recOps, structOps []Op) {
	if maxProductions < 1 {
		return nil, nil
	}
	// recExact[p] holds RecOp trees with exactly p productions.
	recExact := make([][]Op, maxProductions+1)
	recExact[1] = []Op{Add{}, Concat{}, First{}, Second{}}
	for p := 2; p <= maxProductions; p++ {
		for _, d := range delims {
			for _, b := range recExact[p-1] {
				recExact[p] = append(recExact[p], Front{D: d, B: b}, Back{D: d, B: b}, Fuse{D: d, B: b})
			}
		}
	}
	for p := 1; p <= maxProductions; p++ {
		recOps = append(recOps, recExact[p]...)
	}
	// StructOps: stitch (no delimiter choice), stitch2 and offset (with).
	for p := 2; p <= maxProductions; p++ {
		for _, b := range recExact[p-1] {
			structOps = append(structOps, Stitch{B: b})
		}
	}
	for p := 2; p <= maxProductions; p++ {
		for _, d := range delims {
			for _, b := range recExact[p-1] {
				structOps = append(structOps, Offset{D: d, B: b})
			}
		}
	}
	for p := 3; p <= maxProductions; p++ {
		for _, d := range delims {
			for p1 := 1; p1 <= p-2; p1++ {
				p2 := p - 1 - p1
				for _, b1 := range recExact[p1] {
					for _, b2 := range recExact[p2] {
						structOps = append(structOps, Stitch2{D: d, B1: b1, B2: b2})
					}
				}
			}
		}
	}
	return recOps, structOps
}

// Enumerate generates the full candidate search space: every RecOp and
// StructOp tree in both argument orders, plus the four RunOp candidates
// (rerun and merge, each in both orders). This is AllCandidates(n) from
// Algorithm 1.
func Enumerate(maxProductions int, delims []Delim) []Candidate {
	recOps, structOps := EnumerateOps(maxProductions, delims)
	out := make([]Candidate, 0, 2*(len(recOps)+len(structOps))+4)
	appendBoth := func(ops []Op) {
		for _, op := range ops {
			out = append(out, Candidate{Op: op}, Candidate{Op: op, Swap: true})
		}
	}
	appendBoth(recOps)
	appendBoth(structOps)
	appendBoth([]Op{Rerun{}, Merge{}})
	return out
}

// Shards partitions cands into at most n contiguous non-overlapping
// sub-slices of near-equal length, preserving order: concatenating the
// shards reproduces cands exactly. The synthesis engine filters each shard
// on a separate worker and merges survivors in shard order, which keeps
// parallel filtering byte-identical to the sequential pass. The shards
// alias the input slice; no candidates are copied.
func Shards(cands []Candidate, n int) [][]Candidate {
	if len(cands) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(cands) {
		n = len(cands)
	}
	out := make([][]Candidate, 0, n)
	size := (len(cands) + n - 1) / n
	for start := 0; start < len(cands); start += size {
		end := start + size
		if end > len(cands) {
			end = len(cands)
		}
		out = append(out, cands[start:end])
	}
	return out
}

// SpaceSize describes a search space's per-class candidate counts, the
// triple Table 10 reports as "total (= rec + struct + run)".
type SpaceSize struct {
	Rec, Struct, Run int
}

// Total is the full candidate count.
func (s SpaceSize) Total() int { return s.Rec + s.Struct + s.Run }

// Measure computes the per-class breakdown of a candidate set.
func Measure(cands []Candidate) SpaceSize {
	var s SpaceSize
	for _, c := range cands {
		switch c.Class() {
		case RecOpClass:
			s.Rec++
		case StructOpClass:
			s.Struct++
		default:
			s.Run++
		}
	}
	return s
}
