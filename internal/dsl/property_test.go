package dsl

import (
	"strings"
	"testing"
	"testing/quick"

	"kumquat/internal/textio"
)

// Property-based tests (testing/quick) for the DSL's algebraic structure,
// complementing the per-rule tests in dsl_test.go.

// sanitize maps arbitrary quick-generated strings into delimiter-free
// tokens over a small alphabet.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		b.WriteByte(byte('a' + int(r)%4))
	}
	return b.String()
}

func digits(s string) string {
	var b strings.Builder
	b.WriteByte('1') // nonempty, no leading-zero ambiguity
	for _, r := range s {
		b.WriteByte(byte('0' + int(r)%10))
	}
	return b.String()
}

// TestAddCommutative: add y1 y2 == add y2 y1 on L(add).
func TestAddCommutative(t *testing.T) {
	f := func(a, b string) bool {
		y1, y2 := digits(a), digits(b)
		v1, e1 := (Add{}).Eval(nil, y1, y2)
		v2, e2 := (Add{}).Eval(nil, y2, y1)
		return e1 == nil && e2 == nil && v1 == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAddAssociative: (a+b)+c == a+(b+c).
func TestAddAssociative(t *testing.T) {
	f := func(a, b, c string) bool {
		x, y, z := digits(a), digits(b), digits(c)
		xy, _ := (Add{}).Eval(nil, x, y)
		l, e1 := (Add{}).Eval(nil, xy, z)
		yz, _ := (Add{}).Eval(nil, y, z)
		r, e2 := (Add{}).Eval(nil, x, yz)
		return e1 == nil && e2 == nil && l == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFrontBackRoundTrip: wrapping operands with a delimiter and applying
// front/back recovers the inner operator's result, re-wrapped.
func TestFrontBackRoundTrip(t *testing.T) {
	f := func(a, b string) bool {
		y1, y2 := sanitize(a), sanitize(b)
		inner, err := (Concat{}).Eval(nil, y1, y2)
		if err != nil {
			return false
		}
		fr, e1 := (Front{D: ',', B: Concat{}}).Eval(nil, ","+y1, ","+y2)
		bk, e2 := (Back{D: ',', B: Concat{}}).Eval(nil, y1+",", y2+",")
		return e1 == nil && e2 == nil && fr == ","+inner && bk == inner+","
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFuseElementwise: fuse d b on equal-length element lists applies b
// pairwise — verified against a direct elementwise computation.
func TestFuseElementwise(t *testing.T) {
	f := func(raw []string, k uint8) bool {
		n := int(k)%4 + 2
		e1 := make([]string, n)
		e2 := make([]string, n)
		for i := 0; i < n; i++ {
			var s string
			if i < len(raw) {
				s = raw[i]
			}
			e1[i] = "x" + sanitize(s)
			e2[i] = "y" + sanitize(s)
		}
		y1 := strings.Join(e1, ",")
		y2 := strings.Join(e2, ",")
		got, err := (Fuse{D: ',', B: Concat{}}).Eval(nil, y1, y2)
		if err != nil {
			return false
		}
		want := make([]string, n)
		for i := range want {
			want[i] = e1[i] + e2[i]
		}
		return got == strings.Join(want, ",")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStitchPreservesStreams: stitch output is always a stream whose lines
// come from its operands (possibly with one merged boundary line).
func TestStitchPreservesStreams(t *testing.T) {
	f := func(a, b []string) bool {
		mk := func(raw []string) string {
			lines := make([]string, 0, len(raw)+1)
			for _, l := range raw {
				lines = append(lines, sanitize(l))
			}
			if len(lines) == 0 {
				lines = []string{"z"}
			}
			return textio.JoinLines(lines)
		}
		y1, y2 := mk(a), mk(b)
		v, err := (Stitch{B: First{}}).Eval(nil, y1, y2)
		if err != nil {
			return false
		}
		if !textio.IsStream(v) {
			return false
		}
		n1, n2, nv := len(textio.Lines(y1)), len(textio.Lines(y2)), len(textio.Lines(v))
		return nv == n1+n2 || nv == n1+n2-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCombineKConcatIsJoin: the k-way concat combine equals strings.Join.
func TestCombineKConcatIsJoin(t *testing.T) {
	f := func(raw []string) bool {
		outs := make([]string, len(raw))
		var want strings.Builder
		for i, r := range raw {
			s := sanitize(r)
			if s != "" {
				s += "\n"
			}
			outs[i] = s
			want.WriteString(s)
		}
		got, err := CombineK(nil, Candidate{Op: Concat{}}, outs)
		return err == nil && got == want.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOffsetShiftComposes: combining three numbered substreams pairwise
// with (offset ' ' add) yields globally consecutive numbering.
func TestOffsetShiftComposes(t *testing.T) {
	mk := func(n int) string {
		var b strings.Builder
		for i := 1; i <= n; i++ {
			b.WriteString(strings.Repeat(" ", 0))
			b.WriteString(intToStr(i))
			b.WriteString(" w\n")
		}
		return b.String()
	}
	c := Candidate{Op: Offset{D: ' ', B: Add{}}}
	got, err := CombineK(nil, c, []string{mk(2), mk(3), mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	want := "1 w\n2 w\n3 w\n4 w\n5 w\n6 w\n"
	if got != want {
		t.Errorf("offset add fold = %q, want %q", got, want)
	}
}

func intToStr(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

// TestDomainEvalConsistency: whenever both operands are in L(g) for the
// size-≤-4 operators over a small delimiter set, Eval must not fail.
func TestDomainEvalConsistency(t *testing.T) {
	recOps, structOps := EnumerateOps(3, []Delim{','})
	ops := append(append([]Op{}, recOps...), structOps...)
	f := func(a, b string, opIdx uint16) bool {
		op := ops[int(opIdx)%len(ops)]
		y1 := sanitize(a)
		y2 := sanitize(b)
		// Give structured ops stream-shaped operands half the time.
		if int(opIdx)%2 == 0 {
			y1 += "\n"
			y2 += "\n"
		}
		if !op.InDomain(nil, y1) || !op.InDomain(nil, y2) {
			return true // vacuous
		}
		_, err := op.Eval(nil, y1, y2)
		if err != nil {
			// The only legal failure is fuse's element-count mismatch,
			// which is a property of the *pair*, not of each operand.
			return strings.Contains(err.Error(), "element counts differ")
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMeasureConsistency: Measure agrees with direct classification.
func TestMeasureConsistency(t *testing.T) {
	cands := Enumerate(4, []Delim{'\n', ' '})
	s := Measure(cands)
	if s.Total() != len(cands) {
		t.Errorf("Measure total %d != %d", s.Total(), len(cands))
	}
	if s.Run != 4 {
		t.Errorf("RunOp count = %d, want 4", s.Run)
	}
}
