package dsl

import (
	"fmt"
	"strings"
)

// ParseCandidate parses the DSL's textual form back into a Candidate — the
// inverse of Candidate.String(). Accepted forms:
//
//	concat
//	(concat a b)
//	(back '\n' add b a)
//	stitch2 ' ' add first
//	merge('-rn') a b
//	rerun
//
// Outer parentheses and the trailing argument order ("a b" or "b a",
// default "a b") are optional. Merge flags are accepted and ignored at the
// operator level (the comparator is bound via Env at evaluation time).
func ParseCandidate(src string) (Candidate, error) {
	p := &combParser{toks: tokenizeCombiner(src)}
	c, err := p.parseCandidate()
	if err != nil {
		return Candidate{}, fmt.Errorf("dsl: parse %q: %w", src, err)
	}
	return c, nil
}

// tokenizeCombiner splits into words, parens and quoted delimiters.
func tokenizeCombiner(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j < len(src) {
				toks = append(toks, src[i:j+1])
				i = j + 1
			} else {
				toks = append(toks, src[i:])
				i = len(src)
			}
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t()'", rune(src[j])) {
				j++
			}
			word := src[i:j]
			i = j
			// merge('-rn') glues flags; re-attach a following quoted part.
			if strings.HasPrefix(word, "merge") && i < len(src) && src[i] == '(' {
				k := strings.IndexByte(src[i:], ')')
				if k >= 0 {
					word += src[i : i+k+1]
					i += k + 1
				}
			}
			toks = append(toks, word)
		}
	}
	return toks
}

type combParser struct {
	toks []string
	pos  int
}

func (p *combParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *combParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *combParser) parseCandidate() (Candidate, error) {
	outer := false
	if p.peek() == "(" {
		outer = true
		p.next()
	}
	op, err := p.parseOp()
	if err != nil {
		return Candidate{}, err
	}
	c := Candidate{Op: op}
	switch {
	case p.peek() == "a":
		p.next()
		if p.next() != "b" {
			return Candidate{}, fmt.Errorf(`expected "a b"`)
		}
	case p.peek() == "b":
		p.next()
		if p.next() != "a" {
			return Candidate{}, fmt.Errorf(`expected "b a"`)
		}
		c.Swap = true
	}
	if outer {
		if p.next() != ")" {
			return Candidate{}, fmt.Errorf("missing closing parenthesis")
		}
	}
	if p.pos != len(p.toks) {
		return Candidate{}, fmt.Errorf("trailing tokens %v", p.toks[p.pos:])
	}
	return c, nil
}

func (p *combParser) parseDelim() (Delim, error) {
	t := p.next()
	switch t {
	case `'\n'`:
		return '\n', nil
	case `'\t'`:
		return '\t', nil
	case `' '`:
		return ' ', nil
	case `','`:
		return ',', nil
	}
	if len(t) == 3 && t[0] == '\'' && t[2] == '\'' {
		return Delim(t[1]), nil
	}
	return 0, fmt.Errorf("expected delimiter, got %q", t)
}

func (p *combParser) parseOp() (Op, error) {
	t := p.next()
	switch {
	case t == "add":
		return Add{}, nil
	case t == "concat":
		return Concat{}, nil
	case t == "first":
		return First{}, nil
	case t == "second":
		return Second{}, nil
	case t == "rerun":
		return Rerun{}, nil
	case t == "merge" || strings.HasPrefix(t, "merge("):
		return Merge{}, nil
	case t == "front", t == "back", t == "fuse", t == "offset":
		d, err := p.parseDelim()
		if err != nil {
			return nil, err
		}
		b, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		switch t {
		case "front":
			return Front{D: d, B: b}, nil
		case "back":
			return Back{D: d, B: b}, nil
		case "fuse":
			return Fuse{D: d, B: b}, nil
		default:
			return Offset{D: d, B: b}, nil
		}
	case t == "stitch":
		b, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		return Stitch{B: b}, nil
	case t == "stitch2":
		d, err := p.parseDelim()
		if err != nil {
			return nil, err
		}
		b1, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		b2, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		return Stitch2{D: d, B1: b1, B2: b2}, nil
	case t == "(":
		op, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("missing closing parenthesis in sub-expression")
		}
		return op, nil
	}
	return nil, fmt.Errorf("unknown operator %q", t)
}
