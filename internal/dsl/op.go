// Package dsl implements the KumQuat combiner language of Figure 3: the
// operator classes RecOp (add, concat, first, second, front, back, fuse),
// StructOp (stitch, stitch2, offset) and RunOp_f (rerun, merge <flags>),
// with big-step evaluation per Figure 6, legality domains L(g) per
// Definition B.1, combiner sizes per Definition 3.6, and the candidate
// enumeration used by the synthesizer.
package dsl

import "fmt"

// Class partitions combiners as in Figure 3. The synthesizer prefers RecOp
// over StructOp over RunOp when building composite combiners (§3.2).
type Class int

const (
	// RecOpClass contains the recursive operators.
	RecOpClass Class = iota
	// StructOpClass contains the structured-stream operators.
	StructOpClass
	// RunOpClass contains the operators that re-execute commands.
	RunOpClass
)

// String names the class as in the paper ("RecOp", "StructOp", "RunOp").
func (c Class) String() string {
	switch c {
	case RecOpClass:
		return "RecOp"
	case StructOpClass:
		return "StructOp"
	case RunOpClass:
		return "RunOp"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Delim is a DSL delimiter (Figure 3): newline, tab, space or comma.
type Delim byte

// Delims lists every delimiter the DSL admits.
var Delims = []Delim{'\n', '\t', ' ', ','}

// String renders the delimiter as a quoted character literal ('\n', '\t',
// ' ' or ','), the form the DSL parser accepts back.
func (d Delim) String() string {
	switch d {
	case '\n':
		return `'\n'`
	case '\t':
		return `'\t'`
	case ' ':
		return `' '`
	case ',':
		return `','`
	default:
		return fmt.Sprintf("'%c'", byte(d))
	}
}

// Merger abstracts the Unix merge invoked by the merge combiner
// ("sort -m <flags>"). unix.SortCmd implements it.
type Merger interface {
	// IsSorted reports whether a stream is ordered under the comparator —
	// the legality domain of merge.
	IsSorted(stream string) bool
	// MergeStreams merges pre-sorted streams.
	MergeStreams(streams ...string) string
	// Flags returns the comparator flags for display, e.g. "-rn".
	Flags() string
}

// Env supplies the command-dependent context RunOp operators need: the
// black-box command f for rerun, and the merge comparator when f is a sort.
type Env struct {
	// RunF re-executes the command f (rerun's semantics: f(y1 ++ y2)).
	RunF func(string) (string, error)
	// Merge is non-nil when a merge combiner is available for f.
	Merge Merger
}

// Op is a combiner operator: a binary function on strings with an explicit
// legality domain. Eval implements the big-step semantics of Figure 6 and
// returns an error exactly when no evaluation rule applies.
type Op interface {
	// Class returns the operator's grammar class.
	Class() Class
	// Size is |g| per Definition 3.6: two plus the number of productions.
	Size() int
	// InDomain reports y ∈ L(g) per Definition B.1.
	InDomain(env *Env, y string) bool
	// Eval evaluates g y1 y2 per Figure 6.
	Eval(env *Env, y1, y2 string) (string, error)
	// Associative reports whether g is associative on its legality
	// domain: g (g y1 y2) y3 == g y1 (g y2 y3). Associativity is what
	// licenses CombineKTree's balanced-tree reduction of k substreams —
	// the tree's bracketing differs from the serial left fold, so only
	// associative operators may take the parallel path. The synthesized
	// combiner classes are associative by the paper's f(x1 ++ x2) =
	// g(f(x1), f(x2)) construction except rerun (f need not be
	// idempotent) and the boundary-merging stitch operators when their
	// child rewrites the compared boundary value (see selection).
	Associative() bool
	fmt.Stringer
}

// selection reports whether op is a pure selection operator — first or
// second, possibly wrapped in front/back/fuse — i.e. g y y == y on its
// domain. The boundary-merging operators (stitch, stitch2) compare a
// boundary line/tail and replace it with the child's merge result;
// they are associative only when that result equals the compared value,
// which selection operators guarantee and value-rewriting operators
// (add, concat) do not.
func selection(op Op) bool {
	switch o := op.(type) {
	case First, Second:
		return true
	case Front:
		return selection(o.B)
	case Back:
		return selection(o.B)
	case Fuse:
		return selection(o.B)
	}
	return false
}

// evalErr builds the error for a failed evaluation.
func evalErr(op Op, why string) error {
	return fmt.Errorf("dsl: %s: %s", op, why)
}

// Candidate is an operator applied in a fixed argument order. The
// enumeration treats (g a b) and (g b a) as distinct candidates, matching
// the paper's Table 10 which reports combiners such as
// "(back '\n' add) b a" for tail -n 1.
type Candidate struct {
	Op   Op
	Swap bool
}

// Eval applies the candidate to the two parallel outputs in its argument
// order. Swap is a no-op for merge — its output is determined by the
// comparator alone, with ties stable by operand position, so honoring
// the reversal would only scramble tie order; keeping the binary path
// consistent with the k-way combine (see prepareK) means a synthesized
// "(merge b a)" behaves identically at every entry point.
func (c Candidate) Eval(env *Env, y1, y2 string) (string, error) {
	if _, isMerge := c.Op.(Merge); c.Swap && !isMerge {
		y1, y2 = y2, y1
	}
	return c.Op.Eval(env, y1, y2)
}

// InDomain reports whether both operands lie in L(g).
func (c Candidate) InDomain(env *Env, y1, y2 string) bool {
	return c.Op.InDomain(env, y1) && c.Op.InDomain(env, y2)
}

// Plausible implements Definition 3.9 for a single observation: the operands
// are legal and the evaluation reproduces the serial output y12.
func (c Candidate) Plausible(env *Env, y1, y2, y12 string) bool {
	if !c.InDomain(env, y1, y2) {
		return false
	}
	v, err := c.Eval(env, y1, y2)
	return err == nil && v == y12
}

// String renders the candidate with its argument order, Table 10's
// notation: "(back '\n' add b a)".
func (c Candidate) String() string {
	args := "a b"
	if c.Swap {
		args = "b a"
	}
	return fmt.Sprintf("(%s %s)", c.Op, args)
}

// Size is the size of the underlying operator.
func (c Candidate) Size() int { return c.Op.Size() }

// Associative reports whether the underlying operator is associative.
// Swap does not affect it: the k-way combine realizes a swapped
// candidate by reversing the substream order once up front and then
// folding the bare operator, so tree-vs-fold equivalence reduces to the
// operator's own associativity.
func (c Candidate) Associative() bool { return c.Op.Associative() }

// Class is the class of the underlying operator.
func (c Candidate) Class() Class { return c.Op.Class() }
