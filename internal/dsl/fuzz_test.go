package dsl

import (
	"testing"
)

// FuzzCombiner drives the DSL parser and evaluator with arbitrary input:
// ParseCandidate must never panic, every accepted candidate must render
// back to a form the parser accepts (a stable parse/print round trip),
// and evaluation over arbitrary operand streams — binary, k-way fold and
// k-way tree — must return values or errors, never crash. CI runs this
// with a short -fuzztime budget.
func FuzzCombiner(f *testing.F) {
	combiners := []string{
		"(concat a b)",
		"(add b a)",
		"(first a b)",
		"(second a b)",
		"(stitch ' ' first a b)",
		"(stitch2 ' ' add first a b)",
		"(back '\\n' add b a)",
		"(front ',' second a b)",
		"(fuse '\\t' concat a b)",
		"(offset '\\n' 2 a b)",
		"(rerun a b)",
		"(merge a b)",
		"(stitch2 ' ' (front ',' add) first a b)",
		"(stitch",
		"()",
		"(bogus a b)",
		"(add a)",
		"(add a b c)",
	}
	ys := []string{"", "1\n", "a b\n1\n", "7", "x,y\nz"}
	for _, c := range combiners {
		for _, y := range ys {
			f.Add(c, y, "3\n")
			f.Add(c, "pear\n", y)
		}
	}
	f.Fuzz(func(t *testing.T, src, y1, y2 string) {
		c, err := ParseCandidate(src)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		rendered := c.String()
		rt, err := ParseCandidate(rendered)
		if err != nil {
			t.Fatalf("accepted %q renders to %q which does not re-parse: %v", src, rendered, err)
		}
		if rt.String() != rendered {
			t.Fatalf("parse/print not stable: %q -> %q -> %q", src, rendered, rt.String())
		}
		// Evaluate every path with a benign environment: rerun echoes its
		// input, merge is left unbound (its Eval must error, not crash).
		env := &Env{RunF: func(s string) (string, error) { return s, nil }}
		_ = c.InDomain(env, y1, y2)
		_, _ = c.Eval(env, y1, y2)
		outs := []string{y1, y2, y1, "", y2}
		foldV, foldErr := CombineK(env, c, outs)
		treeV, treeErr := CombineKTree(env, c, outs, 3)
		if foldErr == nil && treeErr == nil && foldV != treeV {
			t.Fatalf("fold and tree disagree for %q: %q vs %q", rendered, foldV, treeV)
		}
	})
}
