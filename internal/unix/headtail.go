package unix

import (
	"fmt"
	"strconv"
	"strings"

	"kumquat/internal/textio"
)

// headCmd implements head: first N lines (default 10), accepting both
// "-n N" and the historical "-N" form (head -15).
type headCmd struct {
	spec string
	n    int
}

func newHead(spec string, args []string, _ *Env) (Command, error) {
	h := &headCmd{spec: spec, n: 10}
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-n" && i+1 < len(args):
			i++
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("head: bad count %q", args[i])
			}
			h.n = n
		case strings.HasPrefix(a, "-n"):
			n, err := strconv.Atoi(a[2:])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("head: bad count %q", a)
			}
			h.n = n
		case strings.HasPrefix(a, "-"):
			n, err := strconv.Atoi(a[1:])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("head: bad argument %q", a)
			}
			h.n = n
		default:
			return nil, fmt.Errorf("head: unexpected argument %q", a)
		}
	}
	return h, nil
}

func (h *headCmd) Spec() string { return h.spec }

func (h *headCmd) Run(input string) (string, error) {
	lines := textio.Lines(input)
	if len(lines) > h.n {
		lines = lines[:h.n]
	}
	return textio.JoinLines(lines), nil
}

// Literals exposes the line count for preprocessing (head -n 3 behaves
// differently around inputs of ~3 lines).
func (h *headCmd) Literals() []int { return []int{h.n} }

// tailCmd implements tail -n N (last N lines) and the historical "+N" form
// (print from line N onward), which Table 9 lists among the commands with
// no correct combiner.
type tailCmd struct {
	spec string
	n    int
	from int // +N form: 1-based starting line; 0 when unused
}

func newTail(spec string, args []string, _ *Env) (Command, error) {
	t := &tailCmd{spec: spec, n: 10}
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-n" && i+1 < len(args):
			i++
			if strings.HasPrefix(args[i], "+") {
				n, err := strconv.Atoi(args[i][1:])
				if err != nil {
					return nil, fmt.Errorf("tail: bad count %q", args[i])
				}
				t.from = n
				continue
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("tail: bad count %q", args[i])
			}
			t.n = n
		case strings.HasPrefix(a, "+"):
			n, err := strconv.Atoi(a[1:])
			if err != nil {
				return nil, fmt.Errorf("tail: bad argument %q", a)
			}
			t.from = n
		case strings.HasPrefix(a, "-n"):
			n, err := strconv.Atoi(a[2:])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("tail: bad count %q", a)
			}
			t.n = n
		default:
			return nil, fmt.Errorf("tail: unexpected argument %q", a)
		}
	}
	return t, nil
}

func (t *tailCmd) Spec() string { return t.spec }

func (t *tailCmd) Run(input string) (string, error) {
	lines := textio.Lines(input)
	if t.from > 0 {
		if t.from-1 < len(lines) {
			lines = lines[t.from-1:]
		} else {
			lines = nil
		}
		return textio.JoinLines(lines), nil
	}
	if len(lines) > t.n {
		lines = lines[len(lines)-t.n:]
	}
	return textio.JoinLines(lines), nil
}

// Literals exposes the line count for preprocessing.
func (t *tailCmd) Literals() []int {
	if t.from > 0 {
		return []int{t.from}
	}
	return []int{t.n}
}
