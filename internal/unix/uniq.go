package unix

import (
	"fmt"
	"strings"

	"kumquat/internal/textio"
)

// uniqCmd implements uniq and uniq -c: collapse runs of equal consecutive
// lines; -c prefixes each surviving line with its run count formatted GNU
// style ("%7d "), which is the padded-table shape the stitch2 combiner's
// delPad/addPad semantics are built around.
type uniqCmd struct {
	spec  string
	count bool
}

func newUniq(spec string, args []string, _ *Env) (Command, error) {
	u := &uniqCmd{spec: spec}
	for _, a := range args {
		switch a {
		case "-c":
			u.count = true
		default:
			return nil, fmt.Errorf("uniq: unsupported argument %q", a)
		}
	}
	return u, nil
}

func (u *uniqCmd) Spec() string { return u.spec }

func (u *uniqCmd) Run(input string) (string, error) {
	lines := textio.Lines(input)
	var b strings.Builder
	b.Grow(len(input))
	i := 0
	for i < len(lines) {
		j := i + 1
		for j < len(lines) && lines[j] == lines[i] {
			j++
		}
		if u.count {
			fmt.Fprintf(&b, "%7d %s\n", j-i, lines[i])
		} else {
			b.WriteString(lines[i])
			b.WriteByte('\n')
		}
		i = j
	}
	return b.String(), nil
}
