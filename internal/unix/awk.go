package unix

import (
	"fmt"
	"strconv"
	"strings"

	"kumquat/internal/textio"
)

// awkCmd is a mini-awk interpreter covering the programs in the benchmark
// suite:
//
//	$1 >= 1000                      pattern-only rules (implicit print)
//	$1 >= 2 {print $2}              pattern + action
//	length >= 16                    length of $0
//	{$1=$1};1                       field re-join (whitespace squeeze)
//	{print $2, $0}  {print NF}      print lists joined with OFS
//	$1 == 2 {print $2, $3}          equality-gated print (Table 9's
//	                                unsupported command)
//
// plus -v VAR=VALUE (only OFS is meaningful to these programs). Comparison
// follows awk: numeric when both operands look numeric, string otherwise.
type awkCmd struct {
	spec  string
	rules []awkRule
	ofs   string
}

type awkRule struct {
	pattern awkExpr // nil = always
	actions []awkStmt
}

type awkStmt struct {
	print bool
	args  []awkExpr // empty print = print $0
	// assignment $n = expr
	assignField int
	assignExpr  awkExpr
}

// awkExpr evaluates to a string/number dual value in a line context.
type awkExpr interface {
	eval(ctx *awkCtx) awkVal
}

type awkVal struct {
	s       string
	n       float64
	numeric bool // true when the value originated as a number or looks numeric
}

func strVal(s string) awkVal {
	if n, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil && s != "" {
		return awkVal{s: s, n: n, numeric: true}
	}
	return awkVal{s: s}
}

func numVal(n float64) awkVal {
	return awkVal{s: formatAwkNum(n), n: n, numeric: true}
}

func formatAwkNum(n float64) string {
	if n == float64(int64(n)) {
		return strconv.FormatInt(int64(n), 10)
	}
	return strconv.FormatFloat(n, 'g', 6, 64)
}

type awkCtx struct {
	line    string
	fields  []string
	rebuilt bool
	ofs     string
}

func (c *awkCtx) field(i int) string {
	if i == 0 {
		if c.rebuilt {
			return strings.Join(c.fields, c.ofs)
		}
		return c.line
	}
	if i-1 < len(c.fields) {
		return c.fields[i-1]
	}
	return ""
}

type exprField struct{ idx int }
type exprNF struct{}
type exprLength struct{}
type exprNum struct{ v float64 }
type exprStr struct{ v string }
type exprCmp struct {
	op   string
	l, r awkExpr
}

func (e exprField) eval(c *awkCtx) awkVal { return strVal(c.field(e.idx)) }
func (exprNF) eval(c *awkCtx) awkVal      { return numVal(float64(len(c.fields))) }
func (exprLength) eval(c *awkCtx) awkVal  { return numVal(float64(len(c.field(0)))) }
func (e exprNum) eval(*awkCtx) awkVal     { return numVal(e.v) }
func (e exprStr) eval(*awkCtx) awkVal     { return awkVal{s: e.v} }

func (e exprCmp) eval(c *awkCtx) awkVal {
	l, r := e.l.eval(c), e.r.eval(c)
	var cmp int
	if l.numeric && r.numeric {
		switch {
		case l.n < r.n:
			cmp = -1
		case l.n > r.n:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(l.s, r.s)
	}
	var ok bool
	switch e.op {
	case "==":
		ok = cmp == 0
	case "!=":
		ok = cmp != 0
	case "<":
		ok = cmp < 0
	case "<=":
		ok = cmp <= 0
	case ">":
		ok = cmp > 0
	case ">=":
		ok = cmp >= 0
	}
	if ok {
		return numVal(1)
	}
	return numVal(0)
}

// awkUnescape interprets C escape sequences in -v values, as awk does.
func awkUnescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func newAwk(spec string, args []string, _ *Env) (Command, error) {
	a := &awkCmd{spec: spec, ofs: " "}
	var program string
	seenProg := false
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-v" && i+1 < len(args):
			i++
			k, v, ok := strings.Cut(args[i], "=")
			if !ok {
				return nil, fmt.Errorf("awk: bad -v %q", args[i])
			}
			if k == "OFS" {
				a.ofs = awkUnescape(v)
			}
		case !seenProg:
			program = args[i]
			seenProg = true
		default:
			return nil, fmt.Errorf("awk: unexpected argument %q", args[i])
		}
	}
	if !seenProg {
		return nil, fmt.Errorf("awk: missing program")
	}
	rules, err := parseAwkProgram(program)
	if err != nil {
		return nil, fmt.Errorf("awk: %w", err)
	}
	a.rules = rules
	return a, nil
}

// parseAwkProgram parses rules separated by ';' at top level.
func parseAwkProgram(src string) ([]awkRule, error) {
	var rules []awkRule
	for _, part := range splitAwkRules(src) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule, err := parseAwkRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("empty program")
	}
	return rules, nil
}

// splitAwkRules splits on top-level ';' (not inside braces or quotes).
func splitAwkRules(src string) []string {
	var parts []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '"':
			inStr = !inStr
		case '{':
			if !inStr {
				depth++
			}
		case '}':
			if !inStr {
				depth--
			}
		case ';':
			if !inStr && depth == 0 {
				parts = append(parts, src[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, src[start:])
	return parts
}

func parseAwkRule(src string) (awkRule, error) {
	var rule awkRule
	brace := strings.IndexByte(src, '{')
	patSrc := src
	actSrc := ""
	if brace >= 0 {
		patSrc = strings.TrimSpace(src[:brace])
		end := strings.LastIndexByte(src, '}')
		if end < brace {
			return rule, fmt.Errorf("unbalanced braces in %q", src)
		}
		actSrc = strings.TrimSpace(src[brace+1 : end])
	}
	if patSrc != "" {
		p := &awkParser{src: patSrc}
		e, err := p.parseExpr()
		if err != nil {
			return rule, err
		}
		if p.pos != len(p.src) {
			return rule, fmt.Errorf("trailing input in pattern %q", patSrc)
		}
		rule.pattern = e
	}
	if brace >= 0 {
		stmts, err := parseAwkActions(actSrc)
		if err != nil {
			return rule, err
		}
		rule.actions = stmts
	} else {
		rule.actions = []awkStmt{{print: true}}
	}
	return rule, nil
}

func parseAwkActions(src string) ([]awkStmt, error) {
	var stmts []awkStmt
	for _, s := range strings.Split(src, ";") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "print") {
			rest := strings.TrimSpace(strings.TrimPrefix(s, "print"))
			st := awkStmt{print: true}
			if rest != "" {
				for _, argSrc := range strings.Split(rest, ",") {
					p := &awkParser{src: strings.TrimSpace(argSrc)}
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					st.args = append(st.args, e)
				}
			}
			stmts = append(stmts, st)
			continue
		}
		// assignment: $N = expr
		lhs, rhs, ok := strings.Cut(s, "=")
		if ok && strings.HasPrefix(strings.TrimSpace(lhs), "$") {
			idxStr := strings.TrimSpace(lhs)[1:]
			idx, err := strconv.Atoi(idxStr)
			if err != nil {
				return nil, fmt.Errorf("bad assignment target %q", lhs)
			}
			p := &awkParser{src: strings.TrimSpace(rhs)}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, awkStmt{assignField: idx, assignExpr: e})
			continue
		}
		return nil, fmt.Errorf("unsupported statement %q", s)
	}
	return stmts, nil
}

type awkParser struct {
	src string
	pos int
}

func (p *awkParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// parseExpr parses term [cmpop term].
func (p *awkParser) parseExpr() (awkExpr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	for _, op := range []string{">=", "<=", "==", "!=", ">", "<"} {
		if strings.HasPrefix(p.src[p.pos:], op) {
			p.pos += len(op)
			p.skipSpace()
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			return exprCmp{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *awkParser) parseTerm() (awkExpr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("unexpected end of expression")
	}
	c := p.src[p.pos]
	switch {
	case c == '$':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		if start == p.pos {
			return nil, fmt.Errorf("bad field reference")
		}
		idx, _ := strconv.Atoi(p.src[start:p.pos])
		return exprField{idx: idx}, nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, err
		}
		return exprNum{v: v}, nil
	case c == '"':
		end := strings.IndexByte(p.src[p.pos+1:], '"')
		if end < 0 {
			return nil, fmt.Errorf("unterminated string")
		}
		v := p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return exprStr{v: v}, nil
	case strings.HasPrefix(p.src[p.pos:], "length"):
		p.pos += len("length")
		return exprLength{}, nil
	case strings.HasPrefix(p.src[p.pos:], "NF"):
		p.pos += len("NF")
		return exprNF{}, nil
	}
	return nil, fmt.Errorf("unsupported term at %q", p.src[p.pos:])
}

func (a *awkCmd) Spec() string { return a.spec }

func (a *awkCmd) Run(input string) (string, error) {
	return runLineMapper(a, input), nil
}

// MapLine implements LineMapper: each benchmark awk program is a pure
// per-line map/filter.
func (a *awkCmd) MapLine(line string) []string {
	ctx := &awkCtx{line: line, fields: textio.AppendFields(nil, line), ofs: a.ofs}
	var out []string
	for _, r := range a.rules {
		if r.pattern != nil {
			v := r.pattern.eval(ctx)
			truthy := v.n != 0
			if !v.numeric {
				truthy = v.s != ""
			}
			if !truthy {
				continue
			}
		}
		for _, st := range r.actions {
			switch {
			case st.print:
				if len(st.args) == 0 {
					out = append(out, ctx.field(0))
					continue
				}
				parts := make([]string, len(st.args))
				for i, e := range st.args {
					parts[i] = e.eval(ctx).s
				}
				out = append(out, strings.Join(parts, ctx.ofs))
			case st.assignExpr != nil:
				v := st.assignExpr.eval(ctx)
				for len(ctx.fields) < st.assignField {
					ctx.fields = append(ctx.fields, "")
				}
				ctx.fields[st.assignField-1] = v.s
				ctx.rebuilt = true
			}
		}
	}
	return out
}

// CompareLiterals exposes numeric comparison constants ($1 >= 1000 → 1000),
// which preprocessing turns into dictionary words so generated inputs
// exercise both branches of the comparison (§3.2). Equality-gated constants
// are excluded: reproducing the paper's preprocessing, which does not mine
// them (the reason Table 9 lists awk "$1 == 2 ..." as unsupported).
func (a *awkCmd) CompareLiterals() []int {
	var out []int
	for _, r := range a.rules {
		if cmp, ok := r.pattern.(exprCmp); ok && cmp.op != "==" && cmp.op != "!=" {
			if n, ok := cmp.r.(exprNum); ok {
				out = append(out, int(n.v))
			}
			if n, ok := cmp.l.(exprNum); ok {
				out = append(out, int(n.v))
			}
		}
	}
	return out
}

// GatedEquality reports whether any rule is gated on field equality with a
// constant ($1 == 2 …): the class Table 9 documents as unsupported because
// random inputs essentially never satisfy the gate.
func (a *awkCmd) GatedEquality() bool {
	for _, r := range a.rules {
		if cmp, ok := r.pattern.(exprCmp); ok && cmp.op == "==" {
			return true
		}
	}
	return false
}
