package unix

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"kumquat/internal/textio"
)

// TestReadSeqSharedAcrossWorkers: k workers pulling the same file's line
// index concurrently must all see one identical, fully built index — the
// ingest-once contract (run under -race, this also proves the sync.Once
// publication is sound).
func TestReadSeqSharedAcrossWorkers(t *testing.T) {
	fs := NewFS()
	content := strings.Repeat("alpha beta\ngamma\n", 500) + "tail"
	fs.Register("shared.txt", content)
	const workers = 16
	seqs := make([]textio.LineSeq, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seq, err := fs.ReadSeq("shared.txt")
			if err != nil {
				t.Error(err)
				return
			}
			// Each worker walks its own chunk of the shared index, the
			// way parallel stages consume the ingest.
			chunks := seq.Chunk(workers)
			if w < len(chunks) && chunks[w] != "" {
				_ = textio.CountByte('\n', chunks[w])
			}
			seqs[w] = seq
		}(w)
	}
	wg.Wait()
	want, err := fs.ReadSeq("shared.txt")
	if err != nil {
		t.Fatal(err)
	}
	for w, seq := range seqs {
		if seq.Str() != want.Str() || seq.Len() != want.Len() {
			t.Fatalf("worker %d saw a different index (%d lines vs %d)", w, seq.Len(), want.Len())
		}
	}
	if got := strings.Join(want.Chunk(1), ""); got != content {
		t.Fatalf("index round-trip = %q", got)
	}
}

// TestRegisterBytesAliases: RegisterBytes must not copy — Read returns a
// view of the registered bytes.
func TestRegisterBytesAliases(t *testing.T) {
	fs := NewFS()
	b := []byte("one\ntwo\n")
	fs.RegisterBytes("b.txt", b)
	got, err := fs.Read("b.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got != "one\ntwo\n" {
		t.Fatalf("Read = %q", got)
	}
}

// TestRegisterMappingLifetime: views handed out before Remove or
// re-registration must stay valid until FS.Close — the mapping is
// retired, never closed early.
func TestRegisterMappingLifetime(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.txt")
	content := strings.Repeat("mapped line\n", 2000)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := textio.MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFS()
	fs.RegisterMapping("in.txt", m)
	seq, err := fs.ReadSeq("in.txt")
	if err != nil {
		t.Fatal(err)
	}
	view, err := fs.Read("in.txt")
	if err != nil {
		t.Fatal(err)
	}

	// Displace the entry twice: once by re-registration, once by Remove.
	fs.Register("in.txt", "replacement\n")
	fs.Remove("in.txt")

	// The circulating views must still read the mapped bytes.
	if view != content {
		t.Fatal("string view dangled after Remove")
	}
	if seq.Str() != content {
		t.Fatal("line index dangled after Remove")
	}
	if got := strings.Join(seq.Chunk(4), ""); got != content {
		t.Fatal("chunk views dangled after Remove")
	}

	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is terminal and idempotent through the FS too.
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadSeqMissing: the line index of an unregistered file errors like
// Read does.
func TestReadSeqMissing(t *testing.T) {
	fs := NewFS()
	if _, err := fs.ReadSeq("absent.txt"); err == nil {
		t.Fatal("ReadSeq on missing file succeeded")
	}
}
