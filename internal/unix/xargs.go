package unix

import (
	"fmt"
	"strconv"
	"strings"

	"kumquat/internal/textio"
)

// xargsCmd implements the xargs invocations the benchmarks use. Input items
// are whitespace-separated tokens (file names); the sub-command is applied
// to them:
//
//	xargs cat           concatenate file contents in item order
//	xargs file          one "name: type" line per item
//	xargs -L 1 wc -l    one "count name" line per input line
//
// A missing file is an error, which is what drives the probe behaviour in
// §3.2 (xargs fails on word-list probes, succeeds on file-name lists).
type xargsCmd struct {
	spec    string
	env     *Env
	perLine bool   // -L 1
	sub     string // "cat", "file" or "wc"
	wcFlag  string
}

func newXargs(spec string, args []string, env *Env) (Command, error) {
	x := &xargsCmd{spec: spec, env: env}
	i := 0
	for i < len(args) {
		a := args[i]
		switch {
		case a == "-L" && i+1 < len(args):
			n, err := strconv.Atoi(args[i+1])
			if err != nil || n != 1 {
				return nil, fmt.Errorf("xargs: only -L 1 is supported")
			}
			x.perLine = true
			i += 2
		case strings.HasPrefix(a, "-L"):
			if a[2:] != "1" {
				return nil, fmt.Errorf("xargs: only -L 1 is supported")
			}
			x.perLine = true
			i++
		default:
			goto subcmd
		}
	}
subcmd:
	if i >= len(args) {
		return nil, fmt.Errorf("xargs: missing sub-command")
	}
	switch args[i] {
	case "cat", "file":
		x.sub = args[i]
		if i+1 != len(args) {
			return nil, fmt.Errorf("xargs: unexpected arguments after %s", args[i])
		}
	case "wc":
		x.sub = "wc"
		if i+1 >= len(args) || args[i+1] != "-l" {
			return nil, fmt.Errorf("xargs: only wc -l is supported")
		}
	default:
		return nil, fmt.Errorf("xargs: unsupported sub-command %q", args[i])
	}
	return x, nil
}

func (x *xargsCmd) Spec() string { return x.spec }

// NeedsFileNames marks this command for the file-name input dictionary.
func (x *xargsCmd) NeedsFileNames() bool { return true }

func (x *xargsCmd) Run(input string) (string, error) {
	var b strings.Builder
	process := func(items []string) error {
		for _, name := range items {
			content, err := x.env.FS.Read(name)
			if err != nil {
				return fmt.Errorf("xargs: %s", err)
			}
			switch x.sub {
			case "cat":
				b.WriteString(content)
			case "file":
				fmt.Fprintf(&b, "%s: %s\n", name, classifyFile(name, content))
			case "wc":
				fmt.Fprintf(&b, "%d %s\n", textio.CountByte('\n', content), name)
			}
		}
		return nil
	}
	if x.perLine {
		// One field slice reused across every line of the run (the shared
		// kernel recycles its capacity; strings.Fields allocated per line).
		var items []string
		ls := textio.ScanLines(input)
		for i := 0; i < ls.Len(); i++ {
			items = textio.AppendFields(items[:0], ls.Line(i))
			if len(items) == 0 {
				continue
			}
			if err := process(items); err != nil {
				return "", err
			}
		}
		return b.String(), nil
	}
	items := textio.AppendFields(nil, input)
	if err := process(items); err != nil {
		return "", err
	}
	return b.String(), nil
}

// classifyFile is the deterministic stand-in for file(1)'s magic detection.
func classifyFile(name, content string) string {
	switch {
	case strings.HasPrefix(content, "#!"):
		line, _, _ := strings.Cut(content[2:], "\n")
		return strings.TrimSpace(line) + " script, ASCII text executable"
	case content == "":
		return "empty"
	case strings.HasSuffix(name, ".sh"):
		return "ASCII text"
	default:
		return "ASCII text"
	}
}

// fileCmd implements file(1) over stdin lines (each input line names a
// file). Only used through xargs in the benchmarks, but parseable directly.
type fileCmd struct {
	spec string
	env  *Env
}

func newFile(spec string, args []string, env *Env) (Command, error) {
	if len(args) != 0 {
		return nil, fmt.Errorf("file: arguments not supported")
	}
	return &fileCmd{spec: spec, env: env}, nil
}

func (f *fileCmd) Spec() string { return f.spec }

func (f *fileCmd) Run(input string) (string, error) {
	var b strings.Builder
	for _, name := range textio.Lines(input) {
		content, err := f.env.FS.Read(name)
		if err != nil {
			return "", fmt.Errorf("file: %s", err)
		}
		fmt.Fprintf(&b, "%s: %s\n", name, classifyFile(name, content))
	}
	return b.String(), nil
}
