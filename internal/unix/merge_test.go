package unix

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// mergeSort builds a SortCmd for the given spec or fails the test.
func mergeSort(t testing.TB, spec string) *SortCmd {
	t.Helper()
	cmd, err := Parse(spec, DefaultEnv())
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return cmd.(*SortCmd)
}

// genSorted produces a stream of n lines sorted under s.
func genSorted(rng *rand.Rand, s *SortCmd, n int) string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("%d %c%d", rng.Intn(50), 'a'+rune(rng.Intn(4)), rng.Intn(10))
	}
	sort.SliceStable(lines, func(i, j int) bool { return s.Less(lines[i], lines[j]) })
	if n == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

// TestMergeHeapMatchesScan: the heap merge must be byte-identical to the
// retired cursor-scan merge for every comparator the benchmarks use,
// across random stream counts and shapes (including empty streams and
// heavy cross-stream ties).
func TestMergeHeapMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, spec := range []string{"sort", "sort -n", "sort -rn", "sort -u", "sort -f", "sort -k 2", "sort -k1n", "sort -nu"} {
		s := mergeSort(t, spec)
		for trial := 0; trial < 50; trial++ {
			k := 1 + rng.Intn(40)
			streams := make([]string, k)
			for i := range streams {
				streams[i] = genSorted(rng, s, rng.Intn(12))
			}
			want := s.MergeStreamsScan(streams...)
			got := s.MergeStreams(streams...)
			if got != want {
				t.Fatalf("%s k=%d: heap merge = %q, scan merge = %q", spec, k, got, want)
			}
		}
	}
}

// TestMergeHeapStability: key-equal lines resolve to the earliest stream
// (GNU sort -m stability). Without -u the last-resort bytewise comparison
// makes distinguishable lines never tie, so stability is observable
// exactly through -u's dedup keeping the first-popped line of each
// equal-key run — which must come from the earliest stream.
func TestMergeHeapStability(t *testing.T) {
	s := mergeSort(t, "sort -nu")
	got := s.MergeStreams("1 c\n", "1 b\n2 x\n", "1 a\n")
	want := "1 c\n2 x\n"
	if got != want {
		t.Errorf("stability: got %q, want %q", got, want)
	}
	if scan := s.MergeStreamsScan("1 c\n", "1 b\n2 x\n", "1 a\n"); scan != got {
		t.Errorf("heap %q disagrees with scan %q", got, scan)
	}
}

// TestMergeHeapUnterminated: streams without trailing newlines still merge
// with Lines semantics, and the output is newline-terminated.
func TestMergeHeapUnterminated(t *testing.T) {
	s := mergeSort(t, "sort")
	got := s.MergeStreams("a\nc", "b\n", "")
	want := s.MergeStreamsScan("a\nc", "b\n", "")
	if got != want {
		t.Errorf("unterminated: heap %q, scan %q", got, want)
	}
	if got != "a\nb\nc\n" {
		t.Errorf("unterminated: got %q", got)
	}
}

// benchStreams builds k sorted substreams of roughly lines/k lines each.
func benchStreams(b *testing.B, s *SortCmd, k, lines int) []string {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	streams := make([]string, k)
	per := lines / k
	if per < 1 {
		per = 1
	}
	for i := range streams {
		streams[i] = genSorted(rng, s, per)
	}
	return streams
}

// BenchmarkMergeScan and BenchmarkMergeHeap compare the retired
// per-line cursor scan (O(total·k)) against the heap k-way merge
// (O(total·log k)) across the combine-plane k sweep, with allocations
// reported: the scan materializes every line up front, the heap streams
// through bounded cursors into a pooled builder.
func BenchmarkMergeScan(b *testing.B) {
	benchMerge(b, func(s *SortCmd, streams []string) string {
		return s.MergeStreamsScan(streams...)
	})
}

// BenchmarkMergeHeap is the heap counterpart of BenchmarkMergeScan.
func BenchmarkMergeHeap(b *testing.B) {
	benchMerge(b, func(s *SortCmd, streams []string) string {
		return s.MergeStreams(streams...)
	})
}

func benchMerge(b *testing.B, merge func(*SortCmd, []string) string) {
	s := mergeSort(b, "sort")
	for _, k := range []int{2, 8, 32, 128} {
		streams := benchStreams(b, s, k, 16384)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if out := merge(s, streams); out == "" {
					b.Fatal("empty merge output")
				}
			}
		})
	}
}
