package unix

import "fmt"

// Tokenize splits a command spec using shell-like word splitting:
// whitespace separates words; single quotes preserve everything literally;
// double quotes preserve everything except \" \\ \$ escapes; a backslash
// outside quotes escapes the next character. Adjacent quoted and unquoted
// segments concatenate into one word, so s/\$/'0s'/ tokenizes to "s/$/0s/".
func Tokenize(spec string) ([]string, error) {
	var argv []string
	var cur []byte
	inWord := false
	i := 0
	for i < len(spec) {
		c := spec[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			if inWord {
				argv = append(argv, string(cur))
				cur = cur[:0]
				inWord = false
			}
			i++
		case c == '\'':
			inWord = true
			j := i + 1
			for j < len(spec) && spec[j] != '\'' {
				j++
			}
			if j >= len(spec) {
				return nil, fmt.Errorf("unterminated single quote")
			}
			cur = append(cur, spec[i+1:j]...)
			i = j + 1
		case c == '"':
			inWord = true
			i++
			for i < len(spec) && spec[i] != '"' {
				if spec[i] == '\\' && i+1 < len(spec) {
					switch spec[i+1] {
					case '"', '\\', '$', '`':
						cur = append(cur, spec[i+1])
						i += 2
						continue
					}
				}
				cur = append(cur, spec[i])
				i++
			}
			if i >= len(spec) {
				return nil, fmt.Errorf("unterminated double quote")
			}
			i++
		case c == '\\':
			if i+1 >= len(spec) {
				return nil, fmt.Errorf("trailing backslash")
			}
			inWord = true
			cur = append(cur, spec[i+1])
			i += 2
		default:
			inWord = true
			cur = append(cur, c)
			i++
		}
	}
	if inWord {
		argv = append(argv, string(cur))
	}
	return argv, nil
}
