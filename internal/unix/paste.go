package unix

import (
	"fmt"
	"strings"

	"kumquat/internal/textio"
)

// pasteCmd implements paste FILE... with "-" for standard input: it joins
// the i-th lines of its operands with tabs. The poets trigram scripts use
// it to align a word list with its shifted copies. paste processes multiple
// input streams, so it is one of the commands the paper excludes from
// combiner synthesis (footnote 5); the planner runs it serially.
type pasteCmd struct {
	spec  string
	env   *Env
	files []string
}

func newPaste(spec string, args []string, env *Env) (Command, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("paste: need at least one operand")
	}
	return &pasteCmd{spec: spec, env: env, files: args}, nil
}

func (p *pasteCmd) Spec() string { return p.spec }

// MultiInput marks commands that read several input streams; the
// synthesizer skips them (no single-stream combiner model applies).
func (p *pasteCmd) MultiInput() bool { return true }

func (p *pasteCmd) Run(input string) (string, error) {
	columns := make([][]string, len(p.files))
	rows := 0
	for i, f := range p.files {
		var content string
		if f == "-" {
			content = input
		} else {
			var err error
			content, err = p.env.FS.Read(f)
			if err != nil {
				return "", fmt.Errorf("paste: %s", err)
			}
		}
		columns[i] = textio.Lines(content)
		if len(columns[i]) > rows {
			rows = len(columns[i])
		}
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		parts := make([]string, len(columns))
		for c := range columns {
			if r < len(columns[c]) {
				parts[c] = columns[c][r]
			}
		}
		b.WriteString(strings.Join(parts, "\t"))
		b.WriteByte('\n')
	}
	return b.String(), nil
}
