package unix

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"kumquat/internal/textio"
)

// cutCmd implements cut -c LIST (character ranges) and cut -d C -f LIST
// (delimited fields). As in GNU cut, selected positions are emitted in
// input order regardless of the order they appear in LIST (so -f 3,1 prints
// fields 1 and 3), and lines without the delimiter pass through whole.
type cutCmd struct {
	spec   string
	chars  bool
	fields bool
	delim  byte
	ranges []cutRange
}

type cutRange struct{ lo, hi int } // 1-based inclusive; hi=maxInt for open

const cutOpen = 1 << 30

func newCut(spec string, args []string, _ *Env) (Command, error) {
	c := &cutCmd{spec: spec, delim: '\t'}
	for i := 0; i < len(args); i++ {
		a := args[i]
		take := func(flag string) (string, error) {
			if a == flag {
				if i+1 >= len(args) {
					return "", fmt.Errorf("cut: %s needs a value", flag)
				}
				i++
				return args[i], nil
			}
			return strings.TrimPrefix(a, flag), nil
		}
		switch {
		case a == "-c" || strings.HasPrefix(a, "-c"):
			v, err := take("-c")
			if err != nil {
				return nil, err
			}
			c.chars = true
			if err := c.parseList(v); err != nil {
				return nil, err
			}
		case a == "-f" || strings.HasPrefix(a, "-f"):
			v, err := take("-f")
			if err != nil {
				return nil, err
			}
			c.fields = true
			if err := c.parseList(v); err != nil {
				return nil, err
			}
		case a == "-d" || strings.HasPrefix(a, "-d"):
			v, err := take("-d")
			if err != nil {
				return nil, err
			}
			if len(v) != 1 {
				return nil, fmt.Errorf("cut: delimiter must be one byte, got %q", v)
			}
			c.delim = v[0]
		default:
			return nil, fmt.Errorf("cut: unsupported argument %q", a)
		}
	}
	if c.chars == c.fields {
		return nil, fmt.Errorf("cut: need exactly one of -c or -f")
	}
	return c, nil
}

func (c *cutCmd) parseList(list string) error {
	for _, part := range strings.Split(list, ",") {
		lo, hi, found := strings.Cut(part, "-")
		r := cutRange{}
		var err error
		r.lo, err = strconv.Atoi(lo)
		if err != nil || r.lo < 1 {
			return fmt.Errorf("cut: bad list %q", list)
		}
		if !found {
			r.hi = r.lo
		} else if hi == "" {
			r.hi = cutOpen
		} else {
			r.hi, err = strconv.Atoi(hi)
			if err != nil || r.hi < r.lo {
				return fmt.Errorf("cut: bad list %q", list)
			}
		}
		c.ranges = append(c.ranges, r)
	}
	sort.Slice(c.ranges, func(i, j int) bool { return c.ranges[i].lo < c.ranges[j].lo })
	return nil
}

func (c *cutCmd) selected(pos int) bool {
	for _, r := range c.ranges {
		if pos >= r.lo && pos <= r.hi {
			return true
		}
	}
	return false
}

func (c *cutCmd) Spec() string { return c.spec }

// FieldDelim returns the -d delimiter in field mode (0 in character mode);
// preprocessing injects it into generated words so the field structure is
// exercised (§3.2 literal extraction).
func (c *cutCmd) FieldDelim() byte {
	if c.fields {
		return c.delim
	}
	return 0
}

func (c *cutCmd) Run(input string) (string, error) {
	return runLineMapper(c, input), nil
}

// MapLine implements LineMapper: cut is line-independent.
func (c *cutCmd) MapLine(line string) []string {
	if c.chars {
		var b strings.Builder
		for i := 0; i < len(line); i++ {
			if c.selected(i + 1) {
				b.WriteByte(line[i])
			}
		}
		return []string{b.String()}
	}
	if !hasByte(line, c.delim) {
		return []string{line}
	}
	// One pass through the shared field-splitting kernel: no per-line
	// field slice, no re-materialized one-byte delimiter string (the old
	// strings.Split(line, string(c.delim)) paid both on every line).
	var b strings.Builder
	fs := textio.FieldsByte(line, c.delim)
	field, wrote := 0, false
	for {
		f, ok := fs.Next()
		if !ok {
			break
		}
		field++
		if !c.selected(field) {
			continue
		}
		if wrote {
			b.WriteByte(c.delim)
		}
		b.WriteString(f)
		wrote = true
	}
	return []string{b.String()}
}
