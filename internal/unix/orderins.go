package unix

// OrderInsensitive is the optional capability interface behind the dataflow
// optimizer's combine-elision rule: a command may declare that its output
// depends only on the multiset of input lines, not their order. The
// declaration must hold byte-for-byte — "same lines, any order" has to
// produce the identical output stream — because the optimizer uses it to
// feed a permutation of the true stream (the plain concatenation of chunk
// outputs) into the command in place of the combined stream.
type OrderInsensitive interface {
	Command
	// OrderInsensitive reports the property for the command's exact flag
	// set; flag-dependent commands (grep -c vs grep, sort vs sort -u -n)
	// answer per instance.
	OrderInsensitive() bool
}

// IsOrderInsensitive probes the capability: false for every command that
// does not declare it (the conservative default — order sensitivity is
// assumed unless proven otherwise).
func IsOrderInsensitive(c Command) bool {
	if oi, ok := c.(OrderInsensitive); ok {
		return oi.OrderInsensitive()
	}
	return false
}

// OrderInsensitive reports when sorting ignores input order. Sorting is
// stable, so ties in the comparator surface input order — but the
// comparator's last-resort bytewise comparison makes ties possible only
// between identical lines, whose relative order is unobservable. The
// exceptions are -m (merge mode requires already-ordered input, so input
// order is semantics) and -u with a partial key (-n, -f or -k): there the
// last resort is suppressed, equal keys can hold distinct lines, and dedup
// keeps whichever came first. Plain sort -u stays insensitive: its key is
// the whole line, so equal keys are identical lines.
func (s *SortCmd) OrderInsensitive() bool {
	if s.Merge {
		return false
	}
	if s.Unique && (s.Numeric || s.Fold || s.Key > 0) {
		return false
	}
	return true
}

// OrderInsensitive: wc counts newlines, whitespace-separated words and
// bytes — all invariant under reordering the (newline-terminated) lines of
// the stream.
func (w *wcCmd) OrderInsensitive() bool { return true }

// OrderInsensitive: grep -c emits one count of matching lines; the
// filtering modes echo lines in input order and stay order-sensitive.
func (g *grepCmd) OrderInsensitive() bool { return g.count }
