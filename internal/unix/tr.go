package unix

import (
	"fmt"
	"strings"
)

// trCmd implements GNU tr for the flag combinations the benchmarks use:
// translate, -c (complement SET1), -d (delete), -s (squeeze), and their
// combinations (-cs, -sc, -d with -c). Set syntax: literal characters,
// ranges a-z, escapes \n \t \\ and octal \012, POSIX classes [:lower:] etc.,
// and the [c*] / [c*n] repetition notation (e.g. '[\012*]').
//
// As in GNU tr, plain brackets are ordinary characters: '[a-z]' denotes
// '[', the range a-z, and ']' — which is why the classic scripts write
// tr '[a-z]' '[A-Z]' with brackets on both sides.
type trCmd struct {
	spec       string
	complement bool
	del        bool
	squeeze    bool
	set1       []byte
	set2       []byte // empty when deleting or squeezing only

	translate  [256]byte
	translated [256]bool // true when the byte is replaced by translate
	deleteSet  [256]bool
	squeezeSet [256]bool
	affected   [256]bool // deleted or translated to a different byte
	hasXlate   bool
}

func newTr(spec string, args []string, _ *Env) (Command, error) {
	t := &trCmd{spec: spec}
	var sets []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") && len(a) > 1 && len(sets) == 0 {
			for _, f := range a[1:] {
				switch f {
				case 'c', 'C':
					t.complement = true
				case 'd':
					t.del = true
				case 's':
					t.squeeze = true
				default:
					return nil, fmt.Errorf("tr: unsupported flag -%c", f)
				}
			}
			continue
		}
		sets = append(sets, a)
	}
	if len(sets) == 0 || len(sets) > 2 {
		return nil, fmt.Errorf("tr: need 1 or 2 sets, got %d", len(sets))
	}
	var err error
	t.set1, err = expandTrSet(sets[0], 0)
	if err != nil {
		return nil, err
	}
	if len(sets) == 2 {
		t.set2, err = expandTrSet(sets[1], len(t.set1))
		if err != nil {
			return nil, err
		}
	}
	t.compile()
	return t, nil
}

func (t *trCmd) compile() {
	inSet1 := [256]bool{}
	for _, c := range t.set1 {
		inSet1[c] = true
	}
	member1 := func(c int) bool { return inSet1[c] != t.complement }

	switch {
	case t.del:
		for c := 0; c < 256; c++ {
			t.deleteSet[c] = member1(c)
		}
		if t.squeeze && len(t.set2) > 0 {
			for _, c := range t.set2 {
				t.squeezeSet[c] = true
			}
		}
	case len(t.set2) == 0:
		// squeeze-only: squeeze members of SET1 (complemented if -c).
		for c := 0; c < 256; c++ {
			t.squeezeSet[c] = member1(c)
		}
	default:
		t.hasXlate = true
		set2 := t.set2
		last := set2[len(set2)-1]
		if t.complement {
			// Complemented translation: every byte not in SET1 maps to the
			// corresponding SET2 byte; GNU pads SET2 with its last byte, and
			// with -c effectively everything maps to the last byte unless
			// SET2 is long enough to cover the (ordered) complement.
			idx := 0
			for c := 0; c < 256; c++ {
				if !inSet1[c] {
					if idx < len(set2) {
						t.translate[c] = set2[idx]
					} else {
						t.translate[c] = last
					}
					t.translated[c] = true
					idx++
				}
			}
		} else {
			for i, c := range t.set1 {
				if i < len(set2) {
					t.translate[c] = set2[i]
				} else {
					t.translate[c] = last
				}
				t.translated[c] = true
			}
		}
		if t.squeeze {
			// Squeeze repeats of SET2 members in the output.
			for _, c := range set2 {
				t.squeezeSet[c] = true
			}
		}
	}
	for c := 0; c < 256; c++ {
		t.affected[c] = t.deleteSet[c] ||
			(t.translated[c] && t.translate[c] != byte(c))
	}
}

func (t *trCmd) Spec() string { return t.spec }

// Run processes the raw byte stream (tr is not line-oriented; squeezing
// crosses line boundaries, which is exactly why concat is an incorrect
// combiner for tr -s and KumQuat synthesizes rerun for it).
func (t *trCmd) Run(input string) (string, error) {
	var b strings.Builder
	b.Grow(len(input))
	var prev byte
	havePrev := false
	for i := 0; i < len(input); i++ {
		c := input[i]
		if t.deleteSet[c] {
			continue
		}
		if t.translated[c] {
			c = t.translate[c]
		}
		if t.squeezeSet[c] && havePrev && prev == c {
			continue
		}
		b.WriteByte(c)
		prev, havePrev = c, true
	}
	return b.String(), nil
}

// expandTrSet expands a tr SET description into bytes. targetLen is used by
// the [c*] notation in SET2 (repeat to match SET1's length); 0 means SET1.
func expandTrSet(s string, targetLen int) ([]byte, error) {
	var out []byte
	i := 0
	readChar := func() (byte, error) {
		c := s[i]
		if c != '\\' {
			i++
			return c, nil
		}
		if i+1 >= len(s) {
			return 0, fmt.Errorf("tr: trailing backslash in set")
		}
		e := s[i+1]
		switch {
		case e == 'n':
			i += 2
			return '\n', nil
		case e == 't':
			i += 2
			return '\t', nil
		case e == '\\':
			i += 2
			return '\\', nil
		case e >= '0' && e <= '7':
			// octal escape, up to 3 digits
			v := 0
			j := i + 1
			for j < len(s) && j < i+4 && s[j] >= '0' && s[j] <= '7' {
				v = v*8 + int(s[j]-'0')
				j++
			}
			i = j
			return byte(v), nil
		default:
			i += 2
			return e, nil
		}
	}
	for i < len(s) {
		// POSIX class [:name:]
		if strings.HasPrefix(s[i:], "[:") {
			end := strings.Index(s[i:], ":]")
			if end >= 0 {
				name := s[i+2 : i+end]
				fn, ok := posixTrClasses[name]
				if !ok {
					return nil, fmt.Errorf("tr: unknown class [:%s:]", name)
				}
				for c := 0; c < 256; c++ {
					if fn(byte(c)) {
						out = append(out, byte(c))
					}
				}
				i += end + 2
				continue
			}
		}
		// Repetition [c*] or [c*n]
		if s[i] == '[' && i+2 < len(s) {
			save := i
			i++
			c, err := readChar()
			if err != nil {
				return nil, err
			}
			if i < len(s) && s[i] == '*' {
				j := i + 1
				n := 0
				for j < len(s) && s[j] >= '0' && s[j] <= '9' {
					n = n*10 + int(s[j]-'0')
					j++
				}
				if j < len(s) && s[j] == ']' {
					if n == 0 {
						n = targetLen - len(out)
						if n < 1 {
							n = 1
						}
					}
					for k := 0; k < n; k++ {
						out = append(out, c)
					}
					i = j + 1
					continue
				}
			}
			i = save
		}
		c, err := readChar()
		if err != nil {
			return nil, err
		}
		// Range c-hi
		if i < len(s) && s[i] == '-' && i+1 < len(s) {
			i++
			hi, err := readChar()
			if err != nil {
				return nil, err
			}
			if c > hi {
				return nil, fmt.Errorf("tr: inverted range %c-%c", c, hi)
			}
			for x := int(c); x <= int(hi); x++ {
				out = append(out, byte(x))
			}
			continue
		}
		out = append(out, c)
	}
	return out, nil
}

var posixTrClasses = map[string]func(byte) bool{
	"alpha": func(b byte) bool { return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' },
	"digit": func(b byte) bool { return b >= '0' && b <= '9' },
	"lower": func(b byte) bool { return b >= 'a' && b <= 'z' },
	"upper": func(b byte) bool { return b >= 'A' && b <= 'Z' },
	"space": func(b byte) bool {
		return b == ' ' || b == '\t' || b == '\n' || b == '\v' || b == '\f' || b == '\r'
	},
	"alnum": func(b byte) bool {
		return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
	},
	"punct": func(b byte) bool {
		return b > ' ' && b < 0x7f && !(b >= 'a' && b <= 'z') && !(b >= 'A' && b <= 'Z') && !(b >= '0' && b <= '9')
	},
}

// PureTranslate reports whether this tr invocation maps lines independently
// (no squeeze and no newline involvement), i.e. whether it is a LineMapper.
func (t *trCmd) pureTranslate() bool {
	if t.squeeze {
		return false
	}
	if t.deleteSet['\n'] || (t.translated['\n'] && t.translate['\n'] != '\n') {
		return false
	}
	return true
}

// MapLine implements LineMapper for tr invocations without cross-line
// effects. Translating a byte *to* '\n' splits the line.
func (t *trCmd) MapLine(line string) []string {
	out, _ := t.Run(line)
	return strings.Split(out, "\n")
}

// AsLineMapper returns the command as a LineMapper when its flags permit
// line-independent processing.
func (t *trCmd) AsLineMapper() (LineMapper, bool) {
	if t.pureTranslate() {
		return t, true
	}
	return nil, false
}
