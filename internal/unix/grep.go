package unix

import (
	"fmt"
	"strconv"
	"strings"

	"kumquat/internal/regexlite"
	"kumquat/internal/textio"
)

// grepCmd implements grep with BRE patterns and the flags the benchmarks
// combine: -c (count), -v (invert), -i (ignore case), -vc, -vi.
type grepCmd struct {
	spec    string
	re      *regexlite.Regexp
	pattern string
	count   bool
	invert  bool
}

func newGrep(spec string, args []string, _ *Env) (Command, error) {
	g := &grepCmd{spec: spec}
	icase := false
	var pattern string
	seenPattern := false
	for _, a := range args {
		if strings.HasPrefix(a, "-") && len(a) > 1 && !seenPattern {
			for _, f := range a[1:] {
				switch f {
				case 'c':
					g.count = true
				case 'v':
					g.invert = true
				case 'i':
					icase = true
				default:
					return nil, fmt.Errorf("grep: unsupported flag -%c", f)
				}
			}
			continue
		}
		if seenPattern {
			return nil, fmt.Errorf("grep: unexpected argument %q", a)
		}
		pattern = a
		seenPattern = true
	}
	if !seenPattern {
		return nil, fmt.Errorf("grep: missing pattern")
	}
	var err error
	if icase {
		g.re, err = regexlite.CompileFold(pattern)
	} else {
		g.re, err = regexlite.Compile(pattern)
	}
	if err != nil {
		return nil, err
	}
	g.pattern = pattern
	return g, nil
}

func (g *grepCmd) Spec() string { return g.spec }

// Pattern returns the BRE source, which KumQuat preprocessing mines for the
// input dictionary (§3.2: "KumQuat extracts this regular expression and
// generates a dictionary of strings that match").
func (g *grepCmd) Pattern() string { return g.pattern }

func (g *grepCmd) keep(line string) bool {
	return g.re.MatchString(line) != g.invert
}

func (g *grepCmd) Run(input string) (string, error) {
	if g.count {
		n := 0
		for _, l := range textio.Lines(input) {
			if g.keep(l) {
				n++
			}
		}
		return strconv.Itoa(n) + "\n", nil
	}
	return runLineMapper(g, input), nil
}

// MapLine implements LineMapper for the filtering (non -c) mode.
func (g *grepCmd) MapLine(line string) []string {
	if g.keep(line) {
		return []string{line}
	}
	return nil
}

// AsLineMapper reports line-independence: true unless counting.
func (g *grepCmd) AsLineMapper() (LineMapper, bool) {
	if g.count {
		return nil, false
	}
	return g, true
}
