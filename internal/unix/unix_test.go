package unix

import (
	"context"
	"strings"
	"testing"
)

// run parses a spec and executes it on input, failing the test on error.
func run(t *testing.T, spec, input string) string {
	t.Helper()
	cmd, err := Parse(spec, DefaultEnv())
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	out, err := cmd.Run(input)
	if err != nil {
		t.Fatalf("Run(%q): %v", spec, err)
	}
	return out
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{`tr -cs A-Za-z '\n'`, []string{"tr", "-cs", "A-Za-z", `\n`}},
		{`sed s/\$/'0s'/`, []string{"sed", "s/$/0s/"}},
		{`awk "\$1 >= 1000"`, []string{"awk", "$1 >= 1000"}},
		{`cut -d ',' -f 3,1`, []string{"cut", "-d", ",", "-f", "3,1"}},
		{`grep '\(.\).*\1'`, []string{"grep", `\(.\).*\1`}},
		{`awk -v OFS="\t" "{print \$2,\$1}"`, []string{"awk", "-v", `OFS=\t`, "{print $2,$1}"}},
		{`sed "s;^;pg/;"`, []string{"sed", "s;^;pg/;"}},
	}
	for _, c := range cases {
		got, err := Tokenize(c.in)
		if err != nil {
			t.Errorf("Tokenize(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %q, want %q", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", `"open`, `trailing\`} {
		if _, err := Tokenize(bad); err == nil {
			t.Errorf("Tokenize(%q) should fail", bad)
		}
	}
}

func TestCatIdentity(t *testing.T) {
	in := "a\nb\n"
	if got := run(t, "cat", in); got != in {
		t.Errorf("cat = %q", got)
	}
}

func TestTrTranslate(t *testing.T) {
	if got := run(t, "tr A-Z a-z", "Hello World\n"); got != "hello world\n" {
		t.Errorf("tr A-Z a-z = %q", got)
	}
	// Classic bracket style translates brackets to brackets.
	if got := run(t, "tr '[a-z]' '[A-Z]'", "ab[c]\n"); got != "AB[C]\n" {
		t.Errorf("tr '[a-z]' '[A-Z]' = %q", got)
	}
	// SET2 padded with its last character.
	if got := run(t, "tr '[a-z]' 'P'", "ab1[\n"); got != "PP1P\n" {
		t.Errorf("tr '[a-z]' 'P' = %q (brackets are in SET1 too)", got)
	}
	if got := run(t, "tr '[:lower:]' '[:upper:]'", "aBc\n"); got != "ABC\n" {
		t.Errorf("tr classes = %q", got)
	}
}

func TestTrComplementSqueeze(t *testing.T) {
	// The §2 example: break text into one word per line.
	got := run(t, `tr -cs A-Za-z '\n'`, "hello, world!!\n")
	if got != "hello\nworld\n" {
		t.Errorf("tr -cs = %q", got)
	}
	// Squeezing crosses what would be a split boundary — the reason rerun
	// is the correct combiner for this command (§2).
	left, right := "a \n", " b\n"
	cmd, _ := Parse(`tr -cs A-Za-z '\n'`, nil)
	y1, _ := cmd.Run(left)
	y2, _ := cmd.Run(right)
	y12, _ := cmd.Run(left + right)
	if y1+y2 == y12 {
		t.Error("concat should be observably wrong for tr -cs")
	}
}

func TestTrDelete(t *testing.T) {
	if got := run(t, "tr -d ','", "a,b,c\n"); got != "abc\n" {
		t.Errorf("tr -d ',' = %q", got)
	}
	// tr -d '\n' deletes terminators: output is not a stream.
	if got := run(t, `tr -d '\n'`, "a\nb\n"); got != "ab" {
		t.Errorf("tr -d newline = %q", got)
	}
}

func TestTrRepeatNotation(t *testing.T) {
	// tr -sc 'AEIOU' '[\012*]': complement to newline, squeezed.
	got := run(t, `tr -sc 'AEIOU' '[\012*]'`, "bAnAnE\n")
	if got != "\nA\nA\nE\n" {
		t.Errorf("tr -sc vowels = %q", got)
	}
}

func TestTrSpaceToNewline(t *testing.T) {
	if got := run(t, `tr ' ' '\n'`, "a b\n"); got != "a\nb\n" {
		t.Errorf("tr ' ' newline = %q", got)
	}
	if got := run(t, `tr -s ' ' '\n'`, "a  b\n"); got != "a\nb\n" {
		t.Errorf("tr -s ' ' newline = %q", got)
	}
}

func TestSortPlain(t *testing.T) {
	if got := run(t, "sort", "b\na\nc\n"); got != "a\nb\nc\n" {
		t.Errorf("sort = %q", got)
	}
	// C collation: uppercase before lowercase.
	if got := run(t, "sort", "a\nB\n"); got != "B\na\n" {
		t.Errorf("sort C collation = %q", got)
	}
}

func TestSortFlags(t *testing.T) {
	if got := run(t, "sort -n", "10\n9\n-2\n"); got != "-2\n9\n10\n" {
		t.Errorf("sort -n = %q", got)
	}
	if got := run(t, "sort -rn", "1\n3\n2\n"); got != "3\n2\n1\n" {
		t.Errorf("sort -rn = %q", got)
	}
	if got := run(t, "sort -r", "a\nb\n"); got != "b\na\n" {
		t.Errorf("sort -r = %q", got)
	}
	if got := run(t, "sort -u", "b\na\nb\n"); got != "a\nb\n" {
		t.Errorf("sort -u = %q", got)
	}
	if got := run(t, "sort -f", "B\na\n"); got != "a\nB\n" {
		t.Errorf("sort -f = %q", got)
	}
	// -f ties broken by last-resort bytewise comparison.
	if got := run(t, "sort -f", "b\nB\n"); got != "B\nb\n" {
		t.Errorf("sort -f tie = %q", got)
	}
	if got := run(t, "sort -k1n", "10 x\n2 y\n"); got != "2 y\n10 x\n" {
		t.Errorf("sort -k1n = %q", got)
	}
	if got := run(t, "sort --parallel=1 -rn", "1\n2\n"); got != "2\n1\n" {
		t.Errorf("sort --parallel = %q", got)
	}
	// GNU -n: numeric ties broken bytewise ("	10" vs "10" style inputs).
	if got := run(t, "sort -n", "b\na\n"); got != "a\nb\n" {
		t.Errorf("sort -n non-numeric tie = %q", got)
	}
}

func TestSortMergeStreams(t *testing.T) {
	cmd, _ := Parse("sort -rn", nil)
	s := cmd.(*SortCmd)
	got := s.MergeStreams("9\n5\n1\n", "8\n2\n", "7\n")
	if got != "9\n8\n7\n5\n2\n1\n" {
		t.Errorf("MergeStreams -rn = %q", got)
	}
	// Stability: equal keys come from earlier streams first.
	cmd2, _ := Parse("sort -k1n", nil)
	s2 := cmd2.(*SortCmd)
	got = s2.MergeStreams("1 a\n", "1 b\n")
	if got != "1 a\n1 b\n" {
		t.Errorf("MergeStreams stability = %q", got)
	}
}

func TestSortMergeRequiresSorted(t *testing.T) {
	cmd, _ := Parse("sort -m", nil)
	if _, err := cmd.Run("b\na\n"); err == nil {
		t.Error("sort -m on unsorted input should error")
	}
	if out, err := cmd.Run("a\nb\n"); err != nil || out != "a\nb\n" {
		t.Errorf("sort -m on sorted input = %q, %v", out, err)
	}
}

func TestUniq(t *testing.T) {
	if got := run(t, "uniq", "a\na\nb\na\n"); got != "a\nb\na\n" {
		t.Errorf("uniq = %q", got)
	}
	got := run(t, "uniq -c", "a\na\nb\n")
	if got != "      2 a\n      1 b\n" {
		t.Errorf("uniq -c = %q (want GNU %%7d padding)", got)
	}
}

func TestGrep(t *testing.T) {
	in := "light house\ndark room\nlight light\n"
	if got := run(t, "grep light", in); got != "light house\nlight light\n" {
		t.Errorf("grep = %q", got)
	}
	if got := run(t, "grep -c light", in); got != "2\n" {
		t.Errorf("grep -c = %q", got)
	}
	if got := run(t, "grep -v light", in); got != "dark room\n" {
		t.Errorf("grep -v = %q", got)
	}
	if got := run(t, "grep -vc light", in); got != "1\n" {
		t.Errorf("grep -vc = %q", got)
	}
	if got := run(t, "grep -i LIGHT", in); got != "light house\nlight light\n" {
		t.Errorf("grep -i = %q", got)
	}
	if got := run(t, `grep 'light.*light'`, in); got != "light light\n" {
		t.Errorf("grep regex = %q", got)
	}
	if got := run(t, `grep -v '^0$'`, "0\n10\n0\n"); got != "10\n" {
		t.Errorf("grep -v anchor = %q", got)
	}
}

func TestWc(t *testing.T) {
	in := "one two\nthree\n"
	if got := run(t, "wc -l", in); got != "2\n" {
		t.Errorf("wc -l = %q", got)
	}
	if got := run(t, "wc -w", in); got != "3\n" {
		t.Errorf("wc -w = %q", got)
	}
	if got := run(t, "wc -c", in); got != "14\n" {
		t.Errorf("wc -c = %q", got)
	}
	if got := run(t, "wc", in); got != "      2      3     14\n" {
		t.Errorf("wc = %q", got)
	}
}

func TestCutChars(t *testing.T) {
	if got := run(t, "cut -c 1-4", "abcdefg\nxy\n"); got != "abcd\nxy\n" {
		t.Errorf("cut -c 1-4 = %q", got)
	}
	if got := run(t, "cut -c 3-3", "abcd\n"); got != "c\n" {
		t.Errorf("cut -c 3-3 = %q", got)
	}
}

func TestCutFields(t *testing.T) {
	in := "a,b,c\nnodilim\n"
	if got := run(t, "cut -d ',' -f 1", in); got != "a\nnodilim\n" {
		t.Errorf("cut -f 1 = %q", got)
	}
	// GNU emits fields in input order even when the list says 3,1.
	if got := run(t, "cut -d ',' -f 3,1", "a,b,c\n"); got != "a,c\n" {
		t.Errorf("cut -f 3,1 = %q", got)
	}
	if got := run(t, "cut -d ',' -f 1,2", "a,b,c\n"); got != "a,b\n" {
		t.Errorf("cut -f 1,2 = %q", got)
	}
	if got := run(t, "cut -f 2", "a\tb\tc\n"); got != "b\n" {
		t.Errorf("cut default tab = %q", got)
	}
	if got := run(t, `cut -d '"' -f 2`, `say "hi" now`+"\n"); got != "hi\n" {
		t.Errorf("cut quote delim = %q", got)
	}
}

func TestSedSubstitute(t *testing.T) {
	if got := run(t, `sed 's/T..:..:..//'`, "2020-05-01T10:30:00,v1\n"); got != "2020-05-01,v1\n" {
		t.Errorf("sed strip time = %q", got)
	}
	if got := run(t, `sed 's/T\(..\):..:../,\1/'`, "2020-05-01T10:30:00,v1\n"); got != "2020-05-01,10,v1\n" {
		t.Errorf("sed hour = %q", got)
	}
	if got := run(t, `sed s/\$/'0s'/`, "197\n198\n"); got != "1970s\n1980s\n" {
		t.Errorf("sed append = %q", got)
	}
	if got := run(t, `sed "s;^;pg/;"`, "book1\nbook2\n"); got != "pg/book1\npg/book2\n" {
		t.Errorf("sed prefix = %q", got)
	}
}

func TestSedAddress(t *testing.T) {
	in := "1\n2\n3\n4\n"
	if got := run(t, "sed 1d", in); got != "2\n3\n4\n" {
		t.Errorf("sed 1d = %q", got)
	}
	if got := run(t, "sed 2d", in); got != "1\n3\n4\n" {
		t.Errorf("sed 2d = %q", got)
	}
	if got := run(t, "sed 2q", in); got != "1\n2\n" {
		t.Errorf("sed 2q = %q", got)
	}
	if got := run(t, "sed 100q", in); got != in {
		t.Errorf("sed 100q short input = %q", got)
	}
}

func TestAwkPatterns(t *testing.T) {
	in := "500 a\n2000 b\n1000 c\n"
	if got := run(t, `awk "\$1 >= 1000"`, in); got != "2000 b\n1000 c\n" {
		t.Errorf("awk numeric filter = %q", got)
	}
	if got := run(t, `awk "\$1 >= 2 {print \$2}"`, "1 x\n3 y\n"); got != "y\n" {
		t.Errorf("awk pattern+action = %q", got)
	}
	if got := run(t, `awk "length >= 5"`, "abc\nabcdef\n"); got != "abcdef\n" {
		t.Errorf("awk length = %q", got)
	}
	if got := run(t, `awk 'length <= 3'`, "abc\nabcdef\n"); got != "abc\n" {
		t.Errorf("awk length <= = %q", got)
	}
}

func TestAwkActions(t *testing.T) {
	if got := run(t, `awk '{print NF}'`, "a b c\nd\n"); got != "3\n1\n" {
		t.Errorf("awk NF = %q", got)
	}
	if got := run(t, `awk '{print $2, $0}'`, "x y\n"); got != "y x y\n" {
		t.Errorf("awk print $2,$0 = %q", got)
	}
	if got := run(t, `awk -v OFS="\t" "{print \$2,\$1}"`, "a b\n"); got != "b\ta\n" {
		t.Errorf("awk OFS = %q", got)
	}
	// {$1=$1};1 squeezes whitespace.
	if got := run(t, `awk "{\$1=\$1};1"`, "  a   b  \n"); got != "a b\n" {
		t.Errorf("awk rejoin = %q", got)
	}
	// The Table 9 value-gated command still runs (synthesis will reject it).
	if got := run(t, `awk "\$1 == 2 {print \$2, \$3}"`, "2 a b\n3 c d\n"); got != "a b\n" {
		t.Errorf("awk gated = %q", got)
	}
}

func TestHeadTail(t *testing.T) {
	in := "1\n2\n3\n4\n5\n"
	if got := run(t, "head -n 2", in); got != "1\n2\n" {
		t.Errorf("head -n 2 = %q", got)
	}
	if got := run(t, "head -3", in); got != "1\n2\n3\n" {
		t.Errorf("head -3 = %q", got)
	}
	if got := run(t, "head", in); got != in {
		t.Errorf("head default on 5 lines = %q", got)
	}
	if got := run(t, "tail -n 1", in); got != "5\n" {
		t.Errorf("tail -n 1 = %q", got)
	}
	if got := run(t, "tail +2", in); got != "2\n3\n4\n5\n" {
		t.Errorf("tail +2 = %q", got)
	}
	if got := run(t, "tail +3", in); got != "3\n4\n5\n" {
		t.Errorf("tail +3 = %q", got)
	}
}

func TestXargs(t *testing.T) {
	env := DefaultEnv()
	env.FS.Register("x.txt", "one\ntwo\n")
	env.FS.Register("y.txt", "three\n")
	cmd, err := Parse("xargs cat", env)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cmd.Run("x.txt\ny.txt\n")
	if err != nil || out != "one\ntwo\nthree\n" {
		t.Errorf("xargs cat = %q, %v", out, err)
	}
	// Missing files are errors — the probe behaviour from §3.2.
	if _, err := cmd.Run("no-such-file\n"); err == nil {
		t.Error("xargs cat on missing file should error")
	}

	wcCmd, _ := Parse("xargs -L 1 wc -l", env)
	out, err = wcCmd.Run("x.txt\ny.txt\n")
	if err != nil || out != "2 x.txt\n1 y.txt\n" {
		t.Errorf("xargs wc -l = %q, %v", out, err)
	}

	fileCmd, _ := Parse("xargs file", env)
	out, err = fileCmd.Run("x.txt\n")
	if err != nil || !strings.Contains(out, "x.txt: ASCII text") {
		t.Errorf("xargs file = %q, %v", out, err)
	}
}

func TestComm(t *testing.T) {
	env := DefaultEnv()
	env.FS.Register("dict", "apple\nbanana\ncherry\n")
	cmd, err := Parse("comm -23 - dict", env)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cmd.Run("apple\nzebra\n")
	if err != nil || out != "zebra\n" {
		t.Errorf("comm -23 = %q, %v", out, err)
	}
	// Unsorted stdin errors — the probe behaviour from §3.2.
	if _, err := cmd.Run("zebra\napple\n"); err == nil {
		t.Error("comm on unsorted input should error")
	}
}

func TestFmtRevColIconv(t *testing.T) {
	if got := run(t, "fmt -w1", "a bb ccc\n"); got != "a\nbb\nccc\n" {
		t.Errorf("fmt -w1 = %q", got)
	}
	if got := run(t, "rev", "abc\nxy\n"); got != "cba\nyx\n" {
		t.Errorf("rev = %q", got)
	}
	if got := run(t, "col -bx", "a\tb\n"); got != "a       b\n" {
		t.Errorf("col -bx tabs = %q", got)
	}
	if got := run(t, "col -b", "ab\bc\n"); got != "ac\n" {
		t.Errorf("col -b backspace = %q", got)
	}
	if got := run(t, "iconv -f utf-8 -t ascii//translit", "café\n"); got != "cafe\n" {
		t.Errorf("iconv = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "nosuchcmd x", "tr", "sort -z", "grep", "cut -c 1 -f 2",
		"sed", "sed y/a/b/", "awk", "head -n x", "uniq -d",
	} {
		if _, err := Parse(bad, nil); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestEnvAssignPrefix(t *testing.T) {
	env := DefaultEnv()
	env.FS.Register("d", "a\n")
	cmd, err := Parse("LC_COLLATE=C comm -23 - d", env)
	if err != nil {
		t.Fatalf("env prefix: %v", err)
	}
	out, err := cmd.Run("b\n")
	if err != nil || out != "b\n" {
		t.Errorf("comm with env prefix = %q, %v", out, err)
	}
}

func TestLineMapperAgreesWithRun(t *testing.T) {
	// For every LineMapper command, runLineMapper must agree with Run.
	specs := []string{
		"grep light", "cut -c 1-4", `sed 's/a/b/'`, "rev",
		`awk '{print NF}'`, "fmt -w1", "tr A-Z a-z",
	}
	in := "light a\nDARK bb\nlight light ccc\n"
	for _, spec := range specs {
		cmd, err := Parse(spec, nil)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		lm, ok := AsLineMapper(cmd)
		if !ok {
			t.Errorf("%q should be a LineMapper", spec)
			continue
		}
		want, _ := cmd.Run(in)
		if got := runLineMapper(lm, in); got != want {
			t.Errorf("%q: MapLine path %q != Run %q", spec, got, want)
		}
	}
}

func TestStreamLineMapper(t *testing.T) {
	cmd, _ := Parse("grep light", nil)
	lm, _ := AsLineMapper(cmd)
	var out strings.Builder
	in := strings.NewReader("light\ndark\nlight x\n")
	if err := streamLineMapper(context.Background(), lm, in, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "light\nlight x\n" {
		t.Errorf("streamLineMapper = %q", out.String())
	}
	// Exec reaches the same path through the primary contract.
	out.Reset()
	err := Exec(context.Background(), cmd, strings.NewReader("dark\nlight y\n"), &out)
	if err != nil || out.String() != "light y\n" {
		t.Errorf("Exec = %q, %v", out.String(), err)
	}
}

func TestFSDeterminism(t *testing.T) {
	a, b := NewFS(), NewFS()
	an, bn := a.Names(), b.Names()
	if len(an) == 0 || len(an) != len(bn) {
		t.Fatalf("FS name counts differ: %d vs %d", len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("FS names differ at %d: %q vs %q", i, an[i], bn[i])
		}
		ca, _ := a.Read(an[i])
		cb, _ := b.Read(bn[i])
		if ca != cb {
			t.Fatalf("FS content differs for %q", an[i])
		}
	}
	if _, err := a.Read("dict.sorted"); err != nil {
		t.Error("default FS must include dict.sorted")
	}
}
