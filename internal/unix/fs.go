package unix

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"kumquat/internal/textio"
)

// fsEntry is one registered file: its contents as a string view (a
// zero-copy alias of the backing bytes for mapped and byte-registered
// files) plus the lazily computed line index shared by every consumer.
type fsEntry struct {
	data string
	// mapping is non-nil when data aliases an OS memory mapping; the FS
	// keeps it alive until Close so no view can dangle.
	mapping *textio.Mapping
	// once guards seq: the line index is computed at most once per entry
	// and then shared k-ways across stages, modes and requests.
	once sync.Once
	seq  textio.LineSeq
}

// FS is the simulated file system backing xargs, comm and file. The paper's
// experiments read real files; here file names map to registered in-memory
// contents. A command that references an unregistered file fails with an
// error, which reproduces the probe behaviour §3.2 relies on: xargs errors
// on word-list inputs (the words are not files) but succeeds on lists of
// legal file names (drawn from this FS).
//
// Contents are byte-backed: RegisterBytes and RegisterMapping alias their
// input without copying (mmap ingest is pointer arithmetic end to end),
// and every entry carries a line index computed once on first use (see
// ReadSeq). Mapped entries stay alive — even after Remove or
// re-registration — until Close, so zero-copy views handed out earlier
// can never dangle.
type FS struct {
	mu     sync.RWMutex
	files  map[string]*fsEntry
	corpus []string // names offered as the legal-file-name dictionary
	// retired holds mappings displaced by Remove/re-registration; they
	// are closed with the FS, not before (views may still circulate).
	retired []*textio.Mapping
}

// NewFS returns a file system pre-seeded with a deterministic corpus:
// 48 small text files (f000.txt .. f047.txt), a handful of script files,
// and a sorted dictionary at "dict.sorted" (used by comm-based spell
// checking). Benchmarks register additional inputs on top.
func NewFS() *FS {
	fs := &FS{files: make(map[string]*fsEntry)}
	rng := rand.New(rand.NewSource(0x5eed))
	for i := 0; i < 48; i++ {
		name := fmt.Sprintf("f%03d.txt", i)
		fs.files[name] = &fsEntry{data: syntheticText(rng, 3+rng.Intn(6))}
		fs.corpus = append(fs.corpus, name)
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("s%02d.sh", i)
		fs.files[name] = &fsEntry{data: syntheticScript(rng, 2+rng.Intn(12))}
		fs.corpus = append(fs.corpus, name)
	}
	fs.files["dict.sorted"] = &fsEntry{data: defaultDict()}
	sort.Strings(fs.corpus)
	return fs
}

// DictionaryNames returns the corpus file names used as the synthesizer's
// legal-file-name dictionary (§3.2). Support files such as dict.sorted are
// readable but excluded: the dictionary models a directory listing of data
// files, as in the paper's environment.
func (fs *FS) DictionaryNames() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return append([]string(nil), fs.corpus...)
}

// AddToDictionary registers a file and includes it in the legal-file-name
// dictionary (used by benchmark input registration).
func (fs *FS) AddToDictionary(name, content string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.put(name, &fsEntry{data: content})
	fs.corpus = append(fs.corpus, name)
	sort.Strings(fs.corpus)
}

// Register adds or replaces a file.
func (fs *FS) Register(name, content string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.put(name, &fsEntry{data: content})
}

// RegisterBytes adds or replaces a file whose contents alias b without
// copying. The caller must not mutate b afterwards — the entry's string
// face and line index are views of the same bytes.
func (fs *FS) RegisterBytes(name string, b []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.put(name, &fsEntry{data: textio.View(b)})
}

// RegisterMapping adds or replaces a file backed by a memory mapping.
// The FS takes ownership: the mapping stays alive — surviving Remove and
// re-registration — until Close, so zero-copy views cannot dangle.
func (fs *FS) RegisterMapping(name string, m *textio.Mapping) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.put(name, &fsEntry{data: m.View(), mapping: m})
}

// put installs an entry, retiring any displaced mapping.
func (fs *FS) put(name string, e *fsEntry) {
	if old, ok := fs.files[name]; ok && old.mapping != nil {
		fs.retired = append(fs.retired, old.mapping)
	}
	fs.files[name] = e
}

// Remove deletes a file if present (rm is tolerant, like rm -f).
func (fs *FS) Remove(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if old, ok := fs.files[name]; ok && old.mapping != nil {
		fs.retired = append(fs.retired, old.mapping)
	}
	delete(fs.files, name)
}

// Close releases every mapping the FS ever owned (live and retired).
// Call only when no view of any mapped file — string, []byte, or
// LineSeq — can be used again; typically at process or test teardown.
func (fs *FS) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var first error
	closeOne := func(m *textio.Mapping) {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, e := range fs.files {
		if e.mapping != nil {
			closeOne(e.mapping)
		}
	}
	for _, m := range fs.retired {
		closeOne(m)
	}
	fs.retired = nil
	return first
}

// Read returns the content of a registered file.
func (fs *FS) Read(name string) (string, error) {
	e, err := fs.lookup(name)
	if err != nil {
		return "", err
	}
	return e.data, nil
}

// ReadSeq returns the line index of a registered file, computing it on
// first use and sharing the one index across every later caller — the
// ingest-once contract of the data plane: k workers chunking the same
// corpus, repeated requests against a warm daemon, and sortedness checks
// all walk the same []int.
func (fs *FS) ReadSeq(name string) (textio.LineSeq, error) {
	e, err := fs.lookup(name)
	if err != nil {
		return textio.LineSeq{}, err
	}
	e.once.Do(func() { e.seq = textio.ScanLines(e.data) })
	return e.seq, nil
}

func (fs *FS) lookup(name string) (*fsEntry, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	e, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%s: No such file or directory", name)
	}
	return e, nil
}

// Names returns all registered file names in sorted order. The synthesizer
// uses this as the legal-file-name dictionary for commands whose probes
// demand file names (§3.2).
func (fs *FS) Names() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NamesUnder returns registered names with the given prefix, sorted.
func (fs *FS) NamesUnder(prefix string) []string {
	var out []string
	for _, n := range fs.Names() {
		if strings.HasPrefix(n, prefix) {
			out = append(out, n)
		}
	}
	return out
}

var fillerWords = []string{
	"the", "and", "of", "to", "light", "sea", "ship", "night", "wind",
	"stone", "river", "green", "dark", "song", "word", "time", "land",
	"king", "gold", "dream",
}

// linePool is the shared set of lines synthetic files draw from. Sharing a
// small pool makes duplicate lines across files common, so xargs-style
// commands produce observations with equal boundary lines — the
// counterexamples that eliminate incorrect stitch candidates during
// synthesis. Every line contains a space so that the space-keyed offset
// combiners stay within their legality domain, as in Table 10.
var linePool = func() []string {
	rng := rand.New(rand.NewSource(0x11e5))
	pool := make([]string, 12)
	for i := range pool {
		n := 3 + rng.Intn(5)
		words := make([]string, n)
		for j := range words {
			words[j] = fillerWords[rng.Intn(len(fillerWords))]
		}
		pool[i] = strings.Join(words, " ")
	}
	return pool
}()

func syntheticText(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		b.WriteString(linePool[rng.Intn(len(linePool))])
		b.WriteByte('\n')
	}
	return b.String()
}

func syntheticScript(rng *rand.Rand, lines int) string {
	var b strings.Builder
	b.WriteString("#! /bin/sh\n")
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&b, "echo step%d\n", rng.Intn(100))
	}
	return b.String()
}

func defaultDict() string {
	words := append([]string(nil), fillerWords...)
	words = append(words, "a", "i", "cat", "dog", "house", "tree", "water",
		"fire", "earth", "morning", "evening", "letter", "paper", "road")
	sort.Strings(words)
	return strings.Join(words, "\n") + "\n"
}
