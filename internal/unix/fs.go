package unix

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// FS is the simulated file system backing xargs, comm and file. The paper's
// experiments read real files; here file names map to registered in-memory
// contents. A command that references an unregistered file fails with an
// error, which reproduces the probe behaviour §3.2 relies on: xargs errors
// on word-list inputs (the words are not files) but succeeds on lists of
// legal file names (drawn from this FS).
type FS struct {
	mu     sync.RWMutex
	files  map[string]string
	corpus []string // names offered as the legal-file-name dictionary
}

// NewFS returns a file system pre-seeded with a deterministic corpus:
// 48 small text files (f000.txt .. f047.txt), a handful of script files,
// and a sorted dictionary at "dict.sorted" (used by comm-based spell
// checking). Benchmarks register additional inputs on top.
func NewFS() *FS {
	fs := &FS{files: make(map[string]string)}
	rng := rand.New(rand.NewSource(0x5eed))
	for i := 0; i < 48; i++ {
		name := fmt.Sprintf("f%03d.txt", i)
		fs.files[name] = syntheticText(rng, 3+rng.Intn(6))
		fs.corpus = append(fs.corpus, name)
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("s%02d.sh", i)
		fs.files[name] = syntheticScript(rng, 2+rng.Intn(12))
		fs.corpus = append(fs.corpus, name)
	}
	fs.files["dict.sorted"] = defaultDict()
	sort.Strings(fs.corpus)
	return fs
}

// DictionaryNames returns the corpus file names used as the synthesizer's
// legal-file-name dictionary (§3.2). Support files such as dict.sorted are
// readable but excluded: the dictionary models a directory listing of data
// files, as in the paper's environment.
func (fs *FS) DictionaryNames() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return append([]string(nil), fs.corpus...)
}

// AddToDictionary registers a file and includes it in the legal-file-name
// dictionary (used by benchmark input registration).
func (fs *FS) AddToDictionary(name, content string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = content
	fs.corpus = append(fs.corpus, name)
	sort.Strings(fs.corpus)
}

// Register adds or replaces a file.
func (fs *FS) Register(name, content string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = content
}

// Remove deletes a file if present (rm is tolerant, like rm -f).
func (fs *FS) Remove(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, name)
}

// Read returns the content of a registered file.
func (fs *FS) Read(name string) (string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	c, ok := fs.files[name]
	if !ok {
		return "", fmt.Errorf("%s: No such file or directory", name)
	}
	return c, nil
}

// Names returns all registered file names in sorted order. The synthesizer
// uses this as the legal-file-name dictionary for commands whose probes
// demand file names (§3.2).
func (fs *FS) Names() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NamesUnder returns registered names with the given prefix, sorted.
func (fs *FS) NamesUnder(prefix string) []string {
	var out []string
	for _, n := range fs.Names() {
		if strings.HasPrefix(n, prefix) {
			out = append(out, n)
		}
	}
	return out
}

var fillerWords = []string{
	"the", "and", "of", "to", "light", "sea", "ship", "night", "wind",
	"stone", "river", "green", "dark", "song", "word", "time", "land",
	"king", "gold", "dream",
}

// linePool is the shared set of lines synthetic files draw from. Sharing a
// small pool makes duplicate lines across files common, so xargs-style
// commands produce observations with equal boundary lines — the
// counterexamples that eliminate incorrect stitch candidates during
// synthesis. Every line contains a space so that the space-keyed offset
// combiners stay within their legality domain, as in Table 10.
var linePool = func() []string {
	rng := rand.New(rand.NewSource(0x11e5))
	pool := make([]string, 12)
	for i := range pool {
		n := 3 + rng.Intn(5)
		words := make([]string, n)
		for j := range words {
			words[j] = fillerWords[rng.Intn(len(fillerWords))]
		}
		pool[i] = strings.Join(words, " ")
	}
	return pool
}()

func syntheticText(rng *rand.Rand, lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		b.WriteString(linePool[rng.Intn(len(linePool))])
		b.WriteByte('\n')
	}
	return b.String()
}

func syntheticScript(rng *rand.Rand, lines int) string {
	var b strings.Builder
	b.WriteString("#! /bin/sh\n")
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&b, "echo step%d\n", rng.Intn(100))
	}
	return b.String()
}

func defaultDict() string {
	words := append([]string(nil), fillerWords...)
	words = append(words, "a", "i", "cat", "dog", "house", "tree", "water",
		"fire", "earth", "morning", "evening", "letter", "paper", "road")
	sort.Strings(words)
	return strings.Join(words, "\n") + "\n"
}
