package unix

import (
	"strings"
	"testing"
)

// TestEmitLineAgreesWithMapLine: for every LineEmitter command, the
// zero-allocation EmitLine path must produce exactly MapLine's lines.
// Emitted strings are transient views, so the comparison clones them at
// emit time, as the contract requires.
func TestEmitLineAgreesWithMapLine(t *testing.T) {
	specs := []string{
		"cat", "rev", "grep light", "grep -v light", "grep 'l.*t'",
		`sed 's/a/X/'`, `sed 's/a/X/g'`, `sed 's/l\(.\)/[\1]/'`,
		"cut -c 1-4", "cut -c 1,3-5,9-", "cut -d ' ' -f 2",
		"cut -d ' ' -f 1,3", "tr a-z A-Z", "tr -d aeiou", "tr ' ' '\\n'",
		"tr -c 'a-z \\n' x",
	}
	lines := []string{
		"light a light", "DARK bb", "", "x", "a,b,c d", "the quick fox",
		"no-delims-here", "  leading and trailing  ", "aaaa",
	}
	for _, spec := range specs {
		cmd, err := Parse(spec, nil)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		le, ok := AsLineEmitter(cmd)
		if !ok {
			t.Errorf("%q should be a LineEmitter", spec)
			continue
		}
		var scratch []byte
		for _, line := range lines {
			want := le.MapLine(line)
			var got []string
			le.EmitLine(line, &scratch, func(out string) {
				got = append(got, strings.Clone(out))
			})
			if len(got) != len(want) {
				t.Errorf("%q on %q: EmitLine %q != MapLine %q", spec, line, got, want)
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%q on %q: EmitLine[%d] = %q, MapLine %q", spec, line, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEmitterGating: flag combinations that break line-independence must
// not surface as emitters, exactly as they do not surface as mappers.
func TestEmitterGating(t *testing.T) {
	for _, spec := range []string{"tr -s ' '", "grep -c light", "sed 5q", "wc -l", "sort"} {
		cmd, err := Parse(spec, nil)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if _, ok := AsLineEmitter(cmd); ok {
			t.Errorf("%q must not be a LineEmitter", spec)
		}
	}
}

// TestEmitLineScratchReuse: the same scratch carried across calls must
// not corrupt earlier output when the receiver copies at emit time, and
// unchanged lines must be emitted as the input string itself (no copy).
func TestEmitLineScratchReuse(t *testing.T) {
	cmd, _ := Parse("tr a-z A-Z", nil)
	le, _ := AsLineEmitter(cmd)
	var scratch []byte
	var got []string
	for _, line := range []string{"abc", "XYZ", "mixedCASE"} {
		le.EmitLine(line, &scratch, func(out string) {
			got = append(got, strings.Clone(out))
		})
	}
	if want := []string{"ABC", "XYZ", "MIXEDCASE"}; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("scratch reuse produced %q, want %q", got, want)
	}
	in := "ALREADY UPPER"
	le.EmitLine(in, &scratch, func(out string) {
		if out != in {
			t.Errorf("unchanged line emitted as %q", out)
		}
	})
}
