package unix

import (
	"fmt"
	"strconv"
	"strings"

	"kumquat/internal/regexlite"
	"kumquat/internal/textio"
)

// sedCmd implements the sed scripts the benchmarks use:
//
//	s<D>PAT<D>REPL<D>[g]   substitution with any delimiter (s/…/…/, s;…;…;)
//	Nd                     delete line N
//	Nq                     quit after printing N lines (sed 100q, sed 5q)
//
// Substitution patterns are BREs with groups; replacements support & and \N.
type sedCmd struct {
	spec string

	// substitution
	sub     bool
	re      *regexlite.Regexp
	pattern string
	repl    string
	global  bool

	// address command
	addr int
	op   byte // 'd' or 'q', 0 when substitution
}

func newSed(spec string, args []string, _ *Env) (Command, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("sed: need exactly one script, got %d args", len(args))
	}
	script := args[0]
	s := &sedCmd{spec: spec}
	if strings.HasPrefix(script, "s") && len(script) > 2 {
		d := script[1]
		parts := splitUnescaped(script[2:], d)
		if len(parts) < 2 {
			return nil, fmt.Errorf("sed: bad substitution %q", script)
		}
		pat, repl := parts[0], parts[1]
		flags := ""
		if len(parts) >= 3 {
			flags = parts[2]
		}
		re, err := regexlite.Compile(pat)
		if err != nil {
			return nil, err
		}
		s.sub = true
		s.re = re
		s.pattern = pat
		s.repl = repl
		s.global = strings.Contains(flags, "g")
		return s, nil
	}
	// Address command: Nd or Nq.
	if len(script) >= 2 {
		op := script[len(script)-1]
		if op == 'd' || op == 'q' {
			n, err := strconv.Atoi(script[:len(script)-1])
			if err == nil && n >= 1 {
				s.addr = n
				s.op = op
				return s, nil
			}
		}
	}
	return nil, fmt.Errorf("sed: unsupported script %q", script)
}

// splitUnescaped splits s on d, keeping backslash-escaped delimiters inside
// the parts (an escaped delimiter stays escaped for the regex parser).
func splitUnescaped(s string, d byte) []string {
	var parts []string
	var cur []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			cur = append(cur, c, s[i+1])
			i++
			continue
		}
		if c == d {
			parts = append(parts, string(cur))
			cur = cur[:0]
			continue
		}
		cur = append(cur, c)
	}
	parts = append(parts, string(cur))
	return parts
}

func (s *sedCmd) Spec() string { return s.spec }

func (s *sedCmd) Run(input string) (string, error) {
	if s.sub {
		return runLineMapper(s, input), nil
	}
	lines := textio.Lines(input)
	var out []string
	switch s.op {
	case 'd':
		for i, l := range lines {
			if i+1 != s.addr {
				out = append(out, l)
			}
		}
	case 'q':
		out = lines
		if len(out) > s.addr {
			out = out[:s.addr]
		}
	}
	return textio.JoinLines(out), nil
}

// MapLine implements LineMapper for substitutions, which are per-line.
func (s *sedCmd) MapLine(line string) []string {
	if s.global {
		return []string{s.re.ReplaceAll(line, s.repl)}
	}
	return []string{s.re.ReplaceFirst(line, s.repl)}
}

// AsLineMapper reports line-independence (substitutions only; Nd and Nq
// depend on absolute line position).
func (s *sedCmd) AsLineMapper() (LineMapper, bool) {
	if s.sub {
		return s, true
	}
	return nil, false
}

// Literals exposes numeric literals in address scripts (sed 100q → 100),
// which preprocessing uses to seed input shapes near the threshold (§3.2).
func (s *sedCmd) Literals() []int {
	if s.op != 0 {
		return []int{s.addr}
	}
	return nil
}

// Pattern returns the substitution's BRE source ("" for address scripts);
// preprocessing mines it for dictionary strings that actually match.
func (s *sedCmd) Pattern() string { return s.pattern }
