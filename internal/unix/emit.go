package unix

import "kumquat/internal/textio"

// EmitFunc receives one output line (without terminator). The string may
// be a transient view into an emitter-owned scratch buffer: it is valid
// only until the emitter's next EmitLine call with the same scratch, so
// receivers must finish with it (copy it out or complete all processing)
// before feeding the emitter another line.
type EmitFunc func(line string)

// LineEmitter is the allocation-free fast path over LineMapper: EmitLine
// maps one input line and hands each output line to emit, avoiding the
// per-line []string and result-string allocations MapLine pays. Output
// lines that differ from the input are built in the caller-owned scratch
// buffer and emitted as transient views (see EmitFunc); lines that pass
// through unchanged are emitted as-is. Callers running chunks in
// parallel must give each goroutine its own scratch.
type LineEmitter interface {
	LineMapper
	// EmitLine maps one input line (without terminator) to zero or more
	// output lines, passing each to emit in order. scratch is grown as
	// needed and retained across calls for reuse.
	EmitLine(line string, scratch *[]byte, emit EmitFunc)
}

// AsLineEmitter probes a command's zero-allocation line-mapping
// capability. The gate is AsLineMapper's: a command whose flags make it
// line-dependent (tr -s, grep -c, sed Nq) is not an emitter either.
func AsLineEmitter(c Command) (LineEmitter, bool) {
	lm, ok := AsLineMapper(c)
	if !ok {
		return nil, false
	}
	le, ok := lm.(LineEmitter)
	return le, ok
}

// emitView hands buf to emit as a transient string view after storing it
// back through scratch so the grown capacity is reused.
func emitView(buf []byte, scratch *[]byte, emit EmitFunc) {
	*scratch = buf
	emit(textio.View(buf))
}

// EmitLine implements LineEmitter for pure-translate tr: lines with no
// affected byte pass through untouched; others are rewritten into
// scratch in one pass. A byte translated to '\n' splits the line, as in
// MapLine.
func (t *trCmd) EmitLine(line string, scratch *[]byte, emit EmitFunc) {
	changed := false
	for i := 0; i < len(line); i++ {
		if t.affected[line[i]] {
			changed = true
			break
		}
	}
	if !changed {
		emit(line)
		return
	}
	buf := (*scratch)[:0]
	split := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if t.deleteSet[c] {
			continue
		}
		if t.translated[c] {
			c = t.translate[c]
			if c == '\n' {
				split = true
			}
		}
		buf = append(buf, c)
	}
	*scratch = buf
	if !split {
		emit(textio.View(buf))
		return
	}
	start := 0
	for i := 0; i <= len(buf); i++ {
		if i == len(buf) || buf[i] == '\n' {
			emit(textio.View(buf[start:i]))
			start = i + 1
		}
	}
}

// EmitLine implements LineEmitter for filtering grep: a kept line is
// emitted as-is, a dropped one produces nothing. No allocation either
// way.
func (g *grepCmd) EmitLine(line string, _ *[]byte, emit EmitFunc) {
	if g.keep(line) {
		emit(line)
	}
}

// EmitLine implements LineEmitter for sed substitutions. Lines without a
// match pass through unchanged (ReplaceFirst already returns its input
// then; s///g gets an explicit match probe first, trading a second scan
// of matching lines for an allocation-free pass over the rest).
func (s *sedCmd) EmitLine(line string, _ *[]byte, emit EmitFunc) {
	if s.global {
		if !s.re.MatchString(line) {
			emit(line)
			return
		}
		emit(s.re.ReplaceAll(line, s.repl))
		return
	}
	emit(s.re.ReplaceFirst(line, s.repl))
}

// EmitLine implements LineEmitter for cut. A single contiguous -c range
// is a substring view of the input; everything else is assembled in
// scratch. Field mode passes delimiter-free lines through whole, as Run
// does.
func (c *cutCmd) EmitLine(line string, scratch *[]byte, emit EmitFunc) {
	if c.chars {
		if len(c.ranges) == 1 {
			lo, hi := c.ranges[0].lo-1, c.ranges[0].hi
			if lo >= len(line) {
				emit("")
				return
			}
			if hi > len(line) {
				hi = len(line)
			}
			emit(line[lo:hi])
			return
		}
		buf := (*scratch)[:0]
		for i := 0; i < len(line); i++ {
			if c.selected(i + 1) {
				buf = append(buf, line[i])
			}
		}
		emitView(buf, scratch, emit)
		return
	}
	if !hasByte(line, c.delim) {
		emit(line)
		return
	}
	buf := (*scratch)[:0]
	fs := textio.FieldsByte(line, c.delim)
	field, wrote := 0, false
	for {
		f, ok := fs.Next()
		if !ok {
			break
		}
		field++
		if !c.selected(field) {
			continue
		}
		if wrote {
			buf = append(buf, c.delim)
		}
		buf = append(buf, f...)
		wrote = true
	}
	emitView(buf, scratch, emit)
}

func hasByte(s string, b byte) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return true
		}
	}
	return false
}

// EmitLine implements LineEmitter for stdin cat: the identity map.
func (c *catCmd) EmitLine(line string, _ *[]byte, emit EmitFunc) {
	emit(line)
}

// EmitLine implements LineEmitter for rev: the reversed line is built in
// scratch.
func (r *revCmd) EmitLine(line string, scratch *[]byte, emit EmitFunc) {
	buf := append((*scratch)[:0], line...)
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	emitView(buf, scratch, emit)
}
