// Package unix implements the Unix command substrate KumQuat parallelizes:
// pure-Go, deterministic reimplementations of every command that appears in
// the paper's 70 benchmark scripts, exposed through the same black-box
// interface the synthesizer observes (input stream in, output stream out).
//
// The paper invokes real GNU binaries through the shell; this package
// substitutes in-process implementations with matching observable behaviour
// for the exact flag combinations the benchmarks use (see DESIGN.md,
// "Substitutions"). Because KumQuat treats commands as black boxes —
// Definition 3.2, f : Stream → Stream — the substitution is invisible to
// the synthesis algorithm.
package unix

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"

	"kumquat/internal/textio"
)

// Command is a deterministic computation over an input stream
// (Definition 3.2). Run returns the output for the full input; commands that
// would print a diagnostic and fail in a real shell (comm on unsorted input,
// xargs on missing files) return a non-nil error instead.
type Command interface {
	// Spec returns the original command text, e.g. "tr -cs A-Za-z '\\n'".
	Spec() string
	// Run executes the command on the whole input stream.
	Run(input string) (string, error)
}

// LineMapper is implemented by commands that map each input line to zero or
// more output lines independently — the "Mapping Input Lines to Disjoint
// Output Lines" class of §3.4 (tr without -s, grep without -c, cut, sed s///,
// awk filters, rev, ...). The pipelined executor streams these commands
// line-by-line; everything else buffers its whole input.
type LineMapper interface {
	Command
	// MapLine maps one input line (without terminator) to zero or more
	// output lines (without terminators).
	MapLine(line string) []string
}

// Streamer is the primary execution contract for incremental commands:
// input is consumed from r and output produced on w without materializing
// either stream, and ctx cancels the computation between lines/chunks.
// LineMappers get a Streamer implementation for free via AsStreamer; only
// genuinely whole-stream commands (sort, wc, uniq -c, ...) fall back to
// the buffering Command.Run path inside Exec.
type Streamer interface {
	Command
	// StreamTo consumes input from r and writes output to w incrementally,
	// returning ctx.Err() promptly when ctx is cancelled mid-stream.
	StreamTo(ctx context.Context, r io.Reader, w io.Writer) error
}

// AsLineMapper probes a command's line-streaming capability, honouring the
// flag-dependent AsLineMapper escape hatch (tr -s and sed Nq are not
// line-independent even though their types implement MapLine).
func AsLineMapper(c Command) (LineMapper, bool) {
	type asLM interface {
		AsLineMapper() (LineMapper, bool)
	}
	if a, ok := c.(asLM); ok {
		return a.AsLineMapper()
	}
	if lm, ok := c.(LineMapper); ok {
		return lm, true
	}
	return nil, false
}

// AsStreamer adapts a command to the Streamer contract: commands that
// implement it directly are returned as-is, line mappers are wrapped, and
// whole-stream commands report false.
func AsStreamer(c Command) (Streamer, bool) {
	if s, ok := c.(Streamer); ok {
		return s, true
	}
	if lm, ok := AsLineMapper(c); ok {
		return lineMapperStreamer{lm}, true
	}
	return nil, false
}

// CanStream reports whether Exec would run the command incrementally.
func CanStream(c Command) bool {
	_, ok := AsStreamer(c)
	return ok
}

// Exec is the execution entry point over readers and writers: streaming
// commands process r incrementally; whole-stream commands buffer r, run,
// and write their full output to w. ctx cancels either path — between
// lines for streamed commands, between the read/run/write phases for
// buffered ones (a Read that keeps returning data observes cancellation
// on its next call via the context-checking wrapper).
func Exec(ctx context.Context, cmd Command, r io.Reader, w io.Writer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s, ok := AsStreamer(cmd); ok {
		return s.StreamTo(ctx, ContextReader(ctx, r), w)
	}
	buf, err := io.ReadAll(ContextReader(ctx, r))
	if err != nil {
		return err
	}
	out, err := cmd.Run(textio.View(buf))
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	_, err = io.WriteString(w, out)
	return err
}

// lineMapperStreamer adapts a LineMapper to the Streamer contract.
type lineMapperStreamer struct {
	LineMapper
}

func (s lineMapperStreamer) StreamTo(ctx context.Context, r io.Reader, w io.Writer) error {
	return streamLineMapper(ctx, s.LineMapper, r, w)
}

// ContextReader wraps r so that every Read first observes ctx: once ctx is
// done, Read returns ctx.Err(). A Read already blocked inside r is not
// interrupted — callers unblock those by closing the underlying pipe.
func ContextReader(ctx context.Context, r io.Reader) io.Reader {
	if r == nil {
		r = strings.NewReader("")
	}
	return &ctxReader{ctx: ctx, r: r}
}

type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (cr *ctxReader) Read(p []byte) (int, error) {
	if err := cr.ctx.Err(); err != nil {
		return 0, err
	}
	return cr.r.Read(p)
}

// runLineMapper evaluates a LineMapper over a whole input stream.
func runLineMapper(lm LineMapper, input string) string {
	if input == "" {
		return ""
	}
	var b strings.Builder
	b.Grow(len(input))
	rest := input
	for rest != "" {
		var line string
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			line, rest = rest, ""
		}
		for _, out := range lm.MapLine(line) {
			b.WriteString(out)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// streamLineMapper drives a LineMapper incrementally from r to w, checking
// ctx every few lines so a cancelled execution aborts promptly without
// paying a per-line context poll on the hot path. Commands with a
// LineEmitter fast path run allocation-free per line: the reader's line
// view feeds EmitLine, whose output views are copied straight into the
// pooled chunk buffer — no per-line string, field slice, or result slice.
func streamLineMapper(ctx context.Context, lm LineMapper, r io.Reader, w io.Writer) error {
	br := newLineReader(r)
	bw := newChunkWriter(w)
	defer bw.release()
	le, fast := lm.(LineEmitter)
	var scratch []byte
	var emitErr error
	emit := func(out string) {
		if emitErr == nil {
			emitErr = bw.writeLine(out)
		}
	}
	for n := 0; ; n++ {
		if n&63 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		line, err := br.readLine()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if fast {
			le.EmitLine(line, &scratch, emit)
			if emitErr != nil {
				return emitErr
			}
			continue
		}
		for _, out := range lm.MapLine(line) {
			if err := bw.writeLine(out); err != nil {
				return err
			}
		}
	}
	return bw.flush()
}

// lineReader reads newline-terminated lines without size limits.
type lineReader struct {
	r   io.Reader
	buf []byte
	// pending holds read-but-unconsumed bytes; pending[:scanned] is known
	// to contain no newline, so each refill only scans the new tail.
	pending []byte
	scanned int
	eof     bool
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{r: r, buf: make([]byte, 64*1024)}
}

// readLine returns the next line without its terminator; io.EOF when the
// input is exhausted. A final unterminated line is returned before EOF.
//
// The returned string is a transient zero-copy view into the reader's
// buffer: it is valid until the next readLine call, by when the caller
// must have finished with it (the stream drivers copy each mapped line
// into the output buffer before reading the next). The view stays valid
// across refills because the reader only ever appends at offsets past
// the consumed region — it never rewrites bytes a returned line spans.
func (lr *lineReader) readLine() (string, error) {
	for {
		if i := bytes.IndexByte(lr.pending[lr.scanned:], '\n'); i >= 0 {
			end := lr.scanned + i
			line := textio.View(lr.pending[:end])
			lr.pending = lr.pending[end+1:]
			lr.scanned = 0
			return line, nil
		}
		lr.scanned = len(lr.pending)
		if lr.eof {
			if len(lr.pending) > 0 {
				line := textio.View(lr.pending)
				lr.pending = lr.pending[len(lr.pending):]
				lr.scanned = 0
				return line, nil
			}
			return "", io.EOF
		}
		n, err := lr.r.Read(lr.buf)
		if n > 0 {
			lr.pending = append(lr.pending, lr.buf[:n]...)
		}
		if err == io.EOF {
			lr.eof = true
		} else if err != nil {
			return "", err
		}
	}
}

// chunkWriter batches line writes to reduce io.Pipe round trips. The
// batch buffer comes from the shared textio builder pool, so a
// steady-state streamed stage allocates nothing per flush (the old
// strings.Builder variant copied every flushed chunk through String()).
type chunkWriter struct {
	w io.Writer
	b *bytes.Buffer
}

func newChunkWriter(w io.Writer) *chunkWriter {
	return &chunkWriter{w: w, b: textio.GetBuilder()}
}

func (cw *chunkWriter) writeLine(line string) error {
	cw.b.WriteString(line)
	cw.b.WriteByte('\n')
	if cw.b.Len() >= 32*1024 {
		return cw.flush()
	}
	return nil
}

func (cw *chunkWriter) flush() error {
	if cw.b.Len() == 0 {
		return nil
	}
	_, err := cw.w.Write(cw.b.Bytes())
	cw.b.Reset()
	return err
}

// release returns the batch buffer to the pool; the chunkWriter must not
// be used afterwards. Paired with newChunkWriter on every path via defer.
func (cw *chunkWriter) release() {
	if cw.b != nil {
		textio.PutBuilder(cw.b)
		cw.b = nil
	}
}

// Env supplies the execution environment shared by commands: the simulated
// file system used by xargs, comm and sed-generated path prefixes.
type Env struct {
	FS *FS
}

// DefaultEnv returns an Env with a fresh synthetic file system.
func DefaultEnv() *Env { return &Env{FS: NewFS()} }

// Parse compiles a command spec (shell-style text such as
// "grep -c 'light.*light'" or "sort -rn") into a Command. Leading VAR=VALUE
// environment assignments are skipped; $VAR references must already be
// resolved by the caller (the pipeline parser does this).
func Parse(spec string, env *Env) (Command, error) {
	if env == nil {
		env = DefaultEnv()
	}
	argv, err := Tokenize(spec)
	if err != nil {
		return nil, fmt.Errorf("unix: parse %q: %w", spec, err)
	}
	// Skip environment assignments such as LC_COLLATE=C.
	for len(argv) > 0 && isEnvAssign(argv[0]) {
		argv = argv[1:]
	}
	if len(argv) == 0 {
		return nil, fmt.Errorf("unix: empty command in %q", spec)
	}
	ctor, ok := builtins[argv[0]]
	if !ok {
		return nil, fmt.Errorf("unix: unknown command %q", argv[0])
	}
	cmd, err := ctor(spec, argv[1:], env)
	if err != nil {
		return nil, fmt.Errorf("unix: %q: %w", spec, err)
	}
	return cmd, nil
}

func isEnvAssign(tok string) bool {
	i := strings.IndexByte(tok, '=')
	if i <= 0 {
		return false
	}
	for _, c := range tok[:i] {
		if !(c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c == '_' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

type ctor func(spec string, args []string, env *Env) (Command, error)

var builtins = map[string]ctor{
	"cat":    newCat,
	"tr":     newTr,
	"sort":   newSort,
	"uniq":   newUniq,
	"grep":   newGrep,
	"wc":     newWc,
	"cut":    newCut,
	"sed":    newSed,
	"awk":    newAwk,
	"head":   newHead,
	"tail":   newTail,
	"xargs":  newXargs,
	"comm":   newComm,
	"paste":  newPaste,
	"ls":     newLs,
	"mkfifo": newMkfifo,
	"rm":     newRm,
	"diff":   newDiff,

	// bigrams_aux stands in for the shell helper function the oneliners
	// bi-grams script defines (paper footnote 5's "function calls").
	"bigrams_aux": newBigramsAux,
	"fmt":         newFmt,
	"rev":         newRev,
	"col":         newCol,
	"iconv":       newIconv,
	"file":        newFile,
}

// Names returns the set of supported command names (for documentation and
// the CLI's error messages).
func Names() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	return names
}
