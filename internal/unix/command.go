// Package unix implements the Unix command substrate KumQuat parallelizes:
// pure-Go, deterministic reimplementations of every command that appears in
// the paper's 70 benchmark scripts, exposed through the same black-box
// interface the synthesizer observes (input stream in, output stream out).
//
// The paper invokes real GNU binaries through the shell; this package
// substitutes in-process implementations with matching observable behaviour
// for the exact flag combinations the benchmarks use (see DESIGN.md,
// "Substitutions"). Because KumQuat treats commands as black boxes —
// Definition 3.2, f : Stream → Stream — the substitution is invisible to
// the synthesis algorithm.
package unix

import (
	"fmt"
	"io"
	"strings"
)

// Command is a deterministic computation over an input stream
// (Definition 3.2). Run returns the output for the full input; commands that
// would print a diagnostic and fail in a real shell (comm on unsorted input,
// xargs on missing files) return a non-nil error instead.
type Command interface {
	// Spec returns the original command text, e.g. "tr -cs A-Za-z '\\n'".
	Spec() string
	// Run executes the command on the whole input stream.
	Run(input string) (string, error)
}

// LineMapper is implemented by commands that map each input line to zero or
// more output lines independently — the "Mapping Input Lines to Disjoint
// Output Lines" class of §3.4 (tr without -s, grep without -c, cut, sed s///,
// awk filters, rev, ...). The pipelined executor streams these commands
// line-by-line; everything else buffers its whole input.
type LineMapper interface {
	Command
	// MapLine maps one input line (without terminator) to zero or more
	// output lines (without terminators).
	MapLine(line string) []string
}

// Streamer is implemented by commands that can process input incrementally.
// LineMappers get a Streamer implementation for free via StreamCommand.
type Streamer interface {
	Command
	// StreamTo consumes lines from r and writes output to w incrementally.
	StreamTo(r io.Reader, w io.Writer) error
}

// runLineMapper evaluates a LineMapper over a whole input stream.
func runLineMapper(lm LineMapper, input string) string {
	if input == "" {
		return ""
	}
	var b strings.Builder
	b.Grow(len(input))
	rest := input
	for rest != "" {
		var line string
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			line, rest = rest, ""
		}
		for _, out := range lm.MapLine(line) {
			b.WriteString(out)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// StreamLineMapper drives a LineMapper incrementally from r to w, used by
// the pipelined (T_orig) executor to overlap pipeline stages.
func StreamLineMapper(lm LineMapper, r io.Reader, w io.Writer) error {
	br := newLineReader(r)
	bw := newChunkWriter(w)
	for {
		line, err := br.readLine()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for _, out := range lm.MapLine(line) {
			if err := bw.writeLine(out); err != nil {
				return err
			}
		}
	}
	return bw.flush()
}

// lineReader reads newline-terminated lines without size limits.
type lineReader struct {
	r   io.Reader
	buf []byte
	// pending holds read-but-unconsumed bytes.
	pending []byte
	eof     bool
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{r: r, buf: make([]byte, 64*1024)}
}

// readLine returns the next line without its terminator; io.EOF when the
// input is exhausted. A final unterminated line is returned before EOF.
func (lr *lineReader) readLine() (string, error) {
	for {
		if i := indexByte(lr.pending, '\n'); i >= 0 {
			line := string(lr.pending[:i])
			lr.pending = lr.pending[i+1:]
			return line, nil
		}
		if lr.eof {
			if len(lr.pending) > 0 {
				line := string(lr.pending)
				lr.pending = nil
				return line, nil
			}
			return "", io.EOF
		}
		n, err := lr.r.Read(lr.buf)
		if n > 0 {
			lr.pending = append(lr.pending, lr.buf[:n]...)
		}
		if err == io.EOF {
			lr.eof = true
		} else if err != nil {
			return "", err
		}
	}
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// chunkWriter batches line writes to reduce io.Pipe round trips.
type chunkWriter struct {
	w io.Writer
	b strings.Builder
}

func newChunkWriter(w io.Writer) *chunkWriter { return &chunkWriter{w: w} }

func (cw *chunkWriter) writeLine(line string) error {
	cw.b.WriteString(line)
	cw.b.WriteByte('\n')
	if cw.b.Len() >= 32*1024 {
		return cw.flush()
	}
	return nil
}

func (cw *chunkWriter) flush() error {
	if cw.b.Len() == 0 {
		return nil
	}
	_, err := io.WriteString(cw.w, cw.b.String())
	cw.b.Reset()
	return err
}

// Env supplies the execution environment shared by commands: the simulated
// file system used by xargs, comm and sed-generated path prefixes.
type Env struct {
	FS *FS
}

// DefaultEnv returns an Env with a fresh synthetic file system.
func DefaultEnv() *Env { return &Env{FS: NewFS()} }

// Parse compiles a command spec (shell-style text such as
// "grep -c 'light.*light'" or "sort -rn") into a Command. Leading VAR=VALUE
// environment assignments are skipped; $VAR references must already be
// resolved by the caller (the pipeline parser does this).
func Parse(spec string, env *Env) (Command, error) {
	if env == nil {
		env = DefaultEnv()
	}
	argv, err := Tokenize(spec)
	if err != nil {
		return nil, fmt.Errorf("unix: parse %q: %w", spec, err)
	}
	// Skip environment assignments such as LC_COLLATE=C.
	for len(argv) > 0 && isEnvAssign(argv[0]) {
		argv = argv[1:]
	}
	if len(argv) == 0 {
		return nil, fmt.Errorf("unix: empty command in %q", spec)
	}
	ctor, ok := builtins[argv[0]]
	if !ok {
		return nil, fmt.Errorf("unix: unknown command %q", argv[0])
	}
	cmd, err := ctor(spec, argv[1:], env)
	if err != nil {
		return nil, fmt.Errorf("unix: %q: %w", spec, err)
	}
	return cmd, nil
}

func isEnvAssign(tok string) bool {
	i := strings.IndexByte(tok, '=')
	if i <= 0 {
		return false
	}
	for _, c := range tok[:i] {
		if !(c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c == '_' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

type ctor func(spec string, args []string, env *Env) (Command, error)

var builtins = map[string]ctor{
	"cat":    newCat,
	"tr":     newTr,
	"sort":   newSort,
	"uniq":   newUniq,
	"grep":   newGrep,
	"wc":     newWc,
	"cut":    newCut,
	"sed":    newSed,
	"awk":    newAwk,
	"head":   newHead,
	"tail":   newTail,
	"xargs":  newXargs,
	"comm":   newComm,
	"paste":  newPaste,
	"ls":     newLs,
	"mkfifo": newMkfifo,
	"rm":     newRm,
	"diff":   newDiff,

	// bigrams_aux stands in for the shell helper function the oneliners
	// bi-grams script defines (paper footnote 5's "function calls").
	"bigrams_aux": newBigramsAux,
	"fmt":         newFmt,
	"rev":         newRev,
	"col":         newCol,
	"iconv":       newIconv,
	"file":        newFile,
}

// Names returns the set of supported command names (for documentation and
// the CLI's error messages).
func Names() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	return names
}
