package unix

import (
	"fmt"
	"strings"

	"kumquat/internal/textio"
)

// This file implements the benchmark commands that do not process a single
// input stream: ls, mkfifo and rm (no data stream at all), diff and
// two-file comm (multiple input streams), and the bi-grams helper function.
// The paper excludes all of these from combiner synthesis (footnote 5);
// the planner runs them serially.

// noStream marks commands outside the f : Stream → Stream model.
type noStream struct{}

// NonStream identifies the command as outside the synthesis model.
func (noStream) NonStream() bool { return true }

// lsCmd lists the FS corpus under a directory prefix, emitting base names
// (the poets scripts re-attach the directory with sed "s;^;$IN;").
type lsCmd struct {
	noStream
	spec string
	env  *Env
	dir  string
}

func newLs(spec string, args []string, env *Env) (Command, error) {
	l := &lsCmd{spec: spec, env: env}
	if len(args) > 1 {
		return nil, fmt.Errorf("ls: at most one directory operand supported")
	}
	if len(args) == 1 {
		l.dir = args[0]
	}
	return l, nil
}

func (l *lsCmd) Spec() string { return l.spec }

func (l *lsCmd) Run(string) (string, error) {
	prefix := l.dir
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	var b strings.Builder
	for _, name := range l.env.FS.NamesUnder(prefix) {
		b.WriteString(strings.TrimPrefix(name, prefix))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// mkfifoCmd is a no-op in the in-memory environment: the named pipes the
// scripts create are modelled by FS files written by output redirects.
type mkfifoCmd struct {
	noStream
	spec string
}

func newMkfifo(spec string, _ []string, _ *Env) (Command, error) {
	return &mkfifoCmd{spec: spec}, nil
}

func (m *mkfifoCmd) Spec() string               { return m.spec }
func (m *mkfifoCmd) Run(string) (string, error) { return "", nil }

// rmCmd removes FS files; missing operands are ignored (like rm -f).
type rmCmd struct {
	noStream
	spec  string
	env   *Env
	names []string
}

func newRm(spec string, args []string, env *Env) (Command, error) {
	return &rmCmd{spec: spec, env: env, names: args}, nil
}

func (r *rmCmd) Spec() string { return r.spec }

func (r *rmCmd) Run(string) (string, error) {
	for _, n := range r.names {
		r.env.FS.Remove(n)
	}
	return "", nil
}

// diffCmd implements diff FILE1 FILE2 for the benchmark's use on two
// sorted streams: a merge walk emitting "< line" for lines only in FILE1
// and "> line" for lines only in FILE2. -B (ignore blank lines) is
// accepted.
type diffCmd struct {
	spec         string
	env          *Env
	ignoreBlanks bool
	files        []string
}

func newDiff(spec string, args []string, env *Env) (Command, error) {
	d := &diffCmd{spec: spec, env: env}
	for _, a := range args {
		if a == "-B" {
			d.ignoreBlanks = true
			continue
		}
		if strings.HasPrefix(a, "-") && a != "-" {
			return nil, fmt.Errorf("diff: unsupported flag %q", a)
		}
		d.files = append(d.files, a)
	}
	if len(d.files) != 2 {
		return nil, fmt.Errorf("diff: need two operands")
	}
	return d, nil
}

func (d *diffCmd) Spec() string { return d.spec }

// MultiInput: diff reads two input streams.
func (d *diffCmd) MultiInput() bool { return true }

func (d *diffCmd) read(name, stdin string) (string, error) {
	if name == "-" {
		return stdin, nil
	}
	return d.env.FS.Read(name)
}

func (d *diffCmd) Run(input string) (string, error) {
	c1, err := d.read(d.files[0], input)
	if err != nil {
		return "", fmt.Errorf("diff: %s", err)
	}
	c2, err := d.read(d.files[1], input)
	if err != nil {
		return "", fmt.Errorf("diff: %s", err)
	}
	clean := func(lines []string) []string {
		if !d.ignoreBlanks {
			return lines
		}
		out := lines[:0:0]
		for _, l := range lines {
			if strings.TrimSpace(l) != "" {
				out = append(out, l)
			}
		}
		return out
	}
	a, b := clean(textio.Lines(c1)), clean(textio.Lines(c2))
	var out strings.Builder
	emit := func(marker string, line string) {
		out.WriteString(marker)
		out.WriteString(line)
		out.WriteByte('\n')
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			emit("< ", a[i])
			i++
		default:
			emit("> ", b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		emit("< ", a[i])
	}
	for ; j < len(b); j++ {
		emit("> ", b[j])
	}
	return out.String(), nil
}

// bigramsAuxCmd stands in for the oneliners bi-grams.sh shell function: it
// pairs each input line (one word per line) with its successor. No DSL
// combiner exists for it (the boundary-crossing pair cannot be rebuilt from
// the two output substreams), so synthesis correctly rejects it and the
// planner runs it serially — the paper counts it among the function-call
// stages it cannot parallelize.
type bigramsAuxCmd struct {
	spec string
}

func newBigramsAux(spec string, args []string, _ *Env) (Command, error) {
	if len(args) != 0 {
		return nil, fmt.Errorf("bigrams_aux: arguments not supported")
	}
	return &bigramsAuxCmd{spec: spec}, nil
}

func (b *bigramsAuxCmd) Spec() string { return b.spec }

func (b *bigramsAuxCmd) Run(input string) (string, error) {
	lines := textio.Lines(input)
	var out strings.Builder
	for i := 0; i+1 < len(lines); i++ {
		out.WriteString(lines[i])
		out.WriteByte(' ')
		out.WriteString(lines[i+1])
		out.WriteByte('\n')
	}
	return out.String(), nil
}
