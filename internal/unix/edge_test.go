package unix

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"kumquat/internal/textio"
)

// This file holds edge-case golden tests and property-based tests for the
// command substrate, beyond the happy paths in unix_test.go.

func TestSortNumericEdgeCases(t *testing.T) {
	cases := []struct{ in, want string }{
		// Negative and decimal values.
		{"-3\n2\n-10\n2.5\n", "-10\n-3\n2\n2.5\n"},
		// Leading blanks before the number (GNU -n skips them).
		{"  10\n2\n", "2\n  10\n"},
		// Non-numeric lines compare as 0 and tie-break bytewise.
		{"abc\n-1\n1\n", "-1\nabc\n1\n"},
		// Equal numeric keys fall back to the whole line.
		{"1 b\n1 a\n", "1 a\n1 b\n"},
	}
	for _, c := range cases {
		if got := run(t, "sort -n", c.in); got != c.want {
			t.Errorf("sort -n %q = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSortKeyBeyondFields(t *testing.T) {
	// -k2n on a line with one field: missing key compares as empty/zero.
	if got := run(t, "sort -k2n", "x 5\ny\nz 1\n"); got != "y\nz 1\nx 5\n" {
		t.Errorf("sort -k2n with missing fields = %q", got)
	}
}

// TestSortProperties: output is sorted, is a permutation of the input, and
// sorting is idempotent.
func TestSortProperties(t *testing.T) {
	cmd, _ := Parse("sort", nil)
	f := func(raw []string) bool {
		var lines []string
		for _, l := range raw {
			lines = append(lines, strings.Map(func(r rune) rune {
				if r == '\n' {
					return 'n'
				}
				return r
			}, l))
		}
		in := textio.JoinLines(lines)
		out, err := cmd.Run(in)
		if err != nil {
			return false
		}
		got := textio.Lines(out)
		if len(got) != len(lines) {
			return false
		}
		if !sort.StringsAreSorted(got) {
			return false
		}
		// Permutation: sorted multisets equal.
		want := append([]string(nil), lines...)
		sort.Strings(want)
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		// Idempotence.
		again, _ := cmd.Run(out)
		return again == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestUniqCountProperty: the counts emitted by uniq -c sum to the input
// line count, and the deformatted lines equal uniq's output.
func TestUniqCountProperty(t *testing.T) {
	uc, _ := Parse("uniq -c", nil)
	u, _ := Parse("uniq", nil)
	f := func(raw []uint8) bool {
		// Small alphabet to force runs.
		lines := make([]string, len(raw))
		for i, b := range raw {
			lines[i] = string(rune('a' + b%3))
		}
		in := textio.JoinLines(lines)
		out, err := uc.Run(in)
		if err != nil {
			return false
		}
		total := 0
		var words []string
		for _, l := range textio.Lines(out) {
			_, head, tail, ok := textio.FieldPad(' ', l)
			if !ok || !textio.AllDigits(head) {
				return false
			}
			n := 0
			for _, c := range head {
				n = n*10 + int(c-'0')
			}
			total += n
			words = append(words, tail)
		}
		if total != len(lines) {
			return false
		}
		plain, _ := u.Run(in)
		return textio.JoinLines(words) == plain
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrOctalAndClasses(t *testing.T) {
	// \012 is newline in octal.
	if got := run(t, `tr 'x' '\012'`, "axb\n"); got != "a\nb\n" {
		t.Errorf("tr octal = %q", got)
	}
	if got := run(t, `tr -d '[:digit:]'`, "a1b2\n"); got != "ab\n" {
		t.Errorf("tr -d digit class = %q", got)
	}
	// Repetition with explicit count.
	if got := run(t, `tr 'abc' '[x*2]z'`, "abc\n"); got != "xxz\n" {
		t.Errorf("tr [x*2] = %q", got)
	}
	// Range with escaped bounds.
	if got := run(t, `tr 'a-c' 'A-C'`, "cab\n"); got != "CAB\n" {
		t.Errorf("tr range = %q", got)
	}
}

// TestTrIdempotentRerun: the rerun combiner's correctness for squeezing tr
// depends on idempotence over its own output: f(f(x)) = f(x).
func TestTrIdempotentRerun(t *testing.T) {
	cmd, _ := Parse(`tr -cs A-Za-z '\n'`, nil)
	f := func(raw string) bool {
		in := textio.EnsureStream(strings.ToValidUTF8(raw, ""))
		if in == "" {
			in = "\n"
		}
		once, err := cmd.Run(in)
		if err != nil {
			return false
		}
		twice, err := cmd.Run(once)
		return err == nil && twice == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCutOpenRange(t *testing.T) {
	if got := run(t, "cut -c 3-", "abcdef\n"); got != "cdef\n" {
		t.Errorf("cut -c 3- = %q", got)
	}
	if got := run(t, "cut -d ',' -f 2-", "a,b,c\n"); got != "b,c\n" {
		t.Errorf("cut -f 2- = %q", got)
	}
	// Selecting past the end yields empty fields/chars.
	if got := run(t, "cut -c 10-12", "abc\n"); got != "\n" {
		t.Errorf("cut past end = %q", got)
	}
}

func TestSedAlternateDelimiters(t *testing.T) {
	if got := run(t, `sed 's|a|b|'`, "aaa\n"); got != "baa\n" {
		t.Errorf("sed pipe delim = %q", got)
	}
	if got := run(t, `sed 's/a/b/g'`, "aaa\n"); got != "bbb\n" {
		t.Errorf("sed global = %q", got)
	}
	// Replacement references the whole match.
	if got := run(t, `sed 's/b./<&>/'`, "abcd\n"); got != "a<bc>d\n" {
		t.Errorf("sed & = %q", got)
	}
}

func TestSedNonGlobalOncePerLine(t *testing.T) {
	// Exactly one substitution per line without /g — the behaviour that
	// eliminates rerun for timestamp-stripping seds during synthesis.
	cmd, _ := Parse(`sed 's/T..:..:..//'`, nil)
	in := "xT11:22:33yT44:55:66z\n"
	once, _ := cmd.Run(in)
	if once != "xyT44:55:66z\n" {
		t.Fatalf("first application = %q", once)
	}
	twice, _ := cmd.Run(once)
	if twice != "xyz\n" {
		t.Fatalf("second application = %q", twice)
	}
	if once == twice {
		t.Error("rerun must be observably different for multi-match lines")
	}
}

func TestAwkFieldRebuild(t *testing.T) {
	// Assignment to an out-of-range field extends the record.
	if got := run(t, `awk "{\$3=\$1};1"`, "a b\n"); got != "a b a\n" {
		t.Errorf("awk extend fields = %q", got)
	}
	// String comparison when one side is non-numeric.
	if got := run(t, `awk "\$1 == \"x\""`, "x 1\ny 2\n"); got != "x 1\n" {
		t.Errorf("awk string eq = %q", got)
	}
}

func TestHeadTailZero(t *testing.T) {
	if got := run(t, "head -n 0", "a\nb\n"); got != "" {
		t.Errorf("head -n 0 = %q", got)
	}
	if got := run(t, "tail -n 0", "a\nb\n"); got != "" {
		t.Errorf("tail -n 0 = %q", got)
	}
	if got := run(t, "tail +1", "a\nb\n"); got != "a\nb\n" {
		t.Errorf("tail +1 = %q", got)
	}
	if got := run(t, "tail +10", "a\nb\n"); got != "" {
		t.Errorf("tail +10 past end = %q", got)
	}
}

func TestCommColumns(t *testing.T) {
	env := DefaultEnv()
	env.FS.Register("d", "b\nc\n")
	// Full three-column output with tab indentation.
	cmd, err := Parse("comm - d", env)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cmd.Run("a\nb\n")
	if err != nil || out != "a\n\tc\n\t\tb\n" {
		// comm order: walks both streams; a < b (col1), then b==b (col3),
		// then c remains in file2 (col2).
		if out != "a\n\t\tb\n\tc\n" {
			t.Errorf("comm columns = %q, %v", out, err)
		}
	}
	// Suppress everything.
	cmd2, _ := Parse("comm -123 - d", env)
	out, err = cmd2.Run("a\nb\n")
	if err != nil || out != "" {
		t.Errorf("comm -123 = %q, %v", out, err)
	}
}

func TestPaste(t *testing.T) {
	env := DefaultEnv()
	env.FS.Register("w", "a\nb\nc\n")
	env.FS.Register("nw", "b\nc\n")
	cmd, err := Parse("paste w nw", env)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cmd.Run("")
	if err != nil || out != "a\tb\nb\tc\nc\t\n" {
		t.Errorf("paste = %q, %v", out, err)
	}
	// Stdin via "-".
	cmd2, _ := Parse("paste - nw", env)
	out, err = cmd2.Run("x\ny\n")
	if err != nil || out != "x\tb\ny\tc\n" {
		t.Errorf("paste - = %q, %v", out, err)
	}
	// Missing file errors.
	cmd3, _ := Parse("paste nope", env)
	if _, err := cmd3.Run(""); err == nil {
		t.Error("paste missing file should error")
	}
}

func TestLsAndPrefix(t *testing.T) {
	env := DefaultEnv()
	env.FS.Register("pg/alpha.txt", "x\n")
	env.FS.Register("pg/beta.txt", "y\n")
	cmd, err := Parse("ls pg", env)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cmd.Run("ignored\n")
	if err != nil || out != "alpha.txt\nbeta.txt\n" {
		t.Errorf("ls pg = %q, %v", out, err)
	}
	// The poets prefix pattern round-trips through sed.
	sed, _ := Parse(`sed "s;^;pg/;"`, env)
	prefixed, _ := sed.Run(out)
	if prefixed != "pg/alpha.txt\npg/beta.txt\n" {
		t.Errorf("sed prefix = %q", prefixed)
	}
	xcat, _ := Parse("xargs cat", env)
	content, err := xcat.Run(prefixed)
	if err != nil || content != "x\ny\n" {
		t.Errorf("xargs cat round trip = %q, %v", content, err)
	}
}

func TestRmMkfifo(t *testing.T) {
	env := DefaultEnv()
	env.FS.Register("tmpfile", "x\n")
	rm, _ := Parse("rm tmpfile missing", env)
	if out, err := rm.Run(""); err != nil || out != "" {
		t.Errorf("rm = %q, %v", out, err)
	}
	if _, err := env.FS.Read("tmpfile"); err == nil {
		t.Error("rm should remove the file")
	}
	mk, _ := Parse("mkfifo a b", env)
	if out, err := mk.Run(""); err != nil || out != "" {
		t.Errorf("mkfifo = %q, %v", out, err)
	}
}

func TestDiffSortedStreams(t *testing.T) {
	env := DefaultEnv()
	env.FS.Register("s1", "a\nb\nd\n")
	env.FS.Register("s2", "b\nc\nd\n")
	cmd, err := Parse("diff -B s1 s2", env)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cmd.Run("")
	if err != nil || out != "< a\n> c\n" {
		t.Errorf("diff = %q, %v", out, err)
	}
	// -B ignores blank lines.
	env.FS.Register("s3", "a\n\nb\n")
	env.FS.Register("s4", "a\nb\n")
	cmd2, _ := Parse("diff -B s3 s4", env)
	out, err = cmd2.Run("")
	if err != nil || out != "" {
		t.Errorf("diff -B blanks = %q, %v", out, err)
	}
}

func TestBigramsAux(t *testing.T) {
	if got := run(t, "bigrams_aux", "a\nb\nc\n"); got != "a b\nb c\n" {
		t.Errorf("bigrams_aux = %q", got)
	}
	if got := run(t, "bigrams_aux", "solo\n"); got != "" {
		t.Errorf("bigrams_aux single = %q", got)
	}
}

func TestGrepFoldWithClasses(t *testing.T) {
	if got := run(t, "grep -i '^[a-d]'", "Apple\nzebra\nBerry\n"); got != "Apple\nBerry\n" {
		t.Errorf("grep -i class = %q", got)
	}
	if got := run(t, "grep -vi 'light'", "LIGHT on\ndark\n"); got != "dark\n" {
		t.Errorf("grep -vi = %q", got)
	}
}

func TestEmptyInputAcrossCommands(t *testing.T) {
	// Every stream command must handle "" gracefully; counters emit zero.
	for spec, want := range map[string]string{
		"cat": "", "sort": "", "uniq": "", "uniq -c": "", "rev": "",
		"grep x": "", "grep -c x": "0\n", "wc -l": "0\n",
		"cut -c 1-2": "", `sed 's/a/b/'`: "", "head -n 3": "",
		"tail -n 2": "", `tr a b`: "", "fmt -w1": "",
	} {
		if got := run(t, spec, ""); got != want {
			t.Errorf("%q on empty input = %q, want %q", spec, got, want)
		}
	}
}

// TestConcurrentRunSafety: commands are shared across the parallel
// executor's goroutines; Run must be safe for concurrent use.
func TestConcurrentRunSafety(t *testing.T) {
	specs := []string{"sort -rn", `grep 'a.*b'`, `sed 's/a/b/g'`, "uniq -c",
		`awk '{print NF}'`, `tr -cs A-Za-z '\n'`}
	in := "ab a\ncd b\nab a\n"
	for _, spec := range specs {
		cmd, err := Parse(spec, DefaultEnv())
		if err != nil {
			t.Fatal(err)
		}
		want, _ := cmd.Run(in)
		done := make(chan string, 16)
		for g := 0; g < 16; g++ {
			go func() {
				out, _ := cmd.Run(in)
				done <- out
			}()
		}
		for g := 0; g < 16; g++ {
			if got := <-done; got != want {
				t.Fatalf("%q: concurrent run diverged", spec)
			}
		}
	}
}
