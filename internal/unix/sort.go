package unix

import (
	"fmt"
	"sort"
	"strings"

	"kumquat/internal/textio"
)

// SortCmd implements GNU sort with C collation for the flag combinations in
// the benchmarks: plain, -n, -r, -f, -u, -k POS[n], -m, and combinations
// (-rn, -nr, -k1n). --parallel=N is accepted and ignored (the paper's
// experimental setup forces --parallel=1 to keep stages serial).
//
// The comparator is exported (Less) because the DSL's merge combiner is
// "sort -m <flags>" with the same flags (§3.1 RunOp).
type SortCmd struct {
	spec     string
	Numeric  bool
	Reverse  bool
	Fold     bool
	Unique   bool
	Merge    bool
	Key      int  // 1-based field for -k; 0 = whole line
	KeyNum   bool // numeric modifier on -k
	KeyRev   bool // r modifier on -k
	flagsStr string
}

func newSort(spec string, args []string, _ *Env) (Command, error) {
	s := &SortCmd{spec: spec}
	var flagTokens []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-k" && i+1 < len(args):
			i++
			if err := s.parseKey(args[i]); err != nil {
				return nil, err
			}
			flagTokens = append(flagTokens, "-k", args[i])
		case strings.HasPrefix(a, "-k"):
			if err := s.parseKey(a[2:]); err != nil {
				return nil, err
			}
			flagTokens = append(flagTokens, a)
		case strings.HasPrefix(a, "--parallel"):
			// ignored: our stages are in-process
		case strings.HasPrefix(a, "-") && len(a) > 1:
			for _, f := range a[1:] {
				switch f {
				case 'n':
					s.Numeric = true
				case 'r':
					s.Reverse = true
				case 'f':
					s.Fold = true
				case 'u':
					s.Unique = true
				case 'm':
					s.Merge = true
				case 's':
					// stability: our sort is always stable
				default:
					return nil, fmt.Errorf("sort: unsupported flag -%c", f)
				}
			}
			flagTokens = append(flagTokens, a)
		default:
			return nil, fmt.Errorf("sort: unexpected argument %q", a)
		}
	}
	s.flagsStr = strings.Join(flagTokens, " ")
	return s, nil
}

func (s *SortCmd) parseKey(spec string) error {
	// Supported: "N", "Nn", "Nr", "Nnr" (field N with modifiers).
	i := 0
	n := 0
	for i < len(spec) && spec[i] >= '0' && spec[i] <= '9' {
		n = n*10 + int(spec[i]-'0')
		i++
	}
	if n == 0 {
		return fmt.Errorf("sort: bad key %q", spec)
	}
	s.Key = n
	for ; i < len(spec); i++ {
		switch spec[i] {
		case 'n':
			s.KeyNum = true
		case 'r':
			s.KeyRev = true
		case '.', ',':
			// ignore sub-positions and end keys (not used by benchmarks)
			return nil
		default:
			return fmt.Errorf("sort: bad key modifier %q", spec)
		}
	}
	return nil
}

// Flags returns the flag string (e.g. "-rn"), used to label the merge
// combiner as merge('-rn') in synthesis results.
func (s *SortCmd) Flags() string { return s.flagsStr }

func (s *SortCmd) Spec() string { return s.spec }

// keyOf extracts the comparison key of a line.
func (s *SortCmd) keyOf(line string) string {
	if s.Key == 0 {
		return line
	}
	fields := strings.Fields(line)
	if s.Key-1 < len(fields) {
		return fields[s.Key-1]
	}
	return ""
}

// numValue parses a GNU-sort-style leading numeric value: optional blanks,
// optional sign, digits with optional decimal part. Anything else is 0.
func numValue(sv string) float64 {
	i := 0
	for i < len(sv) && (sv[i] == ' ' || sv[i] == '\t') {
		i++
	}
	start := i
	if i < len(sv) && (sv[i] == '-' || sv[i] == '+') {
		i++
	}
	digits := false
	for i < len(sv) && sv[i] >= '0' && sv[i] <= '9' {
		i++
		digits = true
	}
	if i < len(sv) && sv[i] == '.' {
		i++
		for i < len(sv) && sv[i] >= '0' && sv[i] <= '9' {
			i++
			digits = true
		}
	}
	if !digits {
		return 0
	}
	var v float64
	str := strings.TrimPrefix(sv[start:i], "+")
	neg := strings.HasPrefix(str, "-")
	str = strings.TrimPrefix(str, "-")
	intPart, frac, _ := strings.Cut(str, ".")
	for _, c := range intPart {
		v = v*10 + float64(c-'0')
	}
	scale := 0.1
	for _, c := range frac {
		v += float64(c-'0') * scale
		scale /= 10
	}
	if neg {
		v = -v
	}
	return v
}

// compareKey compares the sort keys of two lines, before reversal and the
// last-resort comparison.
func (s *SortCmd) compareKey(a, b string) int {
	ka, kb := s.keyOf(a), s.keyOf(b)
	numeric := s.Numeric || (s.Key > 0 && s.KeyNum)
	if numeric {
		va, vb := numValue(ka), numValue(kb)
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		default:
			return 0
		}
	}
	if s.Fold {
		ka, kb = strings.ToUpper(ka), strings.ToUpper(kb)
	}
	return strings.Compare(ka, kb)
}

// Less is the full GNU ordering: key comparison with -r reversal, falling
// back to a bytewise whole-line last-resort comparison on key ties.
func (s *SortCmd) Less(a, b string) bool {
	c := s.compareKey(a, b)
	if s.Reverse || s.KeyRev {
		c = -c
	}
	if c != 0 {
		return c < 0
	}
	if s.Unique {
		return false // equal keys: order among them irrelevant, dedup keeps first
	}
	c = strings.Compare(a, b)
	if s.Reverse {
		c = -c
	}
	return c < 0
}

// EqualKey reports whether two lines compare equal under the key (used by
// -u and by merge dedup).
func (s *SortCmd) EqualKey(a, b string) bool { return s.compareKey(a, b) == 0 }

// IsSorted reports whether the stream is already ordered under this
// command's comparator — the legality domain of the merge combiner.
func (s *SortCmd) IsSorted(stream string) bool {
	lines := textio.Lines(stream)
	for i := 1; i < len(lines); i++ {
		if s.Less(lines[i], lines[i-1]) {
			return false
		}
	}
	return true
}

func (s *SortCmd) Run(input string) (string, error) {
	lines := textio.Lines(input)
	if s.Merge {
		// Single input: merging one stream is the identity (plus -u dedup).
		if !s.IsSorted(input) {
			return "", fmt.Errorf("sort: -m: input is not sorted")
		}
	} else {
		sorted := make([]string, len(lines))
		copy(sorted, lines)
		sort.SliceStable(sorted, func(i, j int) bool { return s.Less(sorted[i], sorted[j]) })
		lines = sorted
	}
	if s.Unique {
		lines = s.dedup(lines)
	}
	return textio.JoinLines(lines), nil
}

func (s *SortCmd) dedup(lines []string) []string {
	var out []string
	for i, l := range lines {
		if i == 0 || !s.EqualKey(out[len(out)-1], l) {
			out = append(out, l)
		}
	}
	return out
}

// MergeStreams merges k pre-sorted streams under this comparator, as the
// Unix script "sort -m <flags> $*" does in the paper's k-way combiner
// implementation (§3.5). Stability: ties are taken from earlier streams.
func (s *SortCmd) MergeStreams(streams ...string) string {
	type cursor struct {
		lines []string
		pos   int
	}
	cursors := make([]*cursor, 0, len(streams))
	total := 0
	for _, st := range streams {
		ls := textio.Lines(st)
		total += len(ls)
		cursors = append(cursors, &cursor{lines: ls})
	}
	out := make([]string, 0, total)
	for {
		best := -1
		for i, c := range cursors {
			if c.pos >= len(c.lines) {
				continue
			}
			if best < 0 || s.Less(c.lines[c.pos], cursors[best].lines[cursors[best].pos]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, cursors[best].lines[cursors[best].pos])
		cursors[best].pos++
	}
	if s.Unique {
		out = s.dedup(out)
	}
	return textio.JoinLines(out)
}
