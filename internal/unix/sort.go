package unix

import (
	"container/heap"
	"fmt"
	"io"
	"sort"
	"strings"

	"kumquat/internal/textio"
)

// SortCmd implements GNU sort with C collation for the flag combinations in
// the benchmarks: plain, -n, -r, -f, -u, -k POS[n], -m, and combinations
// (-rn, -nr, -k1n). --parallel=N is accepted and ignored (the paper's
// experimental setup forces --parallel=1 to keep stages serial).
//
// The comparator is exported (Less) because the DSL's merge combiner is
// "sort -m <flags>" with the same flags (§3.1 RunOp).
type SortCmd struct {
	spec     string
	Numeric  bool
	Reverse  bool
	Fold     bool
	Unique   bool
	Merge    bool
	Key      int  // 1-based field for -k; 0 = whole line
	KeyNum   bool // numeric modifier on -k
	KeyRev   bool // r modifier on -k
	flagsStr string
}

func newSort(spec string, args []string, _ *Env) (Command, error) {
	s := &SortCmd{spec: spec}
	var flagTokens []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-k" && i+1 < len(args):
			i++
			if err := s.parseKey(args[i]); err != nil {
				return nil, err
			}
			flagTokens = append(flagTokens, "-k", args[i])
		case strings.HasPrefix(a, "-k"):
			if err := s.parseKey(a[2:]); err != nil {
				return nil, err
			}
			flagTokens = append(flagTokens, a)
		case strings.HasPrefix(a, "--parallel"):
			// ignored: our stages are in-process
		case strings.HasPrefix(a, "-") && len(a) > 1:
			for _, f := range a[1:] {
				switch f {
				case 'n':
					s.Numeric = true
				case 'r':
					s.Reverse = true
				case 'f':
					s.Fold = true
				case 'u':
					s.Unique = true
				case 'm':
					s.Merge = true
				case 's':
					// stability: our sort is always stable
				default:
					return nil, fmt.Errorf("sort: unsupported flag -%c", f)
				}
			}
			flagTokens = append(flagTokens, a)
		default:
			return nil, fmt.Errorf("sort: unexpected argument %q", a)
		}
	}
	s.flagsStr = strings.Join(flagTokens, " ")
	return s, nil
}

func (s *SortCmd) parseKey(spec string) error {
	// Supported: "N", "Nn", "Nr", "Nnr" (field N with modifiers).
	i := 0
	n := 0
	for i < len(spec) && spec[i] >= '0' && spec[i] <= '9' {
		n = n*10 + int(spec[i]-'0')
		i++
	}
	if n == 0 {
		return fmt.Errorf("sort: bad key %q", spec)
	}
	s.Key = n
	for ; i < len(spec); i++ {
		switch spec[i] {
		case 'n':
			s.KeyNum = true
		case 'r':
			s.KeyRev = true
		case '.', ',':
			// ignore sub-positions and end keys (not used by benchmarks)
			return nil
		default:
			return fmt.Errorf("sort: bad key modifier %q", spec)
		}
	}
	return nil
}

// Flags returns the flag string (e.g. "-rn"), used to label the merge
// combiner as merge('-rn') in synthesis results.
func (s *SortCmd) Flags() string { return s.flagsStr }

func (s *SortCmd) Spec() string { return s.spec }

// keyOf extracts the comparison key of a line. Key extraction runs once
// per comparison, so it goes through the zero-allocation field kernel
// instead of materializing a field slice (the old strings.Fields here
// allocated on every comparison of every keyed sort).
func (s *SortCmd) keyOf(line string) string {
	if s.Key == 0 {
		return line
	}
	return textio.Field(line, s.Key)
}

// numValue parses a GNU-sort-style leading numeric value: optional blanks,
// optional sign, digits with optional decimal part. Anything else is 0.
func numValue(sv string) float64 {
	i := 0
	for i < len(sv) && (sv[i] == ' ' || sv[i] == '\t') {
		i++
	}
	start := i
	if i < len(sv) && (sv[i] == '-' || sv[i] == '+') {
		i++
	}
	digits := false
	for i < len(sv) && sv[i] >= '0' && sv[i] <= '9' {
		i++
		digits = true
	}
	if i < len(sv) && sv[i] == '.' {
		i++
		for i < len(sv) && sv[i] >= '0' && sv[i] <= '9' {
			i++
			digits = true
		}
	}
	if !digits {
		return 0
	}
	var v float64
	str := strings.TrimPrefix(sv[start:i], "+")
	neg := strings.HasPrefix(str, "-")
	str = strings.TrimPrefix(str, "-")
	intPart, frac, _ := strings.Cut(str, ".")
	for _, c := range intPart {
		v = v*10 + float64(c-'0')
	}
	scale := 0.1
	for _, c := range frac {
		v += float64(c-'0') * scale
		scale /= 10
	}
	if neg {
		v = -v
	}
	return v
}

// compareKey compares the sort keys of two lines, before reversal and the
// last-resort comparison.
func (s *SortCmd) compareKey(a, b string) int {
	ka, kb := s.keyOf(a), s.keyOf(b)
	numeric := s.Numeric || (s.Key > 0 && s.KeyNum)
	if numeric {
		va, vb := numValue(ka), numValue(kb)
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		default:
			return 0
		}
	}
	if s.Fold {
		ka, kb = strings.ToUpper(ka), strings.ToUpper(kb)
	}
	return strings.Compare(ka, kb)
}

// compare is the full GNU ordering as a three-way comparison: key
// comparison with -r reversal, falling back to a bytewise whole-line
// last-resort comparison on key ties (suppressed under -u, whose ties
// are genuine). The merge heap uses the three-way form directly so one
// comparator run distinguishes less/tie/greater.
func (s *SortCmd) compare(a, b string) int {
	c := s.compareKey(a, b)
	if s.Reverse || s.KeyRev {
		c = -c
	}
	if c != 0 {
		return c
	}
	if s.Unique {
		return 0 // equal keys: order among them irrelevant, dedup keeps first
	}
	c = strings.Compare(a, b)
	if s.Reverse {
		c = -c
	}
	return c
}

// Less is the full GNU ordering: compare < 0.
func (s *SortCmd) Less(a, b string) bool { return s.compare(a, b) < 0 }

// EqualKey reports whether two lines compare equal under the key (used by
// -u and by merge dedup).
func (s *SortCmd) EqualKey(a, b string) bool { return s.compareKey(a, b) == 0 }

// IsSorted reports whether the stream is already ordered under this
// command's comparator — the legality domain of the merge combiner.
// The stream is indexed once (textio.LineSeq) rather than split into a
// fresh []string: sortedness checks run on every merge operand during
// synthesis domain filtering, so this path is allocation-sensitive.
func (s *SortCmd) IsSorted(stream string) bool {
	ls := textio.ScanLines(stream)
	for i := 1; i < ls.Len(); i++ {
		if s.Less(ls.Line(i), ls.Line(i-1)) {
			return false
		}
	}
	return true
}

func (s *SortCmd) Run(input string) (string, error) {
	lines := textio.Lines(input)
	if s.Merge {
		// Single input: merging one stream is the identity (plus -u dedup).
		if !s.IsSorted(input) {
			return "", fmt.Errorf("sort: -m: input is not sorted")
		}
	} else {
		sorted := make([]string, len(lines))
		copy(sorted, lines)
		sort.SliceStable(sorted, func(i, j int) bool { return s.Less(sorted[i], sorted[j]) })
		lines = sorted
	}
	if s.Unique {
		lines = s.dedup(lines)
	}
	return textio.JoinLines(lines), nil
}

func (s *SortCmd) dedup(lines []string) []string {
	var out []string
	for i, l := range lines {
		if i == 0 || !s.EqualKey(out[len(out)-1], l) {
			out = append(out, l)
		}
	}
	return out
}

// mergeCursor walks one pre-sorted stream line by line without
// materializing its lines: the current line is s[start:end] (terminator
// excluded) and advance re-indexes in place. idx is the stream's position
// in the merge argument list — the tie-stability key.
type mergeCursor struct {
	s          string
	start, end int
	idx        int
}

// newMergeCursor positions a cursor on the stream's first line; ok is
// false for an empty stream.
func newMergeCursor(s string, idx int) (mergeCursor, bool) {
	if s == "" {
		return mergeCursor{}, false
	}
	c := mergeCursor{s: s, idx: idx}
	if j := strings.IndexByte(s, '\n'); j >= 0 {
		c.end = j
	} else {
		c.end = len(s)
	}
	return c, true
}

// line returns the current line without its terminator.
func (c *mergeCursor) line() string { return c.s[c.start:c.end] }

// advance moves to the next line; ok is false once the stream is
// exhausted. Line boundaries follow textio.Lines: a trailing newline does
// not produce an empty final line, an unterminated final line counts.
func (c *mergeCursor) advance() bool {
	next := c.end + 1
	if next >= len(c.s) {
		return false
	}
	c.start = next
	if j := strings.IndexByte(c.s[next:], '\n'); j >= 0 {
		c.end = next + j
	} else {
		c.end = len(c.s)
	}
	return true
}

// mergeHeap is the k-way merge front: a min-heap of stream cursors
// ordered by the comparator, with ties broken by stream index so the
// merge stays stable by argument position.
type mergeHeap struct {
	s  *SortCmd
	cs []mergeCursor
}

func (h *mergeHeap) Len() int { return len(h.cs) }

func (h *mergeHeap) Less(i, j int) bool {
	if c := h.s.compare(h.cs[i].line(), h.cs[j].line()); c != 0 {
		return c < 0
	}
	return h.cs[i].idx < h.cs[j].idx
}

func (h *mergeHeap) Swap(i, j int) { h.cs[i], h.cs[j] = h.cs[j], h.cs[i] }

func (h *mergeHeap) Push(x any) { h.cs = append(h.cs, x.(mergeCursor)) }

func (h *mergeHeap) Pop() any {
	n := len(h.cs) - 1
	c := h.cs[n]
	h.cs = h.cs[:n]
	return c
}

// MergeStreams merges k pre-sorted streams under this comparator, as the
// Unix script "sort -m <flags> $*" does in the paper's k-way combiner
// implementation (§3.5). Stability: ties are taken from earlier streams.
//
// The merge front is a container/heap of per-stream cursors, so each
// output line costs O(log k) comparisons (O(total·log k) overall) instead
// of the O(total·k) of a per-line scan over all cursors, and no stream is
// ever split into a []string — lines stream from the cursors straight
// into a pooled output builder, with -u dedup applied on the fly. The
// output is byte-identical to MergeStreamsScan, the retired scan
// implementation kept as the benchmark baseline.
func (s *SortCmd) MergeStreams(streams ...string) string {
	h := mergeHeap{s: s, cs: make([]mergeCursor, 0, len(streams))}
	total := 0
	for i, st := range streams {
		total += len(st)
		if c, ok := newMergeCursor(st, i); ok {
			h.cs = append(h.cs, c)
		}
	}
	if len(h.cs) == 0 {
		return ""
	}
	heap.Init(&h)
	buf := textio.GetBuilder()
	defer textio.PutBuilder(buf)
	// Exact when every stream is newline-terminated; the slack covers
	// terminators appended to unterminated final lines.
	buf.Grow(total + len(streams))
	var last string
	haveLast := false
	for h.Len() > 0 {
		line := h.cs[0].line()
		if !s.Unique || !haveLast || !s.EqualKey(last, line) {
			buf.WriteString(line)
			buf.WriteByte('\n')
			last, haveLast = line, true
		}
		if h.cs[0].advance() {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return buf.String()
}

// mergeReader is the lazy form of MergeStreams: an io.Reader that produces
// the merged stream on demand, so a downstream streaming stage can consume
// the k-way merge without the combined stream ever being materialized (the
// dataflow optimizer's push-sort-merge rewrite).
type mergeReader struct {
	h mergeHeap
	// buf holds merged-but-unread bytes; Read drains it before advancing
	// the heap again.
	buf  []byte
	last string
	have bool
}

// MergeReader returns a reader over the k-way merge of pre-sorted streams
// under this comparator. The bytes read are exactly MergeStreams(streams...)
// — same heap, same tie stability, same -u dedup — but produced
// incrementally: each Read advances the merge front just far enough to fill
// the caller's buffer.
func (s *SortCmd) MergeReader(streams ...string) io.Reader {
	mr := &mergeReader{h: mergeHeap{s: s, cs: make([]mergeCursor, 0, len(streams))}}
	for i, st := range streams {
		if c, ok := newMergeCursor(st, i); ok {
			mr.h.cs = append(mr.h.cs, c)
		}
	}
	heap.Init(&mr.h)
	return mr
}

func (mr *mergeReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(mr.buf) == 0 {
			if mr.h.Len() == 0 {
				if n == 0 {
					return 0, io.EOF
				}
				return n, nil
			}
			line := mr.h.cs[0].line()
			if !mr.h.s.Unique || !mr.have || !mr.h.s.EqualKey(mr.last, line) {
				mr.buf = append(mr.buf[:0], line...)
				mr.buf = append(mr.buf, '\n')
				mr.last, mr.have = line, true
			}
			if mr.h.cs[0].advance() {
				heap.Fix(&mr.h, 0)
			} else {
				heap.Pop(&mr.h)
			}
			continue
		}
		c := copy(p[n:], mr.buf)
		mr.buf = mr.buf[c:]
		n += c
	}
	return n, nil
}

// MergeStreamsScan is the pre-heap merge: a per-line linear scan over all
// k cursors (O(total·k) comparisons) materializing every line up front.
// It is retained only as the ablation baseline for the k-way merge
// benchmarks and the byte-identity tests; execution always goes through
// MergeStreams.
func (s *SortCmd) MergeStreamsScan(streams ...string) string {
	type cursor struct {
		lines []string
		pos   int
	}
	cursors := make([]*cursor, 0, len(streams))
	total := 0
	for _, st := range streams {
		ls := textio.Lines(st)
		total += len(ls)
		cursors = append(cursors, &cursor{lines: ls})
	}
	out := make([]string, 0, total)
	for {
		best := -1
		for i, c := range cursors {
			if c.pos >= len(c.lines) {
				continue
			}
			if best < 0 || s.Less(c.lines[c.pos], cursors[best].lines[cursors[best].pos]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, cursors[best].lines[cursors[best].pos])
		cursors[best].pos++
	}
	if s.Unique {
		out = s.dedup(out)
	}
	return textio.JoinLines(out)
}
