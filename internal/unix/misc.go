package unix

import (
	"fmt"
	"strings"

	"kumquat/internal/textio"
)

// catCmd: identity over the stream. `cat $IN` at the head of a pipeline is
// handled by the pipeline parser (it becomes the input source); a mid-
// pipeline cat is the identity command.
type catCmd struct {
	spec string
	env  *Env
	file string
}

func newCat(spec string, args []string, env *Env) (Command, error) {
	c := &catCmd{spec: spec, env: env}
	if len(args) > 1 {
		return nil, fmt.Errorf("cat: at most one file operand supported")
	}
	if len(args) == 1 && args[0] != "-" {
		c.file = args[0]
	}
	return c, nil
}

func (c *catCmd) Spec() string { return c.spec }

// ReadsEnv reports whether Run's output depends on the simulated file
// system (cat with a file operand): such results must not be reused
// across environments.
func (c *catCmd) ReadsEnv() bool { return c.file != "" }

func (c *catCmd) Run(input string) (string, error) {
	if c.file != "" {
		return c.env.FS.Read(c.file)
	}
	return input, nil
}

func (c *catCmd) MapLine(line string) []string { return []string{line} }

// AsLineMapper: stdin cat is the identity line map.
func (c *catCmd) AsLineMapper() (LineMapper, bool) {
	if c.file != "" {
		return nil, false
	}
	return c, true
}

// revCmd reverses each line (rev(1)).
type revCmd struct{ spec string }

func newRev(spec string, args []string, _ *Env) (Command, error) {
	if len(args) != 0 {
		return nil, fmt.Errorf("rev: arguments not supported")
	}
	return &revCmd{spec: spec}, nil
}

func (r *revCmd) Spec() string { return r.spec }

func (r *revCmd) Run(input string) (string, error) { return runLineMapper(r, input), nil }

func (r *revCmd) MapLine(line string) []string {
	b := []byte(line)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return []string{string(b)}
}

// fmtCmd implements fmt -wN for the one width the benchmarks use (fmt -w1:
// every word on its own line).
type fmtCmd struct {
	spec  string
	width int
}

func newFmt(spec string, args []string, _ *Env) (Command, error) {
	f := &fmtCmd{spec: spec, width: 75}
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-w" && i+1 < len(args):
			i++
			fmt.Sscanf(args[i], "%d", &f.width)
		case strings.HasPrefix(a, "-w"):
			fmt.Sscanf(a[2:], "%d", &f.width)
		default:
			return nil, fmt.Errorf("fmt: unsupported argument %q", a)
		}
	}
	return f, nil
}

func (f *fmtCmd) Spec() string { return f.spec }

func (f *fmtCmd) Run(input string) (string, error) { return runLineMapper(f, input), nil }

// MapLine greedily packs words into lines of at most width characters; with
// -w1 every word lands on its own line. Words longer than the width get a
// line of their own, as in GNU fmt.
func (f *fmtCmd) MapLine(line string) []string {
	fs := textio.Fields(line)
	w, ok := fs.Next()
	if !ok {
		return []string{""}
	}
	// Pack through a builder instead of the old cur += " " + w fold,
	// which reallocated the accumulator once per appended word.
	var out []string
	var b strings.Builder
	b.WriteString(w)
	for {
		w, ok = fs.Next()
		if !ok {
			break
		}
		if b.Len()+1+len(w) <= f.width {
			b.WriteByte(' ')
			b.WriteString(w)
			continue
		}
		out = append(out, b.String())
		b.Reset()
		b.WriteString(w)
	}
	return append(out, b.String())
}

// colCmd implements col -bx: -b removes backspace sequences (char pairs
// "X\b" delete both), -x converts tabs to spaces at 8-column stops.
type colCmd struct {
	spec         string
	noBackspace  bool
	tabsToSpaces bool
}

func newCol(spec string, args []string, _ *Env) (Command, error) {
	c := &colCmd{spec: spec}
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			return nil, fmt.Errorf("col: unexpected argument %q", a)
		}
		for _, f := range a[1:] {
			switch f {
			case 'b':
				c.noBackspace = true
			case 'x':
				c.tabsToSpaces = true
			default:
				return nil, fmt.Errorf("col: unsupported flag -%c", f)
			}
		}
	}
	return c, nil
}

func (c *colCmd) Spec() string { return c.spec }

func (c *colCmd) Run(input string) (string, error) { return runLineMapper(c, input), nil }

func (c *colCmd) MapLine(line string) []string {
	var b strings.Builder
	col := 0
	for i := 0; i < len(line); i++ {
		ch := line[i]
		switch {
		case ch == '\b' && c.noBackspace:
			// col -b: a backspace erases the previous character.
			if b.Len() > 0 {
				s := b.String()
				b.Reset()
				b.WriteString(s[:len(s)-1])
				col--
			}
		case ch == '\t' && c.tabsToSpaces:
			n := 8 - col%8
			b.WriteString(strings.Repeat(" ", n))
			col += n
		default:
			b.WriteByte(ch)
			col++
		}
	}
	return []string{b.String()}
}

// iconvCmd implements iconv -f utf-8 -t ascii//translit: transliterate
// common accented Latin letters to their ASCII base and replace anything
// else non-ASCII with '?', GNU-style.
type iconvCmd struct{ spec string }

func newIconv(spec string, args []string, _ *Env) (Command, error) {
	// Accept and validate the benchmark's fixed argument form.
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-f", "-t":
			i++ // charset operand
		default:
			if !strings.Contains(args[i], "ascii") && !strings.Contains(args[i], "utf") {
				return nil, fmt.Errorf("iconv: unsupported argument %q", args[i])
			}
		}
	}
	return &iconvCmd{spec: spec}, nil
}

func (ic *iconvCmd) Spec() string { return ic.spec }

func (ic *iconvCmd) Run(input string) (string, error) { return runLineMapper(ic, input), nil }

var translitTable = map[rune]string{
	'á': "a", 'à': "a", 'â': "a", 'ä': "a", 'ã': "a", 'å': "a",
	'é': "e", 'è': "e", 'ê': "e", 'ë': "e",
	'í': "i", 'ì': "i", 'î': "i", 'ï': "i",
	'ó': "o", 'ò': "o", 'ô': "o", 'ö': "o", 'õ': "o",
	'ú': "u", 'ù': "u", 'û': "u", 'ü': "u",
	'ç': "c", 'ñ': "n", 'ß': "ss", 'æ': "ae", 'œ': "oe",
	'Á': "A", 'À': "A", 'Â': "A", 'Ä': "A", 'Ã': "A", 'Å': "A",
	'É': "E", 'È': "E", 'Ê': "E", 'Ë': "E",
	'Í': "I", 'Ì': "I", 'Î': "I", 'Ï': "I",
	'Ó': "O", 'Ò': "O", 'Ô': "O", 'Ö': "O", 'Õ': "O",
	'Ú': "U", 'Ù': "U", 'Û': "U", 'Ü': "U",
	'Ç': "C", 'Ñ': "N", '’': "'", '‘': "'", '“': "\"", '”': "\"",
	'—': "-", '–': "-", '…': "...",
}

func (ic *iconvCmd) MapLine(line string) []string {
	if isASCII(line) {
		return []string{line}
	}
	var b strings.Builder
	for _, r := range line {
		switch {
		case r < 0x80:
			b.WriteRune(r)
		default:
			if t, ok := translitTable[r]; ok {
				b.WriteString(t)
			} else {
				b.WriteByte('?')
			}
		}
	}
	return []string{b.String()}
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// commCmd implements comm -23 - FILE: lines unique to stdin, with both
// inputs required to be sorted in C collation (unsorted input is an error,
// which is what makes the §3.2 probes choose sorted input generation for
// comm-based commands).
type commCmd struct {
	spec     string
	env      *Env
	file1    string // "-" for stdin, else an FS file
	file     string
	suppress [3]bool // columns 1..3
}

func newComm(spec string, args []string, env *Env) (Command, error) {
	c := &commCmd{spec: spec, env: env}
	var operands []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") && len(a) > 1 && a != "-" {
			for _, f := range a[1:] {
				switch f {
				case '1':
					c.suppress[0] = true
				case '2':
					c.suppress[1] = true
				case '3':
					c.suppress[2] = true
				default:
					return nil, fmt.Errorf("comm: unsupported flag -%c", f)
				}
			}
			continue
		}
		operands = append(operands, a)
	}
	if len(operands) != 2 {
		return nil, fmt.Errorf("comm: expected two operands, got %v", operands)
	}
	c.file1 = operands[0]
	c.file = operands[1]
	return c, nil
}

func (c *commCmd) Spec() string { return c.spec }

// NeedsSortedInput marks this command for sorted input generation.
func (c *commCmd) NeedsSortedInput() bool { return true }

// MultiInput reports whether comm reads two files (no stdin): such
// invocations are outside the single-stream synthesis model.
func (c *commCmd) MultiInput() bool { return c.file1 != "-" }

// ReadsEnv reports that Run's output depends on the simulated file
// system (the dictionary operand), so results must not be reused across
// environments.
func (c *commCmd) ReadsEnv() bool { return true }

func (c *commCmd) Run(input string) (string, error) {
	first := input
	if c.file1 != "-" {
		var err error
		first, err = c.env.FS.Read(c.file1)
		if err != nil {
			return "", fmt.Errorf("comm: %s", err)
		}
	}
	dict, err := c.env.FS.Read(c.file)
	if err != nil {
		return "", fmt.Errorf("comm: %s", err)
	}
	a := textio.Lines(first)
	b := textio.Lines(dict)
	if !sortedC(a) {
		return "", fmt.Errorf("comm: file 1 is not in sorted order")
	}
	if !sortedC(b) {
		return "", fmt.Errorf("comm: file 2 is not in sorted order")
	}
	var out strings.Builder
	emit := func(col int, line string) {
		if c.suppress[col-1] {
			return
		}
		indent := 0
		if col >= 2 && !c.suppress[0] {
			indent++
		}
		if col == 3 && !c.suppress[1] {
			indent++
		}
		out.WriteString(strings.Repeat("\t", indent))
		out.WriteString(line)
		out.WriteByte('\n')
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch cmp := strings.Compare(a[i], b[j]); {
		case cmp < 0:
			emit(1, a[i])
			i++
		case cmp > 0:
			emit(2, b[j])
			j++
		default:
			emit(3, a[i])
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		emit(1, a[i])
	}
	for ; j < len(b); j++ {
		emit(2, b[j])
	}
	return out.String(), nil
}

func sortedC(lines []string) bool {
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			return false
		}
	}
	return true
}
