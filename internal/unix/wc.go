package unix

import (
	"fmt"
	"strconv"
	"strings"

	"kumquat/internal/textio"
)

// wcCmd implements wc reading standard input: -l (lines), -w (words),
// -c (bytes), or the default "lines words bytes" triple. With stdin there is
// no file-name column and GNU prints the bare number(s).
type wcCmd struct {
	spec                string
	lines, words, bytes bool
}

func newWc(spec string, args []string, _ *Env) (Command, error) {
	w := &wcCmd{spec: spec}
	for _, a := range args {
		switch a {
		case "-l":
			w.lines = true
		case "-w":
			w.words = true
		case "-c":
			w.bytes = true
		default:
			return nil, fmt.Errorf("wc: unsupported argument %q", a)
		}
	}
	if !w.lines && !w.words && !w.bytes {
		w.lines, w.words, w.bytes = true, true, true
	}
	return w, nil
}

func (w *wcCmd) Spec() string { return w.spec }

func (w *wcCmd) Run(input string) (string, error) {
	nl := textio.CountByte('\n', input)
	var parts []string
	if w.lines {
		parts = append(parts, strconv.Itoa(nl))
	}
	if w.words {
		// Count through the field kernel: one pass, no per-word slice for
		// the whole (possibly multi-GB) input.
		parts = append(parts, strconv.Itoa(textio.CountFields(input)))
	}
	if w.bytes {
		parts = append(parts, strconv.Itoa(len(input)))
	}
	if len(parts) > 1 {
		// GNU right-aligns multi-column output; single counts are bare.
		var b strings.Builder
		for _, p := range parts {
			fmt.Fprintf(&b, "%7s", p)
		}
		return b.String() + "\n", nil
	}
	return parts[0] + "\n", nil
}
