package conformance

import (
	"context"
	"strings"
	"testing"

	"kumquat"
	"kumquat/internal/unix"
)

// TestGenDeterminism: the generator is a pure function of (seed, index) —
// the property that makes every report entry replayable.
func TestGenDeterminism(t *testing.T) {
	for i := 0; i < 50; i++ {
		a, b := GenCase(7, i), GenCase(7, i)
		if a.Script != b.Script || a.Corpus != b.Corpus || a.Source != b.Source || a.Profile != b.Profile {
			t.Fatalf("case %d not deterministic: %+v vs %+v", i, a, b)
		}
	}
	// Different seeds must explore different suites.
	same := 0
	for i := 0; i < 50; i++ {
		if GenCase(1, i).Script == GenCase(2, i).Script &&
			GenCase(1, i).Corpus == GenCase(2, i).Corpus {
			same++
		}
	}
	if same == 50 {
		t.Fatal("seeds 1 and 2 generated identical suites")
	}
}

// TestStageTemplatesParse: every template in the pool must parse into a
// command — a template that cannot parse would abort compilation of any
// pipeline that samples it.
func TestStageTemplatesParse(t *testing.T) {
	env := unix.DefaultEnv()
	for _, spec := range StageTemplates() {
		if _, err := unix.Parse(spec, env); err != nil {
			t.Errorf("template %q does not parse: %v", spec, err)
		}
	}
}

// TestGenCoversProfilesAndSources: over a modest index range the
// generator must hit every corpus profile and both input sources.
func TestGenCoversProfilesAndSources(t *testing.T) {
	seenProfile := map[string]bool{}
	stdin, file := false, false
	for i := 0; i < 200; i++ {
		c := GenCase(3, i)
		seenProfile[c.Profile] = true
		if c.Source == "" {
			stdin = true
		} else {
			file = true
			if !strings.HasPrefix(c.Script, "cat "+c.Source) {
				t.Fatalf("file-sourced case %d does not start with cat: %q", i, c.Script)
			}
		}
	}
	for _, p := range profiles {
		if !seenProfile[p.name] {
			t.Errorf("profile %q never generated in 200 cases", p.name)
		}
	}
	if !stdin || !file {
		t.Errorf("input sources not both covered: stdin=%v file=%v", stdin, file)
	}
}

// TestConfigsSweep: the sweep must cover the three non-serial modes, the
// worker counts {1, 4, GOMAXPROCS}, and a serial-combine-plane variant.
func TestConfigsSweep(t *testing.T) {
	configs := Configs()
	modes := map[string]bool{}
	ks := map[int]bool{}
	combineVariant := false
	for _, c := range configs {
		modes[c.Mode] = true
		ks[c.K] = true
		if c.CombineWorkers == 1 {
			combineVariant = true
		}
	}
	for _, m := range []string{"optimized", "unoptimized", "pipelined"} {
		if !modes[m] {
			t.Errorf("mode %q missing from sweep %v", m, configs)
		}
	}
	if modes["serial"] {
		t.Error("serial mode must not be part of the sweep (it is the oracle)")
	}
	if !ks[1] || !ks[4] {
		t.Errorf("worker counts 1 and 4 must be swept, got %v", ks)
	}
	if !combineVariant {
		t.Error("no combine-workers=1 variant in the sweep")
	}
}

// TestSuiteHealthy runs a compact end-to-end conformance suite — the
// same path kqconform drives — and requires zero divergences across
// every plane, serve replay included.
func TestSuiteHealthy(t *testing.T) {
	rep, err := Run(context.Background(), Options{
		Seed: 1, N: 12, Shrink: true, Serve: true, Adversarial: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("suite not OK: %+v", rep)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("unexpected divergences: %+v", rep.Divergences)
	}
	wantExecs := rep.Cases * (rep.Configs + 1)
	if rep.Executions != wantExecs {
		t.Fatalf("executions = %d, want %d (cases × (configs + oracle))", rep.Executions, wantExecs)
	}
	if rep.Serve == nil || rep.Serve.Cases != 12 || len(rep.Serve.Divergences) != 0 {
		t.Fatalf("serve replay unhealthy: %+v", rep.Serve)
	}
}

// TestStressCombinersHealthy stress-validates a representative command
// slice (merge-, add- and stitch-class combiners) on the adversarial
// corpora and requires zero failures.
func TestStressCombinersHealthy(t *testing.T) {
	sys := kumquat.New(kumquat.NewEnv())
	rep, err := StressCombiners(context.Background(), sys,
		[]string{"sort", "sort -rn", "uniq -c", "wc -l", "grep -c e", "tr A-Z a-z"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("stress failures: %+v", rep.Failures)
	}
	if rep.Specs == 0 || rep.Checks == 0 {
		t.Fatalf("stress validated nothing: %+v", rep)
	}
}

// TestRunCaseCountsExecutions: RunCase must execute oracle + one run per
// config.
func TestRunCaseCountsExecutions(t *testing.T) {
	sys := kumquat.New(kumquat.NewEnv())
	c := &Case{Script: "sort | uniq -c\n", Corpus: "b\na\nb\n", Profile: "hand"}
	configs := Configs()
	divs, execs, err := RunCase(context.Background(), sys, c, configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 0 {
		t.Fatalf("hand case diverged: %+v", divs)
	}
	if execs != len(configs)+1 {
		t.Fatalf("execs = %d, want %d", execs, len(configs)+1)
	}
}
