package conformance

import (
	"context"
	"testing"

	"kumquat"
)

// TestReplayClusterHandcrafted drives handcrafted cases through the full
// chaos topology — 3 workers behind fault-injecting proxies, a worker
// kill partway through — and requires byte-identity with the serial
// oracle on every case.
func TestReplayClusterHandcrafted(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos topology boot is too heavy for -short")
	}
	sys := kumquat.New(kumquat.NewEnv())
	cases := []*Case{
		{Script: "sort | uniq -c | sort -rn\n", Corpus: "b\na\nb\nc\na\nb\n", Profile: "hand"},
		{Script: "grep -c a\n", Corpus: "apple\nfig\npear\nbanana\n", Profile: "hand"},
		{Script: "tr a-z A-Z | sort\n", Corpus: "pear\napple\nfig\n", Profile: "hand"},
		{Script: "wc -l\n", Corpus: "", Profile: "hand-empty"},
		{Script: "sort -u\n", Corpus: "c\na\nc\nb\na\n", Profile: "hand"},
	}
	rep, err := ReplayCluster(context.Background(), sys, cases, ClusterOptions{Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("cluster divergences under chaos: %+v", rep.Divergences)
	}
	if rep.Cases != len(cases) {
		t.Fatalf("replay covered %d of %d cases", rep.Cases, len(cases))
	}
	if rep.Workers != 3 || rep.Shards == 0 {
		t.Fatalf("topology accounting wrong: %+v", rep)
	}
	// The kill schedule guarantees degradation for the suite's tail.
	if rep.WorkerKilledAt < 0 || rep.ClusterKilledAt <= rep.WorkerKilledAt {
		t.Fatalf("kill schedule not recorded: %+v", rep)
	}
	if rep.LocalRuns == 0 {
		t.Fatalf("killing every worker produced no local fallback: %+v", rep)
	}
	// Every case ran traced, so the replay must have sampled one stitched
	// trace: coordinator + worker spans in a single tree, with the chaos
	// plane's recoveries visible as span events whenever the sampled run
	// actually retried or speculated.
	if rep.TraceSample == nil {
		t.Fatal("chaos replay captured no trace sample")
	}
	if rep.TraceSpans < 2 {
		t.Fatalf("trace sample has %d spans, want a real tree", rep.TraceSpans)
	}
	if rep.TraceProcs < 2 {
		// Only an all-local run (possible on a tiny suite with early
		// kills) can legitimately collapse to one process; this suite's
		// kill schedule leaves healthy cases before the kills.
		t.Fatalf("trace sample covers %d processes, want coordinator+worker stitching: %+v",
			rep.TraceProcs, rep.TraceSample)
	}
	ids := map[string]bool{}
	for _, sp := range rep.TraceSample.Spans {
		ids[sp.TraceID] = true
	}
	if len(ids) != 1 {
		t.Fatalf("trace sample mixes %d trace ids, want exactly one", len(ids))
	}
	if rep.Retries > 0 && rep.Speculations > 0 &&
		rep.TraceRetryEvents == 0 && rep.TraceSpeculationEvents == 0 {
		t.Fatalf("suite retried (%d) and speculated (%d) but the sampled trace shows neither",
			rep.Retries, rep.Speculations)
	}
}
