package conformance

import (
	"context"
	"testing"

	"kumquat"
)

// TestReplayClusterHandcrafted drives handcrafted cases through the full
// chaos topology — 3 workers behind fault-injecting proxies, a worker
// kill partway through — and requires byte-identity with the serial
// oracle on every case.
func TestReplayClusterHandcrafted(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos topology boot is too heavy for -short")
	}
	sys := kumquat.New(kumquat.NewEnv())
	cases := []*Case{
		{Script: "sort | uniq -c | sort -rn\n", Corpus: "b\na\nb\nc\na\nb\n", Profile: "hand"},
		{Script: "grep -c a\n", Corpus: "apple\nfig\npear\nbanana\n", Profile: "hand"},
		{Script: "tr a-z A-Z | sort\n", Corpus: "pear\napple\nfig\n", Profile: "hand"},
		{Script: "wc -l\n", Corpus: "", Profile: "hand-empty"},
		{Script: "sort -u\n", Corpus: "c\na\nc\nb\na\n", Profile: "hand"},
	}
	rep, err := ReplayCluster(context.Background(), sys, cases, ClusterOptions{Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("cluster divergences under chaos: %+v", rep.Divergences)
	}
	if rep.Cases != len(cases) {
		t.Fatalf("replay covered %d of %d cases", rep.Cases, len(cases))
	}
	if rep.Workers != 3 || rep.Shards == 0 {
		t.Fatalf("topology accounting wrong: %+v", rep)
	}
	// The kill schedule guarantees degradation for the suite's tail.
	if rep.WorkerKilledAt < 0 || rep.ClusterKilledAt <= rep.WorkerKilledAt {
		t.Fatalf("kill schedule not recorded: %+v", rep)
	}
	if rep.LocalRuns == 0 {
		t.Fatalf("killing every worker produced no local fallback: %+v", rep)
	}
}
