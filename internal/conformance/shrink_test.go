package conformance

import (
	"context"
	"strings"
	"testing"

	"kumquat"
	"kumquat/internal/dsl"
	"kumquat/internal/unix"
)

// TestShrinkLines: ddmin must reduce to exactly the failure-relevant
// subset when the predicate needs two specific lines.
func TestShrinkLines(t *testing.T) {
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, strings.Repeat("x", i+1))
	}
	need1, need2 := lines[3], lines[31]
	fails := func(ls []string) bool {
		has1, has2 := false, false
		for _, l := range ls {
			has1 = has1 || l == need1
			has2 = has2 || l == need2
		}
		return has1 && has2
	}
	min := ShrinkLines(lines, fails)
	if len(min) != 2 || !fails(min) {
		t.Fatalf("ShrinkLines = %v, want exactly the two needed lines", min)
	}
}

// TestShrinkLinesSingleLine: a predicate needing one line reduces to it.
func TestShrinkLinesSingleLine(t *testing.T) {
	lines := []string{"a", "b", "needle", "c", "d", "e"}
	fails := func(ls []string) bool {
		for _, l := range ls {
			if l == "needle" {
				return true
			}
		}
		return false
	}
	min := ShrinkLines(lines, fails)
	if len(min) != 1 || min[0] != "needle" {
		t.Fatalf("ShrinkLines = %v, want [needle]", min)
	}
}

// TestBrokenCombinerCaughtAndShrunk is the acceptance regression for the
// conformance plane: a deliberately broken combiner — a merge bound to
// the *inverted* comparator while the command is an ascending sort —
// must be caught diverging from the serial oracle and shrunk to a
// minimal reproducing corpus (two lines: one out-of-order pair).
func TestBrokenCombinerCaughtAndShrunk(t *testing.T) {
	env := unix.DefaultEnv()
	sortCmd, err := unix.Parse("sort", env)
	if err != nil {
		t.Fatal(err)
	}
	invCmd, err := unix.Parse("sort -r", env)
	if err != nil {
		t.Fatal(err)
	}
	inverted, ok := invCmd.(*unix.SortCmd)
	if !ok {
		t.Fatalf("sort -r did not parse to *unix.SortCmd: %T", invCmd)
	}

	broken := CandidateCheck{
		Env:  &dsl.Env{RunF: sortCmd.Run, Merge: inverted},
		Cand: dsl.Candidate{Op: dsl.Merge{}},
		Run:  sortCmd.Run,
		K:    8,
		Path: PathFold,
	}
	// K = 2× the line count gives one line per chunk, keeping every
	// chunk output inside the broken comparator's legality domain — the
	// divergence is a wrong byte stream, not a domain rejection.
	corpus := "a\nb\nc\nd\n"
	if err := broken.Check(corpus); err == nil {
		t.Fatal("inverted merge was not caught on an ascending corpus")
	}

	min := broken.ShrinkCorpus(corpus)
	if err := broken.Check(min); err == nil {
		t.Fatalf("shrunk corpus %q no longer reproduces", min)
	}
	if lines := strings.Split(strings.TrimSuffix(min, "\n"), "\n"); len(lines) != 2 {
		t.Fatalf("minimal corpus = %q (%d lines), want exactly 2 lines", min, len(lines))
	}

	// The same check with the correct comparator passes on every
	// adversarial corpus — the harness flags broken combiners, not
	// healthy ones.
	correct := broken
	correct.Env = &dsl.Env{RunF: sortCmd.Run, Merge: sortCmd.(*unix.SortCmd)}
	for _, nc := range AdversarialCorpora() {
		if err := correct.Check(nc.Corpus); err != nil {
			t.Errorf("correct merge flagged on %q: %v", nc.Name, err)
		}
	}

	// The tree and pairwise paths catch the same inversion.
	for _, path := range []PathKind{PathTree, PathPairwise} {
		cc := broken
		cc.Path = path
		cc.Workers = 2
		if err := cc.Check(corpus); err == nil {
			t.Errorf("inverted merge not caught via %s path", path)
		}
	}
}

// TestShrinkCaseNotReproducible: ShrinkCase on a healthy case reports
// nil (nothing to minimize) instead of fabricating a reproduction.
func TestShrinkCaseNotReproducible(t *testing.T) {
	sys := kumquat.New(kumquat.NewEnv())
	c := &Case{Script: "sort | uniq\n", Corpus: "b\na\nb\n"}
	cfg := Config{Mode: kumquat.Optimized.String(), K: 4}
	if got := ShrinkCase(context.Background(), sys, c, cfg); got != nil {
		t.Fatalf("ShrinkCase on healthy case = %+v, want nil", got)
	}
}

// TestShrinkCaseDropsStages: a case whose divergence depends on one
// stage only must shrink to that stage. The divergence is simulated by a
// config whose mode string the harness cannot parse — instead we verify
// the stage-splitting helpers round-trip, which ShrinkCase relies on.
func TestStageSplitRoundTrip(t *testing.T) {
	script := "cat in.txt | tr A-Z a-z | sort | uniq -c\n"
	stages := splitStages(script)
	if len(stages) != 4 || stages[0] != "cat in.txt" || stages[3] != "uniq -c" {
		t.Fatalf("splitStages = %v", stages)
	}
	if joinStages(stages) != script {
		t.Fatalf("joinStages(splitStages(s)) = %q, want %q", joinStages(stages), script)
	}
}

// TestJoinLinesTrailingNewline: corpus reassembly preserves the
// trailing-newline state the case was generated with.
func TestJoinLinesTrailingNewline(t *testing.T) {
	if got := joinLines([]string{"a", "b"}, true); got != "a\nb\n" {
		t.Fatalf("terminated join = %q", got)
	}
	if got := joinLines([]string{"a", "b"}, false); got != "a\nb" {
		t.Fatalf("unterminated join = %q", got)
	}
	if got := joinLines(nil, true); got != "" {
		t.Fatalf("empty join = %q", got)
	}
}
