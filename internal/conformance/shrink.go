package conformance

import (
	"context"
	"strings"

	"kumquat"
)

// ShrinkCase minimizes a diverging case: it greedily drops pipeline
// stages, then ddmin-reduces the corpus lines, re-checking after every
// reduction that the case still diverges from the serial oracle under
// cfg. It returns the minimal reproducing case, or nil when the original
// divergence does not reproduce (a flaky failure worth reporting as-is).
func ShrinkCase(ctx context.Context, sys *kumquat.System, c *Case, cfg Config) *Case {
	fails := func(c *Case) bool { return caseDiverges(ctx, sys, c, cfg) }
	if !fails(c) {
		return nil
	}
	cur := *c

	// Pass 1: drop stages, keeping the `cat FILE` source (dropping it
	// would silently change the input plumbing, not the computation).
	stages := splitStages(cur.Script)
	for i := 0; i < len(stages); {
		if cur.Source != "" && i == 0 {
			i++
			continue
		}
		if len(nonSourceStages(stages, cur.Source)) <= 1 {
			break
		}
		candidate := cur
		candidate.Script = joinStages(append(append([]string{}, stages[:i]...), stages[i+1:]...))
		if fails(&candidate) {
			cur = candidate
			stages = splitStages(cur.Script)
			continue
		}
		i++
	}

	// Pass 2: ddmin the corpus lines.
	cur.Corpus = shrinkCorpus(cur.Corpus, func(s string) bool {
		candidate := cur
		candidate.Corpus = s
		return fails(&candidate)
	})
	return &cur
}

// shrinkCorpus ddmin-minimizes a corpus under a string-level failure
// predicate, preserving the trailing-newline state (the boundary the
// stitch combiners care about). It is the shared corpus pass behind
// ShrinkCase, CandidateCheck.ShrinkCorpus and the stress shrinker;
// fails must be true for the input, which is returned unchanged when it
// is not.
func shrinkCorpus(corpus string, fails func(string) bool) string {
	if corpus == "" || !fails(corpus) {
		return corpus
	}
	terminated := strings.HasSuffix(corpus, "\n")
	lines := strings.Split(strings.TrimSuffix(corpus, "\n"), "\n")
	lines = ShrinkLines(lines, func(ls []string) bool {
		return fails(joinLines(ls, terminated))
	})
	return joinLines(lines, terminated)
}

// ShrinkLines is a ddmin-style minimizer: it removes progressively
// smaller chunks of lines while fails keeps reporting the failure, and
// returns a subset from which no single chunk can be removed. fails must
// be true for the input.
func ShrinkLines(lines []string, fails func([]string) bool) []string {
	granularity := 2
	for len(lines) >= 2 {
		chunk := (len(lines) + granularity - 1) / granularity
		reduced := false
		for start := 0; start < len(lines); start += chunk {
			end := start + chunk
			if end > len(lines) {
				end = len(lines)
			}
			candidate := make([]string, 0, len(lines)-(end-start))
			candidate = append(candidate, lines[:start]...)
			candidate = append(candidate, lines[end:]...)
			if fails(candidate) {
				lines = candidate
				if granularity > 2 {
					granularity--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if granularity >= len(lines) {
				break
			}
			granularity *= 2
			if granularity > len(lines) {
				granularity = len(lines)
			}
		}
	}
	return lines
}

// caseDiverges recompiles and re-runs a candidate case, reporting whether
// it still diverges from the serial oracle under cfg.
func caseDiverges(ctx context.Context, sys *kumquat.System, c *Case, cfg Config) bool {
	plan, err := compileCase(ctx, sys, c)
	if err != nil {
		return false
	}
	want, wantErr := execCase(ctx, plan, c, Config{Mode: kumquat.Serial.String(), K: 1})
	got, gotErr := execCase(ctx, plan, c, cfg)
	_, ok := diverges(want, wantErr, got, gotErr)
	return !ok
}

// splitStages splits a one-pipeline script back into its stage specs.
func splitStages(script string) []string {
	parts := strings.Split(strings.TrimSuffix(script, "\n"), " | ")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
	}
	return out
}

// joinStages rebuilds the script text from stage specs.
func joinStages(stages []string) string { return strings.Join(stages, " | ") + "\n" }

// nonSourceStages counts the stages that are not the `cat FILE` source.
func nonSourceStages(stages []string, source string) []string {
	if source == "" || len(stages) == 0 {
		return stages
	}
	return stages[1:]
}

// joinLines rebuilds a corpus from lines, restoring the original
// trailing-newline state.
func joinLines(lines []string, terminated bool) string {
	if len(lines) == 0 {
		return ""
	}
	s := strings.Join(lines, "\n")
	if terminated {
		s += "\n"
	}
	return s
}
