package conformance

import (
	"context"
	"strings"
	"testing"

	"kumquat/internal/dataflow"
	"kumquat/internal/pipeline"
	"kumquat/internal/synth"
	"kumquat/internal/unix"
)

// TestBrokenElideRuleCaughtAndShrunk proves the differential net catches
// an illegal optimizer rewrite: the elide-combine rule is deliberately
// broken (its order-insensitivity legality check forced to true), which
// elides the k-way merge of a sort feeding an order-SENSITIVE consumer.
// The fused execution must then diverge from the serial oracle, and the
// ddmin shrinker must reduce the reproducing corpus to the minimal
// witness — two out-of-order lines split across chunks.
func TestBrokenElideRuleCaughtAndShrunk(t *testing.T) {
	eng := synth.New(unix.DefaultEnv(), synth.Options{Seed: 1})
	corpus := "pear\napple\nfig\nquince\nloquat\nbanana\nkumquat\nmedlar\n"
	eng.Env.FS.Register("in.txt", corpus)
	s, err := pipeline.ParseScript("cat in.txt | sort | sed 's/^/> /'\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pipeline.Compile(s.Pipelines[0], eng)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the legal program pushes the sort's merge into the
	// consumer's read path instead of eliding it.
	if plan.Program.Fired[dataflow.RulePushSortMerge] != 1 {
		t.Fatalf("legal program rewrites = %v, want push-sort-merge=1", plan.Program.Fired)
	}

	// Break the rule: every consumer now counts as order-insensitive.
	plan.Relower(dataflow.Options{UnsafeAssumeOrderInsensitive: true})
	if plan.Program.Fired[dataflow.RuleElideCombine] == 0 {
		t.Fatal("unsafe lowering did not fire elide-combine; nothing to catch")
	}

	exec := func(c string, mode pipeline.Mode, k int) (string, error) {
		eng.Env.FS.Register("in.txt", c)
		var out strings.Builder
		_, err := plan.Execute(context.Background(), eng.Env, nil, &out, mode, k)
		return out.String(), err
	}
	fails := func(c string) bool {
		want, werr := exec(c, pipeline.ModeSerial, 1)
		got, gerr := exec(c, pipeline.ModeOptimized, 4)
		return werr == nil && gerr == nil && got != want
	}
	if !fails(corpus) {
		t.Fatal("broken elision did not diverge from the serial oracle — the net has a hole")
	}

	shrunk := shrinkCorpus(corpus, fails)
	lines := strings.Split(strings.TrimSuffix(shrunk, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("shrunk corpus = %q (%d lines), want the minimal 2-line witness", shrunk, len(lines))
	}
	if lines[0] <= lines[1] {
		t.Errorf("shrunk witness %q is already sorted; it cannot expose the lost merge", shrunk)
	}
	if !fails(shrunk) {
		t.Error("shrunk corpus no longer reproduces the divergence")
	}

	// Restoring the legal program must close the divergence on both the
	// original and the shrunk corpus.
	plan.Relower(dataflow.Options{})
	if fails(corpus) || fails(shrunk) {
		t.Error("legal program diverges — the broken behaviour leaked into the default lowering")
	}
}
