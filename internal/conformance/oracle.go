package conformance

import (
	"context"
	"fmt"
	"strings"

	"kumquat"
)

// Config is one execution configuration of the differential sweep: an
// execution mode, a data-parallelism degree, and a combine-plane worker
// bound (0 = the executor's default).
type Config struct {
	// Mode is the execution mode name ("optimized", "unoptimized",
	// "pipelined") — the JSON-friendly form of kumquat.Mode.
	Mode string `json:"mode"`
	// K is the data-parallelism degree.
	K int `json:"k"`
	// CombineWorkers bounds the combine plane (0 = default).
	CombineWorkers int `json:"combine_workers,omitempty"`
	// NoFuse disables the graph-walking fused executor for optimized-mode
	// rows, pinning the legacy stage-at-a-time path. Fusion is on by
	// default, so the plain optimized rows exercise the fused program and
	// these are the explicit fuse-off ablation.
	NoFuse bool `json:"no_fuse,omitempty"`
}

// Configs enumerates the sweep every case runs under: optimized and
// unoptimized at every worker count in {1, 4, GOMAXPROCS}, each mode
// once more with the combine plane forced serial at the widest k,
// optimized fuse-off ablation rows at every worker count (the plain
// optimized rows run the fused dataflow program, so fused and unfused
// executions are both held to the oracle), and the pipelined (T_orig)
// configuration. The serial oracle is run separately and is not part of
// the sweep.
func Configs() []Config {
	ks := workerCounts()
	widest := ks[0]
	for _, k := range ks {
		if k > widest {
			widest = k
		}
	}
	var out []Config
	for _, mode := range []kumquat.Mode{kumquat.Optimized, kumquat.Unoptimized} {
		for _, k := range ks {
			out = append(out, Config{Mode: mode.String(), K: k})
		}
		out = append(out, Config{Mode: mode.String(), K: widest, CombineWorkers: 1})
	}
	for _, k := range ks {
		out = append(out, Config{Mode: kumquat.Optimized.String(), K: k, NoFuse: true})
	}
	out = append(out, Config{Mode: kumquat.Pipelined.String(), K: 1})
	return out
}

// Divergence records one case × configuration whose result differed from
// the serial oracle.
type Divergence struct {
	// Case replays the failure (Corpus truncated for the report when
	// large; Seed+Index regenerate it exactly).
	Case *Case `json:"case"`
	// Config is the diverging execution configuration.
	Config Config `json:"config"`
	// Detail is a human-readable summary of the first difference.
	Detail string `json:"detail"`
	// Shrunk is the minimized reproducing case — possibly identical to
	// Case when no reduction preserved the failure. It is nil when
	// shrinking was disabled or the divergence did not reproduce on the
	// shrinker's re-run (a flaky failure).
	Shrunk *Case `json:"shrunk,omitempty"`
}

// oracleResult is one case's serial-oracle outcome, computed once and
// reused by every plane that diffs against it.
type oracleResult struct {
	out string
	err error
}

// RunCase compiles one case and executes it under every config,
// byte-diffing each result against the serial oracle. It returns the
// divergences and the number of executions performed (oracle included).
// A compile error is a generator bug and is returned as err.
func RunCase(ctx context.Context, sys *kumquat.System, c *Case, configs []Config) ([]Divergence, int, error) {
	divs, execs, _, _, err := runCase(ctx, sys, c, configs)
	return divs, execs, err
}

// runCase is RunCase plus the oracle outcome and the compiled plan, so
// callers that diff further planes against the same case (the serve
// replay) reuse the oracle instead of re-running the serial execution,
// and Run aggregates the plan's optimizer fire counters into the report.
func runCase(ctx context.Context, sys *kumquat.System, c *Case, configs []Config) ([]Divergence, int, oracleResult, *kumquat.Plan, error) {
	plan, err := compileCase(ctx, sys, c)
	if err != nil {
		return nil, 0, oracleResult{}, nil, err
	}
	want, wantErr := execCase(ctx, plan, c, Config{Mode: kumquat.Serial.String(), K: 1})
	oracle := oracleResult{out: want, err: wantErr}
	execs := 1
	var divs []Divergence
	for _, cfg := range configs {
		got, gotErr := execCase(ctx, plan, c, cfg)
		execs++
		if err := ctx.Err(); err != nil {
			return nil, execs, oracle, plan, err
		}
		if detail, ok := diverges(want, wantErr, got, gotErr); !ok {
			divs = append(divs, Divergence{Case: c.forReport(), Config: cfg, Detail: detail})
		}
	}
	return divs, execs, oracle, plan, nil
}

// compileCase parallelizes the case's script in a private environment
// (its corpus registered when file-sourced) through the shared system, so
// combiner caches stay warm across cases.
func compileCase(ctx context.Context, sys *kumquat.System, c *Case) (*kumquat.Plan, error) {
	env := kumquat.NewEnv()
	if c.Source != "" {
		env.Register(c.Source, c.Corpus)
	}
	return sys.ParallelizeInEnv(ctx, env, c.Script)
}

// execCase runs the compiled plan under one configuration and returns
// the output stream (the corpus streams in as stdin for stdin-sourced
// cases).
func execCase(ctx context.Context, plan *kumquat.Plan, c *Case, cfg Config) (string, error) {
	mode, err := kumquat.ParseMode(cfg.Mode)
	if err != nil {
		return "", err
	}
	opts := []kumquat.ExecOption{
		kumquat.WithMode(mode),
		kumquat.WithParallelism(cfg.K),
	}
	if cfg.CombineWorkers > 0 {
		opts = append(opts, kumquat.WithCombineWorkers(cfg.CombineWorkers))
	}
	if cfg.NoFuse {
		opts = append(opts, kumquat.WithFuse(false))
	}
	if c.Source == "" {
		opts = append(opts, kumquat.WithStdin(strings.NewReader(c.Corpus)))
	}
	rep, err := plan.Execute(ctx, opts...)
	if err != nil {
		return "", err
	}
	return rep.Output, nil
}

// diverges compares a configuration's result to the oracle's. Errors
// must agree in presence; outputs must agree byte-for-byte. ok is false
// on divergence, with detail describing the first difference.
func diverges(want string, wantErr error, got string, gotErr error) (detail string, ok bool) {
	switch {
	case wantErr != nil && gotErr != nil:
		return "", true
	case wantErr != nil:
		return fmt.Sprintf("oracle failed (%v) but configuration succeeded", wantErr), false
	case gotErr != nil:
		return fmt.Sprintf("oracle succeeded but configuration failed: %v", gotErr), false
	case want == got:
		return "", true
	}
	return diffSummary(want, got), false
}

// diffSummary pinpoints the first differing byte and shows a short
// window of both streams around it.
func diffSummary(want, got string) string {
	i := 0
	for i < len(want) && i < len(got) && want[i] == got[i] {
		i++
	}
	return fmt.Sprintf("first difference at byte %d: oracle %q vs got %q (lengths %d vs %d)",
		i, window(want, i), window(got, i), len(want), len(got))
}

// window extracts a short context slice of s around offset i.
func window(s string, i int) string {
	lo := i - 12
	if lo < 0 {
		lo = 0
	}
	hi := i + 24
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// reportCorpusCap bounds the corpus bytes embedded in a report entry;
// Seed+Index regenerate the full corpus when it is larger.
const reportCorpusCap = 2048

// forReport returns the case with its corpus truncated for JSON output.
// The cut backs off to a rune boundary so a multi-byte corpus never
// turns into invalid UTF-8 in the report.
func (c *Case) forReport() *Case {
	if len(c.Corpus) <= reportCorpusCap {
		return c
	}
	cut := reportCorpusCap
	for cut > 0 && c.Corpus[cut]&0xC0 == 0x80 {
		cut--
	}
	cc := *c
	cc.Corpus = cc.Corpus[:cut] + "…(truncated)"
	return &cc
}
