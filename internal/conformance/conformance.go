// Package conformance is the test plane of the reproduction: a
// differential-testing subsystem that generates random-but-valid pipelines
// and corpora from the unix command catalog, runs each through every
// execution mode × worker count × combine-worker setting, and diffs the
// result byte-for-byte against the serial oracle (the paper's u_1
// configuration — the semantics every parallel configuration must
// reproduce exactly).
//
// The plane has four parts, mirroring the four runtime planes it guards:
//
//   - gen.go: a seeded, deterministic generator of pipeline scripts and
//     input corpora (GenCase), so every failure is replayable from
//     (seed, index) alone;
//   - oracle.go: the differential harness (RunCase) that executes one
//     case under every Config and reports Divergences;
//   - shrink.go: ddmin-style minimization (ShrinkCase, ShrinkLines) that
//     reduces a diverging case to a minimal reproducing corpus and stage
//     list;
//   - adversarial.go + serve.go: combiner stress validation on
//     adversarial corpora through the fold, tree and k-way combine paths,
//     and a replay of the generated suite through a live kumquatd over
//     the typed client, holding the HTTP plane to the same oracle.
//
// The kqconform command (cmd/kqconform) drives Run with CLI flags and
// emits the Report as JSON; CI runs it as a smoke alongside the fuzz
// targets FuzzParser (internal/pipeline) and FuzzCombiner (internal/dsl).
package conformance

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"kumquat"
)

// Options configures one conformance run.
type Options struct {
	// Seed is the generator seed; the same (Seed, N) always produces the
	// same suite.
	Seed int64
	// N is the number of generated cases.
	N int
	// Shrink minimizes every diverging case before reporting it.
	Shrink bool
	// FailFast stops the run at the first diverging case, shrinking its
	// divergence immediately (even when Shrink is off) so the tightest
	// repro surfaces without waiting for the rest of the suite.
	FailFast bool
	// Serve replays the generated suite through a live loopback kumquatd
	// and holds the HTTP plane to the same serial oracle.
	Serve bool
	// Cluster replays the generated suite through a loopback 3-worker
	// cluster behind fault-injecting proxies (with mid-suite worker
	// kills) and holds the chaos plane to the same serial oracle.
	Cluster bool
	// Adversarial stress-validates the synthesized combiners of the
	// generator's command pool on the adversarial corpora.
	Adversarial bool
	// SynthWorkers bounds the synthesis engine's worker pool
	// (0 = GOMAXPROCS).
	SynthWorkers int
}

// Report is kqconform's JSON output: the run configuration, how much was
// executed, and every divergence that survived shrinking.
type Report struct {
	// Seed and Cases echo the generator configuration.
	Seed  int64 `json:"seed"`
	Cases int   `json:"cases"`
	// Configs is the number of execution configurations each case ran
	// under (in addition to the serial oracle run).
	Configs int `json:"configs"`
	// Executions counts every plan execution, oracle runs included.
	Executions int `json:"executions"`
	// Rewrites counts, per rule, how often the dataflow optimizer's
	// rewrites fired across the suite's compiled plans — the proof that a
	// green run actually exercised each fusion rule rather than never
	// triggering it.
	Rewrites map[string]int `json:"rewrites"`
	// Divergences lists every case × configuration whose output differed
	// from the serial oracle (empty on a healthy tree).
	Divergences []Divergence `json:"divergences"`
	// Adversarial summarizes the combiner stress validation (nil when
	// disabled).
	Adversarial *StressReport `json:"adversarial,omitempty"`
	// Serve summarizes the kumquatd replay (nil when disabled).
	Serve *ServeReport `json:"serve,omitempty"`
	// Cluster summarizes the chaos cluster replay (nil when disabled).
	Cluster *ChaosReport `json:"cluster,omitempty"`
	// WallMS is the whole run's wall-clock time.
	WallMS float64 `json:"wall_ms"`
	// OK is true when no plane diverged from the oracle.
	OK bool `json:"ok"`
}

// Run executes the full conformance suite: N generated cases through
// every execution configuration, optional combiner stress validation,
// and an optional replay through a live kumquatd. All cases share one
// kumquat.System so the combiner caches warm across cases exactly as
// they do in production.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.N <= 0 {
		opts.N = 25
	}
	start := time.Now()
	sys := kumquat.NewWithOptions(kumquat.NewEnv(),
		kumquat.Options{Seed: 1, Workers: opts.SynthWorkers})
	configs := Configs()
	rep := &Report{Seed: opts.Seed, Cases: opts.N, Configs: len(configs),
		Divergences: []Divergence{}, Rewrites: map[string]int{}}
	cases := make([]*Case, 0, opts.N)
	oracles := make([]oracleResult, 0, opts.N)
	for i := 0; i < opts.N; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := GenCase(opts.Seed, i)
		cases = append(cases, c)
		divs, execs, oracle, plan, err := runCase(ctx, sys, c, configs)
		if err != nil {
			return nil, fmt.Errorf("conformance: case %d: %w", i, err)
		}
		oracles = append(oracles, oracle)
		rep.Executions += execs
		for rule, n := range plan.Rewrites() {
			rep.Rewrites[rule] += n
		}
		for _, d := range divs {
			if opts.Shrink || opts.FailFast {
				d.Shrunk = ShrinkCase(ctx, sys, c, d.Config)
			}
			rep.Divergences = append(rep.Divergences, d)
			if opts.FailFast {
				break
			}
		}
		if opts.FailFast && len(rep.Divergences) > 0 {
			rep.Cases = i + 1
			break
		}
	}
	if opts.Adversarial {
		sr, err := StressCombiners(ctx, sys, StressSpecs(), opts.Shrink)
		if err != nil {
			return nil, err
		}
		rep.Adversarial = sr
	}
	if opts.Serve {
		sr, err := replayServe(ctx, sys, cases,
			ReplayOptions{K: replayParallelism(), SynthWorkers: opts.SynthWorkers}, oracles)
		if err != nil {
			return nil, err
		}
		rep.Serve = sr
	}
	if opts.Cluster {
		cr, err := ReplayCluster(ctx, sys, cases,
			ClusterOptions{Seed: opts.Seed, SynthWorkers: opts.SynthWorkers}, oracles)
		if err != nil {
			return nil, err
		}
		rep.Cluster = cr
	}
	rep.WallMS = float64(time.Since(start).Microseconds()) / 1000
	rep.OK = len(rep.Divergences) == 0 &&
		(rep.Adversarial == nil || len(rep.Adversarial.Failures) == 0) &&
		(rep.Serve == nil || len(rep.Serve.Divergences) == 0) &&
		(rep.Cluster == nil || len(rep.Cluster.Divergences) == 0)
	return rep, nil
}

// replayParallelism is the data-parallelism degree the serve replay asks
// the daemon for: wide enough to chunk, independent of the host's CPUs so
// the suite is reproducible across machines.
func replayParallelism() int { return 4 }

// workerCounts is the deduplicated worker-count sweep {1, 4, GOMAXPROCS}.
func workerCounts() []int {
	ks := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	out := ks[:0]
	for _, k := range ks {
		if k >= 1 && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
