package conformance

import (
	"math/rand"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// Case is one generated conformance scenario: a pipeline script plus the
// input corpus it runs on. Cases are fully determined by (Seed, Index),
// so a report entry alone replays the failure.
type Case struct {
	// Seed and Index identify the case within its run.
	Seed  int64 `json:"seed"`
	Index int   `json:"index"`
	// Script is the one-pipeline shell script, newline-terminated.
	Script string `json:"script"`
	// Source is the input file the script reads via `cat FILE` ("" when
	// the pipeline reads standard input).
	Source string `json:"source,omitempty"`
	// Corpus is the input stream (registered as Source, or fed as stdin).
	Corpus string `json:"corpus"`
	// Profile names the corpus generator that produced Corpus.
	Profile string `json:"profile"`
}

// StageTemplates is the pool of command specs the generator draws
// pipeline stages from. Every entry parses under unix.Parse and accepts
// arbitrary text input, so any sampled sequence is a valid pipeline; the
// pool spans the synthesis outcomes that matter — concat-class line
// mappers, add-class counters, stitch-class boundary merges, merge-class
// sorts, and rerun-only stages the planner keeps sequential.
func StageTemplates() []string {
	return []string{
		"tr A-Z a-z",
		"tr a-z A-Z",
		`tr -cs A-Za-z '\n'`,
		`tr -d '[:punct:]'`,
		"sort",
		"sort -r",
		"sort -n",
		"sort -rn",
		"sort -u",
		"sort -k1n",
		"uniq",
		"uniq -c",
		"grep a",
		"grep -v the",
		"grep -c e",
		"grep 'a.*e'",
		"wc -l",
		"wc -w",
		"wc",
		"cut -c 1-4",
		"cut -d ' ' -f 1",
		"cut -d ',' -f 1,2",
		"head -n 5",
		"tail -n 5",
		"sed 5q",
		"sed 's/a/X/'",
		"rev",
	}
}

// fusionMotifs are stage runs that each provoke one of the dataflow
// optimizer's rewrites. The generator splices a motif into about half the
// cases so a default suite demonstrably exercises every rule — the
// report's per-rule fire counters prove it — rather than leaving rule
// coverage to random adjacency.
var fusionMotifs = [][]string{
	// fuse-streamers: adjacent parallel concat-class line mappers fuse
	// into one per-chunk pass.
	{"tr A-Z a-z", "grep a", "cut -c 1-4"},
	{`tr -d '[:punct:]'`, "sed 's/a/X/'"},
	{"rev", "tr a-z A-Z"},
	// elide-combine: a sort-class (permutation-closed) stage feeding an
	// order-insensitive reducer; the k-way merge is skipped outright.
	{"sort", "wc -l"},
	{"sort -n", "grep -c e"},
	{"sort -r", "wc"},
	// push-sort-merge: a sort-class stage feeding a streaming but
	// order-sensitive line mapper; the merge happens, but lazily inside
	// the consumer's read loop.
	{"sort", "grep a"},
	{"sort -r", "sed 's/a/X/'"},
	{"sort -n", "cut -c 1-4"},
}

// vocab is the word pool corpus lines draw from; small enough that
// duplicate runs (uniq, uniq -c territory) occur naturally.
var vocab = []string{
	"pear", "apple", "fig", "quince", "loquat", "medlar", "kumquat",
	"plum", "the", "and", "of", "to", "in", "a", "Light", "sea",
}

// unicodeVocab exercises multi-byte content through every plane.
var unicodeVocab = []string{
	"café", "naïve", "Zürich", "λάμδα", "東京", "встреча", "ökonomie", "piñata",
}

// profiles are the corpus shapes, by name. Each generator returns raw
// lines (no terminators); GenCase joins them and decides the trailing
// newline.
var profiles = []struct {
	name string
	gen  func(r *rand.Rand) []string
}{
	{"words", genWords},
	{"numbers", genNumbers},
	{"csv", genCSV},
	{"duplicates", genDuplicates},
	{"sorted", genSorted},
	{"reverse-sorted", genReverseSorted},
	{"unicode", genUnicode},
	{"long-lines", genLongLines},
	{"page-boundary", genPageBoundary},
	{"blanks", genBlanks},
	{"empty", func(*rand.Rand) []string { return nil }},
	{"mixed", genMixed},
}

// GenCase deterministically generates case i of the run with the given
// seed: a pipeline of 1–4 stages from StageTemplates — with a fusion
// motif spliced in about half the time — a corpus from a randomly chosen
// profile, and a stdin-vs-`cat FILE` input source.
func GenCase(seed int64, i int) *Case {
	r := rand.New(rand.NewSource(seed ^ (int64(i)+1)*0x5851F42D4C957F2D))
	c := &Case{Seed: seed, Index: i}

	p := profiles[r.Intn(len(profiles))]
	c.Profile = p.name
	lines := p.gen(r)
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	c.Corpus = b.String()
	// Some corpora drop the trailing newline — the boundary case the
	// stitch combiners and Theorem 5's stream precondition care about.
	if c.Corpus != "" && r.Intn(6) == 0 {
		c.Corpus = c.Corpus[:len(c.Corpus)-1]
	}

	templates := StageTemplates()
	n := 1 + r.Intn(4)
	stages := make([]string, 0, n+1)
	if r.Intn(2) == 0 {
		c.Source = "in.txt"
		stages = append(stages, "cat in.txt")
	}
	for j := 0; j < n; j++ {
		stages = append(stages, templates[r.Intn(len(templates))])
	}
	if r.Intn(2) == 0 {
		m := fusionMotifs[r.Intn(len(fusionMotifs))]
		// Splice after the source (if any), at a random offset among the
		// random stages, so motifs see arbitrary upstream and downstream
		// neighbours.
		at := len(stages) - n + r.Intn(n+1)
		spliced := make([]string, 0, len(stages)+len(m))
		spliced = append(spliced, stages[:at]...)
		spliced = append(spliced, m...)
		spliced = append(spliced, stages[at:]...)
		stages = spliced
	}
	c.Script = strings.Join(stages, " | ") + "\n"
	return c
}

// word returns a random vocabulary word, occasionally upper-cased.
func word(r *rand.Rand) string {
	w := vocab[r.Intn(len(vocab))]
	if r.Intn(8) == 0 {
		w = strings.ToUpper(w)
	}
	return w
}

// genWords produces lines of 1–5 space-separated words.
func genWords(r *rand.Rand) []string {
	lines := make([]string, r.Intn(120))
	for i := range lines {
		parts := make([]string, 1+r.Intn(5))
		for j := range parts {
			parts[j] = word(r)
		}
		lines[i] = strings.Join(parts, " ")
	}
	return lines
}

// genNumbers produces integer lines, some negative, so sort -n and the
// add-class combiners see real numeric content.
func genNumbers(r *rand.Rand) []string {
	lines := make([]string, r.Intn(100))
	for i := range lines {
		lines[i] = strconv.Itoa(r.Intn(20000) - 1000)
	}
	return lines
}

// genCSV produces comma-separated rows of words and numbers (cut -d ','
// territory).
func genCSV(r *rand.Rand) []string {
	lines := make([]string, r.Intn(80))
	for i := range lines {
		fields := make([]string, 2+r.Intn(4))
		for j := range fields {
			if r.Intn(3) == 0 {
				fields[j] = strconv.Itoa(r.Intn(500))
			} else {
				fields[j] = word(r)
			}
		}
		lines[i] = strings.Join(fields, ",")
	}
	return lines
}

// genDuplicates repeats a handful of distinct lines, producing the long
// duplicate runs uniq's boundary combiner must merge correctly.
func genDuplicates(r *rand.Rand) []string {
	distinct := make([]string, 2+r.Intn(4))
	for i := range distinct {
		distinct[i] = word(r)
	}
	lines := make([]string, 10+r.Intn(90))
	for i := range lines {
		lines[i] = distinct[r.Intn(len(distinct))]
	}
	return lines
}

// genSorted produces an already-sorted corpus (merge's legality domain;
// byte-wise order matches the substrate's C collation).
func genSorted(r *rand.Rand) []string {
	lines := genWords(r)
	sort.Strings(lines)
	return lines
}

// genReverseSorted produces a descending corpus — sorted under the
// inverted comparator, unsorted under the default one.
func genReverseSorted(r *rand.Rand) []string {
	lines := genSorted(r)
	slices.Reverse(lines)
	return lines
}

// genUnicode produces multi-byte lines.
func genUnicode(r *rand.Rand) []string {
	lines := make([]string, r.Intn(60))
	for i := range lines {
		lines[i] = unicodeVocab[r.Intn(len(unicodeVocab))] + " " + word(r)
	}
	return lines
}

// genLongLines produces a few lines of 2–8 KB, so chunking and the
// combine plane see per-line payloads far above the buffer sweet spots.
func genLongLines(r *rand.Rand) []string {
	lines := make([]string, 1+r.Intn(4))
	for i := range lines {
		var b strings.Builder
		for b.Len() < 2048+r.Intn(6144) {
			b.WriteString(word(r))
			b.WriteByte(' ')
		}
		lines[i] = strings.TrimRight(b.String(), " ")
	}
	return lines
}

// genPageBoundary sizes lines so several 4 KiB page boundaries land
// mid-line: chunk views over an mmap'd ingest then straddle pages — the
// corpus shape the zero-copy data plane's slicing must get right.
func genPageBoundary(r *rand.Rand) []string {
	const page = 4096
	pages := 2 + r.Intn(3)
	var lines []string
	total := 0
	for total < pages*page {
		n := page/2 + r.Intn(page)
		var b strings.Builder
		for b.Len() < n {
			b.WriteString(word(r))
			b.WriteByte(' ')
		}
		l := strings.TrimRight(b.String(), " ")
		lines = append(lines, l)
		total += len(l) + 1
	}
	return lines
}

// genBlanks mixes word lines with empty lines (~1 in 3).
func genBlanks(r *rand.Rand) []string {
	lines := genWords(r)
	for i := range lines {
		if r.Intn(3) == 0 {
			lines[i] = ""
		}
	}
	return lines
}

// genMixed samples every other profile's line shape into one corpus.
func genMixed(r *rand.Rand) []string {
	var lines []string
	for _, g := range []func(*rand.Rand) []string{genWords, genNumbers, genCSV, genUnicode, genBlanks} {
		ls := g(r)
		if len(ls) > 20 {
			ls = ls[:20]
		}
		lines = append(lines, ls...)
	}
	// One deterministic shuffle so shapes interleave.
	r.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
	return lines
}
