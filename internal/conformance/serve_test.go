package conformance

import (
	"context"
	"testing"

	"kumquat"
)

// TestReplayServeHandcrafted holds the HTTP plane to the serial oracle
// on handcrafted cases covering both input plumbings: a stdin-fed
// pipeline and a `cat FILE` source the daemon must bind the request
// body to.
func TestReplayServeHandcrafted(t *testing.T) {
	sys := kumquat.New(kumquat.NewEnv())
	cases := []*Case{
		{Script: "sort | uniq -c | sort -rn\n", Corpus: "b\na\nb\nc\na\nb\n", Profile: "hand"},
		{Script: "cat in.txt | tr A-Z a-z | sort | uniq\n", Source: "in.txt",
			Corpus: "Pear\napple\nPEAR\nfig\n", Profile: "hand"},
		{Script: "grep -c a\n", Corpus: "apple\nfig\npear\n", Profile: "hand"},
		{Script: "wc -l\n", Corpus: "", Profile: "hand-empty"},
	}
	rep, err := ReplayServe(context.Background(), sys, cases, ReplayOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("serve divergences: %+v", rep.Divergences)
	}
	if rep.Cases != len(cases) || rep.PlansChecked != len(cases) {
		t.Fatalf("replay coverage: %+v", rep)
	}
}
