package conformance

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"kumquat"
	"kumquat/internal/cluster"
	"kumquat/internal/faultinject"
	"kumquat/internal/obs"
	"kumquat/internal/server"
	"kumquat/internal/server/client"
)

// ChaosReport summarizes the cluster chaos replay: the generated suite
// pushed through a loopback 3-worker cluster whose every worker sits
// behind a fault-injecting proxy, held to the same serial oracle as
// every other plane. Beyond byte-identity, the report carries the
// failure-handling counters the CI gate checks — a green run must have
// actually injected faults and actually recovered from them.
type ChaosReport struct {
	// Cases is how many generated cases were replayed; Workers and
	// Shards echo the cluster topology.
	Cases   int `json:"cases"`
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// Divergences lists every case whose cluster output differed from
	// the serial oracle (empty on a healthy tree — faults and worker
	// kills included).
	Divergences []Divergence `json:"divergences"`
	// Retries, Speculations, SpeculationWins, RemoteRuns, LocalRuns,
	// Ejections and Readmissions aggregate the per-run ClusterReport
	// trailers across the suite.
	Retries         int64 `json:"retries"`
	Speculations    int64 `json:"speculations"`
	SpeculationWins int64 `json:"speculation_wins"`
	RemoteRuns      int64 `json:"remote_runs"`
	LocalRuns       int64 `json:"local_runs"`
	Ejections       int64 `json:"ejections"`
	Readmissions    int64 `json:"readmissions"`
	// DegradedCases counts cases that needed at least one local-fallback
	// shard (nonzero once the worker kills start).
	DegradedCases int `json:"degraded_cases"`
	// FaultsInjected totals the faults the proxies dealt; Faults breaks
	// them down by type.
	FaultsInjected int64            `json:"faults_injected"`
	Faults         map[string]int64 `json:"faults"`
	// WorkerKilledAt and ClusterKilledAt are the case indices at which
	// one worker and then the whole worker set were hard-killed
	// (-1 = never, for very short suites).
	WorkerKilledAt  int `json:"worker_killed_at"`
	ClusterKilledAt int `json:"cluster_killed_at"`
	// TraceSample is a full stitched trace from the most eventful case of
	// the suite (preferring runs that saw retries, speculation and remote
	// shards): coordinator spans plus the worker spans shipped back in
	// trace trailers, fetched from the coordinator's ring right after the
	// run so eviction can't race it. Nil only if every fetch failed.
	TraceSample *obs.TraceData `json:"trace_sample,omitempty"`
	// TraceSpans, TraceProcs, TraceRetryEvents and TraceSpeculationEvents
	// summarize the sample: span count, distinct process names (≥2 proves
	// cross-worker stitching), and how many retry/speculate span events it
	// carries.
	TraceSpans             int `json:"trace_spans"`
	TraceProcs             int `json:"trace_procs"`
	TraceRetryEvents       int `json:"trace_retry_events"`
	TraceSpeculationEvents int `json:"trace_speculation_events"`
}

// ClusterOptions configures ReplayCluster.
type ClusterOptions struct {
	// Seed seeds the fault schedules (one derived stream per proxy).
	Seed int64
	// SynthWorkers bounds each daemon's synthesis worker pool
	// (0 = GOMAXPROCS).
	SynthWorkers int
}

// chaosRates is the per-request fault mix the proxies deal. The sum
// stays well below 1 so most shards pass — the point is recovery under
// fire, not a dead cluster (the hard worker kills cover that).
func chaosRates() map[faultinject.Fault]float64 {
	return map[faultinject.Fault]float64{
		faultinject.FaultReset:       0.03,
		faultinject.FaultStall:       0.06,
		faultinject.FaultTruncate:    0.03,
		faultinject.FaultDropTrailer: 0.03,
		faultinject.FaultError503:    0.03,
		faultinject.FaultBusy429:     0.02,
	}
}

// node is one loopback daemon (worker or coordinator) with its lifecycle
// handles.
type node struct {
	hs    *http.Server
	ln    net.Listener
	url   string
	alive bool
}

// bootNode starts handler on a loopback listener, its Serve goroutine
// joined through serving.
func bootNode(handler http.Handler, serving *sync.WaitGroup) (*node, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("conformance: listen: %w", err)
	}
	hs := &http.Server{Handler: handler}
	serving.Add(1)
	go func() {
		defer serving.Done()
		hs.Serve(ln) //nolint:errcheck // closed by kill below
	}()
	return &node{hs: hs, ln: ln, url: "http://" + ln.Addr().String(), alive: true}, nil
}

// kill hard-stops the node: the listener and every live connection close
// immediately, as a crashed process would.
func (n *node) kill() {
	if !n.alive {
		return
	}
	n.alive = false
	n.hs.Close() //nolint:errcheck // teardown
}

// ReplayCluster boots a loopback cluster — three worker kumquatds, each
// behind a fault-injecting proxy, and a coordinator kumquatd dispatching
// to the proxies — then replays every generated case through the
// coordinator over the typed client and diffs the streamed output
// against the serial oracle. At 60% of the suite worker 0 is
// hard-killed; at 80% the remaining workers follow, forcing the
// coordinator into local fallback for the tail of the suite. oracles
// optionally carries precomputed serial outcomes, index-aligned with
// cases (missing entries are computed through sys).
func ReplayCluster(ctx context.Context, sys *kumquat.System, cases []*Case, opts ClusterOptions, oracles []oracleResult) (*ChaosReport, error) {
	const workers = 3
	var serving sync.WaitGroup
	defer serving.Wait()

	// Workers and their chaos proxies.
	var workerNodes, proxyNodes []*node
	var proxies []*faultinject.Proxy
	defer func() {
		for _, n := range proxyNodes {
			n.kill()
		}
		for _, n := range workerNodes {
			n.kill()
		}
	}()
	var proxyURLs []string
	for i := 0; i < workers; i++ {
		wsrv := server.New(server.Config{
			SynthOptions: kumquat.Options{Seed: 1, Workers: opts.SynthWorkers},
			TraceProc:    fmt.Sprintf("worker%d", i),
		})
		wn, err := bootNode(wsrv.Handler(), &serving)
		if err != nil {
			return nil, err
		}
		workerNodes = append(workerNodes, wn)
		sched := faultinject.NewSchedule(opts.Seed+int64(i)*7919, chaosRates(), 2)
		proxy, err := faultinject.New(wn.url, sched, 400*time.Millisecond)
		if err != nil {
			return nil, err
		}
		pn, err := bootNode(proxy, &serving)
		if err != nil {
			return nil, err
		}
		proxies = append(proxies, proxy)
		proxyNodes = append(proxyNodes, pn)
		proxyURLs = append(proxyURLs, pn.url)
	}

	// The coordinator dispatches through the proxies. Timings are scaled
	// for a loopback suite: backoffs in single-digit milliseconds, the
	// speculation floor just above a healthy shard's latency and well
	// below the proxies' stall, so stalls reliably trigger speculative
	// re-dispatch while healthy shards never do.
	csrv := server.New(server.Config{
		SynthOptions: kumquat.Options{Seed: 1, Workers: opts.SynthWorkers},
		TraceProc:    "coordinator",
		Cluster: cluster.Config{
			Workers:         proxyURLs,
			Shards:          workers,
			ShardTimeout:    10 * time.Second,
			RetryMax:        3,
			RetryBase:       2 * time.Millisecond,
			RetryCap:        20 * time.Millisecond,
			SpeculateAfter:  150 * time.Millisecond,
			SpeculateFactor: 3,
			EjectAfter:      2,
			EjectCooldown:   500 * time.Millisecond,
			ProbeTimeout:    time.Second,
		},
	})
	cn, err := bootNode(csrv.Handler(), &serving)
	if err != nil {
		return nil, err
	}
	defer cn.kill()

	// The replay client exercises the retry policy the cluster plane
	// asks of its own clients: 429s and transport blips are absorbed
	// with backoff before anything surfaces.
	c := client.New(cn.url, client.WithRetry(3, 2*time.Millisecond, 20*time.Millisecond))

	rep := &ChaosReport{
		Cases: len(cases), Workers: workers, Shards: workers,
		Divergences: []Divergence{}, Faults: map[string]int64{},
		WorkerKilledAt: -1, ClusterKilledAt: -1,
	}
	killOne, killAll := len(cases)*6/10, len(cases)*8/10
	bestTrace := -1 // score of the sampled trace's run so far
	for i, cs := range cases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if i == killOne && killOne < killAll {
			workerNodes[0].kill()
			rep.WorkerKilledAt = i
		}
		if i == killAll && killAll > 0 {
			for _, wn := range workerNodes {
				wn.kill()
			}
			rep.ClusterKilledAt = i
		}

		var oracle oracleResult
		if i < len(oracles) {
			oracle = oracles[i]
		} else {
			plan, perr := compileCase(ctx, sys, cs)
			if perr != nil {
				return nil, fmt.Errorf("conformance: cluster oracle compile: %w", perr)
			}
			oracle.out, oracle.err = execCase(ctx, plan, cs, Config{Mode: kumquat.Serial.String(), K: 1})
		}

		// Every case runs traced: tracing rides the same requests the
		// untraced replay would make, so the proxies' deterministic fault
		// schedules are unperturbed by the observability plane.
		var out strings.Builder
		run, gotErr := c.Execute(ctx, cs.Script, client.ExecuteOptions{Cluster: "on", Trace: "on"},
			strings.NewReader(cs.Corpus), &out)
		if detail, ok := diverges(oracle.out, oracle.err, out.String(), gotErr); !ok {
			rep.Divergences = append(rep.Divergences, Divergence{
				Case:   cs.forReport(),
				Config: Config{Mode: "cluster/" + kumquat.Unoptimized.String(), K: workers},
				Detail: detail,
			})
		}
		if run != nil && run.Cluster != nil {
			rep.Retries += run.Cluster.Retries
			rep.Speculations += run.Cluster.Speculations
			rep.SpeculationWins += run.Cluster.SpeculationWins
			rep.RemoteRuns += run.Cluster.RemoteRuns
			rep.LocalRuns += run.Cluster.LocalRuns
			rep.Ejections += run.Cluster.Ejections
			rep.Readmissions += run.Cluster.Readmissions
			if run.Cluster.LocalRuns > 0 {
				rep.DegradedCases++
			}
			// Sample the most eventful run's stitched trace. Fetch it
			// immediately — the coordinator's ring evicts old traces, so
			// waiting until the end of the suite could lose it.
			if run.Trace != nil {
				score := 0
				if run.Cluster.RemoteRuns > 0 {
					score++
				}
				if run.Cluster.Retries > 0 {
					score += 2
				}
				if run.Cluster.Speculations > 0 {
					score += 2
				}
				if score > bestTrace {
					// Direct to the coordinator: trace fetches never touch
					// the fault proxies, so they can't perturb schedules.
					if td, terr := c.TraceData(ctx, run.Trace.TraceID); terr == nil {
						bestTrace = score
						rep.TraceSample = td
					}
				}
			}
		}
	}
	if td := rep.TraceSample; td != nil {
		rep.TraceSpans = len(td.Spans)
		procs := map[string]bool{}
		for _, sp := range td.Spans {
			procs[sp.Proc] = true
			for _, ev := range sp.Events {
				switch ev.Name {
				case "retry":
					rep.TraceRetryEvents++
				case "speculate":
					rep.TraceSpeculationEvents++
				}
			}
		}
		rep.TraceProcs = len(procs)
	}
	for _, p := range proxies {
		for f, n := range p.Counts() {
			if f == faultinject.FaultNone {
				continue
			}
			rep.Faults[string(f)] += n
			rep.FaultsInjected += n
		}
	}
	return rep, nil
}
