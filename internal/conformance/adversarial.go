package conformance

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"

	"kumquat"
	"kumquat/internal/dsl"
	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// NamedCorpus is one adversarial input: a name for the report and the
// stream itself.
type NamedCorpus struct {
	// Name identifies the corpus in reports ("empty", "unicode", ...).
	Name string `json:"name"`
	// Corpus is the input stream.
	Corpus string `json:"corpus"`
}

// AdversarialCorpora returns the fixed stress inputs combiner validation
// runs on: the boundary shapes the paper's runtime validation exercises
// plus the ones field experience says break stream code — empty input,
// a missing trailing newline, very long lines, multi-byte content,
// duplicate keys spanning chunk boundaries, and pre-/reverse-sorted
// streams (merge's legality boundary). The corpora are immutable fixtures
// built once per process; repeated stress passes over a shared warm
// engine share them instead of rebuilding the multi-KB long-line corpus
// every call.
func AdversarialCorpora() []NamedCorpus {
	return slices.Clone(adversarialCorpora())
}

// adversarialCorpora constructs the fixture set exactly once.
var adversarialCorpora = sync.OnceValue(func() []NamedCorpus {
	long := strings.Repeat("loquat kumquat medlar ", 400)
	return []NamedCorpus{
		{"empty", ""},
		{"single-line", "pear\n"},
		{"no-trailing-newline", "pear\napple\nfig"},
		{"blank-lines", "pear\n\n\napple\n\nfig\n"},
		{"long-lines", long + "\n" + long + "end\n"},
		{"unicode", "café\n東京 pear\nнаïve\nλάμδα fig\nпear\n"},
		{"duplicate-keys", strings.Repeat("apple\n", 9) + strings.Repeat("pear\n", 7) + strings.Repeat("apple\n", 5)},
		{"pre-sorted", "a\nb\nc\nd\ne\nf\ng\nh\n"},
		{"reverse-sorted", "h\ng\nf\ne\nd\nc\nb\na\n"},
		{"numbers", "10\n2\n-3\n2\n700\n0\n10\n33\n"},
	}
})

// PathKind selects a recombination strategy for CandidateCheck.
type PathKind string

// The recombination paths a candidate combiner can take.
const (
	// PathFold is the serial left fold (dsl.CombineK's pairwise path).
	PathFold PathKind = "fold"
	// PathTree is the balanced-tree reduction (dsl.CombineKTree).
	PathTree PathKind = "tree"
	// PathPairwise always folds pairwise, even for the simultaneous
	// concat/merge/rerun combiners (dsl.CombineKPairwise).
	PathPairwise PathKind = "pairwise"
)

// CandidateCheck validates a single candidate combiner against the
// serial oracle: split the corpus into K line-aligned chunks, apply the
// command to each, recombine through the selected path, and require the
// result to equal the command's output on the whole corpus byte-for-byte.
type CandidateCheck struct {
	// Env supplies the candidate's RunF and merge comparator.
	Env *dsl.Env
	// Cand is the candidate under test.
	Cand dsl.Candidate
	// Run is the black-box command f.
	Run func(string) (string, error)
	// K is the chunk count.
	K int
	// Workers bounds the tree path's concurrency.
	Workers int
	// Path selects the recombination strategy.
	Path PathKind
}

// Check runs the validation on one corpus. It returns nil when the
// recombined output matches the serial oracle, and a descriptive error
// when the combiner is caught producing a divergent stream. Chunk
// outputs outside the candidate's legality domain make the corpus
// inapplicable and also return nil — domain dispatch is the composite's
// job, not the candidate's.
func (cc CandidateCheck) Check(corpus string) error {
	want, err := cc.Run(corpus)
	if err != nil {
		return nil // f rejects the corpus serially; nothing to validate
	}
	outs, applicable := cc.chunkOutputs(corpus)
	if !applicable {
		return nil
	}
	var got string
	switch cc.Path {
	case PathTree:
		got, err = dsl.CombineKTree(cc.Env, cc.Cand, outs, cc.Workers)
	case PathPairwise:
		got, err = dsl.CombineKPairwise(cc.Env, cc.Cand, outs)
	default:
		got, err = dsl.CombineK(cc.Env, cc.Cand, outs)
	}
	if err != nil {
		return fmt.Errorf("conformance: %s %s combine failed: %w", cc.Cand, cc.Path, err)
	}
	if got != want {
		return fmt.Errorf("conformance: %s via %s diverged: %s", cc.Cand, cc.Path, diffSummary(want, got))
	}
	return nil
}

// chunkOutputs applies f to each of the K chunks and reports whether
// every chunk ran and every nonempty output lies in the candidate's
// legality domain (an inapplicable corpus is skipped, not failed).
func (cc CandidateCheck) chunkOutputs(corpus string) (outs []string, applicable bool) {
	k := cc.K
	if k < 2 {
		k = 2
	}
	outs, ok := chunkRuns(cc.Run, corpus, k)
	if !ok {
		return nil, false
	}
	for _, o := range outs {
		if o != "" && !cc.Cand.Op.InDomain(cc.Env, o) {
			return nil, false
		}
	}
	return outs, true
}

// ShrinkCorpus ddmin-minimizes a corpus on which Check fails, returning
// the smallest reproducing corpus found (the input itself when it does
// not fail).
func (cc CandidateCheck) ShrinkCorpus(corpus string) string {
	return shrinkCorpus(corpus, func(s string) bool { return cc.Check(s) != nil })
}

// StressSpecs is the command pool combiner stress validation covers —
// the generator's stage templates, so the stress plane and the
// differential plane exercise the same catalog slice.
func StressSpecs() []string { return StageTemplates() }

// StressFailure is one combiner caught diverging from its command.
type StressFailure struct {
	// Spec is the command whose combiner failed.
	Spec string `json:"spec"`
	// Corpus names the adversarial corpus.
	Corpus string `json:"corpus"`
	// K is the chunk count; Path the recombination strategy; Workers the
	// tree bound.
	K       int    `json:"k"`
	Path    string `json:"path"`
	Workers int    `json:"workers,omitempty"`
	// Detail describes the divergence.
	Detail string `json:"detail"`
	// MinimalCorpus is the shrunken reproducing input (set when
	// shrinking ran).
	MinimalCorpus string `json:"minimal_corpus,omitempty"`
}

// StressReport summarizes the combiner stress validation.
type StressReport struct {
	// Specs is the number of commands stressed; Skipped counts the
	// commands with no combiner or a rerun-only combiner (the planner
	// never chunks those, so there is no combine path to validate).
	Specs   int `json:"specs"`
	Skipped int `json:"skipped"`
	// Checks counts individual corpus × k × path validations.
	Checks int `json:"checks"`
	// Failures lists every caught divergence (empty on a healthy tree).
	Failures []StressFailure `json:"failures"`
}

// stressKs is the chunk-count sweep of the stress plane: a boundary pair
// plus tree-shaped counts (odd, power of two, larger than most corpora's
// line counts).
var stressKs = []int{2, 3, 4, 8}

// StressCombiners validates each command's synthesized composite
// combiner on every adversarial corpus, chunk count, and combine path:
// the serial fold (CombineK), and the balanced tree (CombineKTree) at 1
// and 4 workers. The composite is exactly the object the executor
// dispatches through, so a pass here certifies the combine plane's
// inputs, not a simplified model. shrink minimizes the corpus of every
// failure before reporting it.
func StressCombiners(ctx context.Context, sys *kumquat.System, specs []string, shrink bool) (*StressReport, error) {
	rep := &StressReport{Failures: []StressFailure{}}
	corpora := AdversarialCorpora()
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := sys.SynthesizeContext(ctx, spec)
		// A cancelled context is an aborted run, not a negative verdict —
		// it must not masquerade as a "no combiner" skip and let a
		// half-validated report read as green.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if err != nil || res == nil || res.Err != nil || res.Combiner == nil {
			// err / res.Err are synthesis's negative verdicts (the
			// paper's Table 9 cases: no combiner exists).
			rep.Skipped++
			continue
		}
		if res.Combiner.IsRerunOnly() {
			// The planner runs rerun-only stages sequentially; their
			// combiner is never exercised by any executor.
			rep.Skipped++
			continue
		}
		rep.Specs++
		cmd, err := unix.Parse(spec, unix.DefaultEnv())
		if err != nil {
			return nil, fmt.Errorf("conformance: stress %q: %w", spec, err)
		}
		for _, nc := range corpora {
			want, err := cmd.Run(nc.Corpus)
			if err != nil {
				continue // f rejects the corpus serially
			}
			for _, k := range stressKs {
				outs, ok := chunkRuns(cmd.Run, nc.Corpus, k)
				if !ok {
					continue
				}
				for _, path := range []struct {
					name    string
					workers int
					combine func([]string) (string, error)
				}{
					{"fold", 0, res.Combiner.CombineK},
					{"tree", 1, func(o []string) (string, error) { return res.Combiner.CombineKTree(o, 1) }},
					{"tree", 4, func(o []string) (string, error) { return res.Combiner.CombineKTree(o, 4) }},
				} {
					rep.Checks++
					got, err := path.combine(outs)
					detail := ""
					if err != nil {
						detail = fmt.Sprintf("combine failed: %v", err)
					} else if got != want {
						detail = diffSummary(want, got)
					}
					if detail == "" {
						continue
					}
					f := StressFailure{
						Spec: spec, Corpus: nc.Name, K: k,
						Path: path.name, Workers: path.workers, Detail: detail,
					}
					if shrink {
						f.MinimalCorpus = shrinkStress(cmd, nc.Corpus, k, path.combine)
					}
					rep.Failures = append(rep.Failures, f)
				}
			}
		}
	}
	return rep, nil
}

// shrinkStress minimizes a corpus on which the composite path diverges.
func shrinkStress(cmd unix.Command, corpus string, k int, combine func([]string) (string, error)) string {
	return shrinkCorpus(corpus, func(s string) bool {
		want, err := cmd.Run(s)
		if err != nil {
			return false
		}
		outs, ok := chunkRuns(cmd.Run, s, k)
		if !ok {
			return false
		}
		got, err := combine(outs)
		return err != nil || got != want
	})
}

// chunkRuns applies run to each of the k line-aligned chunks of corpus,
// reporting ok=false when any chunk is rejected — the shared per-chunk
// execution loop behind both the composite stress and the
// single-candidate checks.
func chunkRuns(run func(string) (string, error), corpus string, k int) ([]string, bool) {
	chunks := textio.ChunkLines(corpus, k)
	outs := make([]string, len(chunks))
	for i, ch := range chunks {
		out, err := run(ch)
		if err != nil {
			return nil, false
		}
		outs[i] = out
	}
	return outs, true
}
