package conformance

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"

	"kumquat"
	"kumquat/internal/server"
	"kumquat/internal/server/client"
)

// ServeReport summarizes the kumquatd replay: the generated suite pushed
// through a live loopback daemon over the typed client and held to the
// same serial oracle as the in-process executors.
type ServeReport struct {
	// Cases is how many generated cases were replayed.
	Cases int `json:"cases"`
	// K is the data-parallelism degree each replayed execute requested.
	K int `json:"k"`
	// PlansChecked counts the /v1/parallelize calls whose stage counts
	// were cross-checked against the local planner.
	PlansChecked int `json:"plans_checked"`
	// Divergences lists every case whose daemon-streamed output differed
	// from the local serial oracle, plus any plan-count mismatches.
	Divergences []Divergence `json:"divergences"`
}

// ReplayOptions configures ReplayServe.
type ReplayOptions struct {
	// K is the data-parallelism degree each replayed execute requests.
	K int
	// SynthWorkers bounds the replay daemon's synthesis worker pool
	// (0 = GOMAXPROCS), mirroring Options.SynthWorkers.
	SynthWorkers int
}

// ReplayServe boots an in-process kumquatd on a loopback listener and
// replays every generated case through POST /v1/execute with the corpus
// streamed as the request body, comparing the streamed output
// byte-for-byte against the local serial oracle computed through sys.
// Each distinct script is also planned through POST /v1/parallelize and
// its stage verdict counts cross-checked against the local planner —
// the HTTP plane must tell the same planning story the library tells.
func ReplayServe(ctx context.Context, sys *kumquat.System, cases []*Case, opts ReplayOptions) (*ServeReport, error) {
	return replayServe(ctx, sys, cases, opts, nil)
}

// replayServe is ReplayServe with optional precomputed oracle outcomes
// (index-aligned with cases); Run supplies them so the serve replay does
// not re-execute serial runs the differential sweep already performed.
func replayServe(ctx context.Context, sys *kumquat.System, cases []*Case, opts ReplayOptions, oracles []oracleResult) (*ServeReport, error) {
	srv := server.New(server.Config{
		SynthOptions: kumquat.Options{Seed: 1, Workers: opts.SynthWorkers},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("conformance: listen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	var serving sync.WaitGroup
	serving.Add(1)
	go func() {
		defer serving.Done()
		hs.Serve(ln) //nolint:errcheck // closed by Shutdown below
	}()
	defer serving.Wait()
	// Shutdown needs a context that outlives the caller's (a canceled ctx
	// would abort the graceful close), so it gets a fresh root.
	defer hs.Shutdown(context.Background())
	c := client.New("http://" + ln.Addr().String())

	rep := &ServeReport{Cases: len(cases), K: opts.K, Divergences: []Divergence{}}
	plannedScripts := map[string]bool{}
	for i, cs := range cases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The local plan is needed only to (re)compute a missing oracle
		// and to cross-check a not-yet-seen script; with precomputed
		// oracles, repeated scripts skip compilation entirely.
		var plan *kumquat.Plan
		getPlan := func() (*kumquat.Plan, error) {
			if plan != nil {
				return plan, nil
			}
			var err error
			if plan, err = compileCase(ctx, sys, cs); err != nil {
				return nil, fmt.Errorf("conformance: serve oracle compile: %w", err)
			}
			return plan, nil
		}
		var oracle oracleResult
		if i < len(oracles) {
			oracle = oracles[i]
		} else {
			p, err := getPlan()
			if err != nil {
				return nil, err
			}
			oracle.out, oracle.err = execCase(ctx, p, cs, Config{Mode: kumquat.Serial.String(), K: 1})
		}

		var out strings.Builder
		_, gotErr := c.Execute(ctx, cs.Script, client.ExecuteOptions{K: opts.K},
			strings.NewReader(cs.Corpus), &out)
		cfg := Config{Mode: "serve/" + kumquat.Optimized.String(), K: opts.K}
		if detail, ok := diverges(oracle.out, oracle.err, out.String(), gotErr); !ok {
			rep.Divergences = append(rep.Divergences, Divergence{
				Case: cs.forReport(), Config: cfg, Detail: detail,
			})
		}

		if plannedScripts[cs.Script] {
			continue
		}
		plannedScripts[cs.Script] = true
		resp, err := c.Parallelize(ctx, cs.Script, nil)
		if err != nil {
			rep.Divergences = append(rep.Divergences, Divergence{
				Case: cs.forReport(), Config: Config{Mode: "serve/parallelize"},
				Detail: fmt.Sprintf("parallelize failed: %v", err),
			})
			continue
		}
		localPlan, err := getPlan()
		if err != nil {
			return nil, err
		}
		rep.PlansChecked++
		par, total, elim := localPlan.Counts()
		if resp.Parallelized != par || resp.Total != total || resp.Eliminated != elim {
			rep.Divergences = append(rep.Divergences, Divergence{
				Case: cs.forReport(), Config: Config{Mode: "serve/parallelize"},
				Detail: fmt.Sprintf("plan counts differ: server %d/%d/%d vs local %d/%d/%d",
					resp.Parallelized, resp.Total, resp.Eliminated, par, total, elim),
			})
		}
	}
	return rep, nil
}
