// Package regexlite implements the subset of POSIX Basic Regular Expressions
// (BRE) that the KumQuat benchmark commands use, with a small backtracking
// matcher. Unlike Go's regexp package it supports backreferences
// (\1 .. \9), which the oneliners/nfa-regex benchmark requires
// (pattern \(.\).*\1\(.\).*\2...).
//
// Supported syntax: literal bytes, '.', '*' (and GNU extensions \+ \?),
// bracket expressions [abc], [a-z], [^...] with the POSIX classes
// [:alpha:], [:digit:], [:punct:], [:lower:], [:upper:], [:space:],
// [:alnum:]; anchors ^ (at start) and $ (at end); groups \( \); and
// backreferences \1 .. \9.
//
// The package also provides Example, a generator that produces strings
// matching a pattern. KumQuat preprocessing uses it to build input
// dictionaries from grep/sed patterns (§3.2 of the paper).
package regexlite

import (
	"fmt"
	"math/rand"
	"strings"
)

type quant int

const (
	qOne quant = iota
	qStar
	qPlus
	qQuest
)

type nodeKind int

const (
	nLit nodeKind = iota
	nAny
	nClass
	nGroup
	nBackref
	nStartAnchor
	nEndAnchor
)

type node struct {
	kind   nodeKind
	q      quant
	lit    byte
	set    *[256]bool // for nClass
	negate bool
	seq    []node // for nGroup
	group  int    // group index for nGroup / nBackref
}

// Regexp is a compiled pattern.
type Regexp struct {
	pattern string
	seq     []node
	ngroups int
	icase   bool

	// lit is the whole pattern as a plain string when it is a pure
	// literal (only single-occurrence nLit nodes, no anchors): find then
	// reduces to strings.Index. firstLit holds the pattern's required
	// first byte when the sequence opens with a single-occurrence
	// literal, letting find skip candidate start positions bytewise.
	lit         string
	isLit       bool
	firstLit    byte
	hasFirstLit bool
}

// analyze derives the literal fast-path fields from the parsed sequence.
// Case-insensitive patterns keep the general path: the fast paths are
// exact-byte.
func (re *Regexp) analyze() {
	if re.icase || len(re.seq) == 0 {
		return
	}
	if n := re.seq[0]; n.kind == nLit && n.q == qOne {
		re.firstLit, re.hasFirstLit = n.lit, true
	}
	var b strings.Builder
	for _, n := range re.seq {
		if n.kind != nLit || n.q != qOne {
			return
		}
		b.WriteByte(n.lit)
	}
	re.lit, re.isLit = b.String(), true
}

// Compile parses a BRE pattern.
func Compile(pattern string) (*Regexp, error) {
	p := &parser{src: pattern}
	seq, err := p.parseSeq()
	if err != nil {
		return nil, fmt.Errorf("regexlite: %q: %w", pattern, err)
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("regexlite: %q: unexpected %q at %d", pattern, p.src[p.pos], p.pos)
	}
	re := &Regexp{pattern: pattern, seq: seq, ngroups: p.ngroups}
	re.analyze()
	return re, nil
}

// CompileFold parses a BRE pattern for case-insensitive (ASCII) matching.
func CompileFold(pattern string) (*Regexp, error) {
	re, err := Compile(pattern)
	if err != nil {
		return nil, err
	}
	re.icase = true
	// The exact-byte fast paths do not fold; drop them.
	re.lit, re.isLit = "", false
	re.firstLit, re.hasFirstLit = 0, false
	return re, nil
}

// MustCompile is Compile that panics on error; for use with known-good
// patterns in tests and tables.
func MustCompile(pattern string) *Regexp {
	re, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return re
}

// String returns the source pattern.
func (re *Regexp) String() string { return re.pattern }

type parser struct {
	src     string
	pos     int
	ngroups int
}

func (p *parser) parseSeq() ([]node, error) {
	var seq []node
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case ')':
			// Unescaped ')' is literal in BRE, but inside a group parse we
			// never see it (groups are \( \)). Treat as literal.
			seq = append(seq, node{kind: nLit, lit: c})
			p.pos++
		case '^':
			if len(seq) == 0 {
				seq = append(seq, node{kind: nStartAnchor})
			} else {
				seq = append(seq, node{kind: nLit, lit: '^'})
			}
			p.pos++
		case '$':
			if p.pos == len(p.src)-1 || (p.pos+2 <= len(p.src) && p.src[p.pos+1] == '\\' && p.pos+2 < len(p.src) && p.src[p.pos+2] == ')') {
				seq = append(seq, node{kind: nEndAnchor})
			} else {
				seq = append(seq, node{kind: nLit, lit: '$'})
			}
			p.pos++
		case '.':
			p.pos++
			seq = append(seq, p.quantified(node{kind: nAny}))
		case '*':
			if len(seq) == 0 {
				// Leading '*' is a literal in BRE.
				seq = append(seq, node{kind: nLit, lit: '*'})
				p.pos++
			} else {
				return nil, fmt.Errorf("dangling '*'")
			}
		case '[':
			n, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			seq = append(seq, p.quantified(n))
		case '\\':
			if p.pos+1 >= len(p.src) {
				return nil, fmt.Errorf("trailing backslash")
			}
			e := p.src[p.pos+1]
			switch {
			case e == '(':
				p.pos += 2
				p.ngroups++
				idx := p.ngroups
				inner, err := p.parseGroupBody()
				if err != nil {
					return nil, err
				}
				seq = append(seq, p.quantified(node{kind: nGroup, seq: inner, group: idx}))
			case e == ')':
				return nil, fmt.Errorf("unmatched \\)")
			case e >= '1' && e <= '9':
				p.pos += 2
				seq = append(seq, p.quantified(node{kind: nBackref, group: int(e - '0')}))
			case e == '+':
				if len(seq) == 0 {
					return nil, fmt.Errorf("dangling \\+")
				}
				seq[len(seq)-1].q = qPlus
				p.pos += 2
			case e == '?':
				if len(seq) == 0 {
					return nil, fmt.Errorf("dangling \\?")
				}
				seq[len(seq)-1].q = qQuest
				p.pos += 2
			case e == 'n':
				p.pos += 2
				seq = append(seq, p.quantified(node{kind: nLit, lit: '\n'}))
			case e == 't':
				p.pos += 2
				seq = append(seq, p.quantified(node{kind: nLit, lit: '\t'}))
			default:
				// Escaped literal: \. \* \$ \^ \[ \\ etc.
				p.pos += 2
				seq = append(seq, p.quantified(node{kind: nLit, lit: e}))
			}
		default:
			p.pos++
			seq = append(seq, p.quantified(node{kind: nLit, lit: c}))
		}
	}
	return seq, nil
}

// parseGroupBody parses until the matching \).
func (p *parser) parseGroupBody() ([]node, error) {
	var seq []node
	for p.pos < len(p.src) {
		if p.src[p.pos] == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == ')' {
			p.pos += 2
			return seq, nil
		}
		sub := &parser{src: p.src, pos: p.pos, ngroups: p.ngroups}
		n, err := sub.parseOne(len(seq) == 0)
		if err != nil {
			return nil, err
		}
		p.pos = sub.pos
		p.ngroups = sub.ngroups
		seq = append(seq, n)
	}
	return nil, fmt.Errorf("unterminated group")
}

// parseOne parses a single (possibly quantified) element; first indicates
// whether it would be the first element of its sequence (affects ^ and *).
func (p *parser) parseOne(first bool) (node, error) {
	c := p.src[p.pos]
	switch c {
	case '^':
		p.pos++
		if first {
			return node{kind: nStartAnchor}, nil
		}
		return node{kind: nLit, lit: '^'}, nil
	case '$':
		p.pos++
		return node{kind: nEndAnchor}, nil
	case '.':
		p.pos++
		return p.quantified(node{kind: nAny}), nil
	case '[':
		n, err := p.parseClass()
		if err != nil {
			return node{}, err
		}
		return p.quantified(n), nil
	case '\\':
		if p.pos+1 >= len(p.src) {
			return node{}, fmt.Errorf("trailing backslash")
		}
		e := p.src[p.pos+1]
		switch {
		case e == '(':
			p.pos += 2
			p.ngroups++
			idx := p.ngroups
			inner, err := p.parseGroupBody()
			if err != nil {
				return node{}, err
			}
			return p.quantified(node{kind: nGroup, seq: inner, group: idx}), nil
		case e >= '1' && e <= '9':
			p.pos += 2
			return p.quantified(node{kind: nBackref, group: int(e - '0')}), nil
		default:
			p.pos += 2
			return p.quantified(node{kind: nLit, lit: e}), nil
		}
	default:
		p.pos++
		return p.quantified(node{kind: nLit, lit: c}), nil
	}
}

func (p *parser) quantified(n node) node {
	if p.pos < len(p.src) && p.src[p.pos] == '*' {
		p.pos++
		n.q = qStar
	}
	return n
}

var posixClasses = map[string]func(byte) bool{
	"alpha": func(b byte) bool { return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' },
	"digit": func(b byte) bool { return b >= '0' && b <= '9' },
	"lower": func(b byte) bool { return b >= 'a' && b <= 'z' },
	"upper": func(b byte) bool { return b >= 'A' && b <= 'Z' },
	"space": func(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\v' || b == '\f' || b == '\r' },
	"alnum": func(b byte) bool {
		return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
	},
	"punct": func(b byte) bool {
		return b > ' ' && b < 0x7f && !(b >= 'a' && b <= 'z') && !(b >= 'A' && b <= 'Z') && !(b >= '0' && b <= '9')
	},
}

func (p *parser) parseClass() (node, error) {
	// p.src[p.pos] == '['
	p.pos++
	var set [256]bool
	negate := false
	if p.pos < len(p.src) && p.src[p.pos] == '^' {
		negate = true
		p.pos++
	}
	first := true
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ']' && !first {
			p.pos++
			return node{kind: nClass, set: &set, negate: negate}, nil
		}
		first = false
		// POSIX class [:name:]
		if c == '[' && p.pos+1 < len(p.src) && p.src[p.pos+1] == ':' {
			end := strings.Index(p.src[p.pos+2:], ":]")
			if end < 0 {
				return node{}, fmt.Errorf("unterminated [: :]")
			}
			name := p.src[p.pos+2 : p.pos+2+end]
			fn, ok := posixClasses[name]
			if !ok {
				return node{}, fmt.Errorf("unknown class [:%s:]", name)
			}
			for b := 0; b < 256; b++ {
				if fn(byte(b)) {
					set[b] = true
				}
			}
			p.pos += 2 + end + 2
			continue
		}
		if c == '\\' && p.pos+1 < len(p.src) {
			// grep BREs treat backslash literally inside []; but accept \n, \t.
			switch p.src[p.pos+1] {
			case 'n':
				set['\n'] = true
				p.pos += 2
				continue
			case 't':
				set['\t'] = true
				p.pos += 2
				continue
			}
		}
		// Range a-z (not if '-' is last char before ])
		if p.pos+2 < len(p.src) && p.src[p.pos+1] == '-' && p.src[p.pos+2] != ']' {
			lo, hi := c, p.src[p.pos+2]
			if lo > hi {
				return node{}, fmt.Errorf("inverted range %c-%c", lo, hi)
			}
			for b := lo; ; b++ {
				set[b] = true
				if b == hi {
					break
				}
			}
			p.pos += 3
			continue
		}
		set[c] = true
		p.pos++
	}
	return node{}, fmt.Errorf("unterminated class")
}

// --- matching ---

type matchState struct {
	input  string
	caps   [10][2]int // group start/end, -1 when unset
	icase  bool
	budget *int // backtracking step budget shared across one find call
}

func foldByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + 32
	}
	return b
}

func (m *matchState) byteEq(a, b byte) bool {
	if m.icase {
		return foldByte(a) == foldByte(b)
	}
	return a == b
}

// matchSeq attempts to match seq starting at position pos; cont is invoked
// with the end position on success. Returns true when a full match is found.
func (m *matchState) matchSeq(seq []node, pos int, cont func(int) bool) bool {
	if *m.budget <= 0 {
		return false
	}
	*m.budget--
	if len(seq) == 0 {
		return cont(pos)
	}
	n := seq[0]
	rest := seq[1:]
	step := func(p int) bool { return m.matchSeq(rest, p, cont) }
	switch n.q {
	case qOne:
		return m.matchNode(n, pos, step)
	case qQuest:
		if m.matchNode(n, pos, step) {
			return true
		}
		return step(pos)
	case qStar, qPlus:
		min := 0
		if n.q == qPlus {
			min = 1
		}
		return m.matchRepeat(n, pos, 0, min, step)
	}
	return false
}

// matchRepeat implements greedy repetition with backtracking.
func (m *matchState) matchRepeat(n node, pos, count, min int, cont func(int) bool) bool {
	if *m.budget <= 0 {
		return false
	}
	// Greedy: try one more repetition first.
	if m.matchNode(n, pos, func(p int) bool {
		if p == pos {
			// Zero-width iteration (possible with groups): stop expanding.
			return false
		}
		return m.matchRepeat(n, p, count+1, min, cont)
	}) {
		return true
	}
	if count >= min {
		return cont(pos)
	}
	return false
}

// matchNode matches a single occurrence of node n at pos.
func (m *matchState) matchNode(n node, pos int, cont func(int) bool) bool {
	switch n.kind {
	case nLit:
		if pos < len(m.input) && m.byteEq(m.input[pos], n.lit) {
			return cont(pos + 1)
		}
	case nAny:
		if pos < len(m.input) && m.input[pos] != '\n' {
			return cont(pos + 1)
		}
	case nClass:
		if pos < len(m.input) {
			c := m.input[pos]
			in := n.set[c]
			if m.icase && !in {
				in = n.set[foldByte(c)] || n.set[c-32+64*0] // fold both directions
				if c >= 'a' && c <= 'z' {
					in = in || n.set[c-32]
				}
			}
			if in != n.negate {
				return cont(pos + 1)
			}
		}
	case nStartAnchor:
		if pos == 0 {
			return cont(pos)
		}
	case nEndAnchor:
		if pos == len(m.input) {
			return cont(pos)
		}
	case nGroup:
		savedS, savedE := m.caps[n.group][0], m.caps[n.group][1]
		m.caps[n.group][0] = pos
		ok := m.matchSeq(n.seq, pos, func(p int) bool {
			savedEnd := m.caps[n.group][1]
			m.caps[n.group][1] = p
			if cont(p) {
				return true
			}
			m.caps[n.group][1] = savedEnd
			return false
		})
		if !ok {
			m.caps[n.group][0], m.caps[n.group][1] = savedS, savedE
		}
		return ok
	case nBackref:
		s, e := m.caps[n.group][0], m.caps[n.group][1]
		if s < 0 || e < s {
			return false
		}
		ref := m.input[s:e]
		if pos+len(ref) <= len(m.input) {
			seg := m.input[pos : pos+len(ref)]
			eq := seg == ref
			if m.icase {
				eq = strings.EqualFold(seg, ref)
			}
			if eq {
				return cont(pos + len(ref))
			}
		}
	}
	return false
}

const defaultBudget = 2_000_000

// Match describes a successful match: the [Start, End) byte range within the
// input and the captured group ranges (index 0 is the whole match).
type Match struct {
	Start, End int
	Caps       [10][2]int
}

// Group returns the text of capture group i within input, or "" when unset.
func (mm Match) Group(input string, i int) string {
	s, e := mm.Caps[i][0], mm.Caps[i][1]
	if s < 0 || e < s {
		return ""
	}
	return input[s:e]
}

// find locates the leftmost match starting at or after from. The
// backtracking budget is shared across all start positions of the call so
// pathological patterns degrade to a non-match instead of hanging.
func (re *Regexp) find(input string, from int) (Match, bool) {
	if re.isLit {
		i := strings.Index(input[from:], re.lit)
		if i < 0 {
			return Match{}, false
		}
		m := Match{Start: from + i, End: from + i + len(re.lit)}
		for i := range m.Caps {
			m.Caps[i] = [2]int{-1, -1}
		}
		m.Caps[0] = [2]int{m.Start, m.End}
		return m, true
	}
	budget := defaultBudget
	m := &matchState{input: input, icase: re.icase, budget: &budget}
	for start := from; start <= len(input); start++ {
		if re.hasFirstLit {
			// The match must open with this byte; skip ahead to its next
			// occurrence instead of attempting every position.
			j := strings.IndexByte(input[start:], re.firstLit)
			if j < 0 {
				break
			}
			start += j
		}
		for i := range m.caps {
			m.caps[i] = [2]int{-1, -1}
		}
		var end int
		ok := m.matchSeq(re.seq, start, func(p int) bool { end = p; return true })
		if ok {
			m.caps[0] = [2]int{start, end}
			return Match{Start: start, End: end, Caps: m.caps}, true
		}
		// A pattern with a ^ anchor can only match at 0.
		if len(re.seq) > 0 && re.seq[0].kind == nStartAnchor {
			break
		}
	}
	return Match{}, false
}

// MatchString reports whether input contains a match of the pattern.
func (re *Regexp) MatchString(input string) bool {
	_, ok := re.find(input, 0)
	return ok
}

// FindString returns the leftmost match, if any.
func (re *Regexp) FindString(input string) (Match, bool) {
	return re.find(input, 0)
}

// expandRepl expands a sed-style replacement: & is the whole match,
// \1..\9 are groups, \& and \\ are literals.
func expandRepl(repl, input string, m Match) string {
	var b strings.Builder
	for i := 0; i < len(repl); i++ {
		c := repl[i]
		switch {
		case c == '&':
			b.WriteString(input[m.Start:m.End])
		case c == '\\' && i+1 < len(repl):
			e := repl[i+1]
			if e >= '1' && e <= '9' {
				b.WriteString(m.Group(input, int(e-'0')))
			} else if e == 'n' {
				b.WriteByte('\n')
			} else if e == 't' {
				b.WriteByte('\t')
			} else {
				b.WriteByte(e)
			}
			i++
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// ReplaceFirst substitutes the leftmost match with repl (sed s/// without g).
func (re *Regexp) ReplaceFirst(input, repl string) string {
	m, ok := re.find(input, 0)
	if !ok {
		return input
	}
	return input[:m.Start] + expandRepl(repl, input, m) + input[m.End:]
}

// ReplaceAll substitutes every non-overlapping match with repl
// (sed s///g). Empty matches advance by one byte.
func (re *Regexp) ReplaceAll(input, repl string) string {
	var b strings.Builder
	pos := 0
	for pos <= len(input) {
		m, ok := re.find(input, pos)
		if !ok {
			break
		}
		b.WriteString(input[pos:m.Start])
		b.WriteString(expandRepl(repl, input, m))
		if m.End == m.Start {
			if m.End < len(input) {
				b.WriteByte(input[m.End])
			}
			pos = m.End + 1
		} else {
			pos = m.End
		}
	}
	if pos <= len(input) {
		b.WriteString(input[pos:])
	}
	return b.String()
}

// Example generates a string that matches the pattern, using rng for
// choices. Star atoms repeat 1–2 times (so examples are nonempty and
// exercise the pattern), classes prefer letters and digits, and
// backreferences copy the generated group text. Anchors contribute nothing.
// KumQuat preprocessing calls this to build dictionaries from grep patterns.
func (re *Regexp) Example(rng *rand.Rand) string {
	var groups [10]string
	var b strings.Builder
	genSeq(re.seq, rng, &b, &groups)
	return b.String()
}

func genSeq(seq []node, rng *rand.Rand, b *strings.Builder, groups *[10]string) {
	for _, n := range seq {
		reps := 1
		switch n.q {
		case qStar, qPlus:
			reps = 1 + rng.Intn(2)
		case qQuest:
			reps = rng.Intn(2)
		}
		for r := 0; r < reps; r++ {
			genNode(n, rng, b, groups)
		}
	}
}

func genNode(n node, rng *rand.Rand, b *strings.Builder, groups *[10]string) {
	switch n.kind {
	case nLit:
		b.WriteByte(n.lit)
	case nAny:
		b.WriteByte(byte('a' + rng.Intn(26)))
	case nClass:
		b.WriteByte(pickFromClass(n, rng))
	case nGroup:
		var sub strings.Builder
		genSeq(n.seq, rng, &sub, groups)
		groups[n.group] = sub.String()
		b.WriteString(sub.String())
	case nBackref:
		b.WriteString(groups[n.group])
	}
}

// pickFromClass chooses a member byte, preferring letters, then digits,
// then any printable member.
func pickFromClass(n node, rng *rand.Rand) byte {
	member := func(c byte) bool { return n.set[c] != n.negate }
	var letters, digits, printable []byte
	for c := byte(0x20); c < 0x7f; c++ {
		if !member(c) {
			continue
		}
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			letters = append(letters, c)
		case c >= '0' && c <= '9':
			digits = append(digits, c)
		default:
			printable = append(printable, c)
		}
	}
	pool := letters
	if len(pool) == 0 {
		pool = digits
	}
	if len(pool) == 0 {
		pool = printable
	}
	if len(pool) == 0 {
		return 'x'
	}
	return pool[rng.Intn(len(pool))]
}
