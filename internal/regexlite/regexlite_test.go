package regexlite

import (
	"math/rand"
	"strings"
	"testing"
)

func TestLiteralMatch(t *testing.T) {
	re := MustCompile("light")
	if !re.MatchString("a lighthouse") {
		t.Error("should match substring")
	}
	if re.MatchString("LIGHT") {
		t.Error("case sensitive by default")
	}
}

func TestDotStar(t *testing.T) {
	re := MustCompile("light.*light")
	if !re.MatchString("light of the lighthouse") {
		t.Error("light.*light should match")
	}
	if re.MatchString("light only once") {
		t.Error("single light should not match")
	}
	// Dot does not cross newlines.
	if re.MatchString("light\nlight") {
		t.Error(". must not match newline")
	}
}

func TestAnchors(t *testing.T) {
	re := MustCompile("^0$")
	if !re.MatchString("0") {
		t.Error("^0$ should match '0'")
	}
	for _, s := range []string{"10", "01", "a0"} {
		if re.MatchString(s) {
			t.Errorf("^0$ should not match %q", s)
		}
	}
	// grep '^....$' — exactly 4 characters.
	re4 := MustCompile("^....$")
	if !re4.MatchString("word") || re4.MatchString("words") || re4.MatchString("cat") {
		t.Error("^....$ misbehaved")
	}
}

func TestClasses(t *testing.T) {
	re := MustCompile("[KQRBN]")
	if !re.MatchString("Qxe5") || re.MatchString("exd5") {
		t.Error("[KQRBN] misbehaved")
	}
	re2 := MustCompile("^[^aeiou]*[aeiou][^aeiou]*$")
	if !re2.MatchString("cat") || !re2.MatchString("a") {
		t.Error("1-syllable pattern should match cat/a")
	}
	if re2.MatchString("beat") || re2.MatchString("audio") {
		t.Error("1-syllable pattern should reject multi-vowel words")
	}
	re3 := MustCompile("[[:digit:]]")
	if !re3.MatchString("a1b") || re3.MatchString("abc") {
		t.Error("[[:digit:]] misbehaved")
	}
	re4 := MustCompile("[a-z0-9]")
	if !re4.MatchString("Z9") || re4.MatchString("ZA") {
		t.Error("[a-z0-9] misbehaved")
	}
}

func TestRangeEdges(t *testing.T) {
	re := MustCompile("[a-c]")
	for _, s := range []string{"a", "b", "c"} {
		if !re.MatchString(s) {
			t.Errorf("[a-c] should match %q", s)
		}
	}
	if re.MatchString("d") {
		t.Error("[a-c] should not match d")
	}
	// ']' first in class is literal.
	re2 := MustCompile("[]a]")
	if !re2.MatchString("]") || !re2.MatchString("a") {
		t.Error("[]a] should match ] and a")
	}
	// '-' last in class is literal.
	re3 := MustCompile("[a-]")
	if !re3.MatchString("-") || !re3.MatchString("a") || re3.MatchString("b") {
		t.Error("[a-] misbehaved")
	}
}

func TestBackreferences(t *testing.T) {
	// The nfa-regex benchmark pattern: four repeated characters.
	re := MustCompile(`\(.\).*\1\(.\).*\2\(.\).*\3\(.\).*\4`)
	if !re.MatchString("aabbccdd") {
		t.Error("aabbccdd has 4 pairwise-repeated chars in order")
	}
	if !re.MatchString("xaya-xbyb-xcyc-xdyd") {
		t.Error("interleaved repeats should match")
	}
	if re.MatchString("abcdefgh") {
		t.Error("all-distinct string should not match")
	}
	re2 := MustCompile(`\(ab\)\1`)
	if !re2.MatchString("abab") || re2.MatchString("abba") {
		t.Error(`\(ab\)\1 misbehaved`)
	}
}

func TestGroupsCapture(t *testing.T) {
	re := MustCompile(`T\(..\):..:..`)
	m, ok := re.FindString("2020-01-02T13:45:59,v1")
	if !ok {
		t.Fatal("should match timestamp")
	}
	if got := m.Group("2020-01-02T13:45:59,v1", 1); got != "13" {
		t.Errorf("group 1 = %q, want 13", got)
	}
}

func TestReplace(t *testing.T) {
	// sed 's/T..:..:..//'
	re := MustCompile("T..:..:..")
	got := re.ReplaceFirst("2020-01-02T13:45:59,v1", "")
	if got != "2020-01-02,v1" {
		t.Errorf("strip timestamp = %q", got)
	}
	// sed 's/T\(..\):..:../,\1/'
	re2 := MustCompile(`T\(..\):..:..`)
	got = re2.ReplaceFirst("2020-01-02T13:45:59,v1", `,\1`)
	if got != "2020-01-02,13,v1" {
		t.Errorf("hour extract = %q", got)
	}
	// sed 's/$/0s/' — empty match at end of line.
	re3 := MustCompile("$")
	got = re3.ReplaceFirst("197", "0s")
	if got != "1970s" {
		t.Errorf("append = %q", got)
	}
	// sed 's/^/prefix/'
	re4 := MustCompile("^")
	got = re4.ReplaceFirst("name.txt", "dir/")
	if got != "dir/name.txt" {
		t.Errorf("prefix = %q", got)
	}
}

func TestReplaceAll(t *testing.T) {
	re := MustCompile("a")
	if got := re.ReplaceAll("banana", "o"); got != "bonono" {
		t.Errorf("ReplaceAll = %q", got)
	}
	// Empty matches must not loop.
	re2 := MustCompile("x*")
	got := re2.ReplaceAll("ab", "-")
	if !strings.Contains(got, "a") || !strings.Contains(got, "b") {
		t.Errorf("empty-match ReplaceAll lost text: %q", got)
	}
	// & in replacement.
	re3 := MustCompile("na")
	if got := re3.ReplaceAll("banana", "<&>"); got != "ba<na><na>" {
		t.Errorf("& replacement = %q", got)
	}
}

func TestCaseFold(t *testing.T) {
	re, err := CompileFold("[aeiou]")
	if err != nil {
		t.Fatal(err)
	}
	if !re.MatchString("XYZA") {
		t.Error("fold: A should match [aeiou]")
	}
	re2, err := CompileFold("hello")
	if err != nil {
		t.Fatal(err)
	}
	if !re2.MatchString("say HELLO there") {
		t.Error("fold literal failed")
	}
}

func TestLeftmostMatch(t *testing.T) {
	re := MustCompile("l.ght")
	m, ok := re.FindString("alight or light")
	if !ok || m.Start != 1 {
		t.Errorf("leftmost match at %d, want 1", m.Start)
	}
}

func TestStarGreedy(t *testing.T) {
	re := MustCompile("a.*b")
	m, ok := re.FindString("aXbYb")
	if !ok || m.End != 5 {
		t.Errorf("greedy .* should reach last b; end=%d", m.End)
	}
}

func TestPlusQuest(t *testing.T) {
	re := MustCompile(`ab\+c`)
	if !re.MatchString("abbbc") || re.MatchString("ac") {
		t.Error(`\+ misbehaved`)
	}
	re2 := MustCompile(`ab\?c`)
	if !re2.MatchString("ac") || !re2.MatchString("abc") || re2.MatchString("abbc") {
		t.Error(`\? misbehaved`)
	}
}

func TestEscapedLiterals(t *testing.T) {
	re := MustCompile(`\.`)
	if !re.MatchString("a.b") || re.MatchString("ab") {
		t.Error(`\. misbehaved`)
	}
	re2 := MustCompile(`light\.\*light`)
	if !re2.MatchString("light.*light") || re2.MatchString("lightXlight") {
		t.Error(`escaped star misbehaved`)
	}
	re3 := MustCompile(`(`)
	if !re3.MatchString("f(x)") {
		t.Error("bare ( is literal in BRE")
	}
}

func TestMidPatternDollarCaret(t *testing.T) {
	// In BRE, $ not at end and ^ not at start are literals.
	re := MustCompile("a$b")
	if !re.MatchString("a$b") {
		t.Error("mid $ should be literal")
	}
	re2 := MustCompile("a^b")
	if !re2.MatchString("a^b") {
		t.Error("mid ^ should be literal")
	}
}

func TestCompileErrors(t *testing.T) {
	for _, bad := range []string{`\(`, `[abc`, `a\`, `[[:nope:]]`} {
		if _, err := Compile(bad); err == nil {
			t.Errorf("Compile(%q) should fail", bad)
		}
	}
}

func TestExampleGeneratesMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	patterns := []string{
		"light.*light",
		"^[^aeiou]*[aeiou][^aeiou]*$",
		"[KQRBN]",
		"T..:..:..",
		`\(.\).*\1`,
		"AT&T",
		"^....$",
		"Bell",
	}
	for _, p := range patterns {
		re := MustCompile(p)
		for i := 0; i < 50; i++ {
			ex := re.Example(rng)
			if !re.MatchString(ex) {
				t.Errorf("Example(%q) = %q does not match its own pattern", p, ex)
				break
			}
		}
	}
}

func TestBudgetTermination(t *testing.T) {
	// A pathological pattern must terminate (budget-bounded), not hang.
	re := MustCompile("a*a*a*a*a*a*a*b")
	long := strings.Repeat("a", 300)
	_ = re.MatchString(long) // must return; result may be false due to budget
}
