// Package faultinject is a chaos HTTP proxy for the cluster conformance
// plane. A Proxy sits between the coordinator and one worker daemon and
// injects transport-level faults — connection resets, response stalls,
// truncated bodies, dropped trailers, 503s and 429 bursts — according to
// a seeded, deterministic schedule, while counting every fault it deals.
// The conformance harness routes a loopback cluster through these
// proxies and requires that generated pipelines still produce output
// byte-identical to the serial oracle, with a nonzero fault count as
// proof the run was actually adversarial.
package faultinject

import (
	"math/rand"
	"sync"
)

// Fault names one injectable failure mode.
type Fault string

// The injectable failure modes.
const (
	// FaultNone passes the request through untouched.
	FaultNone Fault = "none"
	// FaultReset closes the client connection before any response bytes.
	FaultReset Fault = "reset"
	// FaultStall delays the response body mid-stream by the proxy's
	// configured stall duration, then completes normally — a straggler,
	// not a failure.
	FaultStall Fault = "stall"
	// FaultTruncate streams a prefix of the response body, then severs
	// the connection mid-chunk.
	FaultTruncate Fault = "truncate"
	// FaultDropTrailer streams the full body but withholds the HTTP
	// trailers (the worker's execution report).
	FaultDropTrailer Fault = "drop-trailer"
	// FaultError503 answers 503 without contacting the worker.
	FaultError503 Fault = "error-503"
	// FaultBusy429 answers 429 with a Retry-After hint, in short bursts.
	FaultBusy429 Fault = "busy-429"
)

// faultOrder fixes the draw order so a seed always deals the same
// schedule regardless of map iteration.
var faultOrder = []Fault{
	FaultReset, FaultStall, FaultTruncate, FaultDropTrailer, FaultError503, FaultBusy429,
}

// Schedule deals fault decisions from a seeded stream: each request
// draws one fault (or none) with the configured per-fault probability.
// A drawn 429 opens a burst — the next BurstLen requests draw 429
// unconditionally, modeling sustained load shedding. Safe for
// concurrent use.
type Schedule struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rates map[Fault]float64
	// burstLen is the number of extra 429s a drawn 429 drags behind it;
	// burst is the countdown of the currently open burst.
	burstLen int
	burst    int
}

// NewSchedule builds a schedule from a seed and per-fault rates (each in
// [0,1]; their sum should stay well below 1 so most requests pass).
// Faults absent from rates are never dealt. burstLen configures how many
// follow-on 429s a dealt 429 drags behind it (0 = single 429s).
func NewSchedule(seed int64, rates map[Fault]float64, burstLen int) *Schedule {
	r := make(map[Fault]float64, len(rates))
	for f, p := range rates {
		r[f] = p
	}
	return &Schedule{rng: rand.New(rand.NewSource(seed)), rates: r, burstLen: burstLen}
}

// Next deals the fault decision for one request.
func (s *Schedule) Next() Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.burst > 0 {
		s.burst--
		return FaultBusy429
	}
	draw := s.rng.Float64()
	acc := 0.0
	for _, f := range faultOrder {
		acc += s.rates[f]
		if draw < acc {
			if f == FaultBusy429 {
				s.burst = s.burstLen
			}
			return f
		}
	}
	return FaultNone
}
