package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// backend returns an httptest server streaming a fixed body with a
// report trailer — the shape of a kumquatd execute response.
func backend(t *testing.T, body, report string) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Trailer", "X-Kumquat-Report")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, body) //nolint:errcheck
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		w.Header().Set("X-Kumquat-Report", report)
	}))
	t.Cleanup(hs.Close)
	return hs
}

// proxyFor boots a proxy with the given schedule in front of a backend.
func proxyFor(t *testing.T, target string, sched *Schedule, stall time.Duration) (*Proxy, *httptest.Server) {
	t.Helper()
	p, err := New(target, sched, stall)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(p)
	t.Cleanup(hs.Close)
	return p, hs
}

// only builds a schedule that deals one fault on every request.
func only(f Fault) *Schedule {
	return NewSchedule(1, map[Fault]float64{f: 1.0}, 0)
}

// TestPassThrough: with no faults scheduled, body and trailers survive
// the proxy byte-for-byte.
func TestPassThrough(t *testing.T) {
	bs := backend(t, "hello\nworld\n", `{"ok":true}`)
	p, hs := proxyFor(t, bs.URL, NewSchedule(1, nil, 0), 0)

	resp, err := http.Get(hs.URL + "/v1/execute?script=sort")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "hello\nworld\n" {
		t.Fatalf("body through proxy = %q", body)
	}
	if got := resp.Trailer.Get("X-Kumquat-Report"); got != `{"ok":true}` {
		t.Fatalf("trailer through proxy = %q", got)
	}
	if p.Total() != 0 {
		t.Fatalf("pass-through counted %d faults", p.Total())
	}
	if p.Counts()[FaultNone] != 1 {
		t.Fatalf("pass-through not counted: %v", p.Counts())
	}
}

// TestReset: the connection dies before any response bytes.
func TestReset(t *testing.T) {
	bs := backend(t, "data\n", "{}")
	p, hs := proxyFor(t, bs.URL, only(FaultReset), 0)
	resp, err := http.Get(hs.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("reset fault produced a response: %v", resp.Status)
	}
	if p.Counts()[FaultReset] != 1 {
		t.Fatalf("reset not counted: %v", p.Counts())
	}
}

// TestTruncate: some body bytes arrive, then the stream dies mid-chunk.
func TestTruncate(t *testing.T) {
	bs := backend(t, strings.Repeat("x", 1000)+"\n", "{}")
	p, hs := proxyFor(t, bs.URL, only(FaultTruncate), 0)
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("truncated body read cleanly to EOF")
	}
	if p.Counts()[FaultTruncate] != 1 {
		t.Fatalf("truncate not counted: %v", p.Counts())
	}
}

// TestDropTrailer: the body completes but the report trailer is gone.
func TestDropTrailer(t *testing.T) {
	bs := backend(t, "done\n", `{"ok":true}`)
	p, hs := proxyFor(t, bs.URL, only(FaultDropTrailer), 0)
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "done\n" {
		t.Fatalf("body = %q", body)
	}
	if got := resp.Trailer.Get("X-Kumquat-Report"); got != "" {
		t.Fatalf("trailer survived a drop-trailer fault: %q", got)
	}
	if p.Counts()[FaultDropTrailer] != 1 {
		t.Fatalf("drop-trailer not counted: %v", p.Counts())
	}
}

// TestErrorsAndBursts: 503s answer immediately; a dealt 429 carries
// Retry-After and drags a burst behind it.
func TestErrorsAndBursts(t *testing.T) {
	bs := backend(t, "x\n", "{}")
	_, hs503 := proxyFor(t, bs.URL, only(FaultError503), 0)
	resp, err := http.Get(hs503.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("503 fault answered %d", resp.StatusCode)
	}

	sched := NewSchedule(1, map[Fault]float64{FaultBusy429: 1.0}, 2)
	_, hs429 := proxyFor(t, bs.URL, sched, 0)
	for i := 0; i < 3; i++ { // the dealt 429 plus its burst of 2
		resp, err := http.Get(hs429.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d of burst answered %d", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("429 without Retry-After on request %d", i)
		}
	}
}

// TestStallCompletes: a stalled response is late but intact — the
// straggler shape that must trigger speculation, not failure.
func TestStallCompletes(t *testing.T) {
	bs := backend(t, "slow\n", `{"ok":true}`)
	p, hs := proxyFor(t, bs.URL, only(FaultStall), 80*time.Millisecond)
	start := time.Now()
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "slow\n" {
		t.Fatalf("stalled body = %q", body)
	}
	if got := resp.Trailer.Get("X-Kumquat-Report"); got != `{"ok":true}` {
		t.Fatalf("stalled trailer = %q", got)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("stall finished in %v, configured 80ms", elapsed)
	}
	if p.Counts()[FaultStall] != 1 {
		t.Fatalf("stall not counted: %v", p.Counts())
	}
}

// TestScheduleDeterminism: the same seed deals the same fault sequence.
func TestScheduleDeterminism(t *testing.T) {
	rates := map[Fault]float64{FaultReset: 0.2, FaultStall: 0.2, FaultError503: 0.2}
	a := NewSchedule(42, rates, 1)
	b := NewSchedule(42, rates, 1)
	for i := 0; i < 200; i++ {
		if fa, fb := a.Next(), b.Next(); fa != fb {
			t.Fatalf("draw %d diverged: %s vs %s", i, fa, fb)
		}
	}
}
