package faultinject

import (
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// hopByHop lists headers that must not be forwarded across the proxy.
var hopByHop = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// Proxy is a single-target chaos reverse proxy: every request draws a
// fault from the schedule and is either sabotaged accordingly or
// forwarded to the target with streaming and HTTP trailers preserved.
// It implements http.Handler and is safe for concurrent use.
type Proxy struct {
	target    *url.URL
	sched     *Schedule
	transport http.RoundTripper
	// stallFor is how long a FaultStall holds the response mid-body
	// before completing it normally.
	stallFor time.Duration

	mu     sync.Mutex
	counts map[Fault]int64
}

// New builds a proxy in front of the target base URL (e.g.
// "http://127.0.0.1:9917"). stallFor sets the mid-body delay dealt by
// FaultStall.
func New(target string, sched *Schedule, stallFor time.Duration) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("faultinject: bad target %q: %w", target, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("faultinject: target %q needs scheme and host", target)
	}
	return &Proxy{
		target:    u,
		sched:     sched,
		transport: http.DefaultTransport,
		stallFor:  stallFor,
		counts:    make(map[Fault]int64),
	}, nil
}

// Counts returns how many times each fault has been dealt so far
// (FaultNone included, counting untouched pass-throughs).
func (p *Proxy) Counts() map[Fault]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Fault]int64, len(p.counts))
	for f, n := range p.counts {
		out[f] = n
	}
	return out
}

// Total returns the number of actual faults dealt (everything except
// FaultNone pass-throughs).
func (p *Proxy) Total() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for f, c := range p.counts {
		if f != FaultNone {
			n += c
		}
	}
	return n
}

// note records one dealt fault.
func (p *Proxy) note(f Fault) {
	p.mu.Lock()
	p.counts[f]++
	p.mu.Unlock()
}

// ServeHTTP deals one fault decision and serves the request under it.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fault := p.sched.Next()
	p.note(fault)
	switch fault {
	case FaultReset:
		// Sever the connection before any response bytes reach the
		// client. ErrAbortHandler is the stdlib's sanctioned way to
		// abort mid-response without log noise.
		panic(http.ErrAbortHandler)
	case FaultError503:
		http.Error(w, "faultinject: injected 503", http.StatusServiceUnavailable)
		return
	case FaultBusy429:
		w.Header().Set("Retry-After", "0")
		http.Error(w, "faultinject: injected 429", http.StatusTooManyRequests)
		return
	}
	p.forward(w, r, fault)
}

// forward relays the request to the target, applying stall, truncate or
// drop-trailer sabotage to the response stream as dealt.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, fault Fault) {
	out := r.Clone(r.Context())
	out.URL = &url.URL{
		Scheme:   p.target.Scheme,
		Host:     p.target.Host,
		Path:     r.URL.Path,
		RawQuery: r.URL.RawQuery,
	}
	out.Host = p.target.Host
	out.RequestURI = ""
	for _, h := range hopByHop {
		out.Header.Del(h)
	}
	resp, err := p.transport.RoundTrip(out)
	if err != nil {
		http.Error(w, fmt.Sprintf("faultinject: upstream: %v", err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()

	if fault != FaultDropTrailer {
		for k := range resp.Trailer {
			w.Header().Add("Trailer", k)
		}
	}
	for k, vv := range resp.Header {
		if k == "Trailer" {
			continue
		}
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)

	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	stalled := false
	var written int64
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			written += int64(n)
			if flusher != nil {
				flusher.Flush()
			}
			switch fault {
			case FaultTruncate:
				// Some bytes are out; sever the connection mid-chunk so
				// the client sees an unexpected EOF, not a clean close.
				panic(http.ErrAbortHandler)
			case FaultStall:
				if !stalled {
					stalled = true
					p.stall(r)
				}
			}
		}
		if rerr != nil {
			break
		}
	}
	if fault == FaultTruncate && written == 0 {
		// Empty upstream body: nothing to truncate mid-stream, so sever
		// before the terminating chunk instead.
		panic(http.ErrAbortHandler)
	}
	if fault == FaultDropTrailer {
		return // body complete, trailers withheld
	}
	for k, vv := range resp.Trailer {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
}

// stall sleeps the configured stall duration, bounded by the request's
// context so an abandoned client does not pin the handler.
func (p *Proxy) stall(r *http.Request) {
	if p.stallFor <= 0 {
		return
	}
	t := time.NewTimer(p.stallFor)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.Context().Done():
	}
}
