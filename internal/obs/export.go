package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ChromeEvent is one entry of the Chrome trace-event JSON format (the
// format chrome://tracing and Perfetto open directly). Spans export as
// "X" complete events, span events as "i" instants, and process labels
// as "M" metadata events.
type ChromeEvent struct {
	// Name labels the event; Ph is the event phase ("X", "i", "M").
	Name string `json:"name"`
	Ph   string `json:"ph"`
	// Ts is the event start in microseconds; Dur the duration of "X"
	// events in microseconds.
	Ts  int64 `json:"ts"`
	Dur int64 `json:"dur,omitempty"`
	// Pid and Tid place the event: one pid per process label, one tid
	// per nesting lane within it.
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// Cat is the event category; S is the instant-event scope ("t").
	Cat string `json:"cat,omitempty"`
	S   string `json:"s,omitempty"`
	// Args carries the span/event annotations.
	Args map[string]string `json:"args,omitempty"`
}

// ChromeFile is the top-level Chrome trace-event JSON document.
type ChromeFile struct {
	// TraceEvents holds the flattened event list.
	TraceEvents []ChromeEvent `json:"traceEvents"`
	// DisplayTimeUnit selects the viewer's time unit.
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// ParseChromeTrace decodes an exported Chrome trace-event document —
// the inverse of TraceData.ChromeTrace, for round-trip tests and
// tooling.
func ParseChromeTrace(data []byte) (*ChromeFile, error) {
	var f ChromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("obs: parsing chrome trace: %w", err)
	}
	return &f, nil
}

// ChromeTrace exports the trace in the Chrome trace-event JSON format.
// Each distinct span Proc becomes one process (with a process_name
// metadata event); within a process, spans are laid out greedily onto
// nesting lanes (tids) so that every lane's events either nest by time
// containment or are disjoint — the invariant the viewer's flame
// rendering needs. Span events export as thread-scoped instants on the
// owning span's lane.
func (td *TraceData) ChromeTrace() ([]byte, error) {
	f := &ChromeFile{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}

	// Assign pids per process label, in first-appearance order.
	pids := map[string]int{}
	var procs []string
	for _, sp := range td.Spans {
		if _, ok := pids[sp.Proc]; !ok {
			pids[sp.Proc] = len(pids) + 1
			procs = append(procs, sp.Proc)
		}
	}
	for _, proc := range procs {
		name := proc
		if name == "" {
			name = "kumquat"
		}
		f.TraceEvents = append(f.TraceEvents, ChromeEvent{
			Name: "process_name", Ph: "M", Pid: pids[proc], Tid: 0,
			Args: map[string]string{"name": name},
		})
	}

	// Lay spans onto lanes per process: sorted by start (longer first on
	// ties), a span joins the first lane whose open-interval stack it
	// nests into (or that has fully drained), else opens a new lane.
	type lane struct{ ends []int64 } // stack of open end times, innermost last
	lanes := map[string][]*lane{}
	laneOf := make(map[string]int, len(td.Spans)) // span id → tid
	order := make([]int, len(td.Spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := td.Spans[order[a]], td.Spans[order[b]]
		if sa.StartUS != sb.StartUS {
			return sa.StartUS < sb.StartUS
		}
		return sa.DurUS > sb.DurUS
	})
	for _, i := range order {
		sp := td.Spans[i]
		end := sp.StartUS + sp.DurUS
		ls := lanes[sp.Proc]
		tid := -1
		for li, l := range ls {
			for len(l.ends) > 0 && l.ends[len(l.ends)-1] <= sp.StartUS {
				l.ends = l.ends[:len(l.ends)-1]
			}
			if len(l.ends) == 0 || end <= l.ends[len(l.ends)-1] {
				l.ends = append(l.ends, end)
				tid = li + 1
				break
			}
		}
		if tid < 0 {
			lanes[sp.Proc] = append(ls, &lane{ends: []int64{end}})
			tid = len(lanes[sp.Proc])
		}
		laneOf[sp.SpanID] = tid
	}

	for _, sp := range td.Spans {
		ev := ChromeEvent{
			Name: sp.Name, Ph: "X", Cat: "kumquat",
			Ts: sp.StartUS, Dur: sp.DurUS,
			Pid: pids[sp.Proc], Tid: laneOf[sp.SpanID],
		}
		if len(sp.Attrs) > 0 || sp.ParentID != "" {
			ev.Args = map[string]string{}
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Value
			}
			ev.Args["span_id"] = sp.SpanID
			if sp.ParentID != "" {
				ev.Args["parent_id"] = sp.ParentID
			}
		}
		f.TraceEvents = append(f.TraceEvents, ev)
		for _, e := range sp.Events {
			ie := ChromeEvent{
				Name: e.Name, Ph: "i", Cat: "kumquat", S: "t",
				Ts: e.AtUS, Pid: pids[sp.Proc], Tid: laneOf[sp.SpanID],
			}
			if len(e.Attrs) > 0 {
				ie.Args = map[string]string{}
				for _, a := range e.Attrs {
					ie.Args[a.Key] = a.Value
				}
			}
			f.TraceEvents = append(f.TraceEvents, ie)
		}
	}
	return json.Marshal(f)
}
