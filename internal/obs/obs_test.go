package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	tr := NewTracer(4, "test")
	_, sp := tr.StartTrace(context.Background(), "root")
	id := sp.SpanContext().TraceID
	if id.IsZero() {
		t.Fatal("StartTrace produced a zero trace id")
	}
	back, err := ParseTraceID(id.String())
	if err != nil {
		t.Fatalf("ParseTraceID(%q): %v", id.String(), err)
	}
	if back != id {
		t.Fatalf("round trip changed the id: %v != %v", back, id)
	}
	if _, err := ParseTraceID("zz"); err == nil {
		t.Fatal("ParseTraceID accepted malformed input")
	}
	if _, err := ParseTraceID(strings.Repeat("0", 32)); err == nil {
		t.Fatal("ParseTraceID accepted the all-zero id")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(4, "test")
	_, sp := tr.StartTrace(context.Background(), "root")
	h := sp.SpanContext().Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("malformed traceparent %q", h)
	}
	sc, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent rejected %q", h)
	}
	if sc != sp.SpanContext() {
		t.Fatalf("round trip changed the context: %+v != %+v", sc, sp.SpanContext())
	}
	for _, bad := range []string{
		"", "00-xyz", "01-" + h[3:], strings.Repeat("0", 55),
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01",
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent accepted %q", bad)
		}
	}
}

func TestSpanTreeRecording(t *testing.T) {
	tr := NewTracer(4, "coordinator")
	ctx, root := tr.StartTrace(context.Background(), "execute")
	root.Attr("mode", "optimized")
	root.AttrInt("k", 8)

	cctx, child := StartSpan(ctx, "stage")
	child.Event("retry")
	child.EventAttr("dispatch", "worker", "w1")
	child.EventInt("attempt", "n", 2)
	_, grand := StartSpan(cctx, "combine")
	grand.End()
	child.End()
	root.End()

	td, ok := tr.Trace(root.SpanContext().TraceID)
	if !ok {
		t.Fatal("finished trace not retrievable")
	}
	if len(td.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(td.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
		if sp.Proc != "coordinator" {
			t.Errorf("span %q proc = %q, want coordinator", sp.Name, sp.Proc)
		}
		if sp.TraceID != td.TraceID {
			t.Errorf("span %q trace id %q != %q", sp.Name, sp.TraceID, td.TraceID)
		}
	}
	if byName["execute"].ParentID != "" {
		t.Errorf("root has parent %q", byName["execute"].ParentID)
	}
	if byName["stage"].ParentID != byName["execute"].SpanID {
		t.Errorf("stage parent %q != root %q", byName["stage"].ParentID, byName["execute"].SpanID)
	}
	if byName["combine"].ParentID != byName["stage"].SpanID {
		t.Errorf("combine parent %q != stage %q", byName["combine"].ParentID, byName["stage"].SpanID)
	}
	if got := byName["stage"].Events; len(got) != 3 || got[0].Name != "retry" || got[1].Attrs[0].Value != "w1" || got[2].Attrs[0].Value != "2" {
		t.Errorf("stage events wrong: %+v", got)
	}
	var haveMode, haveK bool
	for _, a := range byName["execute"].Attrs {
		haveMode = haveMode || (a.Key == "mode" && a.Value == "optimized")
		haveK = haveK || (a.Key == "k" && a.Value == "8")
	}
	if !haveMode || !haveK {
		t.Errorf("root attrs missing mode/k: %+v", byName["execute"].Attrs)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(2, "test")
	var ids []TraceID
	for i := 0; i < 3; i++ {
		_, sp := tr.StartTrace(context.Background(), "t")
		sp.End()
		ids = append(ids, sp.SpanContext().TraceID)
	}
	if _, ok := tr.Trace(ids[0]); ok {
		t.Fatal("oldest trace should have been evicted at capacity 2")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.Trace(id); !ok {
			t.Fatalf("trace %v evicted too early", id)
		}
	}
}

func TestMergeStitchesAndDedups(t *testing.T) {
	coord := NewTracer(4, "coordinator")
	worker := NewTracer(4, "worker")

	ctx, root := coord.StartTrace(context.Background(), "execute")
	_, shard := StartSpan(ctx, "shard")

	// The worker side joins via traceparent and records its own spans.
	sc, ok := ParseTraceparent(shard.SpanContext().Traceparent())
	if !ok {
		t.Fatal("worker rejected the shard traceparent")
	}
	wctx, wroot := worker.StartRemote(context.Background(), "rpc execute", sc)
	_, wstage := StartSpan(wctx, "stage")
	wstage.End()
	wroot.End()
	recs := wroot.Records()
	if len(recs) != 2 {
		t.Fatalf("worker recorded %d spans, want 2", len(recs))
	}

	// The coordinator merges the shipped records — twice, as duplicate
	// trailers would under retries; dedup keeps one copy.
	coord.Merge(recs)
	coord.Merge(recs)
	shard.End()
	root.End()

	td, ok := coord.Trace(root.SpanContext().TraceID)
	if !ok {
		t.Fatal("stitched trace not retrievable")
	}
	if len(td.Spans) != 4 {
		t.Fatalf("stitched trace has %d spans, want 4 (root, shard, rpc, stage)", len(td.Spans))
	}
	procs := map[string]bool{}
	var rpcParent string
	for _, sp := range td.Spans {
		procs[sp.Proc] = true
		if sp.Name == "rpc execute" {
			rpcParent = sp.ParentID
		}
	}
	if !procs["coordinator"] || !procs["worker"] {
		t.Fatalf("stitched trace procs = %v, want both coordinator and worker", procs)
	}
	if rpcParent != shard.SpanContext().SpanID.String() {
		t.Fatalf("worker root parent %q != shard span %q", rpcParent, shard.SpanContext().SpanID)
	}
}

// TestTraceDisabledAllocations pins the disabled-tracer hot path at
// zero allocations: an untraced context through StartSpan, attribute
// and event annotation, and End must not allocate — the streaming
// executors ride this path on every chunk of every untraced run.
func TestTraceDisabledAllocations(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		sctx, sp := StartSpan(ctx, "stage")
		sp.Attr("spec", "sort")
		sp.AttrInt("chunks", 8)
		sp.Event("retry")
		sp.EventAttr("dispatch", "worker", "w1")
		sp.EventInt("attempt", "n", 1)
		if sp.Enabled() {
			t.Fatal("span enabled on untraced context")
		}
		_, child := StartSpan(sctx, "combine")
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled-tracer path allocated %.1f times per run, want 0", allocs)
	}
}

func TestNilTracerDisabled(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartTrace(context.Background(), "x")
	if sp.Enabled() {
		t.Fatal("nil tracer produced an enabled span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("nil tracer leaked a span into the context")
	}
	if _, sp := tr.StartRemote(ctx, "x", SpanContext{}); sp.Enabled() {
		t.Fatal("nil tracer produced an enabled remote span")
	}
	tr.Merge([]SpanRecord{{TraceID: "x"}}) // must not panic
	if _, ok := tr.Trace(TraceID{}); ok {
		t.Fatal("nil tracer returned a trace")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(2, "test")
	_, sp := tr.StartTrace(context.Background(), "root")
	sp.End()
	sp.End()
	td, _ := tr.Trace(sp.SpanContext().TraceID)
	if len(td.Spans) != 1 {
		t.Fatalf("double End recorded %d spans, want 1", len(td.Spans))
	}
	if td.Spans[0].DurUS < 0 {
		t.Fatalf("negative duration %d", td.Spans[0].DurUS)
	}
	if since := time.Now().UnixMicro() - td.Spans[0].StartUS; since < 0 {
		t.Fatalf("span starts in the future (delta %dµs)", since)
	}
}
