// Package obs is kumquat's observability plane: a zero-dependency,
// context-carried span tracer with W3C-style cross-process propagation
// and a Chrome trace-event exporter, so one slow request can be read as
// a causally-linked timeline across synth → plan → exec → combine →
// shard dispatch, stitched across coordinator and workers.
//
// The design axis is a strictly zero-overhead disabled path: every Span
// method is safe on a nil receiver and returns before any formatting or
// locking, StartSpan on an untraced context allocates nothing, and the
// instrumentation sites in the executors' hot loops guard any
// attribute-value construction behind Span.Enabled. A build without a
// Tracer in the context pays one pointer-typed context lookup per
// instrumented call and nothing else — pinned by
// TestTraceDisabledAllocations.
//
// Traces live in a bounded in-memory ring on the Tracer; a finished
// trace is retrievable until ring churn evicts it. Cross-process
// stitching works record-wise: a worker serving a traceparent-carrying
// request records its spans under the remote trace ID and ships them
// back as SpanRecords; the caller merges them into its own trace object
// (Tracer.Merge), deduplicated by span ID.
package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceID identifies one end-to-end trace (16 random bytes, rendered as
// 32 lowercase hex digits — the W3C trace-context width).
type TraceID [16]byte

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zeros value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// ParseTraceID parses a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("obs: trace id %q: want 32 hex digits", s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return t, fmt.Errorf("obs: trace id %q: %v", s, err)
	}
	if t.IsZero() {
		return t, fmt.Errorf("obs: trace id %q: all-zero ids are invalid", s)
	}
	return t, nil
}

// SpanID identifies one span within a trace (8 random bytes, 16 hex
// digits).
type SpanID [8]byte

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zeros value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext is the propagated slice of a span: its trace and its own
// ID — what crosses a process boundary in a traceparent header.
type SpanContext struct {
	// TraceID is the end-to-end trace the span belongs to.
	TraceID TraceID
	// SpanID is the span's own ID (the parent of whatever the remote
	// side starts).
	SpanID SpanID
}

// Traceparent renders the context in the W3C trace-context header form
// ("00-<trace-id>-<span-id>-01").
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header. Only version 00 is
// accepted; the sampled flag is ignored (kumquat traces whenever the
// header is present). Reports ok=false on any malformed input — a bad
// header disables stitching for the request, it never fails it.
func ParseTraceparent(h string) (SpanContext, bool) {
	var sc SpanContext
	// 2 (version) + 1 + 32 (trace id) + 1 + 16 (span id) + 1 + 2 (flags)
	if len(h) != 55 || h[:3] != "00-" || h[35] != '-' || h[52] != '-' {
		return sc, false
	}
	tid, err := ParseTraceID(h[3:35])
	if err != nil {
		return sc, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(h[36:52])); err != nil || sc.SpanID.IsZero() {
		return sc, false
	}
	sc.TraceID = tid
	return sc, true
}

// Attr is one key/value annotation on a span or event. Values are
// strings; AttrInt/EventInt format integers at record time so disabled
// call sites never pay for the conversion.
type Attr struct {
	// Key names the annotation.
	Key string `json:"key"`
	// Value is the annotation's rendered value.
	Value string `json:"value"`
}

// EventRecord is one point-in-time annotation inside a span — the wire
// and storage form of Span.Event.
type EventRecord struct {
	// Name labels the event (e.g. "retry", "speculate").
	Name string `json:"name"`
	// AtUS is the event time in microseconds since the Unix epoch.
	AtUS int64 `json:"at_us"`
	// Attrs carries the event's annotations, if any.
	Attrs []Attr `json:"attrs,omitempty"`
}

// SpanRecord is one finished span's wire and storage form: what a trace
// object holds, what a worker ships back in the trace trailer, and what
// GET /v1/traces/{id}?format=raw returns.
type SpanRecord struct {
	// TraceID and SpanID identify the span; ParentID is the parent
	// span's ID ("" for a local root).
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// Name is the span's operation name.
	Name string `json:"name"`
	// Proc labels the recording process (e.g. "kumquatd@:9917"), so
	// stitched traces keep coordinator and worker spans apart.
	Proc string `json:"proc,omitempty"`
	// StartUS is the span start in microseconds since the Unix epoch;
	// DurUS is the span duration in microseconds.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// Attrs carries the span's annotations.
	Attrs []Attr `json:"attrs,omitempty"`
	// Events carries the span's point-in-time annotations.
	Events []EventRecord `json:"events,omitempty"`
}

// TraceData is one trace's retrievable snapshot: every recorded span,
// local and merged-remote, sorted by start time.
type TraceData struct {
	// TraceID identifies the trace; Name is its root span's name.
	TraceID string `json:"trace_id"`
	Name    string `json:"name"`
	// Spans holds the recorded spans sorted by start time.
	Spans []SpanRecord `json:"spans"`
}

// trace is one trace's mutable record store. Spans append their record
// on End; remote records merge in deduplicated by span ID.
type trace struct {
	id   TraceID
	name string

	mu   sync.Mutex
	recs []SpanRecord
	seen map[string]bool // span IDs already recorded (dedup for Merge)
}

// add appends one finished span's record (first writer wins per span ID).
func (t *trace) add(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seen[rec.SpanID] {
		return
	}
	t.seen[rec.SpanID] = true
	t.recs = append(t.recs, rec)
}

// snapshot copies the trace into its retrievable form.
func (t *trace) snapshot() *TraceData {
	t.mu.Lock()
	spans := make([]SpanRecord, len(t.recs))
	copy(spans, t.recs)
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	return &TraceData{TraceID: t.id.String(), Name: t.name, Spans: spans}
}

// Tracer owns a bounded ring of recent traces. It is safe for
// concurrent use; a nil *Tracer is a valid disabled tracer (StartTrace
// and StartRemote return a nil span, Merge and Trace are no-ops).
type Tracer struct {
	proc string
	capn int

	mu     sync.Mutex
	traces []*trace // insertion order; oldest evicted past capn
	rng    *rand.Rand
}

// NewTracer builds a tracer that retains up to capacity recent traces
// (minimum 1), labeling every recorded span with proc so stitched
// traces keep processes apart.
func NewTracer(capacity int, proc string) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		capn: capacity,
		proc: proc,
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Proc returns the tracer's process label.
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// randTraceID draws a fresh random trace ID; callers hold t.mu.
func (t *Tracer) randTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		t.rng.Read(id[:]) //nolint:errcheck // math/rand never fails
	}
	return id
}

// randSpanID draws a fresh random span ID; callers hold t.mu.
func (t *Tracer) randSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		t.rng.Read(id[:]) //nolint:errcheck // math/rand never fails
	}
	return id
}

// insert registers a new trace object, evicting the oldest past capacity.
func (t *Tracer) insert(tr *trace) {
	t.traces = append(t.traces, tr)
	if n := len(t.traces) - t.capn; n > 0 {
		copy(t.traces, t.traces[n:])
		t.traces = t.traces[:t.capn]
	}
}

// find returns the newest trace object with the given ID, or nil.
// Callers hold t.mu.
func (t *Tracer) find(id TraceID) *trace {
	for i := len(t.traces) - 1; i >= 0; i-- {
		if t.traces[i].id == id {
			return t.traces[i]
		}
	}
	return nil
}

// StartTrace begins a new trace rooted at a span named name and returns
// the derived context carrying the root span. On a nil tracer it
// returns ctx unchanged and a nil (disabled) span.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	t.mu.Lock()
	tr := &trace{id: t.randTraceID(), name: name, seen: map[string]bool{}}
	sid := t.randSpanID()
	t.insert(tr)
	t.mu.Unlock()
	sp := &Span{tracer: t, tr: tr, name: name, sc: SpanContext{TraceID: tr.id, SpanID: sid}, start: time.Now()}
	return ContextWithSpan(ctx, sp), sp
}

// StartRemote joins a trace propagated from another process: the new
// span records under the remote trace ID with the remote span as its
// parent, in a private trace object (concurrent requests of the same
// remote trace never see each other's spans — each ships back exactly
// its own). On a nil tracer it returns ctx unchanged and a nil span.
func (t *Tracer) StartRemote(ctx context.Context, name string, sc SpanContext) (context.Context, *Span) {
	if t == nil || sc.TraceID.IsZero() {
		return ctx, nil
	}
	t.mu.Lock()
	tr := &trace{id: sc.TraceID, name: name, seen: map[string]bool{}}
	sid := t.randSpanID()
	t.insert(tr)
	t.mu.Unlock()
	sp := &Span{
		tracer: t, tr: tr, name: name,
		sc:     SpanContext{TraceID: sc.TraceID, SpanID: sid},
		parent: sc.SpanID,
		start:  time.Now(),
	}
	return ContextWithSpan(ctx, sp), sp
}

// Merge stitches remotely recorded span records into the newest local
// trace object with a matching trace ID, deduplicated by span ID.
// Records for unknown traces are dropped (the trace was evicted or the
// records are stale).
func (t *Tracer) Merge(recs []SpanRecord) {
	if t == nil || len(recs) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, rec := range recs {
		id, err := ParseTraceID(rec.TraceID)
		if err != nil {
			continue
		}
		if tr := t.find(id); tr != nil {
			tr.add(rec)
		}
	}
}

// Trace snapshots the newest retained trace with the given ID.
func (t *Tracer) Trace(id TraceID) (*TraceData, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	tr := t.find(id)
	t.mu.Unlock()
	if tr == nil {
		return nil, false
	}
	return tr.snapshot(), true
}

// Span is one timed operation in a trace. A nil *Span is the disabled
// span: every method returns immediately, so instrumentation sites need
// no nil checks — only attribute values whose construction itself costs
// (string joins, error rendering) should hide behind Enabled.
type Span struct {
	tracer *Tracer
	tr     *trace
	name   string
	sc     SpanContext
	parent SpanID
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []EventRecord
	ended  bool
}

// Enabled reports whether the span records anything — the guard for
// call sites whose attribute values are costly to build.
func (s *Span) Enabled() bool { return s != nil }

// SpanContext returns the span's propagation context (zero on a
// disabled span).
func (s *Span) SpanContext() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Tracer returns the tracer that owns the span (nil on a disabled span).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Attr annotates the span with a key/value pair.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// AttrInt annotates the span with an integer value, formatted only when
// the span is enabled.
func (s *Span) AttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Attr(key, strconv.FormatInt(v, 10))
}

// Event records a point-in-time annotation (e.g. "retry").
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	s.event(EventRecord{Name: name, AtUS: time.Now().UnixMicro()})
}

// EventAttr records an event carrying one key/value annotation.
func (s *Span) EventAttr(name, key, value string) {
	if s == nil {
		return
	}
	s.event(EventRecord{Name: name, AtUS: time.Now().UnixMicro(), Attrs: []Attr{{Key: key, Value: value}}})
}

// EventInt records an event carrying one integer annotation, formatted
// only when the span is enabled.
func (s *Span) EventInt(name, key string, v int64) {
	if s == nil {
		return
	}
	s.EventAttr(name, key, strconv.FormatInt(v, 10))
}

// event appends under the span lock (shard spans take events from
// concurrent attempt goroutines).
func (s *Span) event(e EventRecord) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// StartChild begins a child span of s. Most call sites use the
// package-level StartSpan, which threads the parent through the context.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	t.mu.Lock()
	sid := t.randSpanID()
	t.mu.Unlock()
	return &Span{
		tracer: t, tr: s.tr, name: name,
		sc:     SpanContext{TraceID: s.sc.TraceID, SpanID: sid},
		parent: s.sc.SpanID,
		start:  time.Now(),
	}
}

// End finishes the span and appends its record to the owning trace.
// Idempotent; a second End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		TraceID: s.sc.TraceID.String(),
		SpanID:  s.sc.SpanID.String(),
		Name:    s.name,
		Proc:    s.tracer.proc,
		StartUS: s.start.UnixMicro(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Attrs:   s.attrs,
		Events:  s.events,
	}
	if !s.parent.IsZero() {
		rec.ParentID = s.parent.String()
	}
	s.mu.Unlock()
	s.tr.add(rec)
}

// Records snapshots every span recorded so far in the span's trace
// object — what a worker ships back in the trace trailer after ending
// its root span. Nil on a disabled span.
func (s *Span) Records() []SpanRecord {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	out := make([]SpanRecord, len(s.tr.recs))
	copy(out, s.tr.recs)
	return out
}

// spanKey is the context key carrying the current span. An empty struct
// boxes without allocating, which keeps the disabled FromContext path
// allocation-free.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the current span. A
// nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// FromContext returns the context's current span, or nil (the disabled
// span) when the context carries none. Allocation-free either way.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan begins a child of the context's current span and returns
// the derived context carrying it. On an untraced context it returns
// ctx unchanged and a nil span without allocating — the zero-overhead
// disabled path every instrumentation site rides.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.StartChild(name)
	return ContextWithSpan(ctx, sp), sp
}
