package obs

import (
	"context"
	"testing"
)

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer(4, "coordinator")
	ctx, root := tr.StartTrace(context.Background(), "execute")
	root.Attr("mode", "optimized")
	cctx, stage := StartSpan(ctx, "stage")
	stage.EventAttr("dispatch", "worker", "w1")
	_, comb := StartSpan(cctx, "combine")
	comb.End()
	stage.End()
	root.End()

	td, ok := tr.Trace(root.SpanContext().TraceID)
	if !ok {
		t.Fatal("trace not retrievable")
	}
	data, err := td.ChromeTrace()
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	f, err := ParseChromeTrace(data)
	if err != nil {
		t.Fatalf("ParseChromeTrace: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}

	var metas, spans, instants int
	byName := map[string]ChromeEvent{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name != "process_name" || ev.Args["name"] != "coordinator" {
				t.Errorf("bad metadata event %+v", ev)
			}
		case "X":
			spans++
			byName[ev.Name] = ev
		case "i":
			instants++
			if ev.S != "t" || ev.Args["worker"] != "w1" {
				t.Errorf("bad instant event %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if metas != 1 || spans != 3 || instants != 1 {
		t.Fatalf("got %d metadata / %d span / %d instant events, want 1/3/1", metas, spans, instants)
	}
	rootEv, stageEv, combEv := byName["execute"], byName["stage"], byName["combine"]
	if rootEv.Args["mode"] != "optimized" {
		t.Errorf("root args missing mode: %+v", rootEv.Args)
	}
	if stageEv.Args["parent_id"] != rootEv.Args["span_id"] {
		t.Errorf("stage parent %q != root span %q", stageEv.Args["parent_id"], rootEv.Args["span_id"])
	}
	// All three spans nest by containment, so they share one lane.
	if rootEv.Tid != stageEv.Tid || stageEv.Tid != combEv.Tid {
		t.Errorf("nested spans split across lanes: %d/%d/%d", rootEv.Tid, stageEv.Tid, combEv.Tid)
	}
	if combEv.Ts < stageEv.Ts || stageEv.Ts < rootEv.Ts {
		t.Errorf("span starts out of order: %d/%d/%d", rootEv.Ts, stageEv.Ts, combEv.Ts)
	}
}

func TestChromeTraceLanesForOverlap(t *testing.T) {
	// Two sibling spans that overlap in time cannot share a lane; a
	// third that nests inside the first can.
	td := &TraceData{
		TraceID: "t",
		Spans: []SpanRecord{
			{TraceID: "t", SpanID: "a", Name: "shard-0", Proc: "coord", StartUS: 0, DurUS: 100},
			{TraceID: "t", SpanID: "b", Name: "shard-1", Proc: "coord", StartUS: 50, DurUS: 100},
			{TraceID: "t", SpanID: "c", Name: "rpc", ParentID: "a", Proc: "coord", StartUS: 10, DurUS: 20},
		},
	}
	data, err := td.ChromeTrace()
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	f, err := ParseChromeTrace(data)
	if err != nil {
		t.Fatalf("ParseChromeTrace: %v", err)
	}
	tids := map[string]int{}
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.Name] = ev.Tid
		}
	}
	if tids["shard-0"] == tids["shard-1"] {
		t.Errorf("overlapping siblings share lane %d", tids["shard-0"])
	}
	if tids["rpc"] != tids["shard-0"] {
		t.Errorf("nested span on lane %d, parent on %d", tids["rpc"], tids["shard-0"])
	}
}

func TestChromeTraceEmptyProcDefaultsName(t *testing.T) {
	td := &TraceData{TraceID: "t", Spans: []SpanRecord{{TraceID: "t", SpanID: "a", Name: "run", StartUS: 0, DurUS: 1}}}
	data, err := td.ChromeTrace()
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	f, err := ParseChromeTrace(data)
	if err != nil {
		t.Fatalf("ParseChromeTrace: %v", err)
	}
	var found bool
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" && ev.Args["name"] == "kumquat" {
			found = true
		}
	}
	if !found {
		t.Error("empty proc did not default to kumquat process name")
	}
}
