// Package poolpair checks that every buffer taken from the textio builder
// pool is returned: a textio.GetBuilder call must be paired with a
// textio.PutBuilder of the same variable in the same function, and the
// return should be deferred so early returns cannot leak the pooled
// buffer. A leaked builder silently degrades the combine plane's
// steady-state one-allocation guarantee (PR 3) back to the log-growth
// reallocation chain the pool exists to avoid.
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"kumquat/internal/analysis"
)

// getName and putName are the fully-qualified pool entry points.
const (
	getName = "kumquat/internal/textio.GetBuilder"
	putName = "kumquat/internal/textio.PutBuilder"
)

// Analyzer is the poolpair checker.
var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc: "check that every textio.GetBuilder has a matching, preferably " +
		"deferred, textio.PutBuilder in the same function (pooled-buffer leak)",
	Run: run,
}

// run applies the check to every function body in the package.
func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkBody(pass, fn.Body)
			}
		}
	}
	return nil
}

// acquisition records one GetBuilder call bound to a variable.
type acquisition struct {
	obj types.Object // the builder variable
	pos token.Pos    // the GetBuilder call site
}

// checkBody matches Get/Put pairs lexically within one function body
// (function literals included — pairing across a literal boundary still
// counts, which matches how the combine plane hands builders to worker
// closures).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var gets []acquisition
	puts := make(map[types.Object][]putSite)
	// inDefer marks put calls that run on the deferred path — either
	// `defer textio.PutBuilder(b)` directly or a put anywhere inside a
	// deferred closure.
	inDefer := make(map[token.Pos]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// b := textio.GetBuilder() (or b = ...): track the variable.
			if len(n.Rhs) == 1 && isCallTo(pass, n.Rhs[0], getName) {
				if len(n.Lhs) == 1 {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							gets = append(gets, acquisition{obj: obj, pos: n.Rhs[0].Pos()})
							return true
						}
					}
				}
				pass.Reportf(n.Pos(), "textio.GetBuilder result is not bound to a variable; the pooled buffer cannot be returned with PutBuilder")
			}
		case *ast.ExprStmt:
			if isCallTo(pass, n.X, getName) {
				pass.Reportf(n.Pos(), "textio.GetBuilder result is discarded; the pooled buffer cannot be returned with PutBuilder")
			}
		case *ast.DeferStmt:
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && putArg(pass, call) != nil {
					inDefer[call.Pos()] = true
				}
				return true
			})
		case *ast.CallExpr:
			if obj := putArg(pass, n); obj != nil {
				puts[obj] = append(puts[obj], putSite{pos: n.Pos(), deferred: inDefer[n.Pos()]})
			}
		}
		return true
	})

	for _, g := range gets {
		sites := puts[g.obj]
		if len(sites) == 0 {
			pass.Reportf(g.pos, "pooled buffer %s from textio.GetBuilder is never returned with textio.PutBuilder (leak)", g.obj.Name())
			continue
		}
		deferred := false
		var firstPut token.Pos
		for _, s := range sites {
			if s.deferred {
				deferred = true
			}
			if firstPut == token.NoPos || s.pos < firstPut {
				firstPut = s.pos
			}
		}
		if !deferred && returnsBetween(body, g.pos, firstPut) {
			pass.Reportf(g.pos, "pooled buffer %s may leak on an early return before textio.PutBuilder; use defer textio.PutBuilder(%s)", g.obj.Name(), g.obj.Name())
		}
	}
}

// putSite is one PutBuilder call for a tracked variable.
type putSite struct {
	pos      token.Pos
	deferred bool
}

// isCallTo reports whether expr is a call to the named function.
func isCallTo(pass *analysis.Pass, expr ast.Expr, fullName string) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.FullName() == fullName
}

// putArg returns the variable passed to a PutBuilder call, or nil when
// call is not a PutBuilder of a plain identifier.
func putArg(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.FullName() != putName || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

// returnsBetween reports whether body contains a return statement lexically
// between two positions — the window where a non-deferred PutBuilder can be
// skipped.
func returnsBetween(body *ast.BlockStmt, from, to token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		// A return whose expression contains the put itself (returning a
		// closure that puts the buffer back) does not skip the put, hence
		// the End() bound.
		if r, ok := n.(*ast.ReturnStmt); ok && r.Pos() > from && r.End() < to {
			found = true
		}
		return !found
	})
	return found
}
