// Package a is the poolpair fixture: every way to mishandle a pooled
// builder, next to the correct pairings that must not fire.
package a

import (
	"strings"

	"kumquat/internal/textio"
)

// leak never returns the builder.
func leak() string {
	b := textio.GetBuilder() // want `never returned with textio\.PutBuilder`
	b.WriteString("x")
	return b.String()
}

// earlyReturn has a put, but a return can skip it.
func earlyReturn(s string) string {
	b := textio.GetBuilder() // want `may leak on an early return`
	b.WriteString(s)
	if strings.HasPrefix(s, "q") {
		return ""
	}
	out := b.String()
	textio.PutBuilder(b)
	return out
}

// discarded drops the pooled buffer on the floor.
func discarded() {
	textio.GetBuilder() // want `result is discarded`
}

// goodDefer is the canonical pairing.
func goodDefer(s string) string {
	b := textio.GetBuilder()
	defer textio.PutBuilder(b)
	b.WriteString(s)
	return b.String()
}

// goodStraightLine puts without a defer but with no return in between —
// acceptable, no diagnostic.
func goodStraightLine(s string) string {
	b := textio.GetBuilder()
	b.WriteString(s)
	out := b.String()
	textio.PutBuilder(b)
	return out
}

// goodClosure pairs across a worker-closure boundary like the combine
// plane does.
func goodClosure(s string) func() {
	b := textio.GetBuilder()
	return func() {
		b.WriteString(s)
		textio.PutBuilder(b)
	}
}
