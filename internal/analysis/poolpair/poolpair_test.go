package poolpair_test

import (
	"testing"

	"kumquat/internal/analysis/analysistest"
	"kumquat/internal/analysis/poolpair"
)

// TestPoolpair proves the analyzer fires on leaks, early returns and
// discarded builders, and stays silent on the correct pairings.
func TestPoolpair(t *testing.T) {
	analysistest.Run(t, poolpair.Analyzer, "testdata/src/a")
}
