// Package analysis is the repository's static-analysis plane: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus an offline package loader.
//
// The container that builds this repo has no module proxy access, so the
// canonical x/tools framework cannot be vendored; this package mirrors its
// API shape closely enough that the analyzers under internal/analysis/...
// are a mechanical port away from running under the real multichecker if
// x/tools ever becomes available. Each analyzer encodes one invariant the
// paper's guarantees rest on but the compiler cannot see — see the package
// docs of poolpair, ctxflow, hotalloc, goroleak, captable and docs.
//
// Type information is produced without the network: packages are
// enumerated with `go list -export -deps -json` (which also compiles
// export data into the build cache) and imports are resolved through the
// standard library's gc importer with a lookup function over those export
// files. This works for module-local and standard-library imports alike
// and needs nothing beyond the Go toolchain itself.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name, what it enforces, and
// a Run function applied to each loaded package. The shape mirrors
// x/tools' analysis.Analyzer (minus Requires/Facts, which no kqvet
// analyzer needs).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, baselines and JSON
	// reports. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `kqvet -help`:
	// the invariant the analyzer encodes and why the repo cares.
	Doc string
	// Run analyzes one package, reporting findings through pass.Report.
	// A non-nil error aborts the whole kqvet run (reserved for internal
	// failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	// Analyzer is the checker this pass is running.
	Analyzer *Analyzer
	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet
	// Files holds the package's parsed non-test source files, comments
	// included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and object resolution for every expression
	// and identifier in Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position inside the pass's file set and a
// human-readable message stating the violated invariant.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message states the violation. Messages are part of the baseline
	// key, so they should be stable across runs (no counters, hashes or
	// absolute paths).
	Message string
}

// CalleeFunc resolves the function or method a call expression invokes,
// looking through parentheses. It returns nil for calls through function
// values, type conversions, and builtins — the cases where no *types.Func
// names the callee. Shared by every analyzer that matches calls by
// fully-qualified name (e.g. "context.Background",
// "(*sync.WaitGroup).Add").
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}
