package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("kumquat/internal/textio"), or
	// the directory-derived pseudo-path for fixture packages loaded with
	// LoadDir.
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset positions the package's syntax.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the fully-populated type information for Files.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Name       string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// listFields is the JSON field projection every loader query uses.
const listFields = "-json=ImportPath,Dir,Export,GoFiles,Name,Standard,DepOnly,Error"

// Load enumerates the packages matching patterns (resolved relative to
// dir), type-checks each non-dependency match from source, and returns
// them sorted by import path. Test files are excluded: kqvet's invariants
// govern library code, and the analyzers that care (ctxflow) additionally
// skip main packages themselves.
//
// Import resolution is fully offline: the same `go list -export -deps`
// call that enumerates the packages compiles export data for every
// dependency into the build cache, and the stdlib gc importer reads those
// files back through a lookup function.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"-e", "-export", "-deps", listFields}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := typecheck(t.ImportPath, t.Dir, files, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads the single package rooted at dir by parsing its non-test
// .go files directly — without asking the go tool to recognize dir as a
// package. This is the fixture loader: analyzer testdata lives under
// testdata/ directories the go tool refuses to enumerate, and hand
// assembly also sidesteps the internal-import restriction so fixtures may
// exercise kumquat/internal/... APIs. Imports are resolved through the
// same export-data mechanism as Load, with `go list` run from dir's
// nearest module (falling back to the current directory's module for
// testdata trees).
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	// Pre-scan imports so one go list call resolves every dependency.
	imports, err := scanImports(files)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		args := append([]string{"-e", "-export", "-deps", listFields}, imports...)
		listed, err := goList(dir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return typecheck(filepath.Base(dir), dir, files, exports)
}

// scanImports parses just the import clauses of files and returns the
// union of imported paths, "unsafe" and "C" excluded (neither has export
// data; the type checker resolves unsafe itself).
func scanImports(files []string) ([]string, error) {
	fset := token.NewFileSet()
	seen := make(map[string]bool)
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		for _, imp := range af.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != "unsafe" && path != "C" {
				seen[path] = true
			}
		}
	}
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// typecheck parses files and type-checks them as package path, resolving
// imports through the export-data map.
func typecheck(path, dir string, files []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		parsed = append(parsed, af)
	}
	imp := importer.ForCompiler(fset, "gc", func(importPath string) (io.ReadCloser, error) {
		exp, ok := exports[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(exp)
	})
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}

// ModuleRoot returns the directory of the module enclosing dir, so
// finding paths can be reported relative to a stable root. It falls back
// to dir itself outside a module.
func ModuleRoot(dir string) string {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	gomod := strings.TrimSpace(string(out))
	if err != nil || gomod == "" || gomod == os.DevNull {
		return dir
	}
	return filepath.Dir(gomod)
}
