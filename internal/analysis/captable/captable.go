// Package captable guards the combine plane's capability table: every
// implementation of dsl.Op must declare Associative itself — explicitly,
// with a doc comment justifying the declared associativity — because a
// truthful Associative is what licenses CombineKTree's balanced-tree
// reduction (a wrong inherited default silently changes parallel output).
// It also flags ad-hoc accumulator folds over Op.Eval outside the dsl
// package: re-bracketing a k-way combine by hand bypasses the
// associativity gate and the tree/fold conformance suite, so k-way
// combines must route through CombineKTree.
package captable

import (
	"go/ast"
	"go/types"

	"kumquat/internal/analysis"
)

// dslPath is the package that owns the Op capability contract.
const dslPath = "kumquat/internal/dsl"

// Analyzer is the captable checker.
var Analyzer = &analysis.Analyzer{
	Name: "captable",
	Doc: "require every dsl.Op implementation to declare a documented " +
		"Associative and forbid ad-hoc combiner folds that bypass CombineKTree",
	Run: run,
}

// run applies both capability rules when the package can see dsl.Op.
func run(pass *analysis.Pass) error {
	op := opInterface(pass)
	if op == nil {
		return nil
	}
	checkDeclarations(pass, op)
	if pass.Pkg.Path() != dslPath {
		checkFolds(pass, op)
	}
	return nil
}

// opInterface resolves the dsl.Op interface from the pass's package or
// its direct imports; nil when dsl is out of view.
func opInterface(pass *analysis.Pass) *types.Interface {
	dsl := pass.Pkg
	if dsl.Path() != dslPath {
		dsl = nil
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == dslPath {
				dsl = imp
				break
			}
		}
	}
	if dsl == nil {
		return nil
	}
	obj, ok := dsl.Scope().Lookup("Op").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// checkDeclarations verifies every Op-implementing named type in the
// package declares a documented Associative of its own.
func checkDeclarations(pass *analysis.Pass, op *types.Interface) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue // interfaces state the contract, they don't implement it
		}
		if !types.Implements(named, op) && !types.Implements(types.NewPointer(named), op) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(named, true, pass.Pkg, "Associative")
		fn, ok := obj.(*types.Func)
		if !ok {
			continue // cannot implement Op without Associative; unreachable
		}
		if recv := receiverNamed(fn); recv != named {
			pass.Reportf(tn.Pos(), "%s implements dsl.Op but inherits Associative from an embedded type; declare Associative explicitly on %s", name, name)
			continue
		}
		if decl := findFuncDecl(pass, fn); decl != nil && decl.Doc == nil {
			pass.Reportf(decl.Pos(), "Associative on %s must carry a doc comment justifying the declared associativity", name)
		}
	}
}

// receiverNamed returns the named type a method is declared on (pointer
// receivers dereferenced), or nil.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// findFuncDecl locates the syntax of a function declared in this package.
func findFuncDecl(pass *analysis.Pass, fn *types.Func) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Pos() == fn.Pos() {
				return fd
			}
		}
	}
	return nil
}

// checkFolds flags accumulator loops over Op.Eval outside dsl.
func checkFolds(pass *analysis.Pass, op *types.Interface) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				assign, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, rhs := range assign.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isOpEval(pass, call, op) {
						continue
					}
					if accumulates(assign, call) {
						pass.Reportf(assign.Pos(), "ad-hoc combiner fold over Op.Eval re-brackets the reduction and bypasses the Associative gate; route k-way combines through CombineKTree")
					}
				}
				return true
			})
			return true
		})
	}
}

// isOpEval reports whether call invokes Eval on a value whose type
// implements dsl.Op.
func isOpEval(pass *analysis.Pass, call *ast.CallExpr, op *types.Interface) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Eval" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	return types.Implements(t, op) ||
		types.Implements(types.NewPointer(t), op) ||
		types.AssignableTo(t, op)
}

// accumulates reports whether an assignment feeds one of its own LHS
// variables back into the call's arguments — the fold signature.
func accumulates(assign *ast.AssignStmt, call *ast.CallExpr) bool {
	lhs := make(map[string]bool)
	for _, l := range assign.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
			lhs[id.Name] = true
		}
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && lhs[id.Name] {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
