// Package a is the captable fixture: dsl.Op implementations with
// inherited or undocumented Associative declarations, and an ad-hoc
// combiner fold, next to the declared-and-routed shapes that must not
// fire.
package a

import "kumquat/internal/dsl"

// Base is a well-formed operator: every capability declared on the type
// itself, Associative documented.
type Base struct{}

// Class returns the recursive-operator class.
func (Base) Class() dsl.Class { return dsl.RecOpClass }

// Size is a fixed combinator size.
func (Base) Size() int { return 2 }

// InDomain accepts every stream.
func (Base) InDomain(env *dsl.Env, y string) bool { return true }

// Eval concatenates its operands.
func (Base) Eval(env *dsl.Env, y1, y2 string) (string, error) { return y1 + y2, nil }

// Associative holds: concatenation brackets freely.
func (Base) Associative() bool { return true }

// String names the operator.
func (Base) String() string { return "base" }

// Inherited implements dsl.Op purely by promotion, Associative included —
// the capability table must be declared, not inherited.
type Inherited struct { // want `inherits Associative from an embedded type`
	Base
}

// NoDoc declares its own Associative but without the justifying doc
// comment.
type NoDoc struct {
	Base
}

func (NoDoc) Associative() bool { return false } // want `must carry a doc comment`

// foldByHand re-brackets a k-way combine manually: the accumulator flows
// straight back into Eval every iteration.
func foldByHand(env *dsl.Env, op dsl.Op, outs []string) (string, error) {
	acc := outs[0]
	for _, o := range outs[1:] {
		acc, _ = op.Eval(env, acc, o) // want `ad-hoc combiner fold over Op\.Eval`
	}
	return acc, nil
}

// combineOnce applies a combiner exactly once — a binary combine is not a
// fold, no diagnostic.
func combineOnce(env *dsl.Env, op dsl.Op, y1, y2 string) (string, error) {
	return op.Eval(env, y1, y2)
}

// routed goes through the sanctioned k-way entry point.
func routed(env *dsl.Env, c dsl.Candidate, outs []string) (string, error) {
	return dsl.CombineKTree(env, c, outs, 4)
}
