package captable_test

import (
	"testing"

	"kumquat/internal/analysis/analysistest"
	"kumquat/internal/analysis/captable"
)

// TestCaptable proves the analyzer fires on inherited and undocumented
// Associative declarations and on ad-hoc Op.Eval folds, and stays silent
// on declared operators, binary combines and CombineKTree-routed k-way
// combines.
func TestCaptable(t *testing.T) {
	analysistest.Run(t, captable.Analyzer, "testdata/src/a")
}
