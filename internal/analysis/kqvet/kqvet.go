// Package kqvet drives the repository's analyzer suite as one
// multichecker: it loads the requested packages, runs every registered
// analyzer, applies the committed baseline (pinned findings must carry a
// justification; stale pins fail the run), and renders text and JSON
// reports. cmd/kqvet is a thin flag wrapper over Main so tests can run
// the whole checker in-process.
package kqvet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"kumquat/internal/analysis"
	"kumquat/internal/analysis/captable"
	"kumquat/internal/analysis/ctxflow"
	"kumquat/internal/analysis/docs"
	"kumquat/internal/analysis/goroleak"
	"kumquat/internal/analysis/hotalloc"
	"kumquat/internal/analysis/poolpair"
)

// All returns the registered analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		captable.Analyzer,
		ctxflow.Analyzer,
		docs.Analyzer,
		goroleak.Analyzer,
		hotalloc.Analyzer,
		poolpair.Analyzer,
	}
}

// Options configures one kqvet run.
type Options struct {
	// Dir is the working directory for package resolution ("" = cwd).
	Dir string
	// Patterns are go-list package patterns; default ./...
	Patterns []string
	// Baseline is the path of the committed baseline file; relative
	// paths resolve against Dir. Empty disables baselining.
	Baseline string
	// WriteBaseline regenerates the baseline from the current findings
	// (preserving justifications of entries that still match) instead of
	// failing on them.
	WriteBaseline bool
	// JSONOut, when nonempty, receives the full findings report —
	// baselined findings included — as indented JSON (the CI artifact).
	JSONOut string
	// Analyzers filters the suite by name; empty runs everything.
	Analyzers []string
}

// Report is the JSON artifact shape.
type Report struct {
	// Analyzers names the suite that ran.
	Analyzers []string `json:"analyzers"`
	// Findings holds every diagnostic, baselined ones included.
	Findings []analysis.Finding `json:"findings"`
	// Unbaselined counts the findings that fail the run.
	Unbaselined int `json:"unbaselined"`
}

// Exit codes: Main returns 0 on a clean run, 1 when any unbaselined,
// unjustified or stale finding survives, and 2 on an internal error.
const (
	// ExitClean marks a run with no failing findings.
	ExitClean = 0
	// ExitFindings marks unbaselined findings, unjustified pins or stale
	// baseline entries.
	ExitFindings = 1
	// ExitError marks a loader or analyzer failure.
	ExitError = 2
)

// Main runs the multichecker and writes human-readable findings to
// stderr. It returns the process exit code.
func Main(opts Options, stdout, stderr io.Writer) int {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	suite, err := selectAnalyzers(opts.Analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "kqvet: %v\n", err)
		return ExitError
	}
	pkgs, err := analysis.Load(dir, opts.Patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "kqvet: %v\n", err)
		return ExitError
	}
	root := analysis.ModuleRoot(dir)
	findings, err := analysis.RunAnalyzers(root, pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "kqvet: %v\n", err)
		return ExitError
	}

	var stale []analysis.BaselineEntry
	baselinePath := ""
	if opts.Baseline != "" {
		baselinePath = opts.Baseline
		if !filepath.IsAbs(baselinePath) {
			baselinePath = filepath.Join(dir, baselinePath)
		}
		if opts.WriteBaseline {
			return writeBaseline(baselinePath, findings, stderr)
		}
		base, err := analysis.ReadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "kqvet: %v\n", err)
			return ExitError
		}
		stale = base.Apply(findings)
	}

	code := ExitClean
	unbaselined := 0
	for _, f := range findings {
		switch {
		case !f.Baselined:
			unbaselined++
			fmt.Fprintf(stderr, "%s\n", f)
			code = ExitFindings
		case f.Justification == "":
			unbaselined++
			fmt.Fprintf(stderr, "%s [baselined without justification — explain or fix]\n", f)
			code = ExitFindings
		}
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "kqvet: stale baseline entry (finding no longer occurs): %s: %s: %s\n",
			e.File, e.Analyzer, e.Message)
		code = ExitFindings
	}

	if opts.JSONOut != "" {
		rep := Report{Findings: findings, Unbaselined: unbaselined}
		for _, a := range suite {
			rep.Analyzers = append(rep.Analyzers, a.Name)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(opts.JSONOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "kqvet: writing %s: %v\n", opts.JSONOut, err)
			return ExitError
		}
	}

	baselined := len(findings) - unbaselined
	fmt.Fprintf(stdout, "kqvet: %d packages, %d analyzers: %d findings (%d baselined, %d failing)\n",
		len(pkgs), len(suite), len(findings), baselined, unbaselined)
	return code
}

// selectAnalyzers resolves a name filter against the registry.
func selectAnalyzers(names []string) ([]*analysis.Analyzer, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(analyzerNames(all), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// analyzerNames lists the suite's names, sorted.
func analyzerNames(as []*analysis.Analyzer) []string {
	var names []string
	for _, a := range as {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// writeBaseline regenerates the baseline file from findings, carrying
// forward the justification of every entry that still matches and leaving
// new entries' justifications empty for the author to fill in (kqvet
// fails until they do).
func writeBaseline(path string, findings []analysis.Finding, stderr io.Writer) int {
	prev, err := analysis.ReadBaseline(path)
	if err != nil {
		fmt.Fprintf(stderr, "kqvet: %v\n", err)
		return ExitError
	}
	prev.Apply(findings)
	entries := make([]analysis.BaselineEntry, 0, len(findings))
	for _, f := range findings {
		entries = append(entries, analysis.BaselineEntry{
			Analyzer:      f.Analyzer,
			File:          f.File,
			Message:       f.Message,
			Justification: f.Justification,
		})
	}
	if err := analysis.WriteBaseline(path, entries); err != nil {
		fmt.Fprintf(stderr, "kqvet: %v\n", err)
		return ExitError
	}
	fmt.Fprintf(stderr, "kqvet: wrote %d entries to %s (fill in empty justifications)\n", len(entries), path)
	return ExitClean
}
