// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want "regexp"` comments in the fixture
// sources — the same convention as golang.org/x/tools'
// go/analysis/analysistest, re-implemented over the offline loader so it
// works without the x/tools dependency.
//
// A fixture line expecting a diagnostic carries a trailing comment:
//
//	b := textio.GetBuilder() // want `never returned with PutBuilder`
//
// Multiple expectations may follow one `want`, each in its own quoted
// (double-quoted or backquoted) Go string. Every diagnostic must match an
// expectation on its line and every expectation must be matched by a
// diagnostic; any surplus on either side fails the test.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"kumquat/internal/analysis"
)

// wantRE extracts the quoted expectation strings after a `want` marker.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package directory (conventionally
// testdata/src/<name> relative to the analyzer's package), applies a, and
// reports every mismatch between actual diagnostics and `// want`
// expectations as a test error.
func Run(t *testing.T, a *analysis.Analyzer, fixtureDirs ...string) {
	t.Helper()
	for _, dir := range fixtureDirs {
		runDir(t, a, dir)
	}
}

// expectation is one unmatched `want` pattern at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// runDir checks analyzer a against one fixture package.
func runDir(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	scrubWants(pkg)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on fixture %s: %v", a.Name, dir, err)
	}

	used := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		file := filepath.Base(pos.Filename)
		matched := false
		for i, w := range wants {
			if !used[i] && w.file == file && w.line == pos.Line && w.re.MatchString(d.Message) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, file, pos.Line, d.Message)
		}
	}
	for i, w := range wants {
		if !used[i] {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none",
				a.Name, w.re, w.file, w.line)
		}
	}
}

// collectWants parses the `// want` expectations out of every comment in
// the fixture package.
func collectWants(t *testing.T, pkg *analysis.Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[len("want "):], -1) {
					pat, err := unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// scrubWants detaches comment groups that consist solely of `want`
// expectations from the doc/trailing-comment slots of declarations, so
// comment-sensitive analyzers (docs) see the fixture as it would look
// without the test metadata. The groups stay in File.Comments, where
// positions are still needed; only the semantic attachment is removed.
func scrubWants(pkg *analysis.Package) {
	pureWant := func(cg *ast.CommentGroup) bool {
		if cg == nil {
			return false
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				return false
			}
		}
		return true
	}
	clear := func(cg **ast.CommentGroup) {
		if pureWant(*cg) {
			*cg = nil
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				clear(&n.Doc)
			case *ast.GenDecl:
				clear(&n.Doc)
			case *ast.TypeSpec:
				clear(&n.Doc)
				clear(&n.Comment)
			case *ast.ValueSpec:
				clear(&n.Doc)
				clear(&n.Comment)
			case *ast.ImportSpec:
				clear(&n.Doc)
				clear(&n.Comment)
			case *ast.Field:
				clear(&n.Doc)
				clear(&n.Comment)
			}
			return true
		})
	}
}

// unquote interprets a backquoted or double-quoted Go string literal.
func unquote(q string) (string, error) {
	if len(q) >= 2 && q[0] == '`' {
		return q[1 : len(q)-1], nil
	}
	return strconv.Unquote(q)
}
