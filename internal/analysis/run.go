package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
)

// Finding is one resolved diagnostic: the analyzer that produced it, a
// root-relative file position, and the message. It is the unit the
// baseline pins and the JSON report serializes.
type Finding struct {
	// Analyzer names the checker that fired.
	Analyzer string `json:"analyzer"`
	// File is the slash-separated path of the offending file, relative
	// to the root passed to RunAnalyzers (the module root under kqvet).
	File string `json:"file"`
	// Line and Col locate the finding within File (1-based).
	Line int `json:"line"`
	// Col is the 1-based column of the finding.
	Col int `json:"col"`
	// Message states the violated invariant.
	Message string `json:"message"`
	// Baselined marks a finding matched by a justified baseline entry;
	// kqvet reports it but does not fail on it.
	Baselined bool `json:"baselined,omitempty"`
	// Justification carries the matching baseline entry's justification
	// for a baselined finding.
	Justification string `json:"justification,omitempty"`
}

// Key is the position-independent identity used for baseline matching:
// line and column are deliberately excluded so unrelated edits above a
// pinned finding do not un-pin it.
func (f Finding) Key() string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

// String renders the finding in the familiar vet style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// RunAnalyzers applies every analyzer to every package and returns the
// merged findings sorted by file, line, column and analyzer. File paths
// are relativized to root when possible.
func RunAnalyzers(root string, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				file := pos.Filename
				if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
					file = rel
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					File:     filepath.ToSlash(file),
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
