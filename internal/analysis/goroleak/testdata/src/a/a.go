// Package a is the goroleak fixture: unbounded goroutines next to the
// two sanctioned shapes (WaitGroup join, ctx-cancel exit).
package a

import (
	"context"
	"sync"
)

// fireAndForget launches a goroutine nothing ever joins or cancels.
func fireAndForget(work func()) {
	go work() // want `neither joined by a sync\.WaitGroup nor bounded by a ctx-cancel exit path`
}

// leakyLit is the function-literal face of the same leak.
func leakyLit(items []string, f func(string)) {
	for _, it := range items {
		go func(it string) { // want `neither joined by a sync\.WaitGroup nor bounded by a ctx-cancel exit path`
			f(it)
		}(it)
	}
}

// pooled is the worker-pool shape: WaitGroup-joined, no diagnostic.
func pooled(items []string, f func(string)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it string) {
			defer wg.Done()
			f(it)
		}(it)
	}
	wg.Wait()
}

// pump is the streaming-reader shape: ctx-cancel bounded, no diagnostic.
func pump(ctx context.Context, out chan<- int) {
	go func() {
		for i := 0; ; i++ {
			select {
			case out <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
}
