package goroleak_test

import (
	"testing"

	"kumquat/internal/analysis/analysistest"
	"kumquat/internal/analysis/goroleak"
)

// TestGoroleak proves the analyzer fires on fire-and-forget goroutines
// and stays silent on WaitGroup-joined pools and ctx-bounded pumps.
func TestGoroleak(t *testing.T) {
	analysistest.Run(t, goroleak.Analyzer, "testdata/src/a")
}
