// Package goroleak checks that every goroutine launched in library code
// is bounded: either the launching function joins it through a
// sync.WaitGroup (the worker-pool shape used by the combine plane and the
// chunk executors), or the goroutine body has a ctx-cancel exit path
// (selects on ctx.Done(), the shape of the streaming reader pump). A
// fire-and-forget goroutine outlives its request, keeps buffers alive,
// and — under the service plane's admission control — silently erodes the
// in-flight accounting.
package goroleak

import (
	"go/ast"
	"go/types"

	"kumquat/internal/analysis"
)

// Analyzer is the goroleak checker.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "require every library goroutine to be WaitGroup-joined or " +
		"bounded by a ctx-cancel exit path",
	Run: run,
}

// run checks every `go` statement in a library package; main packages
// are exempt (a daemon's signal-watcher goroutine is process-scoped by
// design).
func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		// Walk with an explicit ancestor stack (ast.Inspect reports each
		// node's exit as a nil visit) so each `go` statement can see its
		// enclosing functions.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if g, ok := n.(*ast.GoStmt); ok {
				checkGo(pass, g, stack)
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

// checkGo validates one go statement against the bounding rules.
func checkGo(pass *analysis.Pass, g *ast.GoStmt, stack []ast.Node) {
	// Rule 1: an enclosing function joins workers through a WaitGroup.
	for i := len(stack) - 1; i >= 0; i-- {
		if body := funcBody(stack[i]); body != nil && usesWaitGroup(pass, body) {
			return
		}
	}
	// Rule 2: the goroutine body itself has a ctx-cancel exit path.
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok && hasCtxExit(pass, lit.Body) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine is neither joined by a sync.WaitGroup nor bounded by a ctx-cancel exit path (potential leak)")
}

// funcBody extracts the body of a function node.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// usesWaitGroup reports whether body calls Add/Done/Wait on a
// sync.WaitGroup.
func usesWaitGroup(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Add", "Done", "Wait":
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isWaitGroup(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "WaitGroup" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// hasCtxExit reports whether body references ctx.Done() — the canonical
// cancellation exit of a pump goroutine.
func hasCtxExit(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil &&
			fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			found = true
		}
		return !found
	})
	return found
}
