package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry pins one accepted finding. An entry without a
// Justification is an error, not a suppression: the baseline exists to
// make accepted findings visible and explained, never to silence them.
type BaselineEntry struct {
	// Analyzer, File and Message identify the finding (Finding.Key).
	Analyzer string `json:"analyzer"`
	// File is the module-root-relative, slash-separated path.
	File string `json:"file"`
	// Message is the finding's exact message.
	Message string `json:"message"`
	// Justification explains, in a sentence, why the finding is accepted
	// rather than fixed. Required.
	Justification string `json:"justification"`
}

// Baseline is the committed set of accepted findings.
type Baseline struct {
	// Entries lists every pinned finding, sorted by file then analyzer
	// then message for stable diffs.
	Entries []BaselineEntry `json:"entries"`
}

// ReadBaseline loads a baseline file. A missing file yields an empty
// baseline and no error, so a clean tree needs no baseline at all.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %v", path, err)
	}
	return &b, nil
}

// WriteBaseline writes entries to path, sorted, as indented JSON.
func WriteBaseline(path string, entries []BaselineEntry) error {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(Baseline{Entries: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// key builds the lookup identity of an entry, matching Finding.Key.
func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// Apply marks every finding matched by a baseline entry as Baselined and
// copies the justification over. It returns the stale entries — pins that
// matched no current finding — so the driver can fail on them: a fixed
// finding must leave the baseline, keeping the pin set an honest record.
func (b *Baseline) Apply(findings []Finding) (stale []BaselineEntry) {
	matched := make(map[string]bool)
	byKey := make(map[string]BaselineEntry, len(b.Entries))
	for _, e := range b.Entries {
		byKey[e.key()] = e
	}
	for i := range findings {
		if e, ok := byKey[findings[i].Key()]; ok {
			findings[i].Baselined = true
			findings[i].Justification = e.Justification
			matched[e.key()] = true
		}
	}
	for _, e := range b.Entries {
		if !matched[e.key()] {
			stale = append(stale, e)
		}
	}
	return stale
}
