// Package a is the ctxflow fixture: root contexts and misplaced ctx
// parameters in library code.
package a

import "context"

// rootCtx mints a fresh root context mid-library.
func rootCtx() error {
	ctx := context.Background() // want `context\.Background in library code severs cancellation`
	return work(ctx, "x")
}

// todoCtx hides an unfinished propagation chain.
func todoCtx() error {
	return work(context.TODO(), "y") // want `context\.TODO in library code severs cancellation`
}

// misplaced takes ctx second.
func misplaced(name string, ctx context.Context) error { // want `context\.Context must be the first parameter`
	return work(ctx, name)
}

// misplacedLit is the function-literal face of the same rule.
var misplacedLit = func(n int, ctx context.Context) { // want `context\.Context must be the first parameter`
	_ = work(ctx, "lit")
}

// work is the well-behaved shape: ctx first, no fresh roots.
func work(ctx context.Context, name string) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		_ = name
		return nil
	}
}

// derive builds child contexts from a caller's ctx — allowed.
func derive(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}
