// Command cmdmain is the ctxflow negative fixture: a main package may
// root its own context, so nothing here fires.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
