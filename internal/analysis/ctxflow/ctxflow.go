// Package ctxflow checks context discipline in library code: no
// context.Background()/context.TODO() outside main packages and tests
// (every worker path must inherit the caller's cancellation so parallel
// output stays byte-identical under cancellation), and any function that
// takes a context.Context must take it as its first parameter so the
// propagation chain is visible at every call site. Legacy context-free
// wrappers that intentionally root a fresh context are pinned in the
// kqvet baseline with a justification instead of being rewritten.
package ctxflow

import (
	"go/ast"
	"go/types"

	"kumquat/internal/analysis"
)

// Analyzer is the ctxflow checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background/TODO in non-main library code and " +
		"require context.Context parameters to come first",
	Run: run,
}

// run applies both context rules to a library package; main packages are
// exempt (an entry point legitimately roots its own context, usually via
// signal.NotifyContext).
func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRootContext(pass, n)
			case *ast.FuncDecl:
				if n.Type != nil {
					checkCtxFirst(pass, n.Type)
				}
			case *ast.FuncLit:
				checkCtxFirst(pass, n.Type)
			}
			return true
		})
	}
	return nil
}

// checkRootContext flags calls that mint a fresh root context.
func checkRootContext(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch fn.FullName() {
	case "context.Background", "context.TODO":
		pass.Reportf(call.Pos(), "%s in library code severs cancellation; thread the caller's ctx instead", fn.FullName())
	}
}

// checkCtxFirst flags context.Context parameters that are not the first
// parameter of their function.
func checkCtxFirst(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			idx += max(1, len(field.Names))
			continue
		}
		if isContext(tv.Type) && idx > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
			return
		}
		idx += max(1, len(field.Names))
	}
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
