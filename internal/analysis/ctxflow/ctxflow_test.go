package ctxflow_test

import (
	"testing"

	"kumquat/internal/analysis/analysistest"
	"kumquat/internal/analysis/ctxflow"
)

// TestCtxflow proves the analyzer fires on fresh root contexts and
// misplaced ctx parameters in library code, and stays silent in a main
// package.
func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/src/a", "testdata/src/cmdmain")
}
