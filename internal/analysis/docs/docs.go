// Package docs is the repository's godoc lint, migrated from
// internal/doclint into the kqvet static-analysis plane: every exported
// top-level identifier — type, function, method on an exported type,
// const or var — in the enforced packages must carry a doc comment. Group
// declarations (`const (...)`, `var (...)`) may document the group
// instead of each member.
//
// Enforcement covers the packages listed in Packages (entries ending in
// "/..." match by prefix) plus any package carrying the `//kqvet:docs`
// comment directive.
package docs

import (
	"go/ast"
	"strings"

	"kumquat/internal/analysis"
)

// Packages lists the enforced import paths: the synthesis-, service- and
// test-plane-facing packages doclint always covered, plus the dataflow
// optimizer and the static-analysis plane itself.
var Packages = []string{
	"kumquat/internal/synth",
	"kumquat/internal/synth/cache",
	"kumquat/internal/dsl",
	"kumquat/internal/server",
	"kumquat/internal/server/api",
	"kumquat/internal/server/client",
	"kumquat/internal/cluster",
	"kumquat/internal/faultinject",
	"kumquat/internal/conformance",
	"kumquat/internal/dataflow",
	"kumquat/internal/obs",
	"kumquat/internal/textio",
	"kumquat/internal/analysis/...",
}

// directive is the opt-in marker a package may carry in any file comment.
const directive = "//kqvet:docs"

// Analyzer is the docs checker.
var Analyzer = &analysis.Analyzer{
	Name: "docs",
	Doc: "require doc comments on every exported identifier of the " +
		"enforced packages (migrated internal/doclint)",
	Run: run,
}

// run lints the package when it is enforced.
func run(pass *analysis.Pass) error {
	if !enforced(pass) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				if d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					pass.Reportf(d.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
				}
			case *ast.GenDecl:
				lintGenDecl(pass, d)
			}
		}
	}
	return nil
}

// enforced reports whether the pass's package is under doc lint.
func enforced(pass *analysis.Pass) bool {
	path := pass.Pkg.Path()
	for _, p := range Packages {
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
		} else if path == p {
			return true
		}
	}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == directive {
					return true
				}
			}
		}
	}
	return false
}

// lintGenDecl checks a type/const/var declaration; a spec is documented
// if it or its enclosing group carries a comment.
func lintGenDecl(pass *analysis.Pass, d *ast.GenDecl) {
	kind := d.Tok.String()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				pass.Reportf(s.Pos(), "exported %s %s has no doc comment", kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a function is free-standing or a
// method on an exported type (methods on unexported types are not part
// of the package's godoc surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch t := typ.(type) {
		case *ast.StarExpr:
			typ = t.X
		case *ast.IndexExpr: // generic receiver
			typ = t.X
		case *ast.Ident:
			return t.IsExported()
		default:
			return true
		}
	}
}
