package docs_test

import (
	"testing"

	"kumquat/internal/analysis/analysistest"
	"kumquat/internal/analysis/docs"
)

// TestDocs proves the analyzer fires on undocumented exported identifiers
// in an enforced package and stays silent in an unenforced one.
func TestDocs(t *testing.T) {
	analysistest.Run(t, docs.Analyzer, "testdata/src/a", "testdata/src/plain")
}
