//kqvet:docs

// Package a is the docs fixture: a directive-enforced package with
// undocumented exported identifiers next to documented (and unexported)
// ones that must not fire.
package a

// Documented carries its comment.
type Documented struct{}

// Method is documented.
func (Documented) Method() {}

type Bare struct{} // want `exported type Bare has no doc comment`

func (Bare) Method() {} // want `exported method Method has no doc comment`

func Exported() {} // want `exported function Exported has no doc comment`

// Grouped constants may document the group.
const (
	GroupedA = 1
	GroupedB = 2
)

const Loose = 3 // want `exported const Loose has no doc comment`

var Exposed int // want `exported var Exposed has no doc comment`

// unexported identifiers are out of godoc's surface.
type internalType struct{}

func (internalType) Exported() {}

func helper() { _ = internalType{}; _ = Exposed }

var _ = helper
