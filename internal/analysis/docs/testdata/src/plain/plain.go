// Package plain is the docs negative fixture: not enforced, so its bare
// exported identifier stays silent.
package plain

type Bare struct{}
