package hotalloc_test

import (
	"testing"

	"kumquat/internal/analysis/analysistest"
	"kumquat/internal/analysis/hotalloc"
)

// TestHotalloc proves the analyzer fires on Sprintf, string concatenation
// and string<->[]byte conversions inside loops of a hot-designated
// package, and stays silent outside loops and in undesignated packages.
func TestHotalloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata/src/a", "testdata/src/cold")
}
