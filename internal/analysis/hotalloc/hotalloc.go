// Package hotalloc flags per-iteration allocation patterns inside loops
// in designated hot-path packages: fmt.Sprintf calls, string<->[]byte
// conversions, and string concatenation with +. The combine-plane
// speedups pinned in BENCH_combine.json hold only while the data plane
// stays allocation-lean, and ROADMAP item 3 (zero-copy []byte data plane)
// will rebuild exactly these call sites — this analyzer keeps new ones
// from creeping in ahead of that refactor.
//
// A package is hot when its import path is in HotPackages or any of its
// files carries the `//kqvet:hotpath` comment directive.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kumquat/internal/analysis"
)

// HotPackages lists the import paths held to the allocation-lean bar:
// the line data plane, the command kernels, and the DSL combine path.
var HotPackages = []string{
	"kumquat/internal/textio",
	"kumquat/internal/unix",
	"kumquat/internal/dsl",
}

// directive is the opt-in marker a package may carry in any file comment.
const directive = "//kqvet:hotpath"

// Analyzer is the hotalloc checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag fmt.Sprintf, string<->[]byte conversions and + string " +
		"concatenation inside loops of hot-path packages",
	Run: run,
}

// run checks every loop body in a hot package.
func run(pass *analysis.Pass) error {
	if !isHot(pass) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				checkLoop(pass, n.Body)
				return true
			case *ast.RangeStmt:
				checkLoop(pass, n.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// isHot reports whether the pass's package is designated hot.
func isHot(pass *analysis.Pass) bool {
	for _, p := range HotPackages {
		if pass.Pkg.Path() == p {
			return true
		}
	}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == directive {
					return true
				}
			}
		}
	}
	return false
}

// checkLoop walks one loop body. Nested loops are visited again by run's
// outer walk, but each offending node reports once (reported guards the
// string-concat chain; call/conversion checks are idempotent per node, and
// the reported set de-duplicates across the outer revisits).
func checkLoop(pass *analysis.Pass, body *ast.BlockStmt) {
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	// covered marks + chains already accounted for by an enclosing
	// construct (the RHS of a reported +=), so one statement reports once.
	covered := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// The outer walk re-enters nested loops; avoid double reports
			// by letting only the innermost enclosing loop claim them.
			if n.Pos() != body.Pos() {
				return false
			}
		case *ast.CallExpr:
			checkCall(pass, report, n)
		case *ast.BinaryExpr:
			checkConcat(pass, report, n, covered[n])
			if n.Op == token.ADD && isString(pass, n) {
				return false // checkConcat descended already
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass, n.Lhs[0]) {
				report(n.Pos(), "string += in hot-path loop reallocates per iteration; use a pooled builder (textio.GetBuilder)")
				if add, ok := ast.Unparen(n.Rhs[0]).(*ast.BinaryExpr); ok {
					covered[add] = true
				}
			}
		}
		return true
	})
}

// checkCall flags Sprintf and allocating conversions.
func checkCall(pass *analysis.Pass, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
		if fn.FullName() == "fmt.Sprintf" {
			report(call.Pos(), "fmt.Sprintf in hot-path loop allocates per iteration; preformat or use strconv/append")
		}
		return
	}
	// Conversion: the Fun position resolves to a type, with one operand.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	argT, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	to, from := tv.Type.Underlying(), argT.Type.Underlying()
	switch {
	case isStringT(to) && isByteSlice(from):
		report(call.Pos(), "string([]byte) conversion in hot-path loop copies the buffer; keep []byte or use textio.View")
	case isByteSlice(to) && isStringT(from):
		report(call.Pos(), "[]byte(string) conversion in hot-path loop copies the string; plumb []byte through")
	}
}

// checkConcat flags non-constant string + chains, reporting only the
// outermost + of a chain. inChain marks that an ancestor already reported.
func checkConcat(pass *analysis.Pass, report func(token.Pos, string, ...any), e *ast.BinaryExpr, inChain bool) {
	if e.Op != token.ADD || !isString(pass, e) {
		return
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return // constant-folded at compile time
	}
	if !inChain {
		report(e.Pos(), "string + concatenation in hot-path loop allocates per iteration; use a pooled builder (textio.GetBuilder)")
		inChain = true
	}
	// Descend to catch Sprintf/conversions nested under the chain without
	// re-reporting each sub-+.
	for _, sub := range []ast.Expr{e.X, e.Y} {
		ast.Inspect(sub, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkConcat(pass, report, n, inChain)
				if n.Op == token.ADD && isString(pass, n) {
					return false
				}
			case *ast.CallExpr:
				checkCall(pass, report, n)
			}
			return true
		})
	}
}

// isString reports whether expr's static type is (underlying) string.
func isString(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	return ok && tv.Type != nil && isStringT(tv.Type.Underlying())
}

// isStringT reports whether an underlying type is string.
func isStringT(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteSlice reports whether an underlying type is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
