// Package cold is the hotalloc negative fixture: not designated hot, so
// even a Sprintf-in-loop stays silent.
package cold

import "fmt"

// chatty allocates per iteration but is not on the hot path.
func chatty(names []string) []string {
	out := make([]string, 0, len(names))
	for i, n := range names {
		out = append(out, fmt.Sprintf("%d:%s", i, n))
	}
	return out
}
