//kqvet:hotpath

// Package a is the hotalloc fixture: a directive-designated hot package
// with per-iteration allocations in loops, next to the cold shapes that
// must not fire.
package a

import (
	"fmt"
	"strings"
)

// sprintfLoop formats inside the loop.
func sprintfLoop(names []string) []string {
	out := make([]string, 0, len(names))
	for i, n := range names {
		out = append(out, fmt.Sprintf("%d:%s", i, n)) // want `fmt\.Sprintf in hot-path loop`
	}
	return out
}

// concatLoop grows a string with +.
func concatLoop(lines []string) string {
	s := ""
	for _, l := range lines {
		s = s + l + "\n" // want `string \+ concatenation in hot-path loop`
	}
	return s
}

// plusAssignLoop is the += face of the same allocation; a + chain on the
// right of a reported += reports once, not twice.
func plusAssignLoop(lines []string) string {
	var s string
	for _, l := range lines {
		s += l // want `string \+= in hot-path loop`
	}
	for _, l := range lines {
		s += l + "!" // want `string \+= in hot-path loop`
	}
	return s
}

// convLoop round-trips string<->[]byte per iteration.
func convLoop(chunks [][]byte) int {
	n := 0
	for _, c := range chunks {
		s := string(c) // want `string\(\[\]byte\) conversion in hot-path loop`
		b := []byte(s) // want `\[\]byte\(string\) conversion in hot-path loop`
		n += len(b)
	}
	return n
}

// coldShapes allocate outside loops or not at all — no diagnostics.
func coldShapes(a, b string, raw []byte) string {
	joined := a + b            // outside a loop: fine
	header := fmt.Sprintf("%s", joined)
	body := string(raw)
	var sb strings.Builder
	for _, r := range body {
		sb.WriteRune(r) // builder writes don't reallocate per iteration
	}
	const prefix = "x" + "y" // constant-folded concat inside nothing
	_ = prefix
	return header + sb.String()
}

// constLoop uses a compile-time constant concat inside a loop — fine.
func constLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		const tag = "a" + "b"
		total += len(tag)
	}
	return total
}
