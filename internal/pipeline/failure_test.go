package pipeline

import (
	"strings"
	"testing"
)

// Failure-injection tests: errors must propagate out of every executor
// rather than corrupting output.

func TestSerialErrorPropagation(t *testing.T) {
	syn := newSynth()
	// xargs cat on a stream of non-file words fails at run time.
	plan := compilePlan(t, syn, "xargs cat\n")
	if _, err := plan.RunSerial(syn.Env, "not-a-file\n"); err == nil {
		t.Error("serial executor must surface command errors")
	}
	if _, err := plan.RunPipelined(syn.Env, "not-a-file\n"); err == nil {
		t.Error("pipelined executor must surface command errors")
	}
}

func TestParallelChunkErrorPropagation(t *testing.T) {
	syn := newSynth()
	// Register some real files, then poison one chunk with a missing one.
	syn.Env.FS.Register("ok1", "x\n")
	syn.Env.FS.Register("ok2", "y\n")
	plan := compilePlan(t, syn, "xargs cat\n")
	input := "ok1\nok2\nmissing-file\nok1\n"
	for _, k := range []int{2, 4} {
		if _, err := plan.RunParallel(syn.Env, input, k); err == nil {
			t.Errorf("u%d must surface chunk errors", k)
		}
		if _, err := plan.RunOptimized(syn.Env, input, k); err == nil {
			t.Errorf("T%d must surface chunk errors", k)
		}
	}
	// And with a clean input, all succeed and agree.
	clean := "ok1\nok2\nok1\n"
	want, err := plan.RunSerial(syn.Env, clean)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.RunParallel(syn.Env, clean, 3)
	if err != nil || got != want {
		t.Errorf("clean parallel run = %q, %v", got, err)
	}
}

func TestMissingInputFile(t *testing.T) {
	syn := newSynth()
	plan := compilePlan(t, syn, "cat never-registered.txt | sort\n")
	if _, err := plan.RunSerial(syn.Env, ""); err == nil {
		t.Error("missing input file must error")
	}
}

func TestCompileUnknownCommand(t *testing.T) {
	syn := newSynth()
	s, err := ParseScript("cat x | frobnicate -z\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(s.Pipelines[0], syn); err == nil {
		t.Error("unknown command must fail compilation")
	}
}

func TestParseScriptErrors(t *testing.T) {
	for _, bad := range []string{
		"",                    // no pipelines
		"# only a comment\n",  // no pipelines
		"cat a | | sort\n",    // empty segment
		"IN=${IN:-x}\n",       // assignment only
		"cat 'unterminated\n", // lexical error surfaces at compile, parse keeps raw text
	} {
		s, err := ParseScript(bad, nil)
		if err == nil {
			// The last case parses (tokenization happens later); compile
			// must then fail.
			if len(s.Pipelines) == 0 {
				t.Errorf("ParseScript(%q) returned no pipelines and no error", bad)
				continue
			}
			if _, cerr := Compile(s.Pipelines[0], newSynth()); cerr == nil {
				t.Errorf("neither parse nor compile failed for %q", bad)
			}
		}
	}
}

func TestExpandVarsBraces(t *testing.T) {
	vars := map[string]string{"IN": "data.txt", "K": "5"}
	cases := map[string]string{
		"cat $IN":        "cat data.txt",
		"cat ${IN}":      "cat data.txt",
		"head -n $K x":   "head -n 5 x",
		"echo $MISSING":  "echo ",
		"cost $5 dollar": "cost  dollar", // $5 is an (unset) variable
		`awk "\$1 >= 2"`: `awk "\$1 >= 2"`,
		"a$":             "a$",
	}
	for in, want := range cases {
		if got := expandVars(in, vars); got != want {
			t.Errorf("expandVars(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPipelinedLargeStream(t *testing.T) {
	// The pipelined executor must handle streams much larger than its
	// internal buffers, with stage overlap.
	syn := newSynth()
	var b strings.Builder
	for i := 0; i < 20000; i++ {
		b.WriteString("light word here\n")
		b.WriteString("dark word there\n")
	}
	syn.Env.FS.Register("big.txt", b.String())
	plan := compilePlan(t, syn, "cat big.txt | grep light | cut -c 1-5 | wc -l\n")
	out, err := plan.RunPipelined(syn.Env, "")
	if err != nil || out != "20000\n" {
		t.Errorf("pipelined big stream = %q, %v", out, err)
	}
}

func TestOptimizedManyChunksFewLines(t *testing.T) {
	// k far larger than the line count: empty chunks must flow through
	// eliminated-combiner chains without corrupting output.
	syn := newSynth()
	syn.Env.FS.Register("tiny", "B\na\n")
	plan := compilePlan(t, syn, "cat tiny | tr A-Z a-z | sort | uniq -c\n")
	want, _ := plan.RunSerial(syn.Env, "")
	got, err := plan.RunOptimized(syn.Env, "", 64)
	if err != nil || got != want {
		t.Errorf("T64 on 2-line input = %q, %v; want %q", got, err, want)
	}
}
