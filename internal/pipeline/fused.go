package pipeline

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kumquat/internal/dataflow"
	"kumquat/internal/obs"
	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// RegionMetrics records one optimizer region's execution in the fused
// graph-walking mode: which stages it covered, how it ran, and the
// region-level combine share — the per-region CombineWall the fused
// executor reports instead of per-stage figures (inside a fused region
// there is no per-stage combine to measure; the rewrite removed it).
type RegionMetrics struct {
	// Stages holds the member stage indices, in pipeline order.
	Stages []int
	// Fused marks multi-stage regions run as one composed per-chunk pass.
	Fused bool
	// Exit names the region's output disposition (combine, split, concat,
	// merge-stream).
	Exit string
	// Rules names the optimizer rewrites that fired on this region.
	Rules []string
	// Wall is the region's wall-clock activity time.
	Wall time.Duration
	// CombineWall is the share of Wall spent recombining the region's
	// chunk outputs (zero when the exit elided or deferred the combine).
	CombineWall time.Duration
	// BytesIn and BytesOut measure the region's stream volume.
	BytesIn, BytesOut int64
	// Chunks is the number of parallel instances the region ran as.
	Chunks int
	// Streamed marks regions that consumed a lazily merged stream
	// incrementally instead of running chunk-parallel.
	Streamed bool
}

// RunInfo is the fused executor's run report, filled in when an Execute
// call carries a WithRunInfo option: whether the graph-walking mode ran,
// which rewrites its program applied, and the per-region metrics.
type RunInfo struct {
	// Fused reports that the graph-walking fused mode executed the plan
	// (false when fusion was disabled, the mode was not Optimized, or a
	// live external stdin forced the legacy streaming path).
	Fused bool
	// Rewrites counts the optimizer rewrites applied by the program that
	// ran, per rule name.
	Rewrites map[string]int
	// Regions holds one entry per optimizer region, in order.
	Regions []RegionMetrics
}

// WithFuse toggles the graph-walking fused executor for optimized-mode
// runs (default on). Off reproduces the legacy stage-at-a-time optimized
// path — the -fuse=off ablation the benchmarks and the conformance plane
// compare against.
func WithFuse(on bool) ExecOpt {
	return func(ex *executor) { ex.fuse = on }
}

// WithRunInfo directs the executor to fill info with the fused run's
// region metrics and applied rewrites.
func WithRunInfo(info *RunInfo) ExecOpt {
	return func(ex *executor) { ex.runInfo = info }
}

// regionRun returns the region's executable: the composed fused mapper,
// or the single member stage's command.
func regionRun(p *Plan, r *dataflow.Region) unix.Command {
	if r.Fused {
		return r.Mapper
	}
	return p.Stages[r.Nodes[0]].Cmd
}

// runRegionChunks executes the region's command on each chunk
// concurrently, bounded by the shared worker pool (the fused analogue of
// runChunks).
func (ex *executor) runRegionChunks(ctx context.Context, cmd unix.Command, chunks []string) ([]string, error) {
	_, span := obs.StartSpan(ctx, "chunks")
	span.AttrInt("n", int64(len(chunks)))
	defer span.End()
	outs := make([]string, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i := range chunks {
		if err := ex.pool.acquire(ex.ctx); err != nil {
			errs[i] = err
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer ex.pool.release()
			outs[i], errs[i] = cmd.Run(chunks[i])
		}(i)
	}
	wg.Wait()
	if err := ex.ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %q chunk %d: %w", cmd.Spec(), i, err)
		}
	}
	return outs, nil
}

// runGraph is the graph-walking fused executor: it walks the optimized
// program region by region, running fused regions chunk-parallel end to
// end. The stream is materialized, split across chunk views, or a lazy
// merge reader, according to the previous region's exit; there is no live
// external source on this path (Execute falls back to the legacy
// streaming executor for those).
func (ex *executor) runGraph(p *Plan, stdin io.Reader, out io.Writer) ([]StageMetrics, error) {
	prog := p.Program
	metrics := make([]StageMetrics, len(p.Stages))
	for i, sp := range p.Stages {
		metrics[i].Spec = sp.Spec
	}
	info := ex.runInfo
	if info != nil {
		info.Fused = true
		info.Rewrites = make(map[string]int, len(prog.Fired))
		for r, n := range prog.Fired {
			info.Rewrites[string(r)] = n
		}
	}

	var data string
	var ingest textio.LineSeq
	haveIngest := false
	if p.InputFile != "" {
		seq, err := ex.env.FS.ReadSeq(p.InputFile)
		if err != nil {
			return nil, err
		}
		data, ingest, haveIngest = seq.Str(), seq, true
	} else if stdin != nil {
		buf, err := io.ReadAll(unix.ContextReader(ex.ctx, stdin))
		if err != nil {
			return nil, err
		}
		data = textio.View(buf)
	}

	var (
		chunks []string  // non-nil while a split exit left the stream split
		lazy   io.Reader // non-nil while a merge-stream exit left it lazy
	)
	for ri, r := range prog.Regions {
		if ri > 0 {
			haveIngest = false // the ingest index only describes region 0's input
		}
		if err := ex.ctx.Err(); err != nil {
			return metrics, err
		}
		rm := RegionMetrics{
			Fused:  r.Fused,
			Exit:   r.Exit.String(),
			Stages: append([]int(nil), r.Nodes...),
		}
		for _, rule := range r.Rules {
			rm.Rules = append(rm.Rules, string(rule))
		}
		cmd := regionRun(p, r)
		last := ri == len(prog.Regions)-1
		rctx, rsp := obs.StartSpan(ex.ctx, "region")
		if rsp.Enabled() {
			rsp.Attr("exit", rm.Exit)
			rsp.AttrInt("stages", int64(len(r.Nodes)))
			if len(rm.Rules) > 0 {
				rsp.Attr("rules", strings.Join(rm.Rules, ","))
			}
			if r.Fused {
				rsp.Attr("fused", "true")
			}
		}
		start := time.Now()
		switch {
		case lazy != nil:
			// A merge-stream exit: consume the lazy k-way merge
			// incrementally (the optimizer guarantees this region
			// streams) and materialize the region's own output. Any
			// further exit is moot — the output is the true stream.
			rm.Streamed = true
			var sb strings.Builder
			var bytesIn atomic.Int64
			counted := &countReader{r: unix.ContextReader(ex.ctx, lazy), n: &bytesIn}
			if err := unix.Exec(ex.ctx, cmd, counted, &sb); err != nil {
				rsp.End()
				return metrics, fmt.Errorf("pipeline: stage %q: %w", cmd.Spec(), err)
			}
			rm.BytesIn = bytesIn.Load()
			data, lazy = sb.String(), nil
			rm.BytesOut = int64(len(data))
		case chunks != nil:
			// A split exit: the chunk views feed this (parallel) region
			// directly, no re-split.
			rm.BytesIn = totalLen(chunks)
			outs, err := ex.runRegionChunks(rctx, cmd, chunks)
			if err != nil {
				rsp.End()
				return metrics, err
			}
			rm.Chunks = len(chunks)
			chunks = nil
			if err := ex.regionExit(rctx, p, r, last, outs, &rm, &data, &chunks, &lazy); err != nil {
				rsp.End()
				return metrics, err
			}
		default:
			rm.BytesIn = int64(len(data))
			if r.Parallel && ex.k > 1 {
				outs, err := ex.runRegionChunks(rctx, cmd, ex.chunkStream(data, ingest, haveIngest))
				if err != nil {
					rsp.End()
					return metrics, err
				}
				rm.Chunks = ex.k
				if err := ex.regionExit(rctx, p, r, last, outs, &rm, &data, &chunks, &lazy); err != nil {
					rsp.End()
					return metrics, err
				}
			} else {
				next, err := cmd.Run(data)
				if err != nil {
					rsp.End()
					return metrics, fmt.Errorf("pipeline: stage %q: %w", cmd.Spec(), err)
				}
				data = next
				rm.BytesOut = int64(len(data))
			}
		}
		rm.Wall = time.Since(start)
		rsp.End()
		ex.attribute(metrics, r, &rm)
		if info != nil {
			info.Regions = append(info.Regions, rm)
		}
	}
	if chunks != nil {
		return metrics, errSplitFinal
	}
	if lazy != nil {
		// Defensive: the optimizer never ends a program on a merge-stream
		// exit, but draining keeps the invariant local.
		if _, err := io.Copy(out, unix.ContextReader(ex.ctx, lazy)); err != nil {
			return metrics, err
		}
		return metrics, nil
	}
	_, err := io.WriteString(out, data)
	return metrics, err
}

// regionExit applies the region's exit to its chunk outputs, updating the
// stream state (exactly one of data/chunks/lazy becomes current).
func (ex *executor) regionExit(ctx context.Context, p *Plan, r *dataflow.Region, last bool, outs []string, rm *RegionMetrics, data *string, chunks *[]string, lazy *io.Reader) error {
	exit := r.Exit
	if last {
		exit = dataflow.ExitCombine
	}
	switch exit {
	case dataflow.ExitSplit:
		*chunks = outs
		rm.BytesOut = totalLen(outs)
	case dataflow.ExitConcat:
		*data = strings.Join(outs, "")
		rm.BytesOut = int64(len(*data))
	case dataflow.ExitMerge:
		sc, ok := p.Stages[r.Nodes[len(r.Nodes)-1]].Cmd.(*unix.SortCmd)
		if !ok {
			return fmt.Errorf("pipeline: merge-stream exit on non-sort stage %q", r.Exit)
		}
		*lazy = sc.MergeReader(outs...)
		rm.BytesOut = totalLen(outs)
	default:
		sp := p.Stages[r.Nodes[len(r.Nodes)-1]]
		var scratch StageMetrics
		combined, err := ex.combine(ctx, sp, outs, &scratch)
		if err != nil {
			return err
		}
		rm.CombineWall = scratch.CombineWall
		*data = combined
		rm.BytesOut = int64(len(combined))
	}
	return nil
}

// attribute maps region metrics onto the per-stage metrics slice: shared
// figures (chunks, streamed) go to every member, stream volumes to the
// boundary stages, and the region wall to the first member — per-stage
// walls inside a fused region do not exist, which is the point of the
// fusion.
func (ex *executor) attribute(metrics []StageMetrics, r *dataflow.Region, rm *RegionMetrics) {
	for _, id := range r.Nodes {
		metrics[id].Chunks = rm.Chunks
		metrics[id].Streamed = rm.Streamed
	}
	first, last := r.Nodes[0], r.Nodes[len(r.Nodes)-1]
	metrics[first].Wall = rm.Wall
	metrics[first].BytesIn = rm.BytesIn
	metrics[last].BytesOut = rm.BytesOut
	metrics[last].CombineWall = rm.CombineWall
}
