package pipeline

import (
	"strings"
	"testing"

	"kumquat/internal/shape"
	"kumquat/internal/synth"
	"kumquat/internal/unix"
)

func TestParseScriptBasics(t *testing.T) {
	src := `
IN=${IN:-input/books.txt}
# word frequencies
cat $IN | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn
`
	s, err := ParseScript(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pipelines) != 1 {
		t.Fatalf("pipelines = %d", len(s.Pipelines))
	}
	p := s.Pipelines[0]
	if p.InputFile != "input/books.txt" {
		t.Errorf("input = %q", p.InputFile)
	}
	// cat $IN is the source, not a stage (footnote 3).
	if len(p.Stages) != 5 {
		t.Fatalf("stages = %d: %v", len(p.Stages), p.Stages)
	}
	if p.Stages[0] != `tr -cs A-Za-z '\n'` || p.Stages[4] != "sort -rn" {
		t.Errorf("stages = %v", p.Stages)
	}
}

func TestParseScriptPresetOverridesDefault(t *testing.T) {
	src := "IN=${IN:-default.txt}\ncat $IN | sort\n"
	s, err := ParseScript(src, map[string]string{"IN": "override.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pipelines[0].InputFile != "override.txt" {
		t.Errorf("input = %q", s.Pipelines[0].InputFile)
	}
}

func TestParseScriptRedirectInput(t *testing.T) {
	s, err := ParseScript("sort -n < data.txt\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Pipelines[0]
	if p.InputFile != "data.txt" || len(p.Stages) != 1 || p.Stages[0] != "sort -n" {
		t.Errorf("parsed = %+v", p)
	}
}

func TestParseScriptMultiplePipelines(t *testing.T) {
	src := "cat a.txt | sort | uniq\ncat b.txt | wc -l\n"
	s, err := ParseScript(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pipelines) != 2 {
		t.Fatalf("pipelines = %d", len(s.Pipelines))
	}
	if len(s.Pipelines[0].Stages) != 2 || len(s.Pipelines[1].Stages) != 1 {
		t.Errorf("stage counts wrong: %+v", s.Pipelines)
	}
}

func TestParseQuotedPipeInCommand(t *testing.T) {
	s, err := ParseScript(`cat x | grep 'a|b' | wc -l`+"\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pipelines[0].Stages) != 2 {
		t.Fatalf("quoted pipe split wrongly: %v", s.Pipelines[0].Stages)
	}
}

// compilePlan compiles a single-pipeline script with a shared synthesizer.
func compilePlan(t *testing.T, syn *synth.Synthesizer, script string) *Plan {
	t.Helper()
	s, err := ParseScript(script, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(s.Pipelines[0], syn)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func newSynth() *synth.Synthesizer {
	return synth.New(unix.DefaultEnv(), synth.Options{Seed: 1})
}

func TestCompileWordFrequency(t *testing.T) {
	syn := newSynth()
	plan := compilePlan(t, syn,
		`cat in.txt | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn`+"\n")
	par, total, elim := plan.Counts()
	// §2: tr -cs runs sequentially (rerun combiner, no reduction); the
	// other four stages parallelize; tr A-Z a-z's concat combiner is
	// eliminated. Table 3's wf.sh row: 4/5 parallelized, 1 eliminated.
	if total != 5 || par != 4 || elim != 1 {
		t.Errorf("wf plan = %d/%d parallelized, %d eliminated; want 4/5, 1", par, total, elim)
		for _, sp := range plan.Stages {
			t.Logf("  %-24s parallel=%v seq=%v elim=%v", sp.Spec, sp.Parallel, sp.Sequential, sp.Eliminated)
		}
	}
	if !plan.Stages[0].Sequential {
		t.Error("tr -cs should be sequential")
	}
	if !plan.Stages[1].Eliminated {
		t.Error("tr A-Z a-z combiner should be eliminated")
	}
	if plan.Stages[4].Eliminated {
		t.Error("final stage combiner must never be eliminated")
	}
}

// bookInput builds a deterministic multi-line text input.
func bookInput(lines int) string {
	words := []string{"The", "light", "of", "the", "sea", "Wind", "and", "stone", "RIVER", "dark"}
	var b strings.Builder
	for i := 0; i < lines; i++ {
		for j := 0; j < 4+(i%5); j++ {
			b.WriteString(words[(i*7+j*3)%len(words)])
			if j%4 == 3 {
				b.WriteString(", ")
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestExecutorsAgreeOnWordFrequency(t *testing.T) {
	syn := newSynth()
	syn.Env.FS.Register("in.txt", bookInput(200))
	plan := compilePlan(t, syn,
		`cat in.txt | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn`+"\n")
	want, err := plan.RunSerial(syn.Env, "")
	if err != nil {
		t.Fatal(err)
	}
	if want == "" || !strings.Contains(want, "the") {
		t.Fatalf("serial output suspicious: %q", want[:min(80, len(want))])
	}
	for _, k := range []int{1, 2, 3, 4, 8, 16} {
		got, err := plan.RunParallel(syn.Env, "", k)
		if err != nil {
			t.Fatalf("u%d: %v", k, err)
		}
		if got != want {
			t.Errorf("u%d output differs from serial", k)
		}
		got, err = plan.RunOptimized(syn.Env, "", k)
		if err != nil {
			t.Fatalf("T%d: %v", k, err)
		}
		if got != want {
			t.Errorf("T%d output differs from serial", k)
		}
	}
	got, err := plan.RunPipelined(syn.Env, "")
	if err != nil {
		t.Fatalf("pipelined: %v", err)
	}
	if got != want {
		t.Error("pipelined output differs from serial")
	}
}

func TestExecutorsAgreeAcrossPipelines(t *testing.T) {
	scripts := []string{
		`cat in.txt | grep light | wc -l`,
		`cat in.txt | tr A-Z a-z | sort | uniq`,
		`cat in.txt | cut -c 1-8 | sort -r`,
		`cat in.txt | sed 's/light/dark/' | grep -c dark`,
		`cat in.txt | awk "{print NF}" | sort -n | uniq -c`,
		`cat in.txt | rev | sort`,
		`cat in.txt | fmt -w1 | sort | uniq -c | sort -rn | head -n 5`,
		`cat in.txt | tr -d ',' | sort -u`,
	}
	syn := newSynth()
	syn.Env.FS.Register("in.txt", bookInput(120))
	for _, script := range scripts {
		plan := compilePlan(t, syn, script+"\n")
		want, err := plan.RunSerial(syn.Env, "")
		if err != nil {
			t.Fatalf("%s: serial: %v", script, err)
		}
		for _, k := range []int{2, 5, 16} {
			if got, err := plan.RunParallel(syn.Env, "", k); err != nil || got != want {
				t.Errorf("%s: u%d mismatch (err=%v)", script, k, err)
			}
			if got, err := plan.RunOptimized(syn.Env, "", k); err != nil || got != want {
				t.Errorf("%s: T%d mismatch (err=%v)", script, k, err)
			}
		}
		if got, err := plan.RunPipelined(syn.Env, ""); err != nil || got != want {
			t.Errorf("%s: pipelined mismatch (err=%v)", script, err)
		}
	}
}

func TestTheorem5Equivalence(t *testing.T) {
	// The optimized pipeline (combiner eliminated between tr and sort)
	// must equal the unoptimized one on random inputs.
	syn := newSynth()
	gen := shape.New(5)
	plan := compilePlan(t, syn, `cat x | tr A-Z a-z | sort | uniq -c`+"\n")
	if !plan.Stages[0].Eliminated {
		t.Fatal("tr stage should have its combiner eliminated")
	}
	for trial := 0; trial < 25; trial++ {
		s := shape.Seed()
		s.Lines = shape.Config{Min: 5, Max: 40, Distinct: 40}
		in := gen.Stream(s)
		syn.Env.FS.Register("x", in)
		u, err := plan.RunParallel(syn.Env, "", 4)
		if err != nil {
			t.Fatal(err)
		}
		o, err := plan.RunOptimized(syn.Env, "", 4)
		if err != nil {
			t.Fatal(err)
		}
		if u != o {
			t.Fatalf("optimized differs from unoptimized on %q", in)
		}
	}
}

func TestTrDNewlineNotEliminated(t *testing.T) {
	// tr -d '\n' violates Theorem 5's precondition (output is not a
	// stream); it still parallelizes with concat but keeps its combiner.
	syn := newSynth()
	plan := compilePlan(t, syn, `cat x | tr -d ',' | tr -d '\n'`+"\n")
	sp := plan.Stages[1]
	if sp.StreamOutput {
		t.Error("tr -d newline should not report stream output")
	}
	if sp.Eliminated {
		t.Error("tr -d newline combiner must not be eliminated")
	}
	if !sp.Parallel {
		t.Error("tr -d newline should still parallelize (concat combiner)")
	}
}

func TestPlanWithUnsupportedStage(t *testing.T) {
	// sed 1d has no combiner: it must run serially and the pipeline must
	// still produce correct output.
	syn := newSynth()
	syn.Env.FS.Register("y", "b\na\nc\na\n")
	plan := compilePlan(t, syn, "cat y | sed 1d | sort\n")
	if plan.Stages[0].Parallel {
		t.Error("sed 1d must not be parallelized")
	}
	par, total, _ := plan.Counts()
	if par != 1 || total != 2 {
		t.Errorf("counts = %d/%d, want 1/2", par, total)
	}
	want, _ := plan.RunSerial(syn.Env, "")
	got, err := plan.RunOptimized(syn.Env, "", 4)
	if err != nil || got != want {
		t.Errorf("optimized with serial stage: %q vs %q (err=%v)", got, want, err)
	}
}

func TestStdinPipeline(t *testing.T) {
	syn := newSynth()
	plan := compilePlan(t, syn, "sort -n\n")
	out, err := plan.RunParallel(syn.Env, "3\n1\n2\n", 2)
	if err != nil || out != "1\n2\n3\n" {
		t.Errorf("stdin pipeline = %q, %v", out, err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
