package pipeline

import (
	"context"
	"strings"

	"kumquat/internal/unix"
)

// The four Run* entry points are compatibility wrappers over the streaming
// executor in stream.go: they accept and return whole strings, but execute
// through the same reader/writer core as Plan.Execute, so their outputs
// are byte-identical to a streamed run.

// runString executes the plan in the given mode over string input/output.
func (p *Plan) runString(env *unix.Env, stdin string, mode Mode, k int) (string, error) {
	var out strings.Builder
	_, err := p.Execute(context.Background(), env, strings.NewReader(stdin), &out, mode, k)
	if err != nil {
		return "", err
	}
	return out.String(), nil
}

// RunSerial executes every stage to completion in order — the u1
// configuration of the paper's measurement infrastructure (each stage's
// output is materialized before the next stage starts).
func (p *Plan) RunSerial(env *unix.Env, stdin string) (string, error) {
	return p.runString(env, stdin, ModeSerial, 1)
}

// RunParallel executes the unoptimized data-parallel pipeline (u_k): every
// parallelizable stage splits its input k ways, runs k instances, and
// applies its combiner; stage boundaries are barriers.
func (p *Plan) RunParallel(env *unix.Env, stdin string, k int) (string, error) {
	return p.runString(env, stdin, ModeUnoptimized, k)
}

// RunOptimized executes the optimized data-parallel pipeline (T_k):
// eliminated combiners keep the stream split across consecutive parallel
// stages, so a run of stages with eliminated combiners executes as k
// independent sub-pipelines (Figure 5c); line-streaming stages overlap
// through pipes.
func (p *Plan) RunOptimized(env *unix.Env, stdin string, k int) (string, error) {
	return p.runString(env, stdin, ModeOptimized, k)
}

// RunPipelined executes the original pipeline with Unix-style pipelined
// parallelism (the T_orig configuration): stages run concurrently,
// connected by pipes; streaming-capable commands stream, everything else
// buffers its whole input before writing its output.
func (p *Plan) RunPipelined(env *unix.Env, stdin string) (string, error) {
	return p.runString(env, stdin, ModePipelined, 1)
}
