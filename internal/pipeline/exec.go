package pipeline

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// resolveInput loads the pipeline's input: the registered input file, or
// the provided stdin string when the pipeline reads standard input.
func (p *Plan) resolveInput(env *unix.Env, stdin string) (string, error) {
	if p.InputFile == "" {
		return stdin, nil
	}
	return env.FS.Read(p.InputFile)
}

// RunSerial executes every stage to completion in order — the u1
// configuration of the paper's measurement infrastructure (each stage's
// output is materialized before the next stage starts).
func (p *Plan) RunSerial(env *unix.Env, stdin string) (string, error) {
	data, err := p.resolveInput(env, stdin)
	if err != nil {
		return "", err
	}
	for _, sp := range p.Stages {
		data, err = sp.Cmd.Run(data)
		if err != nil {
			return "", fmt.Errorf("pipeline: stage %q: %w", sp.Spec, err)
		}
	}
	return data, nil
}

// runStageParallel executes one stage with k-way data parallelism and
// combines the substreams with the synthesized combiner.
func runStageParallel(sp *StagePlan, input string, k int) (string, error) {
	outs, err := runChunks(sp, textio.ChunkLines(input, k))
	if err != nil {
		return "", err
	}
	return sp.Synth.Combiner.CombineK(outs)
}

// runChunks executes the stage's command on each chunk concurrently.
func runChunks(sp *StagePlan, chunks []string) ([]string, error) {
	outs := make([]string, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, ch := range chunks {
		wg.Add(1)
		go func(i int, ch string) {
			defer wg.Done()
			outs[i], errs[i] = sp.Cmd.Run(ch)
		}(i, ch)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %q chunk %d: %w", sp.Spec, i, err)
		}
	}
	return outs, nil
}

// RunParallel executes the unoptimized data-parallel pipeline (u_k): every
// parallelizable stage splits its input k ways, runs k instances, and
// applies its combiner; stage boundaries are barriers.
func (p *Plan) RunParallel(env *unix.Env, stdin string, k int) (string, error) {
	data, err := p.resolveInput(env, stdin)
	if err != nil {
		return "", err
	}
	for _, sp := range p.Stages {
		if sp.Parallel && k > 1 {
			data, err = runStageParallel(sp, data, k)
		} else {
			data, err = sp.Cmd.Run(data)
		}
		if err != nil {
			return "", fmt.Errorf("pipeline: stage %q: %w", sp.Spec, err)
		}
	}
	return data, nil
}

// RunOptimized executes the optimized data-parallel pipeline (T_k):
// eliminated combiners keep the stream split across consecutive parallel
// stages, so a run of stages with eliminated combiners executes as k
// independent sub-pipelines (Figure 5c).
func (p *Plan) RunOptimized(env *unix.Env, stdin string, k int) (string, error) {
	data, err := p.resolveInput(env, stdin)
	if err != nil {
		return "", err
	}
	var chunks []string // non-nil while the stream is split
	for _, sp := range p.Stages {
		switch {
		case sp.Parallel && k > 1:
			if chunks == nil {
				chunks = textio.ChunkLines(data, k)
			}
			outs, err := runChunks(sp, chunks)
			if err != nil {
				return "", err
			}
			if sp.Eliminated {
				chunks = outs
				continue
			}
			chunks = nil
			data, err = sp.Synth.Combiner.CombineK(outs)
			if err != nil {
				return "", fmt.Errorf("pipeline: stage %q combine: %w", sp.Spec, err)
			}
		default:
			if chunks != nil {
				// Defensive: an eliminated combiner must be followed by a
				// parallel stage (the planner guarantees it).
				return "", fmt.Errorf("pipeline: split stream reached serial stage %q", sp.Spec)
			}
			var err error
			data, err = sp.Cmd.Run(data)
			if err != nil {
				return "", fmt.Errorf("pipeline: stage %q: %w", sp.Spec, err)
			}
		}
	}
	if chunks != nil {
		return "", fmt.Errorf("pipeline: stream still split after final stage")
	}
	return data, nil
}

// RunPipelined executes the original pipeline with Unix-style pipelined
// parallelism (the T_orig configuration): stages run concurrently,
// connected by pipes; line-mapping commands stream, everything else
// buffers its whole input before writing its output.
func (p *Plan) RunPipelined(env *unix.Env, stdin string) (string, error) {
	data, err := p.resolveInput(env, stdin)
	if err != nil {
		return "", err
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		fails []error
	)
	fail := func(err error) {
		mu.Lock()
		fails = append(fails, err)
		mu.Unlock()
	}
	reader := io.Reader(strings.NewReader(data))
	for _, sp := range p.Stages {
		pr, pw := io.Pipe()
		in := reader
		stage := sp
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pw.Close()
			if lm, ok := asLineMapper(stage.Cmd); ok {
				if err := unix.StreamLineMapper(lm, in, pw); err != nil {
					fail(fmt.Errorf("pipeline: stage %q: %w", stage.Spec, err))
				}
				return
			}
			buf, err := io.ReadAll(in)
			if err != nil {
				fail(err)
				return
			}
			out, err := stage.Cmd.Run(string(buf))
			if err != nil {
				fail(fmt.Errorf("pipeline: stage %q: %w", stage.Spec, err))
				return
			}
			if _, err := io.WriteString(pw, out); err != nil && err != io.ErrClosedPipe {
				fail(err)
			}
		}()
		reader = pr
	}
	outBytes, err := io.ReadAll(reader)
	wg.Wait()
	if err != nil {
		return "", err
	}
	if len(fails) > 0 {
		return "", fails[0]
	}
	return string(outBytes), nil
}

// asLineMapper probes a command's streaming capability, honouring the
// flag-dependent AsLineMapper escape hatch (tr -s, sed Nq are not
// line-independent even though their types can be).
func asLineMapper(c unix.Command) (unix.LineMapper, bool) {
	type asLM interface {
		AsLineMapper() (unix.LineMapper, bool)
	}
	if a, ok := c.(asLM); ok {
		return a.AsLineMapper()
	}
	if lm, ok := c.(unix.LineMapper); ok {
		return lm, true
	}
	return nil, false
}
