package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

var allModes = []Mode{ModeOptimized, ModeUnoptimized, ModeSerial, ModePipelined}

// TestExecuteModesAgree runs one pipeline through every mode and checks
// byte-identical output against the serial ground truth.
func TestExecuteModesAgree(t *testing.T) {
	syn := newSynth()
	syn.Env.FS.Register("in.txt", "Some Light text\nmore WORDS here\nlight Again\n")
	plan := compilePlan(t, syn, "cat in.txt | tr A-Z a-z | sort | uniq -c\n")
	want, err := plan.RunSerial(syn.Env, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range allModes {
		for _, k := range []int{1, 2, 4} {
			var out strings.Builder
			ms, err := plan.Execute(context.Background(), syn.Env, nil, &out, mode, k)
			if err != nil {
				t.Errorf("%v k=%d: %v", mode, k, err)
				continue
			}
			if out.String() != want {
				t.Errorf("%v k=%d = %q, want %q", mode, k, out.String(), want)
			}
			if len(ms) != len(plan.Stages) {
				t.Errorf("%v k=%d: %d metrics for %d stages", mode, k, len(ms), len(plan.Stages))
			}
		}
	}
}

// lineGen emits a fixed number of lines, one per Read call, tracking how
// many it has produced so far.
type lineGen struct {
	total   int64
	emitted atomic.Int64
}

func (g *lineGen) Read(p []byte) (int, error) {
	n := g.emitted.Load()
	if n >= g.total {
		return 0, io.EOF
	}
	line := fmt.Sprintf("light word number %d\n", n)
	if len(p) < len(line) {
		return 0, io.ErrShortBuffer
	}
	g.emitted.Add(1)
	return copy(p, line), nil
}

// interleaveWriter records whether any output arrived while the source was
// still producing — the witness that the pipeline streamed rather than
// materializing its input.
type interleaveWriter struct {
	gen        *lineGen
	sawPartial atomic.Bool
	bytes      atomic.Int64
}

func (w *interleaveWriter) Write(p []byte) (int, error) {
	if w.gen.emitted.Load() < w.gen.total {
		w.sawPartial.Store(true)
	}
	w.bytes.Add(int64(len(p)))
	return len(p), nil
}

// TestOptimizedStreamsLineMapperPipeline checks the acceptance property:
// a line-mapper-only pipeline streams end to end — output is produced
// while input is still being read, in optimized and pipelined modes.
func TestOptimizedStreamsLineMapperPipeline(t *testing.T) {
	syn := newSynth()
	plan := compilePlan(t, syn, "grep light | cut -c 1-5\n")
	for _, mode := range []Mode{ModeOptimized, ModePipelined} {
		gen := &lineGen{total: 100000}
		w := &interleaveWriter{gen: gen}
		ms, err := plan.Execute(context.Background(), syn.Env, gen, w, mode, 4)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !w.sawPartial.Load() {
			t.Errorf("%v: no output arrived before input was exhausted; pipeline materialized the stream", mode)
		}
		if w.bytes.Load() != 6*gen.total { // "light" + "\n" per line
			t.Errorf("%v: wrote %d bytes, want %d", mode, w.bytes.Load(), 6*gen.total)
		}
		for _, m := range ms {
			if !m.Streamed {
				t.Errorf("%v: stage %q did not stream", mode, m.Spec)
			}
		}
	}
}

// cancellingGen produces lines forever, cancelling the context after a
// fixed number of reads; execution must then abort promptly.
type cancellingGen struct {
	after  int64
	reads  atomic.Int64
	cancel context.CancelFunc
}

func (g *cancellingGen) Read(p []byte) (int, error) {
	if g.reads.Add(1) == g.after {
		g.cancel()
	}
	const line = "light word here\n"
	if len(p) < len(line) {
		return 0, io.ErrShortBuffer
	}
	return copy(p, line), nil
}

// TestExecuteCancellation cancels mid-stream in every mode: Execute must
// return ctx.Err() promptly and leak no goroutines.
func TestExecuteCancellation(t *testing.T) {
	syn := newSynth()
	plan := compilePlan(t, syn, "grep light | sort | uniq -c\n")
	before := runtime.NumGoroutine()
	for _, mode := range allModes {
		ctx, cancel := context.WithCancel(context.Background())
		gen := &cancellingGen{after: 500, cancel: cancel}
		done := make(chan error, 1)
		go func() {
			_, err := plan.Execute(ctx, syn.Env, gen, io.Discard, mode, 4)
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v: err = %v, want context.Canceled", mode, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%v: Execute did not return after cancellation", mode)
		}
		cancel()
	}
	// Every stage goroutine must have unwound.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak: %d before, %d after cancellations", before, n)
	}
}

// blockedReader blocks every Read until released — a silent terminal or
// idle socket stand-in.
type blockedReader struct {
	release chan struct{}
}

func (b *blockedReader) Read(p []byte) (int, error) {
	<-b.release
	return 0, io.EOF
}

// TestExecuteCancellationBlockedStdin: cancellation must unblock Execute
// even when the stdin source is quiescent (its Read never returns) — the
// async source reader decouples the executor from the blocked Read.
func TestExecuteCancellationBlockedStdin(t *testing.T) {
	syn := newSynth()
	plan := compilePlan(t, syn, "grep light | sort | uniq -c\n")
	release := make(chan struct{})
	defer close(release) // let parked helpers exit after the test
	for _, mode := range allModes {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := plan.Execute(ctx, syn.Env, &blockedReader{release: release}, io.Discard, mode, 2)
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v: err = %v, want context.Canceled", mode, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: Execute hung on blocked stdin after cancellation", mode)
		}
	}
}

// TestPipelinedFailurePropagation: a failing stage must poison the whole
// pipelined run — the error surfaces (with stage context), downstream
// stages do not mask it, and partial output is not reported as success.
func TestPipelinedFailurePropagation(t *testing.T) {
	syn := newSynth()
	plan := compilePlan(t, syn, "xargs cat | sort | uniq -c\n")
	var out strings.Builder
	_, err := plan.Execute(context.Background(), syn.Env, strings.NewReader("not-a-file\n"), &out, ModePipelined, 1)
	if err == nil {
		t.Fatal("pipelined run with failing stage returned nil error")
	}
	if !strings.Contains(err.Error(), "xargs cat") {
		t.Errorf("error lost its stage context: %v", err)
	}
	var se *stageError
	if !errors.As(err, &se) {
		t.Errorf("error is not a stage failure: %v", err)
	}
}

// failingWriter errors after accepting a few bytes — a broken output sink.
type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 8 {
		return 0, fmt.Errorf("sink: disk full")
	}
	return len(p), nil
}

// TestPipelinedSinkErrorAttribution: a failing output sink must surface as
// the sink's error, not be misattributed to the pipeline stages the
// teardown poisons.
func TestPipelinedSinkErrorAttribution(t *testing.T) {
	syn := newSynth()
	syn.Env.FS.Register("s.txt", strings.Repeat("light words here\n", 5000))
	plan := compilePlan(t, syn, "cat s.txt | grep light | cut -c 1-5\n")
	_, err := plan.Execute(context.Background(), syn.Env, nil, &failingWriter{}, ModePipelined, 1)
	if err == nil {
		t.Fatal("failing sink returned nil error")
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Errorf("sink error lost: %v", err)
	}
	if strings.Contains(err.Error(), `stage "grep`) || strings.Contains(err.Error(), `stage "cut`) {
		t.Errorf("sink failure misattributed to stages: %v", err)
	}
}

// TestExecuteMetrics sanity-checks the per-stage measurements: byte
// volumes flow, parallel stages report their chunk counts, and streamed
// stages are flagged.
func TestExecuteMetrics(t *testing.T) {
	syn := newSynth()
	syn.Env.FS.Register("m.txt", strings.Repeat("Light words HERE\n", 200))
	plan := compilePlan(t, syn, "cat m.txt | tr A-Z a-z | sort | uniq -c\n")
	var out strings.Builder
	ms, err := plan.Execute(context.Background(), syn.Env, nil, &out, ModeOptimized, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("metrics = %d stages", len(ms))
	}
	// File input is already materialized, so the parallel tr stage runs
	// chunked (the paper's T_k), not streamed.
	if ms[0].Streamed || ms[0].Chunks != 4 || ms[0].BytesIn == 0 || ms[0].BytesOut == 0 {
		t.Errorf("tr stage should chunk 4 ways with nonzero volume: %+v", ms[0])
	}
	if ms[1].Chunks != 4 {
		t.Errorf("sort stage chunks = %d, want 4", ms[1].Chunks)
	}
	if ms[2].BytesOut != int64(len(out.String())) {
		t.Errorf("final stage BytesOut = %d, sink got %d", ms[2].BytesOut, len(out.String()))
	}
	// Unoptimized mode barriers every stage: nothing streams, parallel
	// stages chunk.
	ms, err = plan.Execute(context.Background(), syn.Env, nil, io.Discard, ModeUnoptimized, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Streamed {
			t.Errorf("unoptimized mode streamed stage %q", m.Spec)
		}
	}
}
