package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kumquat/internal/obs"
	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// Mode selects one of the four execution configurations from the paper's
// measurement infrastructure.
type Mode int

const (
	// ModeOptimized is T_k: eliminated combiners keep the stream split
	// across consecutive parallel stages, and line-streaming stages overlap
	// through pipes instead of materializing intermediates.
	ModeOptimized Mode = iota
	// ModeUnoptimized is u_k: every parallelizable stage splits its input k
	// ways and applies its combiner; stage boundaries are barriers.
	ModeUnoptimized
	// ModeSerial is u_1: every stage runs to completion in order.
	ModeSerial
	// ModePipelined is T_orig: stages run concurrently connected by pipes,
	// with Unix-style overlap and no data parallelism.
	ModePipelined
)

func (m Mode) String() string {
	switch m {
	case ModeOptimized:
		return "optimized"
	case ModeUnoptimized:
		return "unoptimized"
	case ModeSerial:
		return "serial"
	case ModePipelined:
		return "pipelined"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// StageMetrics records one stage's execution measurements for the run
// report: wall time, stream volume, and how the stage actually ran.
type StageMetrics struct {
	Spec     string
	Wall     time.Duration
	BytesIn  int64
	BytesOut int64
	// CombineWall is the portion of Wall spent recombining the k chunk
	// outputs (zero for unchunked, eliminated-combiner and streamed
	// stages) — the combine plane's share of the stage.
	CombineWall time.Duration
	// Chunks is the number of parallel instances the stage ran as
	// (0 when the stage was not chunked).
	Chunks int
	// Streamed marks stages that processed their input incrementally
	// through a pipe instead of materializing it.
	Streamed bool
}

// stageError tags a failure with the stage it originated from, so that
// downstream stages reading a poisoned pipe can recognize an upstream
// failure passing through and not re-report it.
type stageError struct {
	spec string
	err  error
}

func (e *stageError) Error() string { return fmt.Sprintf("pipeline: stage %q: %v", e.spec, e.err) }
func (e *stageError) Unwrap() error { return e.err }

// errSplitSerial and errSplitFinal are the planner-invariant violations the
// optimized executor guards against.
var (
	errSplitSerial = errors.New("pipeline: split stream reached serial stage")
	errSplitFinal  = errors.New("pipeline: stream still split after final stage")
)

// workerPool bounds the number of in-flight chunk executions to the
// machine's parallelism. One pool is shared across all stages of an
// Execute call, so asking for k far beyond the hardware queues the excess
// chunks instead of oversubscribing the scheduler.
type workerPool struct {
	sem chan struct{}
}

func newWorkerPool(n int) *workerPool {
	if n < 1 {
		n = 1
	}
	return &workerPool{sem: make(chan struct{}, n)}
}

func (wp *workerPool) acquire(ctx context.Context) error {
	select {
	case wp.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (wp *workerPool) release() { <-wp.sem }

// countReader / countWriter thread byte accounting through a stage without
// copying. Counts are atomics because streamed stages update them from
// their own goroutine while the report is assembled on the caller's.
type countReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

type countWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// asyncReader decouples an external source from the executor: the
// source's Read runs in a helper goroutine, so cancellation unblocks the
// executor even while the source is quiescent (a silent terminal, an idle
// socket). If the source is mid-Read at cancellation, the helper parks
// until that Read returns and then exits, discarding the data — the
// unavoidable residue of interrupting a blocking io.Reader.
type asyncReader struct {
	ctx     context.Context
	r       io.Reader
	res     chan asyncChunk
	pending []byte
	err     error
	started bool
}

type asyncChunk struct {
	data []byte
	err  error
}

func newAsyncReader(ctx context.Context, r io.Reader) *asyncReader {
	return &asyncReader{ctx: ctx, r: r, res: make(chan asyncChunk)}
}

func (ar *asyncReader) Read(p []byte) (int, error) {
	for {
		if len(ar.pending) > 0 {
			n := copy(p, ar.pending)
			ar.pending = ar.pending[n:]
			return n, nil
		}
		if ar.err != nil {
			return 0, ar.err
		}
		if !ar.started {
			ar.started = true
			go func() {
				// One reusable read buffer; each chunk handed off is a
				// right-sized copy, so ownership transfers to the consumer
				// and short reads (line-buffered stdin) don't cost 32 KiB
				// of garbage apiece.
				buf := make([]byte, 32*1024)
				for {
					n, err := ar.r.Read(buf)
					chunk := make([]byte, n)
					copy(chunk, buf[:n])
					select {
					case ar.res <- asyncChunk{chunk, err}:
						if err != nil {
							return
						}
					case <-ar.ctx.Done():
						return
					}
				}
			}()
		}
		select {
		case ch := <-ar.res:
			ar.pending = ch.data
			ar.err = ch.err // sticky; surfaced once pending drains
		case <-ar.ctx.Done():
			ar.err = ar.ctx.Err()
			return 0, ar.err
		}
	}
}

// executor carries one Execute call's shared state.
type executor struct {
	ctx context.Context
	env *unix.Env
	k   int
	// external marks the source as a caller-supplied stdin reader whose
	// Read may block indefinitely; such sources get an asyncReader so
	// cancellation doesn't hang the executor.
	external bool
	pool     *workerPool
	// combineWorkers bounds the tree combine's concurrency (the §3.5
	// combine plane). It defaults to the chunk pool's size so combine
	// parallelism matches execution parallelism.
	combineWorkers int
	// fuse enables the graph-walking fused executor for optimized-mode
	// runs over materialized sources (default on; see WithFuse).
	fuse bool
	// runInfo, when non-nil, receives the fused run's region metrics and
	// applied rewrites (see WithRunInfo).
	runInfo *RunInfo
}

// ExecOpt tunes one Execute call beyond the mode/k pair.
type ExecOpt func(*executor)

// WithCombineWorkers bounds the concurrency of the tree-reduction
// combine plane; n <= 0 keeps the default (the chunk worker pool's
// size). 1 selects the sequential tree, which still beats the left fold
// on copied bytes for boundary-local combiners.
func WithCombineWorkers(n int) ExecOpt {
	return func(ex *executor) {
		if n > 0 {
			ex.combineWorkers = n
		}
	}
}

// combine recombines a parallel stage's chunk outputs through the
// stage's synthesized combiner on the tree-reduction plane, recording
// the combine's share of the stage wall in m.CombineWall.
func (ex *executor) combine(ctx context.Context, sp *StagePlan, outs []string, m *StageMetrics) (string, error) {
	_, span := obs.StartSpan(ctx, "combine")
	span.AttrInt("parts", int64(len(outs)))
	start := time.Now()
	v, err := sp.Synth.Combiner.CombineKTree(outs, ex.combineWorkers)
	m.CombineWall = time.Since(start)
	span.End()
	if err != nil {
		return "", fmt.Errorf("pipeline: stage %q combine: %w", sp.Spec, err)
	}
	return v, nil
}

// Execute runs the plan in the given mode with k-way data parallelism,
// reading the pipeline's input from stdin (when the plan has no input
// file) and writing the final output stream to out. It returns per-stage
// execution metrics alongside any error; cancellation of ctx aborts every
// mode promptly and returns ctx.Err(). Stage goroutines are always
// reaped before returning; the one residue of cancellation is a single
// parked helper when the external stdin reader is blocked mid-Read — it
// exits as soon as that Read returns, as any io.Reader demands.
func (p *Plan) Execute(ctx context.Context, env *unix.Env, stdin io.Reader, out io.Writer, mode Mode, k int, opts ...ExecOpt) ([]StageMetrics, error) {
	// Cap in-flight chunk executions at the machine's parallelism: with
	// k > GOMAXPROCS the extra chunks wait for a pool slot.
	poolSize := k
	if n := runtime.GOMAXPROCS(0); n < poolSize {
		poolSize = n
	}
	if poolSize < 1 {
		poolSize = 1
	}
	ex := &executor{
		ctx:            ctx,
		env:            env,
		k:              k,
		external:       p.InputFile == "" && stdin != nil && !inMemoryReader(stdin),
		pool:           newWorkerPool(poolSize),
		combineWorkers: poolSize,
		fuse:           true,
	}
	for _, opt := range opts {
		opt(ex)
	}
	var ms []StageMetrics
	var err error
	switch mode {
	case ModeSerial, ModeUnoptimized:
		ms, err = ex.runBarriered(p, stdin, out, mode == ModeUnoptimized)
	case ModeOptimized:
		// The fused graph-walking mode handles every materialized source;
		// a live external stdin keeps the legacy streaming path so the
		// bounded-memory property survives. Either way the resolved source
		// stays a materialized string rather than round-tripping through a
		// reader.
		if ex.fuse && p.Program != nil && !ex.external {
			ms, err = ex.runGraph(p, stdin, out)
		} else {
			ms, err = ex.runOptimized(p, stdin, out)
		}
	case ModePipelined:
		var src io.Reader
		if src, err = p.sourceReader(env, stdin); err == nil {
			ms, err = ex.runPipelined(p, src, out)
		}
	default:
		return nil, fmt.Errorf("pipeline: unknown execution mode %v", mode)
	}
	// Cancellation dominates: whatever secondary failure the teardown
	// produced (poisoned pipes, aborted chunk runs), the caller asked to
	// stop and gets ctx.Err().
	if err != nil && ctx.Err() != nil {
		return ms, ctx.Err()
	}
	return ms, err
}

// source wraps an external (caller-supplied, possibly blocking) stream in
// an asyncReader bound to the given context; in-memory sources pass
// through untouched.
func (ex *executor) source(ctx context.Context, src io.Reader) io.Reader {
	if ex.external {
		return newAsyncReader(ctx, src)
	}
	return src
}

// inMemoryReader reports whether r reads from memory already held by the
// caller (the compat wrappers' strings.Reader stdin): such input is
// materialized, never blocks, and needs neither async decoupling nor
// stream-preserving execution.
func inMemoryReader(r io.Reader) bool {
	switch r.(type) {
	case *strings.Reader, *bytes.Reader, *bytes.Buffer:
		return true
	}
	return false
}

// sourceReader resolves the pipeline's input: the registered input file,
// or the provided stdin reader when the pipeline reads standard input.
func (p *Plan) sourceReader(env *unix.Env, stdin io.Reader) (io.Reader, error) {
	if p.InputFile == "" {
		if stdin == nil {
			return strings.NewReader(""), nil
		}
		return stdin, nil
	}
	data, err := env.FS.Read(p.InputFile)
	if err != nil {
		return nil, err
	}
	return strings.NewReader(data), nil
}

// runChunks executes the stage's command on each chunk concurrently,
// bounded by the shared worker pool.
func (ex *executor) runChunks(ctx context.Context, sp *StagePlan, chunks []string) ([]string, error) {
	_, span := obs.StartSpan(ctx, "chunks")
	span.AttrInt("n", int64(len(chunks)))
	defer span.End()
	outs := make([]string, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i := range chunks {
		if err := ex.pool.acquire(ctx); err != nil {
			errs[i] = err
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer ex.pool.release()
			outs[i], errs[i] = sp.Cmd.Run(chunks[i])
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %q chunk %d: %w", sp.Spec, i, err)
		}
	}
	return outs, nil
}

func totalLen(ss []string) int64 {
	var n int64
	for _, s := range ss {
		n += int64(len(s))
	}
	return n
}

// runBarriered executes stages in order with a barrier between each: the
// serial (u_1) configuration when parallel is false, the unoptimized
// parallel (u_k) configuration when true. Each stage's input and output
// are materialized; parallel stages split their input into zero-copy chunk
// views, run on the shared pool, and combine.
func (ex *executor) runBarriered(p *Plan, stdin io.Reader, out io.Writer, parallel bool) ([]StageMetrics, error) {
	var data string
	var ingest textio.LineSeq
	haveIngest := false
	if p.InputFile != "" {
		// Registered files are already in memory: use the zero-copy string
		// view and the shared ingest line index (computed once per
		// registered corpus, shared across stages, modes and requests).
		seq, err := ex.env.FS.ReadSeq(p.InputFile)
		if err != nil {
			return nil, err
		}
		data, ingest, haveIngest = seq.Str(), seq, true
	} else if stdin != nil {
		buf, err := io.ReadAll(unix.ContextReader(ex.ctx, ex.source(ex.ctx, stdin)))
		if err != nil {
			return nil, err
		}
		data = textio.View(buf)
	}
	metrics := make([]StageMetrics, 0, len(p.Stages))
	for _, sp := range p.Stages {
		if err := ex.ctx.Err(); err != nil {
			return metrics, err
		}
		sctx, ssp := obs.StartSpan(ex.ctx, "stage")
		ssp.Attr("spec", sp.Spec)
		m := StageMetrics{Spec: sp.Spec, BytesIn: int64(len(data))}
		start := time.Now()
		var next string
		if parallel && sp.Parallel && ex.k > 1 {
			chunks := ex.chunkStream(data, ingest, haveIngest)
			outs, err := ex.runChunks(sctx, sp, chunks)
			if err != nil {
				ssp.End()
				return metrics, err
			}
			m.Chunks = len(chunks)
			next, err = ex.combine(sctx, sp, outs, &m)
			if err != nil {
				ssp.End()
				return metrics, err
			}
		} else {
			var err error
			next, err = sp.Cmd.Run(data)
			if err != nil {
				ssp.End()
				return metrics, fmt.Errorf("pipeline: stage %q: %w", sp.Spec, err)
			}
		}
		m.Wall = time.Since(start)
		m.BytesOut = int64(len(next))
		metrics = append(metrics, m)
		data = next
		haveIngest = false
		ssp.End()
	}
	if _, err := io.WriteString(out, data); err != nil {
		return metrics, err
	}
	return metrics, nil
}

// chunkStream splits the current stream k-ways: through the shared
// ingest index while the stream is still the registered input (the
// index's precomputed boundaries replace a byte scan per split point),
// and by scanning otherwise.
func (ex *executor) chunkStream(data string, ingest textio.LineSeq, haveIngest bool) []string {
	if haveIngest {
		return ingest.Chunk(ex.k)
	}
	return textio.ChunkLines(data, ex.k)
}

// runSplitStage executes one parallel stage over the split stream: run
// every chunk on the pool, then either keep the stream split (eliminated
// combiner, Figure 5c) or combine into a single stream. Exactly one of
// keep/combined is meaningful: keep is non-nil while the stream stays
// split.
func (ex *executor) runSplitStage(ctx context.Context, sp *StagePlan, chunks []string, m *StageMetrics) (keep []string, combined string, err error) {
	start := time.Now()
	m.BytesIn = totalLen(chunks)
	outs, err := ex.runChunks(ctx, sp, chunks)
	if err != nil {
		return nil, "", err
	}
	m.Chunks = len(chunks)
	if sp.Eliminated {
		m.Wall += time.Since(start)
		m.BytesOut = totalLen(outs)
		return outs, "", nil
	}
	combined, err = ex.combine(ctx, sp, outs, m)
	if err != nil {
		return nil, "", err
	}
	m.Wall += time.Since(start)
	m.BytesOut = int64(len(combined))
	return nil, combined, nil
}

// streamableStage reports whether the optimized executor may run a stage
// incrementally instead of chunk-parallel: the command must be able to
// stream, and — when the planner marked it parallel — streaming must be
// output-equivalent to chunk-and-combine (true for concat combiners and
// for stages whose combiner was eliminated; line mappers produce disjoint
// output lines, so concatenating streamed output equals combining chunks).
func streamableStage(sp *StagePlan) bool {
	if !unix.CanStream(sp.Cmd) {
		return false
	}
	if !sp.Parallel {
		return true
	}
	return sp.Eliminated || (sp.Synth != nil && sp.Synth.Combiner != nil && sp.Synth.Combiner.IsConcat())
}

// runOptimized executes the T_k configuration over readers and writers.
// The stream is in one of three states as stages consume it:
//
//   - materialized: the whole stream is in memory (file inputs start here,
//     and buffering/combining returns here). Parallel stages split it into
//     zero-copy chunk views and run k instances — the paper's T_k.
//   - split: an eliminated combiner left it as k chunk views; the next
//     parallel stage consumes them directly (Figure 5c).
//   - live: the stream is being produced incrementally (WithStdin sources
//     and streamed stages). Streamable stages overlap through pipes
//     without materializing it; the first whole-stream stage buffers.
//
// Chunk-parallelism is preferred whenever the stream is already in memory;
// streaming is used only while the source is genuinely incremental, where
// materializing would cost the bounded-memory property.
func (ex *executor) runOptimized(p *Plan, stdin io.Reader, out io.Writer) (ms []StageMetrics, err error) {
	ctx, cancel := context.WithCancel(ex.ctx)
	// finish() cancels on every streaming path; this covers the early
	// input-resolution returns so the child context never leaks.
	defer cancel()
	metrics := make([]StageMetrics, len(p.Stages))
	var (
		streamWG sync.WaitGroup
		pipes    []*io.PipeReader
	)
	// finish tears down in-flight streamed stages: cancel their contexts,
	// poison their pipes so blocked reads/writes return, and wait. Run on
	// every exit path so no goroutine outlives Execute.
	finish := func(failure error) {
		cancel()
		if failure == nil {
			failure = io.ErrClosedPipe
		}
		for _, pr := range pipes {
			pr.CloseWithError(failure)
		}
		streamWG.Wait()
	}

	var (
		chunks     []string  // non-nil while the stream is split across k views
		data       string    // the stream, while materialized
		haveData   bool      // data is valid
		cur        io.Reader // the stream, while live
		ingest     textio.LineSeq
		haveIngest bool // ingest indexes data (first stage only)
	)
	switch {
	case p.InputFile != "":
		seq, err := ex.env.FS.ReadSeq(p.InputFile)
		if err != nil {
			return nil, err
		}
		data, haveData = seq.Str(), true
		ingest, haveIngest = seq, true
	case stdin == nil:
		haveData = true
	case !ex.external:
		// In-memory stdin (the compat wrappers): the input is already
		// materialized, so read it up front and let parallel stages
		// chunk it — preserving the legacy T_k behaviour. The read still
		// goes through ContextReader so a cancelled ctx aborts the drain
		// instead of being ignored until the first stage runs.
		buf, err := io.ReadAll(unix.ContextReader(ex.ctx, stdin))
		if err != nil {
			return nil, err
		}
		data, haveData = textio.View(buf), true
	default:
		cur = newAsyncReader(ctx, stdin)
	}

	for i := range p.Stages {
		sp := p.Stages[i]
		m := &metrics[i]
		m.Spec = sp.Spec
		if i > 0 {
			haveIngest = false // the ingest index only describes stage 0's input
		}
		if err := ctx.Err(); err != nil {
			finish(err)
			return metrics, err
		}
		sctx, ssp := obs.StartSpan(ctx, "stage")
		ssp.Attr("spec", sp.Spec)
		if chunks != nil {
			// Split stream: the planner guarantees only parallel stages
			// follow an eliminated combiner.
			if !sp.Parallel || ex.k <= 1 {
				ssp.End()
				finish(errSplitSerial)
				return metrics, fmt.Errorf("%w %q", errSplitSerial, sp.Spec)
			}
			keep, combined, cerr := ex.runSplitStage(sctx, sp, chunks, m)
			ssp.End()
			if cerr != nil {
				finish(cerr)
				return metrics, cerr
			}
			if keep != nil {
				chunks = keep
				continue
			}
			chunks = nil
			data, haveData = combined, true
			continue
		}
		if !haveData && streamableStage(sp) {
			// Live stream, incremental stage: overlap through a pipe. The
			// stage span is handed to the goroutine and ends when the
			// stage's stream drains, so its duration covers the overlap.
			ssp.Attr("streamed", "true")
			pr, pw := io.Pipe()
			pipes = append(pipes, pr)
			in := cur
			m.Streamed = true
			var bytesIn, bytesOut atomic.Int64
			start := time.Now()
			streamWG.Add(1)
			go func(sp *StagePlan, m *StageMetrics) {
				defer streamWG.Done()
				defer ssp.End()
				cr := &countReader{r: in, n: &bytesIn}
				cw := &countWriter{w: pw, n: &bytesOut}
				serr := unix.Exec(ctx, sp.Cmd, cr, cw)
				m.Wall = time.Since(start)
				m.BytesIn = bytesIn.Load()
				m.BytesOut = bytesOut.Load()
				if serr != nil {
					var up *stageError
					if !errors.As(serr, &up) {
						serr = &stageError{spec: sp.Spec, err: serr}
					}
					pw.CloseWithError(serr)
					return
				}
				pw.Close()
			}(sp, m)
			cur = pr
			continue
		}
		if !haveData {
			// Live stream, whole-stream stage: buffer it. The drain time
			// counts toward this stage's wall (as it does in pipelined
			// mode, where the stage itself performs the read).
			drainStart := time.Now()
			buf, rerr := io.ReadAll(unix.ContextReader(ctx, cur))
			if rerr != nil {
				ssp.End()
				finish(rerr)
				return metrics, rerr
			}
			m.Wall = time.Since(drainStart)
			data, haveData = textio.View(buf), true
		}
		// Materialized stream.
		m.BytesIn = int64(len(data))
		if sp.Parallel && ex.k > 1 {
			keep, combined, cerr := ex.runSplitStage(sctx, sp, ex.chunkStream(data, ingest, haveIngest), m)
			ssp.End()
			if cerr != nil {
				finish(cerr)
				return metrics, cerr
			}
			if keep != nil {
				chunks = keep
				haveData = false
				continue
			}
			data = combined
		} else {
			start := time.Now()
			outStr, serr := sp.Cmd.Run(data)
			ssp.End()
			if serr != nil {
				serr = fmt.Errorf("pipeline: stage %q: %w", sp.Spec, serr)
				finish(serr)
				return metrics, serr
			}
			m.Wall += time.Since(start)
			m.BytesOut = int64(len(outStr))
			data = outStr
		}
	}
	if chunks != nil {
		finish(errSplitFinal)
		return metrics, errSplitFinal
	}
	if haveData {
		_, werr := io.WriteString(out, data)
		finish(werr)
		return metrics, werr
	}
	_, copyErr := io.Copy(out, unix.ContextReader(ctx, cur))
	finish(copyErr)
	return metrics, copyErr
}

// runPipelined executes the T_orig configuration: every stage runs
// concurrently, connected by pipes. Streaming-capable stages process
// incrementally; whole-stream stages buffer inside their goroutine. Stage
// failures are collected in stage order and joined; an upstream failure
// propagating through a pipe poisons the downstream stages without being
// double-reported.
func (ex *executor) runPipelined(p *Plan, src io.Reader, out io.Writer) ([]StageMetrics, error) {
	ctx, cancel := context.WithCancel(ex.ctx)
	defer cancel()
	metrics := make([]StageMetrics, len(p.Stages))
	fails := make([]error, len(p.Stages))
	var (
		wg    sync.WaitGroup
		pipes []*io.PipeReader
	)
	reader := ex.source(ctx, src)
	for i := range p.Stages {
		sp := p.Stages[i]
		m := &metrics[i]
		m.Spec = sp.Spec
		m.Streamed = unix.CanStream(sp.Cmd)
		_, ssp := obs.StartSpan(ctx, "stage")
		ssp.Attr("spec", sp.Spec)
		pr, pw := io.Pipe()
		pipes = append(pipes, pr)
		in := reader
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer ssp.End()
			var bytesIn, bytesOut atomic.Int64
			cr := &countReader{r: in, n: &bytesIn}
			cw := &countWriter{w: pw, n: &bytesOut}
			start := time.Now()
			err := unix.Exec(ctx, sp.Cmd, cr, cw)
			m.Wall = time.Since(start)
			m.BytesIn = bytesIn.Load()
			m.BytesOut = bytesOut.Load()
			if err != nil {
				var up *stageError
				if errors.As(err, &up) {
					// Upstream failure read off the pipe: pass it through
					// without re-reporting it for this stage.
					pw.CloseWithError(up)
					return
				}
				se := &stageError{spec: sp.Spec, err: err}
				fails[i] = se
				pw.CloseWithError(se)
				return
			}
			pw.Close()
		}(i)
		reader = pr
	}
	_, copyErr := io.Copy(out, unix.ContextReader(ctx, reader))
	if copyErr != nil {
		// Final sink failed (or ctx cancelled): poison every pipe so
		// blocked stages unwind instead of leaking. The poison is wrapped
		// as a pass-through stage error so live stages don't record the
		// sink failure as their own.
		cancel()
		poison := copyErr
		var se *stageError
		if !errors.As(poison, &se) {
			poison = &stageError{spec: "<output sink>", err: copyErr}
		}
		for _, pr := range pipes {
			pr.CloseWithError(poison)
		}
	}
	wg.Wait()
	var errs []error
	for _, f := range fails {
		if f != nil {
			errs = append(errs, f)
		}
	}
	if copyErr != nil {
		var up *stageError
		if !errors.As(copyErr, &up) || len(errs) == 0 {
			// The copy error is either independent of any stage failure or
			// the only record of one that slipped past the fails slice.
			already := false
			for _, e := range errs {
				if errors.Is(copyErr, e) || errors.Is(e, copyErr) {
					already = true
				}
			}
			if !already {
				errs = append(errs, copyErr)
			}
		}
	}
	if len(errs) > 0 {
		return metrics, errors.Join(errs...)
	}
	return metrics, nil
}
