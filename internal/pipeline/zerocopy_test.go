package pipeline

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kumquat/internal/textio"
)

// TestDrainHonorsCancellation: the up-front materialization of an
// in-memory stdin must observe the run context. Regression test for the
// drain reading the whole body before anything checked ctx — with the
// context already cancelled, Execute must fail without consuming a byte.
func TestDrainHonorsCancellation(t *testing.T) {
	syn := newSynth()
	plan := compilePlan(t, syn, "sort | uniq -c\n")
	input := strings.Repeat("light word\n", 10000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, fuse := range []bool{true, false} {
		r := strings.NewReader(input)
		_, err := plan.Execute(ctx, syn.Env, r, io.Discard, ModeOptimized, 2, WithFuse(fuse))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("fuse=%v: err = %v, want context.Canceled", fuse, err)
		}
		if r.Len() != len(input) {
			t.Errorf("fuse=%v: drain consumed %d bytes after cancellation", fuse, len(input)-r.Len())
		}
	}
}

// TestMappedInputMatchesRegistered: a pipeline over an mmap-backed input
// file must produce byte-identical output to the same corpus registered
// as an in-memory string, across every mode — the mmap-vs-fallback
// equivalence gate of the zero-copy data plane.
func TestMappedInputMatchesRegistered(t *testing.T) {
	corpus := strings.Repeat("Some Light text\nmore WORDS here\nlight Again\n", 700) + "no newline tail"
	path := filepath.Join(t.TempDir(), "in.txt")
	if err := os.WriteFile(path, []byte(corpus), 0o644); err != nil {
		t.Fatal(err)
	}

	ref := newSynth()
	ref.Env.FS.Register("in.txt", corpus)
	refPlan := compilePlan(t, ref, "cat in.txt | tr A-Z a-z | sort | uniq -c\n")
	want, err := refPlan.RunSerial(ref.Env, "")
	if err != nil {
		t.Fatal(err)
	}

	syn := newSynth()
	m, err := textio.MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	syn.Env.FS.RegisterMapping("in.txt", m)
	defer syn.Env.FS.Close()
	plan := compilePlan(t, syn, "cat in.txt | tr A-Z a-z | sort | uniq -c\n")
	for _, mode := range allModes {
		for _, k := range []int{1, 3} {
			var out strings.Builder
			if _, err := plan.Execute(context.Background(), syn.Env, nil, &out, mode, k); err != nil {
				t.Errorf("%v k=%d: %v", mode, k, err)
				continue
			}
			if out.String() != want {
				t.Errorf("%v k=%d diverged from registered-string run", mode, k)
			}
		}
	}
}
