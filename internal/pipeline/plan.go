package pipeline

import (
	"context"
	"fmt"

	"kumquat/internal/dataflow"
	"kumquat/internal/synth"
	"kumquat/internal/synth/cache"
	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// StagePlan is the planner's verdict for one command stage.
type StagePlan struct {
	Spec string
	Cmd  unix.Command
	// Synth is the synthesis result; Synth.Err != nil means no combiner.
	Synth *synth.Result
	// Parallel marks stages executed data-parallel with a combiner.
	Parallel bool
	// Sequential marks stages with only a rerun combiner and no
	// significant stream reduction: parallelizing them costs more than it
	// saves, so they run serially (§2's tr -cs decision).
	Sequential bool
	// Eliminated marks parallel stages whose combiner the optimizer removed
	// per Theorem 5: their output substreams feed the next parallel stage
	// directly.
	Eliminated bool
	// StreamOutput records whether the command's outputs terminate with
	// newlines — Theorem 5's precondition (tr -d '\n' violates it).
	StreamOutput bool
}

// Plan is the compiled data-parallel pipeline.
type Plan struct {
	InputFile string
	Stages    []*StagePlan
	// SynthStats is the combiner-cache activity of this compilation,
	// attributed per stage-synthesis call (exact under concurrent use of
	// the shared engine, unlike a windowed Stats delta).
	SynthStats cache.Stats
	// Graph is the pipeline lowered into the order-aware dataflow IR, and
	// Program is the optimizer's region sequence over it — the fused
	// executor's input (stream.go's graph-walking mode).
	Graph   *dataflow.Graph
	Program *dataflow.Program
}

// Compile synthesizes a combiner for every stage and applies the paper's
// two planning decisions: sequential execution of non-reducing rerun
// stages, and intermediate combiner elimination (§3.5). Repeated stages —
// within one pipeline or across pipelines compiled through the same
// engine — resolve from the engine's combiner cache instead of re-running
// synthesis.
func Compile(p *Pipeline, eng *synth.Engine) (*Plan, error) {
	return CompileContext(context.Background(), p, eng)
}

// CompileContext is Compile with cancellation: a cancelled ctx aborts the
// in-flight stage synthesis mid-round and returns ctx.Err().
func CompileContext(ctx context.Context, p *Pipeline, eng *synth.Engine) (*Plan, error) {
	plan := &Plan{InputFile: p.InputFile}
	for _, spec := range p.Stages {
		cmd, err := unix.Parse(spec, eng.Env)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %q: %w", spec, err)
		}
		sp := &StagePlan{Spec: spec, Cmd: cmd}
		res, tier, _ := eng.SynthesizeTier(ctx, spec)
		plan.SynthStats = plan.SynthStats.Add(tier.Count())
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp.Synth = res
		if res != nil && res.Err == nil {
			sp.Parallel = true
			// Rerun-only stages execute sequentially: re-running the
			// command over the concatenated substreams re-does the whole
			// computation, so data parallelism buys nothing (§2's tr -cs
			// decision; Table 3 applies it to every rerun-only stage,
			// e.g. sed 100q in top-n.sh and head -n 3 in unix50 12.sh).
			if res.Combiner.IsRerunOnly() {
				sp.Parallel = false
				sp.Sequential = true
			}
		}
		sp.StreamOutput = probeStreamOutput(cmd)
		plan.Stages = append(plan.Stages, sp)
	}
	// Theorem 5: a parallel stage whose combiner is concat and whose
	// outputs are streams feeds its substreams directly into a following
	// parallel stage; the intermediate combiner disappears. The final
	// stage always combines (a single output stream must emerge).
	for i := 0; i+1 < len(plan.Stages); i++ {
		cur, next := plan.Stages[i], plan.Stages[i+1]
		if cur.Parallel && cur.StreamOutput && next.Parallel &&
			cur.Synth.Combiner.IsConcat() {
			cur.Eliminated = true
		}
	}
	plan.lower(dataflow.Options{})
	return plan, nil
}

// lower builds the plan's dataflow IR and optimized program. Compile runs
// it with default options; tests re-lower with ablation or
// deliberately-unsound options to pin the optimizer's behaviour.
func (p *Plan) lower(opts dataflow.Options) {
	stages := make([]dataflow.Stage, len(p.Stages))
	for i, sp := range p.Stages {
		stages[i] = dataflow.Stage{
			Spec:         sp.Spec,
			Cmd:          sp.Cmd,
			Synth:        sp.Synth,
			Parallel:     sp.Parallel,
			Sequential:   sp.Sequential,
			StreamOutput: sp.StreamOutput,
		}
	}
	p.Graph = dataflow.Build(p.InputFile, stages)
	p.Program = dataflow.Optimize(p.Graph, opts)
}

// Relower rebuilds the plan's optimized program under explicit optimizer
// options (ablating rules, or the deliberately-unsound legality knobs the
// conformance regression tests use).
func (p *Plan) Relower(opts dataflow.Options) { p.lower(opts) }

// probeStreamOutput checks Theorem 5's precondition on sample inputs: the
// command must produce newline-terminated (or empty) output.
func probeStreamOutput(cmd unix.Command) bool {
	for _, in := range []string{"xq zv\nqm\n", "ab\n\ncd ef\n"} {
		out, err := cmd.Run(in)
		if err != nil {
			continue
		}
		if out != "" && !textio.IsStream(out) {
			return false
		}
	}
	return true
}

// Counts summarizes the plan for Table 3: parallelized stages k, total
// stages n, and eliminated combiners.
func (p *Plan) Counts() (parallelized, total, eliminated int) {
	for _, sp := range p.Stages {
		total++
		if sp.Parallel {
			parallelized++
		}
		if sp.Eliminated {
			eliminated++
		}
	}
	return
}
