package pipeline

import (
	"context"
	"strings"
	"testing"
)

// TestCombineWorkersIdenticalOutput: the combine plane is a wall-clock
// knob only — every worker count must produce byte-identical output, and
// chunked stages must record their combine share in CombineWall.
func TestCombineWorkersIdenticalOutput(t *testing.T) {
	syn := newSynth()
	syn.Env.FS.Register("in.txt",
		strings.Repeat("delta\nalpha\nbravo\nalpha\ncharlie\n", 40))
	plan := compilePlan(t, syn, "cat in.txt | sort | uniq -c | sort -rn\n")
	var want string
	for i, workers := range []int{0, 1, 2, 8} {
		var out strings.Builder
		ms, err := plan.Execute(context.Background(), syn.Env, nil, &out,
			ModeUnoptimized, 4, WithCombineWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			want = out.String()
		} else if out.String() != want {
			t.Fatalf("workers=%d: output diverged:\n%q\nvs\n%q", workers, out.String(), want)
		}
		sawCombine := false
		for _, m := range ms {
			if m.Chunks > 1 && m.CombineWall > 0 {
				sawCombine = true
			}
			if m.Chunks <= 1 && m.CombineWall != 0 {
				t.Errorf("workers=%d: unchunked stage %q has CombineWall %v",
					workers, m.Spec, m.CombineWall)
			}
		}
		if !sawCombine {
			t.Errorf("workers=%d: no chunked stage recorded a CombineWall", workers)
		}
	}
}
