package pipeline

import (
	"strings"
	"testing"
)

// TestParseScriptUntrustedInput pins the parser's error paths for the
// malformed scripts kumquatd receives from untrusted clients: each case
// must produce a diagnostic, never a silently-mangled pipeline.
func TestParseScriptUntrustedInput(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty segment middle", "cat x | | wc -l\n", "empty pipeline segment"},
		{"empty segment leading", "| sort\n", "empty pipeline segment"},
		{"empty segment trailing", "sort |\n", "empty pipeline segment"},
		{"unterminated single quote", "grep 'abc | wc -l\n", "unterminated ' quote"},
		{"unterminated double quote", `awk "{print | sort` + "\n", `unterminated " quote`},
		{"output redirect without target", "cat x | sort >\n", "output redirect without target"},
		{"input redirect without target", "sort -n <\n", "input redirect without target"},
		{"no pipelines", "# only a comment\nVAR=1\n", "no pipelines"},
		{"stages all empty", "cat x >\n", "redirect without target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ParseScript(tc.src, nil)
			if err == nil {
				t.Fatalf("ParseScript(%q) = %+v, want error containing %q", tc.src, s, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseScript(%q) error = %q, want it to contain %q", tc.src, err, tc.wantErr)
			}
		})
	}
}

// TestParseScriptQuotedMetaNotRedirect guards the other side of the
// hardening: quoted '>' / '<' and '|' stay command text, not syntax.
func TestParseScriptQuotedMetaNotRedirect(t *testing.T) {
	s, err := ParseScript(`cat x | awk '\$1 > 2 {print}' | grep 'a|b'`+"\n", nil)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	p := s.Pipelines[0]
	if p.OutputFile != "" {
		t.Errorf("quoted > treated as redirect: OutputFile = %q", p.OutputFile)
	}
	want := []string{`awk '\$1 > 2 {print}'`, `grep 'a|b'`}
	if len(p.Stages) != len(want) || p.Stages[0] != want[0] || p.Stages[1] != want[1] {
		t.Errorf("stages = %q, want %q", p.Stages, want)
	}
}
