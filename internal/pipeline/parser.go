// Package pipeline implements KumQuat's pipeline layer (Figure 2): parsing
// shell scripts into pipelines of command stages, planning the data-parallel
// version (which stages get parallelized, which synthesized combiners get
// eliminated per Theorem 5, which stages stay sequential), and executing
// serial, unoptimized-parallel, optimized-parallel and pipelined versions.
package pipeline

import (
	"fmt"
	"strings"

	"kumquat/internal/unix"
)

// Pipeline is one sequence of commands connected by pipes. InputFile names
// the data source when the pipeline starts with "cat FILE" or ends its
// first command with "< FILE"; stage counting follows the paper's footnote
// 3 (the initial cat is not a stage).
type Pipeline struct {
	InputFile  string
	OutputFile string // "> FILE" redirect; later pipelines may read it
	Stages     []string
}

// Script is a parsed benchmark script: variable definitions plus one or
// more pipelines.
type Script struct {
	Vars      map[string]string
	Pipelines []*Pipeline
}

// ParseScript parses the benchmark-script subset of shell: VAR=VALUE and
// VAR=${VAR:-default} assignments, comments, and pipeline lines. preset
// variables override script defaults (like environment variables would).
func ParseScript(src string, preset map[string]string) (*Script, error) {
	s := &Script{Vars: map[string]string{}}
	for k, v := range preset {
		s.Vars[k] = v
	}
	for ln, rawLine := range strings.Split(src, "\n") {
		line := strings.TrimSpace(rawLine)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if name, def, ok := parseAssignment(line); ok {
			if _, preset := s.Vars[name]; !preset {
				s.Vars[name] = def
			}
			continue
		}
		p, err := parsePipelineLine(line, s.Vars)
		if err != nil {
			return nil, fmt.Errorf("pipeline: line %d: %w", ln+1, err)
		}
		s.Pipelines = append(s.Pipelines, p)
	}
	if len(s.Pipelines) == 0 {
		return nil, fmt.Errorf("pipeline: script has no pipelines")
	}
	return s, nil
}

// parseAssignment recognizes VAR=VALUE and VAR=${VAR:-default}.
func parseAssignment(line string) (name, value string, ok bool) {
	if strings.ContainsAny(line, "|") || strings.Contains(line, " ") && !strings.Contains(line[:strings.IndexByte(line, ' ')], "=") {
		return "", "", false
	}
	i := strings.IndexByte(line, '=')
	if i <= 0 {
		return "", "", false
	}
	name = line[:i]
	for _, c := range name {
		if !(c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c == '_' || c >= '0' && c <= '9') {
			return "", "", false
		}
	}
	v := line[i+1:]
	// ${VAR:-default}
	if strings.HasPrefix(v, "${") && strings.HasSuffix(v, "}") {
		inner := v[2 : len(v)-1]
		if j := strings.Index(inner, ":-"); j >= 0 {
			return name, inner[j+2:], true
		}
		return name, "", true
	}
	return name, strings.Trim(v, `"'`), true
}

// expandVars substitutes $VAR and ${VAR} references. Backslash-escaped
// dollars (awk's \$1 inside double quotes) are preserved verbatim for the
// command tokenizer to handle.
func expandVars(s string, vars map[string]string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			b.WriteByte(s[i])
			b.WriteByte(s[i+1])
			i++
			continue
		}
		if s[i] != '$' || i+1 >= len(s) {
			b.WriteByte(s[i])
			continue
		}
		j := i + 1
		braced := false
		if s[j] == '{' {
			braced = true
			j++
		}
		start := j
		for j < len(s) && (s[j] >= 'A' && s[j] <= 'Z' || s[j] >= 'a' && s[j] <= 'z' || s[j] == '_' || s[j] >= '0' && s[j] <= '9') {
			j++
		}
		if start == j {
			b.WriteByte(s[i])
			continue
		}
		name := s[start:j]
		if braced && j < len(s) && s[j] == '}' {
			j++
		}
		b.WriteString(vars[name])
		i = j - 1
	}
	return b.String()
}

// parsePipelineLine splits a line on unquoted '|' and extracts the input
// source from a leading "cat FILE" or a "< FILE" redirect. The script
// grammar is served to untrusted clients by kumquatd, so malformed lines
// — empty segments, unterminated quotes, redirects without a target —
// are hard errors rather than silently dropped syntax.
func parsePipelineLine(line string, vars map[string]string) (*Pipeline, error) {
	segments, err := splitPipes(line)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{}
	for i, seg := range segments {
		seg = strings.TrimSpace(expandVars(seg, vars))
		if seg == "" {
			return nil, fmt.Errorf("empty pipeline segment")
		}
		// Input redirect on the first segment: "cmd < FILE".
		if i == 0 {
			if j := strings.LastIndexByte(seg, '<'); j >= 0 && !strings.ContainsAny(seg[j:], "'\"") {
				p.InputFile = strings.TrimSpace(seg[j+1:])
				if p.InputFile == "" {
					return nil, fmt.Errorf("input redirect without target")
				}
				seg = strings.TrimSpace(seg[:j])
			}
		}
		// Leading "cat FILE" is the data source, not a stage (footnote 3).
		if i == 0 && p.InputFile == "" {
			if argv, err := unix.Tokenize(seg); err == nil && len(argv) == 2 && argv[0] == "cat" && argv[1] != "-" {
				p.InputFile = argv[1]
				continue
			}
		}
		// Record trailing "> FILE" output redirects (later pipelines in the
		// same script read the file, as the poets scripts do).
		if i == len(segments)-1 {
			if j := strings.LastIndexByte(seg, '>'); j >= 0 && !strings.ContainsAny(seg[j:], "'\"") {
				p.OutputFile = strings.TrimSpace(seg[j+1:])
				if p.OutputFile == "" {
					return nil, fmt.Errorf("output redirect without target")
				}
				seg = strings.TrimSpace(seg[:j])
			}
		}
		if seg == "" {
			continue
		}
		p.Stages = append(p.Stages, seg)
	}
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("pipeline has no stages")
	}
	return p, nil
}

// splitPipes splits on '|' outside quotes; a quote left open at end of
// line is an error (the segment boundary would be ambiguous).
func splitPipes(line string) ([]string, error) {
	var segs []string
	depth := byte(0)
	start := 0
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case depth != 0:
			if c == depth {
				depth = 0
			}
		case c == '\'' || c == '"':
			depth = c
		case c == '\\':
			i++
		case c == '|':
			segs = append(segs, line[start:i])
			start = i + 1
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unterminated %c quote", depth)
	}
	return append(segs, line[start:]), nil
}
