package pipeline

import (
	"strings"
	"testing"

	"kumquat/internal/unix"
)

// FuzzParser drives the hardened script parser (and the command
// tokenizer behind it) with arbitrary input: it must never panic, and
// every script it accepts must decompose into stages the command parser
// can at least tokenize without crashing. CI runs this with a short
// -fuzztime budget; the seed corpus covers the grammar's edges the
// parser hardening targets (unterminated quotes, dangling redirects,
// empty stages).
func FuzzParser(f *testing.F) {
	seeds := []string{
		"cat in.txt | sort | uniq -c\n",
		"cat in/text.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn | sed 100q\n",
		"X=${X:-in.txt}\ncat $X | wc -l\n",
		"# comment\nsort -k1n < in.txt > out.txt\n",
		"mkfifo s1 s2\ncat a | sort > s1\ndiff -B s1 s2\nrm s1 s2\n",
		"a | | b\n",
		"| sort\n",
		"sort |\n",
		"cat <\n",
		"echo 'unterminated\n",
		"grep \"half\\\"quoted\n",
		"sort > \n",
		"cat in.txt | \x00 | sort\n",
		"VAR=\ncat ${VAR}$\n",
		strings.Repeat("a|", 300) + "\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	env := unix.DefaultEnv()
	f.Fuzz(func(t *testing.T, src string) {
		script, err := ParseScript(src, nil)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		for _, pl := range script.Pipelines {
			for _, spec := range pl.Stages {
				// Accepted stages must never crash the command parser;
				// unknown commands and bad flags are ordinary errors.
				_, _ = unix.Parse(spec, env)
			}
		}
	})
}
