package cluster

import "sync/atomic"

// Stats counts the failure-handling work of cluster dispatch. The
// coordinator keeps one per ExecutePlan call (surfaced in the execute
// trailer's ClusterReport) and one cumulative instance (surfaced as
// /metrics gauges). All fields are atomics: dispatch goroutines update
// them concurrently.
type Stats struct {
	// Shards counts logical shards dispatched (one per chunk per
	// parallel stage, whatever the attempt count).
	Shards atomic.Int64
	// RemoteRuns counts shards whose accepted result came from a worker;
	// LocalRuns counts shards that degraded to in-process execution.
	RemoteRuns atomic.Int64
	LocalRuns  atomic.Int64
	// Retries counts re-dispatches after failed attempts (client-level
	// transport retries included via the retry-notify hook).
	Retries atomic.Int64
	// Speculations counts straggler duplicates launched;
	// SpeculationWins counts duplicates whose result arrived first.
	Speculations    atomic.Int64
	SpeculationWins atomic.Int64
	// Ejections and Readmissions count worker health transitions
	// triggered while this Stats instance was recording.
	Ejections    atomic.Int64
	Readmissions atomic.Int64
}

// StatsSnapshot is a plain-integer copy of a Stats, safe to serialize.
type StatsSnapshot struct {
	Shards          int64
	RemoteRuns      int64
	LocalRuns       int64
	Retries         int64
	Speculations    int64
	SpeculationWins int64
	Ejections       int64
	Readmissions    int64
}

// Snapshot reads every counter once.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Shards:          s.Shards.Load(),
		RemoteRuns:      s.RemoteRuns.Load(),
		LocalRuns:       s.LocalRuns.Load(),
		Retries:         s.Retries.Load(),
		Speculations:    s.Speculations.Load(),
		SpeculationWins: s.SpeculationWins.Load(),
		Ejections:       s.Ejections.Load(),
		Readmissions:    s.Readmissions.Load(),
	}
}

// AddAll folds a finished run's counters into the cumulative totals.
func (s *Stats) AddAll(o *Stats) {
	snap := o.Snapshot()
	s.Shards.Add(snap.Shards)
	s.RemoteRuns.Add(snap.RemoteRuns)
	s.LocalRuns.Add(snap.LocalRuns)
	s.Retries.Add(snap.Retries)
	s.Speculations.Add(snap.Speculations)
	s.SpeculationWins.Add(snap.SpeculationWins)
	s.Ejections.Add(snap.Ejections)
	s.Readmissions.Add(snap.Readmissions)
}
