package cluster

import (
	"context"
	"strings"

	"kumquat/internal/server/client"
)

// HTTPRunner executes shards on one worker daemon over the typed
// streaming client. Retry policy deliberately lives in the coordinator,
// not the client: the coordinator spreads re-dispatches across workers
// and counts every one, which a per-client retry loop would hide.
type HTTPRunner struct {
	c *client.Client
}

// NewHTTPRunner builds the production runner for one worker address; a
// bare host:port (the -workers flag's natural spelling) gets an http://
// scheme. Per-attempt deadlines arrive via the coordinator's context, so
// the underlying client needs no timeout of its own.
func NewHTTPRunner(addr string, cfg Config) *HTTPRunner {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &HTTPRunner{c: client.New(addr)}
}

// Run executes the single-stage script over the shard on the worker in
// serial mode — the shard is already the unit of parallelism, so the
// worker must not re-split it. Cluster dispatch is forced off on the
// worker to keep a misconfigured worker-of-workers from recursing.
func (r *HTTPRunner) Run(ctx context.Context, script, input string) (string, error) {
	var out strings.Builder
	opts := client.ExecuteOptions{Mode: "serial", Cluster: "off"}
	if _, err := r.c.Execute(ctx, script, opts, strings.NewReader(input), &out); err != nil {
		return "", err
	}
	return out.String(), nil
}

// Probe checks the worker's readiness endpoint, so a draining worker is
// not readmitted into the rotation.
func (r *HTTPRunner) Probe(ctx context.Context) error {
	return r.c.Readyz(ctx)
}
