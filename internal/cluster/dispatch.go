package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"kumquat/internal/obs"
	"kumquat/internal/pipeline"
	"kumquat/internal/server/client"
)

// errNoWorkers reports an exhausted rotation: every worker is ejected
// and no probe readmitted one.
var errNoWorkers = errors.New("cluster: no healthy workers")

// latencies tracks completed shard latencies within one dispatch wave;
// the speculation threshold derives from its quantile.
type latencies struct {
	mu sync.Mutex
	ds []time.Duration
}

// record logs one completed shard's latency.
func (l *latencies) record(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ds = append(l.ds, d)
}

// quantile returns the q-quantile of the recorded latencies (false when
// none have completed yet).
func (l *latencies) quantile(q float64) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ds) == 0 {
		return 0, false
	}
	ds := make([]time.Duration, len(l.ds))
	copy(ds, l.ds)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	i := int(q * float64(len(ds)-1))
	return ds[i], true
}

// runShards executes one parallel stage's chunks across the cluster,
// concurrently, returning the per-shard outputs in shard order (the
// order CombineKTree needs for byte-identity with the local combine).
func (co *Coordinator) runShards(ctx context.Context, sp *pipeline.StagePlan, chunks []string, st *Stats) ([]string, error) {
	outs := make([]string, len(chunks))
	errs := make([]error, len(chunks))
	lat := &latencies{}
	var wg sync.WaitGroup
	for i := range chunks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, ssp := obs.StartSpan(ctx, "shard")
			ssp.AttrInt("shard", int64(i))
			outs[i], errs[i] = co.runShard(sctx, sp, chunks[i], lat, st)
			ssp.End()
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: stage %q shard %d: %w", sp.Spec, i, err)
		}
	}
	return outs, nil
}

// runShard resolves one shard: remote dispatch (with retries and
// speculation) first, local in-process execution as the last resort.
// Shards are idempotent — the output is a pure function of (stage spec,
// shard bytes) — so a re-run anywhere yields identical bytes.
func (co *Coordinator) runShard(ctx context.Context, sp *pipeline.StagePlan, chunk string, lat *latencies, st *Stats) (string, error) {
	st.Shards.Add(1)
	start := time.Now()
	if co.cfg.OnShardLatency != nil {
		// Total shard resolution time: dispatch through final success or
		// failure, local fallback included.
		defer func() { co.cfg.OnShardLatency(time.Since(start)) }()
	}
	out, err := co.dispatch(ctx, sp.Spec, chunk, lat, st)
	if err == nil {
		lat.record(time.Since(start))
		st.RemoteRuns.Add(1)
		return out, nil
	}
	if ctx.Err() != nil {
		return "", ctx.Err()
	}
	// Graceful degradation: the worker set failed this shard, so run it
	// in-process — the cluster only ever costs speed, not correctness.
	st.LocalRuns.Add(1)
	if span := obs.FromContext(ctx); span.Enabled() {
		span.EventAttr("local-fallback", "remote-error", err.Error())
	}
	out, lerr := sp.Cmd.Run(chunk)
	if lerr != nil {
		return "", fmt.Errorf("local fallback (remote: %v): %w", err, lerr)
	}
	return out, nil
}

// dispatch races the shard's primary attempt chain against an optional
// speculative duplicate launched once the shard looks like a straggler.
// The first successful result wins; the loser is cancelled and its
// result discarded (safe: shards are idempotent, duplicates are
// byte-identical).
func (co *Coordinator) dispatch(ctx context.Context, spec, chunk string, lat *latencies, st *Stats) (string, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		out  string
		err  error
		dup  bool // produced by the speculative duplicate
	}
	resc := make(chan result, 2) // never blocks: at most two senders
	var wg sync.WaitGroup
	defer wg.Wait()

	launch := func(dup bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := co.attempts(actx, spec, chunk, st)
			resc <- result{out, err, dup}
		}()
	}
	launch(false)

	var timerC <-chan time.Time
	if d, ok := co.specDelay(lat); ok {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timerC = timer.C
	}

	pending := 1
	var firstErr error
	for {
		select {
		case r := <-resc:
			pending--
			if r.err == nil {
				if r.dup {
					st.SpeculationWins.Add(1)
					obs.FromContext(ctx).Event("speculation-win")
				}
				cancel() // abandon the losing attempt, if still running
				return r.out, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending == 0 {
				return "", firstErr
			}
		case <-timerC:
			// The shard outlived the straggler threshold: re-dispatch it
			// speculatively. The in-flight accounting steers the duplicate
			// to a different worker than the one sitting on the original.
			timerC = nil
			st.Speculations.Add(1)
			obs.FromContext(ctx).Event("speculate")
			launch(true)
			pending++
		case <-actx.Done():
			return "", actx.Err()
		}
	}
}

// specDelay resolves the straggler threshold for a shard starting now:
// the configured floor, raised to SpeculateFactor times the completed
// quantile once enough of the wave has finished.
func (co *Coordinator) specDelay(lat *latencies) (time.Duration, bool) {
	if co.cfg.SpeculateAfter < 0 {
		return 0, false
	}
	d := co.cfg.SpeculateAfter
	if q, ok := lat.quantile(co.cfg.SpeculateQuantile); ok {
		if scaled := time.Duration(float64(q) * co.cfg.SpeculateFactor); scaled > d {
			d = scaled
		}
	}
	return d, true
}

// attempts is one dispatch chain: claim a worker, run the shard under
// the per-attempt deadline, and on failure back off (full jitter,
// floored at a 429's Retry-After) and retry on the next worker, up to
// RetryMax re-dispatches.
func (co *Coordinator) attempts(ctx context.Context, spec, chunk string, st *Stats) (string, error) {
	span := obs.FromContext(ctx)
	var last error
	var avoid *worker
	for try := 0; try <= co.cfg.RetryMax; try++ {
		if try > 0 {
			st.Retries.Add(1)
			span.EventInt("retry", "attempt", int64(try))
			d := co.backoff(try-1, last)
			if co.cfg.OnRetryBackoff != nil {
				co.cfg.OnRetryBackoff(d)
			}
			if !sleepCtx(ctx, d) {
				return "", ctx.Err()
			}
		}
		w := co.pool.pick(ctx, avoid, st)
		if w == nil {
			// Every worker is ejected right now. Keep retrying: the backoff
			// before the next try doubles as cooldown time, so a recovering
			// worker can be probed back in before the chain gives up.
			switch {
			case last == nil:
				last = errNoWorkers
			case !errors.Is(last, errNoWorkers):
				last = fmt.Errorf("%w (last: %v)", errNoWorkers, last)
			}
			continue
		}
		span.EventAttr("dispatch", "worker", w.addr)
		actx, cancel := context.WithTimeout(ctx, co.cfg.ShardTimeout)
		out, err := w.runner.Run(actx, spec, chunk)
		cancel()
		if err == nil {
			co.pool.success(w)
			return out, nil
		}
		co.pool.failure(ctx, w, st)
		last = err
		avoid = w
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
	}
	return "", last
}

// backoff computes the delay before retry try+1: full jitter over an
// exponentially growing ceiling, floored at the worker's Retry-After
// hint when the failure was load shedding.
func (co *Coordinator) backoff(try int, err error) time.Duration {
	shift := uint(try)
	if shift > 20 {
		shift = 20
	}
	ceil := co.cfg.RetryBase << shift
	if ceil <= 0 || ceil > co.cfg.RetryCap {
		ceil = co.cfg.RetryCap
	}
	d := time.Duration(rand.Int63n(int64(ceil) + 1))
	var busy *client.BusyError
	if errors.As(err, &busy) && busy.RetryAfter > d {
		d = busy.RetryAfter
	}
	return d
}

// sleepCtx waits for d or until ctx is done, reporting whether the full
// delay elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
