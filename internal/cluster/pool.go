package cluster

import (
	"context"
	"sync"
	"time"

	"kumquat/internal/obs"
)

// worker is one remote daemon's health record.
type worker struct {
	addr   string
	runner Runner
	// The fields below are guarded by the owning pool's mutex.
	fails     int       // consecutive failures
	ejected   bool      // out of the rotation
	ejectedAt time.Time // when the ejection happened
	inflight  int       // attempts currently running on this worker
}

// pool is the worker set with health-based rotation: failures eject,
// cooldown-expired probes readmit, and pick prefers the least-loaded
// healthy worker so retries and speculation spread across the cluster.
type pool struct {
	cfg     Config
	mu      sync.Mutex
	workers []*worker
}

// newPool builds the pool over the configured worker addresses.
func newPool(cfg Config) *pool {
	p := &pool{cfg: cfg}
	for _, addr := range cfg.Workers {
		p.workers = append(p.workers, &worker{addr: addr, runner: cfg.NewRunner(addr)})
	}
	return p
}

// healthy counts workers currently in the rotation.
func (p *pool) healthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if !w.ejected {
			n++
		}
	}
	return n
}

// pick claims a healthy worker for one attempt, preferring the
// least-loaded and avoiding the given worker (the previous attempt's
// target) when any alternative exists. If the rotation is empty,
// ejected workers whose cooldown has expired are probed (bounded by
// ProbeTimeout) and readmitted on success. Returns nil when no worker
// can be claimed — the caller degrades to local execution. Every
// non-nil claim must be released via success or failure.
func (p *pool) pick(ctx context.Context, avoid *worker, st *Stats) *worker {
	if w := p.claim(avoid); w != nil {
		return w
	}
	// Rotation exhausted: try to readmit a cooled-down ejected worker.
	for _, w := range p.cooled() {
		pctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
		err := w.runner.Probe(pctx)
		cancel()
		p.mu.Lock()
		if err != nil {
			w.ejectedAt = time.Now() // probe failed: restart the cooldown
			p.mu.Unlock()
			continue
		}
		if w.ejected {
			w.ejected = false
			w.fails = 0
			st.Readmissions.Add(1)
			obs.FromContext(ctx).EventAttr("readmit-worker", "worker", w.addr)
			p.cfg.Logger.Info("worker readmitted", "worker", w.addr)
		}
		w.inflight++
		p.mu.Unlock()
		return w
	}
	return nil
}

// claim picks the best available worker under the lock, or nil. A
// non-avoided worker always beats the avoided one; ties break on
// in-flight load.
func (p *pool) claim(avoid *worker) *worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *worker
	for _, w := range p.workers {
		if w.ejected {
			continue
		}
		switch {
		case best == nil:
			best = w
		case (w != avoid) != (best != avoid):
			if w != avoid {
				best = w
			}
		case w.inflight < best.inflight:
			best = w
		}
	}
	if best != nil {
		best.inflight++
	}
	return best
}

// cooled lists ejected workers whose cooldown has expired.
func (p *pool) cooled() []*worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*worker
	for _, w := range p.workers {
		if w.ejected && time.Since(w.ejectedAt) >= p.cfg.EjectCooldown {
			out = append(out, w)
		}
	}
	return out
}

// success releases a claim after a completed attempt and resets the
// worker's failure streak.
func (p *pool) success(w *worker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.inflight--
	w.fails = 0
}

// failure releases a claim after a failed attempt, ejecting the worker
// once its consecutive-failure streak reaches the threshold. ctx carries
// the dispatching shard's span, so ejections land on the trace that
// caused them.
func (p *pool) failure(ctx context.Context, w *worker, st *Stats) {
	p.mu.Lock()
	w.inflight--
	w.fails++
	ejected := false
	fails := w.fails
	if !w.ejected && w.fails >= p.cfg.EjectAfter {
		w.ejected = true
		w.ejectedAt = time.Now()
		st.Ejections.Add(1)
		ejected = true
	}
	p.mu.Unlock()
	if ejected {
		obs.FromContext(ctx).EventAttr("eject-worker", "worker", w.addr)
		p.cfg.Logger.Warn("worker ejected", "worker", w.addr, "fails", fails)
	}
}
