package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"kumquat/internal/obs"
)

// tracedExecute runs ExecutePlan under a root span and returns the
// recorded trace, so tests can assert on the dispatch events the
// cluster plane annotates its shard spans with.
func tracedExecute(t *testing.T, co *Coordinator, script, corpus string) *obs.TraceData {
	t.Helper()
	trc := obs.NewTracer(1, "test")
	ctx, root := trc.StartTrace(context.Background(), "run")
	plan := compilePlan(t, script)
	out, _, _, err := co.ExecutePlan(ctx, plan, corpus, 0)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if want := serialRun(t, plan, corpus); out != want {
		t.Fatalf("traced run diverges: %q != %q", out, want)
	}
	td, ok := trc.Trace(root.SpanContext().TraceID)
	if !ok {
		t.Fatal("trace not recorded")
	}
	return td
}

// countEvents tallies span-event names across a trace, and spanNames the
// span names.
func countEvents(td *obs.TraceData) (events, spans map[string]int) {
	events, spans = map[string]int{}, map[string]int{}
	for _, sp := range td.Spans {
		spans[sp.Name]++
		for _, ev := range sp.Events {
			events[ev.Name]++
		}
	}
	return events, spans
}

// TestTraceRetryEvents: a worker failing every call forces re-dispatch,
// and each retry lands as a "retry" event on the owning shard span —
// alongside one "dispatch" event per attempt naming the worker tried.
func TestTraceRetryEvents(t *testing.T) {
	boom := errors.New("boom")
	runners := map[string]*fakeRunner{
		"bad":  {addr: "bad", fail: func(int) error { return boom }},
		"good": {addr: "good"},
	}
	co := New(testConfig(runners, "bad", "good"))

	td := tracedExecute(t, co, "sort", testCorpus)
	events, spans := countEvents(td)
	if spans["cluster-stage"] == 0 || spans["shard"] == 0 {
		t.Fatalf("traced dispatch recorded no stage/shard spans: %v", spans)
	}
	if events["retry"] == 0 {
		t.Fatalf("failing worker left no retry events: %v", events)
	}
	if events["dispatch"] <= events["retry"] {
		t.Fatalf("dispatch events (%d) must outnumber retries (%d): every attempt dispatches",
			events["dispatch"], events["retry"])
	}
}

// TestTraceSpeculationEvents: a stalling worker's shard speculates, and
// both the launch and the duplicate's win land as span events.
func TestTraceSpeculationEvents(t *testing.T) {
	runners := map[string]*fakeRunner{
		"slow": {addr: "slow", delay: 2 * time.Second},
		"b":    {addr: "b"}, "c": {addr: "c"},
	}
	cfg := testConfig(runners, "slow", "b", "c")
	cfg.SpeculateAfter = 20 * time.Millisecond
	cfg.SpeculateFactor = 100
	co := New(cfg)

	td := tracedExecute(t, co, "sort", testCorpus)
	events, _ := countEvents(td)
	if events["speculate"] == 0 {
		t.Fatalf("stalled shard left no speculate events: %v", events)
	}
	if events["speculation-win"] == 0 {
		t.Fatalf("winning duplicate left no speculation-win event: %v", events)
	}
}

// TestTraceFallbackAndEjectionEvents: with every worker dead, shard
// spans carry local-fallback events and the health plane's ejections
// surface as eject-worker events.
func TestTraceFallbackAndEjectionEvents(t *testing.T) {
	boom := errors.New("down")
	fail := func(int) error { return boom }
	runners := map[string]*fakeRunner{
		"a": {addr: "a", fail: fail, probeErr: boom},
		"b": {addr: "b", fail: fail, probeErr: boom},
	}
	cfg := testConfig(runners, "a", "b")
	cfg.EjectCooldown = time.Minute
	co := New(cfg)

	td := tracedExecute(t, co, "sort | uniq -c", testCorpus)
	events, _ := countEvents(td)
	if events["local-fallback"] == 0 {
		t.Fatalf("dead cluster left no local-fallback events: %v", events)
	}
	if events["eject-worker"] == 0 {
		t.Fatalf("dead workers left no eject-worker events: %v", events)
	}
}
