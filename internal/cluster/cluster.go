// Package cluster is kumquatd's fault-tolerant cluster execution plane:
// a coordinator that splits a pipeline's input corpus into line-aligned
// byte-range shards (the textio offsets core), fans the shards out to
// worker daemons over the typed client (each worker executes one stage
// spec on one shard — a remote leaf of the combine tree), and recombines
// the partial results with the same Associative/CombineKTree machinery
// the in-process combine plane uses. The output is byte-identical to the
// local unoptimized u_k execution, which the conformance plane holds to
// the serial oracle.
//
// Failure handling is the design axis, not a bolt-on. Shards are
// idempotent — a shard's output is a pure function of (stage spec, shard
// bytes) — so every recovery mechanism is a re-run:
//
//   - per-shard deadlines with exponential-backoff, full-jitter retries
//     across the worker set (Retry-After honored via the client policy);
//   - speculative re-dispatch of straggler shards past a latency
//     threshold derived from the run's completed-shard quantile
//     (first result wins, the duplicate is cancelled and discarded);
//   - worker health accounting with ejection after consecutive failures
//     and probe-gated re-admission after a cooldown;
//   - graceful degradation to local in-process execution when the worker
//     set is exhausted, so a dead cluster only costs speed, never
//     correctness.
//
// Every retry, speculation, ejection and fallback is counted per run
// (api.ClusterReport in the execute trailer) and cumulatively (the
// coordinator's /metrics gauges).
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"kumquat/internal/obs"
	"kumquat/internal/pipeline"
	"kumquat/internal/textio"
)

// Runner executes a single-stage script on one input shard — the remote
// leaf abstraction. The production implementation wraps the typed HTTP
// client (NewHTTPRunner); tests substitute scripted fakes.
type Runner interface {
	// Run executes script over input and returns the output stream.
	Run(ctx context.Context, script, input string) (string, error)
	// Probe checks the worker's readiness (used to gate re-admission of
	// an ejected worker).
	Probe(ctx context.Context) error
}

// Config tunes a Coordinator. Workers is required; every other field has
// a serviceable default.
type Config struct {
	// Workers lists the worker daemons' base URLs (e.g.
	// "http://10.0.0.2:9917"). An empty list disables cluster dispatch.
	Workers []string
	// NewRunner builds the transport for one worker address; nil selects
	// the HTTP runner over the typed client. Tests inject fakes here.
	NewRunner func(addr string) Runner
	// Shards is the number of shards a parallel stage's input splits
	// into (0 = len(Workers)).
	Shards int
	// ShardTimeout is the per-attempt deadline of one remote shard
	// execution (default 30s).
	ShardTimeout time.Duration
	// RetryMax is the number of re-dispatches after a shard attempt
	// fails, each against a (preferably different) healthy worker with
	// exponential backoff between attempts (default 3).
	RetryMax int
	// RetryBase and RetryCap bound the full-jitter backoff delays
	// (defaults 50ms and 1s).
	RetryBase, RetryCap time.Duration
	// SpeculateAfter is the minimum age before a running shard may be
	// speculatively re-dispatched (default 2s; <0 disables speculation).
	SpeculateAfter time.Duration
	// SpeculateFactor scales the completed-shard latency quantile into
	// the straggler threshold: a shard older than
	// max(SpeculateAfter, SpeculateFactor × quantile) gets a duplicate
	// dispatch (default 2.0).
	SpeculateFactor float64
	// SpeculateQuantile is the completed-latency quantile the straggler
	// threshold derives from (default 0.75).
	SpeculateQuantile float64
	// EjectAfter is the consecutive-failure count that ejects a worker
	// from the rotation (default 3).
	EjectAfter int
	// EjectCooldown is how long an ejected worker sits out before a
	// successful probe readmits it (default 15s).
	EjectCooldown time.Duration
	// ProbeTimeout bounds one re-admission probe (default 2s).
	ProbeTimeout time.Duration
	// Logger receives structured dispatch-health logs (worker ejection
	// and readmission); nil discards them.
	Logger *slog.Logger
	// OnShardLatency, when non-nil, observes each shard's total
	// resolution time — dispatch through final success or failure,
	// including retries, speculation and local fallback. kumquatd wires
	// it to the /metrics shard-latency histogram.
	OnShardLatency func(time.Duration)
	// OnRetryBackoff, when non-nil, observes each computed retry backoff
	// delay before the coordinator sleeps it. kumquatd wires it to the
	// /metrics retry-backoff histogram.
	OnRetryBackoff func(time.Duration)
}

// withDefaults resolves the zero-value fields.
func (c Config) withDefaults() Config {
	if c.NewRunner == nil {
		c.NewRunner = func(addr string) Runner { return NewHTTPRunner(addr, c) }
	}
	if c.Shards == 0 {
		c.Shards = len(c.Workers)
	}
	if c.ShardTimeout == 0 {
		c.ShardTimeout = 30 * time.Second
	}
	if c.RetryMax == 0 {
		c.RetryMax = 3
	}
	if c.RetryBase == 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap == 0 {
		c.RetryCap = time.Second
	}
	if c.SpeculateAfter == 0 {
		c.SpeculateAfter = 2 * time.Second
	}
	if c.SpeculateFactor == 0 {
		c.SpeculateFactor = 2.0
	}
	if c.SpeculateQuantile == 0 {
		c.SpeculateQuantile = 0.75
	}
	if c.EjectAfter == 0 {
		c.EjectAfter = 3
	}
	if c.EjectCooldown == 0 {
		c.EjectCooldown = 15 * time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Coordinator owns the worker pool and executes compiled pipeline plans
// across it. It is safe for concurrent use; cumulative counters feed
// /metrics while each ExecutePlan call gets its own Stats.
type Coordinator struct {
	cfg  Config
	pool *pool
	// total accumulates every run's stats for the /metrics surface.
	total *Stats
}

// New builds a Coordinator over the configured worker set.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	return &Coordinator{cfg: cfg, pool: newPool(cfg), total: &Stats{}}
}

// Workers returns the configured worker addresses.
func (co *Coordinator) Workers() []string {
	out := make([]string, len(co.cfg.Workers))
	copy(out, co.cfg.Workers)
	return out
}

// Healthy reports how many workers are currently in the rotation.
func (co *Coordinator) Healthy() int { return co.pool.healthy() }

// Shards reports the per-stage shard count dispatch splits into.
func (co *Coordinator) Shards() int { return co.cfg.Shards }

// TotalStats snapshots the coordinator's cumulative dispatch counters
// (every run since construction) for the /metrics surface.
func (co *Coordinator) TotalStats() StatsSnapshot { return co.total.Snapshot() }

// StageStat is one stage's execution accounting from a cluster run.
type StageStat struct {
	// Spec is the stage's command text.
	Spec string
	// Remote marks stages whose shards were dispatched to workers (false
	// = the stage ran locally: sequential, non-parallel, or
	// non-dispatchable specs).
	Remote bool
	// Shards is the number of shards the stage's input split into (0
	// when the stage ran unsharded).
	Shards int
	// Wall is the stage's wall-clock time, CombineWall the share spent
	// recombining shard outputs.
	Wall, CombineWall time.Duration
	// BytesIn and BytesOut measure the stage's stream volume.
	BytesIn, BytesOut int64
}

// ExecutePlan runs one compiled pipeline over the cluster: parallel
// stages shard their input and dispatch to workers, everything else runs
// locally on the coordinator, and stage boundaries are barriers (the
// u_k configuration with remote leaves). It returns the output stream,
// per-stage accounting, and the run's dispatch stats.
func (co *Coordinator) ExecutePlan(ctx context.Context, plan *pipeline.Plan, corpus string, combineWorkers int) (string, []StageStat, *Stats, error) {
	return co.executePlan(ctx, plan, corpus, textio.LineSeq{}, false, combineWorkers)
}

// ExecutePlanSeq is ExecutePlan over a pre-indexed corpus: the first
// stage's shards come from the shared ingest line index (computed once
// when the corpus was registered) instead of a fresh boundary scan, so
// repeated dispatches of one multi-GB corpus never re-walk it.
func (co *Coordinator) ExecutePlanSeq(ctx context.Context, plan *pipeline.Plan, corpus textio.LineSeq, combineWorkers int) (string, []StageStat, *Stats, error) {
	return co.executePlan(ctx, plan, corpus.Str(), corpus, true, combineWorkers)
}

func (co *Coordinator) executePlan(ctx context.Context, plan *pipeline.Plan, corpus string, ingest textio.LineSeq, haveIngest bool, combineWorkers int) (string, []StageStat, *Stats, error) {
	st := &Stats{}
	data := corpus
	var stages []StageStat
	for si, sp := range plan.Stages {
		if si > 0 {
			haveIngest = false // the ingest index only describes stage 0's input
		}
		if err := ctx.Err(); err != nil {
			return "", stages, st, err
		}
		stat := StageStat{Spec: sp.Spec, BytesIn: int64(len(data))}
		sctx, ssp := obs.StartSpan(ctx, "cluster-stage")
		ssp.Attr("spec", sp.Spec)
		start := time.Now()
		var next string
		var err error
		if co.dispatchable(sp) {
			var chunks []string
			if haveIngest {
				chunks = ingest.Chunk(co.cfg.Shards)
			} else {
				chunks = textio.ChunkLines(data, co.cfg.Shards)
			}
			ssp.AttrInt("shards", int64(len(chunks)))
			var outs []string
			outs, err = co.runShards(sctx, sp, chunks, st)
			if err == nil {
				stat.Remote = true
				stat.Shards = len(chunks)
				_, csp := obs.StartSpan(sctx, "combine")
				csp.AttrInt("parts", int64(len(outs)))
				cstart := time.Now()
				next, err = sp.Synth.Combiner.CombineKTree(outs, combineWorkers)
				stat.CombineWall = time.Since(cstart)
				csp.End()
				if err != nil {
					err = fmt.Errorf("cluster: stage %q combine: %w", sp.Spec, err)
				}
			}
		} else {
			next, err = sp.Cmd.Run(data)
			if err != nil {
				err = fmt.Errorf("cluster: stage %q: %w", sp.Spec, err)
			}
		}
		ssp.End()
		if err != nil {
			return "", stages, st, err
		}
		stat.Wall = time.Since(start)
		stat.BytesOut = int64(len(next))
		stages = append(stages, stat)
		data = next
	}
	co.total.AddAll(st)
	return data, stages, st, nil
}

// dispatchable reports whether a stage's shards may run remotely: the
// planner must have marked it parallel with a combiner, more than one
// shard must be configured, and the spec must round-trip as a
// single-stage script on a worker (a leading "cat FILE" would be
// re-interpreted as an input source there, not a stage).
func (co *Coordinator) dispatchable(sp *pipeline.StagePlan) bool {
	if !sp.Parallel || sp.Synth == nil || sp.Synth.Combiner == nil {
		return false
	}
	if co.cfg.Shards < 2 || len(co.cfg.Workers) == 0 {
		return false
	}
	return scriptRoundTrips(sp.Spec)
}

// scriptRoundTrips checks that spec, parsed as a standalone script,
// yields exactly the same single stage reading standard input.
func scriptRoundTrips(spec string) bool {
	parsed, err := pipeline.ParseScript(spec+"\n", nil)
	if err != nil || len(parsed.Pipelines) != 1 {
		return false
	}
	p := parsed.Pipelines[0]
	return p.InputFile == "" && p.OutputFile == "" &&
		len(p.Stages) == 1 && strings.TrimSpace(p.Stages[0]) == strings.TrimSpace(spec)
}
