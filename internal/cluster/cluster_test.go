package cluster

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"kumquat"
	"kumquat/internal/pipeline"
	"kumquat/internal/unix"
)

// fakeRunner executes stage scripts in-process through the unix
// substrate, with scripted failures, latency and probe outcomes — a
// worker daemon without the HTTP.
type fakeRunner struct {
	addr  string
	delay time.Duration
	// fail decides whether call number n (1-based, per runner) fails;
	// nil means every call succeeds.
	fail func(n int) error
	// probeErr is returned by Probe.
	probeErr error

	mu    sync.Mutex
	calls int
}

func (f *fakeRunner) Run(ctx context.Context, script, input string) (string, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if f.fail != nil {
		if err := f.fail(n); err != nil {
			return "", err
		}
	}
	if f.delay > 0 {
		t := time.NewTimer(f.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	cmd, err := unix.Parse(strings.TrimSpace(script), unix.DefaultEnv())
	if err != nil {
		return "", err
	}
	return cmd.Run(input)
}

func (f *fakeRunner) Probe(ctx context.Context) error { return f.probeErr }

func (f *fakeRunner) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// compilePlan builds one compiled pipeline plan through the real
// synthesis engine (cached across tests via the shared system).
var (
	testSysOnce sync.Once
	testSys     *kumquat.System
)

func compilePlan(t *testing.T, script string) *pipeline.Plan {
	t.Helper()
	testSysOnce.Do(func() {
		testSys = kumquat.New(kumquat.NewEnv())
	})
	plan, err := testSys.ParallelizeContext(context.Background(), script+"\n")
	if err != nil {
		t.Fatalf("parallelize %q: %v", script, err)
	}
	return plan.PipelinePlans()[0]
}

// serialRun computes the oracle: every stage to completion, in order.
func serialRun(t *testing.T, plan *pipeline.Plan, corpus string) string {
	t.Helper()
	data := corpus
	for _, sp := range plan.Stages {
		out, err := sp.Cmd.Run(data)
		if err != nil {
			t.Fatalf("serial stage %q: %v", sp.Spec, err)
		}
		data = out
	}
	return data
}

// testConfig returns a Config with fake runners and test-scale timings.
func testConfig(runners map[string]*fakeRunner, addrs ...string) Config {
	return Config{
		Workers:        addrs,
		NewRunner:      func(addr string) Runner { return runners[addr] },
		Shards:         3,
		ShardTimeout:   5 * time.Second,
		RetryMax:       3,
		RetryBase:      time.Millisecond,
		RetryCap:       5 * time.Millisecond,
		SpeculateAfter: -1, // individual tests opt in
		EjectAfter:     2,
		EjectCooldown:  time.Minute,
		ProbeTimeout:   time.Second,
	}
}

const testCorpus = "pear\napple\npear\nfig\napple\npear\nkiwi\nfig\n"

// TestExecutePlanMatchesSerial: healthy cluster, parallel stages shard
// to the workers and the combined output is byte-identical to the
// serial run.
func TestExecutePlanMatchesSerial(t *testing.T) {
	runners := map[string]*fakeRunner{
		"a": {addr: "a"}, "b": {addr: "b"}, "c": {addr: "c"},
	}
	co := New(testConfig(runners, "a", "b", "c"))
	plan := compilePlan(t, "sort | uniq -c")

	out, stages, st, err := co.ExecutePlan(context.Background(), plan, testCorpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := serialRun(t, plan, testCorpus); out != want {
		t.Fatalf("cluster output diverges:\n%q\nwant\n%q", out, want)
	}
	snap := st.Snapshot()
	if snap.RemoteRuns == 0 || snap.LocalRuns != 0 {
		t.Fatalf("healthy cluster ran remote=%d local=%d", snap.RemoteRuns, snap.LocalRuns)
	}
	remote := 0
	for _, sg := range stages {
		if sg.Remote {
			remote++
			if sg.Shards != 3 {
				t.Fatalf("stage %q sharded %d ways, want 3", sg.Spec, sg.Shards)
			}
		}
	}
	if remote == 0 {
		t.Fatal("no stage was dispatched remotely")
	}
}

// TestRetryFailover: a worker that always fails is routed around — the
// shard retries on another worker, the run succeeds, and the retry is
// counted.
func TestRetryFailover(t *testing.T) {
	boom := errors.New("boom")
	runners := map[string]*fakeRunner{
		"bad":  {addr: "bad", fail: func(int) error { return boom }},
		"good": {addr: "good"},
	}
	co := New(testConfig(runners, "bad", "good"))
	plan := compilePlan(t, "sort")

	out, _, st, err := co.ExecutePlan(context.Background(), plan, testCorpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := serialRun(t, plan, testCorpus); out != want {
		t.Fatalf("failover output diverges: %q != %q", out, want)
	}
	snap := st.Snapshot()
	if snap.Retries == 0 {
		t.Fatal("failing worker produced no retries")
	}
	if snap.LocalRuns != 0 {
		t.Fatalf("failover degraded to local (%d runs) despite a healthy worker", snap.LocalRuns)
	}
	if runners["good"].callCount() == 0 {
		t.Fatal("healthy worker was never tried")
	}
}

// TestLocalFallback: with every worker dead the coordinator degrades to
// in-process execution — correct output, every shard counted local, and
// the dead workers ejected.
func TestLocalFallback(t *testing.T) {
	boom := errors.New("down")
	fail := func(int) error { return boom }
	runners := map[string]*fakeRunner{
		"a": {addr: "a", fail: fail, probeErr: boom},
		"b": {addr: "b", fail: fail, probeErr: boom},
	}
	cfg := testConfig(runners, "a", "b")
	cfg.EjectCooldown = time.Minute // keep dead workers out for the test's duration
	co := New(cfg)
	plan := compilePlan(t, "sort | uniq -c")

	out, _, st, err := co.ExecutePlan(context.Background(), plan, testCorpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := serialRun(t, plan, testCorpus); out != want {
		t.Fatalf("fallback output diverges:\n%q\nwant\n%q", out, want)
	}
	snap := st.Snapshot()
	if snap.LocalRuns == 0 {
		t.Fatal("dead cluster produced no local runs")
	}
	if snap.RemoteRuns != 0 {
		t.Fatalf("dead cluster reported %d remote runs", snap.RemoteRuns)
	}
	if snap.Ejections == 0 {
		t.Fatal("dead workers were never ejected")
	}
	if co.Healthy() != 0 {
		t.Fatalf("Healthy() = %d with every worker dead", co.Healthy())
	}
}

// TestSpeculationWins: a stalling worker's shard gets a speculative
// duplicate on a healthy worker, the duplicate's result wins, and the
// output stays byte-identical.
func TestSpeculationWins(t *testing.T) {
	runners := map[string]*fakeRunner{
		"slow": {addr: "slow", delay: 2 * time.Second},
		"b":    {addr: "b"}, "c": {addr: "c"},
	}
	cfg := testConfig(runners, "slow", "b", "c")
	cfg.SpeculateAfter = 20 * time.Millisecond
	cfg.SpeculateFactor = 100 // keep the floor decisive at test scale
	co := New(cfg)
	plan := compilePlan(t, "sort")

	out, _, st, err := co.ExecutePlan(context.Background(), plan, testCorpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := serialRun(t, plan, testCorpus); out != want {
		t.Fatalf("speculated output diverges: %q != %q", out, want)
	}
	snap := st.Snapshot()
	if snap.Speculations == 0 {
		t.Fatal("stalled shard never speculated")
	}
	if snap.SpeculationWins == 0 {
		t.Fatal("speculative duplicate never won against a 2s straggler")
	}
}

// TestEjectionReadmission: an ejected worker whose cooldown expired is
// probed and readmitted once the rotation is otherwise empty.
func TestEjectionReadmission(t *testing.T) {
	flaky := &fakeRunner{addr: "w"}
	calls := 0
	var mu sync.Mutex
	flaky.fail = func(int) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls <= 2 {
			return errors.New("warming up")
		}
		return nil
	}
	cfg := testConfig(map[string]*fakeRunner{"w": flaky}, "w")
	cfg.Shards = 2
	cfg.EjectAfter = 2
	cfg.EjectCooldown = time.Millisecond
	cfg.RetryMax = 4
	cfg.RetryBase = 5 * time.Millisecond
	co := New(cfg)
	plan := compilePlan(t, "sort")

	out, _, st, err := co.ExecutePlan(context.Background(), plan, testCorpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := serialRun(t, plan, testCorpus); out != want {
		t.Fatalf("readmission output diverges: %q != %q", out, want)
	}
	snap := st.Snapshot()
	if snap.Ejections == 0 || snap.Readmissions == 0 {
		t.Fatalf("eject/readmit cycle not observed: %+v", snap)
	}
	if snap.LocalRuns != 0 {
		t.Fatalf("run degraded locally (%d) instead of readmitting", snap.LocalRuns)
	}
}

// TestDispatchGuards: sharding is refused for specs that would not
// round-trip as standalone scripts, and for degenerate shard counts.
func TestDispatchGuards(t *testing.T) {
	runners := map[string]*fakeRunner{"a": {addr: "a"}, "b": {addr: "b"}}
	co := New(testConfig(runners, "a", "b"))
	if !scriptRoundTrips("sort") || !scriptRoundTrips("uniq -c") {
		t.Fatal("plain stage specs must round-trip")
	}
	// A leading `cat FILE` re-parses as an input source, not a stage, on
	// the worker; dispatching it would execute nothing.
	if scriptRoundTrips("cat data.txt") {
		t.Fatal("cat FILE must not round-trip as a dispatchable stage")
	}
	plan := compilePlan(t, "sort | uniq -c")
	for _, sp := range plan.Stages {
		if sp.Parallel && sp.Synth != nil && sp.Synth.Combiner != nil && !co.dispatchable(sp) {
			t.Fatalf("parallel stage %q unexpectedly not dispatchable", sp.Spec)
		}
	}
	one := New(Config{Workers: []string{"a"}, Shards: 1,
		NewRunner: func(addr string) Runner { return runners["a"] }})
	for _, sp := range plan.Stages {
		if one.dispatchable(sp) {
			t.Fatalf("stage %q dispatchable with a single shard", sp.Spec)
		}
	}
}

// TestEmptyShardsStillRun: chunking pads with empty shards; they must
// still execute (wc -l turns "" into "0\n" — dropping the shard would
// corrupt the combine).
func TestEmptyShardsStillRun(t *testing.T) {
	runners := map[string]*fakeRunner{
		"a": {addr: "a"}, "b": {addr: "b"}, "c": {addr: "c"},
	}
	cfg := testConfig(runners, "a", "b", "c")
	cfg.Shards = 4 // more shards than the corpus has lines below
	co := New(cfg)
	plan := compilePlan(t, "wc -l")
	corpus := "x\ny\n"
	out, _, st, err := co.ExecutePlan(context.Background(), plan, corpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := serialRun(t, plan, corpus); out != want {
		t.Fatalf("padded-shard output = %q, want %q", out, want)
	}
	if got := st.Snapshot().Shards; got != 4 {
		t.Fatalf("dispatched %d shards, want 4 (empty shards must run)", got)
	}
}
