package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmissionAccounting exercises the slot/queue state machine
// directly: capacity, bounded queueing, rejection, release.
func TestAdmissionAccounting(t *testing.T) {
	a := newAdmission(2, 1)
	ctx := context.Background()

	rel1, err := a.acquire(ctx)
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	rel2, err := a.acquire(ctx)
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if got := a.inFlight(); got != 2 {
		t.Errorf("inFlight = %d, want 2", got)
	}

	// Third request queues; it must block until a slot frees.
	acquired := make(chan func(), 1)
	go func() {
		rel, err := a.acquire(ctx)
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		acquired <- rel
	}()
	waitFor(t, func() bool { return a.queued() == 1 })

	// Fourth request overflows the queue: ErrBusy, immediately.
	if _, err := a.acquire(ctx); !errors.Is(err, ErrBusy) {
		t.Errorf("overflow acquire: want ErrBusy, got %v", err)
	}

	rel1()
	rel3 := <-acquired
	rel2()
	rel3()
	waitFor(t, func() bool { return a.inFlight() == 0 && a.queued() == 0 })

	// Everything released: capacity is back.
	rel, err := a.acquire(ctx)
	if err != nil {
		t.Fatalf("post-release acquire: %v", err)
	}
	rel()
}

// TestAdmissionQueuedCancellation verifies a queued caller that gives up
// returns its queue token.
func TestAdmissionQueuedCancellation(t *testing.T) {
	a := newAdmission(1, 1)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		done <- err
	}()
	waitFor(t, func() bool { return a.queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled queued acquire: want context.Canceled, got %v", err)
	}
	waitFor(t, func() bool { return a.queued() == 0 })

	// The abandoned queue token must not leak capacity.
	rel()
	rel2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after cancellation: %v", err)
	}
	rel2()
}

// TestAdmissionConcurrentStorm hammers the controller from many
// goroutines (run under -race in CI) and checks conservation: every
// successful acquire releases, and the controller ends empty.
func TestAdmissionConcurrentStorm(t *testing.T) {
	a := newAdmission(4, 8)
	var wg sync.WaitGroup
	var served, shed sync.Map
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rel, err := a.acquire(context.Background())
				if errors.Is(err, ErrBusy) {
					shed.Store([2]int{g, i}, true)
					continue
				}
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if n := a.inFlight(); n > 4 {
					t.Errorf("inFlight = %d exceeded capacity 4", n)
				}
				served.Store([2]int{g, i}, true)
				rel()
			}
		}(g)
	}
	wg.Wait()
	if a.inFlight() != 0 || a.queued() != 0 {
		t.Errorf("controller not empty after storm: inFlight=%d queued=%d", a.inFlight(), a.queued())
	}
	n := 0
	served.Range(func(_, _ any) bool { n++; return true })
	if n == 0 {
		t.Error("storm served nothing")
	}
}

// waitFor polls cond briefly; admission transitions are goroutine
// handoffs, not instants.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
