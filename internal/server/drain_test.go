package server_test

import (
	"context"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"kumquat"
	"kumquat/internal/server"
	"kumquat/internal/server/client"
)

// TestReadyzDrainSplit: readiness flips to 503 when the drain starts
// while liveness stays 200 — the probe split load balancers need to
// route around a draining daemon without killing it.
func TestReadyzDrainSplit(t *testing.T) {
	srv, c := newTestServer(t, server.Config{SynthOptions: kumquat.Options{Seed: 1}})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz before drain: %v", err)
	}
	if err := c.Readyz(ctx); err != nil {
		t.Fatalf("readyz before drain: %v", err)
	}

	srv.SetDraining(true)
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz during drain must stay 200: %v", err)
	}
	if err := c.Readyz(ctx); err == nil {
		t.Fatal("readyz during drain must fail")
	}

	srv.SetDraining(false)
	if err := c.Readyz(ctx); err != nil {
		t.Fatalf("readyz after drain cleared: %v", err)
	}
}

// TestDrainCompletesActiveStream: a SIGTERM-style graceful shutdown lets
// an in-flight execute stream finish — the client reads the full output
// and the report trailer even though Shutdown was called mid-request.
func TestDrainCompletesActiveStream(t *testing.T) {
	srv := server.New(server.Config{SynthOptions: kumquat.Options{Seed: 1}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	var serving sync.WaitGroup
	serving.Add(1)
	go func() {
		defer serving.Done()
		hs.Serve(ln) //nolint:errcheck // closed by Shutdown below
	}()
	defer serving.Wait()
	defer hs.Close() //nolint:errcheck // idempotent backstop after Shutdown
	c := client.New("http://" + ln.Addr().String())

	// A body that takes a moment: big enough for real work, so Shutdown
	// overlaps the stream with high probability.
	input := strings.Repeat("pear\napple\nfig\n", 20000)
	type result struct {
		out string
		err error
	}
	resc := make(chan result, 1)
	go func() {
		var out strings.Builder
		_, err := c.Execute(context.Background(), "sort | uniq -c | sort -rn",
			client.ExecuteOptions{K: 4}, strings.NewReader(input), &out)
		resc <- result{out.String(), err}
	}()

	// Give the request a beat to be admitted, then drain.
	time.Sleep(50 * time.Millisecond)
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("graceful shutdown did not complete: %v", err)
	}

	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight execute severed by drain: %v", r.err)
	}
	sys := kumquat.New(kumquat.NewEnv())
	plan, err := sys.Parallelize("sort | uniq -c | sort -rn\n")
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Execute(context.Background(),
		kumquat.WithStdin(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if r.out != want.Output {
		t.Fatalf("drained stream output corrupted: %d bytes vs %d", len(r.out), len(want.Output))
	}
}
