package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kumquat"
	"kumquat/internal/server"
	"kumquat/internal/server/client"
)

// realServer boots a full kumquatd handler on an httptest server; the
// round-trip tests run against the genuine service plane, not a stub.
func realServer(t *testing.T) *client.Client {
	t.Helper()
	srv := server.New(server.Config{SynthOptions: kumquat.Options{Seed: 1}})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return client.New(hs.URL, client.WithHTTPClient(hs.Client()))
}

// TestSynthesizeRoundTrip: a cold synthesize over HTTP returns the
// combiner verdict, and the warm repeat is attributed to the memory tier.
func TestSynthesizeRoundTrip(t *testing.T) {
	c := realServer(t)
	ctx := context.Background()
	cold, err := c.Synthesize(ctx, "wc -l")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Combiner == "" || cold.Space.Total == 0 {
		t.Fatalf("cold synthesize verdict incomplete: %+v", cold)
	}
	if cold.Cached {
		t.Fatalf("first request reported cached (tier %s)", cold.CacheTier)
	}
	warm, err := c.Synthesize(ctx, "wc -l")
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.CacheTier != "memory" {
		t.Fatalf("warm request not a memory hit: %+v", warm)
	}
	if warm.Combiner != cold.Combiner {
		t.Fatalf("warm combiner %q != cold %q", warm.Combiner, cold.Combiner)
	}
}

// TestExecuteRoundTrip: a streamed execute through the daemon matches
// the in-process library byte-for-byte and decodes the report trailer.
func TestExecuteRoundTrip(t *testing.T) {
	c := realServer(t)
	input := strings.Repeat("pear\napple\npear\n", 40)
	script := "sort | uniq -c | sort -rn"

	var got strings.Builder
	rep, err := c.Execute(context.Background(), script,
		client.ExecuteOptions{Mode: "optimized", K: 4}, strings.NewReader(input), &got)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "optimized" || rep.Parallelism != 4 {
		t.Fatalf("report config echo wrong: %+v", rep)
	}
	if len(rep.Stages) != 3 {
		t.Fatalf("report stages = %d, want 3", len(rep.Stages))
	}

	sys := kumquat.New(kumquat.NewEnv())
	plan, err := sys.Parallelize(script + "\n")
	if err != nil {
		t.Fatal(err)
	}
	local, err := plan.Execute(context.Background(),
		kumquat.WithParallelism(4), kumquat.WithStdin(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != local.Output {
		t.Fatalf("daemon output diverges from library:\n%q\nvs\n%q", got.String(), local.Output)
	}
	if rep.BytesOut != int64(len(local.Output)) {
		t.Fatalf("report bytes_out = %d, want %d", rep.BytesOut, len(local.Output))
	}
}

// TestParallelizeRoundTrip: planning over HTTP with request-scoped files
// reports the same stage verdicts the local planner produces.
func TestParallelizeRoundTrip(t *testing.T) {
	c := realServer(t)
	script := "cat data.txt | sort | uniq -c | sort -rn\n"
	resp, err := c.Parallelize(context.Background(), script,
		map[string]string{"data.txt": "b\na\nb\n"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Total == 0 || resp.Parallelized == 0 || len(resp.Stages) != resp.Total {
		t.Fatalf("parallelize verdict incomplete: %+v", resp)
	}
}

// TestErrBusy: a 429 maps to ErrBusy on both the JSON and the streaming
// entry points.
func TestErrBusy(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"server at capacity"}`)) //nolint:errcheck
	}))
	defer hs.Close()
	c := client.New(hs.URL)

	if _, err := c.Synthesize(context.Background(), "wc -l"); !errors.Is(err, client.ErrBusy) {
		t.Fatalf("synthesize on 429 = %v, want client.ErrBusy", err)
	}
	var out strings.Builder
	if _, err := c.Execute(context.Background(), "sort", client.ExecuteOptions{}, nil, &out); !errors.Is(err, client.ErrBusy) {
		t.Fatalf("execute on 429 = %v, want client.ErrBusy", err)
	}
}

// trailerHandler streams a fixed body and sets the given trailers.
func trailerHandler(body string, trailers map[string]string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		names := make([]string, 0, len(trailers))
		for name := range trailers {
			names = append(names, name)
		}
		w.Header().Set("Trailer", strings.Join(names, ", "))
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(body)) //nolint:errcheck
		for name, value := range trailers {
			w.Header().Set(name, value)
		}
	})
}

// TestExecuteTrailerReportParsing: the run report riding the response
// trailer is decoded after the full body has streamed.
func TestExecuteTrailerReportParsing(t *testing.T) {
	report := `{"mode":"optimized","parallelism":8,"wall_ms":1.5,"bytes_in":6,"bytes_out":4,` +
		`"stages":[{"spec":"sort","parallel":true,"chunks":8}],"synth_cache":{}}`
	hs := httptest.NewServer(trailerHandler("body\n", map[string]string{server.ReportTrailer: report}))
	defer hs.Close()

	var out strings.Builder
	rep, err := client.New(hs.URL).Execute(context.Background(), "sort", client.ExecuteOptions{}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "body\n" {
		t.Fatalf("streamed body = %q", out.String())
	}
	if rep.Mode != "optimized" || rep.Parallelism != 8 || len(rep.Stages) != 1 || rep.Stages[0].Chunks != 8 {
		t.Fatalf("decoded report wrong: %+v", rep)
	}
}

// TestExecuteErrorTrailer: a mid-stream failure travels as the error
// trailer and surfaces as an error even though the status was 200.
func TestExecuteErrorTrailer(t *testing.T) {
	hs := httptest.NewServer(trailerHandler("partial", map[string]string{
		server.ErrorTrailer: "stage exploded mid-stream",
	}))
	defer hs.Close()

	var out strings.Builder
	_, err := client.New(hs.URL).Execute(context.Background(), "sort", client.ExecuteOptions{}, nil, &out)
	if err == nil || !strings.Contains(err.Error(), "stage exploded mid-stream") {
		t.Fatalf("error trailer not surfaced: %v", err)
	}
}

// TestExecuteMissingReportTrailer: a 200 with no trailer at all is a
// protocol violation, not a silent success.
func TestExecuteMissingReportTrailer(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck
	}))
	defer hs.Close()
	var out strings.Builder
	_, err := client.New(hs.URL).Execute(context.Background(), "sort", client.ExecuteOptions{}, nil, &out)
	if err == nil || !strings.Contains(err.Error(), "no run report trailer") {
		t.Fatalf("missing trailer not detected: %v", err)
	}
}

// TestMalformedJSON: garbage replies surface as decode errors on every
// path — 200 bodies, trailer reports, and non-200 error bodies (which
// fall back to the HTTP status).
func TestMalformedJSON(t *testing.T) {
	t.Run("synthesize body", func(t *testing.T) {
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("{not json")) //nolint:errcheck
		}))
		defer hs.Close()
		if _, err := client.New(hs.URL).Synthesize(context.Background(), "wc -l"); err == nil {
			t.Fatal("malformed synthesize body decoded without error")
		}
	})
	t.Run("report trailer", func(t *testing.T) {
		hs := httptest.NewServer(trailerHandler("x", map[string]string{server.ReportTrailer: "{broken"}))
		defer hs.Close()
		var out strings.Builder
		_, err := client.New(hs.URL).Execute(context.Background(), "sort", client.ExecuteOptions{}, nil, &out)
		if err == nil || !strings.Contains(err.Error(), "decoding run report") {
			t.Fatalf("malformed report trailer not detected: %v", err)
		}
	})
	t.Run("error body", func(t *testing.T) {
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte("<html>oops</html>")) //nolint:errcheck
		}))
		defer hs.Close()
		_, err := client.New(hs.URL).Synthesize(context.Background(), "wc -l")
		if err == nil || !strings.Contains(err.Error(), "500") {
			t.Fatalf("malformed error body did not fall back to status: %v", err)
		}
	})
}

// TestVersionHealthzMetrics: the three observability endpoints round-trip
// through the typed client against the real handler.
func TestVersionHealthzMetrics(t *testing.T) {
	c := realServer(t)
	ctx := context.Background()
	ver, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ver.MaxInFlight <= 0 || ver.QueueDepth < 0 {
		t.Fatalf("version limits missing: %+v", ver)
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "kumquatd_") {
		t.Fatalf("metrics exposition unexpectedly empty: %q", metrics)
	}
}
