// Package client is the typed Go client for kumquatd's HTTP API. It
// shares the server's wire types, streams execute input/output, and
// decodes the RunReport trailer, so callers get the same surface the
// in-process library offers — over a socket.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"kumquat/internal/server"
)

// ErrBusy is returned when the server sheds load (HTTP 429): the caller
// should back off and retry.
var ErrBusy = errors.New("client: server at capacity")

// Client talks to one kumquatd instance.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:9917").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Synthesize asks the server for one command's combiner verdict.
func (c *Client) Synthesize(ctx context.Context, spec string) (*server.SynthesizeResponse, error) {
	var resp server.SynthesizeResponse
	if err := c.postJSON(ctx, "/v1/synthesize", server.SynthesizeRequest{Spec: spec}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Parallelize asks the server to plan a script (with optional input
// files registered into the request's private environment).
func (c *Client) Parallelize(ctx context.Context, script string, files map[string]string) (*server.ParallelizeResponse, error) {
	var resp server.ParallelizeResponse
	req := server.ParallelizeRequest{Script: script, Files: files}
	if err := c.postJSON(ctx, "/v1/parallelize", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ExecuteOptions tunes one Execute call; the zero value uses the
// server's defaults.
type ExecuteOptions struct {
	// Mode is the execution configuration name ("optimized",
	// "unoptimized", "serial", "pipelined"); "" = server default.
	Mode string
	// K is the data-parallelism degree; 0 = server default.
	K int
	// CombineWorkers bounds the combine plane; 0 = server default.
	CombineWorkers int
	// Fuse selects the optimized-mode executor: "" = server default (on),
	// "on" the graph-walking fused program, "off" the stage-at-a-time
	// ablation.
	Fuse string
}

// Execute runs a script on the server: stdin streams up as the request
// body (the server binds it to the script's input source), the output
// stream is copied to out as it arrives, and the run report decoded
// from the response trailer is returned. A nil stdin sends no input.
func (c *Client) Execute(ctx context.Context, script string, opts ExecuteOptions, stdin io.Reader, out io.Writer) (*server.ExecuteReport, error) {
	q := url.Values{"script": {script}}
	if opts.Mode != "" {
		q.Set("mode", opts.Mode)
	}
	if opts.K > 0 {
		q.Set("k", strconv.Itoa(opts.K))
	}
	if opts.CombineWorkers > 0 {
		q.Set("combine-workers", strconv.Itoa(opts.CombineWorkers))
	}
	if opts.Fuse != "" {
		q.Set("fuse", opts.Fuse)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/execute?"+q.Encode(), stdin)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	if _, err := io.Copy(out, resp.Body); err != nil {
		return nil, fmt.Errorf("client: streaming output: %w", err)
	}
	// Trailers are populated only after the body has been fully read.
	if msg := resp.Trailer.Get(server.ErrorTrailer); msg != "" {
		return nil, fmt.Errorf("client: execute failed: %s", msg)
	}
	raw := resp.Trailer.Get(server.ReportTrailer)
	if raw == "" {
		return nil, errors.New("client: response carried no run report trailer")
	}
	var report server.ExecuteReport
	if err := json.Unmarshal([]byte(raw), &report); err != nil {
		return nil, fmt.Errorf("client: decoding run report: %w", err)
	}
	return &report, nil
}

// Version fetches the server's build info and service limits.
func (c *Client) Version(ctx context.Context) (*server.VersionResponse, error) {
	var resp server.VersionResponse
	if err := c.getJSON(ctx, "/v1/version", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz probes liveness.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: healthz: %s", resp.Status)
	}
	return nil
}

// Metrics fetches the raw Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: metrics: %s", resp.Status)
	}
	return string(data), nil
}

// postJSON posts a JSON body and decodes a JSON reply.
func (c *Client) postJSON(ctx context.Context, path string, body, into any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, into)
}

// getJSON fetches a JSON reply.
func (c *Client) getJSON(ctx context.Context, path string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, into)
}

// do executes a request and decodes the JSON response or error body.
func (c *Client) do(req *http.Request, into any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// decodeError converts a non-200 response to a Go error, mapping 429 to
// ErrBusy.
func decodeError(resp *http.Response) error {
	var e server.ErrorResponse
	msg := resp.Status
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e) == nil && e.Error != "" {
		msg = e.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return fmt.Errorf("%w: %s", ErrBusy, msg)
	}
	return fmt.Errorf("client: %s: %s", resp.Request.URL.Path, msg)
}
