// Package client is the typed Go client for kumquatd's HTTP API. It
// shares the server's wire types (internal/server/api), streams execute
// input/output, and decodes the RunReport trailer, so callers get the
// same surface the in-process library offers — over a socket.
//
// The client is also the cluster plane's transport: with WithRetry it
// absorbs transient failures (429 load shedding, connection errors, bad
// gateways) behind exponential backoff with full jitter, honoring
// Retry-After, so coordinators and CLI callers only see errors that
// survived the policy.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"kumquat/internal/obs"
	"kumquat/internal/server/api"
)

// ErrBusy is returned when the server sheds load (HTTP 429) and the
// retry policy (if any) is exhausted: the caller should back off and
// retry.
var ErrBusy = errors.New("client: server at capacity")

// BusyError is the concrete 429 error: it unwraps to ErrBusy and carries
// the server's Retry-After hint so callers layering their own retry
// policy (the cluster coordinator) can honor it.
type BusyError struct {
	// RetryAfter is the server's Retry-After hint (zero when absent).
	RetryAfter time.Duration
	// Msg is the server's error body.
	Msg string
}

// Error renders the busy verdict with the server's message.
func (e *BusyError) Error() string { return fmt.Sprintf("%v: %s", ErrBusy, e.Msg) }

// Unwrap makes errors.Is(err, ErrBusy) hold for BusyError values.
func (e *BusyError) Unwrap() error { return ErrBusy }

// RetryPolicy tunes the client's transparent retries: up to Max retries
// (Max+1 attempts total) with exponential backoff and full jitter —
// each delay is uniform in [0, min(Cap, Base·2^attempt)], floored at the
// server's Retry-After hint on 429s.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; 0 disables
	// retrying.
	Max int
	// Base is the first backoff ceiling; Cap bounds the exponential
	// growth.
	Base, Cap time.Duration
}

// Client talks to one kumquatd instance.
type Client struct {
	base   string
	hc     *http.Client
	retry  RetryPolicy
	notify func(err error, attempt int, delay time.Duration)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry enables transparent retries on transient failures: HTTP 429
// (honoring Retry-After), 502/503/504, and transport errors (connection
// refused or reset, unexpected EOF before the response status). Requests
// are only retried when they are safely repeatable — the JSON endpoints
// always are (their bodies are rebuilt per attempt; the API is
// idempotent by construction), and Execute retries only while no output
// byte has been streamed and its stdin can be rewound. ErrBusy surfaces
// only after the retries are exhausted.
func WithRetry(max int, base, cap time.Duration) Option {
	return func(c *Client) { c.retry = RetryPolicy{Max: max, Base: base, Cap: cap} }
}

// WithRetryNotify registers a callback invoked before every retry sleep
// with the error being retried, the attempt number (1 = first retry) and
// the chosen delay. The cluster coordinator uses it to count retries in
// run reports and /metrics.
func WithRetryNotify(f func(err error, attempt int, delay time.Duration)) Option {
	return func(c *Client) { c.notify = f }
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:9917").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Synthesize asks the server for one command's combiner verdict.
func (c *Client) Synthesize(ctx context.Context, spec string) (*api.SynthesizeResponse, error) {
	var resp api.SynthesizeResponse
	if err := c.postJSON(ctx, "/v1/synthesize", api.SynthesizeRequest{Spec: spec}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Parallelize asks the server to plan a script (with optional input
// files registered into the request's private environment).
func (c *Client) Parallelize(ctx context.Context, script string, files map[string]string) (*api.ParallelizeResponse, error) {
	var resp api.ParallelizeResponse
	req := api.ParallelizeRequest{Script: script, Files: files}
	if err := c.postJSON(ctx, "/v1/parallelize", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ExecuteOptions tunes one Execute call; the zero value uses the
// server's defaults.
type ExecuteOptions struct {
	// Mode is the execution configuration name ("optimized",
	// "unoptimized", "serial", "pipelined"); "" = server default.
	Mode string
	// K is the data-parallelism degree; 0 = server default.
	K int
	// CombineWorkers bounds the combine plane; 0 = server default.
	CombineWorkers int
	// Fuse selects the optimized-mode executor: "" = server default (on),
	// "on" the graph-walking fused program, "off" the stage-at-a-time
	// ablation.
	Fuse string
	// Cluster selects coordinator dispatch on a cluster-configured
	// server: "" = server default (on when workers are configured),
	// "off" forces local execution, "on" requires cluster mode.
	Cluster string
	// Trace asks the server to record a trace of the request ("on");
	// "" = off. The report's Trace summary then carries the trace id to
	// fetch via TraceData.
	Trace string
}

// Execute runs a script on the server: stdin streams up as the request
// body (the server binds it to the script's input source), the output
// stream is copied to out as it arrives, and the run report decoded
// from the response trailer is returned. A nil stdin sends no input.
//
// With a retry policy, attempts that fail before the first output byte
// (connection errors, 429/5xx statuses) are retried when stdin is nil or
// an io.Seeker (it is rewound per attempt); a failure after streaming
// began is returned as-is — the caller owns mid-stream recovery.
func (c *Client) Execute(ctx context.Context, script string, opts ExecuteOptions, stdin io.Reader, out io.Writer) (*api.ExecuteReport, error) {
	q := url.Values{"script": {script}}
	if opts.Mode != "" {
		q.Set("mode", opts.Mode)
	}
	if opts.K > 0 {
		q.Set("k", strconv.Itoa(opts.K))
	}
	if opts.CombineWorkers > 0 {
		q.Set("combine-workers", strconv.Itoa(opts.CombineWorkers))
	}
	if opts.Fuse != "" {
		q.Set("fuse", opts.Fuse)
	}
	if opts.Cluster != "" {
		q.Set("cluster", opts.Cluster)
	}
	if opts.Trace != "" {
		q.Set("trace", opts.Trace)
	}
	target := c.base + "/v1/execute?" + q.Encode()

	seeker, _ := stdin.(io.Seeker)
	rewindable := stdin == nil || seeker != nil
	cw := &countingWriter{w: out}
	var report *api.ExecuteReport
	err := c.attempt(ctx, func() (retryable bool, err error) {
		if cw.n > 0 {
			// Output already streamed: a retry would duplicate bytes.
			return false, errors.New("client: internal: attempt after partial stream")
		}
		if seeker != nil {
			if _, err := seeker.Seek(0, io.SeekStart); err != nil {
				return false, fmt.Errorf("client: rewinding stdin for retry: %w", err)
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, stdin)
		if err != nil {
			return false, err
		}
		// Propagate trace context: a span in ctx (a coordinator's shard
		// dispatch) rides the W3C traceparent header, and the worker's
		// spans come back in the trace trailer for stitching.
		sp := obs.FromContext(ctx)
		if sp != nil {
			req.Header.Set("traceparent", sp.SpanContext().Traceparent())
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return rewindable, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return rewindable && retryableStatus(resp.StatusCode), decodeError(resp)
		}
		if _, err := io.Copy(cw, resp.Body); err != nil {
			// The stream broke mid-body; bytes may have reached out, so
			// never retry transparently.
			return false, fmt.Errorf("client: streaming output: %w", err)
		}
		// Trailers are populated only after the body has been fully read.
		if sp != nil {
			if raw := resp.Trailer.Get(api.TraceTrailer); raw != "" {
				var recs []obs.SpanRecord
				if json.Unmarshal([]byte(raw), &recs) == nil {
					sp.Tracer().Merge(recs)
				}
			}
		}
		if msg := resp.Trailer.Get(api.ErrorTrailer); msg != "" {
			return false, fmt.Errorf("client: execute failed: %s", msg)
		}
		raw := resp.Trailer.Get(api.ReportTrailer)
		if raw == "" {
			// The trailer was lost (proxy dropped it, connection closed at
			// the chunk boundary). The output cannot be trusted complete;
			// retry only while nothing was streamed to the caller.
			return rewindable && cw.n == 0, errors.New("client: response carried no run report trailer")
		}
		var rep api.ExecuteReport
		if err := json.Unmarshal([]byte(raw), &rep); err != nil {
			return false, fmt.Errorf("client: decoding run report: %w", err)
		}
		report = &rep
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return report, nil
}

// countingWriter tracks whether any output byte reached the caller's
// sink, the point past which Execute must not retry.
type countingWriter struct {
	w io.Writer
	n int64
}

// Write forwards to the wrapped sink and counts.
func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// TraceData fetches one recorded trace from the server's ring by id (32
// hex digits, as carried in the execute report's Trace summary). The
// server serves traces until the ring evicts them.
func (c *Client) TraceData(ctx context.Context, id string) (*obs.TraceData, error) {
	var td obs.TraceData
	if err := c.getJSON(ctx, "/v1/traces/"+url.PathEscape(id)+"?format=raw", &td); err != nil {
		return nil, err
	}
	return &td, nil
}

// Version fetches the server's build info and service limits.
func (c *Client) Version(ctx context.Context) (*api.VersionResponse, error) {
	var resp api.VersionResponse
	if err := c.getJSON(ctx, "/v1/version", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz probes liveness: a draining server is still alive, so this
// stays 200 until the process exits.
func (c *Client) Healthz(ctx context.Context) error {
	return c.probe(ctx, "/healthz")
}

// Readyz probes readiness: a draining (or otherwise not-admitting)
// server answers 503 here while Healthz still reports 200, so load
// balancers rotate replicas without killing in-flight streams.
func (c *Client) Readyz(ctx context.Context) error {
	return c.probe(ctx, "/readyz")
}

// probe issues one GET health probe and maps non-200 to an error.
func (c *Client) probe(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: %s: %s", path, resp.Status)
	}
	return nil
}

// Metrics fetches the raw Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: metrics: %s", resp.Status)
	}
	return string(data), nil
}

// postJSON posts a JSON body and decodes a JSON reply.
func (c *Client) postJSON(ctx context.Context, path string, body, into any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.attempt(ctx, func() (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
		if err != nil {
			return false, err
		}
		req.Header.Set("Content-Type", "application/json")
		return c.doJSON(req, into)
	})
}

// getJSON fetches a JSON reply.
func (c *Client) getJSON(ctx context.Context, path string, into any) error {
	return c.attempt(ctx, func() (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return false, err
		}
		return c.doJSON(req, into)
	})
}

// doJSON executes one request attempt and decodes the JSON response or
// error body, classifying the failure's retryability.
func (c *Client) doJSON(req *http.Request, into any) (retryable bool, err error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport-level failure: nothing of the response was consumed,
		// and the API is idempotent, so the attempt is safely repeatable.
		return true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return retryableStatus(resp.StatusCode), decodeError(resp)
	}
	return false, json.NewDecoder(resp.Body).Decode(into)
}

// attempt runs op under the client's retry policy: transient failures
// sleep an exponentially-backed-off, fully-jittered delay (floored at a
// 429's Retry-After hint) and re-run, up to Max retries.
func (c *Client) attempt(ctx context.Context, op func() (retryable bool, err error)) error {
	for try := 0; ; try++ {
		retryable, err := op()
		if err == nil {
			return nil
		}
		if !retryable || try >= c.retry.Max || ctx.Err() != nil {
			return err
		}
		delay := c.backoff(try, err)
		if c.notify != nil {
			c.notify(err, try+1, delay)
		}
		if !sleep(ctx, delay) {
			return err
		}
	}
}

// backoff computes the delay before retry number try+1: full jitter over
// an exponentially growing ceiling, floored at the server's Retry-After
// hint when the error carries one.
func (c *Client) backoff(try int, err error) time.Duration {
	ceil := c.retry.Base << uint(try)
	if c.retry.Cap > 0 && ceil > c.retry.Cap {
		ceil = c.retry.Cap
	}
	var delay time.Duration
	if ceil > 0 {
		delay = time.Duration(rand.Int63n(int64(ceil) + 1))
	}
	var busy *BusyError
	if errors.As(err, &busy) && busy.RetryAfter > delay {
		delay = busy.RetryAfter
	}
	return delay
}

// sleep waits for d or until ctx is done, reporting whether the full
// delay elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// retryableStatus reports whether a non-200 status is worth retrying:
// load shedding and gateway-transient failures are; client errors are
// deterministic and are not.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// decodeError converts a non-200 response to a Go error, mapping 429 to
// a BusyError (which unwraps to ErrBusy) with its Retry-After hint.
func decodeError(resp *http.Response) error {
	var e api.ErrorResponse
	msg := resp.Status
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e) == nil && e.Error != "" {
		msg = e.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return &BusyError{RetryAfter: retryAfter(resp), Msg: msg}
	}
	return fmt.Errorf("client: %s: %s", resp.Request.URL.Path, msg)
}

// retryAfter parses a delay-seconds Retry-After header (zero when absent
// or malformed; HTTP-date forms are ignored — kumquatd emits seconds).
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
