package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kumquat/internal/server/api"
	"kumquat/internal/server/client"
)

// flaky returns a handler that deals the scripted responses in order,
// then serves the final one forever, counting attempts.
func flaky(t *testing.T, attempts *atomic.Int64, script ...func(w http.ResponseWriter, r *http.Request)) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(attempts.Add(1)) - 1
		if n >= len(script) {
			n = len(script) - 1
		}
		script[n](w, r)
	})
}

func shed(retryAfter string) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "at capacity"}) //nolint:errcheck
	}
}

func okSynth(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(api.SynthesizeResponse{Spec: "sort", Combiner: "concat"}) //nolint:errcheck
}

// TestWithRetrySurvivesFlakyServer: two 429s then a 200 — the retrying
// client succeeds, the caller never sees ErrBusy, and the notify hook
// observed both retries.
func TestWithRetrySurvivesFlakyServer(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky(t, &attempts, shed("0"), shed("0"), okSynth))
	defer hs.Close()

	var notified []int
	c := client.New(hs.URL,
		client.WithRetry(3, time.Millisecond, 5*time.Millisecond),
		client.WithRetryNotify(func(err error, attempt int, delay time.Duration) {
			if !errors.Is(err, client.ErrBusy) {
				t.Errorf("retry notify got %v, want ErrBusy chain", err)
			}
			notified = append(notified, attempt)
		}))
	resp, err := c.Synthesize(context.Background(), "sort")
	if err != nil {
		t.Fatalf("flaky server defeated the retry policy: %v", err)
	}
	if resp.Combiner != "concat" {
		t.Fatalf("wrong payload after retries: %+v", resp)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if len(notified) != 2 || notified[0] != 1 || notified[1] != 2 {
		t.Fatalf("notify attempts = %v, want [1 2]", notified)
	}
}

// TestErrBusyOnlyAfterExhaustion: a server that never stops shedding
// exhausts the policy; the surfaced error still unwraps to ErrBusy and
// the attempt count is Max+1.
func TestErrBusyOnlyAfterExhaustion(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky(t, &attempts, shed("0")))
	defer hs.Close()

	c := client.New(hs.URL, client.WithRetry(2, time.Millisecond, 2*time.Millisecond))
	_, err := c.Synthesize(context.Background(), "sort")
	if !errors.Is(err, client.ErrBusy) {
		t.Fatalf("exhausted retries surfaced %v, want ErrBusy", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want Max+1 = 3", got)
	}
}

// TestNoRetryWithoutPolicy: the default client surfaces the first 429
// without a second attempt — retrying is strictly opt-in.
func TestNoRetryWithoutPolicy(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky(t, &attempts, shed("0"), okSynth))
	defer hs.Close()

	_, err := client.New(hs.URL).Synthesize(context.Background(), "sort")
	if !errors.Is(err, client.ErrBusy) {
		t.Fatalf("got %v, want immediate ErrBusy", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("no-policy client made %d attempts, want 1", got)
	}
}

// TestBackoffHonorsRetryAfter: a Retry-After hint far above the jitter
// ceiling floors the chosen delay. The notify hook observes the delay and
// cancels the context so the test never actually sleeps it.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky(t, &attempts, shed("7")))
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen time.Duration
	c := client.New(hs.URL,
		client.WithRetry(3, time.Millisecond, 5*time.Millisecond),
		client.WithRetryNotify(func(err error, attempt int, delay time.Duration) {
			seen = delay
			cancel() // abort the sleep: the delay value is what's under test
		}))
	if _, err := c.Synthesize(ctx, "sort"); err == nil {
		t.Fatal("cancelled retry succeeded")
	}
	if seen < 7*time.Second {
		t.Fatalf("delay = %v, want ≥ 7s Retry-After floor", seen)
	}
}

// TestExecuteRetryRewindsStdin: Execute's first attempt is shed before
// any output; the retry rewinds the seekable stdin so the server sees the
// full body again.
func TestExecuteRetryRewindsStdin(t *testing.T) {
	var attempts atomic.Int64
	const input = "b\na\nc\n"
	hs := httptest.NewServer(flaky(t, &attempts,
		func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body) //nolint:errcheck // partially consume, then shed
			shed("0")(w, r)
		},
		func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			if string(body) != input {
				t.Errorf("retried attempt saw stdin %q, want %q", body, input)
			}
			w.Header().Set("Trailer", api.ReportTrailer)
			io.WriteString(w, "a\nb\nc\n") //nolint:errcheck
			w.Header().Set(api.ReportTrailer, `{"mode":"serial"}`)
		}))
	defer hs.Close()

	c := client.New(hs.URL, client.WithRetry(2, time.Millisecond, 2*time.Millisecond))
	var out strings.Builder
	rep, err := c.Execute(context.Background(), "sort", client.ExecuteOptions{},
		strings.NewReader(input), &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "a\nb\nc\n" {
		t.Fatalf("output = %q", out.String())
	}
	if rep.Mode != "serial" {
		t.Fatalf("report = %+v", rep)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

// TestExecuteNoRetryAfterFirstByte: once output bytes have streamed to
// the caller's sink, a mid-body connection loss must surface — a blind
// retry would duplicate output.
func TestExecuteNoRetryAfterFirstByte(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky(t, &attempts, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Trailer", api.ReportTrailer)
		io.WriteString(w, "partial out") //nolint:errcheck
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // sever the connection mid-stream
	}))
	defer hs.Close()

	c := client.New(hs.URL, client.WithRetry(3, time.Millisecond, 2*time.Millisecond))
	var out strings.Builder
	_, err := c.Execute(context.Background(), "sort", client.ExecuteOptions{},
		strings.NewReader("x\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "streaming output") {
		t.Fatalf("mid-stream loss surfaced as %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("client retried after streaming bytes: %d attempts", got)
	}
	if out.String() != "partial out" {
		t.Fatalf("sink saw %q", out.String())
	}
}

// TestExecuteRetriesLostTrailerBeforeBytes: a response whose body is
// empty and whose report trailer was dropped (proxy ate it) is retried —
// nothing reached the sink, so the attempt is safely repeatable.
func TestExecuteRetriesLostTrailerBeforeBytes(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky(t, &attempts,
		func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK) // no body, no trailer: lost report
		},
		func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Trailer", api.ReportTrailer)
			w.WriteHeader(http.StatusOK)
			w.Header().Set(api.ReportTrailer, `{"mode":"serial"}`)
		}))
	defer hs.Close()

	c := client.New(hs.URL, client.WithRetry(2, time.Millisecond, 2*time.Millisecond))
	var out strings.Builder
	rep, err := c.Execute(context.Background(), "true", client.ExecuteOptions{},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatalf("lost trailer with empty body must be retried: %v", err)
	}
	if rep.Mode != "serial" {
		t.Fatalf("report after retry = %+v", rep)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

// TestExecuteLostTrailerAfterBytesFails: the trailer is gone but output
// already streamed — the client must fail loudly rather than retry or
// fabricate a report.
func TestExecuteLostTrailerAfterBytesFails(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky(t, &attempts, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "streamed output\n") //nolint:errcheck // no trailer follows
	}))
	defer hs.Close()

	c := client.New(hs.URL, client.WithRetry(3, time.Millisecond, 2*time.Millisecond))
	var out strings.Builder
	_, err := c.Execute(context.Background(), "sort", client.ExecuteOptions{},
		strings.NewReader("x\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "no run report trailer") {
		t.Fatalf("lost trailer after bytes surfaced as %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("client retried after streaming bytes: %d attempts", got)
	}
}

// TestRetryTransportError: a connection-refused transport failure on an
// idempotent JSON endpoint is retried against the (now listening) server.
func TestRetryTransportError(t *testing.T) {
	// A just-closed listener yields a deterministic connection-refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	addr := dead.URL
	dead.Close()

	var retries int
	c := client.New(addr,
		client.WithRetry(2, time.Millisecond, 2*time.Millisecond),
		client.WithRetryNotify(func(err error, attempt int, delay time.Duration) { retries++ }))
	_, err := c.Synthesize(context.Background(), "sort")
	if err == nil {
		t.Fatal("dead server answered")
	}
	if errors.Is(err, client.ErrBusy) {
		t.Fatalf("transport error mapped to ErrBusy: %v", err)
	}
	if retries != 2 {
		t.Fatalf("transport error retried %d times, want 2", retries)
	}
}

// TestExecuteTruncatedBodyMidStream: the connection dies after a partial
// chunk — the client reports a streaming error carrying the transport
// cause, and whatever bytes arrived stay in the sink (the caller decides
// what to do with a torn stream).
func TestExecuteTruncatedBodyMidStream(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Trailer", api.ReportTrailer)
		fmt.Fprint(w, strings.Repeat("x", 1024)) //nolint:errcheck
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}))
	defer hs.Close()

	var out strings.Builder
	_, err := client.New(hs.URL).Execute(context.Background(), "sort",
		client.ExecuteOptions{}, strings.NewReader("x\n"), &out)
	if err == nil {
		t.Fatal("truncated stream decoded cleanly")
	}
	if !strings.Contains(err.Error(), "streaming output") {
		t.Fatalf("truncation surfaced as %v", err)
	}
	if out.Len() == 0 {
		t.Fatal("partial bytes discarded instead of delivered")
	}
}
