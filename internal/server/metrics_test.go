package server

import (
	"strings"
	"testing"
	"time"
)

// TestMetricsExposition pins the Prometheus text rendering: counter
// labels, cumulative histogram buckets, sums and appended gauges.
func TestMetricsExposition(t *testing.T) {
	m := newMetrics()
	m.record("synthesize", 200, 150*time.Microsecond) // ≤ 0.00025 bucket
	m.record("synthesize", 200, 30*time.Millisecond)  // ≤ 0.05 bucket
	m.record("synthesize", 400, 50*time.Microsecond)
	m.record("execute", 200, 2*time.Second)

	m.observeShard(40 * time.Millisecond)
	m.observeShard(3 * time.Second)
	m.observeBackoff(80 * time.Millisecond)

	var b strings.Builder
	m.write(&b, []gauge{{"kumquatd_in_flight", "In-flight requests.", 3}}, true)
	out := b.String()

	for _, want := range []string{
		`kumquatd_requests_total{endpoint="execute",code="200"} 1`,
		`kumquatd_requests_total{endpoint="synthesize",code="200"} 2`,
		`kumquatd_requests_total{endpoint="synthesize",code="400"} 1`,
		// 150 µs and 50 µs land at or below the 0.00025 bound; the 30 ms
		// observation joins at 0.05; +Inf sees all three.
		`kumquatd_request_seconds_bucket{endpoint="synthesize",le="0.00025"} 2`,
		`kumquatd_request_seconds_bucket{endpoint="synthesize",le="0.05"} 3`,
		`kumquatd_request_seconds_bucket{endpoint="synthesize",le="+Inf"} 3`,
		`kumquatd_request_seconds_count{endpoint="synthesize"} 3`,
		`kumquatd_request_seconds_bucket{endpoint="execute",le="2.5"} 1`,
		`kumquatd_request_seconds_count{endpoint="execute"} 1`,
		"# TYPE kumquatd_requests_total counter",
		"# TYPE kumquatd_request_seconds histogram",
		"# TYPE kumquatd_in_flight gauge",
		"kumquatd_in_flight 3",
		"# TYPE kumquatd_cluster_shard_seconds histogram",
		`kumquatd_cluster_shard_seconds_bucket{le="0.05"} 1`,
		`kumquatd_cluster_shard_seconds_bucket{le="+Inf"} 2`,
		"kumquatd_cluster_shard_seconds_count 2",
		"# TYPE kumquatd_cluster_retry_backoff_seconds histogram",
		`kumquatd_cluster_retry_backoff_seconds_bucket{le="0.1"} 1`,
		"kumquatd_cluster_retry_backoff_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// A worker (non-coordinator) exposition omits the cluster histograms.
	var wb strings.Builder
	m.write(&wb, nil, false)
	if strings.Contains(wb.String(), "kumquatd_cluster_shard_seconds") {
		t.Error("non-cluster exposition leaked shard histogram")
	}
}

// TestHistogramBucketEdges checks boundary placement: observations equal
// to a bound land in that bound's bucket (le is inclusive).
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram()
	h.observe(0.0001) // exactly the first bound
	if h.counts[0] != 1 {
		t.Errorf("observation at first bound landed in counts[%v], want counts[0]", h.counts)
	}
	h.observe(1e9) // beyond every bound → +Inf
	if h.counts[len(h.counts)-1] != 1 {
		t.Errorf("huge observation missed the +Inf bucket: %v", h.counts)
	}
	if h.total != 2 {
		t.Errorf("total = %d, want 2", h.total)
	}
}
