package server

import (
	"encoding/json"
	"io"
	"net/http"
	"time"

	"kumquat"
	"kumquat/internal/cluster"
	"kumquat/internal/obs"
	"kumquat/internal/textio"
)

// executeCluster serves an execute request through the cluster
// coordinator: each pipeline's corpus is materialized, parallel stages
// shard across the worker daemons (with retry, speculation and local
// fallback), and the combined output streams back with the usual report
// trailer — extended with the run's ClusterReport. Semantics mirror the
// in-process unoptimized execution: stage boundaries are barriers, `>
// FILE` redirects register into the request environment, and standard
// input feeds the first stdin-reading pipeline.
func (s *Server) executeCluster(w http.ResponseWriter, r *http.Request, env *kumquat.Env, plan *kumquat.Plan, stdin io.Reader, combineWorkers int, sink io.Writer, span *obs.Span, remoteTrace bool) {
	// Cluster dispatch shards a materialized corpus, so drain stdin once
	// up front (the status line is not committed yet: read failures can
	// still answer 400 instead of hiding in a trailer).
	stdinData := ""
	if stdin != nil {
		b, err := io.ReadAll(stdin)
		if err != nil {
			s.endTrace(w, span, remoteTrace, nil)
			writeError(w, http.StatusBadRequest, "reading request body: %v", err)
			return
		}
		// Hold the drained body as a zero-copy view: sharding slices it,
		// so a multi-GB corpus is never duplicated per request.
		stdinData = textio.View(b)
	}

	rep := ExecuteReport{
		Mode:        "cluster",
		Parallelism: s.clu.Shards(),
		SynthCache:  plan.SynthCache(),
	}
	plans := plan.PipelinePlans()
	inputs := plan.Inputs()
	outs := plan.OutputFiles()
	runStats := &cluster.Stats{}
	start := time.Now()
	for i, pl := range plans {
		corpus := ""
		var ingest textio.LineSeq
		haveIngest := false
		if inputs[i] != "" {
			seq, err := env.ReadSeq(inputs[i])
			if err != nil {
				s.endTrace(w, span, remoteTrace, nil)
				w.Header().Set(ErrorTrailer, "input "+inputs[i]+": "+err.Error())
				return
			}
			corpus, ingest, haveIngest = seq.Str(), seq, true
		} else {
			// Standard input feeds the first stdin-reading pipeline; later
			// ones see it already drained, as in the local executor.
			corpus, stdinData = stdinData, ""
		}
		var out string
		var stages []cluster.StageStat
		var st *cluster.Stats
		var err error
		if haveIngest {
			// File inputs dispatch through the environment's shared line
			// index — shard boundaries come from the once-computed ingest
			// LineSeq instead of a fresh corpus walk.
			out, stages, st, err = s.clu.ExecutePlanSeq(r.Context(), pl, ingest, combineWorkers)
		} else {
			out, stages, st, err = s.clu.ExecutePlan(r.Context(), pl, corpus, combineWorkers)
		}
		runStats.AddAll(st)
		if err != nil {
			s.endTrace(w, span, remoteTrace, nil)
			w.Header().Set(ErrorTrailer, err.Error())
			return
		}
		for j, cs := range stages {
			rep.Stages = append(rep.Stages, ExecuteStage{
				Spec:          cs.Spec,
				Parallel:      cs.Remote,
				Chunks:        cs.Shards,
				WallMS:        ms(cs.Wall),
				CombineWallMS: ms(cs.CombineWall),
				BytesIn:       cs.BytesIn,
				BytesOut:      cs.BytesOut,
			})
			// Redirected pipelines count toward neither stream total,
			// matching the in-process report semantics.
			if j == 0 && outs[i] == "" {
				rep.BytesIn += cs.BytesIn
			}
		}
		if outs[i] != "" {
			env.Register(outs[i], out)
			continue
		}
		n, werr := io.WriteString(sink, out)
		rep.BytesOut += int64(n)
		if werr != nil {
			span.End() // keep the trace complete even though the client is gone
			return
		}
	}
	rep.WallMS = ms(time.Since(start))
	s.endTrace(w, span, remoteTrace, &rep)
	snap := runStats.Snapshot()
	rep.Cluster = &ClusterReport{
		Workers:         len(s.clu.Workers()),
		Healthy:         s.clu.Healthy(),
		Shards:          snap.Shards,
		RemoteRuns:      snap.RemoteRuns,
		LocalRuns:       snap.LocalRuns,
		Retries:         snap.Retries,
		Speculations:    snap.Speculations,
		SpeculationWins: snap.SpeculationWins,
		Ejections:       snap.Ejections,
		Readmissions:    snap.Readmissions,
	}
	report, merr := json.Marshal(rep)
	if merr != nil {
		w.Header().Set(ErrorTrailer, merr.Error())
		return
	}
	w.Header().Set(ReportTrailer, string(report))
}
