package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrBusy is returned by admission.acquire when the server is saturated:
// MaxInFlight requests are running and QueueDepth more are already
// waiting. Handlers translate it to 429 Too Many Requests.
var ErrBusy = errors.New("server: at capacity")

// admission is the bounded admission controller gating every /v1 work
// endpoint: at most maxInFlight requests hold an execution slot, at most
// queueDepth more wait for one, and everything beyond that is rejected
// immediately — load sheds at the door instead of queueing unboundedly.
type admission struct {
	slots chan struct{} // buffered; a held token = one in-flight request
	// pending counts requests admitted or waiting; the gate against
	// unbounded queueing.
	pending atomic.Int64
	limit   int64 // maxInFlight + queueDepth
}

// newAdmission builds a controller for maxInFlight concurrent requests
// and a waiting queue of queueDepth.
func newAdmission(maxInFlight, queueDepth int) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots: make(chan struct{}, maxInFlight),
		limit: int64(maxInFlight + queueDepth),
	}
}

// acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. It returns ErrBusy when the queue is full, ctx.Err()
// when the client gives up while queued, and otherwise a release
// function the caller must invoke exactly once when the work finishes.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a.pending.Add(1) > a.limit {
		a.pending.Add(-1)
		return nil, ErrBusy
	}
	select {
	case a.slots <- struct{}{}:
		return func() {
			<-a.slots
			a.pending.Add(-1)
		}, nil
	case <-ctx.Done():
		a.pending.Add(-1)
		return nil, ctx.Err()
	}
}

// inFlight reports how many requests currently hold a slot.
func (a *admission) inFlight() int { return len(a.slots) }

// queued reports how many admitted requests are waiting for a slot.
func (a *admission) queued() int {
	n := int(a.pending.Load()) - len(a.slots)
	if n < 0 {
		n = 0
	}
	return n
}
