package server_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kumquat"
	"kumquat/internal/cluster"
	"kumquat/internal/server"
	"kumquat/internal/server/client"
)

// bootCluster starts n loopback worker daemons and a coordinator
// dispatching to them, returning the coordinator's client and the worker
// servers (for mid-test kills).
func bootCluster(t *testing.T, n int) (*client.Client, []*httptest.Server) {
	t.Helper()
	var workers []*httptest.Server
	var urls []string
	for i := 0; i < n; i++ {
		wsrv := server.New(server.Config{SynthOptions: kumquat.Options{Seed: 1}})
		ws := httptest.NewServer(wsrv.Handler())
		t.Cleanup(ws.Close)
		workers = append(workers, ws)
		// Bare host:port, the -workers flag's natural spelling — the
		// runner must default the http:// scheme.
		urls = append(urls, strings.TrimPrefix(ws.URL, "http://"))
	}
	csrv := server.New(server.Config{
		SynthOptions: kumquat.Options{Seed: 1},
		Cluster: cluster.Config{
			Workers:        urls,
			Shards:         n,
			RetryMax:       2,
			RetryBase:      time.Millisecond,
			RetryCap:       10 * time.Millisecond,
			SpeculateAfter: -1,
			EjectAfter:     2,
			EjectCooldown:  time.Minute,
		},
	})
	cs := httptest.NewServer(csrv.Handler())
	t.Cleanup(cs.Close)
	return client.New(cs.URL), workers
}

// localOracle computes the serial in-process output for a script+input.
func localOracle(t *testing.T, script, input string) string {
	t.Helper()
	sys := kumquat.New(kumquat.NewEnv())
	plan, err := sys.Parallelize(script + "\n")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Execute(context.Background(),
		kumquat.WithMode(kumquat.Serial),
		kumquat.WithStdin(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	return rep.Output
}

// TestClusterExecuteEndToEnd: an execute through the coordinator shards
// to real worker daemons, matches the serial oracle byte-for-byte, and
// reports the dispatch accounting in the cluster trailer.
func TestClusterExecuteEndToEnd(t *testing.T) {
	c, _ := bootCluster(t, 3)
	input := strings.Repeat("pear\napple\npear\nfig\n", 50)
	script := "sort | uniq -c | sort -rn"

	var out strings.Builder
	rep, err := c.Execute(context.Background(), script,
		client.ExecuteOptions{Cluster: "on"}, strings.NewReader(input), &out)
	if err != nil {
		t.Fatal(err)
	}
	if want := localOracle(t, script, input); out.String() != want {
		t.Fatalf("cluster output diverges from oracle:\n%q\nvs\n%q", out.String(), want)
	}
	if rep.Mode != "cluster" {
		t.Fatalf("report mode = %q, want cluster", rep.Mode)
	}
	if rep.Cluster == nil {
		t.Fatal("cluster trailer missing from report")
	}
	if rep.Cluster.RemoteRuns == 0 || rep.Cluster.Shards == 0 {
		t.Fatalf("no remote dispatch recorded: %+v", rep.Cluster)
	}
	if rep.Cluster.Workers != 3 || rep.Cluster.Healthy != 3 {
		t.Fatalf("worker accounting wrong: %+v", rep.Cluster)
	}
}

// TestClusterExecuteDegradesOnDeadWorkers: with every worker killed, the
// coordinator falls back to local execution — same bytes, LocalRuns
// counted, workers ejected.
func TestClusterExecuteDegradesOnDeadWorkers(t *testing.T) {
	c, workers := bootCluster(t, 2)
	for _, ws := range workers {
		ws.Close()
	}
	input := "b\na\nc\na\n"
	script := "sort | uniq -c"

	var out strings.Builder
	rep, err := c.Execute(context.Background(), script,
		client.ExecuteOptions{Cluster: "on"}, strings.NewReader(input), &out)
	if err != nil {
		t.Fatalf("dead cluster must degrade, not fail: %v", err)
	}
	if want := localOracle(t, script, input); out.String() != want {
		t.Fatalf("degraded output corrupted: %q vs %q", out.String(), want)
	}
	if rep.Cluster == nil || rep.Cluster.LocalRuns == 0 {
		t.Fatalf("local fallback not recorded: %+v", rep.Cluster)
	}
	if rep.Cluster.RemoteRuns != 0 {
		t.Fatalf("dead cluster reported remote runs: %+v", rep.Cluster)
	}
	if rep.Cluster.Ejections == 0 {
		t.Fatalf("dead workers never ejected: %+v", rep.Cluster)
	}
}

// TestClusterParamValidation: cluster=on without workers is a client
// error; cluster=off on a coordinator forces the in-process path.
func TestClusterParamValidation(t *testing.T) {
	_, plain := newTestServer(t, server.Config{SynthOptions: kumquat.Options{Seed: 1}})
	var out strings.Builder
	_, err := plain.Execute(context.Background(), "sort",
		client.ExecuteOptions{Cluster: "on"}, strings.NewReader("b\na\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "no workers") {
		t.Fatalf("cluster=on without workers = %v, want config error", err)
	}

	c, _ := bootCluster(t, 2)
	out.Reset()
	rep, err := c.Execute(context.Background(), "sort",
		client.ExecuteOptions{Cluster: "off"}, strings.NewReader("b\na\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode == "cluster" || rep.Cluster != nil {
		t.Fatalf("cluster=off still dispatched remotely: %+v", rep)
	}
	if out.String() != "a\nb\n" {
		t.Fatalf("local path output = %q", out.String())
	}
}

// TestClusterVersionAndMetrics: coordinator surfaces its worker list in
// /v1/version and the cluster gauges in /metrics.
func TestClusterVersionAndMetrics(t *testing.T) {
	c, _ := bootCluster(t, 3)
	ctx := context.Background()
	ver, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ver.Workers) != 3 {
		t.Fatalf("version workers = %v, want 3 entries", ver.Workers)
	}
	var out strings.Builder
	if _, err := c.Execute(ctx, "wc -l", client.ExecuteOptions{Cluster: "on"},
		strings.NewReader("a\nb\nc\n"), &out); err != nil {
		t.Fatal(err)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"kumquatd_cluster_workers 3", "kumquatd_cluster_healthy 3", "kumquatd_cluster_shards"} {
		if !strings.Contains(metrics, g) {
			t.Fatalf("metrics missing %q:\n%s", g, metrics)
		}
	}
}
