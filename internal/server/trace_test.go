package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kumquat"
	"kumquat/internal/cluster"
	"kumquat/internal/obs"
	"kumquat/internal/server"
	"kumquat/internal/server/client"
)

// bootTracedCluster starts n loopback workers and a coordinator with
// distinct trace process names, so stitched traces can prove which
// daemon recorded which span.
func bootTracedCluster(t *testing.T, n int) (*client.Client, string) {
	t.Helper()
	var urls []string
	for i := 0; i < n; i++ {
		wsrv := server.New(server.Config{
			SynthOptions: kumquat.Options{Seed: 1},
			TraceProc:    "worker" + string(rune('0'+i)),
		})
		ws := httptest.NewServer(wsrv.Handler())
		t.Cleanup(ws.Close)
		urls = append(urls, ws.URL)
	}
	csrv := server.New(server.Config{
		SynthOptions: kumquat.Options{Seed: 1},
		TraceProc:    "coordinator",
		Cluster: cluster.Config{
			Workers:        urls,
			Shards:         n,
			RetryMax:       2,
			RetryBase:      time.Millisecond,
			RetryCap:       10 * time.Millisecond,
			SpeculateAfter: -1,
		},
	})
	cs := httptest.NewServer(csrv.Handler())
	t.Cleanup(cs.Close)
	return client.New(cs.URL), cs.URL
}

// TestTracePropagationAcrossCluster is the tentpole acceptance test: one
// traced execute through a live loopback coordinator+worker cluster must
// yield a SINGLE stitched trace — coordinator spans (execute, stage
// dispatch, shards) and worker spans (rpc execute, plan, run, stages)
// sharing one trace id, joined into one tree via the traceparent header
// out and the trace trailer back.
func TestTracePropagationAcrossCluster(t *testing.T) {
	c, _ := bootTracedCluster(t, 2)
	ctx := context.Background()

	var out strings.Builder
	rep, err := c.Execute(ctx, "sort | uniq -c",
		client.ExecuteOptions{Cluster: "on", Trace: "on"},
		strings.NewReader("b\na\nb\nc\na\nb\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("traced execute returned no trace summary")
	}
	if rep.Trace.Spans < 4 {
		t.Fatalf("trace summary spans = %d, want coordinator+worker coverage", rep.Trace.Spans)
	}

	td, err := c.TraceData(ctx, rep.Trace.TraceID)
	if err != nil {
		t.Fatal(err)
	}

	// One trace: every span carries the summary's trace id.
	byID := map[string]obs.SpanRecord{}
	names := map[string]int{}
	procs := map[string]int{}
	for _, sp := range td.Spans {
		if sp.TraceID != rep.Trace.TraceID {
			t.Fatalf("span %s has trace id %s, want %s", sp.Name, sp.TraceID, rep.Trace.TraceID)
		}
		byID[sp.SpanID] = sp
		names[sp.Name]++
		procs[sp.Proc]++
	}

	// Cross-worker stitching: the coordinator's spans and at least one
	// worker's spans landed in the same trace.
	if procs["coordinator"] == 0 {
		t.Fatalf("no coordinator spans in stitched trace: %v", procs)
	}
	if procs["worker0"]+procs["worker1"] == 0 {
		t.Fatalf("no worker spans in stitched trace: %v", procs)
	}

	// Layer coverage: the trace spans planning, synthesis, stage
	// execution and shard dispatch end to end.
	for _, want := range []string{"execute", "plan", "cluster-stage", "shard", "rpc execute", "run", "stage", "synth"} {
		if names[want] == 0 {
			t.Errorf("stitched trace has no %q span: %v", want, names)
		}
	}

	// One tree: every non-root span's parent is present, and each
	// worker's rpc root hangs off a coordinator shard span.
	roots := 0
	for _, sp := range td.Spans {
		if sp.ParentID == "" {
			roots++
			continue
		}
		parent, ok := byID[sp.ParentID]
		if !ok {
			t.Fatalf("span %s (%s) orphaned: parent %s not in trace", sp.Name, sp.Proc, sp.ParentID)
		}
		if sp.Name == "rpc execute" && parent.Name != "shard" {
			t.Errorf("worker rpc span parented to %q, want the coordinator shard span", parent.Name)
		}
	}
	if roots != 1 {
		t.Fatalf("stitched trace has %d roots, want exactly 1", roots)
	}

	// Dispatch accounting rides the shard spans as events.
	dispatches := 0
	for _, sp := range td.Spans {
		if sp.Name != "shard" {
			continue
		}
		for _, ev := range sp.Events {
			if ev.Name == "dispatch" {
				dispatches++
			}
		}
	}
	if dispatches == 0 {
		t.Error("no dispatch events recorded on shard spans")
	}
}

// TestTraceLocalExecute: ?trace=on on a plain (non-cluster) daemon
// records the in-process layers, and the default export is Chrome
// trace-event JSON a profiler UI can load.
func TestTraceLocalExecute(t *testing.T) {
	srv := server.New(server.Config{SynthOptions: kumquat.Options{Seed: 1}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	ctx := context.Background()

	var out strings.Builder
	rep, err := c.Execute(ctx, "sort | uniq -c", client.ExecuteOptions{Trace: "on"},
		strings.NewReader("b\na\nb\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || rep.Trace.Spans == 0 {
		t.Fatalf("local traced execute returned no summary: %+v", rep.Trace)
	}

	td, err := c.TraceData(ctx, rep.Trace.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range td.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"execute", "plan", "run", "pipeline", "stage", "synth"} {
		if !names[want] {
			t.Errorf("local trace missing %q span", want)
		}
	}

	// Default format is the Chrome trace-event file.
	resp, err := http.Get(ts.URL + "/v1/traces/" + rep.Trace.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export status %d: %s", resp.StatusCode, body)
	}
	var chrome obs.ChromeFile
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("chrome export is not trace-event JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
}

// TestTraceOffByDefault: without ?trace=on the execute report carries no
// trace summary and no spans are recorded for the request.
func TestTraceOffByDefault(t *testing.T) {
	_, c := newTestServer(t, server.Config{SynthOptions: kumquat.Options{Seed: 1}})
	var out strings.Builder
	rep, err := c.Execute(context.Background(), "sort", client.ExecuteOptions{},
		strings.NewReader("b\na\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil {
		t.Fatalf("untraced execute grew a trace summary: %+v", rep.Trace)
	}
}

// TestTraceEndpointErrors pins the error surface: malformed ids are 400,
// unknown ids are 404, a disabled ring is 404, and a bad trace parameter
// is rejected before execution.
func TestTraceEndpointErrors(t *testing.T) {
	srv := server.New(server.Config{SynthOptions: kumquat.Options{Seed: 1}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/traces/nothex"); code != http.StatusBadRequest {
		t.Errorf("malformed id status = %d, want 400", code)
	}
	if code := get("/v1/traces/00000000000000000000000000000001"); code != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", code)
	}

	// trace= only accepts on/off.
	c := client.New(ts.URL)
	var out strings.Builder
	if _, err := c.Execute(context.Background(), "sort", client.ExecuteOptions{Trace: "loud"},
		strings.NewReader("a\n"), &out); err == nil || !strings.Contains(err.Error(), "trace") {
		t.Errorf("trace=loud error = %v, want a trace validation error", err)
	}

	// A negative buffer disables the ring entirely: traced executes still
	// succeed (tracing is best-effort) but record nothing.
	dsrv := server.New(server.Config{SynthOptions: kumquat.Options{Seed: 1}, TraceBuffer: -1})
	dts := httptest.NewServer(dsrv.Handler())
	t.Cleanup(dts.Close)
	dc := client.New(dts.URL)
	out.Reset()
	rep, err := dc.Execute(context.Background(), "sort", client.ExecuteOptions{Trace: "on"},
		strings.NewReader("b\na\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil {
		t.Fatalf("disabled ring still produced a trace summary: %+v", rep.Trace)
	}
	resp, err := http.Get(dts.URL + "/v1/traces/00000000000000000000000000000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled ring trace fetch status = %d, want 404", resp.StatusCode)
	}
}

// TestTraceRingEviction: the coordinator's ring holds TraceBuffer traces;
// older ones evict in arrival order and answer 404 afterward.
func TestTraceRingEviction(t *testing.T) {
	srv := server.New(server.Config{SynthOptions: kumquat.Options{Seed: 1}, TraceBuffer: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	ctx := context.Background()

	run := func() string {
		t.Helper()
		var out strings.Builder
		rep, err := c.Execute(ctx, "sort", client.ExecuteOptions{Trace: "on"},
			strings.NewReader("b\na\n"), &out)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Trace == nil {
			t.Fatal("traced execute returned no summary")
		}
		return rep.Trace.TraceID
	}
	first := run()
	second := run()
	if _, err := c.TraceData(ctx, first); err == nil {
		t.Error("evicted trace still served")
	}
	if _, err := c.TraceData(ctx, second); err != nil {
		t.Errorf("latest trace not served: %v", err)
	}
}
