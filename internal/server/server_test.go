package server_test

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kumquat/internal/server"
	"kumquat/internal/server/client"
)

// newTestServer starts an in-process kumquatd over loopback and returns
// its typed client.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, client.New(ts.URL)
}

// TestSynthesizeCacheWarmth is the acceptance-criteria core: two
// sequential synthesize calls for the same spec must report a miss then
// a memory hit, with identical verdicts — proof the engine outlives the
// request.
func TestSynthesizeCacheWarmth(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	cold, err := c.Synthesize(ctx, "wc -l")
	if err != nil {
		t.Fatalf("cold synthesize: %v", err)
	}
	if cold.Cached || cold.CacheTier != "miss" {
		t.Errorf("cold call reported cached=%v tier=%q, want a miss", cold.Cached, cold.CacheTier)
	}
	if cold.Combiner == "" {
		t.Errorf("wc -l synthesized no combiner: %+v", cold)
	}

	warm, err := c.Synthesize(ctx, "wc -l")
	if err != nil {
		t.Fatalf("warm synthesize: %v", err)
	}
	if !warm.Cached || warm.CacheTier != "memory" {
		t.Errorf("warm call reported cached=%v tier=%q, want a memory hit", warm.Cached, warm.CacheTier)
	}
	if warm.Combiner != cold.Combiner {
		t.Errorf("warm combiner %q != cold combiner %q", warm.Combiner, cold.Combiner)
	}
	if warm.Cache.Hits < 1 || warm.Cache.Misses < 1 {
		t.Errorf("cumulative stats missing the hit/miss pair: %+v", warm.Cache)
	}
}

// TestSynthesizeVerdicts covers the non-combiner outcomes: unsupported
// commands are verdicts (200), unparsable specs are caller errors.
func TestSynthesizeVerdicts(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	resp, err := c.Synthesize(ctx, "ls")
	if err != nil {
		t.Fatalf("synthesize ls: %v", err)
	}
	if resp.Unsupported == "" || resp.Combiner != "" {
		t.Errorf("ls should be an unsupported verdict, got %+v", resp)
	}

	if _, err := c.Synthesize(ctx, "frobnicate -z"); err == nil {
		t.Error("unparsable spec should be an error")
	}
	if _, err := c.Synthesize(ctx, "   "); err == nil {
		t.Error("blank spec should be an error")
	}
}

// TestParallelize checks the plan summary for the §2 quickstart
// pipeline, including per-stage verdicts and the compile cache window.
func TestParallelize(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	resp, err := c.Parallelize(context.Background(),
		"cat data.txt | sort | uniq -c | sort -rn",
		map[string]string{"data.txt": "pear\napple\npear\n"})
	if err != nil {
		t.Fatalf("parallelize: %v", err)
	}
	if resp.Total != 3 {
		t.Errorf("total stages = %d, want 3 (cat source is not a stage)", resp.Total)
	}
	if resp.Parallelized == 0 {
		t.Errorf("no stages parallelized: %+v", resp)
	}
	if got := len(resp.Stages); got != 3 {
		t.Fatalf("len(stages) = %d, want 3", got)
	}
	if resp.Stages[0].Spec != "sort" || !resp.Stages[0].Parallel {
		t.Errorf("stage 0 = %+v, want parallel sort", resp.Stages[0])
	}
	if resp.SynthCache.Lookups() == 0 {
		t.Errorf("compile window recorded no cache activity: %+v", resp.SynthCache)
	}

	// The same script again: every stage now resolves from the shared
	// engine's cache.
	again, err := c.Parallelize(context.Background(), "cat data.txt | sort | uniq -c | sort -rn", nil)
	if err != nil {
		t.Fatalf("parallelize (warm): %v", err)
	}
	if again.SynthCache.Misses != 0 || again.SynthCache.Hits == 0 {
		t.Errorf("warm compile should be all hits, got %+v", again.SynthCache)
	}
}

// TestExecuteStdinStreaming drives the execute endpoint with the body
// bound to standard input and checks the streamed output plus the run
// report trailer.
func TestExecuteStdinStreaming(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	var out strings.Builder
	rep, err := c.Execute(context.Background(), "sort",
		client.ExecuteOptions{K: 4, Mode: "optimized"},
		strings.NewReader("pear\napple\nquince\n"), &out)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if got, want := out.String(), "apple\npear\nquince\n"; got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
	if rep.Mode != "optimized" || rep.Parallelism != 4 {
		t.Errorf("report config = %s/k=%d, want optimized/k=4", rep.Mode, rep.Parallelism)
	}
	if rep.BytesOut != int64(out.Len()) {
		t.Errorf("report bytes_out = %d, want %d", rep.BytesOut, out.Len())
	}
	if len(rep.Stages) == 0 {
		t.Error("report carries no stages")
	}
}

// TestExecuteFileBinding checks the other input binding: a `cat FILE`
// source receives the request body.
func TestExecuteFileBinding(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	var out strings.Builder
	_, err := c.Execute(context.Background(), "cat book.txt | sort | uniq -c",
		client.ExecuteOptions{K: 2},
		strings.NewReader("b\na\nb\n"), &out)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if !strings.Contains(out.String(), "2 b") || !strings.Contains(out.String(), "1 a") {
		t.Errorf("unexpected uniq -c output %q", out.String())
	}
}

// TestExecuteFileBindingShadowsCorpus pins the binding rule: the body
// binds to the script's file source even when that name collides with
// the environment's synthetic corpus (f000.txt… ship in every Env) —
// a client must never silently compute over corpus data.
func TestExecuteFileBindingShadowsCorpus(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	var out strings.Builder
	_, err := c.Execute(context.Background(), "cat f001.txt | sort",
		client.ExecuteOptions{K: 2},
		strings.NewReader("b\na\n"), &out)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if got, want := out.String(), "a\nb\n"; got != want {
		t.Errorf("output = %q, want %q (corpus file shadowed the request body?)", got, want)
	}
}

// TestExecuteBadScript checks that malformed scripts fail fast with a
// JSON 400, before any streaming starts.
func TestExecuteBadScript(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	var out strings.Builder
	_, err := c.Execute(context.Background(), "sort >", client.ExecuteOptions{}, nil, &out)
	if err == nil || !strings.Contains(err.Error(), "redirect without target") {
		t.Errorf("want redirect-without-target error, got %v", err)
	}
}

// TestAdmissionOverflow saturates a MaxInFlight=1, QueueDepth=0 server
// with an execute request whose stdin stays open, then checks the next
// request is shed with 429 / ErrBusy.
func TestAdmissionOverflow(t *testing.T) {
	_, c := newTestServer(t, server.Config{MaxInFlight: 1, QueueDepth: -1})
	ctx := context.Background()

	// Warm the sort combiner first so the blocked request holds the
	// slot in execution, not synthesis.
	if _, err := c.Synthesize(ctx, "sort"); err != nil {
		t.Fatalf("warm-up synthesize: %v", err)
	}

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		var out strings.Builder
		_, err := c.Execute(ctx, "sort", client.ExecuteOptions{}, pr, &out)
		done <- err
	}()

	// Wait until the blocked request holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err := c.Metrics(ctx)
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		if strings.Contains(m, "kumquatd_in_flight 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("execute request never acquired the slot")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, err := c.Synthesize(ctx, "sort"); !errors.Is(err, client.ErrBusy) {
		t.Errorf("saturated server: want ErrBusy, got %v", err)
	}

	pw.Close() // release the blocked execute
	if err := <-done; err != nil {
		t.Fatalf("blocked execute failed after release: %v", err)
	}

	// The slot is free again: the same request is now served.
	if _, err := c.Synthesize(ctx, "sort"); err != nil {
		t.Errorf("post-release synthesize: %v", err)
	}
}

// TestConcurrentClients drives all three endpoints from many goroutines
// against one server — the multi-user pattern the daemon exists for.
// Run under -race (CI does) it doubles as the engine's service-plane
// race check; the cache-consistency assertion at the end proves the
// concurrent requests shared one engine.
func TestConcurrentClients(t *testing.T) {
	srv, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	const goroutines = 6
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 3 {
				case 0:
					if _, err := c.Synthesize(ctx, "wc -l"); err != nil {
						errs <- err
					}
				case 1:
					if _, err := c.Parallelize(ctx, "cat d.txt | sort | uniq -c",
						map[string]string{"d.txt": "x\ny\nx\n"}); err != nil {
						errs <- err
					}
				default:
					var out strings.Builder
					if _, err := c.Execute(ctx, "sort", client.ExecuteOptions{K: 2},
						strings.NewReader("c\na\nb\n"), &out); err != nil {
						errs <- err
					} else if out.String() != "a\nb\nc\n" {
						errs <- errors.New("execute output corrupted: " + out.String())
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent request failed: %v", err)
	}

	// All requests shared one engine, and single-flight coalescing means
	// each distinct spec (wc -l, sort, uniq -c) cold-synthesized at most
	// once — even when concurrent requests raced on a cold cache.
	st := srv.System().SynthCacheStats()
	if st.Misses > 3 || st.Hits == 0 {
		t.Errorf("cache did not stay warm across concurrent requests: %+v", st)
	}
}

// TestSynthesizeColdCoalescing fires many concurrent synthesize calls
// for one cold spec and checks the engine ran a single synthesis.
func TestSynthesizeColdCoalescing(t *testing.T) {
	srv, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	const clients = 8
	var wg sync.WaitGroup
	combiners := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Synthesize(ctx, "uniq -c")
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			combiners[i] = resp.Combiner
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if combiners[i] != combiners[0] {
			t.Errorf("client %d got combiner %q, client 0 got %q", i, combiners[i], combiners[0])
		}
	}
	if st := srv.System().SynthCacheStats(); st.Misses != 1 || st.Hits != clients-1 {
		t.Errorf("coalescing failed: want 1 miss / %d hits, got %+v", clients-1, st)
	}
}

// TestVersionHealthzMetrics covers the observability surface.
func TestVersionHealthzMetrics(t *testing.T) {
	_, c := newTestServer(t, server.Config{MaxInFlight: 3, QueueDepth: 7})
	ctx := context.Background()

	v, err := c.Version(ctx)
	if err != nil {
		t.Fatalf("version: %v", err)
	}
	if v.Module != "kumquat" || v.GOMAXPROCS < 1 || v.DefaultSynthWorkers < 1 {
		t.Errorf("implausible build info: %+v", v)
	}
	if v.MaxInFlight != 3 || v.QueueDepth != 7 {
		t.Errorf("service limits = %d/%d, want 3/7", v.MaxInFlight, v.QueueDepth)
	}

	if err := c.Healthz(ctx); err != nil {
		t.Errorf("healthz: %v", err)
	}

	if _, err := c.Synthesize(ctx, "wc -l"); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`kumquatd_requests_total{endpoint="synthesize",code="200"} 1`,
		`kumquatd_request_seconds_bucket{endpoint="synthesize",le="+Inf"} 1`,
		`kumquatd_synth_cache_misses 1`,
		"kumquatd_in_flight 0",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, m)
		}
	}
}
