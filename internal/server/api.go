package server

import "kumquat/internal/server/api"

// The wire types of kumquatd's HTTP/JSON API live in the api subpackage
// (shared with the typed client, which must stay importable from the
// cluster plane without a dependency on the server implementation). The
// aliases below keep the historical server.* names valid for handlers,
// tests and external callers.

// SynthesizeRequest is the POST /v1/synthesize body.
type SynthesizeRequest = api.SynthesizeRequest

// SpaceBreakdown is a search space's per-class candidate counts.
type SpaceBreakdown = api.SpaceBreakdown

// SynthesizeResponse is the POST /v1/synthesize reply.
type SynthesizeResponse = api.SynthesizeResponse

// ParallelizeRequest is the POST /v1/parallelize body.
type ParallelizeRequest = api.ParallelizeRequest

// StageVerdict is one stage's planning outcome.
type StageVerdict = api.StageVerdict

// ParallelizeResponse is the POST /v1/parallelize reply.
type ParallelizeResponse = api.ParallelizeResponse

// ExecuteReport is the X-Kumquat-Report trailer payload of POST
// /v1/execute.
type ExecuteReport = api.ExecuteReport

// ExecuteStage is one stage's slice of an ExecuteReport.
type ExecuteStage = api.ExecuteStage

// ExecuteRegion is one optimizer region's slice of a fused run's
// ExecuteReport.
type ExecuteRegion = api.ExecuteRegion

// ClusterReport is the coordinator's shard-dispatch accounting of one
// cluster-mode execute.
type ClusterReport = api.ClusterReport

// TraceSummary is the ?trace=on report stub pointing at the full trace.
type TraceSummary = api.TraceSummary

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse = api.ErrorResponse

// VersionResponse is the GET /v1/version reply.
type VersionResponse = api.VersionResponse

// Trailer names of the execute endpoint.
const (
	// ReportTrailer carries the ExecuteReport JSON after a streamed
	// execute response.
	ReportTrailer = api.ReportTrailer
	// ErrorTrailer carries an execution error that occurred after the
	// response status was already committed.
	ErrorTrailer = api.ErrorTrailer
	// TraceTrailer carries a worker's span records back to the
	// coordinator on traced cluster dispatches.
	TraceTrailer = api.TraceTrailer
)
