package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the request-latency histogram bounds in seconds,
// spanning warm cache lookups (~100 µs over loopback) to cold synthesis
// of the 110k-candidate space plus execution (seconds).
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram; counts[i] holds the
// observations that fell in bucket i (cumulative Prometheus-style sums
// are computed at write time). The last slot is the +Inf bucket.
type histogram struct {
	counts []int64
	sum    float64
	total  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// metrics is the server's metrics registry: request counts by endpoint
// and status code, latency histograms by endpoint, and gauges sampled at
// render time (admission occupancy, cache counters). All methods are
// safe for concurrent use; rendering holds the same lock the recorders
// take, so a scrape sees a consistent snapshot.
type metrics struct {
	mu     sync.Mutex
	counts map[countKey]int64    // endpoint+code → requests
	hists  map[string]*histogram // endpoint → latencies
	// shard and backoff histogram the cluster plane's per-shard
	// resolution times and computed retry-backoff delays (fed through
	// the coordinator's OnShardLatency/OnRetryBackoff hooks).
	shard   *histogram
	backoff *histogram
}

// countKey labels one requests_total series.
type countKey struct {
	endpoint string
	code     int
}

func newMetrics() *metrics {
	return &metrics{
		counts:  map[countKey]int64{},
		hists:   map[string]*histogram{},
		shard:   newHistogram(),
		backoff: newHistogram(),
	}
}

// observeShard logs one cluster shard's total resolution time.
func (m *metrics) observeShard(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shard.observe(d.Seconds())
}

// observeBackoff logs one computed retry-backoff delay.
func (m *metrics) observeBackoff(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.backoff.observe(d.Seconds())
}

// record logs one finished request.
func (m *metrics) record(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts[countKey{endpoint, code}]++
	h := m.hists[endpoint]
	if h == nil {
		h = newHistogram()
		m.hists[endpoint] = h
	}
	h.observe(d.Seconds())
}

// gauge is a point-in-time value rendered into the exposition.
type gauge struct {
	name, help string
	value      float64
}

// writeHist renders one histogram series in the Prometheus text
// exposition format. The caller holds m.mu.
func writeHist(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i, bound := range latencyBuckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum)
	}
	cum += h.counts[len(latencyBuckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total)
}

// write renders the registry in the Prometheus text exposition format,
// appending the given gauges (sampled by the caller at scrape time).
// cluster adds the shard-latency and retry-backoff histograms, which
// only a coordinator populates.
func (m *metrics) write(w io.Writer, gauges []gauge, cluster bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP kumquatd_requests_total Requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE kumquatd_requests_total counter")
	keys := make([]countKey, 0, len(m.counts))
	for k := range m.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "kumquatd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.counts[k])
	}

	fmt.Fprintln(w, "# HELP kumquatd_request_seconds Request latency, by endpoint.")
	fmt.Fprintln(w, "# TYPE kumquatd_request_seconds histogram")
	eps := make([]string, 0, len(m.hists))
	for ep := range m.hists {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		h := m.hists[ep]
		var cum int64
		for i, bound := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "kumquatd_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, bound, cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "kumquatd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "kumquatd_request_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "kumquatd_request_seconds_count{endpoint=%q} %d\n", ep, h.total)
	}

	if cluster {
		writeHist(w, "kumquatd_cluster_shard_seconds",
			"Cluster shard resolution time, dispatch through final outcome (retries, speculation and local fallback included).", m.shard)
		writeHist(w, "kumquatd_cluster_retry_backoff_seconds",
			"Computed retry-backoff delays before shard re-dispatch.", m.backoff)
	}

	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n", g.name, g.help)
		fmt.Fprintf(w, "# TYPE %s gauge\n", g.name)
		fmt.Fprintf(w, "%s %g\n", g.name, g.value)
	}
}
