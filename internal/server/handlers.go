package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"kumquat"
	"kumquat/internal/obs"
)

// handleSynthesize serves POST /v1/synthesize: one command spec in, the
// synthesis verdict out, with an exact cache-tier attribution.
func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	var req SynthesizeRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Spec) == "" {
		writeError(w, http.StatusBadRequest, "spec is required")
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()

	start := time.Now()
	res, tier, err := s.sys.SynthesizeTier(r.Context(), req.Spec)
	if res == nil {
		// The spec never parsed as a command — a caller error, not a
		// synthesis verdict.
		writeError(w, http.StatusBadRequest, "cannot parse command: %v", err)
		return
	}
	if ctxErr := r.Context().Err(); ctxErr != nil {
		// Client gone or deadline passed mid-synthesis; the best-so-far
		// result is not a verdict, so don't report it as one.
		writeError(w, http.StatusServiceUnavailable, "synthesis cancelled: %v", ctxErr)
		return
	}
	resp := SynthesizeResponse{
		Spec: res.Spec,
		Space: SpaceBreakdown{
			Total: res.Space.Total(), Rec: res.Space.Rec,
			Struct: res.Space.Struct, Run: res.Space.Run,
		},
		Rounds:          res.Rounds,
		Observations:    res.Observations,
		Cached:          tier.Cached(),
		CacheTier:       tier.String(),
		SynthDurationMS: ms(res.Duration),
		DurationMS:      ms(time.Since(start)),
		Cache:           s.sys.SynthCacheStats(),
	}
	if err != nil {
		resp.Unsupported = err.Error()
	} else {
		resp.Combiner = res.Combiner.String()
		resp.Plausible = res.DisplayPlausible()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleParallelize serves POST /v1/parallelize: a script (plus optional
// input files) in, the plan summary out. Planning happens in a private
// environment; combiners come from the shared warm engine.
func (s *Server) handleParallelize(w http.ResponseWriter, r *http.Request) {
	var req ParallelizeRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Script) == "" {
		writeError(w, http.StatusBadRequest, "script is required")
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()

	env := kumquat.NewEnv()
	for name, content := range req.Files {
		env.Register(name, content)
	}
	start := time.Now()
	plan, err := s.sys.ParallelizeInEnv(r.Context(), env, ensureTrailingNewline(req.Script))
	if err != nil {
		status := http.StatusBadRequest
		if r.Context().Err() != nil {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "cannot parallelize: %v", err)
		return
	}
	par, total, elim := plan.Counts()
	resp := ParallelizeResponse{
		Parallelized: par,
		Total:        total,
		Eliminated:   elim,
		SynthCache:   plan.SynthCache(),
		DurationMS:   ms(time.Since(start)),
	}
	for _, st := range plan.Stages() {
		resp.Stages = append(resp.Stages, StageVerdict{
			Spec:       st.Spec,
			Combiner:   st.Combiner,
			Parallel:   st.Parallel,
			Sequential: st.Sequential,
			Eliminated: st.Eliminated,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExecute serves POST /v1/execute: the script comes in query
// parameters (script, k, mode, fuse, combine-workers), the request body
// streams in as the pipeline's input, stdout streams back as the
// response body, and the RunReport arrives as the X-Kumquat-Report
// trailer once the stream ends. The request body binds to the script's
// input source: standard input for stdin-reading pipelines, or the
// first pipeline's `cat FILE` / `< FILE` source otherwise.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	script := q.Get("script")
	if strings.TrimSpace(script) == "" {
		writeError(w, http.StatusBadRequest, "script query parameter is required")
		return
	}
	mode := kumquat.Optimized
	if name := q.Get("mode"); name != "" {
		var err error
		if mode, err = kumquat.ParseMode(name); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	k := s.cfg.DefaultParallelism
	if ks := q.Get("k"); ks != "" {
		n, err := strconv.Atoi(ks)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = n
	}
	combineWorkers := 0
	if cs := q.Get("combine-workers"); cs != "" {
		n, err := strconv.Atoi(cs)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "combine-workers must be a non-negative integer")
			return
		}
		combineWorkers = n
	}
	fuse := true
	if fs := q.Get("fuse"); fs != "" {
		switch fs {
		case "on":
			fuse = true
		case "off":
			fuse = false
		default:
			writeError(w, http.StatusBadRequest, "fuse must be on or off")
			return
		}
	}
	// cluster selects the dispatch plane: "on" demands the coordinator
	// (400 without workers), "off" forces in-process execution, and the
	// default uses the cluster whenever one is configured.
	useCluster := s.clu != nil
	switch q.Get("cluster") {
	case "", "auto":
	case "on":
		if s.clu == nil {
			writeError(w, http.StatusBadRequest, "cluster=on but no workers are configured")
			return
		}
	case "off":
		useCluster = false
	default:
		writeError(w, http.StatusBadRequest, "cluster must be on, off or auto")
		return
	}
	wantTrace := false
	switch q.Get("trace") {
	case "", "off":
	case "on":
		wantTrace = true
	default:
		writeError(w, http.StatusBadRequest, "trace must be on or off")
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()

	// Start the request's trace: a traceparent header joins an upstream
	// coordinator's trace (the spans ship back in the trace trailer);
	// ?trace=on starts a fresh local one, retrievable at /v1/traces/{id}.
	var span *obs.Span
	remoteTrace := false
	if s.trc != nil {
		if sc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			var ctx context.Context
			ctx, span = s.trc.StartRemote(r.Context(), "rpc execute", sc)
			r = r.WithContext(ctx)
			remoteTrace = true
		} else if wantTrace {
			var ctx context.Context
			ctx, span = s.trc.StartTrace(r.Context(), "execute")
			r = r.WithContext(ctx)
		}
	}
	if span != nil {
		if rec, ok := w.(*statusRecorder); ok {
			rec.traceID = span.SpanContext().TraceID.String()
		}
	}

	body := io.Reader(r.Body)
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}

	env := kumquat.NewEnv()
	plan, err := s.sys.ParallelizeInEnv(r.Context(), env, ensureTrailingNewline(script))
	if err != nil {
		status := http.StatusBadRequest
		if r.Context().Err() != nil {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "cannot parallelize: %v", err)
		return
	}

	// Bind the request body to the script's input: a stdin-reading first
	// pipeline consumes it as a stream; a `cat FILE` / `< FILE` source
	// gets the body materialized under that name. The binding is
	// unconditional — the environment's synthetic corpus must never
	// shadow a client's streamed data behind a colliding file name.
	var stdin io.Reader = body
	if inputs := plan.Inputs(); len(inputs) > 0 && inputs[0] != "" {
		data, rerr := io.ReadAll(body)
		if rerr != nil {
			writeError(w, http.StatusBadRequest, "reading request body for input %q: %v", inputs[0], rerr)
			return
		}
		env.Register(inputs[0], string(data))
		stdin = nil
	}

	// Declare trailers before the body commits, then stream.
	trailers := ReportTrailer + ", " + ErrorTrailer
	if remoteTrace {
		trailers += ", " + TraceTrailer
	}
	w.Header().Set("Trailer", trailers)
	w.Header().Set("Content-Type", "application/octet-stream")
	fw := &flushWriter{w: w}
	if useCluster {
		s.executeCluster(w, r, env, plan, stdin, combineWorkers, fw, span, remoteTrace)
		return
	}
	rep, err := plan.Execute(r.Context(),
		kumquat.WithParallelism(k),
		kumquat.WithMode(mode),
		kumquat.WithFuse(fuse),
		kumquat.WithCombineWorkers(combineWorkers),
		kumquat.WithStdin(stdin),
		kumquat.WithOutput(fw))
	if err != nil {
		// The stream may already be half-written; the error must travel
		// as a trailer. (Before the first byte this still downgrades the
		// response to an empty 200 + error trailer — the price of
		// streaming.)
		s.endTrace(w, span, remoteTrace, nil)
		w.Header().Set(ErrorTrailer, err.Error())
		return
	}
	out := executeReport(rep)
	s.endTrace(w, span, remoteTrace, &out)
	report, merr := json.Marshal(out)
	if merr != nil {
		w.Header().Set(ErrorTrailer, merr.Error())
		return
	}
	w.Header().Set(ReportTrailer, string(report))
}

// endTrace finishes a traced execute. On a remote (coordinator-joined)
// trace it ships the worker's span records back in the trace trailer;
// on a local ?trace=on it stamps the report with the trace summary the
// client uses to fetch the full trace.
func (s *Server) endTrace(w http.ResponseWriter, span *obs.Span, remote bool, rep *ExecuteReport) {
	if span == nil {
		return
	}
	span.End()
	if remote {
		if recs, err := json.Marshal(span.Records()); err == nil {
			w.Header().Set(TraceTrailer, string(recs))
		}
		return
	}
	if rep != nil {
		rep.Trace = &TraceSummary{
			TraceID: span.SpanContext().TraceID.String(),
			Spans:   len(span.Records()),
		}
	}
}

// executeReport converts a RunReport to its wire form.
func executeReport(rep *kumquat.RunReport) ExecuteReport {
	out := ExecuteReport{
		Mode:        rep.Mode.String(),
		Parallelism: rep.Parallelism,
		WallMS:      ms(rep.Wall),
		BytesIn:     rep.BytesIn,
		BytesOut:    rep.BytesOut,
		SynthCache:  rep.SynthCache,
	}
	for _, st := range rep.Stages {
		out.Stages = append(out.Stages, ExecuteStage{
			Spec:          st.Spec,
			Parallel:      st.Parallel,
			Eliminated:    st.Eliminated,
			Streamed:      st.Streamed,
			Chunks:        st.Chunks,
			WallMS:        ms(st.Wall),
			CombineWallMS: ms(st.CombineWall),
			BytesIn:       st.BytesIn,
			BytesOut:      st.BytesOut,
		})
	}
	if rep.Fused {
		out.Fused = true
		out.Rewrites = rep.Rewrites
		for _, rg := range rep.Regions {
			out.Regions = append(out.Regions, ExecuteRegion{
				Pipeline:      rg.Pipeline,
				Stages:        rg.Stages,
				Fused:         rg.Fused,
				Exit:          rg.Exit,
				Rules:         rg.Rules,
				Streamed:      rg.Streamed,
				Chunks:        rg.Chunks,
				WallMS:        ms(rg.Wall),
				CombineWallMS: ms(rg.CombineWall),
				BytesIn:       rg.BytesIn,
				BytesOut:      rg.BytesOut,
			})
		}
	}
	return out
}

// flushWriter flushes after every write so execute output streams to the
// client incrementally instead of sitting in the server's buffer.
type flushWriter struct {
	w http.ResponseWriter
}

// Write forwards to the response and flushes.
func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

// decodeJSON decodes a JSON request body into v, bounded by the
// server's body limit.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := io.Reader(r.Body)
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// ensureTrailingNewline appends the newline the script grammar requires
// of its final pipeline line.
func ensureTrailingNewline(script string) string {
	if strings.HasSuffix(script, "\n") {
		return script
	}
	return script + "\n"
}
