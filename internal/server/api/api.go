// Package api defines the wire types of kumquatd's HTTP/JSON API. The
// server (internal/server) and the typed client (internal/server/client)
// both build on this package, so the two ends of the protocol cannot
// drift — and the client stays importable from the cluster plane
// (internal/cluster) without pulling in the server implementation.
package api

import "kumquat"

// SynthesizeRequest is the POST /v1/synthesize body.
type SynthesizeRequest struct {
	// Spec is the command to synthesize a combiner for, e.g. "uniq -c".
	Spec string `json:"spec"`
}

// SpaceBreakdown is a search space's per-class candidate counts (Table
// 10's third column).
type SpaceBreakdown struct {
	Total  int `json:"total"`
	Rec    int `json:"rec"`
	Struct int `json:"struct"`
	Run    int `json:"run"`
}

// SynthesizeResponse is the POST /v1/synthesize reply: one command's
// synthesis verdict plus the cache attribution of this call.
type SynthesizeResponse struct {
	Spec      string         `json:"spec"`
	Combiner  string         `json:"combiner,omitempty"`
	Plausible []string       `json:"plausible,omitempty"`
	Space     SpaceBreakdown `json:"space"`
	Rounds    int            `json:"rounds"`
	// Observations is the number of ⟨y1,y2,y12⟩ triples synthesis used.
	Observations int `json:"observations"`
	// Unsupported carries the negative verdict (no combiner exists, the
	// command is not a stream processor, …) when synthesis succeeded in
	// *deciding* but the command has no combiner. HTTP status stays 200:
	// the verdict is a first-class result, not a server failure.
	Unsupported string `json:"unsupported,omitempty"`
	// Cached is true when a cache tier served the call; CacheTier says
	// which ("memory", "disk", or "miss"). Exact under concurrency.
	Cached    bool   `json:"cached"`
	CacheTier string `json:"cache_tier"`
	// SynthDurationMS is the original synthesis wall time (the cached
	// result's cost, not this request's); DurationMS is this request's
	// server-side handling time.
	SynthDurationMS float64 `json:"synth_duration_ms"`
	DurationMS      float64 `json:"duration_ms"`
	// Cache is the engine's cumulative cache activity after this call.
	Cache kumquat.SynthCacheStats `json:"cache"`
}

// ParallelizeRequest is the POST /v1/parallelize body.
type ParallelizeRequest struct {
	// Script is the shell script to plan (one or more pipeline lines).
	Script string `json:"script"`
	// Files registers input files into the request's private
	// environment before planning, keyed by name.
	Files map[string]string `json:"files,omitempty"`
}

// StageVerdict is one stage's planning outcome.
type StageVerdict struct {
	Spec     string `json:"spec"`
	Combiner string `json:"combiner,omitempty"`
	// Parallel stages run k instances and recombine; Sequential marks
	// rerun-only stages the planner keeps serial; Eliminated marks
	// parallel stages whose combiner Theorem 5 removed.
	Parallel   bool `json:"parallel"`
	Sequential bool `json:"sequential"`
	Eliminated bool `json:"eliminated"`
}

// ParallelizeResponse is the POST /v1/parallelize reply: the plan
// summary (the paper's Table 3 row for the script).
type ParallelizeResponse struct {
	Parallelized int            `json:"parallelized"`
	Total        int            `json:"total"`
	Eliminated   int            `json:"eliminated"`
	Stages       []StageVerdict `json:"stages"`
	// SynthCache is the combiner-cache activity of this compilation:
	// stages served warm versus synthesized from scratch.
	SynthCache kumquat.SynthCacheStats `json:"synth_cache"`
	DurationMS float64                 `json:"duration_ms"`
}

// ExecuteReport is the JSON payload of the X-Kumquat-Report trailer a
// successful POST /v1/execute response carries after the streamed
// output.
type ExecuteReport struct {
	Mode        string  `json:"mode"`
	Parallelism int     `json:"parallelism"`
	WallMS      float64 `json:"wall_ms"`
	BytesIn     int64   `json:"bytes_in"`
	BytesOut    int64   `json:"bytes_out"`
	// Stages carries each stage's execution measurements.
	Stages []ExecuteStage `json:"stages"`
	// SynthCache is the compile-time combiner-cache activity.
	SynthCache kumquat.SynthCacheStats `json:"synth_cache"`
	// Fused reports that the graph-walking fused executor ran (optimized
	// mode with fuse=on and a materialized source).
	Fused bool `json:"fused,omitempty"`
	// Rewrites counts the dataflow-optimizer rewrites the fused run
	// applied, per rule name; omitted when the fused executor did not run.
	Rewrites map[string]int `json:"rewrites,omitempty"`
	// Regions carries the fused run's per-region execution measurements;
	// omitted when the fused executor did not run.
	Regions []ExecuteRegion `json:"regions,omitempty"`
	// Cluster carries the coordinator's shard-dispatch accounting when the
	// request executed in cluster mode; omitted otherwise.
	Cluster *ClusterReport `json:"cluster,omitempty"`
	// Trace summarizes the request's recorded trace when the request
	// asked for one (?trace=on); the full trace is retrievable at
	// GET /v1/traces/{trace_id} until the ring evicts it.
	Trace *TraceSummary `json:"trace,omitempty"`
}

// TraceSummary is the ?trace=on trailer stub: enough to fetch the full
// trace without inflating every report with span records.
type TraceSummary struct {
	// TraceID is the recorded trace's identifier (32 hex digits).
	TraceID string `json:"trace_id"`
	// Spans is the number of spans recorded so far, stitched remote
	// spans included.
	Spans int `json:"spans"`
}

// ExecuteStage is one stage's slice of an ExecuteReport.
type ExecuteStage struct {
	Spec          string  `json:"spec"`
	Parallel      bool    `json:"parallel"`
	Eliminated    bool    `json:"eliminated"`
	Streamed      bool    `json:"streamed"`
	Chunks        int     `json:"chunks"`
	WallMS        float64 `json:"wall_ms"`
	CombineWallMS float64 `json:"combine_wall_ms"`
	BytesIn       int64   `json:"bytes_in"`
	BytesOut      int64   `json:"bytes_out"`
}

// ExecuteRegion is one optimizer region's slice of a fused run's
// ExecuteReport: the member stages, the rewrites that shaped the region,
// and its region-level metrics (inside a fused region per-stage combine
// walls do not exist, so CombineWallMS lives here).
type ExecuteRegion struct {
	Pipeline      int      `json:"pipeline"`
	Stages        []int    `json:"stages"`
	Fused         bool     `json:"fused"`
	Exit          string   `json:"exit"`
	Rules         []string `json:"rules,omitempty"`
	Streamed      bool     `json:"streamed,omitempty"`
	Chunks        int      `json:"chunks"`
	WallMS        float64  `json:"wall_ms"`
	CombineWallMS float64  `json:"combine_wall_ms"`
	BytesIn       int64    `json:"bytes_in"`
	BytesOut      int64    `json:"bytes_out"`
}

// ClusterReport is the coordinator's accounting of one cluster-mode
// execute: how the parallel-stage shards were dispatched across the
// worker set and what the failure-handling machinery had to do to keep
// the run byte-identical to a local one.
type ClusterReport struct {
	// Workers is the configured worker count; Healthy is how many were
	// healthy (not ejected) when the run finished.
	Workers int `json:"workers"`
	Healthy int `json:"healthy"`
	// Shards counts the logical shards of this run (per parallel stage,
	// summed); RemoteRuns counts shard executions that completed on a
	// worker, LocalRuns the shards that degraded to in-process execution
	// after the worker set was exhausted.
	Shards     int64 `json:"shards"`
	RemoteRuns int64 `json:"remote_runs"`
	LocalRuns  int64 `json:"local_runs"`
	// Retries counts re-dispatches after a failed attempt (backoff
	// applied); Speculations counts straggler duplicates launched past the
	// latency threshold, SpeculationWins how many of those beat the
	// original attempt.
	Retries         int64 `json:"retries"`
	Speculations    int64 `json:"speculations"`
	SpeculationWins int64 `json:"speculation_wins"`
	// Ejections and Readmissions count worker health transitions observed
	// during this run.
	Ejections    int64 `json:"ejections"`
	Readmissions int64 `json:"readmissions"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// VersionResponse is the GET /v1/version reply: the build surface plus
// the server's effective service limits.
type VersionResponse struct {
	kumquat.BuildInfo
	// MaxInFlight and QueueDepth echo the admission configuration.
	MaxInFlight int `json:"max_in_flight"`
	QueueDepth  int `json:"queue_depth"`
	// Workers lists the configured cluster workers when the server runs
	// as a coordinator; empty otherwise.
	Workers []string `json:"workers,omitempty"`
}

// Trailer and header names of the execute endpoint.
const (
	// ReportTrailer carries the ExecuteReport JSON after a streamed
	// execute response.
	ReportTrailer = "X-Kumquat-Report"
	// ErrorTrailer carries an execution error that occurred after the
	// response status was already committed.
	ErrorTrailer = "X-Kumquat-Error"
	// TraceTrailer carries the worker's span records (a JSON array of
	// obs.SpanRecord) back to the coordinator on traced cluster
	// dispatches, so the coordinator can stitch them into one trace.
	TraceTrailer = "X-Kumquat-Trace"
)
