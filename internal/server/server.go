// Package server implements kumquatd's service plane: an HTTP/JSON API
// over one shared kumquat.System, so the synthesis engine's spec memo,
// LRU and on-disk combiner cache stay warm across requests and users.
//
// Endpoints:
//
//	POST /v1/synthesize   command spec → combiner verdict (+ cache tier)
//	POST /v1/parallelize  script → plan summary (per-stage verdicts)
//	POST /v1/execute      script; request body streams in as stdin,
//	                      stdout streams out, RunReport arrives as the
//	                      X-Kumquat-Report trailer
//	GET  /v1/version      build info + service limits
//	GET  /healthz         liveness (200 even while draining)
//	GET  /readyz          readiness (503 once draining starts)
//	GET  /metrics         Prometheus text exposition
//
// With Config.Cluster.Workers set, the server is additionally a cluster
// coordinator: execute requests shard their input across the worker
// daemons (internal/cluster) unless the request opts out with
// cluster=off.
//
// The server owns the production concerns the library leaves to its
// caller: bounded admission (at most MaxInFlight requests do work, at
// most QueueDepth wait, the rest get 429), per-request contexts wired
// into SynthesizeTier/ParallelizeInEnv/Execute so deadlines and client
// disconnects cancel work mid-round, and the /metrics surface.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"kumquat"
	"kumquat/internal/cluster"
	"kumquat/internal/obs"
)

// Config tunes a Server. The zero value serves with defaults.
type Config struct {
	// SynthOptions configures the shared synthesis engine (seed defaults
	// to 1, matching the CLIs; CacheDir enables the on-disk tier).
	SynthOptions kumquat.Options
	// Env is the base environment synthesize requests and the engine's
	// observation runs use (nil = default corpus). Parallelize and
	// execute requests get a private per-request environment.
	Env *kumquat.Env
	// MaxInFlight caps concurrently-served work requests
	// (default 2×GOMAXPROCS).
	MaxInFlight int
	// QueueDepth caps requests waiting for a slot (default 64); beyond
	// it the server answers 429 immediately.
	QueueDepth int
	// DefaultParallelism is the execute endpoint's k when the request
	// does not set one (default GOMAXPROCS).
	DefaultParallelism int
	// MaxBodyBytes bounds request bodies (default 256 MiB; negative =
	// unlimited). Execute inputs stream, but scripts that bind the body
	// to a `cat FILE` source materialize it.
	MaxBodyBytes int64
	// Cluster configures coordinator mode: with a non-empty Workers list
	// the execute endpoint shards parallel stages across those worker
	// daemons (with retries, speculation and local fallback) instead of
	// running them in-process.
	Cluster cluster.Config
	// TraceBuffer sizes the in-memory ring of recent traces served at
	// GET /v1/traces/{id} (0 = default 64; negative disables tracing
	// entirely — ?trace=on and traceparent headers are then ignored).
	TraceBuffer int
	// TraceProc labels this process's spans in exported traces
	// (default "kumquatd").
	TraceProc string
	// Logger receives the server's structured request and lifecycle
	// logs; nil discards them.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (the
	// kumquatd -pprof flag). Off by default: the profile endpoints
	// expose internals and cost CPU when scraped.
	EnablePprof bool
}

// withDefaults resolves the zero-value fields.
func (c Config) withDefaults() Config {
	if c.SynthOptions.Seed == 0 {
		c.SynthOptions.Seed = 1
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.DefaultParallelism == 0 {
		c.DefaultParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = 64
	}
	if c.TraceProc == "" {
		c.TraceProc = "kumquatd"
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Server is the service plane over one shared kumquat.System.
type Server struct {
	cfg Config
	sys *kumquat.System
	adm *admission
	met *metrics
	// trc records request traces; nil when tracing is disabled.
	trc *obs.Tracer
	// log receives structured request and lifecycle logs.
	log *slog.Logger
	// clu is the cluster coordinator; nil when no workers are configured.
	clu *cluster.Coordinator
	// draining flips once shutdown starts: readiness goes 503 (stop
	// admitting new clients) while liveness stays 200 (still draining).
	draining atomic.Bool
}

// New builds a Server; its System (and therefore the warm synthesis
// caches) lives as long as the server does.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	env := cfg.Env
	if env == nil {
		env = kumquat.NewEnv()
	}
	s := &Server{
		cfg: cfg,
		sys: kumquat.NewWithOptions(env, cfg.SynthOptions),
		adm: newAdmission(cfg.MaxInFlight, cfg.QueueDepth),
		met: newMetrics(),
		log: cfg.Logger,
	}
	if cfg.TraceBuffer > 0 {
		s.trc = obs.NewTracer(cfg.TraceBuffer, cfg.TraceProc)
	}
	if len(cfg.Cluster.Workers) > 0 {
		cc := cfg.Cluster
		if cc.Logger == nil {
			cc.Logger = cfg.Logger
		}
		// Feed the coordinator's shard and backoff observations into the
		// /metrics histograms.
		cc.OnShardLatency = s.met.observeShard
		cc.OnRetryBackoff = s.met.observeBackoff
		s.clu = cluster.New(cc)
	}
	return s
}

// Coordinator returns the cluster coordinator, or nil when the server
// runs without workers.
func (s *Server) Coordinator() *cluster.Coordinator { return s.clu }

// SetDraining flips the readiness surface: once on, /readyz answers 503
// so load balancers and cluster coordinators stop sending new work,
// while /healthz keeps answering 200 for the duration of the drain.
func (s *Server) SetDraining(on bool) {
	if s.draining.Swap(on) != on {
		s.log.Info("drain transition", "draining", on)
	}
}

// Draining reports whether the server is in its shutdown drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// System exposes the shared system, e.g. for pre-warming caches before
// serving.
func (s *Server) System() *kumquat.System { return s.sys }

// Handler returns the server's routed http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", s.instrument("synthesize", s.handleSynthesize))
	mux.HandleFunc("POST /v1/parallelize", s.instrument("parallelize", s.handleParallelize))
	mux.HandleFunc("POST /v1/execute", s.instrument("execute", s.handleExecute))
	mux.HandleFunc("GET /v1/version", s.instrument("version", s.handleVersion))
	mux.HandleFunc("GET /v1/traces/{id}", s.instrument("traces", s.handleTrace))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.handleMetrics) // not self-instrumented
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// instrument wraps a handler with request metrics (count by status code,
// latency histogram) and structured request logs. Probe endpoints log at
// debug so a tight health-check loop doesn't drown the work log; traced
// requests carry their trace_id for correlation.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	probe := endpoint == "healthz" || endpoint == "readyz" || endpoint == "version"
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.log.Debug("request start", "endpoint", endpoint, "remote", r.RemoteAddr)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		d := time.Since(start)
		s.met.record(endpoint, rec.code, d)
		lvl := slog.LevelInfo
		if probe {
			lvl = slog.LevelDebug
		}
		args := []any{"endpoint", endpoint, "code", rec.code, "ms", ms(d)}
		if rec.traceID != "" {
			args = append(args, "trace_id", rec.traceID)
		}
		s.log.Log(r.Context(), lvl, "request finished", args...)
	}
}

// statusRecorder captures the response status for metrics while passing
// Flush through so execute responses still stream.
type statusRecorder struct {
	http.ResponseWriter
	code int
	// traceID is set by handlers that record a trace, so the finish log
	// can correlate.
	traceID string
}

// WriteHeader records the status code.
func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it supports streaming.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// admit claims an admission slot for one work request, translating
// saturation to 429 (with Retry-After) and a client that gave up while
// queued to a no-op. The returned release is nil when admission failed.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) func() {
	release, err := s.adm.acquire(r.Context())
	if err == ErrBusy {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server at capacity: %d in flight, %d queued", s.adm.inFlight(), s.adm.queued())
		return nil
	}
	if err != nil { // client disconnected or deadline passed while queued
		return nil
	}
	return release
}

// handleHealthz is the liveness probe: 200 as long as the process
// serves, including the shutdown drain (a draining server is alive —
// killing it would sever the streams it is finishing).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 503 once the drain starts, so
// new work routes elsewhere while in-flight streams finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleVersion reports build info and service limits.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	resp := VersionResponse{
		BuildInfo:   kumquat.Info(),
		MaxInFlight: s.cfg.MaxInFlight,
		QueueDepth:  s.cfg.QueueDepth,
	}
	if s.clu != nil {
		resp.Workers = s.clu.Workers()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics renders the Prometheus exposition, sampling the
// admission and cache gauges at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.sys.SynthCacheStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	gauges := []gauge{
		{"kumquatd_in_flight", "Requests currently holding an execution slot.", float64(s.adm.inFlight())},
		{"kumquatd_queued", "Requests waiting for an execution slot.", float64(s.adm.queued())},
		{"kumquatd_synth_cache_hits", "Cumulative synthesis memory-cache hits.", float64(st.Hits)},
		{"kumquatd_synth_cache_disk_hits", "Cumulative synthesis disk-cache hits.", float64(st.DiskHits)},
		{"kumquatd_synth_cache_misses", "Cumulative full synthesis runs.", float64(st.Misses)},
	}
	if s.clu != nil {
		cs := s.clu.TotalStats()
		gauges = append(gauges,
			gauge{"kumquatd_cluster_workers", "Configured cluster workers.", float64(len(s.clu.Workers()))},
			gauge{"kumquatd_cluster_healthy", "Workers currently in the rotation.", float64(s.clu.Healthy())},
			gauge{"kumquatd_cluster_shards", "Cumulative shards dispatched.", float64(cs.Shards)},
			gauge{"kumquatd_cluster_remote_runs", "Cumulative shards resolved on workers.", float64(cs.RemoteRuns)},
			gauge{"kumquatd_cluster_local_runs", "Cumulative shards degraded to local execution.", float64(cs.LocalRuns)},
			gauge{"kumquatd_cluster_retries", "Cumulative shard re-dispatches after failures.", float64(cs.Retries)},
			gauge{"kumquatd_cluster_speculations", "Cumulative speculative straggler re-dispatches.", float64(cs.Speculations)},
			gauge{"kumquatd_cluster_speculation_wins", "Speculative duplicates whose result arrived first.", float64(cs.SpeculationWins)},
			gauge{"kumquatd_cluster_ejections", "Cumulative worker ejections from the rotation.", float64(cs.Ejections)},
			gauge{"kumquatd_cluster_readmissions", "Cumulative probe-gated worker re-admissions.", float64(cs.Readmissions)},
		)
	}
	s.met.write(w, gauges, s.clu != nil)
}

// handleTrace serves one recorded trace from the ring: Chrome
// trace-event JSON by default (openable in chrome://tracing/Perfetto),
// the raw obs.TraceData with ?format=raw.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.trc == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (TraceBuffer < 0)")
		return
	}
	id, err := obs.ParseTraceID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad trace id: %v", err)
		return
	}
	td, ok := s.trc.Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, "trace %s not found (evicted or never recorded)", id)
		return
	}
	if r.URL.Query().Get("format") == "raw" {
		writeJSON(w, http.StatusOK, td)
		return
	}
	data, err := td.ChromeTrace()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "exporting trace: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // client disconnects surface elsewhere
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client disconnects surface elsewhere
}

// writeError writes the standard JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// ms converts a duration to milliseconds with microsecond resolution.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
