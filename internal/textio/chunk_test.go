package textio

import (
	"strings"
	"testing"
)

// TestChunkOffsetsMatchChunkLines cross-checks the zero-copy offset
// splitter against the string splitter on a range of shapes and k values.
func TestChunkOffsetsMatchChunkLines(t *testing.T) {
	inputs := []string{
		"",
		"a",
		"\n",
		"a\n",
		"a\nb\nc\nd\ne\n",
		"one line no terminator",
		"first\nsecond\nthird, unterminated",
		strings.Repeat("x\n", 100),
		strings.Repeat("a longer line of text here\n", 37) + "tail",
	}
	for _, s := range inputs {
		for _, k := range []int{1, 2, 3, 4, 7, 16, 64} {
			want := ChunkLines(s, k)
			offs := ChunkOffsets([]byte(s), k)
			if len(offs) != max(k, 1)+1 {
				t.Fatalf("ChunkOffsets(%q, %d): %d offsets, want %d", s, k, len(offs), max(k, 1)+1)
			}
			if offs[0] != 0 || offs[len(offs)-1] != len(s) {
				t.Fatalf("ChunkOffsets(%q, %d) = %v: bad endpoints", s, k, offs)
			}
			for i, w := range want {
				got := s[offs[i]:offs[i+1]]
				if got != w {
					t.Errorf("ChunkOffsets(%q, %d) chunk %d = %q, want %q", s, k, i, got, w)
				}
			}
		}
	}
}

// TestChunkViewsBoundaries pins the edge cases: empty input, input without
// a trailing newline, and k larger than the line count.
func TestChunkViewsBoundaries(t *testing.T) {
	// Empty input: k empty views.
	views := ChunkViews(nil, 4)
	if len(views) != 4 {
		t.Fatalf("ChunkViews(nil, 4) = %d views", len(views))
	}
	for i, v := range views {
		if len(v) != 0 {
			t.Errorf("empty input view %d = %q", i, v)
		}
	}

	// k <= 1: a single view of the whole input.
	views = ChunkViews([]byte("a\nb\n"), 1)
	if len(views) != 1 || string(views[0]) != "a\nb\n" {
		t.Errorf("ChunkViews(k=1) = %q", views)
	}
	views = ChunkViews([]byte("a\nb\n"), 0)
	if len(views) != 1 || string(views[0]) != "a\nb\n" {
		t.Errorf("ChunkViews(k=0) = %q", views)
	}

	// No trailing newline: the unterminated tail stays in the last
	// nonempty view and concatenation round-trips.
	data := []byte("alpha\nbeta\ngamma")
	views = ChunkViews(data, 3)
	var cat string
	for _, v := range views {
		cat += string(v)
	}
	if cat != string(data) {
		t.Errorf("concat of views = %q, want %q", cat, data)
	}

	// k > lines: trailing views must be empty, concatenation preserved.
	data = []byte("B\na\n")
	views = ChunkViews(data, 64)
	if len(views) != 64 {
		t.Fatalf("ChunkViews(2 lines, 64) = %d views", len(views))
	}
	cat = ""
	nonempty := 0
	for _, v := range views {
		cat += string(v)
		if len(v) > 0 {
			nonempty++
		}
	}
	if cat != "B\na\n" || nonempty > 2 {
		t.Errorf("k>lines: concat=%q nonempty=%d", cat, nonempty)
	}

	// Every view is line-aligned: a nonempty view that is followed by a
	// nonempty view must end in '\n'.
	data = []byte(strings.Repeat("line of words\n", 50))
	views = ChunkViews(data, 8)
	for i, v := range views[:len(views)-1] {
		if len(v) > 0 && v[len(v)-1] != '\n' {
			t.Errorf("view %d not line-aligned: %q", i, v)
		}
	}
}

// TestChunkViewsZeroCopy verifies the views alias the input buffer rather
// than copying it.
func TestChunkViewsZeroCopy(t *testing.T) {
	data := []byte("aa\nbb\ncc\ndd\n")
	views := ChunkViews(data, 2)
	if len(views) != 2 || len(views[0]) == 0 {
		t.Fatalf("unexpected views %q", views)
	}
	data[0] = 'Z'
	if views[0][0] != 'Z' {
		t.Error("ChunkViews copied the buffer; views must alias the input")
	}
}

// TestView pins the no-copy string view helper.
func TestView(t *testing.T) {
	if got := View(nil); got != "" {
		t.Errorf("View(nil) = %q", got)
	}
	b := []byte("hello\n")
	if got := View(b); got != "hello\n" {
		t.Errorf("View = %q", got)
	}
	if got := View(b[:0]); got != "" {
		t.Errorf("View(empty) = %q", got)
	}
}
