// Package textio provides the stream and string utilities that underpin the
// KumQuat combiner DSL semantics and the parallel pipeline splitter.
//
// Terminology follows the paper: a stream is a string that ends with a
// newline character (Definition 3.1); streams are structured as lines
// separated by '\n', lines as words separated by ' ', and so on.
package textio

import (
	"bytes"
	"strings"
	"unsafe"
)

// IsStream reports whether s is a stream per Definition 3.1: a string that
// ends with a newline character. The empty string is not a stream.
func IsStream(s string) bool {
	return len(s) > 0 && s[len(s)-1] == '\n'
}

// EnsureStream appends a trailing newline if s is nonempty and lacks one.
// The empty string stays empty.
func EnsureStream(s string) string {
	if s == "" || IsStream(s) {
		return s
	}
	return s + "\n"
}

// Lines splits a stream into its lines, without terminators. A trailing
// newline does not produce an empty final line: Lines("a\nb\n") is
// ["a", "b"], and Lines("\n") is [""]. Lines("") is nil.
func Lines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// JoinLines is the inverse of Lines: it joins lines with '\n' and appends a
// trailing newline. JoinLines(nil) is "".
func JoinLines(lines []string) string {
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

// SplitFirst splits s at the first occurrence of delimiter d, returning the
// head (before d) and tail (after d). ok is false when d does not occur,
// in which case head is s and tail is "".
//
// This is the DSL semantics' splitFirst: for "a,b,c" with d="," it returns
// ("a", "b,c", true).
func SplitFirst(d byte, s string) (head, tail string, ok bool) {
	i := strings.IndexByte(s, d)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+1:], true
}

// SplitLast splits s at the last occurrence of delimiter d, returning the
// prefix before d and the element after d. ok is false when d does not
// occur, in which case last is s and init is "".
func SplitLast(d byte, s string) (init, last string, ok bool) {
	i := strings.LastIndexByte(s, d)
	if i < 0 {
		return "", s, false
	}
	return s[:i], s[i+1:], true
}

// SplitFirstLine splits a stream into its first line (without terminator)
// and the remaining stream. For "a\nb\n" it returns ("a", "b\n").
// For a single-line stream "a\n" it returns ("a", "").
// ok is false when y contains no newline at all.
func SplitFirstLine(y string) (line, rest string, ok bool) {
	i := strings.IndexByte(y, '\n')
	if i < 0 {
		return y, "", false
	}
	return y[:i], y[i+1:], true
}

// SplitLastLine splits a stream into everything before its last line and the
// last line (without terminator). For "a\nb\n" it returns ("a\n", "b").
// For a single-line stream "b\n" it returns ("", "b"). ok is false when y
// does not end with a newline (so there is no well-formed last line).
func SplitLastLine(y string) (rest, line string, ok bool) {
	if !IsStream(y) {
		return "", y, false
	}
	body := y[:len(y)-1]
	i := strings.LastIndexByte(body, '\n')
	if i < 0 {
		return "", body, true
	}
	return y[:i+1], body[i+1:], true
}

// SplitLastNonemptyLine returns the last nonempty line of stream y, together
// with the prefix of y up to and including that line's terminator boundary
// split point. ok is false when y has no nonempty line.
//
// Used by the offset operator, whose anchor is the last line of y1 that
// actually carries a value.
func SplitLastNonemptyLine(y string) (line string, ok bool) {
	lines := Lines(y)
	for i := len(lines) - 1; i >= 0; i-- {
		if lines[i] != "" {
			return lines[i], true
		}
	}
	return "", false
}

// PadKind identifies the flavour of left padding on a formatted table line.
type PadKind int

const (
	// PadNone marks a line with no leading padding.
	PadNone PadKind = iota
	// PadSpaces marks a line padded with one or more leading spaces.
	PadSpaces
	// PadTab marks a line padded with a single leading tab.
	PadTab
)

// Pad describes the left padding removed from a table line by DelPad, with
// enough information for AddPad to restore column alignment. Width is the
// total width (padding + first field) of the original line, which AddPad
// preserves when re-padding a new first field.
type Pad struct {
	Kind  PadKind
	Count int // number of pad characters removed
	Width int // len(padding) + len(first field) at removal time; 0 if unknown
}

// DelPad removes leading spaces (or a single leading tab) from s, returning
// the removed-padding descriptor and the remaining string. This is the DSL
// semantics' delPad. A line with no leading whitespace yields PadNone.
func DelPad(s string) (Pad, string) {
	if strings.HasPrefix(s, "\t") {
		return Pad{Kind: PadTab, Count: 1}, s[1:]
	}
	n := 0
	for n < len(s) && s[n] == ' ' {
		n++
	}
	if n == 0 {
		return Pad{}, s
	}
	return Pad{Kind: PadSpaces, Count: n}, s[n:]
}

// AddPad re-inserts padding before field so that the padded field occupies
// the same total width as the original (pad + original first field) when the
// padding was spaces; a tab pad is restored verbatim. If the new field is
// at least as wide as the original total width, no padding is added —
// matching GNU uniq -c's "%7d" behaviour where wide counts outgrow the
// column. This is the DSL semantics' addPad/calcPad pair.
func AddPad(p Pad, field string) string {
	switch p.Kind {
	case PadTab:
		return "\t" + field
	case PadSpaces:
		pad := p.Width - len(field)
		if p.Width == 0 { // unknown target width: restore original count
			pad = p.Count
		}
		if pad < 0 {
			pad = 0
		}
		return strings.Repeat(" ", pad) + field
	default:
		return field
	}
}

// FieldPad computes the Pad for a table line whose first field is delimited
// by d: it removes the padding, splits off the first field, and records the
// total (pad+field) width needed to re-align a replacement field.
// ok is false when the deformatted line does not contain d.
func FieldPad(d byte, line string) (p Pad, head, tail string, ok bool) {
	p, rest := DelPad(line)
	head, tail, ok = SplitFirst(d, rest)
	if !ok {
		return p, head, tail, false
	}
	p.Width = p.Count + len(head)
	return p, head, tail, true
}

// CountByte counts occurrences of d in s (Definition B.10's C(d, y)).
// IndexByte-driven so no one-byte needle string is materialized per call
// (wc -l and xargs wc call this once per multi-GB stream or per file).
func CountByte(d byte, s string) int {
	n := 0
	for i := 0; i < len(s); {
		j := strings.IndexByte(s[i:], d)
		if j < 0 {
			break
		}
		n++
		i += j + 1
	}
	return n
}

// ChunkOffsets computes the k-way line-aligned split of data as k+1 byte
// offsets: chunk i is data[offs[i]:offs[i+1]]. Offsets are monotonically
// nondecreasing, offs[0] == 0 and offs[k] == len(data), and every interior
// offset sits immediately after a '\n'. Chunks are balanced by byte count:
// each split point is the first line boundary at or after the ideal byte
// offset. When data has fewer lines than k, trailing chunks are empty
// (consecutive equal offsets).
//
// This is the zero-copy core of the pipeline input splitter: callers slice
// a single backing buffer instead of materializing per-chunk copies.
func ChunkOffsets(data []byte, k int) []int {
	return chunkOffsets(len(data), k, func(from int) int {
		return bytes.IndexByte(data[from:], '\n')
	})
}

// chunkOffsets is the shared split core behind ChunkOffsets and
// ChunkLines: n is the input length and index returns the position of the
// next '\n' at or after an offset, relative to that offset (-1 if none).
func chunkOffsets(n, k int, index func(from int) int) []int {
	if k <= 1 {
		return []int{0, n}
	}
	offs := make([]int, 1, k+1)
	start := 0
	for i := 0; i < k-1; i++ {
		target := start + (n-start)/(k-i)
		j := index(target)
		if j < 0 {
			break
		}
		cut := target + j + 1
		offs = append(offs, cut)
		start = cut
	}
	offs = append(offs, n)
	for len(offs) < k+1 {
		offs = append(offs, n)
	}
	return offs
}

// ChunkViews splits data into k line-aligned subslices that share data's
// backing array (no bytes are copied). The concatenation of the views
// equals data; trailing views are empty when data has fewer lines than k.
// Callers must not mutate data while the views are alive.
//
// This is the []byte face of the splitter for byte-buffer callers; the
// executor splits its materialized streams through ChunkLines, whose
// substrings are the same zero-copy views over the same offsets core.
func ChunkViews(data []byte, k int) [][]byte {
	offs := ChunkOffsets(data, k)
	views := make([][]byte, len(offs)-1)
	for i := range views {
		views[i] = data[offs[i]:offs[i+1]]
	}
	return views
}

// View returns b's bytes as a string without copying. The caller must
// guarantee b is never mutated afterwards — the executor upholds this by
// treating stage input buffers as immutable once chunked.
func View(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// ChunkLines splits stream s into k line-aligned substreams whose
// concatenation equals s. Chunks are balanced by byte count: each split
// point is the first line boundary at or after the ideal byte offset.
// Fewer than k nonempty chunks may be returned when s has fewer lines than
// k; trailing chunks are then empty strings so that len(result) == k.
//
// The substrings share s's backing array (Go substring slicing does not
// copy) and come from the same split core as ChunkOffsets/ChunkViews, so
// the string and []byte splitters always agree.
func ChunkLines(s string, k int) []string {
	offs := chunkOffsets(len(s), k, func(from int) int {
		return strings.IndexByte(s[from:], '\n')
	})
	chunks := make([]string, len(offs)-1)
	for i := range chunks {
		chunks[i] = s[offs[i]:offs[i+1]]
	}
	return chunks
}

// AllDigits reports whether s is a nonempty string of ASCII digits
// (the domain L(add) = [0-9]+).
func AllDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
