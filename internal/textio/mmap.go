package textio

import (
	"os"
	"sync/atomic"
)

// Mapping is a read-only byte view of a file's contents: an OS memory
// mapping where the platform supports one, or a buffer the file was read
// into otherwise (pipes, empty files, non-mmap platforms). Either way
// Bytes and View are stable for the life of the Mapping, so chunking a
// mapped input is pure pointer arithmetic — no copy of the corpus is
// ever made.
//
// Safety contract: the file must not be modified while mapped. A mapped
// file is aliased memory, so an external writer mutating it in place
// changes the bytes under a running pipeline (outputs become undefined,
// though memory-safe), and truncating it below the mapped length can
// deliver SIGBUS on access. KumQuat therefore treats mapped inputs as
// immutable snapshots: callers own the choice of mapping only files
// nothing else writes, and the fallback (read-into-buffer) path is the
// escape hatch when that cannot be guaranteed. Close unmaps; the caller
// must ensure no Bytes/View slices (or LineSeqs over them) are used
// afterwards — the FS layer upholds this by keeping every registered
// mapping alive until the environment itself is closed.
type Mapping struct {
	data   []byte
	mapped bool
	closed atomic.Bool
}

// Bytes returns the mapped contents. The slice must not be mutated and
// must not be used after Close.
func (m *Mapping) Bytes() []byte { return m.data }

// View returns the mapped contents as a zero-copy string, under the
// same lifetime rules as Bytes.
func (m *Mapping) View() string { return View(m.data) }

// Len returns the mapped length in bytes.
func (m *Mapping) Len() int { return len(m.data) }

// Mapped reports whether the contents are an OS memory mapping (true)
// or a read-into-buffer fallback (false).
func (m *Mapping) Mapped() bool { return m.mapped }

// Close releases the mapping. Closing a fallback buffer is a no-op
// beyond dropping the reference; Close is idempotent.
func (m *Mapping) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	if !m.mapped {
		m.data = nil
		return nil
	}
	data := m.data
	m.data = nil
	return munmap(data)
}

// MapFile opens path read-only as a Mapping: memory-mapped when the
// platform supports it and the file is a nonempty regular file, read
// into a buffer otherwise. Empty files yield an empty fallback Mapping
// (zero-length mmap is an error on most platforms, and there is nothing
// to share).
func MapFile(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if mmapSupported && st.Mode().IsRegular() && st.Size() > 0 {
		if data, merr := mmapFile(f, int(st.Size())); merr == nil {
			return &Mapping{data: data, mapped: true}, nil
		}
		// Mapping failed (exotic filesystem, size race): fall through to
		// the plain read below rather than surfacing an mmap-only error.
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data}, nil
}
