//go:build !unix

package textio

import "os"

// mmapSupported reports platform mmap availability (false here: MapFile
// always takes the read-into-buffer fallback).
const mmapSupported = false

// mmapFile is never called when mmapSupported is false.
func mmapFile(_ *os.File, _ int) ([]byte, error) {
	return nil, os.ErrInvalid
}

// munmap is never called when mmapSupported is false.
func munmap(_ []byte) error { return nil }
