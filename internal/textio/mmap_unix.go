//go:build unix

package textio

import (
	"os"
	"syscall"
)

// mmapSupported reports platform mmap availability (true on unix).
const mmapSupported = true

// mmapFile maps size bytes of f read-only and privately: writers to the
// mapping (there are none — the data plane treats inputs as immutable)
// could never reach the file, and the kernel shares pages with the page
// cache, so k chunk views cost no corpus copies.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

// munmap releases a mapping produced by mmapFile.
func munmap(data []byte) error {
	return syscall.Munmap(data)
}
