package textio

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// This file is the shared field-splitting core of the data plane: one
// branch-light scalar kernel behind every per-line field walk in the
// command substrate (cut -d, awk $N, sort -k, xargs, wc -w, fmt). The
// kernel iterates fields through a stack-allocated cursor instead of
// materializing a []string per line, so the steady-state cost of field
// access is zero heap allocations; callers that genuinely need a slice
// reuse one through AppendFields.

// asciiSpace marks the ASCII whitespace bytes strings.Fields splits on.
var asciiSpace = [256]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// FieldSeq is a zero-allocation cursor over the fields of one line.
// The zero value is exhausted; construct with Fields or FieldsByte.
// Field boundaries match strings.Fields (runs of Unicode whitespace,
// no empty fields) in whitespace mode and strings.Split (every
// delimiter byte is a boundary, empty fields preserved) in
// byte-delimiter mode.
type FieldSeq struct {
	s     string
	pos   int
	delim byte
	byDel bool
}

// Fields returns a cursor over the whitespace-separated fields of s,
// with strings.Fields semantics: fields are maximal runs of
// non-whitespace, and leading/trailing/repeated whitespace produces no
// empty fields.
func Fields(s string) FieldSeq { return FieldSeq{s: s} }

// FieldsByte returns a cursor over the d-separated fields of s, with
// strings.Split semantics: n delimiters produce n+1 fields and empty
// fields are preserved ("a,,b" has fields "a", "", "b").
func FieldsByte(s string, d byte) FieldSeq { return FieldSeq{s: s, delim: d, byDel: true} }

// Next returns the next field and true, or "" and false when the line
// is exhausted. The returned string is a zero-copy substring of the
// line.
func (f *FieldSeq) Next() (string, bool) {
	if f.byDel {
		if f.pos > len(f.s) {
			return "", false
		}
		i := f.pos
		j := strings.IndexByte(f.s[i:], f.delim)
		if j < 0 {
			f.pos = len(f.s) + 1
			return f.s[i:], true
		}
		f.pos = i + j + 1
		return f.s[i : i+j], true
	}
	s := f.s
	i := skipSpace(s, f.pos)
	if i >= len(s) {
		f.pos = i
		return "", false
	}
	end := fieldEnd(s, i)
	f.pos = end
	return s[i:end], true
}

// skipSpace advances past whitespace starting at i.
func skipSpace(s string, i int) int {
	for i < len(s) {
		c := s[i]
		if c < utf8.RuneSelf {
			if !asciiSpace[c] {
				return i
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if !unicode.IsSpace(r) {
			return i
		}
		i += size
	}
	return i
}

// fieldEnd advances from the start of a field to one past its last byte.
func fieldEnd(s string, i int) int {
	for i < len(s) {
		c := s[i]
		if c < utf8.RuneSelf {
			if asciiSpace[c] {
				return i
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if unicode.IsSpace(r) {
			return i
		}
		i += size
	}
	return i
}

// CountFields counts the whitespace-separated fields of s without
// materializing them — wc -w over a stream is one pass and zero
// allocations.
func CountFields(s string) int {
	n := 0
	for i := 0; i < len(s); {
		i = skipSpace(s, i)
		if i >= len(s) {
			break
		}
		n++
		i = fieldEnd(s, i)
	}
	return n
}

// Field returns the n-th (1-based) whitespace-separated field of s, or
// "" when s has fewer than n fields. Zero allocations — this is the
// sort-key extraction kernel, called once per comparison.
func Field(s string, n int) string {
	fs := Fields(s)
	for {
		f, ok := fs.Next()
		if !ok {
			return ""
		}
		if n--; n == 0 {
			return f
		}
	}
}

// AppendFields appends the whitespace-separated fields of s to dst and
// returns the extended slice, reusing dst's capacity — the kernel's
// face for callers that need indexed field access (awk's $N) and can
// recycle the slice across lines.
func AppendFields(dst []string, s string) []string {
	fs := Fields(s)
	for {
		f, ok := fs.Next()
		if !ok {
			return dst
		}
		dst = append(dst, f)
	}
}
