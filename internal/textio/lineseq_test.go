package textio

import (
	"math/rand"
	"strings"
	"testing"
)

// TestScanLinesMatchesLines: LineSeq indexes exactly the lines Lines
// splits, for terminated, unterminated, empty-line and empty inputs.
func TestScanLinesMatchesLines(t *testing.T) {
	cases := []string{
		"", "\n", "a\n", "a", "a\nb\n", "a\nb", "\n\n", "a\n\nb\n",
		"one two\nthree\n", strings.Repeat("x\n", 100),
	}
	for _, s := range cases {
		ls := ScanLines(s)
		want := Lines(s)
		if ls.Len() != len(want) {
			t.Errorf("ScanLines(%q).Len() = %d, want %d", s, ls.Len(), len(want))
			continue
		}
		for i := range want {
			if got := ls.Line(i); got != want[i] {
				t.Errorf("ScanLines(%q).Line(%d) = %q, want %q", s, i, got, want[i])
			}
		}
		if ls.Str() != s {
			t.Errorf("ScanLines(%q).Str() = %q", s, ls.Str())
		}
	}
}

// TestLineSeqChunkMatchesChunkLines: Chunk must agree byte-for-byte with
// the scanning splitter at every k on random streams.
func TestLineSeqChunkMatchesChunkLines(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var b strings.Builder
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			b.WriteString(strings.Repeat("w", rng.Intn(8)))
			b.WriteByte('\n')
		}
		if rng.Intn(3) == 0 {
			b.WriteString("tail-no-newline")
		}
		s := b.String()
		ls := ScanLines(s)
		for _, k := range []int{1, 2, 3, 4, 7, 16} {
			got := ls.Chunk(k)
			want := ChunkLines(s, k)
			if len(got) != len(want) {
				t.Fatalf("Chunk(%d) of %q: %d chunks, want %d", k, s, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Chunk(%d) of %q: chunk %d = %q, want %q", k, s, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBuilderPoolRoundTrip: a pooled builder comes back empty and its
// contents survive as an independent string.
func TestBuilderPoolRoundTrip(t *testing.T) {
	b := GetBuilder()
	b.WriteString("hello\n")
	s := b.String()
	PutBuilder(b)
	if s != "hello\n" {
		t.Errorf("pooled builder contents = %q", s)
	}
	b2 := GetBuilder()
	if b2.Len() != 0 {
		t.Errorf("reused builder not reset: %d bytes", b2.Len())
	}
	PutBuilder(b2)
}
