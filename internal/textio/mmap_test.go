package textio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMapFileMatchesReadFile: whatever path MapFile takes — the OS
// mapping for nonempty regular files, the read-into-buffer fallback for
// empty ones — the bytes and the derived line index must be identical to
// a plain os.ReadFile. Covers empty files, a lone newline, unterminated
// final lines, and a corpus spanning several 4 KiB pages with lines
// straddling the page boundaries.
func TestMapFileMatchesReadFile(t *testing.T) {
	pagey := strings.Repeat(strings.Repeat("x", 1500)+"\n", 12) // lines straddle 4096-byte pages
	cases := map[string]string{
		"empty":       "",
		"newline":     "\n",
		"terminated":  "a\nbb\nccc\n",
		"no-trailing": "a\nbb\nccc",
		"pagey":       pagey,
		"pagey-tail":  pagey + "tail-without-newline",
	}
	for name, content := range cases {
		path := writeTemp(t, name+".txt", content)
		m, err := MapFile(path)
		if err != nil {
			t.Fatalf("%s: MapFile: %v", name, err)
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if m.View() != string(want) {
			t.Errorf("%s: View() diverges from ReadFile (%d vs %d bytes)", name, m.Len(), len(want))
		}
		if m.Len() != len(want) {
			t.Errorf("%s: Len() = %d, want %d", name, m.Len(), len(want))
		}
		// The universal indexed view over the mapping must agree with a
		// scan of the copied contents line for line.
		seq := ScanBytes(m.Bytes())
		wantLines := Lines(string(want))
		if seq.Len() != len(wantLines) {
			t.Errorf("%s: ScanBytes.Len() = %d, want %d", name, seq.Len(), len(wantLines))
		} else {
			for i := range wantLines {
				if seq.Line(i) != wantLines[i] {
					t.Errorf("%s: line %d = %q, want %q", name, i, seq.Line(i), wantLines[i])
				}
			}
		}
		if content == "" && m.Mapped() {
			t.Errorf("%s: empty file must use the fallback buffer", name)
		}
		if err := m.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

// TestMappingSurvivesUnlink: the OS keeps a mapped file's pages alive
// after the path is unlinked — the property that lets the FS retire
// mappings without tracking the host file's lifetime. (This is also the
// boundary of the mutation contract: the mapping is a snapshot of the
// inode, not of the name.)
func TestMappingSurvivesUnlink(t *testing.T) {
	content := strings.Repeat("line of mapped text\n", 1000)
	path := writeTemp(t, "unlinked.txt", content)
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if m.View() != content {
		t.Error("mapping diverged after unlink")
	}
}

// TestMappingMutationContract documents the safety contract: the mapped
// bytes are a live alias of the file, so KumQuat must copy anything it
// needs to survive an external writer. strings.Clone of a view detaches
// it; the test pins that the clone — not the view — is the durable copy.
func TestMappingMutationContract(t *testing.T) {
	path := writeTemp(t, "mutable.txt", "before\n")
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	snapshot := strings.Clone(m.View())
	// Rewriting the path replaces the inode (os.WriteFile truncates and
	// writes a new file only with O_TRUNC on the same inode — so mutate
	// via the same-length in-place write the contract warns about is not
	// attempted here; aliasing behaviour is platform-defined). The clone
	// must be immune regardless of what the view now shows.
	if err := os.WriteFile(path, []byte("after!\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if snapshot != "before\n" {
		t.Errorf("cloned snapshot changed: %q", snapshot)
	}
}

// TestMappingCloseIdempotent: double Close must be a no-op.
func TestMappingCloseIdempotent(t *testing.T) {
	path := writeTemp(t, "close.txt", "x\n")
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestMapFileMissing: a nonexistent path errors like os.Open.
func TestMapFileMissing(t *testing.T) {
	if _, err := MapFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("MapFile on missing path succeeded")
	}
}
