package textio

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestIsStream(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"", false},
		{"\n", true},
		{"a", false},
		{"a\n", true},
		{"a\nb\n", true},
		{"a\nb", false},
	}
	for _, c := range cases {
		if got := IsStream(c.in); got != c.want {
			t.Errorf("IsStream(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEnsureStream(t *testing.T) {
	if got := EnsureStream(""); got != "" {
		t.Errorf("EnsureStream(\"\") = %q", got)
	}
	if got := EnsureStream("a"); got != "a\n" {
		t.Errorf("EnsureStream(\"a\") = %q", got)
	}
	if got := EnsureStream("a\n"); got != "a\n" {
		t.Errorf("EnsureStream(\"a\\n\") = %q", got)
	}
}

func TestLines(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"\n", []string{""}},
		{"a\n", []string{"a"}},
		{"a\nb\n", []string{"a", "b"}},
		{"a\nb", []string{"a", "b"}},
		{"a\n\nb\n", []string{"a", "", "b"}},
	}
	for _, c := range cases {
		got := Lines(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Lines(%q) = %q, want %q", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Lines(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestJoinLinesRoundTrip(t *testing.T) {
	f := func(lines []string) bool {
		for i, l := range lines {
			lines[i] = strings.ReplaceAll(l, "\n", "")
		}
		s := JoinLines(lines)
		back := Lines(s)
		if len(back) != len(lines) {
			return false
		}
		for i := range back {
			if back[i] != lines[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitFirst(t *testing.T) {
	h, tl, ok := SplitFirst(',', "a,b,c")
	if !ok || h != "a" || tl != "b,c" {
		t.Errorf("SplitFirst = %q %q %v", h, tl, ok)
	}
	h, tl, ok = SplitFirst(',', "abc")
	if ok || h != "abc" || tl != "" {
		t.Errorf("SplitFirst no-delim = %q %q %v", h, tl, ok)
	}
	h, tl, ok = SplitFirst(',', ",x")
	if !ok || h != "" || tl != "x" {
		t.Errorf("SplitFirst leading = %q %q %v", h, tl, ok)
	}
}

func TestSplitLast(t *testing.T) {
	init, last, ok := SplitLast(',', "a,b,c")
	if !ok || init != "a,b" || last != "c" {
		t.Errorf("SplitLast = %q %q %v", init, last, ok)
	}
	init, last, ok = SplitLast(',', "abc")
	if ok || last != "abc" || init != "" {
		t.Errorf("SplitLast no-delim = %q %q %v", init, last, ok)
	}
}

func TestSplitFirstLine(t *testing.T) {
	l, rest, ok := SplitFirstLine("a\nb\nc\n")
	if !ok || l != "a" || rest != "b\nc\n" {
		t.Errorf("SplitFirstLine = %q %q %v", l, rest, ok)
	}
	l, rest, ok = SplitFirstLine("a\n")
	if !ok || l != "a" || rest != "" {
		t.Errorf("SplitFirstLine single = %q %q %v", l, rest, ok)
	}
	_, _, ok = SplitFirstLine("a")
	if ok {
		t.Error("SplitFirstLine on non-stream should fail")
	}
}

func TestSplitLastLine(t *testing.T) {
	rest, l, ok := SplitLastLine("a\nb\nc\n")
	if !ok || rest != "a\nb\n" || l != "c" {
		t.Errorf("SplitLastLine = %q %q %v", rest, l, ok)
	}
	rest, l, ok = SplitLastLine("c\n")
	if !ok || rest != "" || l != "c" {
		t.Errorf("SplitLastLine single = %q %q %v", rest, l, ok)
	}
	_, _, ok = SplitLastLine("c")
	if ok {
		t.Error("SplitLastLine on non-stream should fail")
	}
	rest, l, ok = SplitLastLine("\n")
	if !ok || rest != "" || l != "" {
		t.Errorf("SplitLastLine newline = %q %q %v", rest, l, ok)
	}
}

func TestSplitLastLineReassembly(t *testing.T) {
	// rest ++ line ++ "\n" must reconstruct the stream.
	f := func(raw []string) bool {
		var lines []string
		for _, l := range raw {
			lines = append(lines, strings.ReplaceAll(l, "\n", ""))
		}
		if len(lines) == 0 {
			return true
		}
		y := JoinLines(lines)
		rest, l, ok := SplitLastLine(y)
		return ok && rest+l+"\n" == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitLastNonemptyLine(t *testing.T) {
	l, ok := SplitLastNonemptyLine("a\nb\n\n\n")
	if !ok || l != "b" {
		t.Errorf("SplitLastNonemptyLine = %q %v", l, ok)
	}
	_, ok = SplitLastNonemptyLine("\n\n")
	if ok {
		t.Error("all-empty stream should have no nonempty line")
	}
	l, ok = SplitLastNonemptyLine("only\n")
	if !ok || l != "only" {
		t.Errorf("SplitLastNonemptyLine single = %q %v", l, ok)
	}
}

func TestDelPadAddPad(t *testing.T) {
	p, rest := DelPad("    5 word")
	if p.Kind != PadSpaces || p.Count != 4 || rest != "5 word" {
		t.Errorf("DelPad spaces = %+v %q", p, rest)
	}
	p, rest = DelPad("\t5 word")
	if p.Kind != PadTab || rest != "5 word" {
		t.Errorf("DelPad tab = %+v %q", p, rest)
	}
	p, rest = DelPad("5 word")
	if p.Kind != PadNone || rest != "5 word" {
		t.Errorf("DelPad none = %+v %q", p, rest)
	}
}

func TestFieldPadAlignment(t *testing.T) {
	// GNU uniq -c emits "%7d " style lines: "      5 word".
	p, head, tail, ok := FieldPad(' ', "      5 word")
	if !ok || head != "5" || tail != "word" {
		t.Fatalf("FieldPad = %q %q %v", head, tail, ok)
	}
	// Re-padding a wider combined count keeps the 7-column alignment.
	if got := AddPad(p, "12"); got != "     12" {
		t.Errorf("AddPad(12) = %q", got)
	}
	if got := AddPad(p, "1234567890"); got != "1234567890" {
		t.Errorf("AddPad overflow = %q", got)
	}
	// Tab padding is restored verbatim.
	p2, _, _, ok := FieldPad(' ', "\t9 x y")
	if !ok {
		t.Fatal("FieldPad tab failed")
	}
	if got := AddPad(p2, "11"); got != "\t11" {
		t.Errorf("AddPad tab = %q", got)
	}
	// No padding stays unpadded.
	p3, _, _, _ := FieldPad(' ', "9 x")
	if got := AddPad(p3, "11"); got != "11" {
		t.Errorf("AddPad none = %q", got)
	}
}

func TestChunkLinesConcatInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		var b strings.Builder
		for i := 0; i < n; i++ {
			for j := rng.Intn(30); j > 0; j-- {
				b.WriteByte(byte('a' + rng.Intn(26)))
			}
			b.WriteByte('\n')
		}
		s := b.String()
		k := 1 + rng.Intn(20)
		chunks := ChunkLines(s, k)
		if k > 1 && len(chunks) != k {
			t.Fatalf("ChunkLines returned %d chunks, want %d", len(chunks), k)
		}
		if got := strings.Join(chunks, ""); got != s {
			t.Fatalf("concat of chunks != original (n=%d k=%d)", n, k)
		}
		for i, c := range chunks {
			if c != "" && !IsStream(c) {
				t.Fatalf("chunk %d is not a stream: %q", i, c)
			}
		}
	}
}

func TestChunkLinesBalance(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 1000; i++ {
		b.WriteString("0123456789\n")
	}
	chunks := ChunkLines(b.String(), 4)
	for i, c := range chunks {
		if len(c) < 2000 || len(c) > 3500 {
			t.Errorf("chunk %d badly balanced: %d bytes", i, len(c))
		}
	}
}

func TestCountByte(t *testing.T) {
	if CountByte(',', "a,b,,c") != 3 {
		t.Error("CountByte failed")
	}
	if CountByte('\n', "") != 0 {
		t.Error("CountByte empty failed")
	}
}

func TestAllDigits(t *testing.T) {
	if !AllDigits("0123456789") || AllDigits("") || AllDigits("12a") || AllDigits("-1") {
		t.Error("AllDigits misclassified")
	}
}
