package textio

import (
	"bytes"
	"sort"
	"strings"
	"sync"
)

// LineSeq is an indexed view of a stream's lines: the backing string plus
// one offset per line start. It exists so that code which walks the same
// stream repeatedly — sortedness checks, k-way merging, combiner domain
// checks — indexes it once instead of re-splitting it into a fresh
// []string on every pass. A LineSeq costs one []int allocation (half the
// memory of the equivalent []string headers) and its Line method returns
// zero-copy substrings of the backing string.
//
// Line boundaries follow Lines' semantics exactly: a trailing newline does
// not produce an empty final line, an unterminated final line is still a
// line, and the empty string has no lines.
type LineSeq struct {
	str string
	// offs holds each line's start offset plus one past-the-end sentinel:
	// line i is str[offs[i] : offs[i+1]-1]. For an unterminated final line
	// the sentinel is len(str)+1, as if the stream carried a virtual
	// trailing newline, which keeps the indexing formula uniform.
	offs []int
}

// ScanBytes indexes a byte-backed stream into a LineSeq without copying:
// the LineSeq's backing string is a zero-copy view of b, so b must not be
// mutated while the LineSeq (or any string derived from it) is alive.
// This is the ingest entry point for mmap-backed inputs.
func ScanBytes(b []byte) LineSeq {
	return ScanLines(View(b))
}

// ScanLines indexes stream s into a LineSeq in one pass.
func ScanLines(s string) LineSeq {
	if s == "" {
		return LineSeq{}
	}
	n := strings.Count(s, "\n")
	if s[len(s)-1] != '\n' {
		n++
	}
	offs := make([]int, 1, n+1)
	for i := 0; i < len(s); {
		j := strings.IndexByte(s[i:], '\n')
		if j < 0 {
			offs = append(offs, len(s)+1)
			break
		}
		i += j + 1
		offs = append(offs, i)
	}
	return LineSeq{str: s, offs: offs}
}

// Len returns the number of lines.
func (ls LineSeq) Len() int {
	if len(ls.offs) == 0 {
		return 0
	}
	return len(ls.offs) - 1
}

// Line returns line i without its terminator, as a zero-copy substring of
// the backing string.
func (ls LineSeq) Line(i int) string {
	end := ls.offs[i+1] - 1
	if end > len(ls.str) {
		end = len(ls.str)
	}
	return ls.str[ls.offs[i]:end]
}

// Str returns the backing stream.
func (ls LineSeq) Str() string { return ls.str }

// Chunk splits the indexed stream into k line-aligned substreams using the
// precomputed offsets — byte-identical to ChunkLines(ls.Str(), k) but with
// a binary search per split point instead of a byte scan.
func (ls LineSeq) Chunk(k int) []string {
	// Real split points are the offsets that sit immediately after a
	// newline: every interior offset, and the sentinel only when the final
	// line is terminated (sentinel == len(str), not len(str)+1).
	var bounds []int
	if len(ls.offs) > 0 {
		bounds = ls.offs[1:]
	}
	if n := len(bounds); n > 0 && bounds[n-1] > len(ls.str) {
		bounds = bounds[:n-1]
	}
	offs := chunkOffsets(len(ls.str), k, func(from int) int {
		i := sort.SearchInts(bounds, from+1)
		if i == len(bounds) {
			return -1
		}
		// chunkOffsets expects the newline's position relative to from;
		// bounds[i] is the offset just past it.
		return bounds[i] - 1 - from
	})
	chunks := make([]string, len(offs)-1)
	for i := range chunks {
		chunks[i] = ls.str[offs[i]:offs[i+1]]
	}
	return chunks
}

// builders pools scratch buffers for combine-output assembly. A pooled
// buffer keeps its grown capacity across combines, so a steady-state
// combine pays exactly one allocation — the final exact-sized String()
// copy — instead of the log-growth reallocation chain of a fresh builder.
var builders = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// GetBuilder returns an empty scratch buffer from the shared pool. Pair
// with PutBuilder once the buffer's contents have been copied out (e.g.
// via String()).
func GetBuilder() *bytes.Buffer {
	b := builders.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// PutBuilder returns buf to the pool. Oversized buffers are dropped so a
// single huge combine cannot pin its peak allocation forever.
func PutBuilder(buf *bytes.Buffer) {
	const maxPooled = 1 << 20
	if buf.Cap() > maxPooled {
		return
	}
	builders.Put(buf)
}
