package textio

import (
	"math/rand"
	"strings"
	"testing"
)

// collectFields drains a cursor into a slice (nil for no fields).
func collectFields(f FieldSeq) []string {
	var out []string
	for {
		s, ok := f.Next()
		if !ok {
			return out
		}
		out = append(out, s)
	}
}

// fieldAlphabet mixes ASCII words, every ASCII whitespace byte, a Unicode
// space (U+00A0, an IsSpace rune above RuneSelf), and multi-byte letters,
// so the kernel's fast path and its rune-decoding slow path both run.
var fieldAlphabet = []string{
	"a", "bc", "word", "0", "-", " ", "  ", "\t", "\n", "\v", "\f", "\r",
	" ", " ", "é", "東", "λ", ",", ",,",
}

func randLine(r *rand.Rand) string {
	var b strings.Builder
	n := r.Intn(12)
	for i := 0; i < n; i++ {
		b.WriteString(fieldAlphabet[r.Intn(len(fieldAlphabet))])
	}
	return b.String()
}

// TestFieldsMatchesStringsFields: the whitespace cursor must agree with
// strings.Fields on every input, including Unicode whitespace.
func TestFieldsMatchesStringsFields(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		s := randLine(r)
		got := collectFields(Fields(s))
		want := strings.Fields(s)
		if len(got) != len(want) {
			t.Fatalf("Fields(%q) = %q, want %q", s, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Fields(%q)[%d] = %q, want %q", s, i, got[i], want[i])
			}
		}
		if n := CountFields(s); n != len(want) {
			t.Fatalf("CountFields(%q) = %d, want %d", s, n, len(want))
		}
		for i, w := range want {
			if f := Field(s, i+1); f != w {
				t.Fatalf("Field(%q, %d) = %q, want %q", s, i+1, f, w)
			}
		}
		if f := Field(s, len(want)+1); f != "" {
			t.Fatalf("Field(%q, %d) = %q, want empty", s, len(want)+1, f)
		}
	}
}

// TestFieldsByteMatchesStringsSplit: the byte-delimiter cursor must agree
// with strings.Split — n delimiters, n+1 fields, empties preserved.
func TestFieldsByteMatchesStringsSplit(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	delims := []byte{',', ' ', '\t', ':', 'a'}
	for trial := 0; trial < 2000; trial++ {
		s := randLine(r)
		d := delims[r.Intn(len(delims))]
		got := collectFields(FieldsByte(s, d))
		want := strings.Split(s, string(d))
		if len(got) != len(want) {
			t.Fatalf("FieldsByte(%q, %q) = %q, want %q", s, d, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("FieldsByte(%q, %q)[%d] = %q, want %q", s, d, i, got[i], want[i])
			}
		}
	}
}

// TestAppendFieldsReusesCapacity: AppendFields must fill a recycled slice
// with the same fields strings.Fields produces, without allocating once
// capacity suffices.
func TestAppendFieldsReusesCapacity(t *testing.T) {
	lines := []string{"a b c", "  x\t\ty  ", "", "one", "α β γ"}
	buf := make([]string, 0, 8)
	for _, s := range lines {
		buf = AppendFields(buf[:0], s)
		want := strings.Fields(s)
		if len(buf) != len(want) {
			t.Fatalf("AppendFields(%q) = %q, want %q", s, buf, want)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("AppendFields(%q)[%d] = %q, want %q", s, i, buf[i], want[i])
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendFields(buf[:0], "one two three four")
	})
	if allocs != 0 {
		t.Errorf("AppendFields with capacity: %.1f allocs/op, want 0", allocs)
	}
}

// TestFieldKernelZeroAlloc: the cursor walk, CountFields and Field are
// the per-line hot path of cut/awk/sort -k/wc -w — they must not touch
// the heap.
func TestFieldKernelZeroAlloc(t *testing.T) {
	line := "the quick brown fox jumps over the lazy dog"
	csv := "alpha,beta,,gamma,delta"
	var sink int
	if allocs := testing.AllocsPerRun(100, func() {
		fs := Fields(line)
		for {
			f, ok := fs.Next()
			if !ok {
				break
			}
			sink += len(f)
		}
	}); allocs != 0 {
		t.Errorf("Fields iteration: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		fs := FieldsByte(csv, ',')
		for {
			f, ok := fs.Next()
			if !ok {
				break
			}
			sink += len(f)
		}
	}); allocs != 0 {
		t.Errorf("FieldsByte iteration: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { sink += CountFields(line) }); allocs != 0 {
		t.Errorf("CountFields: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { sink += len(Field(line, 5)) }); allocs != 0 {
		t.Errorf("Field: %.1f allocs/op, want 0", allocs)
	}
	_ = sink
}

// TestFieldsZeroCopy: returned fields must alias the line, not copies.
func TestFieldsZeroCopy(t *testing.T) {
	line := "one two three"
	fs := Fields(line)
	f, ok := fs.Next()
	if !ok || f != "one" {
		t.Fatalf("first field = %q, %v", f, ok)
	}
	// A zero-copy substring of line shares its backing; compare the
	// substring expression directly (same start offset ⇒ same pointer).
	if f != line[:3] {
		t.Fatalf("field %q is not the leading substring", f)
	}
}
