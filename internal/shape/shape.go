// Package shape implements KumQuat's input shapes and input generation
// (§3.2, Definitions 3.11–3.12): an input shape bounds three dimensions of a
// generated stream — lines per input, words per line, characters per word —
// each with a minimum count, maximum count, and a percentage of distinct
// elements. The synthesizer mutates shapes along the twelve directions of
// Algorithm 2 (three dimensions × {more/fewer elements, more/less varied})
// and follows the mutations that eliminate the most candidate combiners.
package shape

import (
	"math/rand"
	"sort"
	"strings"
)

// Config bounds one dimension of an input shape (Definition 3.11):
// the element count range [Min, Max] and the percentage (1–100) of distinct
// elements on that dimension.
type Config struct {
	Min, Max int
	Distinct int
}

// clamp keeps a config self-consistent after mutation.
func (c Config) clamp(minFloor int) Config {
	if c.Min < minFloor {
		c.Min = minFloor
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Distinct < 5 {
		c.Distinct = 5
	}
	if c.Distinct > 100 {
		c.Distinct = 100
	}
	return c
}

// Shape specifies the configurations for the three input dimensions.
type Shape struct {
	Lines, Words, Chars Config
}

// Seed is the predefined seed input shape Algorithm 1 starts from. Words
// start at minimum zero so empty lines occur from the first round: an empty
// line at the split boundary is the §3.2 counterexample that eliminates
// concat for squeeze-style commands (tr -cs).
func Seed() Shape {
	return Shape{
		Lines: Config{Min: 2, Max: 8, Distinct: 60},
		Words: Config{Min: 0, Max: 4, Distinct: 60},
		Chars: Config{Min: 1, Max: 5, Distinct: 60},
	}
}

// ForLiteral derives a seed shape whose line dimension straddles a numeric
// literal mined from the command (§3.2: for "sed 100q", KumQuat generates
// initial shapes where one dimension is close to 100).
func ForLiteral(n int) Shape {
	s := Seed()
	lo := n - 2
	if lo < 1 {
		lo = 1
	}
	s.Lines = Config{Min: lo, Max: n + 2, Distinct: 60}
	return s
}

// NumMutations is the number of shape mutations Algorithm 2 explores per
// iteration: three dimensions × four directions.
const NumMutations = 12

// Mutate returns the j-th mutation (0 ≤ j < NumMutations) of s:
// per dimension, more elements (double Max), fewer elements (halve Max),
// more varied (+30 distinct), less varied (−30 distinct).
func Mutate(s Shape, j int) Shape {
	dim, dir := j/4, j%4
	apply := func(c Config, floor int) Config {
		switch dir {
		case 0:
			c.Max *= 2
			c.Min = c.Max / 4
		case 1:
			c.Max /= 2
			if c.Min > c.Max {
				c.Min = c.Max
			}
		case 2:
			c.Distinct += 30
		case 3:
			c.Distinct -= 30
		}
		return c.clamp(floor)
	}
	switch dim {
	case 0:
		s.Lines = apply(s.Lines, 1)
	case 1:
		// Words may drop to zero: empty lines are the §3.2 counterexample
		// shape for tr -cs (consecutive newlines at the split boundary).
		s.Words = apply(s.Words, 0)
	default:
		s.Chars = apply(s.Chars, 1)
	}
	return s
}

// Generator produces random streams satisfying a shape. The dictionaries
// come from preprocessing (§3.2): WordDict holds strings matching mined
// regex/number literals, FileNames holds legal file names for xargs-style
// commands, and Sorted forces sorted output for comm-style commands.
type Generator struct {
	Rng       *rand.Rand
	WordDict  []string // mined literals; mixed in with probability DictBias
	FileNames []string // when non-nil, lines are file names
	Sorted    bool     // sort generated lines (comm-style commands)
	DictBias  float64  // probability of drawing a word from WordDict
}

// New returns a deterministic generator with the given seed.
func New(seed int64) *Generator {
	return &Generator{Rng: rand.New(rand.NewSource(seed)), DictBias: 0.5}
}

func (g *Generator) intBetween(c Config) int {
	if c.Max <= c.Min {
		return c.Min
	}
	return c.Min + g.Rng.Intn(c.Max-c.Min+1)
}

// poolSize converts a distinct percentage into a pool size ≥ 1.
func poolSize(n, distinct int) int {
	p := n * distinct / 100
	if p < 1 {
		p = 1
	}
	return p
}

// word generates one random word under the chars config, drawing characters
// from a restricted pool to honour the distinct percentage.
func (g *Generator) word(chars Config) string {
	n := g.intBetween(chars)
	if n == 0 {
		n = 1
	}
	pool := poolSize(26, chars.Distinct)
	var b strings.Builder
	for i := 0; i < n; i++ {
		// Letters only: digits and punctuation reach inputs exclusively via
		// mined literals in WordDict, reproducing the paper's preprocessing
		// story (numeric fields appear only when a command's literals are
		// mined — the reason Table 9's equality-gated awk is unsupported).
		if g.Rng.Intn(100) < 15 {
			b.WriteByte(byte('A' + g.Rng.Intn(pool)))
		} else {
			b.WriteByte(byte('a' + g.Rng.Intn(pool)))
		}
	}
	return b.String()
}

// line generates one line under the words/chars configs.
func (g *Generator) line(s Shape) string {
	n := g.intBetween(s.Words)
	words := make([]string, n)
	for i := range words {
		if len(g.WordDict) > 0 && g.Rng.Float64() < g.DictBias {
			words[i] = g.WordDict[g.Rng.Intn(len(g.WordDict))]
		} else {
			words[i] = g.word(s.Chars)
		}
	}
	return strings.Join(words, " ")
}

// Stream generates a stream satisfying the shape (Definition 3.12).
func (g *Generator) Stream(s Shape) string {
	n := g.intBetween(s.Lines)
	if n < 1 {
		n = 1
	}
	if g.FileNames != nil {
		// File-name mode: lines are names drawn from the legal set.
		lines := make([]string, n)
		for i := range lines {
			lines[i] = g.FileNames[g.Rng.Intn(len(g.FileNames))]
		}
		if g.Sorted {
			sort.Strings(lines)
		}
		return strings.Join(lines, "\n") + "\n"
	}
	// Build a pool of distinct lines, then sample with repetition: a
	// distinct percentage below 100 guarantees duplicate lines, which is
	// what exposes uniq-style boundary merging (§3.2).
	pool := make([]string, poolSize(n, s.Lines.Distinct))
	for i := range pool {
		pool[i] = g.line(s)
	}
	lines := make([]string, n)
	for i := range lines {
		lines[i] = pool[g.Rng.Intn(len(pool))]
	}
	if g.Sorted {
		sort.Strings(lines)
	}
	return strings.Join(lines, "\n") + "\n"
}

// StreamPair generates an input stream pair ⟨x1, x2⟩ with x1 ++ x2
// satisfying the shape (Definition 3.12): a full stream split at a random
// interior line boundary, so both halves are themselves streams.
func (g *Generator) StreamPair(s Shape) (x1, x2 string) {
	full := g.Stream(s)
	// Collect interior line-boundary offsets.
	var cuts []int
	for i := 0; i < len(full)-1; i++ {
		if full[i] == '\n' {
			cuts = append(cuts, i+1)
		}
	}
	if len(cuts) == 0 {
		// Single-line stream: append one more line so both halves exist.
		extra := g.line(s) + "\n"
		cuts = append(cuts, len(full))
		full += extra
	}
	cut := cuts[g.Rng.Intn(len(cuts))]
	return full[:cut], full[cut:]
}

// Pairs generates count input stream pairs for one shape.
func (g *Generator) Pairs(s Shape, count int) [][2]string {
	out := make([][2]string, count)
	for i := range out {
		x1, x2 := g.StreamPair(s)
		out[i] = [2]string{x1, x2}
	}
	return out
}
