package shape

import (
	"sort"
	"strings"
	"testing"

	"kumquat/internal/textio"
)

func TestSeedShape(t *testing.T) {
	s := Seed()
	if s.Lines.Min < 1 || s.Lines.Max < s.Lines.Min {
		t.Error("seed lines config inconsistent")
	}
}

func TestMutateAllDirections(t *testing.T) {
	s := Seed()
	seen := map[Shape]bool{}
	for j := 0; j < NumMutations; j++ {
		m := Mutate(s, j)
		if m == s {
			t.Errorf("mutation %d did not change the shape", j)
		}
		seen[m] = true
		// Clamps hold.
		for _, c := range []Config{m.Lines, m.Words, m.Chars} {
			if c.Max < c.Min || c.Distinct < 5 || c.Distinct > 100 {
				t.Errorf("mutation %d produced inconsistent config %+v", j, c)
			}
		}
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct mutations", len(seen))
	}
}

func TestMutateWordsCanReachZero(t *testing.T) {
	s := Seed()
	for i := 0; i < 6; i++ {
		s = Mutate(s, 4+1) // words, fewer elements
	}
	if s.Words.Min != 0 || s.Words.Max != 0 {
		t.Errorf("words should bottom out at 0, got %+v", s.Words)
	}
	// Zero-word shapes generate empty lines (tr -cs counterexamples).
	g := New(1)
	st := g.Stream(s)
	if !strings.Contains(st, "\n") {
		t.Error("stream must be newline terminated")
	}
	for _, l := range textio.Lines(st) {
		if l != "" {
			t.Errorf("zero-word shape generated nonempty line %q", l)
		}
	}
}

func TestStreamSatisfiesShape(t *testing.T) {
	g := New(42)
	s := Shape{
		Lines: Config{Min: 3, Max: 6, Distinct: 100},
		Words: Config{Min: 2, Max: 2, Distinct: 100},
		Chars: Config{Min: 1, Max: 4, Distinct: 100},
	}
	for trial := 0; trial < 100; trial++ {
		st := g.Stream(s)
		if !textio.IsStream(st) {
			t.Fatal("generated input is not a stream")
		}
		lines := textio.Lines(st)
		if len(lines) < 3 || len(lines) > 6 {
			t.Fatalf("line count %d outside [3,6]", len(lines))
		}
		for _, l := range lines {
			words := strings.Split(l, " ")
			if len(words) != 2 {
				t.Fatalf("word count %d != 2 in %q", len(words), l)
			}
			for _, w := range words {
				if len(w) < 1 || len(w) > 4 {
					t.Fatalf("word length %d outside [1,4]", len(w))
				}
			}
		}
	}
}

func TestLowDistinctProducesDuplicates(t *testing.T) {
	g := New(7)
	s := Shape{
		Lines: Config{Min: 40, Max: 40, Distinct: 10},
		Words: Config{Min: 1, Max: 2, Distinct: 50},
		Chars: Config{Min: 1, Max: 3, Distinct: 50},
	}
	st := g.Stream(s)
	lines := textio.Lines(st)
	uniq := map[string]bool{}
	for _, l := range lines {
		uniq[l] = true
	}
	if len(uniq) > 8 {
		t.Errorf("distinct=10%% of 40 lines should give ≤ ~4 distinct, got %d", len(uniq))
	}
}

func TestStreamPairConcatIsStream(t *testing.T) {
	g := New(3)
	s := Seed()
	for trial := 0; trial < 200; trial++ {
		x1, x2 := g.StreamPair(s)
		if x1 == "" || x2 == "" {
			t.Fatal("pair halves must be nonempty")
		}
		if !textio.IsStream(x1) || !textio.IsStream(x2) {
			t.Fatalf("halves must be streams: %q %q", x1, x2)
		}
	}
}

func TestSortedMode(t *testing.T) {
	g := New(9)
	g.Sorted = true
	st := g.Stream(Seed())
	lines := textio.Lines(st)
	if !sort.StringsAreSorted(lines) {
		t.Errorf("sorted mode produced unsorted stream %q", st)
	}
}

func TestFileNameMode(t *testing.T) {
	g := New(11)
	g.FileNames = []string{"a.txt", "b.txt", "c.txt"}
	st := g.Stream(Seed())
	for _, l := range textio.Lines(st) {
		if l != "a.txt" && l != "b.txt" && l != "c.txt" {
			t.Errorf("file-name mode generated %q", l)
		}
	}
}

func TestWordDictBias(t *testing.T) {
	g := New(13)
	g.WordDict = []string{"lightXlight"}
	g.DictBias = 1.0
	s := Seed()
	s.Words = Config{Min: 1, Max: 1, Distinct: 100}
	st := g.Stream(s)
	for _, l := range textio.Lines(st) {
		if l != "lightXlight" {
			t.Errorf("dict bias 1.0 should force dictionary words, got %q", l)
		}
	}
}

func TestForLiteral(t *testing.T) {
	s := ForLiteral(100)
	if s.Lines.Min > 100 || s.Lines.Max < 100 {
		t.Errorf("literal shape should straddle 100: %+v", s.Lines)
	}
	s1 := ForLiteral(1)
	if s1.Lines.Min < 1 {
		t.Errorf("literal shape floor: %+v", s1.Lines)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 20; i++ {
		if a.Stream(Seed()) != b.Stream(Seed()) {
			t.Fatal("same seed must generate identical streams")
		}
	}
}
