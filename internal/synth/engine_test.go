package synth

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"kumquat/internal/unix"
)

// resultFingerprint compresses everything observable about a synthesis
// result into a comparable form.
func resultFingerprint(t *testing.T, r *Result) string {
	t.Helper()
	fp := r.Spec + "|"
	for _, c := range r.Plausible {
		fp += c.String() + ";"
	}
	fp += "|"
	if r.Combiner != nil {
		fp += r.Combiner.String()
	}
	return fp
}

// TestParallelDeterminism pins the engine's core guarantee: the same seed
// yields byte-identical plausible sets, combiners, round counts and
// observation counts at 1, 4 and GOMAXPROCS workers.
func TestParallelDeterminism(t *testing.T) {
	specs := []string{"wc -l", "uniq -c", "sort -rn", "tail -n 1"}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, spec := range specs {
		var baseline *Result
		var baseFP string
		for _, w := range workerCounts {
			eng := New(unix.DefaultEnv(), Options{Seed: 7, Workers: w})
			res, err := eng.Synthesize(context.Background(), spec)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", spec, w, err)
			}
			if eng.Workers() != w {
				t.Fatalf("workers=%d: engine resolved %d", w, eng.Workers())
			}
			fp := resultFingerprint(t, res)
			if baseline == nil {
				baseline, baseFP = res, fp
				continue
			}
			if fp != baseFP {
				t.Errorf("%s workers=%d: result diverged:\n  got  %s\n  want %s",
					spec, w, fp, baseFP)
			}
			if res.Rounds != baseline.Rounds || res.Observations != baseline.Observations {
				t.Errorf("%s workers=%d: rounds/observations %d/%d, want %d/%d",
					spec, w, res.Rounds, res.Observations,
					baseline.Rounds, baseline.Observations)
			}
			if res.Space != baseline.Space {
				t.Errorf("%s workers=%d: space %+v, want %+v", spec, w, res.Space, baseline.Space)
			}
		}
	}
}

// TestCancellationMidRound cancels synthesis of the 110,444-candidate
// space mid-round and checks that the engine returns promptly with the
// best-so-far verdict, that the result is not cached, and that no worker
// goroutines leak (the test also runs under -race in CI).
func TestCancellationMidRound(t *testing.T) {
	for _, w := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			testCancellationMidRound(t, w)
		})
	}
}

func testCancellationMidRound(t *testing.T, workers int) {
	before := runtime.NumGoroutine()

	eng := New(unix.DefaultEnv(), Options{Seed: 1, Workers: workers})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Long enough to be mid-round on the 110k space, short enough
		// that the test stays fast.
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := eng.Synthesize(ctx, `cut -d ',' -f 1,2`)
	wall := time.Since(start)
	cancel()

	if !errors.Is(err, context.Canceled) {
		// The machine may be fast enough to finish inside 5ms; then the
		// run simply succeeded and there is nothing more to assert.
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		t.Skip("synthesis finished before cancellation")
	}
	if res == nil {
		t.Fatal("cancelled synthesis returned no best-so-far result")
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Errorf("res.Err = %v, want context.Canceled", res.Err)
	}
	if wall > 3*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", wall)
	}
	// A cancelled result must not poison the caches: a rerun must
	// synthesize from scratch and succeed.
	res2, err := eng.Synthesize(context.Background(), `cut -d ',' -f 1,2`)
	if err != nil || res2.Err != nil {
		t.Fatalf("post-cancel synthesis failed: %v / %v", err, res2)
	}
	if st := eng.Stats(); st.Hits != 0 {
		t.Errorf("post-cancel synthesis hit a cache (%+v); cancelled results must not be cached", st)
	}

	// All pool goroutines must have exited.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestEngineMemoryCache checks both memory tiers: the exact-spec memo and
// the canonical-signature LRU (which also serves whitespace variants of
// the same command).
func TestEngineMemoryCache(t *testing.T) {
	eng := New(unix.DefaultEnv(), Options{Seed: 1})
	r1, err := eng.Synthesize(context.Background(), "wc -l")
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("cold synthesis stats %+v, want 1 miss", st)
	}
	// Exact repeat → memo hit, identical pointer.
	r2, _ := eng.Synthesize(context.Background(), "wc -l")
	if r1 != r2 {
		t.Error("repeated spec did not return the memoized result")
	}
	// Whitespace variant → same canonical argv → LRU hit, no new miss.
	r3, err := eng.Synthesize(context.Background(), "wc  -l")
	if err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Misses != 1 {
		t.Errorf("whitespace variant re-ran synthesis: %+v", st)
	}
	if st.Hits != 2 {
		t.Errorf("stats %+v, want 2 hits (memo + LRU)", st)
	}
	if resultFingerprint(t, r1) != resultFingerprint(t, r3) {
		t.Error("canonical-cache result differs from original")
	}
}

// TestEngineDiskCache checks that a second engine resolves a command from
// the on-disk store written by the first, with an identical combiner and
// plausible set.
func TestEngineDiskCache(t *testing.T) {
	dir := t.TempDir()
	a := New(unix.DefaultEnv(), Options{Seed: 1, CacheDir: dir})
	ra, err := a.Synthesize(context.Background(), "uniq -c")
	if err != nil {
		t.Fatal(err)
	}
	b := New(unix.DefaultEnv(), Options{Seed: 1, CacheDir: dir})
	rb, err := b.Synthesize(context.Background(), "uniq -c")
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("second engine stats %+v, want 1 disk hit and 0 misses", st)
	}
	if resultFingerprint(t, ra) != resultFingerprint(t, rb) {
		t.Errorf("disk round-trip changed the result:\n  a: %s\n  b: %s",
			resultFingerprint(t, ra), resultFingerprint(t, rb))
	}
	if rb.Space != ra.Space || rb.Rounds != ra.Rounds {
		t.Errorf("disk round-trip lost metadata: %+v vs %+v", rb, ra)
	}
	// The rebuilt combiner must be live, not just displayable.
	out, err := rb.Combiner.Combine("      2 apple\n", "      1 apple\n")
	if err != nil || out != "      3 apple\n" {
		t.Errorf("rebuilt combiner Combine = %q, %v", out, err)
	}
	// A different seed must not hit the same entries.
	c := New(unix.DefaultEnv(), Options{Seed: 2, CacheDir: dir})
	if _, err := c.Synthesize(context.Background(), "uniq -c"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DiskHits != 0 || st.Misses != 1 {
		t.Errorf("seed-2 engine stats %+v, want a miss", st)
	}
}

// TestEngineCachesNegativeResults checks that definitive failures
// (ErrNoCombiner) are cached like successes: re-deriving "no combiner
// exists" costs a full search-space elimination, so it is worth storing.
func TestEngineCachesNegativeResults(t *testing.T) {
	dir := t.TempDir()
	a := New(unix.DefaultEnv(), Options{Seed: 1, CacheDir: dir})
	ra, err := a.Synthesize(context.Background(), "sed 1d")
	if !errors.Is(err, ErrNoCombiner) {
		t.Fatalf("sed 1d: err = %v, want ErrNoCombiner (Table 9)", err)
	}
	b := New(unix.DefaultEnv(), Options{Seed: 1, CacheDir: dir})
	rb, err := b.Synthesize(context.Background(), "sed 1d")
	if !errors.Is(err, ErrNoCombiner) {
		t.Fatalf("cached sed 1d: err = %v, want ErrNoCombiner", err)
	}
	if st := b.Stats(); st.DiskHits != 1 {
		t.Errorf("negative result not served from disk: %+v", st)
	}
	if rb.Space != ra.Space {
		t.Errorf("cached negative result lost the space: %+v vs %+v", rb.Space, ra.Space)
	}
}

// TestDiskCacheExcludesEnvReaders checks that commands whose output
// depends on the simulated file system (comm reads its dictionary
// operand during Run) never reach the disk tier: a cached combiner would
// be stale in a process with different registered files.
func TestDiskCacheExcludesEnvReaders(t *testing.T) {
	dir := t.TempDir()
	eng := New(unix.DefaultEnv(), Options{Seed: 1, CacheDir: dir})
	if _, err := eng.Synthesize(context.Background(), "comm -23 - dict.sorted"); err != nil {
		t.Logf("comm synthesis verdict: %v (exclusion applies regardless)", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("env-reading command was disk-cached: %d entries", len(entries))
	}
}

// TestPackageLevelSynthesize exercises the one-shot convenience entry
// point.
func TestPackageLevelSynthesize(t *testing.T) {
	res, err := Synthesize(context.Background(), "wc -l", Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Combiner == nil || res.Combiner.String() == "" {
		t.Error("package-level Synthesize returned no combiner")
	}
}

// TestParallelForBounds sanity-checks the pool helper on edge shapes.
func TestParallelForBounds(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 0}, {1, 5}, {4, 1}, {4, 100}, {100, 4},
	} {
		got := make([]int, tc.n)
		parallelFor(context.Background(), tc.workers, tc.n, func(i int) { got[i] = i + 1 })
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers=%d n=%d: slot %d not visited", tc.workers, tc.n, i)
			}
		}
	}
}
