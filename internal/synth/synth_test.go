package synth

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"kumquat/internal/dsl"
	"kumquat/internal/shape"
	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

func synthesize(t *testing.T, spec string) *Result {
	t.Helper()
	s := New(unix.DefaultEnv(), Options{Seed: 1})
	res, err := s.SynthesizeSpec(spec)
	if res == nil {
		t.Fatalf("SynthesizeSpec(%q): %v", spec, err)
	}
	return res
}

func hasPlausible(res *Result, repr string) bool {
	for _, c := range res.Plausible {
		if c.String() == repr {
			return true
		}
	}
	return false
}

func plausibleStrings(res *Result) string {
	var b strings.Builder
	for _, c := range res.Plausible {
		b.WriteString(c.String())
		b.WriteString("; ")
	}
	return b.String()
}

func TestSynthesizeWcL(t *testing.T) {
	res := synthesize(t, "wc -l")
	if res.Err != nil {
		t.Fatalf("wc -l: %v", res.Err)
	}
	// Table 10: exactly (back '\n' add) in both argument orders.
	if len(res.Plausible) != 2 ||
		!hasPlausible(res, `(back '\n' add a b)`) ||
		!hasPlausible(res, `(back '\n' add b a)`) {
		t.Errorf("wc -l plausible = %s", plausibleStrings(res))
	}
	// Table 10: wc -l searches the 1-delimiter space of 2700 candidates.
	if res.Space.Total() != 2700 {
		t.Errorf("wc -l search space = %d, want 2700", res.Space.Total())
	}
}

func TestSynthesizeGrepCount(t *testing.T) {
	res := synthesize(t, `grep -c '^....$'`)
	if res.Err != nil {
		t.Fatalf("grep -c: %v", res.Err)
	}
	if !hasPlausible(res, `(back '\n' add a b)`) || !hasPlausible(res, `(back '\n' add b a)`) {
		t.Errorf("grep -c plausible = %s", plausibleStrings(res))
	}
}

func TestSynthesizeUniq(t *testing.T) {
	res := synthesize(t, "uniq")
	if res.Err != nil {
		t.Fatalf("uniq: %v", res.Err)
	}
	// Table 10: stitch first, stitch second, rerun.
	if !hasPlausible(res, "(stitch first a b)") {
		t.Errorf("uniq should synthesize stitch first; got %s", plausibleStrings(res))
	}
	if !hasPlausible(res, "(rerun a b)") {
		t.Errorf("uniq should keep rerun plausible; got %s", plausibleStrings(res))
	}
	if res.Combiner == nil || res.Combiner.Primary().Class() != dsl.StructOpClass {
		t.Errorf("uniq composite should prefer StructOp, got %v", res.Combiner)
	}
}

func TestSynthesizeUniqC(t *testing.T) {
	res := synthesize(t, "uniq -c")
	if res.Err != nil {
		t.Fatalf("uniq -c: %v", res.Err)
	}
	if !hasPlausible(res, "(stitch2 ' ' add first a b)") {
		t.Errorf("uniq -c should synthesize (stitch2 ' ' add first); got %s", plausibleStrings(res))
	}
	// No RecOp may survive (it would poison the composite preference).
	for _, c := range res.Plausible {
		if c.Class() == dsl.RecOpClass {
			t.Errorf("uniq -c has RecOp survivor %s", c)
		}
	}
}

func TestSynthesizeSort(t *testing.T) {
	res := synthesize(t, "sort")
	if res.Err != nil {
		t.Fatalf("sort: %v", res.Err)
	}
	if res.Combiner == nil || !res.Combiner.HasMerge() {
		t.Fatalf("sort should synthesize merge; got %s", plausibleStrings(res))
	}
	if !hasPlausible(res, "(rerun a b)") || !hasPlausible(res, "(rerun b a)") {
		t.Errorf("sort should keep rerun in both orders; got %s", plausibleStrings(res))
	}
	// Table 10: 4 plausible combiners for sort.
	if len(res.Plausible) != 4 {
		t.Errorf("sort plausible count = %d, want 4: %s", len(res.Plausible), plausibleStrings(res))
	}
}

func TestSynthesizeSortRN(t *testing.T) {
	res := synthesize(t, "sort -rn")
	if res.Err != nil {
		t.Fatalf("sort -rn: %v", res.Err)
	}
	if res.Combiner == nil || !res.Combiner.HasMerge() {
		t.Fatalf("sort -rn should synthesize merge; got %s", plausibleStrings(res))
	}
	// Display carries the flags like the paper's merge('-rn').
	disp := res.Combiner.String()
	if !strings.Contains(disp, "merge('-rn')") {
		t.Errorf("sort -rn display = %q", disp)
	}
}

func TestSynthesizeTrTranslate(t *testing.T) {
	res := synthesize(t, "tr A-Z a-z")
	if res.Err != nil {
		t.Fatalf("tr A-Z a-z: %v", res.Err)
	}
	if !hasPlausible(res, "(concat a b)") {
		t.Errorf("tr should synthesize concat; got %s", plausibleStrings(res))
	}
	if res.Combiner == nil || !res.Combiner.IsConcat() {
		t.Error("tr combiner should be concat (eligible for elimination)")
	}
}

func TestSynthesizeTrSqueeze(t *testing.T) {
	res := synthesize(t, `tr -cs A-Za-z '\n'`)
	if res.Err != nil {
		t.Fatalf("tr -cs: %v", res.Err)
	}
	// §2: concat is incorrect (squeeze crosses the boundary); rerun is the
	// correct combiner.
	if hasPlausible(res, "(concat a b)") {
		t.Errorf("tr -cs must eliminate concat; got %s", plausibleStrings(res))
	}
	if !hasPlausible(res, "(rerun a b)") {
		t.Errorf("tr -cs should synthesize rerun; got %s", plausibleStrings(res))
	}
	if res.Combiner == nil || !res.Combiner.IsRerunOnly() {
		t.Errorf("tr -cs combiner should be rerun-only, got %s", plausibleStrings(res))
	}
}

func TestSynthesizeCut(t *testing.T) {
	res := synthesize(t, "cut -c 1-4")
	if res.Err != nil {
		t.Fatalf("cut: %v", res.Err)
	}
	if !hasPlausible(res, "(concat a b)") || !hasPlausible(res, "(rerun a b)") {
		t.Errorf("cut plausible = %s", plausibleStrings(res))
	}
}

func TestSynthesizeCutFieldDelim(t *testing.T) {
	res := synthesize(t, "cut -d ',' -f 1,2")
	if res.Err != nil {
		t.Fatalf("cut -d: %v", res.Err)
	}
	if !hasPlausible(res, "(concat a b)") {
		t.Errorf("cut -d plausible = %s", plausibleStrings(res))
	}
	// The mined ',' delimiter flows into outputs, widening the delim set.
	found := false
	for _, d := range res.Delims {
		if d == ',' {
			found = true
		}
	}
	if !found {
		t.Errorf("cut -d ',' should select ',' as a delimiter; got %v", res.Delims)
	}
}

func TestSynthesizeHeadN1(t *testing.T) {
	res := synthesize(t, "head -n 1")
	if res.Err != nil {
		t.Fatalf("head -n 1: %v", res.Err)
	}
	// Table 10: first a b, second b a, (back '\n' first) a b,
	// (fuse '\n' first) a b, (back '\n' second) b a,
	// (fuse '\n' second) b a, rerun a b.
	for _, want := range []string{
		"(first a b)", "(second b a)",
		`(back '\n' first a b)`, `(back '\n' second b a)`,
		`(fuse '\n' first a b)`, `(fuse '\n' second b a)`,
	} {
		if !hasPlausible(res, want) {
			t.Errorf("head -n 1 missing %s; got %s", want, plausibleStrings(res))
		}
	}
	if hasPlausible(res, "(concat a b)") {
		t.Errorf("head -n 1 must eliminate concat")
	}
}

func TestSynthesizeAwkComparison(t *testing.T) {
	res := synthesize(t, `awk "\$1 >= 1000"`)
	if res.Err != nil {
		t.Fatalf("awk >=: %v", res.Err)
	}
	if !hasPlausible(res, "(concat a b)") {
		t.Errorf("awk >= plausible = %s", plausibleStrings(res))
	}
}

func TestSynthesizeGrepPatternDict(t *testing.T) {
	res := synthesize(t, `grep 'light.*light'`)
	if res.Err != nil {
		t.Fatalf("grep pattern: %v", res.Err)
	}
	if !hasPlausible(res, "(concat a b)") || !hasPlausible(res, "(rerun a b)") {
		t.Errorf("grep pattern plausible = %s", plausibleStrings(res))
	}
}

func TestSynthesizeComm(t *testing.T) {
	res := synthesize(t, "comm -23 - dict.sorted")
	if res.Err != nil {
		t.Fatalf("comm: %v", res.Err)
	}
	if !hasPlausible(res, "(concat a b)") {
		t.Errorf("comm plausible = %s", plausibleStrings(res))
	}
}

func TestSynthesizeXargsCat(t *testing.T) {
	res := synthesize(t, "xargs cat")
	if res.Err != nil {
		t.Fatalf("xargs cat: %v", res.Err)
	}
	if !hasPlausible(res, "(concat a b)") {
		t.Errorf("xargs cat plausible = %s", plausibleStrings(res))
	}
	if !hasPlausible(res, "(offset ' ' second a b)") {
		t.Errorf("xargs cat should keep (offset ' ' second); got %s", plausibleStrings(res))
	}
	// rerun must die: output lines are not file names.
	if hasPlausible(res, "(rerun a b)") {
		t.Errorf("xargs cat must eliminate rerun")
	}
}

func TestSynthesizeXargsWc(t *testing.T) {
	res := synthesize(t, "xargs -L 1 wc -l")
	if res.Err != nil {
		t.Fatalf("xargs wc: %v", res.Err)
	}
	if !hasPlausible(res, "(concat a b)") {
		t.Errorf("xargs wc plausible = %s", plausibleStrings(res))
	}
	if hasPlausible(res, "(rerun a b)") {
		t.Errorf("xargs wc must eliminate rerun")
	}
}

// Table 9: the commands for which no correct combiner exists.
func TestTable9NoCombiner(t *testing.T) {
	for _, spec := range []string{"sed 1d", "sed 2d", "sed 3d", "tail +2", "tail +3"} {
		res := synthesize(t, spec)
		if !errors.Is(res.Err, ErrNoCombiner) {
			t.Errorf("%s: err = %v, want ErrNoCombiner (plausible: %s)",
				spec, res.Err, plausibleStrings(res))
		}
	}
}

// Table 9: the equality-gated awk command fails because generated inputs
// never produce nonempty outputs.
func TestTable9GatedAwk(t *testing.T) {
	res := synthesize(t, `awk "\$1 == 2 {print \$2, \$3}"`)
	if !errors.Is(res.Err, ErrNoOutputs) {
		t.Errorf("gated awk: err = %v, want ErrNoOutputs (plausible: %s)",
			res.Err, plausibleStrings(res))
	}
}

// TestSynthesizedCombinersAreCorrect replays the divide-and-conquer
// equation f(x1 ++ x2) = g(f(x1), f(x2)) on fresh random inputs for every
// synthesized combiner.
func TestSynthesizedCombinersAreCorrect(t *testing.T) {
	specs := []string{
		"wc -l", "uniq", "uniq -c", "sort", "sort -rn", "tr A-Z a-z",
		`tr -cs A-Za-z '\n'`, "cut -c 1-4", "head -n 3", `grep 'light.*light'`,
		"sed 100q", `awk '{print NF}'`, "rev",
	}
	rng := rand.New(rand.NewSource(77))
	gen := shape.New(99)
	gen.WordDict = []string{"lightxlight", "light"}
	for _, spec := range specs {
		res := synthesize(t, spec)
		if res.Err != nil {
			t.Errorf("%s: %v", spec, res.Err)
			continue
		}
		cmd, _ := unix.Parse(spec, unix.DefaultEnv())
		for trial := 0; trial < 30; trial++ {
			x1, x2 := gen.StreamPair(shape.Seed())
			y1, e1 := cmd.Run(x1)
			y2, e2 := cmd.Run(x2)
			y12, e12 := cmd.Run(x1 + x2)
			if e1 != nil || e2 != nil || e12 != nil {
				continue
			}
			got, err := res.Combiner.Combine(y1, y2)
			if err != nil || got != y12 {
				t.Errorf("%s: combiner %s wrong on x1=%q x2=%q: got %q (err %v), want %q",
					spec, res.Combiner, x1, x2, got, err, y12)
				break
			}
		}
		_ = rng
	}
}

// TestCombineKMatchesSerial verifies the k-way generalization end to end.
func TestCombineKMatchesSerial(t *testing.T) {
	specs := []string{"wc -l", "sort", "uniq -c", "tr A-Z a-z", "uniq"}
	gen := shape.New(123)
	for _, spec := range specs {
		res := synthesize(t, spec)
		if res.Err != nil {
			t.Fatalf("%s: %v", spec, res.Err)
		}
		cmd, _ := unix.Parse(spec, unix.DefaultEnv())
		for trial := 0; trial < 20; trial++ {
			s := shape.Seed()
			s.Lines = shape.Config{Min: 6, Max: 20, Distinct: 50}
			x := gen.Stream(s)
			k := 2 + trial%6
			chunks := textio.ChunkLines(x, k)
			outs := make([]string, len(chunks))
			for i, ch := range chunks {
				outs[i], _ = cmd.Run(ch)
			}
			want, _ := cmd.Run(x)
			got, err := res.Combiner.CombineK(outs)
			if err != nil || got != want {
				t.Errorf("%s k=%d: CombineK = %q (err %v), want %q", spec, k, got, err, want)
				break
			}
		}
	}
}

func TestReductionRatio(t *testing.T) {
	// tr -cs barely reduces the stream; wc -l reduces it to almost nothing.
	trRes := synthesize(t, `tr -cs A-Za-z '\n'`)
	wcRes := synthesize(t, "wc -l")
	if trRes.Err != nil || wcRes.Err != nil {
		t.Fatal("synthesis failed")
	}
	if trRes.ReductionRatio < 0.3 {
		t.Errorf("tr -cs reduction ratio = %f, expected near 1", trRes.ReductionRatio)
	}
	if wcRes.ReductionRatio > 0.3 {
		t.Errorf("wc -l reduction ratio = %f, expected near 0", wcRes.ReductionRatio)
	}
}

func TestSynthesizerCache(t *testing.T) {
	s := New(unix.DefaultEnv(), Options{Seed: 1})
	r1, err := s.SynthesizeSpec("wc -l")
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := s.SynthesizeSpec("wc -l")
	if r1 != r2 {
		t.Error("cache should return the identical result")
	}
}

func TestDeterministicSynthesis(t *testing.T) {
	a := New(unix.DefaultEnv(), Options{Seed: 42})
	b := New(unix.DefaultEnv(), Options{Seed: 42})
	ra, _ := a.SynthesizeSpec("uniq -c")
	rb, _ := b.SynthesizeSpec("uniq -c")
	if plausibleA, plausibleB := ra.Plausible, rb.Plausible; len(plausibleA) != len(plausibleB) {
		t.Fatalf("non-deterministic plausible sets: %d vs %d", len(plausibleA), len(plausibleB))
	} else {
		for i := range plausibleA {
			if plausibleA[i].String() != plausibleB[i].String() {
				t.Fatalf("non-deterministic candidate %d", i)
			}
		}
	}
}

func TestGradientAblationStillCorrect(t *testing.T) {
	s := New(unix.DefaultEnv(), Options{Seed: 5, DisableGradient: true})
	res, err := s.SynthesizeSpec("wc -l")
	if err != nil {
		t.Fatalf("no-gradient synthesis failed: %v", err)
	}
	if !hasPlausible(res, `(back '\n' add a b)`) {
		t.Errorf("no-gradient wc -l plausible = %s", plausibleStrings(res))
	}
}
