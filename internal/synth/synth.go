// Package synth implements KumQuat's combiner synthesis (§3.2): Algorithm 1
// (round-based filtering of a candidate combiner space against observations
// of the black-box command) and Algorithm 2 (input generation driven by a
// gradient over input-shape mutations, scored by how many candidates each
// mutation's inputs eliminate).
//
// The Engine is the synthesis entry point: candidate filtering and
// gradient scoring fan out over a bounded worker pool, synthesis is
// cancellable mid-round via context, and results are cached by canonical
// command signature (see internal/synth/cache and DESIGN.md).
package synth

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"kumquat/internal/dsl"
)

// Options tunes the synthesis algorithm. The zero value selects the
// defaults used throughout the benchmarks.
type Options struct {
	// MaxProductions bounds candidate AST size (default
	// dsl.DefaultMaxProductions, reproducing the paper's search spaces).
	MaxProductions int
	// PairsPerShape is how many input stream pairs each shape generates.
	PairsPerShape int
	// MutationIters is M in Algorithm 2: gradient steps per round.
	MutationIters int
	// StagnationRounds is how many no-progress rounds end Algorithm 1.
	StagnationRounds int
	// MaxRounds caps Algorithm 1's outer loop.
	MaxRounds int
	// Seed makes synthesis deterministic; combined with the command spec.
	Seed int64
	// DisableGradient replaces Algorithm 2's best-mutation selection with a
	// uniformly random mutation walk (the ablation baseline).
	DisableGradient bool

	// Workers bounds the candidate-filtering and gradient-scoring worker
	// pool (0 = GOMAXPROCS, 1 = fully sequential). Synthesis results are
	// identical at every worker count; only wall time changes.
	Workers int
	// CacheSize caps the in-memory combiner LRU in entries
	// (0 = cache.DefaultCapacity; negative disables the LRU tier).
	CacheSize int
	// CacheDir, when non-empty, enables the on-disk combiner store so
	// synthesis results persist across processes.
	CacheDir string
}

func (o Options) withDefaults() Options {
	if o.MaxProductions == 0 {
		o.MaxProductions = dsl.DefaultMaxProductions
	}
	if o.PairsPerShape == 0 {
		o.PairsPerShape = 3
	}
	if o.MutationIters == 0 {
		o.MutationIters = 3
	}
	if o.StagnationRounds == 0 {
		o.StagnationRounds = 2
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 6
	}
	return o
}

// Observation is Definition 3.4's ⟨y1, y2, y12⟩ triple: the command's
// outputs on x1, x2 and x1 ++ x2.
type Observation struct {
	Y1, Y2, Y12 string
}

// Result reports one command's synthesis outcome — a row of Table 10.
type Result struct {
	// Spec is the command text.
	Spec string
	// Space is the initial search-space breakdown (Table 10's third column).
	Space dsl.SpaceSize
	// Delims is the preprocessing-selected delimiter set.
	Delims []dsl.Delim
	// Plausible holds the surviving candidates (Table 10's fifth column).
	Plausible []dsl.Candidate
	// Combiner is the composite combiner built from Plausible; nil when
	// synthesis failed (Err explains why).
	Combiner *Combiner
	// Err is non-nil when no combiner was synthesized: either the candidate
	// set emptied (no correct combiner exists in the space, Table 9's sed/
	// tail rows) or no generated input produced nonempty output (Table 9's
	// equality-gated awk row).
	Err error
	// Rounds is how many Algorithm 1 rounds ran.
	Rounds int
	// Observations is the total number of observation triples used.
	Observations int
	// Duration is the wall-clock synthesis time.
	Duration time.Duration
	// ReductionRatio estimates |f(x)| / |x| over the observations; the
	// planner runs rerun-combined stages sequentially when a command does
	// not significantly reduce its stream (§2's tr -cs decision).
	ReductionRatio float64
}

// ErrNoCombiner indicates the search space emptied: no DSL combiner is
// correct for the command (e.g. sed 1d, tail +2 — Table 9).
var ErrNoCombiner = errors.New("synth: no candidate combiner survived")

// ErrNoOutputs indicates input generation never made the command produce
// nonempty output, so no combiner could be validated (Table 9's awk row).
var ErrNoOutputs = errors.New("synth: no generated inputs produced nonempty outputs")

// ErrMultiInput marks commands that read several input streams (paste,
// diff, two-file comm); the single-stream combiner model does not apply
// (footnote 5).
var ErrMultiInput = errors.New("synth: command reads multiple input streams")

// ErrNonStream marks commands that do not process a data stream at all
// (ls, mkfifo, rm — footnote 5).
var ErrNonStream = errors.New("synth: command does not process an input stream")

// filterCandidates keeps the candidates plausible for every observation
// (Definition 3.9): FilterCandidates in Algorithm 1.
func filterCandidates(env *dsl.Env, cands []dsl.Candidate, obs []Observation) []dsl.Candidate {
	live := cands[:0:0]
	for _, c := range cands {
		ok := true
		for _, o := range obs {
			if !c.Plausible(env, o.Y1, o.Y2, o.Y12) {
				ok = false
				break
			}
		}
		if ok {
			live = append(live, c)
		}
	}
	return live
}

// countEliminated scores an observation set by how many of the sampled
// candidates it kills (IndexBestMutation's effectiveness measure).
func countEliminated(env *dsl.Env, sample []dsl.Candidate, obs []Observation) int {
	killed := 0
	for _, c := range sample {
		for _, o := range obs {
			if !c.Plausible(env, o.Y1, o.Y2, o.Y12) {
				killed++
				break
			}
		}
	}
	return killed
}

func sampleCandidates(cands []dsl.Candidate, n int, rng *rand.Rand) []dsl.Candidate {
	if len(cands) <= n {
		return cands
	}
	out := make([]dsl.Candidate, n)
	for i := range out {
		out[i] = cands[rng.Intn(len(cands))]
	}
	return out
}

func hashSpec(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Combiner is the synthesized composite combiner (§3.2 "Multiple Plausible
// Combiners"): an ordered list of plausible candidates from the preferred
// class (RecOp ⊃ StructOp ⊃ RunOp); Combine dispatches to the first
// candidate whose domain contains the operands.
type Combiner struct {
	Spec       string
	Candidates []dsl.Candidate
	env        *dsl.Env
}

// buildComposite selects the class-preferred subset and orders it with
// universal-domain candidates last, so domain dispatch stays meaningful.
func buildComposite(spec string, env *dsl.Env, plausible []dsl.Candidate) *Combiner {
	if len(plausible) == 0 {
		return nil
	}
	byClass := func(cl dsl.Class) []dsl.Candidate {
		var out []dsl.Candidate
		for _, c := range plausible {
			if c.Class() == cl {
				out = append(out, c)
			}
		}
		return out
	}
	chosen := byClass(dsl.RecOpClass)
	if len(chosen) == 0 {
		chosen = byClass(dsl.StructOpClass)
	}
	if len(chosen) == 0 {
		chosen = byClass(dsl.RunOpClass)
	}
	// Order: smaller (more specific) combiners first; rerun last (its
	// domain is universal, so anything after it would be unreachable).
	// Keys are precomputed once per candidate — a cancellation mid-round
	// can hand this function the entire unfiltered space (110k+
	// candidates), where a comparison-time String() render inside an
	// O(n²) sort is an effective hang.
	type keyed struct {
		rank, size int
		str        string
		c          dsl.Candidate
	}
	keys := make([]keyed, len(chosen))
	for i, c := range chosen {
		keys[i] = keyed{combinerRank(c), c.Size(), c.String(), c}
	}
	sort.SliceStable(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		if a.size != b.size {
			return a.size < b.size
		}
		return a.str < b.str
	})
	ordered := make([]dsl.Candidate, len(keys))
	for i, k := range keys {
		ordered[i] = k.c
	}
	return &Combiner{Spec: spec, Candidates: ordered, env: env}
}

// combinerRank orders composite members: concat first (universal domain and
// cheapest — and the paper prefers the largest-domain combiner), then other
// RecOps, StructOps, merge, rerun.
func combinerRank(c dsl.Candidate) int {
	switch c.Op.(type) {
	case dsl.Concat:
		return 0
	case dsl.Merge:
		return 3
	case dsl.Rerun:
		return 4
	default:
		if c.Class() == dsl.StructOpClass {
			return 2
		}
		return 1
	}
}

// Primary is the candidate the planner reasons about (concat triggers
// combiner elimination, merge/rerun drive execution strategy).
func (c *Combiner) Primary() dsl.Candidate { return c.Candidates[0] }

// IsConcat reports whether the combiner is plain stream concatenation in
// argument order — the precondition for Theorem 5's intermediate combiner
// elimination.
func (c *Combiner) IsConcat() bool {
	p := c.Primary()
	_, ok := p.Op.(dsl.Concat)
	return ok && !p.Swap
}

// IsRerunOnly reports whether the only surviving combiners re-execute the
// command (the class the planner may choose to run sequentially, §2).
func (c *Combiner) IsRerunOnly() bool {
	for _, cand := range c.Candidates {
		if _, ok := cand.Op.(dsl.Rerun); !ok {
			return false
		}
	}
	return true
}

// HasMerge reports whether a merge combiner survived (sort-like commands).
func (c *Combiner) HasMerge() bool {
	for _, cand := range c.Candidates {
		if _, ok := cand.Op.(dsl.Merge); ok {
			return true
		}
	}
	return false
}

// Combine merges two parallel outputs, dispatching to the first candidate
// whose domain contains both operands (§3.2's composite semantics).
func (c *Combiner) Combine(y1, y2 string) (string, error) {
	var lastErr error
	for _, cand := range c.Candidates {
		if !cand.InDomain(c.env, y1, y2) {
			continue
		}
		v, err := cand.Eval(c.env, y1, y2)
		if err == nil {
			return v, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("synth: no composite member accepts the operands")
	}
	return "", lastErr
}

// CombineK merges k parallel outputs using the k-way generalization of
// §3.5 for the first domain-accepting candidate.
func (c *Combiner) CombineK(outs []string) (string, error) {
	return c.combineK(outs, func(cand dsl.Candidate) (string, error) {
		return dsl.CombineK(c.env, cand, outs)
	})
}

// CombineKTree merges k parallel outputs like CombineK but reduces
// associative pairwise combiners as a balanced binary tree over at most
// workers concurrent evaluations (dsl.CombineKTree) — the parallel
// combine plane. Candidate dispatch, domain checks and the simultaneous
// concat/merge/rerun paths are identical to CombineK's, and the output is
// byte-identical at every worker count.
func (c *Combiner) CombineKTree(outs []string, workers int) (string, error) {
	return c.combineK(outs, func(cand dsl.Candidate) (string, error) {
		return dsl.CombineKTree(c.env, cand, outs, workers)
	})
}

// combineK is the shared k-way dispatch: find the first candidate whose
// domain contains every nonempty substream and combine through it.
func (c *Combiner) combineK(outs []string, combine func(dsl.Candidate) (string, error)) (string, error) {
	nonEmpty := 0
	for _, o := range outs {
		if o != "" {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 {
		return strings.Join(outs, ""), nil
	}
	var lastErr error
	for _, cand := range c.Candidates {
		ok := true
		switch cand.Op.(type) {
		case dsl.Rerun, dsl.Concat:
			// universal domains
		default:
			for _, o := range outs {
				if o != "" && !cand.Op.InDomain(c.env, o) {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		v, err := combine(cand)
		if err == nil {
			return v, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("synth: no composite member accepts the substreams")
	}
	return "", lastErr
}

// String renders the composite like Table 10's plausible-combiner column.
func (c *Combiner) String() string {
	parts := make([]string, len(c.Candidates))
	for i, cand := range c.Candidates {
		parts[i] = candidateDisplay(c.env, cand)
	}
	return strings.Join(parts, ", ")
}

// candidateDisplay renders one candidate, expanding merge flags as in the
// paper ("merge('-rn') a b").
func candidateDisplay(env *dsl.Env, c dsl.Candidate) string {
	if m, ok := c.Op.(dsl.Merge); ok {
		args := "a b"
		if c.Swap {
			args = "b a"
		}
		return "(" + m.DisplayString(env) + " " + args + ")"
	}
	return c.String()
}

// DisplayPlausible renders a result's plausible set for Table 10, with
// merge flags expanded (merge('-rn') a b) when a combiner was built.
func (r *Result) DisplayPlausible() []string {
	var env *dsl.Env
	if r.Combiner != nil {
		env = r.Combiner.env
	}
	out := make([]string, len(r.Plausible))
	for i, c := range r.Plausible {
		out[i] = candidateDisplay(env, c)
	}
	return out
}
