package synth

import (
	"math/rand"
	"strings"
	"testing"

	"kumquat/internal/dsl"
	"kumquat/internal/shape"
	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// TestTable2Predicates checks the E(g, Y) definitions on hand-built
// observation sets.
func TestTable2Predicates(t *testing.T) {
	if EAdd([]Observation{{Y1: "0", Y2: "0"}}) {
		t.Error("EAdd should require nonzero operands somewhere")
	}
	if !EAdd([]Observation{{Y1: "0", Y2: "3"}, {Y1: "5", Y2: "0"}}) {
		t.Error("EAdd satisfied by nonzero y1 and y2 across observations")
	}
	if EConcat([]Observation{{Y1: "a", Y2: ""}}) {
		t.Error("EConcat should require nonempty y2 somewhere")
	}
	if !EConcat([]Observation{{Y1: "a", Y2: ""}, {Y1: "", Y2: "b"}}) {
		t.Error("EConcat satisfied across observations")
	}
	if EFirst([]Observation{{Y1: "x", Y2: "x"}}) {
		t.Error("EFirst needs y1 != y2 somewhere")
	}
	if !EFirst([]Observation{{Y1: "x", Y2: "y"}}) {
		t.Error("EFirst satisfied by differing non-trivial outputs")
	}
	if EFirst([]Observation{{Y1: "x", Y2: "0"}}) {
		t.Error("EFirst needs a non-delimiter non-zero character in y2")
	}
	if !EBackAdd('\n', []Observation{{Y1: "2\n", Y2: "3\n", Y12: "5\n"}}) {
		t.Error("EBackAdd satisfied by wc-style outputs")
	}
	if EBackAdd('\n', []Observation{{Y1: "0\n", Y2: "0\n", Y12: "0\n"}}) {
		t.Error("EBackAdd should reject all-zero counts")
	}
	if !EStitchFirst([]Observation{{Y1: "a\nword\n", Y2: "word\nb\n"}}) {
		t.Error("EStitchFirst satisfied by equal non-trivial boundary lines")
	}
	if EStitchFirst([]Observation{{Y1: "a\nx\n", Y2: "y\nb\n"}}) {
		t.Error("EStitchFirst needs equal boundary lines")
	}
	if !EStitch2AddFirst(' ', []Observation{{Y1: "      2 pear\n", Y2: "      3 pear\n"}}) {
		t.Error("EStitch2AddFirst satisfied by uniq -c style boundary merge")
	}
	if EStitch2AddFirst(' ', []Observation{{Y1: "      2 pear\n", Y2: "      3 plum\n"}}) {
		t.Error("EStitch2AddFirst needs matching tails")
	}
}

// TestTheorem2Property is the executable form of Theorem 2: when the
// observations satisfy E_rec(Y) and E(g, Y) for the known-correct RecOp
// combiner g, every surviving RecOp candidate agrees with g on the
// observed outputs (equivalence by intersection, checked empirically).
func TestTheorem2Property(t *testing.T) {
	cases := []struct {
		spec    string
		correct dsl.Candidate
	}{
		{"wc -l", dsl.Candidate{Op: dsl.Back{D: '\n', B: dsl.Add{}}}},
		{"tr A-Z a-z", dsl.Candidate{Op: dsl.Concat{}}},
		{"cut -c 1-3", dsl.Candidate{Op: dsl.Concat{}}},
	}
	gen := shape.New(17)
	for _, tc := range cases {
		cmd, err := unix.Parse(tc.spec, unix.DefaultEnv())
		if err != nil {
			t.Fatal(err)
		}
		env := &dsl.Env{RunF: cmd.Run}
		// Collect observations.
		var obs []Observation
		for i := 0; i < 40; i++ {
			x1, x2 := gen.StreamPair(shape.Seed())
			y1, e1 := cmd.Run(x1)
			y2, e2 := cmd.Run(x2)
			y12, e3 := cmd.Run(x1 + x2)
			if e1 != nil || e2 != nil || e3 != nil {
				continue
			}
			obs = append(obs, Observation{Y1: y1, Y2: y2, Y12: y12})
		}
		if !SufficientForClass(tc.correct, obs) {
			t.Fatalf("%s: observations do not satisfy E(g, Y); cannot apply Theorem 2", tc.spec)
		}
		// Filter RecOp candidates and check pairwise agreement with g on
		// the observations (the ≡∩ consequence of Theorem 2).
		recOps, _ := dsl.EnumerateOps(dsl.DefaultMaxProductions, []dsl.Delim{'\n', ' '})
		var survivors []dsl.Candidate
		for _, op := range recOps {
			for _, swap := range []bool{false, true} {
				c := dsl.Candidate{Op: op, Swap: swap}
				ok := true
				for _, o := range obs {
					if !c.Plausible(env, o.Y1, o.Y2, o.Y12) {
						ok = false
						break
					}
				}
				if ok {
					survivors = append(survivors, c)
				}
			}
		}
		if len(survivors) == 0 {
			t.Fatalf("%s: correct combiner eliminated", tc.spec)
		}
		for _, s := range survivors {
			for _, o := range obs {
				if !s.InDomain(env, o.Y1, o.Y2) || !tc.correct.InDomain(env, o.Y1, o.Y2) {
					continue
				}
				v1, err1 := s.Eval(env, o.Y1, o.Y2)
				v2, err2 := tc.correct.Eval(env, o.Y1, o.Y2)
				if err1 != nil || err2 != nil || v1 != v2 {
					t.Fatalf("%s: survivor %s disagrees with %s on shared domain: %q vs %q",
						tc.spec, s, tc.correct, v1, v2)
				}
			}
		}
	}
}

// TestSufficiencyOfRealRuns certifies that actual synthesis runs collect
// sufficient observations per Table 2 for the canonical commands: replays
// the run's input generation and checks E(g, Y).
func TestSufficiencyOfRealRuns(t *testing.T) {
	cases := []struct {
		spec string
		g    dsl.Candidate
	}{
		{"wc -l", dsl.Candidate{Op: dsl.Back{D: '\n', B: dsl.Add{}}}},
		{"uniq", dsl.Candidate{Op: dsl.Stitch{B: dsl.First{}}}},
		{"uniq -c", dsl.Candidate{Op: dsl.Stitch2{D: ' ', B1: dsl.Add{}, B2: dsl.First{}}}},
		{"tr A-Z a-z", dsl.Candidate{Op: dsl.Concat{}}},
	}
	for _, tc := range cases {
		cmd, err := unix.Parse(tc.spec, unix.DefaultEnv())
		if err != nil {
			t.Fatal(err)
		}
		gen := shape.New(91)
		gen.WordDict = nil
		var obs []Observation
		rng := rand.New(rand.NewSource(5))
		s := shape.Seed()
		for i := 0; i < 60; i++ {
			if i%10 == 9 {
				s = shape.Mutate(s, rng.Intn(shape.NumMutations))
			}
			x1, x2 := gen.StreamPair(s)
			y1, e1 := cmd.Run(x1)
			y2, e2 := cmd.Run(x2)
			y12, e3 := cmd.Run(x1 + x2)
			if e1 != nil || e2 != nil || e3 != nil {
				continue
			}
			obs = append(obs, Observation{Y1: y1, Y2: y2, Y12: y12})
		}
		if !SufficientForClass(tc.g, obs) {
			t.Errorf("%s: mutation-driven observations insufficient per Table 2", tc.spec)
		}
	}
}

// TestExample1Equivalences checks the paper's Example 1:
// (front d concat) ≡∩ (back d concat) and
// (stitch2 d first first) ≡∩ (stitch first).
func TestExample1Equivalences(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fc := dsl.Candidate{Op: dsl.Front{D: ',', B: dsl.Concat{}}}
	bc := dsl.Candidate{Op: dsl.Back{D: ',', B: dsl.Concat{}}}
	for i := 0; i < 300; i++ {
		y1 := "," + randToken(rng) + ","
		y2 := "," + randToken(rng) + ","
		if !fc.InDomain(nil, y1, y2) || !bc.InDomain(nil, y1, y2) {
			continue
		}
		v1, e1 := fc.Eval(nil, y1, y2)
		v2, e2 := bc.Eval(nil, y1, y2)
		if e1 != nil || e2 != nil || v1 != v2 {
			t.Fatalf("front/back concat disagree on %q %q: %q vs %q", y1, y2, v1, v2)
		}
	}
	// Example 1's second claim, (stitch2 d first first) ≡∩ (stitch first),
	// holds except when the boundary lines' tails match while their heads
	// differ: stitch2 then merges (comparing tails only) where stitch
	// concatenates (comparing whole lines). The paper's equivalence is
	// over the inputs its theorems quantify over, which exclude that case;
	// we check agreement on the rest and assert the disagreement exists —
	// an executable record of the edge.
	sf := dsl.Candidate{Op: dsl.Stitch{B: dsl.First{}}}
	s2ff := dsl.Candidate{Op: dsl.Stitch2{D: ' ', B1: dsl.First{}, B2: dsl.First{}}}
	tailsMatchHeadsDiffer := func(y1, y2 string) bool {
		_, l1, ok1 := textio.SplitLastLine(y1)
		l2, _, ok2 := textio.SplitFirstLine(y2)
		if !ok1 || !ok2 {
			return false
		}
		_, h1, t1, okf1 := textio.FieldPad(' ', l1)
		_, h2, t2, okf2 := textio.FieldPad(' ', l2)
		return okf1 && okf2 && t1 == t2 && h1 != h2
	}
	sawEdge := false
	for i := 0; i < 500; i++ {
		y1 := randTable(rng)
		y2 := randTable(rng)
		if !sf.InDomain(nil, y1, y2) || !s2ff.InDomain(nil, y1, y2) {
			continue
		}
		v1, e1 := sf.Eval(nil, y1, y2)
		v2, e2 := s2ff.Eval(nil, y1, y2)
		if e1 != nil || e2 != nil {
			t.Fatalf("eval failed on %q %q: %v %v", y1, y2, e1, e2)
		}
		if tailsMatchHeadsDiffer(y1, y2) {
			if v1 != v2 {
				sawEdge = true
			}
			continue
		}
		if v1 != v2 {
			t.Fatalf("stitch-first/stitch2-first-first disagree on %q %q: %q vs %q", y1, y2, v1, v2)
		}
	}
	if !sawEdge {
		t.Log("note: edge case (tails match, heads differ) not sampled this run")
	}
}

func randToken(rng *rand.Rand) string {
	return randWordN(rng, 1+rng.Intn(4))
}

func randWordN(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(3))
	}
	return string(b)
}

// randTable builds an unpadded two-field table stream ("h t" lines).
func randTable(rng *rand.Rand) string {
	n := 1 + rng.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(randWordN(rng, 1+rng.Intn(2)))
		b.WriteByte(' ')
		b.WriteString(randWordN(rng, 1+rng.Intn(2)))
		b.WriteByte('\n')
	}
	return b.String()
}
