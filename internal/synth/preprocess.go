package synth

import (
	"math/rand"
	"strconv"
	"strings"

	"kumquat/internal/dsl"
	"kumquat/internal/regexlite"
	"kumquat/internal/shape"
	"kumquat/internal/unix"
)

// Capability interfaces implemented by the unix command substrate; the
// synthesizer discovers them by type assertion, keeping the command itself
// a black box for everything except §3.2's script preprocessing.
type (
	patternProvider interface{ Pattern() string }
	literalProvider interface{ Literals() []int }
	compareLiterals interface{ CompareLiterals() []int }
	fieldDelim      interface{ FieldDelim() byte }
	sortedRequired  interface{ NeedsSortedInput() bool }
	fileNameInput   interface{ NeedsFileNames() bool }
	equalityGated   interface{ GatedEquality() bool }
)

// prep holds everything preprocessing (§3.2) learns about a command before
// synthesis: input dictionaries, input-mode decisions from the three probe
// streams, mined literals, and the delimiter set that fixes the size of the
// candidate search space.
type prep struct {
	delims     []dsl.Delim
	wordDict   []string
	fileNames  []string
	sorted     bool
	lineCounts []int // literals that bound line counts (sed 100q, head -15)
	gated      bool  // equality-gated command (Table 9's awk)
}

// probeWords are the §3.2 test streams: "a list of unsorted English words",
// the same list sorted, and a list of legal file names (drawn from the FS).
var probeWords = []string{
	"river", "stone", "light", "apple", "night", "wind", "gold", "sea",
	"dream", "cat", "ship", "king",
}

func sortedProbe() string {
	sorted := append([]string(nil), probeWords...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return strings.Join(sorted, "\n") + "\n"
}

// preprocess runs the probe inputs, mines literals from the command, and
// derives the delimiter set from observed outputs.
func preprocess(cmd unix.Command, uenv *unix.Env, rng *rand.Rand) prep {
	var p prep

	// Three test input streams (§3.2): unsorted words, sorted words, file
	// names. The pattern of successes picks the input generation mode.
	unsorted := strings.Join(probeWords, "\n") + "\n"
	srt := sortedProbe()
	names := uenv.FS.DictionaryNames()
	fileList := strings.Join(names, "\n") + "\n"

	_, errUnsorted := cmd.Run(unsorted)
	_, errSorted := cmd.Run(srt)
	_, errFiles := cmd.Run(fileList)
	switch {
	case errUnsorted == nil:
		// Normal mode.
	case errSorted == nil:
		p.sorted = true
	case errFiles == nil:
		p.fileNames = names
	}
	if fn, ok := cmd.(fileNameInput); ok && fn.NeedsFileNames() {
		p.fileNames = names
	}
	if sr, ok := cmd.(sortedRequired); ok && sr.NeedsSortedInput() {
		p.sorted = true
	}

	// Literal mining: regex patterns become dictionary words that match;
	// numeric comparison constants become nearby number words; address
	// literals become line-count targets for the seed shapes.
	if pp, ok := cmd.(patternProvider); ok && pp.Pattern() != "" {
		if re, err := regexlite.Compile(pp.Pattern()); err == nil {
			for i := 0; i < 8; i++ {
				if ex := re.Example(rng); ex != "" && !strings.Contains(ex, "\n") {
					p.wordDict = append(p.wordDict, ex)
				}
			}
		}
	}
	if cl, ok := cmd.(compareLiterals); ok {
		for _, n := range cl.CompareLiterals() {
			for _, v := range []int{n - 1, n, n + 1, 0, 1, 2 * n} {
				if v >= 0 {
					p.wordDict = append(p.wordDict, strconv.Itoa(v))
				}
			}
		}
	}
	if lp, ok := cmd.(literalProvider); ok {
		p.lineCounts = append(p.lineCounts, lp.Literals()...)
	}
	if fd, ok := cmd.(fieldDelim); ok && fd.FieldDelim() != 0 {
		// Inject the field delimiter into words so field structure exists.
		d := string(fd.FieldDelim())
		for i := 0; i < 6; i++ {
			parts := make([]string, 2+rng.Intn(2))
			for j := range parts {
				parts[j] = randWord(rng)
			}
			p.wordDict = append(p.wordDict, strings.Join(parts, d))
		}
	}
	if eg, ok := cmd.(equalityGated); ok {
		p.gated = eg.GatedEquality()
	}

	// Delimiter selection: '\n' always; add ' ', '\t', ',' when a probe
	// round's outputs contain them. This is the regularizer that makes the
	// search-space sizes land on 2700/26404/110444 (DESIGN.md).
	gen := p.generator(rng)
	seen := map[byte]bool{'\n': true}
	observe := func(out string) {
		for _, d := range []byte{' ', '\t', ','} {
			if strings.IndexByte(out, d) >= 0 {
				seen[d] = true
			}
		}
	}
	for i := 0; i < 6; i++ {
		x := gen.Stream(shape.Seed())
		if out, err := cmd.Run(x); err == nil {
			observe(out)
		}
	}
	p.delims = []dsl.Delim{'\n'}
	for _, d := range []byte{'\t', ' ', ','} {
		if seen[d] {
			p.delims = append(p.delims, dsl.Delim(d))
		}
	}
	return p
}

// generator builds a shape.Generator configured with this prep's
// dictionaries and input mode.
func (p prep) generator(rng *rand.Rand) *shape.Generator {
	return &shape.Generator{
		Rng:       rng,
		WordDict:  p.wordDict,
		FileNames: p.fileNames,
		Sorted:    p.sorted,
		DictBias:  0.5,
	}
}

// seedShapes returns the initial shapes for Algorithm 1's rounds: the
// default seed plus one shape per mined line-count literal.
func (p prep) seedShapes() []shape.Shape {
	shapes := []shape.Shape{shape.Seed()}
	for _, n := range p.lineCounts {
		shapes = append(shapes, shape.ForLiteral(n))
	}
	return shapes
}

func randWord(rng *rand.Rand) string {
	n := 1 + rng.Intn(4)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
