// Package cache provides the combiner cache backing synth.Engine: an
// in-memory LRU for hot command signatures, an optional on-disk store that
// persists synthesis results across processes, and the canonical cache-key
// derivation over normalized argv, delimiter set and synthesis options.
//
// The package is deliberately free of synthesis types: the engine converts
// its results to and from the serializable Entry form, so cache stays a
// leaf package with no import cycle back into synth or dsl.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// EntryVersion is the on-disk format version; Store.Get rejects entries
// written by an incompatible format as misses.
const EntryVersion = 1

// DefaultCapacity is the in-memory LRU capacity used when the engine does
// not specify one. 512 signatures comfortably covers the paper's 121
// distinct benchmark commands with room for option variants.
const DefaultCapacity = 512

// KeyOptions are the synthesis-option fields that can change a synthesis
// outcome and therefore participate in the cache key. Worker counts and
// cache configuration are deliberately absent: synthesis is deterministic
// in the degree of parallelism, so results are shared across them.
type KeyOptions struct {
	// MaxProductions bounds candidate AST size.
	MaxProductions int
	// PairsPerShape is the input pairs generated per shape.
	PairsPerShape int
	// MutationIters is Algorithm 2's gradient step count.
	MutationIters int
	// StagnationRounds is Algorithm 1's no-progress cutoff.
	StagnationRounds int
	// MaxRounds caps Algorithm 1's outer loop.
	MaxRounds int
	// Seed is the deterministic synthesis seed.
	Seed int64
	// DisableGradient marks the random-walk ablation baseline.
	DisableGradient bool
}

// Key derives the canonical cache key for one synthesis problem: the
// command's normalized argv (shell tokenization already applied, so
// quoting and whitespace variants of the same command collide), the
// preprocessing-selected delimiter set (which fixes the candidate search
// space), and the option fields that steer the algorithms. The key is a
// hex SHA-256, safe to use as a file name.
func Key(argv []string, delims []byte, o KeyOptions) string {
	h := sha256.New()
	for _, a := range argv {
		io.WriteString(h, a)
		h.Write([]byte{0})
	}
	h.Write([]byte{1})
	h.Write(delims)
	h.Write([]byte{1})
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%t",
		o.MaxProductions, o.PairsPerShape, o.MutationIters,
		o.StagnationRounds, o.MaxRounds, o.Seed, o.DisableGradient)
	return hex.EncodeToString(h.Sum(nil))
}

// Entry is the serializable form of one synthesis result. The plausible
// combiners are stored in the DSL's textual form (dsl.ParseCandidate's
// input grammar), so the engine can rebuild the live candidate set and its
// composite combiner from an entry without re-running synthesis.
type Entry struct {
	// Version is the format version (EntryVersion when written).
	Version int `json:"version"`
	// Spec is the command text the result was synthesized for.
	Spec string `json:"spec"`
	// Argv is the normalized argv the key was derived from.
	Argv []string `json:"argv"`
	// Delims holds the delimiter bytes of the search space.
	Delims string `json:"delims"`
	// SpaceRec, SpaceStruct and SpaceRun are the initial search-space
	// per-class candidate counts (Table 10's third column).
	SpaceRec    int `json:"space_rec"`
	SpaceStruct int `json:"space_struct"`
	SpaceRun    int `json:"space_run"`
	// Plausible holds the surviving candidates in DSL textual form.
	Plausible []string `json:"plausible"`
	// Err is "" for a synthesized combiner, or a sentinel tag
	// ("no-combiner", "no-outputs") for a cached negative result.
	Err string `json:"err,omitempty"`
	// Rounds and Observations echo the original run's effort.
	Rounds       int `json:"rounds"`
	Observations int `json:"observations"`
	// ReductionRatio is the observed |f(x)|/|x| estimate.
	ReductionRatio float64 `json:"reduction_ratio"`
	// DurationNS is the original synthesis wall time in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
}

// Tier identifies which cache layer served one synthesis call. Unlike a
// Stats delta — which is only exact when no other call overlaps the
// window — a Tier is attributed to its call at the lookup site, so it
// stays exact under arbitrary concurrency (the property the server's
// per-request "cached" verdict relies on).
type Tier int

const (
	// TierMiss means nothing was cached: a full synthesis ran.
	TierMiss Tier = iota
	// TierMemory means the spec memo or the in-memory LRU served the call.
	TierMemory
	// TierDisk means the on-disk store served the call.
	TierDisk
)

// Cached reports whether the tier is a cache hit of any kind.
func (t Tier) Cached() bool { return t == TierMemory || t == TierDisk }

// String names the tier for wire formats: "miss", "memory" or "disk".
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	default:
		return "miss"
	}
}

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	// Hits counts syntheses resolved from memory (spec memo or LRU).
	Hits int64
	// DiskHits counts syntheses resolved from the on-disk store.
	DiskHits int64
	// Misses counts full synthesis runs (nothing cached anywhere).
	Misses int64
}

// Lookups is the total number of cache consultations.
func (s Stats) Lookups() int64 { return s.Hits + s.DiskHits + s.Misses }

// Sub returns the element-wise difference s - prev, for windowed
// reporting (e.g. the activity attributable to one pipeline compilation).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:     s.Hits - prev.Hits,
		DiskHits: s.DiskHits - prev.DiskHits,
		Misses:   s.Misses - prev.Misses,
	}
}

// Add returns the element-wise sum s + other, for aggregating per-call
// attributions into a per-request total.
func (s Stats) Add(other Stats) Stats {
	return Stats{
		Hits:     s.Hits + other.Hits,
		DiskHits: s.DiskHits + other.DiskHits,
		Misses:   s.Misses + other.Misses,
	}
}

// Count returns a Stats recording one call served by the given tier.
func (t Tier) Count() Stats {
	switch t {
	case TierMemory:
		return Stats{Hits: 1}
	case TierDisk:
		return Stats{DiskHits: 1}
	default:
		return Stats{Misses: 1}
	}
}

// Counters accumulates cache statistics; all methods are safe for
// concurrent use. The zero value is ready.
type Counters struct {
	hits, diskHits, misses atomic.Int64
}

// Hit records a memory-cache hit.
func (c *Counters) Hit() { c.hits.Add(1) }

// DiskHit records an on-disk store hit.
func (c *Counters) DiskHit() { c.diskHits.Add(1) }

// Miss records a full synthesis run.
func (c *Counters) Miss() { c.misses.Add(1) }

// Snapshot returns the current totals.
func (c *Counters) Snapshot() Stats {
	return Stats{Hits: c.hits.Load(), DiskHits: c.diskHits.Load(), Misses: c.misses.Load()}
}

// LRU is a thread-safe fixed-capacity least-recently-used map from cache
// keys to opaque values (the engine stores *synth.Result).
type LRU struct {
	mu    sync.Mutex
	cap   int
	order []string // keys, least recently used first
	items map[string]any
}

// NewLRU returns an LRU holding at most capacity entries
// (DefaultCapacity when capacity <= 0).
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &LRU{cap: capacity, items: make(map[string]any, capacity)}
}

// Get returns the value for key and marks it most recently used.
func (l *LRU) Get(key string) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.items[key]
	if ok {
		l.touch(key)
	}
	return v, ok
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (l *LRU) Put(key string, v any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.items[key]; ok {
		l.items[key] = v
		l.touch(key)
		return
	}
	if len(l.items) >= l.cap {
		oldest := l.order[0]
		l.order = l.order[1:]
		delete(l.items, oldest)
	}
	l.items[key] = v
	l.order = append(l.order, key)
}

// Len reports the current entry count.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.items)
}

// touch moves key to the most-recently-used end; the caller holds l.mu.
func (l *LRU) touch(key string) {
	for i, k := range l.order {
		if k == key {
			copy(l.order[i:], l.order[i+1:])
			l.order[len(l.order)-1] = key
			return
		}
	}
}

// Store is the optional on-disk combiner store: one JSON file per cache
// key under a directory. All failures (unreadable dir, corrupt entry,
// version skew) degrade to cache misses; Put errors are returned but safe
// to ignore — the store is an accelerator, never a source of truth.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) an on-disk store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Get loads the entry for key, reporting false on any miss or decode
// failure.
func (s *Store) Get(key string) (*Entry, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var e Entry
	if json.Unmarshal(data, &e) != nil || e.Version != EntryVersion {
		return nil, false
	}
	return &e, true
}

// Put persists the entry for key atomically (write to a temp file, then
// rename), so concurrent readers never observe a torn entry.
func (s *Store) Put(key string, e *Entry) error {
	e.Version = EntryVersion
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "entry-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: write %s: %v / %v", key, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// path maps a key to its entry file.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}
