package cache

import (
	"os"
	"path/filepath"
	"testing"
)

func TestKeyCanonicalization(t *testing.T) {
	o := KeyOptions{MaxProductions: 5, Seed: 1}
	k1 := Key([]string{"wc", "-l"}, []byte{'\n'}, o)
	k2 := Key([]string{"wc", "-l"}, []byte{'\n'}, o)
	if k1 != k2 {
		t.Fatalf("same inputs produced different keys: %s vs %s", k1, k2)
	}
	// Every component must discriminate.
	if Key([]string{"wc", "-c"}, []byte{'\n'}, o) == k1 {
		t.Error("argv change did not change the key")
	}
	if Key([]string{"wc", "-l"}, []byte{'\n', ' '}, o) == k1 {
		t.Error("delimiter change did not change the key")
	}
	o2 := o
	o2.Seed = 2
	if Key([]string{"wc", "-l"}, []byte{'\n'}, o2) == k1 {
		t.Error("seed change did not change the key")
	}
	// Token boundaries must not be ambiguous: ["ab","c"] vs ["a","bc"].
	if Key([]string{"ab", "c"}, nil, o) == Key([]string{"a", "bc"}, nil, o) {
		t.Error("argv token boundaries are ambiguous in the key")
	}
}

func TestLRUEviction(t *testing.T) {
	l := NewLRU(2)
	l.Put("a", 1)
	l.Put("b", 2)
	if _, ok := l.Get("a"); !ok { // refresh a → b becomes LRU
		t.Fatal("a missing before eviction")
	}
	l.Put("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	if v, ok := l.Get("a"); !ok || v.(int) != 1 {
		t.Error("a should have survived eviction")
	}
	if v, ok := l.Get("c"); !ok || v.(int) != 3 {
		t.Error("c should be present")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{
		Spec:      "uniq -c",
		Argv:      []string{"uniq", "-c"},
		Delims:    "\n ",
		SpaceRec:  12440,
		Plausible: []string{"(stitch2 ' ' add first a b)"},
		Rounds:    3,
	}
	key := Key(e.Argv, []byte(e.Delims), KeyOptions{Seed: 1})
	if err := s.Put(key, e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("entry not found after Put")
	}
	if got.Spec != e.Spec || got.SpaceRec != e.SpaceRec ||
		len(got.Plausible) != 1 || got.Plausible[0] != e.Plausible[0] {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("unexpected hit for missing key")
	}
}

func TestStoreRejectsCorruptAndVersionSkew(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("bad"); ok {
		t.Error("corrupt entry should be a miss")
	}
	if err := os.WriteFile(filepath.Join(dir, "old.json"),
		[]byte(`{"version": 999, "spec": "wc -l"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("old"); ok {
		t.Error("version-skewed entry should be a miss")
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Hit()
	c.Hit()
	c.DiskHit()
	c.Miss()
	s := c.Snapshot()
	if s.Hits != 2 || s.DiskHits != 1 || s.Misses != 1 || s.Lookups() != 4 {
		t.Errorf("unexpected stats %+v", s)
	}
	d := s.Sub(Stats{Hits: 1})
	if d.Hits != 1 || d.Misses != 1 {
		t.Errorf("unexpected delta %+v", d)
	}
}
