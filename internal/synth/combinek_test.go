package synth

import (
	"runtime"
	"testing"

	"kumquat/internal/shape"
	"kumquat/internal/textio"
	"kumquat/internal/unix"
)

// exampleSuiteSpecs are the distinct commands of the four examples/
// pipelines (quickstart, wordfreq, unix50, analytics) plus the counting
// and squeeze shapes — together they cover every combiner class the
// synthesizer produces for the benchmark catalog: concat, back-add,
// stitch2, merge, rerun.
var exampleSuiteSpecs = []string{
	"sort",
	"sort -rn",
	"sort -u",
	"uniq",
	"uniq -c",
	"tr A-Z a-z",
	`tr -cs A-Za-z '\n'`,
	`cut -d ' ' -f 1`,
	`cut -d ',' -f 1,3`,
	`sed 's/T..:..:..//'`,
	"wc -l",
	"grep light",
}

// TestCombineKTreeMatchesCombineK is the acceptance gate for the parallel
// combine plane: for every combiner synthesized over the example suite,
// CombineKTree must be byte-identical to the serial CombineK — and both
// to the serial command run — at 1, 4 and GOMAXPROCS workers.
func TestCombineKTreeMatchesCombineK(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes the full example suite")
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	gen := shape.New(7)
	for _, spec := range exampleSuiteSpecs {
		res := synthesize(t, spec)
		if res.Err != nil {
			t.Errorf("%s: no combiner: %v", spec, res.Err)
			continue
		}
		cmd, err := unix.Parse(spec, unix.DefaultEnv())
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		for trial := 0; trial < 6; trial++ {
			s := shape.Seed()
			s.Lines = shape.Config{Min: 40, Max: 80, Distinct: 9}
			x := gen.Stream(s)
			want, err := cmd.Run(x)
			if err != nil {
				t.Fatalf("%s: serial run: %v", spec, err)
			}
			for _, k := range []int{2, 5, 16} {
				chunks := textio.ChunkLines(x, k)
				outs := make([]string, len(chunks))
				for i, ch := range chunks {
					outs[i], err = cmd.Run(ch)
					if err != nil {
						t.Fatalf("%s: chunk run: %v", spec, err)
					}
				}
				fold, ferr := res.Combiner.CombineK(outs)
				if ferr != nil {
					t.Fatalf("%s k=%d: CombineK: %v", spec, k, ferr)
				}
				if fold != want {
					t.Fatalf("%s k=%d: CombineK=%q, serial=%q", spec, k, fold, want)
				}
				for _, w := range workerCounts {
					tree, terr := res.Combiner.CombineKTree(outs, w)
					if terr != nil {
						t.Fatalf("%s k=%d workers=%d: CombineKTree: %v", spec, k, w, terr)
					}
					if tree != fold {
						t.Fatalf("%s k=%d workers=%d: tree=%q, fold=%q", spec, k, w, tree, fold)
					}
				}
			}
		}
	}
}
