package synth

import (
	"strings"
	"testing"

	"kumquat/internal/unix"
)

// TestTable10Identities is the per-command fidelity table: for each command
// the paper's Table 10 publishes, assert that the listed plausible
// combiners survive (mustHave), that known-incorrect ones are eliminated
// (mustNotHave), and — where the paper's row is exhaustive and our domains
// agree — the exact survivor count.
func TestTable10Identities(t *testing.T) {
	cases := []struct {
		spec        string
		mustHave    []string
		mustNotHave []string
		exactCount  int // 0 = don't check
	}{
		// Counting commands → (back '\n' add), nothing else.
		{"wc -l",
			[]string{`(back '\n' add a b)`, `(back '\n' add b a)`},
			[]string{"(concat a b)", "(rerun a b)"}, 2},
		{`grep -c '^[A-Z]'`,
			[]string{`(back '\n' add a b)`, `(back '\n' add b a)`},
			[]string{"(concat a b)"}, 2},
		{`grep -vc 'light.*light'`,
			[]string{`(back '\n' add a b)`},
			[]string{"(concat a b)"}, 0},

		// Line-map commands → concat (+ rerun when idempotent).
		{"tr A-Z a-z", []string{"(concat a b)", "(rerun a b)"},
			[]string{"(concat b a)", "(first a b)"}, 0},
		{`tr '[a-z]' '[A-Z]'`, []string{"(concat a b)", "(rerun a b)"}, nil, 0},
		{`tr -d ','`, []string{"(concat a b)", "(rerun a b)"}, nil, 0},
		{`tr -d '[:punct:]'`, []string{"(concat a b)", "(rerun a b)"}, nil, 0},
		{`tr ' ' '\n'`, []string{"(concat a b)", "(rerun a b)"}, nil, 0},
		{`sed s/\$/'0s'/`, []string{"(concat a b)"}, []string{"(rerun a b)"}, 0},
		{`cut -d ':' -f 1`, []string{"(concat a b)"}, nil, 0},
		{`awk 'length <= 45'`, []string{"(concat a b)", "(rerun a b)"}, nil, 0},
		{`awk "{\$1=\$1};1"`, []string{"(concat a b)", "(rerun a b)"}, nil, 0},
		{`awk '{print NF}'`, []string{"(concat a b)"}, []string{"(rerun a b)"}, 0},
		{"col -bx", []string{"(concat a b)", "(rerun a b)"}, nil, 0},
		{"iconv -f utf-8 -t ascii//translit",
			[]string{"(concat a b)", "(rerun a b)"}, nil, 0},
		{"fmt -w1", []string{"(concat a b)"}, nil, 0},

		// rev: concat only — rerun is NOT idempotent (rev∘rev = id).
		{"rev", []string{"(concat a b)"}, []string{"(rerun a b)"}, 0},
		// cut -c 3-3: rerun re-cuts one-char lines to "" (paper: concat only).
		{"cut -c 3-3", []string{"(concat a b)"}, []string{"(rerun a b)"}, 0},
		// Timestamp sed: non-global s/// strips again on rerun (paper: concat only).
		{`sed 's/T..:..:..//'`, []string{"(concat a b)"}, []string{"(rerun a b)"}, 0},

		// Squeeze-class commands → rerun only.
		{`tr -cs A-Za-z '\n'`, []string{"(rerun a b)"}, []string{"(concat a b)"}, 1},
		{`tr -s ' ' '\n'`, []string{"(rerun a b)"}, []string{"(concat a b)"}, 1},
		{`tr -sc 'AEIOU' '[\012*]'`, []string{"(rerun a b)"}, []string{"(concat a b)"}, 1},

		// Sorting commands → merge + rerun, both orders (4 total).
		{"sort", []string{"(merge a b)", "(merge b a)", "(rerun a b)", "(rerun b a)"}, nil, 4},
		{"sort -u", []string{"(merge a b)", "(rerun a b)"}, []string{"(concat a b)"}, 4},
		{"sort -f", []string{"(merge a b)", "(rerun a b)"}, nil, 4},
		{"sort -n", []string{"(merge a b)", "(rerun a b)"}, nil, 4},
		{"sort -k1n", []string{"(merge a b)", "(rerun a b)"}, nil, 4},

		// Selection commands.
		{"uniq", []string{"(stitch first a b)", "(stitch second a b)", "(rerun a b)"},
			[]string{"(concat a b)", "(first a b)"}, 0},
		{"uniq -c", []string{"(stitch2 ' ' add first a b)", "(stitch2 ' ' add second a b)"},
			[]string{"(rerun a b)", "(concat a b)"}, 2},
		{"tail -n 1", []string{"(second a b)", "(first b a)",
			`(back '\n' second a b)`, `(back '\n' first b a)`,
			`(fuse '\n' second a b)`, `(fuse '\n' first b a)`, "(rerun a b)"},
			[]string{"(first a b)", "(concat a b)"}, 7},

		// Prefix-truncation → rerun only.
		{"sed 100q", []string{"(rerun a b)"}, []string{"(concat a b)", "(first a b)"}, 1},
		{"sed 5q", []string{"(rerun a b)"}, []string{"(first a b)"}, 1},
		{"head", []string{"(rerun a b)"}, []string{"(first a b)"}, 1},
	}

	s := New(unix.DefaultEnv(), Options{Seed: 1})
	for _, tc := range cases {
		res, err := s.SynthesizeSpec(tc.spec)
		if res == nil || res.Err != nil {
			t.Errorf("%s: synthesis failed: %v / %v", tc.spec, err, res)
			continue
		}
		have := map[string]bool{}
		for _, c := range res.Plausible {
			have[c.String()] = true
		}
		for _, want := range tc.mustHave {
			if !have[want] {
				t.Errorf("%s: missing plausible %s (got %s)", tc.spec, want, join(have))
			}
		}
		for _, bad := range tc.mustNotHave {
			if have[bad] {
				t.Errorf("%s: %s should be eliminated (got %s)", tc.spec, bad, join(have))
			}
		}
		if tc.exactCount > 0 && len(res.Plausible) != tc.exactCount {
			t.Errorf("%s: %d plausible combiners, paper lists %d: %s",
				tc.spec, len(res.Plausible), tc.exactCount, join(have))
		}
	}
}

func join(m map[string]bool) string {
	var parts []string
	for k := range m {
		parts = append(parts, k)
	}
	return strings.Join(parts, "; ")
}

// TestTable10SearchSpaces pins the search-space size class per command for
// the rows where our delimiter selection matches the paper's.
func TestTable10SearchSpaces(t *testing.T) {
	cases := map[string]int{
		"wc -l":              2700,   // digits + newline only
		`grep -c '^....$'`:   2700,   // count output
		`awk '{print NF}'`:   2700,   // single-field output
		`tr ' ' '\n'`:        2700,   // spaces translated away
		`tr -cs A-Za-z '\n'`: 2700,   // letters + newlines only
		"uniq -c":            26404,  // padded counts: newline + space
		"uniq":               26404,  // word lines
		"sort":               26404,  //
		"tr A-Z a-z":         26404,  //
		"cut -d ',' -f 1,2":  110444, // comma survives into output
	}
	s := New(unix.DefaultEnv(), Options{Seed: 1})
	for spec, want := range cases {
		res, _ := s.SynthesizeSpec(spec)
		if res == nil {
			t.Errorf("%s: no result", spec)
			continue
		}
		if res.Space.Total() != want {
			t.Errorf("%s: search space %d, paper %d (delims %v)",
				spec, res.Space.Total(), want, res.Delims)
		}
	}
}
