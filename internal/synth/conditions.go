package synth

import (
	"strings"

	"kumquat/internal/dsl"
	"kumquat/internal/textio"
)

// This file implements the paper's Table 2 / Appendix B sufficiency
// predicates: E(g, Y) is a conservative condition on a set of observations
// Y under which Theorems 1–4 guarantee that every surviving candidate of
// g's class is equivalent-by-intersection to the correct combiner g.
// The synthesizer does not need these predicates to operate (it filters by
// plausibility alone); they exist to let tests and users *certify* that a
// run collected sufficient observations, reproducing the paper's theory
// section executably.

// nonTrivialByte reports whether c is outside Delim ∪ {'0'} — Table 2's
// "non-delimiter and non-zero characters" requirement for selection
// operators.
func nonTrivialByte(c byte) bool {
	switch c {
	case '\n', '\t', ' ', ',', '0':
		return false
	}
	return true
}

func hasNonTrivialByte(s string) bool {
	for i := 0; i < len(s); i++ {
		if nonTrivialByte(s[i]) {
			return true
		}
	}
	return false
}

func allZeros(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// EAdd is E(g_a, Y): some observation has y1 not all zeros, and some has
// y2 not all zeros (Table 2, row add).
func EAdd(obs []Observation) bool {
	var y1ok, y2ok bool
	for _, o := range obs {
		if !allZeros(o.Y1) {
			y1ok = true
		}
		if !allZeros(o.Y2) {
			y2ok = true
		}
	}
	return y1ok && y2ok
}

// EConcat is E(g_c, Y): some observation has nonempty y1, and some has
// nonempty y2 (Table 2, row concat).
func EConcat(obs []Observation) bool {
	var y1ok, y2ok bool
	for _, o := range obs {
		if o.Y1 != "" {
			y1ok = true
		}
		if o.Y2 != "" {
			y2ok = true
		}
	}
	return y1ok && y2ok
}

// EFirst is E(g_f, Y): some observation has y1 ≠ y2, and some observation's
// y2 contains a non-delimiter, non-zero character (Table 2, row first).
func EFirst(obs []Observation) bool {
	var differ, nontrivial bool
	for _, o := range obs {
		if o.Y1 != o.Y2 {
			differ = true
		}
		if hasNonTrivialByte(o.Y2) {
			nontrivial = true
		}
	}
	return differ && nontrivial
}

// ESecond is E(g_s, Y), symmetric to EFirst.
func ESecond(obs []Observation) bool {
	var differ, nontrivial bool
	for _, o := range obs {
		if o.Y1 != o.Y2 {
			differ = true
		}
		if hasNonTrivialByte(o.Y1) {
			nontrivial = true
		}
	}
	return differ && nontrivial
}

// EBackAdd is E(g_ba, Y) for (back d add): EAdd over the observations with
// the trailing delimiter stripped (Table 2, row back-add).
func EBackAdd(d dsl.Delim, obs []Observation) bool {
	var stripped []Observation
	for _, o := range obs {
		ds := string(byte(d))
		if strings.HasSuffix(o.Y1, ds) && strings.HasSuffix(o.Y2, ds) && strings.HasSuffix(o.Y12, ds) {
			stripped = append(stripped, Observation{
				Y1:  strings.TrimSuffix(o.Y1, ds),
				Y2:  strings.TrimSuffix(o.Y2, ds),
				Y12: strings.TrimSuffix(o.Y12, ds),
			})
		}
	}
	return EAdd(stripped)
}

// ERec is E_rec(Y) (Definition B.13): sufficient for eliminating incorrect
// candidates whenever the correct combiner lies in G_rec. Requires an
// observation with y1 ≠ y2, and non-trivial characters in some y1 and some
// y2.
func ERec(obs []Observation) bool {
	var differ, c1, c2 bool
	for _, o := range obs {
		if o.Y1 != o.Y2 {
			differ = true
		}
		if hasNonTrivialByte(o.Y1) {
			c1 = true
		}
		if hasNonTrivialByte(o.Y2) {
			c2 = true
		}
	}
	return differ && c1 && c2
}

// EStitchFirst is E(g_sf, Y) condition (1) (Table 2, row stitch-first):
// some observation where y1's last line equals y2's first line and that
// line starts (after padding) and ends with non-trivial characters.
func EStitchFirst(obs []Observation) bool {
	for _, o := range obs {
		_, l1, ok1 := textio.SplitLastLine(o.Y1)
		l2, _, ok2 := textio.SplitFirstLine(o.Y2)
		if !ok1 || !ok2 || l1 != l2 || l1 == "" {
			continue
		}
		_, depadded := textio.DelPad(l1)
		if depadded == "" {
			continue
		}
		if nonTrivialByte(depadded[0]) && nonTrivialByte(l1[len(l1)-1]) {
			return true
		}
	}
	return false
}

// EStitch2AddFirst is E(g_saf, Y) (Table 2, row stitch2-add-first): an
// observation whose boundary lines share their tail with non-trivial
// leading and trailing characters.
func EStitch2AddFirst(d dsl.Delim, obs []Observation) bool {
	for _, o := range obs {
		_, l1, ok1 := textio.SplitLastLine(o.Y1)
		l2, _, ok2 := textio.SplitFirstLine(o.Y2)
		if !ok1 || !ok2 {
			continue
		}
		_, _, t1, okf1 := textio.FieldPad(byte(d), l1)
		_, _, t2, okf2 := textio.FieldPad(byte(d), l2)
		if !okf1 || !okf2 || t1 != t2 || t1 == "" {
			continue
		}
		if nonTrivialByte(t1[0]) && nonTrivialByte(t1[len(t1)-1]) {
			return true
		}
	}
	return false
}

// SufficientForClass reports whether the observations satisfy the
// class-level sufficiency predicate for the given representative combiner,
// dispatching on the candidate's operator shape. It returns false (i.e.
// "cannot certify") for operators outside G_rec ∪ G_struct.
func SufficientForClass(c dsl.Candidate, obs []Observation) bool {
	switch op := c.Op.(type) {
	case dsl.Add:
		return EAdd(obs)
	case dsl.Concat:
		return EConcat(obs)
	case dsl.First:
		return EFirst(obs)
	case dsl.Second:
		return ESecond(obs)
	case dsl.Back:
		if _, ok := op.B.(dsl.Add); ok {
			return EBackAdd(op.D, obs)
		}
	case dsl.Stitch:
		if _, ok := op.B.(dsl.First); ok {
			return EStitchFirst(obs)
		}
	case dsl.Stitch2:
		_, okAdd := op.B1.(dsl.Add)
		_, okFirst := op.B2.(dsl.First)
		if okAdd && okFirst {
			return EStitch2AddFirst(op.D, obs)
		}
	}
	return false
}
