package synth

import (
	"testing"

	"kumquat/internal/dsl"
	"kumquat/internal/shape"
	"kumquat/internal/unix"
)

// TestTheorem4Property is the executable form of Theorems 3/4: for commands
// whose correct combiner lies in G_struct (uniq → stitch first, uniq -c →
// stitch2 ' ' add first), once the observations satisfy E(g, Y), every
// surviving StructOp candidate agrees with the correct combiner on the
// observations' shared domain.
func TestTheorem4Property(t *testing.T) {
	cases := []struct {
		spec       string
		correct    dsl.Candidate
		sufficient func([]Observation) bool
	}{
		{
			spec:       "uniq",
			correct:    dsl.Candidate{Op: dsl.Stitch{B: dsl.First{}}},
			sufficient: EStitchFirst,
		},
		{
			spec:    "uniq -c",
			correct: dsl.Candidate{Op: dsl.Stitch2{D: ' ', B1: dsl.Add{}, B2: dsl.First{}}},
			sufficient: func(obs []Observation) bool {
				return EStitch2AddFirst(' ', obs)
			},
		},
	}
	for _, tc := range cases {
		cmd, err := unix.Parse(tc.spec, unix.DefaultEnv())
		if err != nil {
			t.Fatal(err)
		}
		env := &dsl.Env{RunF: cmd.Run}
		// Generate observations with low line-distinctness so duplicate
		// boundary lines (the stitch-exercising shape) occur.
		gen := shape.New(29)
		s := shape.Seed()
		s.Lines = shape.Config{Min: 2, Max: 6, Distinct: 30}
		s.Words = shape.Config{Min: 1, Max: 2, Distinct: 40}
		var obs []Observation
		for i := 0; i < 120; i++ {
			x1, x2 := gen.StreamPair(s)
			y1, e1 := cmd.Run(x1)
			y2, e2 := cmd.Run(x2)
			y12, e3 := cmd.Run(x1 + x2)
			if e1 != nil || e2 != nil || e3 != nil {
				continue
			}
			obs = append(obs, Observation{Y1: y1, Y2: y2, Y12: y12})
		}
		if !tc.sufficient(obs) {
			t.Fatalf("%s: observations insufficient per Table 2; cannot apply Theorem 4", tc.spec)
		}
		// Survivor set over StructOp.
		_, structOps := dsl.EnumerateOps(dsl.DefaultMaxProductions, []dsl.Delim{'\n', ' '})
		var survivors []dsl.Candidate
		for _, op := range structOps {
			for _, swap := range []bool{false, true} {
				c := dsl.Candidate{Op: op, Swap: swap}
				ok := true
				for _, o := range obs {
					if !c.Plausible(env, o.Y1, o.Y2, o.Y12) {
						ok = false
						break
					}
				}
				if ok {
					survivors = append(survivors, c)
				}
			}
		}
		if len(survivors) == 0 {
			t.Fatalf("%s: correct StructOp combiner eliminated", tc.spec)
		}
		// Theorem 4's conclusion: survivors ≡∩ the correct combiner —
		// checked on every observation in the shared domain.
		for _, sv := range survivors {
			for _, o := range obs {
				if !sv.InDomain(env, o.Y1, o.Y2) || !tc.correct.InDomain(env, o.Y1, o.Y2) {
					continue
				}
				v1, e1 := sv.Eval(env, o.Y1, o.Y2)
				v2, e2 := tc.correct.Eval(env, o.Y1, o.Y2)
				if e1 != nil || e2 != nil || v1 != v2 {
					t.Fatalf("%s: survivor %s disagrees with %s: %q vs %q (err %v/%v)",
						tc.spec, sv, tc.correct, v1, v2, e1, e2)
				}
			}
		}
		// The correct combiner itself must be among the survivors
		// (Proposition B.6).
		found := false
		for _, sv := range survivors {
			if sv.String() == tc.correct.String() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: correct combiner %s not among survivors", tc.spec, tc.correct)
		}
	}
}
