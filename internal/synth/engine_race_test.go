package synth

import (
	"context"
	"sync"
	"testing"

	"kumquat/internal/synth/cache"
	"kumquat/internal/unix"
)

// TestEngineConcurrentClients hammers one shared engine from many
// goroutines — the daemon's access pattern — mixing cold synthesis,
// warm memo/LRU hits, negative verdicts, Stats snapshots and LRU churn
// (tiny capacity forces evictions). Run under -race (CI does) this pins
// the engine's concurrency contract; the final counter check pins that
// every call was attributed to exactly one tier.
func TestEngineConcurrentClients(t *testing.T) {
	eng := New(unix.DefaultEnv(), Options{
		Seed: 1, CacheSize: 2,
		// Small effort bounds: this test is about interleaving, not
		// synthesis quality.
		MaxRounds: 2, PairsPerShape: 1, MutationIters: 1,
	})
	specs := []string{"wc -l", "head -n 2", "grep x", "ls", "paste - -"}
	const goroutines = 8
	const iters = 6

	tiers := make([][]cache.Tier, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				spec := specs[(g+i)%len(specs)]
				res, tier, _ := eng.SynthesizeTier(context.Background(), spec)
				if res == nil {
					t.Errorf("SynthesizeTier(%q) returned nil result", spec)
					return
				}
				tiers[g] = append(tiers[g], tier)
				eng.Stats() // concurrent snapshot reads must be safe too
			}
		}(g)
	}
	wg.Wait()

	var calls int64
	for _, ts := range tiers {
		calls += int64(len(ts))
	}
	st := eng.Stats()
	if got := st.Lookups(); got != calls {
		t.Errorf("tier attribution leaked: %d calls but %d lookups recorded (%+v)", calls, got, st)
	}
	if st.Misses < int64(len(specs)) {
		t.Errorf("expected at least %d misses (one per distinct spec), got %d", len(specs), st.Misses)
	}

	// After the storm, every spec must be memo-warm: a sequential pass
	// reports TierMemory for all of them.
	for _, spec := range specs {
		if _, tier, _ := eng.SynthesizeTier(context.Background(), spec); tier != cache.TierMemory {
			t.Errorf("post-storm SynthesizeTier(%q) tier = %v, want memory", spec, tier)
		}
	}
}
