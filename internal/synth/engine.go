package synth

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kumquat/internal/dsl"
	"kumquat/internal/obs"
	"kumquat/internal/shape"
	"kumquat/internal/synth/cache"
	"kumquat/internal/unix"
)

// Engine is the concurrent, cancellable, cached combiner synthesizer — the
// primary synthesis entry point. Algorithm 1's per-round candidate
// filtering fans out over a bounded worker pool (the enumeration is
// sharded with dsl.Shards, each shard filtered against the observation
// set, and survivors merged in shard order, so results are byte-identical
// to a sequential run at any worker count), and Algorithm 2's gradient
// mutations are scored concurrently. Results are memoized per spec text
// and cached under a canonical command signature (normalized argv +
// delimiter set + options) in an in-memory LRU and, optionally, an
// on-disk store, so repeated stages and repeated invocations resolve
// without re-running synthesis. Concurrent requests for the same
// uncached spec are single-flighted: one synthesis runs, the rest wait
// and share its verdict.
//
// An Engine is safe for concurrent use.
type Engine struct {
	// Opts are the synthesis options, with defaults applied.
	Opts Options
	// Env is the command environment specs are parsed against.
	Env *unix.Env

	workers  int
	counters cache.Counters

	mu       sync.Mutex
	memo     map[string]*Result // exact spec text → result (legacy cache tier)
	inflight map[string]*call   // spec → in-progress synthesis (single-flight)
	lru      *cache.LRU         // canonical signature → *Result
	disk     *cache.Store       // nil unless Opts.CacheDir is set
}

// call is one in-progress synthesis that concurrent callers of the same
// spec coalesce onto: followers wait on done instead of re-running the
// cold synthesis. ok is true when the leader memoized a verdict; false
// (cancellation, parse failure) sends followers back to retry.
type call struct {
	done chan struct{}
	r    *Result
	ok   bool
}

// Synthesizer is the legacy name for Engine, kept so existing call sites
// and the string-keyed SynthesizeSpec workflow continue to compile.
type Synthesizer = Engine

// New returns an Engine over the given command environment (the default
// environment when env is nil).
func New(env *unix.Env, opts Options) *Engine {
	if env == nil {
		env = unix.DefaultEnv()
	}
	opts = opts.withDefaults()
	e := &Engine{
		Opts: opts,
		Env:  env,
		memo: map[string]*Result{},
	}
	e.workers = opts.Workers
	if e.workers == 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.workers < 1 {
		e.workers = 1
	}
	if opts.CacheSize >= 0 {
		e.lru = cache.NewLRU(opts.CacheSize)
	}
	if opts.CacheDir != "" {
		// Store errors degrade to a memory-only engine: the disk tier is
		// an accelerator, never required for correctness.
		if st, err := cache.NewStore(opts.CacheDir); err == nil {
			e.disk = st
		}
	}
	return e
}

// Synthesize parses spec and synthesizes its combiner with a fresh Engine
// over the default environment — the package-level convenience form of
// Engine.Synthesize for one-shot callers.
func Synthesize(ctx context.Context, spec string, opts Options) (*Result, error) {
	return New(nil, opts).Synthesize(ctx, spec)
}

// Synthesize parses a command spec and synthesizes its combiner,
// consulting the spec memo, the canonical-signature LRU and the on-disk
// store before running Algorithms 1–2. Cancelling ctx aborts synthesis
// mid-round; the returned Result then carries the best-so-far survivor
// set with Err set to ctx.Err(), and is not cached.
func (e *Engine) Synthesize(ctx context.Context, spec string) (*Result, error) {
	r, _, err := e.SynthesizeTier(ctx, spec)
	return r, err
}

// SynthesizeTier is Synthesize plus an exact attribution of which cache
// tier served the call: cache.TierMemory (spec memo or LRU, including
// waits coalesced onto another caller's in-flight synthesis),
// cache.TierDisk (on-disk store) or cache.TierMiss (full synthesis ran).
// The attribution is decided at the lookup site, so unlike a Stats delta
// it stays exact when other calls run concurrently.
//
// Concurrent calls for the same uncached spec are single-flighted: one
// leader runs the synthesis, the rest wait and share its verdict — under
// a many-client daemon a cold spec costs one synthesis, not one per
// request. A follower whose own ctx cancels while waiting returns a
// best-effort Result carrying ctx.Err(); a leader whose ctx cancels
// leaves nothing memoized, and its followers retry.
func (e *Engine) SynthesizeTier(ctx context.Context, spec string) (*Result, cache.Tier, error) {
	ctx, span := obs.StartSpan(ctx, "synth")
	if span == nil {
		return e.synthesizeTier(ctx, spec)
	}
	r, tier, err := e.synthesizeTier(ctx, spec)
	span.Attr("spec", spec)
	span.Attr("tier", tier.String())
	if r != nil {
		span.AttrInt("space", int64(r.Space.Total()))
	}
	span.End()
	return r, tier, err
}

// synthesizeTier is SynthesizeTier without the tracing wrapper.
func (e *Engine) synthesizeTier(ctx context.Context, spec string) (*Result, cache.Tier, error) {
	for {
		e.mu.Lock()
		if r, ok := e.memo[spec]; ok {
			e.mu.Unlock()
			e.counters.Hit()
			return r, cache.TierMemory, r.Err
		}
		if c, ok := e.inflight[spec]; ok {
			e.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				e.counters.Miss()
				r := &Result{Spec: spec, Err: ctx.Err()}
				return r, cache.TierMiss, r.Err
			}
			if c.ok {
				e.counters.Hit()
				return c.r, cache.TierMemory, c.r.Err
			}
			continue // leader cancelled or failed to parse; try again
		}
		c := &call{done: make(chan struct{})}
		if e.inflight == nil {
			e.inflight = map[string]*call{}
		}
		e.inflight[spec] = c
		e.mu.Unlock()

		cmd, err := unix.Parse(spec, e.Env)
		if err != nil {
			e.mu.Lock()
			delete(e.inflight, spec)
			e.mu.Unlock()
			close(c.done)
			return nil, cache.TierMiss, err
		}
		r, tier := e.synthesizeCommand(ctx, cmd)
		e.mu.Lock()
		if ctx.Err() == nil {
			e.memo[spec] = r
			c.r, c.ok = r, true
		}
		delete(e.inflight, spec)
		e.mu.Unlock()
		close(c.done)
		return r, tier, r.Err
	}
}

// SynthesizeSpec is the legacy context-free form of Synthesize.
func (e *Engine) SynthesizeSpec(spec string) (*Result, error) {
	return e.Synthesize(context.Background(), spec)
}

// Stats returns a snapshot of the engine's cache activity: memory hits
// (spec memo and LRU), disk hits, and misses (full synthesis runs).
func (e *Engine) Stats() cache.Stats { return e.counters.Snapshot() }

// Workers reports the resolved worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// SynthesizeCommand runs cache lookup and, on a miss, Algorithm 1 for one
// already-parsed black-box command. Most callers want Synthesize, which
// adds the spec-text memo tier.
func (e *Engine) SynthesizeCommand(ctx context.Context, cmd unix.Command) *Result {
	r, _ := e.synthesizeCommand(ctx, cmd)
	return r
}

// synthesizeCommand is SynthesizeCommand with the serving cache tier:
// TierMemory for an LRU hit, TierDisk for an on-disk hit, TierMiss when
// synthesis (or an unsupported-command verdict) ran from scratch.
func (e *Engine) synthesizeCommand(ctx context.Context, cmd unix.Command) (*Result, cache.Tier) {
	start := time.Now()
	res := &Result{Spec: cmd.Spec()}
	if ns, ok := cmd.(interface{ NonStream() bool }); ok && ns.NonStream() {
		res.Err = ErrNonStream
		res.Duration = time.Since(start)
		e.counters.Miss() // memoized repeats count as hits; keep stats consistent
		return res, cache.TierMiss
	}
	if mi, ok := cmd.(interface{ MultiInput() bool }); ok && mi.MultiInput() {
		res.Err = ErrMultiInput
		res.Duration = time.Since(start)
		e.counters.Miss()
		return res, cache.TierMiss
	}

	// Deterministic per-command seed.
	rng := rand.New(rand.NewSource(e.Opts.Seed ^ int64(hashSpec(cmd.Spec()))))

	// Preprocessing (§3.2): probes, literal mining, delimiter selection.
	// This is cheap, fixed work (a dozen command runs on tiny probe
	// streams) and yields the delimiter set the cache key needs.
	p := preprocess(cmd, e.Env, rng)

	argv := canonicalArgv(cmd.Spec())
	key := cache.Key(argv, delimBytes(p.delims), e.keyOptions())
	if e.lru != nil {
		if v, ok := e.lru.Get(key); ok {
			e.counters.Hit()
			return v.(*Result), cache.TierMemory
		}
	}
	// Commands whose behaviour depends on the simulated file system —
	// file-name input mode (xargs-style probes read the FS) or commands
	// that read registered files during Run (cat FILE, comm - FILE) —
	// stay out of the disk tier: their results are not portable across
	// processes with different registered files.
	re, readsEnv := cmd.(interface{ ReadsEnv() bool })
	diskable := e.disk != nil && len(p.fileNames) == 0 &&
		!(readsEnv && re.ReadsEnv())
	if diskable {
		if ent, ok := e.disk.Get(key); ok {
			if r, ok := e.resultFromEntry(ent, cmd); ok {
				e.counters.DiskHit()
				if e.lru != nil {
					e.lru.Put(key, r)
				}
				return r, cache.TierDisk
			}
		}
	}

	e.counters.Miss()
	res = e.synthesize(ctx, cmd, rng, p, start)
	if ctx.Err() == nil {
		if e.lru != nil {
			e.lru.Put(key, res)
		}
		if diskable && cacheableErr(res.Err) {
			e.disk.Put(key, e.entryFromResult(res, argv)) //nolint:errcheck // accelerator only
		}
	}
	return res, cache.TierMiss
}

// synthesize is Algorithm 1's round loop: generate effective inputs
// (Algorithm 2), observe the command, and filter the candidate space in
// parallel shards, until the space empties, progress stagnates, or ctx is
// cancelled.
func (e *Engine) synthesize(ctx context.Context, cmd unix.Command, rng *rand.Rand, p prep, start time.Time) *Result {
	opts := e.Opts
	res := &Result{Spec: cmd.Spec(), Delims: p.delims}

	denv := e.evalEnv(cmd)

	// C0 ← AllCandidates(n).
	cands := dsl.Enumerate(opts.MaxProductions, p.delims)
	res.Space = dsl.Measure(cands)

	gen := p.generator(rng)
	seeds := p.seedShapes()

	var (
		inBytes, outBytes int
		sawOutput         bool
		stagnant          int
	)
	finish := func(err error) *Result {
		res.Duration = time.Since(start)
		if err != nil {
			res.Err = err
		} else if !sawOutput {
			res.Err = ErrNoOutputs
			return res
		}
		if inBytes > 0 {
			res.ReductionRatio = float64(outBytes) / float64(inBytes)
		}
		res.Plausible = cands
		if sawOutput {
			res.Combiner = buildComposite(cmd.Spec(), denv, cands)
		}
		return res
	}
	for round := 1; round <= opts.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		res.Rounds = round
		s0 := seeds[(round-1)%len(seeds)]
		if round > len(seeds) {
			// RandomShape(): perturb a seed with a few random mutations.
			for i := 0; i < 1+rng.Intn(3); i++ {
				s0 = shape.Mutate(s0, rng.Intn(shape.NumMutations))
			}
		}
		inputs, slots := e.effectiveInputs(ctx, cmd, denv, cands, gen, s0, rng)
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		obs := make([]Observation, 0, len(slots))
		for i, s := range slots {
			if !s.ok {
				continue
			}
			obs = append(obs, s.o)
			if s.o.Y12 != "" && s.o.Y12 != "\n" {
				sawOutput = true
			}
			inBytes += len(inputs[i][0]) + len(inputs[i][1])
			outBytes += len(s.o.Y12)
		}
		res.Observations += len(obs)
		before := len(cands)
		next, err := e.filterParallel(ctx, denv, cands, obs)
		if err != nil {
			// Cancelled mid-filter: the previous round's survivors are the
			// best verified verdict.
			return finish(err)
		}
		cands = next
		if len(cands) == 0 {
			res.Err = ErrNoCombiner
			res.Duration = time.Since(start)
			return res
		}
		if len(cands) == before {
			stagnant++
			if stagnant >= opts.StagnationRounds {
				break
			}
		} else {
			stagnant = 0
		}
	}
	return finish(nil)
}

// obsSlot pairs one generated input with its observation; ok is false
// when the command errored on the pair (it fell outside the command's
// domain) or the pair was never run (cancellation).
type obsSlot struct {
	o  Observation
	ok bool
}

// effectiveInputs is Algorithm 2 (GetEffectiveInputs): M gradient steps,
// each trying all twelve mutations of the current shape, generating input
// pairs from every mutation, and stepping to the mutation whose inputs
// eliminated the most sampled candidates. It returns every generated
// pair with its observation slot (aligned by index), so the round filter
// reuses the scoring observations instead of re-running the command.
//
// Input generation stays on the calling goroutine (it consumes the
// deterministic rng); only the pure observe-and-score work per mutation
// runs on the worker pool, so the chosen mutations — and therefore the
// generated inputs and observations — are identical at any worker count.
func (e *Engine) effectiveInputs(ctx context.Context, cmd unix.Command, denv *dsl.Env,
	cands []dsl.Candidate, gen *shape.Generator, s0 shape.Shape, rng *rand.Rand) ([][2]string, []obsSlot) {

	opts := e.Opts
	// Seed-shape inputs first: they do the bulk of the cheap elimination.
	all := gen.Pairs(s0, opts.PairsPerShape)
	slots := e.observeSlots(ctx, cmd, all)

	cur := s0
	// Score mutations against a bounded sample of live candidates so the
	// gradient stays cheap even on the 110k-candidate spaces.
	sample := sampleCandidates(cands, 4096, rng)
	for m := 0; m < opts.MutationIters; m++ {
		if ctx.Err() != nil {
			return all, slots
		}
		pairsByMut := make([][][2]string, shape.NumMutations)
		for j := 0; j < shape.NumMutations; j++ {
			pairsByMut[j] = gen.Pairs(shape.Mutate(cur, j), opts.PairsPerShape)
		}
		if opts.DisableGradient {
			// No scoring: observe the mutations' pairs in one parallel
			// pass and take a random step (the ablation baseline).
			for j := range pairsByMut {
				all = append(all, pairsByMut[j]...)
			}
			slots = append(slots, e.observeSlots(ctx, cmd, all[len(slots):])...)
			cur = shape.Mutate(cur, rng.Intn(shape.NumMutations))
			continue
		}
		mutSlots := make([][]obsSlot, shape.NumMutations)
		scores := make([]int, shape.NumMutations)
		parallelFor(ctx, e.workers, shape.NumMutations, func(j int) {
			sl := make([]obsSlot, len(pairsByMut[j]))
			for i, p := range pairsByMut[j] {
				o, ok := runPair(cmd, p)
				sl[i] = obsSlot{o, ok}
			}
			mutSlots[j] = sl
			scores[j] = countEliminated(denv, sample, compactObs(sl))
		})
		for j := range pairsByMut {
			if mutSlots[j] == nil {
				// Cancelled before this mutation ran; keep inputs and
				// slots aligned by dropping its pairs.
				continue
			}
			all = append(all, pairsByMut[j]...)
			slots = append(slots, mutSlots[j]...)
		}
		if ctx.Err() != nil {
			return all, slots
		}
		best, bestScore := -1, -1
		for j, sc := range scores {
			if sc > bestScore {
				best, bestScore = j, sc
			}
		}
		cur = shape.Mutate(cur, best)
	}
	return all, slots
}

// runPair executes the command on one input pair, producing Definition
// 3.5's ⟨y1, y2, y12⟩ triple; ok is false when the command errored on any
// of the three runs (the pair fell outside the command's domain).
func runPair(cmd unix.Command, p [2]string) (Observation, bool) {
	y1, err1 := cmd.Run(p[0])
	y2, err2 := cmd.Run(p[1])
	y12, err12 := cmd.Run(p[0] + p[1])
	if err1 != nil || err2 != nil || err12 != nil {
		return Observation{}, false
	}
	return Observation{Y1: y1, Y2: y2, Y12: y12}, true
}

// observeSlots executes the command on each input pair concurrently,
// producing Definition 3.5's observations in slots aligned with the
// pairs (pairs on which the command errors get ok=false: the command's
// legal-input constraints are respected by construction for
// sorted/file-name modes; errors elsewhere mean the generated input was
// outside the command's domain). A cancelled ctx leaves the unrun
// pairs' slots ok=false; callers check ctx before trusting the set.
func (e *Engine) observeSlots(ctx context.Context, cmd unix.Command, pairs [][2]string) []obsSlot {
	slots := make([]obsSlot, len(pairs))
	parallelFor(ctx, e.workers, len(pairs), func(i int) {
		o, ok := runPair(cmd, pairs[i])
		slots[i] = obsSlot{o, ok}
	})
	return slots
}

// compactObs extracts the successful observations from a slot list, in
// order.
func compactObs(slots []obsSlot) []Observation {
	obs := make([]Observation, 0, len(slots))
	for _, s := range slots {
		if s.ok {
			obs = append(obs, s.o)
		}
	}
	return obs
}

// filterParallel is FilterCandidates over a sharded candidate space: each
// shard is filtered against the observations on the worker pool and the
// survivors are concatenated in shard order, reproducing the sequential
// filter exactly. Returns ctx.Err() if cancelled before the merge
// completes, in which case the partial survivors are discarded.
func (e *Engine) filterParallel(ctx context.Context, denv *dsl.Env,
	cands []dsl.Candidate, obs []Observation) ([]dsl.Candidate, error) {

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(obs) == 0 {
		return cands, nil
	}
	// Small spaces are cheaper to filter inline than to fan out; the
	// sequential path still honours cancellation by checking ctx every
	// 2048-candidate chunk.
	if e.workers <= 1 || len(cands) < 2048 {
		live := make([]dsl.Candidate, 0, len(cands))
		for _, shard := range dsl.Shards(cands, (len(cands)+2047)/2048) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			live = append(live, filterCandidates(denv, shard, obs)...)
		}
		return live, nil
	}
	// Over-shard (4 chunks per worker) so the atomic work queue balances
	// shards of uneven candidate cost, and a cancelled ctx is noticed at
	// shard granularity.
	shards := dsl.Shards(cands, e.workers*4)
	out := make([][]dsl.Candidate, len(shards))
	parallelFor(ctx, e.workers, len(shards), func(i int) {
		out[i] = filterCandidates(denv, shards[i], obs)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, s := range out {
		total += len(s)
	}
	live := make([]dsl.Candidate, 0, total)
	for _, s := range out {
		live = append(live, s...)
	}
	return live, nil
}

// parallelFor runs fn(i) for every i in [0,n) on up to workers
// goroutines, pulling indices from a shared atomic queue. fn must write
// only to state owned by index i; completion of all started fn calls is
// awaited before returning. Once ctx is cancelled no new indices are
// handed out, so some fn(i) may never run — callers detect this via
// ctx.Err().
func parallelFor(ctx context.Context, workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// evalEnv builds the DSL evaluation environment for one command: f for
// rerun, and the merge comparator (the command itself when it is a sort,
// plain sort otherwise).
func (e *Engine) evalEnv(cmd unix.Command) *dsl.Env {
	denv := &dsl.Env{RunF: cmd.Run}
	if sc, ok := cmd.(*unix.SortCmd); ok {
		denv.Merge = sc
	} else if def, err := unix.Parse("sort", e.Env); err == nil {
		denv.Merge = def.(*unix.SortCmd)
	}
	return denv
}

// keyOptions projects the engine options onto the cache-key fields.
func (e *Engine) keyOptions() cache.KeyOptions {
	o := e.Opts
	return cache.KeyOptions{
		MaxProductions:   o.MaxProductions,
		PairsPerShape:    o.PairsPerShape,
		MutationIters:    o.MutationIters,
		StagnationRounds: o.StagnationRounds,
		MaxRounds:        o.MaxRounds,
		Seed:             o.Seed,
		DisableGradient:  o.DisableGradient,
	}
}

// canonicalArgv normalizes a command spec to its shell tokenization, so
// quoting and whitespace variants of the same command share a cache key.
func canonicalArgv(spec string) []string {
	if argv, err := unix.Tokenize(spec); err == nil && len(argv) > 0 {
		return argv
	}
	return []string{spec}
}

// delimBytes converts a delimiter set to raw bytes for key derivation.
func delimBytes(delims []dsl.Delim) []byte {
	out := make([]byte, len(delims))
	for i, d := range delims {
		out[i] = byte(d)
	}
	return out
}

// Error tags used in persisted entries.
const (
	errTagNoCombiner = "no-combiner"
	errTagNoOutputs  = "no-outputs"
)

// cacheableErr reports whether a result's error state may be persisted:
// successful syntheses and the two definitive negative verdicts are;
// transient states (cancellation) are not.
func cacheableErr(err error) bool {
	return err == nil || err == ErrNoCombiner || err == ErrNoOutputs
}

// entryFromResult converts a synthesis result to its persisted form.
func (e *Engine) entryFromResult(r *Result, argv []string) *cache.Entry {
	ent := &cache.Entry{
		Spec:           r.Spec,
		Argv:           argv,
		Delims:         string(delimBytes(r.Delims)),
		SpaceRec:       r.Space.Rec,
		SpaceStruct:    r.Space.Struct,
		SpaceRun:       r.Space.Run,
		Rounds:         r.Rounds,
		Observations:   r.Observations,
		ReductionRatio: r.ReductionRatio,
		DurationNS:     int64(r.Duration),
	}
	switch r.Err {
	case ErrNoCombiner:
		ent.Err = errTagNoCombiner
	case ErrNoOutputs:
		ent.Err = errTagNoOutputs
	}
	for _, c := range r.Plausible {
		ent.Plausible = append(ent.Plausible, c.String())
	}
	return ent
}

// resultFromEntry rebuilds a live result from a persisted entry: the
// plausible set is re-parsed from DSL text and the composite combiner
// rebuilt against the command's evaluation environment. Any decode
// failure reports false and the entry is treated as a miss.
func (e *Engine) resultFromEntry(ent *cache.Entry, cmd unix.Command) (*Result, bool) {
	res := &Result{
		Spec:           ent.Spec,
		Space:          dsl.SpaceSize{Rec: ent.SpaceRec, Struct: ent.SpaceStruct, Run: ent.SpaceRun},
		Rounds:         ent.Rounds,
		Observations:   ent.Observations,
		ReductionRatio: ent.ReductionRatio,
		Duration:       time.Duration(ent.DurationNS),
	}
	for _, b := range []byte(ent.Delims) {
		res.Delims = append(res.Delims, dsl.Delim(b))
	}
	switch ent.Err {
	case "":
	case errTagNoCombiner:
		res.Err = ErrNoCombiner
		return res, true
	case errTagNoOutputs:
		res.Err = ErrNoOutputs
		return res, true
	default:
		return nil, false
	}
	for _, s := range ent.Plausible {
		c, err := dsl.ParseCandidate(s)
		if err != nil {
			return nil, false
		}
		res.Plausible = append(res.Plausible, c)
	}
	res.Combiner = buildComposite(ent.Spec, e.evalEnv(cmd), res.Plausible)
	if res.Combiner == nil {
		return nil, false
	}
	return res, true
}
