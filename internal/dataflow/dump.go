package dataflow

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders the optimized program deterministically for golden-file
// regression tests: nodes with their derived capabilities, edges with
// their closure metadata, regions with exits and fired rules, and the
// per-rule fire counters. Any accidental legality change — a capability
// probe drifting, a rule firing where it should not — shows up as a
// readable diff against the checked-in golden.
func (p *Program) Dump() string {
	var b strings.Builder
	g := p.Graph
	src := g.InputFile
	if src == "" {
		src = "<stdin>"
	}
	fmt.Fprintf(&b, "source %s\n", src)
	for _, n := range g.Nodes {
		var caps []string
		if n.Stage.Parallel {
			caps = append(caps, "parallel")
		}
		if n.Stage.Sequential {
			caps = append(caps, "sequential")
		}
		if n.LineMapper {
			caps = append(caps, "linemapper")
		}
		if n.Streamable {
			caps = append(caps, "streamable")
		}
		if n.OrderInsensitive {
			caps = append(caps, "order-insensitive")
		}
		if n.Stage.StreamOutput {
			caps = append(caps, "stream-output")
		}
		fmt.Fprintf(&b, "n%d %q class=%s [%s]\n", n.ID, n.Stage.Spec, n.Class, strings.Join(caps, " "))
	}
	for _, e := range g.Edges {
		from, to := fmt.Sprintf("n%d", e.From), fmt.Sprintf("n%d", e.To)
		if e.From < 0 {
			from = "source"
		}
		if e.To < 0 {
			to = "sink"
		}
		fmt.Fprintf(&b, "edge %s->%s closure=%s\n", from, to, e.Closure)
	}
	for i, r := range p.Regions {
		ids := make([]string, len(r.Nodes))
		for j, id := range r.Nodes {
			ids[j] = fmt.Sprintf("n%d", id)
		}
		kind := "single"
		if r.Fused {
			kind = "fused"
		}
		rules := make([]string, len(r.Rules))
		for j, rl := range r.Rules {
			rules[j] = string(rl)
		}
		exit := r.Exit.String()
		if i == len(p.Regions)-1 {
			exit = "final-" + exit
		}
		fmt.Fprintf(&b, "region R%d %s{%s} parallel=%v exit=%s rules=[%s]\n",
			i, kind, strings.Join(ids, ","), r.Parallel, exit, strings.Join(rules, " "))
	}
	rules := make([]string, 0, len(p.Fired))
	for r := range p.Fired {
		rules = append(rules, string(r))
	}
	sort.Strings(rules)
	for _, r := range rules {
		fmt.Fprintf(&b, "fired %s=%d\n", r, p.Fired[Rule(r)])
	}
	return b.String()
}
