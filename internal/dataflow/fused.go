package dataflow

import (
	"strings"

	"kumquat/internal/unix"
)

// FusedMapper is a fused region's composed command: the member stages'
// line mappers applied depth-first per input line, producing in one pass
// over a chunk exactly the bytes the staged execution produces in
// len(mappers) passes — without materializing any intermediate stream.
//
// It implements unix.LineMapper, so every existing execution surface
// (streaming via unix.Exec, chunk runs via Run) accepts it unchanged.
type FusedMapper struct {
	spec    string
	mappers []unix.LineMapper
}

// NewFusedMapper composes the given line mappers (in stage order) under a
// fused(...) spec built from the stage specs.
func NewFusedMapper(specs []string, mappers []unix.LineMapper) *FusedMapper {
	return &FusedMapper{
		spec:    "fused(" + strings.Join(specs, " | ") + ")",
		mappers: mappers,
	}
}

// Spec returns the composed spec, e.g. "fused(tr A-Z a-z | grep light)".
func (f *FusedMapper) Spec() string { return f.spec }

// Len reports how many stages the mapper fuses.
func (f *FusedMapper) Len() int { return len(f.mappers) }

// MapLine maps one input line through the whole chain, collecting the
// terminal output lines. Line mappers are line-independent and
// order-preserving, so feeding each intermediate line onward immediately
// yields the same sequence as materializing each stage's full output.
func (f *FusedMapper) MapLine(line string) []string {
	var out []string
	f.collect(0, line, &out)
	return out
}

func (f *FusedMapper) collect(depth int, line string, out *[]string) {
	if depth == len(f.mappers) {
		*out = append(*out, line)
		return
	}
	for _, next := range f.mappers[depth].MapLine(line) {
		f.collect(depth+1, next, out)
	}
}

// Run executes the fused pass over a whole chunk: one scan of the input,
// one output builder, no intermediate streams. The chain is composed
// once per call into a single per-line function, so the executor can
// share one FusedMapper across parallel chunk goroutines; stages that
// implement unix.LineEmitter run allocation-free inside it (scratch
// reuse, transient views consumed depth-first before the next line).
// MapLine exists for the streaming surface.
func (f *FusedMapper) Run(input string) (string, error) {
	if input == "" {
		return "", nil
	}
	var b strings.Builder
	b.Grow(len(input))
	sink := f.newSink(&b)
	rest := input
	for rest != "" {
		var line string
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			line, rest = rest, ""
		}
		sink(line)
	}
	return b.String(), nil
}

// newSink composes the stage chain backwards from the terminal writer
// into one per-line function. Every emitted line is fully processed by
// the downstream stages before the emitting stage sees the next one, so
// each emitter's transient scratch views stay valid exactly as long as
// they are needed.
func (f *FusedMapper) newSink(b *strings.Builder) unix.EmitFunc {
	sink := unix.EmitFunc(func(line string) {
		b.WriteString(line)
		b.WriteByte('\n')
	})
	for d := len(f.mappers) - 1; d >= 0; d-- {
		next := sink
		if le, ok := unix.AsLineEmitter(f.mappers[d]); ok {
			scratch := new([]byte)
			sink = func(line string) { le.EmitLine(line, scratch, next) }
		} else {
			lm := f.mappers[d]
			sink = func(line string) {
				for _, out := range lm.MapLine(line) {
					next(out)
				}
			}
		}
	}
	return sink
}
