package dataflow

import (
	"kumquat/internal/unix"
)

// Rule names one optimizer rewrite, as reported in fire counters, run
// reports and the conformance plane's per-rule accounting.
type Rule string

const (
	// RuleFuseStreamers fuses adjacent line-streaming stages into one
	// per-chunk pass, eliding the combine→re-split round trip between
	// them. It fires once per fused internal edge, so a run of m stages
	// fires it m-1 times. Legality: every fused stage is a line mapper
	// (line-independent, order-preserving), parallel, concat-combined and
	// stream-output, so composing the mappers per input line is
	// byte-identical to running the stages back to back.
	RuleFuseStreamers Rule = "fuse-streamers"
	// RuleElideCombine elides the combine between a per-chunk-closed
	// stage and an order-insensitive consumer: the consumer sees a line
	// permutation of the true stream (ClosurePerm or better), which by
	// declaration cannot change its output.
	RuleElideCombine Rule = "elide-combine"
	// RulePushSortMerge pushes a sort-class stage's combine into the
	// downstream stage's read path: instead of materializing the k-way
	// heap merge, the downstream streaming stage consumes it lazily
	// through unix.SortCmd.MergeReader.
	RulePushSortMerge Rule = "push-sort-merge"
	// RuleTheorem5 is the legacy intermediate-combiner elimination
	// (exact-closed stage feeding a parallel consumer). It predates the
	// dataflow plane and is tagged on regions for the dump, but not
	// counted among the three new rewrites.
	RuleTheorem5 Rule = "theorem5"
)

// ExitKind says how a region's k chunk outputs leave the region when it
// ran chunk-parallel. On the serial path (k = 1, or a live input stream)
// exits degenerate to passing the single output through.
type ExitKind int

const (
	// ExitCombine runs the region's final combiner over the chunk
	// outputs (the default, always-legal exit).
	ExitCombine ExitKind = iota
	// ExitSplit keeps the stream split: the next (parallel) region
	// consumes the chunk outputs directly.
	ExitSplit
	// ExitConcat concatenates the chunk outputs in chunk order without
	// running the combiner — legal only into an order-insensitive serial
	// consumer over a permutation-closed edge.
	ExitConcat
	// ExitMerge hands the chunk outputs to the next region as a lazy
	// k-way heap merge reader (push-sort-merge).
	ExitMerge
)

// String names the exit as the program dump and run reports print it.
func (e ExitKind) String() string {
	switch e {
	case ExitCombine:
		return "combine"
	case ExitSplit:
		return "split"
	case ExitConcat:
		return "concat"
	case ExitMerge:
		return "merge-stream"
	}
	return "invalid"
}

// Region is one executor step of the optimized program: a maximal fused
// run of stages (or a single stage), the rules that shaped it, and how its
// output leaves.
type Region struct {
	// Nodes are the member node IDs, consecutive and in stage order.
	Nodes []int
	// Fused marks multi-stage regions executed as one composed per-chunk
	// pass; their Mapper is non-nil.
	Fused bool
	// Mapper is the composed line mapper of a fused region.
	Mapper *FusedMapper
	// Parallel marks regions executed chunk-parallel (every member stage
	// is planner-parallel).
	Parallel bool
	// Exit is the region's output disposition after a chunk-parallel run.
	Exit ExitKind
	// Rules tags the rewrites that fired on this region or its outgoing
	// edge (RuleTheorem5 included, for the dump).
	Rules []Rule
}

// Program is the optimizer's output: the region sequence the fused
// executor walks, plus the per-rule fire counters.
type Program struct {
	// Graph is the IR the program was optimized from.
	Graph *Graph
	// Regions partition the graph's nodes in stage order.
	Regions []*Region
	// Fired counts rewrite applications per rule (RuleTheorem5 excluded:
	// it is the pre-dataflow baseline, not a new rewrite).
	Fired map[Rule]int
}

// Options tunes Optimize.
type Options struct {
	// Disable turns individual rewrites off (the -fuse=off path disables
	// all three at once by not running the program; Disable exists for
	// finer-grained ablation in tests and benchmarks).
	Disable map[Rule]bool
	// UnsafeAssumeOrderInsensitive makes RuleElideCombine treat every
	// consumer as order-insensitive — a deliberately broken legality
	// check. It exists only so the conformance plane's regression tests
	// can prove the differential net catches an illegal elision; never
	// set it in production paths.
	UnsafeAssumeOrderInsensitive bool
}

func (o Options) disabled(r Rule) bool { return o.Disable[r] }

// Optimize runs the rewrite pipeline over the graph: first the fusion
// pass groups maximal runs of fusable stages into regions, then the
// boundary pass decides each region's exit (combine elision, sort-merge
// pushdown, Theorem 5 splitting).
func Optimize(g *Graph, opts Options) *Program {
	p := &Program{Graph: g, Fired: map[Rule]int{
		RuleFuseStreamers: 0, RuleElideCombine: 0, RulePushSortMerge: 0,
	}}
	// Pass 1: fuse maximal runs of adjacent fusable stages.
	for i := 0; i < len(g.Nodes); {
		j := i
		if !opts.disabled(RuleFuseStreamers) {
			for j < len(g.Nodes) && fusable(g.Nodes[j]) {
				j++
			}
		}
		if j-i >= 2 {
			r := &Region{Fused: true, Parallel: true, Rules: []Rule{RuleFuseStreamers}}
			var mappers []unix.LineMapper
			var specs []string
			for id := i; id < j; id++ {
				r.Nodes = append(r.Nodes, id)
				lm, _ := unix.AsLineMapper(g.Nodes[id].Stage.Cmd)
				mappers = append(mappers, lm)
				specs = append(specs, g.Nodes[id].Stage.Spec)
			}
			r.Mapper = NewFusedMapper(specs, mappers)
			p.Fired[RuleFuseStreamers] += j - i - 1
			p.Regions = append(p.Regions, r)
			i = j
			continue
		}
		n := g.Nodes[i]
		p.Regions = append(p.Regions, &Region{Nodes: []int{i}, Parallel: n.Stage.Parallel})
		i++
	}
	// Pass 2: decide exits at region boundaries. The final region always
	// combines — a single output stream must emerge.
	for ri := 0; ri+1 < len(p.Regions); ri++ {
		r, next := p.Regions[ri], p.Regions[ri+1]
		if !r.Parallel {
			continue
		}
		last := g.Nodes[r.Nodes[len(r.Nodes)-1]]
		cl := regionClosure(r, last)
		nextOI := consumerOrderInsensitive(g, next, opts)
		switch {
		case cl != ClosureNone && nextOI:
			// Rule 2: the consumer cannot observe the permutation.
			if next.Parallel {
				r.Exit = ExitSplit
			} else {
				r.Exit = ExitConcat
			}
			if cl == ClosureExact && next.Parallel {
				// Theorem 5 alone already licenses this split; count the
				// elision for the legacy rule so the new-rule counters
				// measure genuinely new elisions.
				r.Rules = append(r.Rules, RuleTheorem5)
			} else if !opts.disabled(RuleElideCombine) {
				r.Rules = append(r.Rules, RuleElideCombine)
				p.Fired[RuleElideCombine]++
			} else {
				r.Exit = ExitCombine
			}
		case cl == ClosureExact && next.Parallel:
			// Theorem 5: exact closure feeds any parallel consumer.
			r.Exit = ExitSplit
			r.Rules = append(r.Rules, RuleTheorem5)
		case !opts.disabled(RulePushSortMerge) && sortClass(last) && streamableRegion(g, next):
			// Rule 3: the combine happens, but lazily, inside the
			// downstream stage's read loop.
			r.Exit = ExitMerge
			r.Rules = append(r.Rules, RulePushSortMerge)
			p.Fired[RulePushSortMerge]++
		}
	}
	return p
}

// fusable reports whether a stage may join a fused region: a parallel,
// concat-combined, stream-output line mapper. Concat closure guarantees
// chunk-and-concatenate equals the staged execution; line independence
// guarantees the composed per-line pass equals the staged passes.
func fusable(n *Node) bool {
	return n.Stage.Parallel && n.LineMapper && n.Class == ClassConcat && n.Stage.StreamOutput
}

// regionClosure is the closure of a region's outgoing edge: fused regions
// are concat-composed line mappers, so they inherit exact closure; single
// regions use their node's edge metadata.
func regionClosure(r *Region, last *Node) Closure {
	if r.Fused {
		return ClosureExact
	}
	return closure(last)
}

// sortClass reports whether the region's last node is a sort-class stage
// whose combine is the k-way heap merge (the push-sort-merge source).
func sortClass(n *Node) bool {
	if n.Class != ClassMerge || !n.Stage.Parallel {
		return false
	}
	_, ok := n.Stage.Cmd.(*unix.SortCmd)
	return ok
}

// consumerOrderInsensitive reports whether the next region's output is
// invariant under permuting its input lines. Only single-stage regions
// qualify: a fused region is a composition of order-preserving mappers,
// which transports the permutation rather than absorbing it.
func consumerOrderInsensitive(g *Graph, next *Region, opts Options) bool {
	if opts.UnsafeAssumeOrderInsensitive {
		return true
	}
	if len(next.Nodes) != 1 {
		return false
	}
	return g.Nodes[next.Nodes[0]].OrderInsensitive
}

// streamableRegion reports whether the region can consume a live stream
// with output identical to its chunked execution: fused regions are line
// mappers (always streamable), single parallel stages must be streamable
// with a concat combiner (streamed output equals chunk-and-concat), and
// single serial stages need only the streaming capability.
func streamableRegion(g *Graph, r *Region) bool {
	if r.Fused {
		return true
	}
	n := g.Nodes[r.Nodes[0]]
	if !n.Streamable {
		return false
	}
	return !n.Stage.Parallel || n.Class == ClassConcat
}
